package overlay_test

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/overlay"
)

func ExampleIntersectionArea() {
	a := geom.MustPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	b := geom.MustPolygon(geom.Pt(2, 2), geom.Pt(6, 2), geom.Pt(6, 6), geom.Pt(2, 6))
	fmt.Println(overlay.IntersectionArea(a, b))
	fmt.Println(overlay.UnionArea(a, b))
	fmt.Println(overlay.SymmetricDifferenceArea(a, b))
	// Output:
	// 4
	// 28
	// 24
}
