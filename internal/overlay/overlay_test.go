package overlay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func square(x, y, side float64) *geom.Polygon {
	return geom.MustPolygon(
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side),
	)
}

func TestIntersectionAreaKnown(t *testing.T) {
	a := square(0, 0, 4)
	cases := []struct {
		name string
		q    *geom.Polygon
		want float64
	}{
		{"half overlap", square(2, 0, 4), 8},
		{"quarter", square(2, 2, 4), 4},
		{"contained", square(1, 1, 2), 4},
		{"identical", square(0, 0, 4), 16},
		{"disjoint", square(10, 10, 2), 0},
		{"edge touch", square(4, 0, 2), 0},
		{"inscribed diamond", geom.MustPolygon(geom.Pt(2, 0), geom.Pt(4, 2), geom.Pt(2, 4), geom.Pt(0, 2)), 8},
		{"containing diamond", geom.MustPolygon(geom.Pt(2, -2), geom.Pt(6, 2), geom.Pt(2, 6), geom.Pt(-2, 2)), 16},
	}
	for _, tc := range cases {
		if got := IntersectionArea(a, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: area = %v, want %v", tc.name, got, tc.want)
		}
		// Symmetry.
		if got := IntersectionArea(tc.q, a); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s (swapped): area = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestConcaveOverlay(t *testing.T) {
	// L-shape vs a square sitting exactly in its notch: zero overlap.
	l := geom.MustPolygon(
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 2), geom.Pt(2, 2), geom.Pt(2, 4), geom.Pt(0, 4),
	)
	notch := square(2, 2, 2)
	if got := IntersectionArea(l, notch); got != 0 {
		t.Errorf("notch overlap = %v, want 0", got)
	}
	// A square covering the L entirely.
	if got := IntersectionArea(l, square(-1, -1, 6)); math.Abs(got-l.Area()) > 1e-9 {
		t.Errorf("cover overlap = %v, want %v", got, l.Area())
	}
	// Square overlapping both arms of the L.
	got := IntersectionArea(l, square(1, 1, 2))
	// Overlap region: [1,3]x[1,2] within lower arm gives x∈[1,3]? lower arm
	// is y∈[0,2] x∈[0,4]: overlap [1,3]x[1,2] = 2; left arm x∈[0,2] y∈[2,4]:
	// overlap [1,2]x[2,3] = 1. Total 3.
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("L overlap = %v, want 3", got)
	}
}

func TestOverlayMatchesConvexClip(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := range 200 {
		a := randomHull(rng, 5, 5, 4)
		b := randomHull(rng, 6+rng.Float64()*3, 5+rng.Float64()*3, 4)
		if a == nil || b == nil {
			continue
		}
		want := 0.0
		if c := geom.ClipConvex(a, b); c != nil {
			want = c.Area()
		}
		got := IntersectionArea(a, b)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: overlay %v vs clip %v", trial, got, want)
		}
	}
}

func TestOverlayMatchesMonteCarloConcave(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	for trial := range 25 {
		a := star(rng, 10, 10, 6, 8+rng.Intn(30))
		b := star(rng, 12+rng.Float64()*4-2, 10+rng.Float64()*4-2, 6, 8+rng.Intn(30))
		got := IntersectionArea(a, b)
		region := a.Bounds().Intersection(b.Bounds())
		if region.IsEmpty() {
			if got != 0 {
				t.Fatalf("trial %d: disjoint MBRs but area %v", trial, got)
			}
			continue
		}
		mc := monteCarlo(a, b, region, rng, 60000)
		tol := 0.05*region.Area() + 0.2
		if math.Abs(got-mc) > tol {
			t.Fatalf("trial %d: overlay %v vs MC %v (tol %v)", trial, got, mc, tol)
		}
	}
}

func TestOverlayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	for range 200 {
		a := star(rng, 10, 10, 5, 5+rng.Intn(20))
		b := star(rng, 13, 11, 5, 5+rng.Intn(20))
		inter := IntersectionArea(a, b)
		if inter < -1e-9 {
			t.Fatalf("negative intersection area %v", inter)
		}
		if inter > math.Min(a.Area(), b.Area())+1e-6 {
			t.Fatalf("intersection %v exceeds inputs %v/%v", inter, a.Area(), b.Area())
		}
		union := UnionArea(a, b)
		if union < math.Max(a.Area(), b.Area())-1e-6 {
			t.Fatalf("union %v below max input", union)
		}
		sym := SymmetricDifferenceArea(a, b)
		if math.Abs(sym-(union-inter)) > 1e-6 {
			t.Fatalf("symmetric difference inconsistent: %v vs %v", sym, union-inter)
		}
	}
}

func monteCarlo(a, b *geom.Polygon, r geom.Rect, rng *rand.Rand, n int) float64 {
	hits := 0
	for range n {
		q := geom.Pt(r.MinX+rng.Float64()*r.Width(), r.MinY+rng.Float64()*r.Height())
		if a.ContainsPoint(q) && b.ContainsPoint(q) {
			hits++
		}
	}
	return r.Area() * float64(hits) / float64(n)
}

func star(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	step := 2 * math.Pi / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		ang := float64(i)*step + rng.Float64()*step*0.9
		r := rMax * (0.3 + 0.7*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang))
	}
	return geom.MustPolygon(pts...)
}

func randomHull(rng *rand.Rand, cx, cy, r float64) *geom.Polygon {
	pts := make([]geom.Point, 14)
	for i := range pts {
		pts[i] = geom.Pt(cx+(rng.Float64()*2-1)*r, cy+(rng.Float64()*2-1)*r)
	}
	return geom.ConvexHull(pts)
}

func BenchmarkIntersectionArea(b *testing.B) {
	rng := rand.New(rand.NewSource(184))
	p := star(rng, 0, 0, 10, 300)
	q := star(rng, 3, 2, 10, 300)
	b.ResetTimer()
	for range b.N {
		IntersectionArea(p, q)
	}
}
