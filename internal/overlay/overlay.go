// Package overlay computes exact overlay measures — intersection, union
// and symmetric-difference areas — of two simple polygons, the map-overlay
// operation whose intermediate results the paper's introduction gives as a
// workload that pre-processing filters cannot serve.
//
// The method is a vertical slab decomposition: slab boundaries are placed
// at every vertex x-coordinate of both polygons and at every crossing
// between their boundaries. Inside an open slab no two edges cross, so
// each polygon's interior over the slab is a stack of trapezoids bounded
// by fixed edges, the pairwise overlap length is a linear function of x,
// and the overlap area integrates exactly as a trapezoid. No intersection
// geometry is ever constructed, which sidesteps the degeneracy surgery
// that clipping algorithms require; the cost is O(s·(n+m)) for s slabs,
// fine for analysis workloads (use geom.ClipConvex for the convex fast
// path and core.EstimateIntersectionArea for approximate bulk pricing).
package overlay

import (
	"sort"

	"repro/internal/geom"
)

// IntersectionArea returns the area of p ∩ q.
func IntersectionArea(p, q *geom.Polygon) float64 {
	if !p.Bounds().Intersects(q.Bounds()) {
		return 0
	}
	xs := slabBoundaries(p, q)
	var area float64
	var pe, qe []spanEdge
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		if x1 <= x0 {
			continue
		}
		pe = spanningEdges(p, x0, x1, pe[:0])
		if len(pe) == 0 {
			continue
		}
		qe = spanningEdges(q, x0, x1, qe[:0])
		if len(qe) == 0 {
			continue
		}
		area += slabOverlap(pe, qe, x0, x1)
	}
	return area
}

// UnionArea returns the area of p ∪ q by inclusion–exclusion.
func UnionArea(p, q *geom.Polygon) float64 {
	return p.Area() + q.Area() - IntersectionArea(p, q)
}

// SymmetricDifferenceArea returns the area of (p ∪ q) \ (p ∩ q).
func SymmetricDifferenceArea(p, q *geom.Polygon) float64 {
	return p.Area() + q.Area() - 2*IntersectionArea(p, q)
}

// slabBoundaries returns the sorted, deduplicated slab boundary
// x-coordinates: all vertices of both polygons plus every boundary
// crossing between them, clipped to the common x-range.
func slabBoundaries(p, q *geom.Polygon) []float64 {
	common := p.Bounds().Intersection(q.Bounds())
	var xs []float64
	add := func(x float64) {
		if x >= common.MinX && x <= common.MaxX {
			xs = append(xs, x)
		}
	}
	add(common.MinX)
	add(common.MaxX)
	for _, v := range p.Verts {
		add(v.X)
	}
	for _, v := range q.Verts {
		add(v.X)
	}
	// Boundary crossings between the polygons.
	for i := range p.NumEdges() {
		ep := p.Edge(i)
		bp := ep.Bounds()
		if !bp.Intersects(common) {
			continue
		}
		for j := range q.NumEdges() {
			eq := q.Edge(j)
			if !bp.Intersects(eq.Bounds()) {
				continue
			}
			if x, ok := crossingX(ep, eq); ok {
				add(x)
			}
		}
	}
	sort.Float64s(xs)
	// Deduplicate.
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// crossingX returns the x-coordinate of the proper crossing of a and b,
// when there is one. Endpoint touches and collinear overlaps contribute no
// extra boundary: their x-coordinates are already vertex events.
func crossingX(a, b geom.Segment) (float64, bool) {
	if !a.IntersectsProper(b) {
		return 0, false
	}
	d := a.B.Sub(a.A)
	e := b.B.Sub(b.A)
	denom := d.Cross(e)
	if denom == 0 {
		return 0, false
	}
	t := b.A.Sub(a.A).Cross(e) / denom
	return a.A.X + t*d.X, true
}

// spanEdge is one non-vertical edge spanning a slab, with its y values at
// the slab boundaries.
type spanEdge struct {
	y0, y1 float64
}

// spanningEdges collects the polygon's edges covering [x0, x1]. Because
// every vertex x is a slab boundary, an edge either covers the whole slab
// or misses its interior entirely; vertical edges sit on boundaries and
// never span. The result is sorted by y at the slab midpoint.
func spanningEdges(p *geom.Polygon, x0, x1 float64, dst []spanEdge) []spanEdge {
	for i := range p.NumEdges() {
		e := p.Edge(i)
		ax, bx := e.A.X, e.B.X
		if ax > bx {
			ax, bx = bx, ax
		}
		if ax > x0 || bx < x1 || ax == bx {
			continue
		}
		m := (e.B.Y - e.A.Y) / (e.B.X - e.A.X)
		dst = append(dst, spanEdge{
			y0: e.A.Y + m*(x0-e.A.X),
			y1: e.A.Y + m*(x1-e.A.X),
		})
	}
	sort.Slice(dst, func(i, j int) bool {
		return dst[i].y0+dst[i].y1 < dst[j].y0+dst[j].y1
	})
	return dst
}

// slabOverlap integrates the overlap of the two polygons' interiors over
// one slab: interiors are the even–odd pairings of spanning edges, and
// each interval-pair overlap is a linear function of x (no crossings
// inside the slab), integrating to the average of its endpoint lengths.
func slabOverlap(pe, qe []spanEdge, x0, x1 float64) float64 {
	w := x1 - x0
	var sum float64
	for i := 0; i+1 < len(pe); i += 2 {
		for j := 0; j+1 < len(qe); j += 2 {
			l0 := overlapLen(pe[i].y0, pe[i+1].y0, qe[j].y0, qe[j+1].y0)
			l1 := overlapLen(pe[i].y1, pe[i+1].y1, qe[j].y1, qe[j+1].y1)
			sum += (l0 + l1) / 2
		}
	}
	return sum * w
}

func overlapLen(aLo, aHi, bLo, bHi float64) float64 {
	lo := aLo
	if bLo > lo {
		lo = bLo
	}
	hi := aHi
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
