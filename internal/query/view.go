package query

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// Source is anything the serving layers can query: a plain immutable
// Layer or a live table absorbing mutations. View returns a point-in-time
// read view; for a Layer it is the layer itself as a single component,
// for a live table it composes snapshot ∪ delta − tombstones. Views are
// immutable — a mutation produces a fresh one — so a query holds a
// consistent world for its whole run.
type Source interface {
	View() *View
}

// View is an immutable point-in-time read view over one or two layer
// components: a base layer (usually mmap-snapshot-backed) and an optional
// in-memory delta of live inserts, minus tombstones. Object positions are
// canonical: base survivors in base order, then alive delta objects in
// insertion order — the same order a from-scratch build of the current
// state would use, which is what makes recovery differential-testable.
type View struct {
	base  *Layer
	delta *Layer // nil when no live inserts are visible

	// baseCanon maps base object index → canonical position, -1 for
	// tombstoned objects. Nil means identity (no tombstones).
	baseCanon []int32
	// deltaCanon maps delta-layer object index → canonical position.
	deltaCanon []int32

	numObjects int
	origin     string
}

// viewComponent is one queryable layer of a view plus its canonical
// position mapping (-1 = hidden by a tombstone).
type viewComponent struct {
	layer *Layer
	canon func(int) int32
}

// View returns the layer itself as a single-component view (Source).
func (l *Layer) View() *View {
	l.viewOnce.Do(func() {
		l.selfView = &View{base: l, numObjects: len(l.Data.Objects), origin: l.Origin}
	})
	return l.selfView
}

// NumObjects returns the canonical object count (survivors plus live
// inserts).
func (v *View) NumObjects() int { return v.numObjects }

// Origin describes where the view's data came from, for provenance
// surfaces (layer listings, access logs).
func (v *View) Origin() string { return v.origin }

// Single returns the view's only layer when it is an undecorated single
// component (no delta, no tombstones) — the fast path every pre-ingestion
// query takes, and the required shape for kNN and overlay joins.
func (v *View) Single() (*Layer, bool) {
	if v.delta == nil && v.baseCanon == nil {
		return v.base, true
	}
	return nil, false
}

// Base returns the view's base layer (always non-nil).
func (v *View) Base() *Layer { return v.base }

// Counts breaks the view down: base objects (before tombstones), alive
// delta objects, and tombstoned base objects.
func (v *View) Counts() (base, delta, tombs int) {
	base = len(v.base.Data.Objects)
	if v.delta != nil {
		delta = len(v.delta.Data.Objects)
	}
	tombs = base + delta - v.numObjects
	return base, delta, tombs
}

// Dataset materializes the view's objects in canonical order. Single
// views return their layer's dataset as-is (zero-copy); composed views
// allocate the object slice (the polygons themselves are shared).
func (v *View) Dataset() *data.Dataset {
	if l, ok := v.Single(); ok {
		return l.Data
	}
	objs := make([]*geom.Polygon, 0, v.numObjects)
	for _, p := range v.base.Data.Objects {
		objs = append(objs, p)
	}
	if v.baseCanon != nil {
		objs = objs[:0]
		for i, p := range v.base.Data.Objects {
			if v.baseCanon[i] >= 0 {
				objs = append(objs, p)
			}
		}
	}
	if v.delta != nil {
		objs = append(objs, v.delta.Data.Objects...)
	}
	return &data.Dataset{Name: v.base.Data.Name, Objects: objs}
}

// components lists the view's queryable layers with their canonical
// mappings.
func (v *View) components() []viewComponent {
	canonBase := func(i int) int32 { return int32(i) }
	if v.baseCanon != nil {
		canonBase = func(i int) int32 { return v.baseCanon[i] }
	}
	comps := []viewComponent{{layer: v.base, canon: canonBase}}
	if v.delta != nil {
		comps = append(comps, viewComponent{layer: v.delta, canon: func(i int) int32 { return v.deltaCanon[i] }})
	}
	return comps
}

// LiveUnsupportedError reports a query that requires a single-component
// view (kNN's ordered index walk, the overlay join's accumulation
// protocol) being aimed at a view with live mutations. Compact the table
// to fold the delta down, then retry.
type LiveUnsupportedError struct {
	Op string
}

func (e *LiveUnsupportedError) Error() string {
	return fmt.Sprintf("query: %s does not support a live delta view; compact the layer first", e.Op)
}

// IntersectionSelectView runs IntersectionSelect over every component of
// the view and merges the results into canonical positions (sorted
// ascending). Single-component views take the exact legacy path. A
// *PartialError carries the merged results so far; a *BudgetError (per
// component) aborts with no results, as on a plain layer.
func IntersectionSelectView(ctx context.Context, v *View, query *geom.Polygon, tester *core.Tester, opt SelectionOptions) ([]int, Cost, error) {
	if l, ok := v.Single(); ok {
		return IntersectionSelect(ctx, l, query, tester, opt)
	}
	var out []int
	var cost Cost
	for _, c := range v.components() {
		o := opt
		if opt.Sink != nil {
			// Stream per-component rows through a canonical-remapping sink
			// (tombstoned objects dropped); the returned union is still
			// sorted, the stream is per-component ordered.
			canon := c.canon
			var remapped []int
			o.Sink = func(ids []int) error {
				remapped = remapped[:0]
				for _, id := range ids {
					if p := canon(id); p >= 0 {
						remapped = append(remapped, int(p))
					}
				}
				if len(remapped) == 0 {
					return nil
				}
				return opt.Sink(remapped)
			}
		}
		ids, cc, err := IntersectionSelect(ctx, c.layer, query, tester, o)
		cost.Add(cc)
		for _, id := range ids {
			if p := c.canon(id); p >= 0 {
				out = append(out, int(p))
			}
		}
		if err != nil {
			if _, ok := err.(*BudgetError); ok {
				return nil, cost, err
			}
			sort.Ints(out)
			cost.Results = len(out)
			return out, cost, err
		}
	}
	sort.Ints(out)
	cost.Results = len(out)
	return out, cost, nil
}

// IntersectionJoinView composes IntersectionJoinOpt across the views'
// components (up to base×base, base×delta, delta×base, delta×delta),
// remaps pairs to canonical positions, drops tombstoned participants,
// and returns the union sorted by (A, B). Single×single views take the
// exact legacy path, byte for byte.
func IntersectionJoinView(ctx context.Context, a, b *View, tester *core.Tester, opt JoinOptions) ([]Pair, Cost, error) {
	la, aok := a.Single()
	lb, bok := b.Single()
	if aok && bok {
		return IntersectionJoinOpt(ctx, la, lb, tester, opt)
	}
	join := func(x, y *Layer) ([]Pair, Cost, error) {
		return IntersectionJoinOpt(ctx, x, y, tester, opt)
	}
	return composeJoin(a, b, join)
}

// WithinDistanceJoinView is IntersectionJoinView for the buffer query.
func WithinDistanceJoinView(ctx context.Context, a, b *View, d float64, tester *core.Tester, opt DistanceFilterOptions) ([]Pair, Cost, error) {
	la, aok := a.Single()
	lb, bok := b.Single()
	if aok && bok {
		return WithinDistanceJoin(ctx, la, lb, d, tester, opt)
	}
	join := func(x, y *Layer) ([]Pair, Cost, error) {
		return WithinDistanceJoin(ctx, x, y, d, tester, opt)
	}
	return composeJoin(a, b, join)
}

// ParallelIntersectionJoinView is IntersectionJoinView over the
// worker-pool join: component joins run one after another, each
// internally parallel, with the testers' stats summed across components.
func ParallelIntersectionJoinView(ctx context.Context, a, b *View, opt ParallelOptions) ([]Pair, core.Stats, error) {
	la, aok := a.Single()
	lb, bok := b.Single()
	if aok && bok {
		return ParallelIntersectionJoin(ctx, la, lb, opt)
	}
	var out []Pair
	var stats core.Stats
	for _, ca := range a.components() {
		for _, cb := range b.components() {
			pairs, st, err := ParallelIntersectionJoin(ctx, ca.layer, cb.layer, opt)
			stats.Add(st)
			for _, pr := range pairs {
				pa, pb := ca.canon(pr.A), cb.canon(pr.B)
				if pa >= 0 && pb >= 0 {
					out = append(out, Pair{int(pa), int(pb)})
				}
			}
			if err != nil {
				if _, ok := err.(*BudgetError); ok {
					return nil, stats, err
				}
				sortPairsByOuter(out)
				return out, stats, err
			}
		}
	}
	sortPairsByOuter(out)
	return out, stats, nil
}

// composeJoin runs one pairwise join function across every component
// combination of the two views and merges into canonical coordinates.
// Tombstoned objects still pass through the component joins (they live in
// the base layer's R-tree) and are dropped at the remap; the summed Cost
// therefore includes their filtering work, which is the honest price of
// querying an uncompacted view.
func composeJoin(a, b *View, join func(x, y *Layer) ([]Pair, Cost, error)) ([]Pair, Cost, error) {
	var out []Pair
	var cost Cost
	for _, ca := range a.components() {
		for _, cb := range b.components() {
			pairs, cc, err := join(ca.layer, cb.layer)
			cost.Add(cc)
			for _, pr := range pairs {
				pa, pb := ca.canon(pr.A), cb.canon(pr.B)
				if pa >= 0 && pb >= 0 {
					out = append(out, Pair{int(pa), int(pb)})
				}
			}
			if err != nil {
				if _, ok := err.(*BudgetError); ok {
					return nil, cost, err
				}
				sortPairsByOuter(out)
				cost.Results = len(out)
				return out, cost, err
			}
		}
	}
	sortPairsByOuter(out)
	cost.Results = len(out)
	return out, cost, nil
}
