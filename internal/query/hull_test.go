package query

import (
	"testing"

	"repro/internal/core"
)

func TestHullFilterPreservesResults(t *testing.T) {
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, plainCost, err := IntersectionJoin(bg, layerA, layerB, sw)
	if err != nil {
		t.Fatal(err)
	}
	got, hullCost, err := IntersectionJoinOpt(bg, layerA, layerB, sw, JoinOptions{UseHullFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	g, w := sortedPairs(got), sortedPairs(want)
	if len(g) != len(w) {
		t.Fatalf("hull filter changed results: %d vs %d", len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("pair %d = %v, want %v", i, g[i], w[i])
		}
	}
	if hullCost.FilterRejects == 0 {
		t.Error("hull filter rejected nothing")
	}
	if hullCost.Compared+hullCost.FilterRejects != plainCost.Compared {
		t.Errorf("stage accounting: %d compared + %d rejected != %d candidates",
			hullCost.Compared, hullCost.FilterRejects, plainCost.Compared)
	}
}

func TestHullsCachedAndConcurrent(t *testing.T) {
	l := layerA
	done := make(chan *int, 8)
	for range 8 {
		go func() {
			hs := l.Hulls()
			n := hs.Len()
			done <- &n
		}()
	}
	for range 8 {
		n := <-done
		if *n != len(l.Data.Objects) {
			t.Fatalf("hull set size %d", *n)
		}
	}
	if l.Hulls() != l.Hulls() {
		t.Error("hulls not cached")
	}
}
