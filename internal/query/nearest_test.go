package query

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/geom"
)

func TestKNearestMatchesBrute(t *testing.T) {
	q := geom.MustPolygon(
		geom.Pt(100, 100), geom.Pt(140, 100), geom.Pt(140, 140), geom.Pt(100, 140),
	)
	// Brute oracle: exact region distance to every object.
	type de struct {
		id int
		d  float64
	}
	all := make([]de, len(layerA.Data.Objects))
	for i, p := range layerA.Data.Objects {
		all[i] = de{i, dist.MinDistBrute(q, p)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })

	for _, k := range []int{1, 3, 10} {
		got, err := KNearest(bg, layerA, q, k, dist.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: %d results", k, len(got))
		}
		for i, nb := range got {
			if math.Abs(nb.Distance-all[i].d) > 1e-9 {
				t.Fatalf("k=%d result %d: distance %v, brute %v (id %d vs %d)",
					k, i, nb.Distance, all[i].d, nb.ID, all[i].id)
			}
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Distance < got[j].Distance }) {
			t.Fatal("results not sorted by distance")
		}
	}
	if got, err := KNearest(bg, layerA, q, 0, dist.Options{}); got != nil || err != nil {
		t.Errorf("k=0 returned %v, %v", got, err)
	}
}

func TestKNearestIntersectingIsZero(t *testing.T) {
	// A query containing an object must report distance 0 for it.
	obj := layerA.Data.Objects[0]
	b := obj.Bounds().Expand(1)
	q := geom.MustPolygon(
		geom.Pt(b.MinX, b.MinY), geom.Pt(b.MaxX, b.MinY),
		geom.Pt(b.MaxX, b.MaxY), geom.Pt(b.MinX, b.MaxY),
	)
	got, err := KNearest(bg, layerA, q, 1, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Distance != 0 {
		t.Fatalf("nearest to containing query = %+v, want distance 0", got)
	}
}
