package query

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
)

// freshLayers builds private layers so breaker state tripped here cannot
// leak into the package's shared fixtures.
func freshLayers() (*Layer, *Layer) {
	return NewLayer(data.MustLoad("LANDC", 0.004)), NewLayer(data.MustLoad("LANDO", 0.002))
}

// TestBreakerTripsJoinBitIdentical is the tentpole acceptance test at the
// library level: with KindWrongAnswer injected at SiteHWFilter, a join
// whose tester verifies every hardware negative (SentinelEvery 1)
// produces a result set bit-identical to the software-only baseline, and
// the layer pair's breaker trips. With verification at rate 1 every lying
// negative is overturned before the breaker even reacts; the breaker's
// job is to stop paying the double-test tax by routing the remainder of
// the workload to software outright.
func TestBreakerTripsJoinBitIdentical(t *testing.T) {
	a, b := freshLayers()

	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionJoinOpt(bg, a, b, sw, JoinOptions{NoBreaker: true})
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(11).Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 1)
	faulted := core.NewTester(core.Config{SWThreshold: 0, SentinelEvery: 1, Faults: inj})
	br := core.NewBreaker(8)
	a.SetBreaker(b, br)

	got, _, err := IntersectionJoinOpt(bg, a, b, faulted, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gs, ws := sortedPairs(got), sortedPairs(want)
	if len(gs) != len(ws) {
		t.Fatalf("faulted join: %d results, want %d (software baseline)", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("faulted join result %d = %v, want %v", i, gs[i], ws[i])
		}
	}
	if faulted.Stats.SentinelDisagreements == 0 {
		t.Error("expected sentinel disagreements under a lying filter")
	}
	if br.Trips() == 0 {
		t.Error("breaker never tripped under a lying filter")
	}
	if faulted.Stats.BreakerOpenSkips == 0 {
		t.Error("no pairs were routed to software by the open breaker")
	}

	// Recovery: disarm the fault and keep querying. Each cooldown expiry
	// admits one probe under forced verification; with the filter honest
	// again the probe closes the breaker and the hardware path resumes.
	inj.Disarm(faultinject.SiteHWFilter)
	for i := 0; i < 50 && br.State() != core.BreakerClosed; i++ {
		if _, _, err := IntersectionJoinOpt(bg, a, b, faulted, JoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if br.State() != core.BreakerClosed {
		t.Fatalf("breaker did not recover after fault removal: state %v", br.State())
	}
	if br.Recoveries() == 0 {
		t.Error("recovery not counted")
	}

	// With the breaker closed and the filter honest, the hardware path is
	// genuinely back: a fresh join must record hardware rejects again and
	// still match the baseline.
	faulted.ResetStats()
	got, _, err = IntersectionJoinOpt(bg, a, b, faulted, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Stats.HWRejects+faulted.Stats.HWPassed == 0 {
		t.Error("hardware filter not active after recovery")
	}
	gs = sortedPairs(got)
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("post-recovery join result %d = %v, want %v", i, gs[i], ws[i])
		}
	}
}

// TestBreakerSharedAcrossParallelWorkers: one worker's sentinel
// disagreement degrades the whole parallel join — every worker consults
// the same layer-pair breaker — and the result stays bit-identical to the
// software baseline.
func TestBreakerSharedAcrossParallelWorkers(t *testing.T) {
	a, b := freshLayers()
	want := pairSet(mustJoin(t, a, b))

	inj := faultinject.New(13).Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 1)
	br := core.NewBreaker(8)
	a.SetBreaker(b, br)
	opt := ParallelOptions{
		Workers: 4,
		Tester: func() *core.Tester {
			return core.NewTester(core.Config{SWThreshold: 0, SentinelEvery: 1, Faults: inj})
		},
	}
	got, stats, err := ParallelIntersectionJoin(bg, a, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel faulted join: %d results, want %d", len(got), len(want))
	}
	for _, pr := range got {
		if !want[pr] {
			t.Fatalf("parallel faulted join produced spurious pair %v", pr)
		}
	}
	if br.Trips() == 0 {
		t.Error("shared breaker never tripped")
	}
	if stats.SentinelChecks == 0 {
		t.Error("no sentinel checks recorded in summed worker stats")
	}
}

func mustJoin(t *testing.T, a, b *Layer) []Pair {
	t.Helper()
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionJoinOpt(bg, a, b, sw, JoinOptions{NoBreaker: true})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestDeadlineErrorCause: a context governed by a wall-clock budget via
// context.WithTimeoutCause surfaces the typed *DeadlineError through the
// PartialError chain while still matching context.DeadlineExceeded.
func TestDeadlineErrorCause(t *testing.T) {
	budget := time.Nanosecond
	ctx, cancel := context.WithTimeoutCause(bg, 0, &DeadlineError{Budget: budget})
	defer cancel()
	<-ctx.Done()

	tester := core.NewTester(core.Config{DisableHardware: true})
	_, _, err := IntersectionJoin(ctx, layerA, layerB, tester)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("expired-budget join error = %v, want *PartialError", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("PartialError chain %v does not carry *DeadlineError", err)
	}
	if de.Budget != budget {
		t.Errorf("DeadlineError budget = %v, want %v", de.Budget, budget)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("DeadlineError chain must still match context.DeadlineExceeded")
	}
}
