package query

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

func TestParallelIntersectionJoinMatchesSerial(t *testing.T) {
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionJoin(bg, layerA, layerB, sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 7} {
		got, stats, err := ParallelIntersectionJoin(bg, layerA, layerB, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		g, w := sortedPairs(got), sortedPairs(want)
		if len(g) != len(w) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("workers=%d: pair %d = %v, want %v", workers, i, g[i], w[i])
			}
		}
		if stats.Tests == 0 {
			t.Errorf("workers=%d: no stats gathered", workers)
		}
	}
}

func TestParallelWithinDistanceJoinMatchesSerial(t *testing.T) {
	d := data.BaseD(layerA.Data, layerB.Data)
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := WithinDistanceJoin(bg, layerA, layerB, d, sw, DistanceFilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := ParallelWithinDistanceJoin(bg, layerA, layerB, d, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, w := sortedPairs(got), sortedPairs(want)
	if len(g) != len(w) {
		t.Fatalf("%d pairs, want %d", len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("pair %d = %v, want %v", i, g[i], w[i])
		}
	}
	// Every test was accounted to exactly one resolution path.
	accounted := stats.MBRRejects + stats.IntervalTrueHits + stats.IntervalRejects + stats.PIPHits + stats.SigRejects + stats.SWDirect +
		stats.HWRejects + stats.HWPassed + stats.HWFallbacks
	if accounted != stats.Tests {
		t.Errorf("stats do not partition tests: %+v", stats)
	}
}

func TestParallelCustomTester(t *testing.T) {
	// The factory runs once per worker goroutine, so the counter must be
	// atomic.
	var made atomic.Int32
	opt := ParallelOptions{
		Workers: 3,
		Tester: func() *core.Tester {
			made.Add(1)
			return core.NewTester(core.Config{DisableHardware: true})
		},
	}
	if _, _, err := ParallelIntersectionJoin(bg, layerA, layerB, opt); err != nil {
		t.Fatal(err)
	}
	if n := made.Load(); n != 3 {
		t.Errorf("tester factory called %d times, want 3", n)
	}
}

func TestParallelEmptyLayers(t *testing.T) {
	empty := NewLayer(&data.Dataset{Name: "empty"})
	pairs, _, err := ParallelIntersectionJoin(bg, empty, layerB, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Error("empty layer produced pairs")
	}
}

func BenchmarkParallelJoin(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(b.Name()+"-w"+string(rune('0'+workers)), func(b *testing.B) {
			for range b.N {
				_, _, _ = ParallelIntersectionJoin(bg, layerA, layerB, ParallelOptions{Workers: workers})
			}
		})
	}
}
