package query

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/data"
)

// TestIntervalJoinDifferentialGrid is the interval subsystem's acceptance
// differential: across {serial, pipeline, per-pair ablation} × {intervals
// on, intervals off} × {derived grid, forced orders} × {in-memory,
// snapshot-backed} the join result must be bit-identical — the interval
// filter may only change which stage resolves a pair, never the answer.
// The snapshot-backed intervals-off leg is the v1 raster-signature path,
// so the equality also pins v2-vs-v1 result identity. Run under -race
// this additionally exercises the lazy per-layer interval build from
// concurrent pipeline workers.
func TestIntervalJoinDifferentialGrid(t *testing.T) {
	da := data.MustLoad("LANDC", 0.01)
	db := data.MustLoad("LANDO", 0.01)

	for _, backing := range []string{"memory", "snapshot"} {
		t.Run(backing, func(t *testing.T) {
			var a, b *Layer
			if backing == "snapshot" {
				a, b = snapshotLayer(t, da, false), snapshotLayer(t, db, false)
			} else {
				a, b = NewLayer(da), NewLayer(db)
			}

			// Baseline: serial join with intervals ablated. On the snapshot
			// backing this is the v1 signature path; in memory it is the
			// plain exact path.
			base := swTester()
			want, _, err := IntersectionJoinOpt(bg, a, b, base, JoinOptions{NoIntervals: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("baseline join found no pairs; differential is vacuous")
			}
			if backing == "snapshot" && base.Stats.SigChecks == 0 {
				t.Fatal("intervals-off snapshot baseline did not exercise the v1 signature path")
			}
			want = sortedPairs(want)

			// Serial with intervals on: identical result, filter engaged.
			ser := swTester()
			got, _, err := IntersectionJoinOpt(bg, a, b, ser, JoinOptions{})
			if err != nil {
				t.Fatal(err)
			}
			samePairsExact(t, "serial intervals", sortedPairs(got), want)
			if ser.Stats.IntervalChecks == 0 || ser.Stats.IntervalTrueHits == 0 {
				t.Fatalf("interval filter idle on %s backing: %+v", backing, ser.Stats)
			}
			checkStatsPartition(t, "serial intervals", ser.Stats)

			// Pipeline and per-pair ablation, intervals on/off, grid orders.
			for _, order := range []int{0, 6, 9} {
				for _, noIval := range []bool{false, true} {
					for _, noPipe := range []bool{false, true} {
						if noIval && order != 0 {
							continue // order is meaningless with intervals off
						}
						name := fmt.Sprintf("order=%d nointervals=%v nopipeline=%v", order, noIval, noPipe)
						opt := PipelineOptions{
							ParallelOptions: ParallelOptions{
								Workers:       4,
								Tester:        swTester,
								NoIntervals:   noIval,
								IntervalOrder: order,
							},
							NoPipeline: noPipe,
						}
						got, stats, err := PipelineIntersectionJoin(bg, a, b, opt)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						samePairsExact(t, name, sortedPairs(got), want)
						checkStatsPartition(t, name, stats)
						if !noIval && stats.IntervalChecks == 0 {
							t.Errorf("%s: interval filter idle", name)
						}
						if noIval && stats.IntervalChecks != 0 {
							t.Errorf("%s: NoIntervals leaked %d interval checks", name, stats.IntervalChecks)
						}
					}
				}
			}
		})
	}
}

// TestIntervalJoinDifferentialSynthetic repeats the differential on the
// synthetic layer pair (PRISM grid cells against WATER polygons), whose
// mostly-disjoint geometry stresses the reject verdict rather than LANDC
// ⋈ LANDO's true hits.
func TestIntervalJoinDifferentialSynthetic(t *testing.T) {
	a := NewLayer(data.MustLoad("PRISM", 0.02))
	b := NewLayer(data.MustLoad("WATER", 0.02))

	want, _, err := IntersectionJoinOpt(bg, a, b, swTester(), JoinOptions{NoIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	want = sortedPairs(want)

	tester := swTester()
	got, _, err := IntersectionJoinOpt(bg, a, b, tester, JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samePairsExact(t, "synthetic serial", sortedPairs(got), want)
	if tester.Stats.IntervalChecks == 0 {
		t.Fatalf("interval filter idle on synthetic pair: %+v", tester.Stats)
	}
	checkStatsPartition(t, "synthetic serial", tester.Stats)

	pgot, pstats, err := PipelineIntersectionJoin(bg, a, b, PipelineOptions{
		ParallelOptions: ParallelOptions{Workers: 4, Tester: swTester},
	})
	if err != nil {
		t.Fatal(err)
	}
	samePairsExact(t, "synthetic pipeline", sortedPairs(pgot), want)
	checkStatsPartition(t, "synthetic pipeline", pstats)
}

// TestIntervalConcurrentLazyBuild hammers one fresh layer pair with
// concurrent joins at two different forced orders, so multiple goroutines
// race into the per-(layer, grid) lazy interval construction. Meaningful
// chiefly under -race: the per-entry once must publish each column
// exactly once, and every join must still agree with the ablated answer.
func TestIntervalConcurrentLazyBuild(t *testing.T) {
	a := NewLayer(data.MustLoad("LANDC", 0.01))
	b := NewLayer(data.MustLoad("LANDO", 0.01))
	want, _, err := IntersectionJoinOpt(bg, a, b, swTester(), JoinOptions{NoIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	want = sortedPairs(want)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			order := 0
			if i%2 == 1 {
				order = 8
			}
			got, _, err := ParallelIntersectionJoin(bg, a, b, ParallelOptions{
				Workers: 2, Tester: swTester, IntervalOrder: order,
			})
			if err != nil {
				errs <- err
				return
			}
			got = sortedPairs(got)
			if len(got) != len(want) {
				errs <- fmt.Errorf("concurrent join %d: %d pairs, want %d", i, len(got), len(want))
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- fmt.Errorf("concurrent join %d: pair %d = %v, want %v", i, j, got[j], want[j])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
