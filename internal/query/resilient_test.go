package query

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/geom"
)

// softwareOracle returns the software-only intersection join result, the
// ground truth every degraded configuration must still produce.
func softwareOracle(t *testing.T) []Pair {
	t.Helper()
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionJoin(bg, layerA, layerB, sw)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func pairSet(pairs []Pair) map[Pair]bool {
	m := make(map[Pair]bool, len(pairs))
	for _, pr := range pairs {
		m[pr] = true
	}
	return m
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// baseline (the runtime needs a moment to reap exiting goroutines).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d at start, %d after join", before, runtime.NumGoroutine())
}

// TestParallelJoinRecoversPanickingTester is the regression test for the
// worker-pool deadlock class: before panic isolation, a tester that
// panicked mid-refinement escaped the worker goroutine, killing the whole
// process (an unrecovered panic in the old worker loop; with recover
// anywhere above it, the skipped results-channel send would have hung the
// collector instead). Now every pair's test runs under recover, the pair
// is retried on the software path, and the join completes with the exact
// software result set.
func TestParallelJoinRecoversPanickingTester(t *testing.T) {
	want := pairSet(softwareOracle(t))

	inj := faultinject.New(7).Inject(faultinject.SiteIntersects, faultinject.KindPanic, 1)
	opt := ParallelOptions{
		Workers: 4,
		Tester: func() *core.Tester {
			return core.NewTester(core.Config{DisableHardware: true, Faults: inj})
		},
	}
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	var (
		got   []Pair
		stats core.Stats
		err   error
	)
	go func() {
		defer close(done)
		got, stats, err = ParallelIntersectionJoin(bg, layerA, layerB, opt)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("parallel join deadlocked with a panicking tester")
	}
	if err != nil {
		t.Fatalf("join failed: %v", err)
	}
	checkNoGoroutineLeak(t, before)

	if stats.Panics == 0 {
		t.Error("no panics recorded despite rate-1 injection")
	}
	if stats.Quarantined != 0 {
		t.Errorf("%d pairs quarantined; software retries should all succeed", stats.Quarantined)
	}
	g := pairSet(got)
	if len(g) != len(want) {
		t.Fatalf("degraded join: %d pairs, software oracle %d", len(g), len(want))
	}
	for pr := range want {
		if !g[pr] {
			t.Fatalf("degraded join lost pair %v", pr)
		}
	}
}

// TestParallelRefineRetriesOnSoftware checks the retry tester's exact
// configuration: hardware disabled, fault injection disarmed, everything
// else inherited from the worker tester.
func TestParallelRefineRetriesOnSoftware(t *testing.T) {
	candidates := make([]Pair, 100)
	for i := range candidates {
		candidates[i] = Pair{i, i}
	}
	inj := faultinject.New(1) // armed with nothing; only its presence is checked
	opt := ParallelOptions{
		Workers: 3,
		Tester: func() *core.Tester {
			return core.NewTester(core.Config{Resolution: 4, SWThreshold: 123, Faults: inj})
		},
	}
	got, stats, err := parallelRefine(bg, candidates, opt, "test", func(tt *core.Tester, pr Pair) bool {
		cfg := tt.Config()
		if !cfg.DisableHardware {
			panic("primary path poisoned")
		}
		if cfg.Faults != nil {
			t.Error("retry tester still carries the fault injector")
		}
		if cfg.SWThreshold != 123 {
			t.Errorf("retry tester lost configuration: SWThreshold = %d", cfg.SWThreshold)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(candidates) {
		t.Fatalf("retry kept %d of %d pairs", len(got), len(candidates))
	}
	if stats.Panics != int64(len(candidates)) {
		t.Errorf("Panics = %d, want %d", stats.Panics, len(candidates))
	}
	if stats.Quarantined != 0 {
		t.Errorf("Quarantined = %d, want 0", stats.Quarantined)
	}
}

// TestParallelRefineQuarantinesPoisonPair: a pair that panics on the
// software retry too is dropped and counted, and every other pair is
// unaffected.
func TestParallelRefineQuarantinesPoisonPair(t *testing.T) {
	candidates := make([]Pair, 100)
	for i := range candidates {
		candidates[i] = Pair{i, i}
	}
	poison := Pair{13, 13}
	opt := ParallelOptions{Workers: 4, Tester: func() *core.Tester {
		return core.NewTester(core.Config{DisableHardware: true})
	}}
	got, stats, err := parallelRefine(bg, candidates, opt, "test", func(_ *core.Tester, pr Pair) bool {
		if pr == poison {
			panic("poisoned geometry")
		}
		return pr.A%2 == 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Panics != 1 || stats.Quarantined != 1 {
		t.Errorf("Panics/Quarantined = %d/%d, want 1/1", stats.Panics, stats.Quarantined)
	}
	want := 0
	for _, pr := range candidates {
		if pr.A%2 == 0 && pr != poison {
			want++
		}
	}
	g := pairSet(got)
	if len(g) != want {
		t.Errorf("%d pairs kept, want %d", len(g), want)
	}
	if g[poison] {
		t.Error("quarantined pair leaked into the result set")
	}
}

// TestParallelJoinCancellation exercises mid-join cancellation: with every
// refinement slowed by an injected delay, cancelling the context must
// return promptly (long before the remaining work), leak no goroutines,
// and report partial progress through a typed *PartialError.
func TestParallelJoinCancellation(t *testing.T) {
	inj := faultinject.New(3).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 1).
		SetDelay(2 * time.Millisecond)
	opt := ParallelOptions{
		Workers: 2,
		Tester: func() *core.Tester {
			return core.NewTester(core.Config{DisableHardware: true, Faults: inj})
		},
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	before := runtime.NumGoroutine()
	start := time.Now()
	got, stats, err := ParallelIntersectionJoin(ctx, layerA, layerB, opt)
	elapsed := time.Since(start)
	checkNoGoroutineLeak(t, before)

	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err does not unwrap to context.Canceled: %v", err)
	}
	if pe.Done >= pe.Total {
		t.Errorf("PartialError reports full completion: %d/%d", pe.Done, pe.Total)
	}
	// The whole join would take Total×2ms/2 workers; prompt cancellation
	// must beat that by a wide margin. The bound is loose for CI noise.
	if budget := time.Duration(pe.Total) * time.Millisecond; elapsed > budget {
		t.Errorf("cancellation took %v, full join would be ~%v", elapsed, budget)
	}
	if stats.Tests == 0 {
		t.Error("no partial stats returned")
	}
	// Partial results must still be sound: every returned pair is a real
	// software-verified intersection.
	want := pairSet(softwareOracle(t))
	for _, pr := range got {
		if !want[pr] {
			t.Errorf("partial result %v is not in the software result set", pr)
		}
	}
}

// TestSerialCancellation covers the serial pipelines: an already-cancelled
// context stops each query at its next stride check with a typed partial
// error, returning whatever was computed.
func TestSerialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	sw := core.NewTester(core.Config{DisableHardware: true})

	q := layerB.Data.Objects[0]
	_, _, err := IntersectionSelect(ctx, layerA, q, sw, SelectionOptions{InteriorLevel: -1})
	var pe *PartialError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("select: err = %v, want PartialError wrapping Canceled", err)
	}

	_, _, err = IntersectionJoin(ctx, layerA, layerB, sw)
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("join: err = %v, want PartialError wrapping Canceled", err)
	}

	_, _, err = WithinDistanceJoin(ctx, layerA, layerB, 1, sw, DistanceFilterOptions{})
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("within-join: err = %v, want PartialError wrapping Canceled", err)
	}

	_, _, err = WithinDistanceSelect(ctx, layerA, q, 1, sw, DistanceFilterOptions{})
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("within-select: err = %v, want PartialError wrapping Canceled", err)
	}

	_, _, err = OverlayAreaJoin(ctx, layerA, layerB, sw)
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("overlay-join: err = %v, want PartialError wrapping Canceled", err)
	}

	knn, err := KNearest(ctx, layerA, q, 5, dist.Options{})
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Errorf("knn: err = %v, want PartialError wrapping Canceled", err)
	}
	if len(knn) >= 5 {
		t.Errorf("cancelled knn returned a full result set (%d)", len(knn))
	}
}

// TestCandidateBudget checks the fail-fast resource guard: a join whose
// MBR filtering overflows the budget aborts with a typed *BudgetError
// before any refinement work.
func TestCandidateBudget(t *testing.T) {
	sw := core.NewTester(core.Config{DisableHardware: true})

	pairs, cost, err := IntersectionJoinOpt(bg, layerA, layerB, sw, JoinOptions{MaxCandidates: 1})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Budget != 1 || be.Candidates <= be.Budget {
		t.Errorf("BudgetError fields: %+v", be)
	}
	if pairs != nil {
		t.Error("budget-tripped join returned results")
	}
	if cost.Compared != 0 {
		t.Errorf("budget-tripped join did refinement work: %+v", cost)
	}
	if sw.Stats.Tests != 0 {
		t.Errorf("budget-tripped join ran %d pair tests", sw.Stats.Tests)
	}

	_, _, err = ParallelIntersectionJoin(bg, layerA, layerB, ParallelOptions{MaxCandidates: 1})
	if !errors.As(err, &be) {
		t.Errorf("parallel join: err = %v, want *BudgetError", err)
	}

	q := layerB.Data.Objects[0]
	_, _, err = IntersectionSelect(bg, layerA, q, sw, SelectionOptions{InteriorLevel: -1, MaxCandidates: 1})
	if !errors.As(err, &be) {
		t.Errorf("select: err = %v, want *BudgetError", err)
	}

	// A budget above the candidate count changes nothing.
	got, _, err := IntersectionJoinOpt(bg, layerA, layerB, sw, JoinOptions{MaxCandidates: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairSet(got)) != len(pairSet(softwareOracle(t))) {
		t.Error("generous budget changed the result set")
	}
}

// TestAcceptanceFaultedJoinUnderDeadline is the issue's acceptance
// scenario: an intersection join with per-pair fault injection (panics
// and delays) running under a cancellable context.
//
// Part 1 — faults only: the join completes, recovers every panic onto the
// software path, and produces exactly the software-only result set.
// Part 2 — faults plus a short deadline: the join returns promptly with a
// typed partial error, partial stats, and no goroutine leak.
func TestAcceptanceFaultedJoinUnderDeadline(t *testing.T) {
	want := pairSet(softwareOracle(t))
	newOpt := func(seed int64, delay time.Duration) ParallelOptions {
		inj := faultinject.New(seed).
			Inject(faultinject.SiteIntersects, faultinject.KindPanic, 0.3).
			Inject(faultinject.SiteIntersects, faultinject.KindDelay, 0.2).
			Inject(faultinject.SiteRenderDraw, faultinject.KindPanic, 0.02).
			SetDelay(delay)
		return ParallelOptions{
			Workers: 4,
			Tester: func() *core.Tester {
				// Hardware path armed, threshold 0: every non-trivial pair
				// exercises the raster hook too.
				return core.NewTester(core.Config{Resolution: 8, SWThreshold: 0, Faults: inj})
			},
		}
	}

	// Part 1: panics and delays, no deadline — exact software results.
	got, stats, err := ParallelIntersectionJoin(bg, layerA, layerB, newOpt(11, 10*time.Microsecond))
	if err != nil {
		t.Fatalf("faulted join failed: %v", err)
	}
	if stats.Panics == 0 {
		t.Error("fault schedule fired no panics; raise the rate or fix the seed")
	}
	if stats.Quarantined != 0 {
		t.Errorf("%d pairs quarantined; injected faults must not survive the software retry", stats.Quarantined)
	}
	g := pairSet(got)
	if len(g) != len(want) {
		t.Fatalf("faulted join: %d pairs, software oracle %d", len(g), len(want))
	}
	for pr := range want {
		if !g[pr] {
			t.Fatalf("faulted join lost pair %v", pr)
		}
	}

	// Part 2: same fault schedule under a deadline that expires mid-join.
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	before := runtime.NumGoroutine()
	got, stats, err = ParallelIntersectionJoin(ctx, layerA, layerB, newOpt(11, 2*time.Millisecond))
	checkNoGoroutineLeak(t, before)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("deadlined join: err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadlined join: err does not unwrap to DeadlineExceeded: %v", err)
	}
	if pe.Done >= pe.Total {
		t.Errorf("deadlined join claims completion: %d/%d", pe.Done, pe.Total)
	}
	for _, pr := range got {
		if !want[pr] {
			t.Errorf("partial result %v not in the software result set", pr)
		}
	}
	_ = stats // partial stats: only required to be present, values depend on timing
}

// TestWrongAnswerTrustBoundary documents the hardware-filter trust
// boundary with both flip directions (see internal/faultinject's package
// comment):
//
//   - overlap → "no overlap" silently loses a result: the design trusts
//     conservative rasterization, and nothing cheaper than the software
//     test could catch the lie;
//   - "no overlap" → overlap is absorbed: an inconclusive verdict always
//     goes to the exact software test.
func TestWrongAnswerTrustBoundary(t *testing.T) {
	// Crossing bars: boundaries intersect, neither contains the other's
	// vertices, so the pair reaches the hardware filter.
	horiz := geom.MustPolygon(geom.Pt(0, 4), geom.Pt(10, 4), geom.Pt(10, 6), geom.Pt(0, 6))
	vert := geom.MustPolygon(geom.Pt(4, 0), geom.Pt(6, 0), geom.Pt(6, 10), geom.Pt(4, 10))
	// Disjoint slanted strips with overlapping MBRs and no containment.
	stripLo := geom.MustPolygon(geom.Pt(0, 0), geom.Pt(10, 4), geom.Pt(10, 6), geom.Pt(0, 2))
	stripHi := geom.MustPolygon(geom.Pt(0, 5), geom.Pt(10, 9), geom.Pt(10, 11), geom.Pt(0, 7))

	honest := core.NewTester(core.Config{Resolution: 32, SWThreshold: 0})
	if !honest.Intersects(horiz, vert) {
		t.Fatal("honest hardware: crossing bars must intersect")
	}
	if honest.Intersects(stripLo, stripHi) {
		t.Fatal("honest hardware: disjoint strips must not intersect")
	}

	lying := func() *core.Tester {
		inj := faultinject.New(5).Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 1)
		return core.NewTester(core.Config{Resolution: 32, SWThreshold: 0, Faults: inj})
	}

	// Direction 1: true overlap flipped to reject — the result is silently
	// lost. This is the trust boundary: a hardware filter that lies in the
	// conservative direction cannot be caught.
	if lying().Intersects(horiz, vert) {
		t.Error("flipped overlap verdict was not trusted; expected the (wrong) reject to stand")
	}

	// Direction 2: reject flipped to inconclusive — absorbed, because
	// inconclusive pairs are always decided by the exact software test.
	if lying().Intersects(stripLo, stripHi) {
		t.Error("flipped reject verdict leaked a false positive past the software test")
	}
}

// TestFaultedHWSelectStillExact: delays and wrong-answers in the
// *inconclusive* direction never change selection results; the software
// stage remains the decider.
func TestFaultedHWSelectStillExact(t *testing.T) {
	q := layerB.Data.Objects[0]
	sw := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionSelect(bg, layerA, q, sw, SelectionOptions{InteriorLevel: -1})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(9).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 0.5).
		SetDelay(time.Microsecond)
	faulted := core.NewTester(core.Config{Resolution: 8, SWThreshold: 0, Faults: inj})
	got, _, err := IntersectionSelect(bg, layerA, q, faulted, SelectionOptions{InteriorLevel: -1})
	if err != nil {
		t.Fatal(err)
	}
	gs, ws := sortedIDs(got), sortedIDs(want)
	if len(gs) != len(ws) {
		t.Fatalf("delayed select: %d results, want %d", len(gs), len(ws))
	}
	for i := range ws {
		if gs[i] != ws[i] {
			t.Fatalf("delayed select result %d = %d, want %d", i, gs[i], ws[i])
		}
	}
}
