// Package query implements the paper's three-stage query processing
// pipeline (Figure 8): MBR filtering over an R-tree, intermediate
// filtering (the interior filter for selections, the 0-Object and
// 1-Object filters for within-distance joins), and geometry comparison
// with either the software tests or the hardware-assisted tests from
// internal/core. Each stage's wall-clock cost and candidate counts are
// recorded, which is what the evaluation figures plot.
package query

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/filter"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Layer is a dataset with its R-tree index, the unit that queries operate
// on. Build layers once and reuse them across queries.
type Layer struct {
	Data  *data.Dataset
	Index *rtree.Tree

	hullOnce sync.Once
	hulls    *filter.HullSet
}

// NewLayer bulk-loads an R-tree over the dataset's object MBRs.
func NewLayer(d *data.Dataset) *Layer {
	entries := make([]rtree.Entry, len(d.Objects))
	for i, p := range d.Objects {
		entries[i] = rtree.Entry{Bounds: p.Bounds(), ID: i}
	}
	return &Layer{Data: d, Index: rtree.NewBulk(entries)}
}

// Hulls returns the layer's pre-computed convex-hull approximations,
// building them on first use (the pre-processing cost of the geometric
// filter; safe for concurrent callers).
func (l *Layer) Hulls() *filter.HullSet {
	l.hullOnce.Do(func() {
		l.hulls = filter.NewHullSet(l.Data.Objects)
	})
	return l.hulls
}

// Cost is the per-stage cost breakdown of one query, mirroring the cost
// bars in the paper's figures.
type Cost struct {
	MBRFilter          time.Duration // stage 1: index traversal
	IntermediateFilter time.Duration // stage 2: interior / 0-object / 1-object
	GeometryComparison time.Duration // stage 3: refinement tests

	Candidates    int // objects or pairs surviving MBR filtering
	FilterHits    int // positives identified by the intermediate filter
	FilterRejects int // negatives proven by the intermediate filter
	Compared      int // pairs sent to geometry comparison
	Results       int // final result count
}

// Total returns the summed stage costs.
func (c Cost) Total() time.Duration {
	return c.MBRFilter + c.IntermediateFilter + c.GeometryComparison
}

// Add accumulates other into c (for averaging over a query set).
func (c *Cost) Add(other Cost) {
	c.MBRFilter += other.MBRFilter
	c.IntermediateFilter += other.IntermediateFilter
	c.GeometryComparison += other.GeometryComparison
	c.Candidates += other.Candidates
	c.FilterHits += other.FilterHits
	c.FilterRejects += other.FilterRejects
	c.Compared += other.Compared
	c.Results += other.Results
}

// Scale divides all costs and counts by n, for per-query averages.
func (c Cost) Scale(n int) Cost {
	if n <= 0 {
		return c
	}
	return Cost{
		MBRFilter:          c.MBRFilter / time.Duration(n),
		IntermediateFilter: c.IntermediateFilter / time.Duration(n),
		GeometryComparison: c.GeometryComparison / time.Duration(n),
		Candidates:         c.Candidates / n,
		FilterHits:         c.FilterHits / n,
		FilterRejects:      c.FilterRejects / n,
		Compared:           c.Compared / n,
		Results:            c.Results / n,
	}
}

// SelectionOptions configure an intersection selection.
type SelectionOptions struct {
	// InteriorLevel is the interior filter's tiling level; negative
	// disables the intermediate filter entirely (the paper's level-0 runs
	// build a 1×1 tiling).
	InteriorLevel int
}

// IntersectionSelect returns the IDs of the layer's objects whose regions
// intersect the query polygon, processed through the three-stage pipeline.
// The tester decides software vs hardware-assisted refinement.
func IntersectionSelect(layer *Layer, query *geom.Polygon, tester *core.Tester, opt SelectionOptions) ([]int, Cost) {
	var cost Cost

	// Stage 1: MBR filtering.
	start := time.Now()
	var candidates []int
	layer.Index.Search(query.Bounds(), func(e rtree.Entry) bool {
		candidates = append(candidates, e.ID)
		return true
	})
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)

	var results []int

	// Stage 2: interior filter. Positives skip geometry comparison; the
	// filter build cost counts toward the stage, amortized over objects
	// exactly as the paper describes.
	remaining := candidates
	if opt.InteriorLevel >= 0 {
		start = time.Now()
		f := filter.NewInterior(query, opt.InteriorLevel)
		remaining = remaining[:0]
		for _, id := range candidates {
			if f.CoversRect(layer.Data.Objects[id].Bounds()) {
				results = append(results, id)
			} else {
				remaining = append(remaining, id)
			}
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	// Stage 3: geometry comparison.
	start = time.Now()
	for _, id := range remaining {
		if tester.Intersects(query, layer.Data.Objects[id]) {
			results = append(results, id)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost
}

// WithinDistanceSelect returns the IDs of the layer's objects whose
// regions lie within distance d of the query polygon — the buffer query
// restricted to one query object. The pipeline mirrors the join: MBR
// distance filtering via the index, the 0-Object/1-Object upper-bound
// filters, then geometry comparison.
func WithinDistanceSelect(layer *Layer, query *geom.Polygon, d float64, tester *core.Tester, opt DistanceFilterOptions) ([]int, Cost) {
	var cost Cost

	start := time.Now()
	var candidates []int
	layer.Index.SearchWithin(query.Bounds(), d, func(e rtree.Entry) bool {
		candidates = append(candidates, e.ID)
		return true
	})
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)

	var results []int
	remaining := candidates
	if opt.Use0Object || opt.Use1Object {
		start = time.Now()
		remaining = remaining[:0]
		for _, id := range candidates {
			obj := layer.Data.Objects[id]
			if opt.Use0Object && filter.UpperBound0(query.Bounds(), obj.Bounds()) <= d {
				results = append(results, id)
				continue
			}
			if opt.Use1Object && filter.UpperBound1(query, obj.Bounds()) <= d {
				results = append(results, id)
				continue
			}
			remaining = append(remaining, id)
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	start = time.Now()
	for _, id := range remaining {
		if tester.WithinDistance(query, layer.Data.Objects[id], d) {
			results = append(results, id)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost
}

// Pair is one join result: indices into the two layers' object slices.
type Pair struct {
	A, B int
}

// JoinOptions configure an intersection join's intermediate filtering.
type JoinOptions struct {
	// UseHullFilter enables Brinkhoff's geometric filter: candidate pairs
	// whose pre-computed convex hulls are disjoint are rejected before
	// geometry comparison. Hull construction (a pre-processing cost the
	// paper's hardware technique avoids) happens lazily on first use and
	// is charged to the intermediate-filter stage of that first query.
	UseHullFilter bool
}

// IntersectionJoin returns all pairs (a from layer a, b from layer b)
// whose regions intersect.
func IntersectionJoin(a, b *Layer, tester *core.Tester) ([]Pair, Cost) {
	return IntersectionJoinOpt(a, b, tester, JoinOptions{})
}

// IntersectionJoinOpt is IntersectionJoin with intermediate-filter options.
func IntersectionJoinOpt(a, b *Layer, tester *core.Tester, opt JoinOptions) ([]Pair, Cost) {
	var cost Cost

	// Stage 1: MBR join via synchronized R-tree traversal.
	start := time.Now()
	var candidates []Pair
	rtree.Join(a.Index, b.Index, func(ea, eb rtree.Entry) bool {
		candidates = append(candidates, Pair{ea.ID, eb.ID})
		return true
	})
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)

	// Stage 2: the optional geometric (convex hull) filter rejects
	// provably disjoint pairs. (The paper evaluates its joins without an
	// intermediate filter — this is the Table 1 pre-processing technique,
	// kept for comparison.)
	remaining := candidates
	if opt.UseHullFilter {
		start = time.Now()
		ha, hb := a.Hulls(), b.Hulls()
		remaining = remaining[:0]
		for _, pr := range candidates {
			if filter.PairMayIntersect(ha, pr.A, hb, pr.B) {
				remaining = append(remaining, pr)
			}
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterRejects = len(candidates) - len(remaining)
	}

	// Stage 3: geometry comparison.
	start = time.Now()
	var results []Pair
	for _, pr := range remaining {
		if tester.Intersects(a.Data.Objects[pr.A], b.Data.Objects[pr.B]) {
			results = append(results, pr)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost
}

// DistanceFilterOptions configure the within-distance join's intermediate
// filters.
type DistanceFilterOptions struct {
	// Use0Object enables the MBR-only distance upper-bound filter.
	Use0Object bool
	// Use1Object enables the upper bound using the larger object's actual
	// geometry (paper §4.1.1: "very aggressive filtering").
	Use1Object bool
}

// WithinDistanceJoin returns all pairs whose regions are within distance d
// of each other (the buffer query), processed through the three-stage
// pipeline with the 0-Object and 1-Object filters.
func WithinDistanceJoin(a, b *Layer, d float64, tester *core.Tester, opt DistanceFilterOptions) ([]Pair, Cost) {
	var cost Cost

	// Stage 1: MBR distance join. MBR distance lower-bounds object
	// distance, so no within-distance pair is lost.
	start := time.Now()
	var candidates []Pair
	rtree.JoinWithin(a.Index, b.Index, d, func(ea, eb rtree.Entry) bool {
		candidates = append(candidates, Pair{ea.ID, eb.ID})
		return true
	})
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)

	// Stage 2: distance upper bounds identify positives early.
	var results []Pair
	remaining := candidates
	if opt.Use0Object || opt.Use1Object {
		start = time.Now()
		remaining = remaining[:0]
		for _, pr := range candidates {
			pa, pb := a.Data.Objects[pr.A], b.Data.Objects[pr.B]
			if opt.Use0Object && filter.UpperBound0(pa.Bounds(), pb.Bounds()) <= d {
				results = append(results, pr)
				continue
			}
			if opt.Use1Object {
				// Use the larger object's geometry against the smaller
				// object's MBR.
				big, smallBounds := pa, pb.Bounds()
				if pb.NumVerts() > pa.NumVerts() {
					big, smallBounds = pb, pa.Bounds()
				}
				if filter.UpperBound1(big, smallBounds) <= d {
					results = append(results, pr)
					continue
				}
			}
			remaining = append(remaining, pr)
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	// Stage 3: geometry comparison.
	start = time.Now()
	for _, pr := range remaining {
		if tester.WithinDistance(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d) {
			results = append(results, pr)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost
}
