// Package query implements the paper's three-stage query processing
// pipeline (Figure 8): MBR filtering over an R-tree, intermediate
// filtering (the interior filter for selections, the 0-Object and
// 1-Object filters for within-distance joins), and geometry comparison
// with either the software tests or the hardware-assisted tests from
// internal/core. Each stage's wall-clock cost and candidate counts are
// recorded, which is what the evaluation figures plot.
//
// # Failure semantics
//
// Every query takes a context.Context and honors cancellation and
// deadlines at chunk granularity (cancelStride refinement units between
// checks): an interrupted query returns the results computed so far plus
// a *PartialError that unwraps to the context's error, and leaks no
// goroutines. Queries with a candidate budget fail fast with a
// *BudgetError before any refinement work when MBR filtering overflows
// the budget. The parallel joins additionally isolate panicking
// refinement tests: a pair whose test panics is retried once on the exact
// software path and, failing that, quarantined (counted in core.Stats,
// excluded from the result set) — one poisoned geometry pair can no
// longer take down a join. See DESIGN.md §7.
package query

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/edgeindex"
	"repro/internal/filter"
	"repro/internal/geom"
	"repro/internal/interval"
	"repro/internal/raster"
	"repro/internal/rtree"
	"repro/internal/store"
)

// Layer is a dataset with its R-tree index, the unit that queries operate
// on. Build layers once and reuse them across queries.
type Layer struct {
	Data  *data.Dataset
	Index *rtree.Tree

	// Origin records where the layer came from: "memory" for built
	// layers, the snapshot path (or "snapshot") for loaded ones. Serving
	// catalogs surface it as provenance.
	Origin string

	hullOnce sync.Once
	hulls    *filter.HullSet

	// edgeIdx caches each object's immutable edge index, built lazily on
	// first use and shared read-only by every worker (see EdgeIndex).
	edgeIdx []atomic.Pointer[edgeindex.Index]

	// snap, for snapshot-backed layers, retains the open snapshot: its
	// persisted edge boxes seed EdgeIndex and its mapping must outlive
	// every polygon view the layer hands out.
	snap *store.Snapshot

	// sigs holds the per-object persisted raster signatures of a
	// snapshot-backed layer (nil otherwise); see Signature.
	sigs   []raster.Signature
	sigRes int

	// breakers holds this layer's per-mate hardware-filter circuit
	// breakers (see Breaker). The map is touched once per query to fetch
	// the shared *core.Breaker; all per-pair traffic then goes through the
	// breaker's own atomics.
	breakerMu sync.Mutex
	breakers  map[*Layer]*core.Breaker

	// ivalCol is the persisted v2 interval column of a snapshot-backed
	// layer (nil otherwise); ivalCache holds lazily built columns keyed by
	// grid for layers (or grids) without a persisted one. Columns are
	// immutable once built; the per-entry once makes concurrent queries on
	// the same grid share one build. objStats caches the bounds/extent
	// summary grid derivation needs.
	ivalMu    sync.Mutex
	ivalCache map[interval.Grid]*ivalEntry
	ivalCol   *interval.Column
	statsOnce sync.Once
	objBounds geom.Rect
	objExtent float64

	// selfView caches the layer's single-component View (layers are
	// immutable, so one view serves every query).
	viewOnce sync.Once
	selfView *View
}

// NewLayer bulk-loads an R-tree over the dataset's object MBRs.
func NewLayer(d *data.Dataset) *Layer {
	entries := make([]rtree.Entry, len(d.Objects))
	for i, p := range d.Objects {
		entries[i] = rtree.Entry{Bounds: p.Bounds(), ID: i}
	}
	return &Layer{
		Data:    d,
		Index:   rtree.NewBulk(entries),
		Origin:  "memory",
		edgeIdx: make([]atomic.Pointer[edgeindex.Index], len(d.Objects)),
	}
}

// NewLayerFromSnapshot builds a query-ready layer over an opened store
// snapshot: the dataset's polygons are views into the (possibly
// memory-mapped) file, the R-tree is materialized from the persisted
// packed image instead of being re-bulk-loaded, edge indexes hydrate
// lazily from the persisted box hierarchies, and persisted raster
// signatures short-circuit refinement. The layer keeps the snapshot open
// for its lifetime; callers must not Close it while the layer is in use.
func NewLayerFromSnapshot(s *store.Snapshot) (*Layer, error) {
	tree, err := s.Tree()
	if err != nil {
		return nil, err
	}
	d := s.Dataset()
	l := &Layer{
		Data:    d,
		Index:   tree,
		Origin:  "snapshot:" + s.Meta().Name,
		edgeIdx: make([]atomic.Pointer[edgeindex.Index], len(d.Objects)),
		snap:    s,
	}
	if s.HasSignatures() {
		l.sigRes = s.SigRes()
		l.sigs = make([]raster.Signature, len(d.Objects))
		for i := range l.sigs {
			l.sigs[i] = s.Signature(i)
		}
	}
	l.ivalCol = s.Intervals()
	return l, nil
}

type ivalEntry struct {
	once sync.Once
	col  *interval.Column
}

// objectStats caches the layer's MBR union and characteristic extent,
// the inputs of canonical interval-grid derivation.
func (l *Layer) objectStats() (geom.Rect, float64) {
	l.statsOnce.Do(func() {
		l.objBounds, l.objExtent = interval.ObjectStats(l.Data.Objects)
	})
	return l.objBounds, l.objExtent
}

// intervalGrid returns the layer's own canonical interval grid: the
// persisted column's grid when the snapshot carries one, else the
// deterministic derivation the writer would have used. ok is false for
// empty or non-finite layers, and for snapshot-backed layers whose file
// carries no interval section — a pre-v2 (or `save ... nointervals`)
// snapshot is a v1 artifact and serves the v1 signature path rather
// than silently rebuilding at query time what the writer omitted.
func (l *Layer) intervalGrid() (interval.Grid, bool) {
	if c := l.ivalCol; c != nil {
		return c.Grid, true
	}
	if l.snap != nil {
		return interval.Grid{}, false
	}
	b, e := l.objectStats()
	mnx, mny, size, fits := interval.FitSquare(b)
	if !fits {
		return interval.Grid{}, false
	}
	return interval.Grid{MinX: mnx, MinY: mny, Size: size, Order: interval.ChooseOrder(size, e)}, true
}

// Intervals returns the layer's interval column on grid g: the persisted
// column when its grid matches exactly, else a lazily built one cached
// per grid (layers are immutable, so a grid's column never changes).
// Snapshot-backed layers without a persisted interval section never
// build lazily — they are v1 artifacts and return nil so queries fall
// back to the v1 signature path (see intervalGrid). Safe for concurrent
// callers; concurrent first requests for one grid share a single build.
func (l *Layer) Intervals(g interval.Grid) *interval.Column {
	if !g.Valid() {
		return nil
	}
	if c := l.ivalCol; c != nil && c.Grid == g {
		return c
	}
	if l.snap != nil && l.ivalCol == nil {
		return nil
	}
	l.ivalMu.Lock()
	if l.ivalCache == nil {
		l.ivalCache = map[interval.Grid]*ivalEntry{}
	}
	e := l.ivalCache[g]
	if e == nil {
		e = &ivalEntry{}
		l.ivalCache[g] = e
	}
	l.ivalMu.Unlock()
	e.once.Do(func() {
		e.col = interval.Build(l.Data.Objects, g)
	})
	return e.col
}

// pairGrid derives the shared interval grid for a join between a and b:
// the canonical square of the union of both layers' bounds, at the finer
// of the two layers' auto orders (or the forced order when order > 0).
// When both layers carry persisted columns on the identical grid — the
// common case for snapshots saved over the same data domain — that grid
// is used directly, so neither side rebuilds anything.
func pairGrid(a, b *Layer, order int) (interval.Grid, bool) {
	if order <= 0 && a.ivalCol != nil && b.ivalCol != nil && a.ivalCol.Grid == b.ivalCol.Grid {
		return a.ivalCol.Grid, true
	}
	ba, ea := a.objectStats()
	bb, eb := b.objectStats()
	mnx, mny, size, ok := interval.FitSquare(ba.Union(bb))
	if !ok {
		return interval.Grid{}, false
	}
	if order <= 0 {
		order = max(interval.ChooseOrder(size, ea), interval.ChooseOrder(size, eb))
	}
	if order < interval.MinOrder || order > interval.MaxOrder {
		return interval.Grid{}, false
	}
	return interval.Grid{MinX: mnx, MinY: mny, Size: size, Order: order}, true
}

// intervalColumns resolves both sides' interval columns for a join,
// honoring the NoIntervals ablation. Either both columns are non-nil and
// share one grid, or both are nil (the v1 path).
func intervalColumns(a, b *Layer, noIntervals bool, order int) (*interval.Column, *interval.Column) {
	if noIntervals {
		return nil, nil
	}
	g, ok := pairGrid(a, b, order)
	if !ok {
		return nil, nil
	}
	ca, cb := a.Intervals(g), b.Intervals(g)
	if ca == nil || cb == nil {
		return nil, nil
	}
	return ca, cb
}

// Snapshot returns the layer's backing snapshot and true when the layer
// was loaded from one (see NewLayerFromSnapshot).
func (l *Layer) Snapshot() (*store.Snapshot, bool) { return l.snap, l.snap != nil }

// Signature returns object id's persisted conservative raster signature,
// or nil when the layer carries none. The signature is immutable and
// shared; refinement consults it through the PairContext.
func (l *Layer) Signature(id int) *raster.Signature {
	if l.sigs == nil {
		return nil
	}
	return &l.sigs[id]
}

// signatureRes returns the resolution for query-side signatures matched
// against this layer's persisted ones.
func (l *Layer) signatureRes() int {
	if l.sigRes > 0 {
		return l.sigRes
	}
	return raster.DefaultSignatureRes
}

// querySignature computes the query polygon's signature once per
// selection when the layer has persisted signatures to pair it with (and
// the ablation knob allows), else nil.
func (l *Layer) querySignature(query *geom.Polygon, noSig bool) *raster.Signature {
	if noSig || l.sigs == nil {
		return nil
	}
	sg := raster.ComputeSignature(query, l.signatureRes())
	return &sg
}

// Hulls returns the layer's pre-computed convex-hull approximations,
// building them on first use (the pre-processing cost of the geometric
// filter; safe for concurrent callers).
func (l *Layer) Hulls() *filter.HullSet {
	l.hullOnce.Do(func() {
		l.hulls = filter.NewHullSet(l.Data.Objects)
	})
	return l.hulls
}

// EdgeIndex returns object id's edge index, building it on first use. The
// index is immutable once published, so concurrent callers may race to
// build: every build of the same object is identical and losers' copies
// are dropped, which keeps the fast path a single atomic load with no
// lock. The cached indexes are what joins reuse across a whole inner
// loop instead of rescanning the object's edge chain per pair.
func (l *Layer) EdgeIndex(id int) *edgeindex.Index {
	if ix := l.edgeIdx[id].Load(); ix != nil {
		return ix
	}
	ix := l.buildEdgeIndex(id)
	if !l.edgeIdx[id].CompareAndSwap(nil, ix) {
		return l.edgeIdx[id].Load()
	}
	return ix
}

// buildEdgeIndex hydrates one object's edge index: snapshot-backed layers
// reattach the persisted box hierarchy (no box recomputation — the boxes
// are CRC-verified views into the file), others run the O(n) build.
func (l *Layer) buildEdgeIndex(id int) *edgeindex.Index {
	p := l.Data.Objects[id]
	if l.snap != nil && l.snap.HasEdgeBoxes() {
		if ix, ok := edgeindex.FromFlatBoxes(p, l.snap.EdgeBoxes(id)); ok {
			return ix
		}
	}
	return edgeindex.New(p)
}

// Breaker returns the circuit breaker guarding the hardware filter for
// queries pairing this layer with other, creating a closed breaker with
// the default cooldown on first use. The breaker is long-lived: it
// persists across queries, so a sentinel disagreement in one join keeps
// the hardware filter disabled for subsequent queries on the same pair
// until a half-open probe verifies recovery. Selections use the layer
// paired with itself (other == l). Safe for concurrent callers.
func (l *Layer) Breaker(other *Layer) *core.Breaker {
	l.breakerMu.Lock()
	defer l.breakerMu.Unlock()
	if l.breakers == nil {
		l.breakers = map[*Layer]*core.Breaker{}
	}
	b := l.breakers[other]
	if b == nil {
		b = core.NewBreaker(0)
		l.breakers[other] = b
	}
	return b
}

// SetBreaker installs a custom breaker (e.g. a shorter cooldown) for
// queries pairing this layer with other, replacing any existing one.
func (l *Layer) SetBreaker(other *Layer, b *core.Breaker) {
	l.breakerMu.Lock()
	defer l.breakerMu.Unlock()
	if l.breakers == nil {
		l.breakers = map[*Layer]*core.Breaker{}
	}
	l.breakers[other] = b
}

// Cost is the per-stage cost breakdown of one query, mirroring the cost
// bars in the paper's figures.
type Cost struct {
	MBRFilter          time.Duration // stage 1: index traversal
	IntermediateFilter time.Duration // stage 2: interior / 0-object / 1-object
	GeometryComparison time.Duration // stage 3: refinement tests

	Candidates    int // objects or pairs surviving MBR filtering
	FilterHits    int // positives identified by the intermediate filter
	FilterRejects int // negatives proven by the intermediate filter
	Compared      int // pairs sent to geometry comparison
	Results       int // final result count
}

// Total returns the summed stage costs.
func (c Cost) Total() time.Duration {
	return c.MBRFilter + c.IntermediateFilter + c.GeometryComparison
}

// Add accumulates other into c (for averaging over a query set).
func (c *Cost) Add(other Cost) {
	c.MBRFilter += other.MBRFilter
	c.IntermediateFilter += other.IntermediateFilter
	c.GeometryComparison += other.GeometryComparison
	c.Candidates += other.Candidates
	c.FilterHits += other.FilterHits
	c.FilterRejects += other.FilterRejects
	c.Compared += other.Compared
	c.Results += other.Results
}

// Scale divides all costs and counts by n, for per-query averages.
func (c Cost) Scale(n int) Cost {
	if n <= 0 {
		return c
	}
	return Cost{
		MBRFilter:          c.MBRFilter / time.Duration(n),
		IntermediateFilter: c.IntermediateFilter / time.Duration(n),
		GeometryComparison: c.GeometryComparison / time.Duration(n),
		Candidates:         c.Candidates / n,
		FilterHits:         c.FilterHits / n,
		FilterRejects:      c.FilterRejects / n,
		Compared:           c.Compared / n,
		Results:            c.Results / n,
	}
}

// SelectionOptions configure an intersection selection.
type SelectionOptions struct {
	// InteriorLevel is the interior filter's tiling level; negative
	// disables the intermediate filter entirely (the paper's level-0 runs
	// build a 1×1 tiling).
	InteriorLevel int
	// MaxCandidates, when positive, aborts the selection with a
	// *BudgetError if MBR filtering yields more candidates than this.
	MaxCandidates int
	// NoBreaker detaches the layer's circuit breaker from this query's
	// pair tests: the hardware filter runs (and sentinel samples are
	// taken) regardless of prior disagreements. Ablation/baseline knob.
	NoBreaker bool
	// NoSignatures disables the persisted raster-signature filter for
	// snapshot-backed layers. Ablation knob; no effect on layers without
	// signatures.
	NoSignatures bool
	// NoIntervals disables the v2 interval-approximation filter (true
	// hits and rejects); the v1 signature path then decides alone.
	// Ablation/baseline knob.
	NoIntervals bool
	// BatchSize is the streaming flush granularity for Sink; 0 falls back
	// to core.DefaultBatchSize.
	BatchSize int
	// Sink, when non-nil, receives result IDs incrementally as refinement
	// proceeds, from the calling goroutine, in result order. The slice is
	// reused between calls — consume it before returning, don't retain it.
	// A non-nil return stops the selection and surfaces as the
	// *PartialError cause. Rows already handed to the sink are still
	// present in the returned slice.
	Sink func(ids []int) error
}

// collectBudget gathers MBR-filter output while enforcing a candidate
// budget and periodic context checks inside the index traversal. The
// returned visit wrapper is handed to the index; after traversal the
// caller consults err.
type collector[T any] struct {
	ctx    context.Context
	op     string
	budget int
	items  []T
	err    error
	visits int
}

func (c *collector[T]) add(item T) bool {
	c.visits++
	if c.visits&1023 == 0 && c.ctx.Err() != nil {
		c.err = &PartialError{Op: c.op, Done: 0, Total: len(c.items), Err: ctxCause(c.ctx)}
		return false
	}
	if c.budget > 0 && len(c.items) >= c.budget {
		c.err = &BudgetError{Op: c.op, Candidates: len(c.items) + 1, Budget: c.budget}
		return false
	}
	c.items = append(c.items, item)
	return true
}

// IntersectionSelect returns the IDs of the layer's objects whose regions
// intersect the query polygon, processed through the three-stage pipeline.
// The tester decides software vs hardware-assisted refinement. A
// cancelled or expired context yields the results so far plus a
// *PartialError; an overflowing candidate budget yields a *BudgetError.
func IntersectionSelect(ctx context.Context, layer *Layer, query *geom.Polygon, tester *core.Tester, opt SelectionOptions) ([]int, Cost, error) {
	var cost Cost

	// Stage 1: MBR filtering.
	start := time.Now()
	col := collector[int]{ctx: ctx, op: "select", budget: opt.MaxCandidates}
	layer.Index.Search(query.Bounds(), func(e rtree.Entry) bool {
		return col.add(e.ID)
	})
	candidates := col.items
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)
	if col.err != nil {
		return nil, cost, col.err
	}

	var results []int

	// Stage 2: interior filter. Positives skip geometry comparison; the
	// filter build cost counts toward the stage, amortized over objects
	// exactly as the paper describes.
	remaining := candidates
	if opt.InteriorLevel >= 0 {
		start = time.Now()
		f := filter.NewInterior(query, opt.InteriorLevel)
		remaining = remaining[:0]
		for _, id := range candidates {
			if f.CoversRect(layer.Data.Objects[id].Bounds()) {
				results = append(results, id)
			} else {
				remaining = append(remaining, id)
			}
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	// Streaming delivery: flush pending result IDs to the sink once a
	// batch accumulates (or unconditionally on wind-down). The sink runs on
	// the calling goroutine, so a slow consumer simply slows the scan — no
	// result buffering beyond one batch.
	batch := opt.BatchSize
	if batch <= 0 {
		batch = core.DefaultBatchSize
	}
	emitted := 0
	flush := func(force bool) error {
		pending := len(results) - emitted
		if opt.Sink == nil || pending == 0 || (!force && pending < batch) {
			return nil
		}
		if err := opt.Sink(results[emitted:]); err != nil {
			return err
		}
		emitted = len(results)
		tester.Stats.StreamRowsEmitted += int64(pending)
		return nil
	}

	// Stage 3: geometry comparison, cancellable every cancelStride tests.
	// The query polygon's edge index is built once and shared across every
	// candidate test; the layer side reuses the per-object cached indexes.
	start = time.Now()
	qIdx := edgeindex.New(query)
	qSig := layer.querySignature(query, opt.NoSignatures)
	// The query polygon rasterizes once onto the layer's own canonical
	// grid; each candidate then contributes its cached (or persisted)
	// spans, so selections get the same true-hit/reject verdicts as joins.
	var qIv interval.Spans
	var selIvals *interval.Column
	if !opt.NoIntervals {
		if g, ok := layer.intervalGrid(); ok {
			if qIv = interval.Rasterize(query, g); len(qIv) > 0 {
				selIvals = layer.Intervals(g)
			}
		}
	}
	var br *core.Breaker
	if !opt.NoBreaker {
		br = layer.Breaker(layer)
	}
	for i, id := range remaining {
		if i%cancelStride == 0 && ctx.Err() != nil {
			flush(true) // best effort: the partial rows stream out too
			cost.GeometryComparison = time.Since(start)
			cost.Compared = i
			cost.Results = len(results)
			return results, cost, &PartialError{Op: "select", Done: i, Total: len(remaining), Err: ctxCause(ctx)}
		}
		pc := core.PairContext{PIndex: qIdx, QIndex: layer.EdgeIndex(id), Breaker: br, PSig: qSig, QSig: layer.Signature(id)}
		if selIvals != nil {
			pc.PIv, pc.QIv = qIv, selIvals.Spans(id)
		}
		if tester.IntersectsCtx(query, layer.Data.Objects[id], pc) {
			results = append(results, id)
		}
		if err := flush(false); err != nil {
			cost.GeometryComparison = time.Since(start)
			cost.Compared = i + 1
			cost.Results = len(results)
			return results, cost, &PartialError{Op: "select", Done: i + 1, Total: len(remaining), Err: err}
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	if err := flush(true); err != nil {
		return results, cost, &PartialError{Op: "select", Done: len(remaining), Total: len(remaining), Err: err}
	}
	return results, cost, nil
}

// WithinDistanceSelect returns the IDs of the layer's objects whose
// regions lie within distance d of the query polygon — the buffer query
// restricted to one query object. The pipeline mirrors the join: MBR
// distance filtering via the index, the 0-Object/1-Object upper-bound
// filters, then geometry comparison. Cancellation and budget semantics
// match IntersectionSelect.
func WithinDistanceSelect(ctx context.Context, layer *Layer, query *geom.Polygon, d float64, tester *core.Tester, opt DistanceFilterOptions) ([]int, Cost, error) {
	var cost Cost

	start := time.Now()
	col := collector[int]{ctx: ctx, op: "within-select", budget: opt.MaxCandidates}
	layer.Index.SearchWithin(query.Bounds(), d, func(e rtree.Entry) bool {
		return col.add(e.ID)
	})
	candidates := col.items
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)
	if col.err != nil {
		return nil, cost, col.err
	}

	var results []int
	remaining := candidates
	if opt.Use0Object || opt.Use1Object {
		start = time.Now()
		remaining = remaining[:0]
		for _, id := range candidates {
			obj := layer.Data.Objects[id]
			if opt.Use0Object && filter.UpperBound0(query.Bounds(), obj.Bounds()) <= d {
				results = append(results, id)
				continue
			}
			if opt.Use1Object && filter.UpperBound1(query, obj.Bounds()) <= d {
				results = append(results, id)
				continue
			}
			remaining = append(remaining, id)
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	start = time.Now()
	qIdx := edgeindex.New(query)
	qSig := layer.querySignature(query, opt.NoSignatures)
	var br *core.Breaker
	if !opt.NoBreaker {
		br = layer.Breaker(layer)
	}
	for i, id := range remaining {
		if i%cancelStride == 0 && ctx.Err() != nil {
			cost.GeometryComparison = time.Since(start)
			cost.Compared = i
			cost.Results = len(results)
			return results, cost, &PartialError{Op: "within-select", Done: i, Total: len(remaining), Err: ctxCause(ctx)}
		}
		pc := core.PairContext{PIndex: qIdx, QIndex: layer.EdgeIndex(id), Breaker: br, PSig: qSig, QSig: layer.Signature(id)}
		if tester.WithinDistanceCtx(query, layer.Data.Objects[id], d, pc) {
			results = append(results, id)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost, nil
}

// Pair is one join result: indices into the two layers' object slices.
type Pair struct {
	A, B int
}

// JoinOptions configure an intersection join's intermediate filtering and
// resource guards.
type JoinOptions struct {
	// UseHullFilter enables Brinkhoff's geometric filter: candidate pairs
	// whose pre-computed convex hulls are disjoint are rejected before
	// geometry comparison. Hull construction (a pre-processing cost the
	// paper's hardware technique avoids) happens lazily on first use and
	// is charged to the intermediate-filter stage of that first query.
	UseHullFilter bool
	// MaxCandidates, when positive, aborts the join with a *BudgetError
	// if the MBR join yields more candidate pairs than this — the guard
	// against pathological MBR skew materializing an unbounded pair list.
	MaxCandidates int
	// NoEdgeIndex disables the cached per-object edge indexes during
	// refinement (every pair falls back to the linear edge scan). Ablation
	// knob for the locality benchmarks.
	NoEdgeIndex bool
	// NoLocalityOrder disables sorting candidate pairs by outer object
	// before refinement, leaving them in R-tree join emission order.
	// Ablation knob for the locality benchmarks.
	NoLocalityOrder bool
	// NoBreaker detaches the layer pair's circuit breaker; see
	// SelectionOptions.NoBreaker.
	NoBreaker bool
	// NoSignatures disables the persisted raster-signature filter; see
	// SelectionOptions.NoSignatures.
	NoSignatures bool
	// NoIntervals disables the v2 interval-approximation filter; see
	// SelectionOptions.NoIntervals.
	NoIntervals bool
	// IntervalOrder forces the shared interval grid's order (2..15); 0
	// derives it from the layers. The benchmark sweep's resolution knob.
	IntervalOrder int
}

// sortPairsByOuter orders candidate pairs by (A, B) so refinement visits
// each outer object's pairs consecutively: the outer polygon's vertices
// and edge index stay cache-hot across its whole run, and the lazily
// built per-object indexes are reused immediately after construction.
func sortPairsByOuter(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
}

// pairContexts returns a per-pair PairContext source for a join between
// layers a and b, honoring the NoEdgeIndex, NoBreaker, and NoSignatures
// ablations. All contexts share the pair's breaker, so any worker's
// sentinel disagreement degrades the whole join. Persisted signatures
// attach only on the sides that carry them; the tester's bounds check
// makes a one-sided or absent signature merely inconclusive. iva and
// ivb, when both non-nil (see intervalColumns), attach the objects' v2
// interval spans — always from one shared grid, which is what makes
// them comparable; the v1 signatures stay attached too and still decide
// pairs the interval check leaves inconclusive.
func pairContexts(a, b *Layer, noIndex, noBreaker, noSig bool, iva, ivb *interval.Column) func(Pair) core.PairContext {
	var br *core.Breaker
	if !noBreaker {
		br = a.Breaker(b)
	}
	sigA, sigB := a.sigs != nil && !noSig, b.sigs != nil && !noSig
	ivals := iva != nil && ivb != nil
	if noIndex && !sigA && !sigB && !ivals {
		return func(Pair) core.PairContext { return core.PairContext{Breaker: br} }
	}
	return func(pr Pair) core.PairContext {
		pc := core.PairContext{Breaker: br}
		if !noIndex {
			pc.PIndex, pc.QIndex = a.EdgeIndex(pr.A), b.EdgeIndex(pr.B)
		}
		if sigA {
			pc.PSig = a.Signature(pr.A)
		}
		if sigB {
			pc.QSig = b.Signature(pr.B)
		}
		if ivals {
			pc.PIv, pc.QIv = iva.Spans(pr.A), ivb.Spans(pr.B)
		}
		return pc
	}
}

// IntersectionJoin returns all pairs (a from layer a, b from layer b)
// whose regions intersect. A cancelled or expired context yields the
// pairs found so far plus a *PartialError.
func IntersectionJoin(ctx context.Context, a, b *Layer, tester *core.Tester) ([]Pair, Cost, error) {
	return IntersectionJoinOpt(ctx, a, b, tester, JoinOptions{})
}

// IntersectionJoinOpt is IntersectionJoin with intermediate-filter options
// and resource guards.
func IntersectionJoinOpt(ctx context.Context, a, b *Layer, tester *core.Tester, opt JoinOptions) ([]Pair, Cost, error) {
	var cost Cost

	// Stage 1: MBR join via synchronized R-tree traversal.
	start := time.Now()
	col := collector[Pair]{ctx: ctx, op: "join", budget: opt.MaxCandidates}
	rtree.Join(a.Index, b.Index, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	candidates := col.items
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)
	if col.err != nil {
		return nil, cost, col.err
	}

	// Stage 2: the optional geometric (convex hull) filter rejects
	// provably disjoint pairs. (The paper evaluates its joins without an
	// intermediate filter — this is the Table 1 pre-processing technique,
	// kept for comparison.)
	remaining := candidates
	if opt.UseHullFilter {
		start = time.Now()
		ha, hb := a.Hulls(), b.Hulls()
		remaining = remaining[:0]
		for _, pr := range candidates {
			if filter.PairMayIntersect(ha, pr.A, hb, pr.B) {
				remaining = append(remaining, pr)
			}
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterRejects = len(candidates) - len(remaining)
	}

	// Stage 3: geometry comparison, cancellable every cancelStride pairs.
	// Pairs are refined in outer-object order so each outer polygon's data
	// (and its edge index) is touched in one consecutive run.
	start = time.Now()
	if !opt.NoLocalityOrder {
		sortPairsByOuter(remaining)
	}
	iva, ivb := intervalColumns(a, b, opt.NoIntervals, opt.IntervalOrder)
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, iva, ivb)
	var results []Pair
	for i, pr := range remaining {
		if i%cancelStride == 0 && ctx.Err() != nil {
			cost.GeometryComparison = time.Since(start)
			cost.Compared = i
			cost.Results = len(results)
			return results, cost, &PartialError{Op: "join", Done: i, Total: len(remaining), Err: ctxCause(ctx)}
		}
		if tester.IntersectsCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], pcFor(pr)) {
			results = append(results, pr)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost, nil
}

// DistanceFilterOptions configure the within-distance join's intermediate
// filters and resource guards.
type DistanceFilterOptions struct {
	// Use0Object enables the MBR-only distance upper-bound filter.
	Use0Object bool
	// Use1Object enables the upper bound using the larger object's actual
	// geometry (paper §4.1.1: "very aggressive filtering").
	Use1Object bool
	// MaxCandidates, when positive, aborts the query with a *BudgetError
	// if MBR filtering yields more candidates than this.
	MaxCandidates int
	// NoEdgeIndex and NoLocalityOrder are the join-refinement ablation
	// knobs, as in JoinOptions. They have no effect on selections.
	NoEdgeIndex     bool
	NoLocalityOrder bool
	// NoBreaker detaches the layer pair's circuit breaker; see
	// SelectionOptions.NoBreaker.
	NoBreaker bool
	// NoSignatures disables the persisted raster-signature filter; see
	// SelectionOptions.NoSignatures.
	NoSignatures bool
}

// WithinDistanceJoin returns all pairs whose regions are within distance d
// of each other (the buffer query), processed through the three-stage
// pipeline with the 0-Object and 1-Object filters. Cancellation and
// budget semantics match IntersectionJoinOpt.
func WithinDistanceJoin(ctx context.Context, a, b *Layer, d float64, tester *core.Tester, opt DistanceFilterOptions) ([]Pair, Cost, error) {
	var cost Cost

	// Stage 1: MBR distance join. MBR distance lower-bounds object
	// distance, so no within-distance pair is lost.
	start := time.Now()
	col := collector[Pair]{ctx: ctx, op: "within-join", budget: opt.MaxCandidates}
	rtree.JoinWithin(a.Index, b.Index, d, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	candidates := col.items
	cost.MBRFilter = time.Since(start)
	cost.Candidates = len(candidates)
	if col.err != nil {
		return nil, cost, col.err
	}

	// Stage 2: distance upper bounds identify positives early.
	var results []Pair
	remaining := candidates
	if opt.Use0Object || opt.Use1Object {
		start = time.Now()
		remaining = remaining[:0]
		for _, pr := range candidates {
			pa, pb := a.Data.Objects[pr.A], b.Data.Objects[pr.B]
			if opt.Use0Object && filter.UpperBound0(pa.Bounds(), pb.Bounds()) <= d {
				results = append(results, pr)
				continue
			}
			if opt.Use1Object {
				// Use the larger object's geometry against the smaller
				// object's MBR.
				big, smallBounds := pa, pb.Bounds()
				if pb.NumVerts() > pa.NumVerts() {
					big, smallBounds = pb, pa.Bounds()
				}
				if filter.UpperBound1(big, smallBounds) <= d {
					results = append(results, pr)
					continue
				}
			}
			remaining = append(remaining, pr)
		}
		cost.IntermediateFilter = time.Since(start)
		cost.FilterHits = len(results)
	}

	// Stage 3: geometry comparison in outer-object order, cancellable
	// every cancelStride pairs.
	start = time.Now()
	if !opt.NoLocalityOrder {
		sortPairsByOuter(remaining)
	}
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, nil, nil)
	for i, pr := range remaining {
		if i%cancelStride == 0 && ctx.Err() != nil {
			cost.GeometryComparison = time.Since(start)
			cost.Compared = i
			cost.Results = len(results)
			return results, cost, &PartialError{Op: "within-join", Done: i, Total: len(remaining), Err: ctxCause(ctx)}
		}
		if tester.WithinDistanceCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d, pcFor(pr)) {
			results = append(results, pr)
		}
	}
	cost.GeometryComparison = time.Since(start)
	cost.Compared = len(remaining)
	cost.Results = len(results)
	return results, cost, nil
}
