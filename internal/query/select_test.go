package query

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/geom"
)

func TestWithinDistanceSelectMatchesOracle(t *testing.T) {
	queries := data.MustLoad("STATES50", 1)
	baseD := data.BaseD(layerA.Data, queries)
	sw := core.NewTester(core.Config{DisableHardware: true})
	hw := core.NewTester(core.Config{Resolution: 8})
	for qi := 0; qi < 6; qi++ {
		q := queries.Objects[qi]
		for _, mult := range []float64{0.2, 1.0} {
			d := baseD * mult
			var want []int
			for i, p := range layerA.Data.Objects {
				if dist.MinDistBrute(q, p) <= d {
					want = append(want, i)
				}
			}
			opts := []DistanceFilterOptions{{}, {Use0Object: true, Use1Object: true}}
			for _, tester := range []*core.Tester{sw, hw} {
				for _, opt := range opts {
					got, cost, err := WithinDistanceSelect(bg, layerA, q, d, tester, opt)
					if err != nil {
						t.Fatal(err)
					}
					g := sortedIDs(got)
					if len(g) != len(want) {
						t.Fatalf("query %d d=%.2f opt=%+v: %d results, oracle %d",
							qi, d, opt, len(g), len(want))
					}
					for i := range want {
						if g[i] != want[i] {
							t.Fatalf("query %d: result %d = %d, want %d", qi, i, g[i], want[i])
						}
					}
					if cost.Results != len(want) {
						t.Errorf("cost.Results = %d", cost.Results)
					}
				}
			}
		}
	}
}

func TestWithinDistanceSelectZeroDistanceIsIntersection(t *testing.T) {
	// d=0 must agree with intersection selection.
	q := geom.MustPolygon(
		geom.Pt(50, 50), geom.Pt(150, 50), geom.Pt(150, 150), geom.Pt(50, 150),
	)
	sw := core.NewTester(core.Config{DisableHardware: true})
	wantIDs, _, err := IntersectionSelect(bg, layerA, q, sw, SelectionOptions{InteriorLevel: -1})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, _, err := WithinDistanceSelect(bg, layerA, q, 0, sw, DistanceFilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, w := sortedIDs(gotIDs), sortedIDs(wantIDs)
	if len(g) != len(w) {
		t.Fatalf("d=0 select: %d results, intersection %d", len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("d=0 mismatch at %d", i)
		}
	}
}
