package query

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/overlay"
)

func TestOverlayAreaJoin(t *testing.T) {
	sw := core.NewTester(core.Config{DisableHardware: true})
	hw := core.NewTester(core.Config{Resolution: 8})
	wantPairs, _, err := IntersectionJoin(bg, layerA, layerB, sw)
	if err != nil {
		t.Fatal(err)
	}

	for _, tester := range []*core.Tester{sw, hw} {
		got, cost, err := OverlayAreaJoin(bg, layerA, layerB, tester)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantPairs) {
			t.Fatalf("overlay join: %d pairs, intersection join %d", len(got), len(wantPairs))
		}
		var total float64
		for _, op := range got {
			pa := layerA.Data.Objects[op.A]
			pb := layerB.Data.Objects[op.B]
			if op.Area < -1e-9 {
				t.Fatalf("negative overlay area %v", op.Area)
			}
			if op.Area > math.Min(pa.Area(), pb.Area())+1e-6 {
				t.Fatalf("overlay area %v exceeds inputs %v/%v", op.Area, pa.Area(), pb.Area())
			}
			total += op.Area
		}
		if total <= 0 {
			t.Fatal("no overlay area at all in overlapping layers")
		}
		if cost.Results != len(got) {
			t.Errorf("cost.Results = %d", cost.Results)
		}
		// Spot-check a handful against the direct computation.
		for _, op := range got[:min(5, len(got))] {
			want := overlay.IntersectionArea(layerA.Data.Objects[op.A], layerB.Data.Objects[op.B])
			if math.Abs(op.Area-want) > 1e-9 {
				t.Fatalf("pair (%d,%d): area %v, direct %v", op.A, op.B, op.Area, want)
			}
		}
	}
}
