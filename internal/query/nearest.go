package query

import (
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Neighbor is one k-nearest-neighbors result: the layer object's index and
// its exact region distance to the query polygon.
type Neighbor struct {
	ID       int
	Distance float64
}

// KNearest returns the k objects of the layer nearest to the query polygon
// by exact region distance (zero for intersecting objects), in
// non-decreasing distance order. This implements the nearest-neighbor
// queries the paper lists as future work (§5), on the software path: the
// R-tree's best-first traversal supplies MBR-distance lower bounds and
// Chan's minDist refines survivors, so only objects that could still make
// the top k are ever refined.
func KNearest(layer *Layer, q *geom.Polygon, k int, opt dist.Options) []Neighbor {
	if k <= 0 {
		return nil
	}
	out := make([]Neighbor, 0, k)
	layer.Index.NearestBy(q.Bounds(),
		func(e rtree.Entry) float64 {
			return dist.MinDist(q, layer.Data.Objects[e.ID], opt)
		},
		func(e rtree.Entry, d float64) bool {
			out = append(out, Neighbor{ID: e.ID, Distance: d})
			return len(out) < k
		})
	return out
}
