package query

import (
	"context"
	"math"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Neighbor is one k-nearest-neighbors result: the layer object's index and
// its exact region distance to the query polygon.
type Neighbor struct {
	ID       int
	Distance float64
}

// KNearest returns the k objects of the layer nearest to the query polygon
// by exact region distance (zero for intersecting objects), in
// non-decreasing distance order. This implements the nearest-neighbor
// queries the paper lists as future work (§5), on the software path: the
// R-tree's best-first traversal supplies MBR-distance lower bounds and
// Chan's minDist refines survivors, so only objects that could still make
// the top k are ever refined.
//
// A cancelled or expired context stops the traversal and returns the
// neighbors confirmed so far (still in order) plus a *PartialError.
func KNearest(ctx context.Context, layer *Layer, q *geom.Polygon, k int, opt dist.Options) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	out := make([]Neighbor, 0, k)
	cancelled := false
	layer.Index.NearestBy(q.Bounds(),
		func(e rtree.Entry) float64 {
			// The exact-distance callback is the expensive step, so the
			// context is checked before every refinement. Once cancelled,
			// +Inf pushes the entry past every finite bound and the visit
			// callback terminates the traversal without another refinement.
			if cancelled || ctx.Err() != nil {
				cancelled = true
				return math.Inf(1)
			}
			return dist.MinDist(q, layer.Data.Objects[e.ID], opt)
		},
		func(e rtree.Entry, d float64) bool {
			if cancelled || math.IsInf(d, 1) {
				return false
			}
			out = append(out, Neighbor{ID: e.ID, Distance: d})
			return len(out) < k
		})
	if cancelled {
		return out, &PartialError{Op: "knn", Done: len(out), Total: k, Err: ctxCause(ctx)}
	}
	return out, nil
}
