package query

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/store"
)

// snapshotLayer saves the dataset to a temp snapshot and loads it back
// through the requested path (mmap or the read-into-slice fallback). The
// snapshot is closed with the test.
func snapshotLayer(t *testing.T, d *data.Dataset, forceCopy bool) *Layer {
	t.Helper()
	path := filepath.Join(t.TempDir(), d.Name+".snap")
	if _, err := store.Save(path, d, store.SaveOptions{}); err != nil {
		t.Fatalf("Save(%s): %v", d.Name, err)
	}
	s, err := store.Open(path, store.OpenOptions{ForceCopy: forceCopy})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	l, err := NewLayerFromSnapshot(s)
	if err != nil {
		t.Fatalf("NewLayerFromSnapshot: %v", err)
	}
	return l
}

func swTester() *core.Tester {
	return core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
}

// TestSnapshotLayerQueriesBitIdentical is the round-trip acceptance test:
// every query type against a snapshot-loaded layer must return results
// bit-identical to the same query against the in-memory layer, on both
// the mmap and copy load paths. The loaded side carries persisted
// signatures the memory side lacks, so identical results also prove the
// signature filter conservative end to end.
func TestSnapshotLayerQueriesBitIdentical(t *testing.T) {
	queries := data.MustLoad("STATES50", 1)
	d := data.BaseD(layerA.Data, layerB.Data)

	for _, tc := range []struct {
		name      string
		forceCopy bool
	}{
		{"mmap", false},
		{"copy", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snapA := snapshotLayer(t, layerA.Data, tc.forceCopy)
			snapB := snapshotLayer(t, layerB.Data, tc.forceCopy)
			if snapA.Signature(0) == nil {
				t.Fatal("snapshot layer carries no signatures")
			}

			// Selections: every STATES50 polygon against layer A.
			for qi, q := range queries.Objects {
				want, _, err := IntersectionSelect(bg, layerA, q, swTester(), SelectionOptions{})
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := IntersectionSelect(bg, snapA, q, swTester(), SelectionOptions{})
				if err != nil {
					t.Fatal(err)
				}
				gs, ws := sortedIDs(got), sortedIDs(want)
				if len(gs) != len(ws) {
					t.Fatalf("query %d: select %d ids, want %d", qi, len(gs), len(ws))
				}
				for i := range ws {
					if gs[i] != ws[i] {
						t.Fatalf("query %d: select id[%d]=%d, want %d", qi, i, gs[i], ws[i])
					}
				}

				wantW, _, err := WithinDistanceSelect(bg, layerA, q, d, swTester(), DistanceFilterOptions{Use0Object: true})
				if err != nil {
					t.Fatal(err)
				}
				gotW, _, err := WithinDistanceSelect(bg, snapA, q, d, swTester(), DistanceFilterOptions{Use0Object: true})
				if err != nil {
					t.Fatal(err)
				}
				gw, ww := sortedIDs(gotW), sortedIDs(wantW)
				if len(gw) != len(ww) {
					t.Fatalf("query %d: within-select %d ids, want %d", qi, len(gw), len(ww))
				}
				for i := range ww {
					if gw[i] != ww[i] {
						t.Fatalf("query %d: within-select id[%d]=%d, want %d", qi, i, gw[i], ww[i])
					}
				}
			}

			// Joins: snapshot layers on both sides.
			wantJ, _, err := IntersectionJoinOpt(bg, layerA, layerB, swTester(), JoinOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotJ, _, err := IntersectionJoinOpt(bg, snapA, snapB, swTester(), JoinOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gj, wj := sortedPairs(gotJ), sortedPairs(wantJ)
			if len(gj) != len(wj) {
				t.Fatalf("join %d pairs, want %d", len(gj), len(wj))
			}
			for i := range wj {
				if gj[i] != wj[i] {
					t.Fatalf("join pair[%d]=%v, want %v", i, gj[i], wj[i])
				}
			}

			wantD, _, err := WithinDistanceJoin(bg, layerA, layerB, d, swTester(), DistanceFilterOptions{Use0Object: true, Use1Object: true})
			if err != nil {
				t.Fatal(err)
			}
			gotD, _, err := WithinDistanceJoin(bg, snapA, snapB, d, swTester(), DistanceFilterOptions{Use0Object: true, Use1Object: true})
			if err != nil {
				t.Fatal(err)
			}
			gd, wd := sortedPairs(gotD), sortedPairs(wantD)
			if len(gd) != len(wd) {
				t.Fatalf("within-join %d pairs, want %d", len(gd), len(wd))
			}
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("within-join pair[%d]=%v, want %v", i, gd[i], wd[i])
				}
			}

			// Parallel join over snapshot layers agrees with serial memory.
			gotP, _, err := ParallelIntersectionJoin(bg, snapA, snapB, ParallelOptions{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			gp := sortedPairs(gotP)
			if len(gp) != len(wj) {
				t.Fatalf("parallel join %d pairs, want %d", len(gp), len(wj))
			}
			for i := range wj {
				if gp[i] != wj[i] {
					t.Fatalf("parallel join pair[%d]=%v, want %v", i, gp[i], wj[i])
				}
			}

			// Nearest neighbors: identical ids and distances.
			for _, q := range queries.Objects[:4] {
				want, err := KNearest(bg, layerA, q, 5, dist.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := KNearest(bg, snapA, q, 5, dist.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("knn %d neighbors, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("knn[%d]=%v, want %v", i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSnapshotLayerSignatureAblation pins the ablation knob and that the
// persisted signatures are actually consulted when enabled.
func TestSnapshotLayerSignatureAblation(t *testing.T) {
	snapA := snapshotLayer(t, layerA.Data, false)
	snapB := snapshotLayer(t, layerB.Data, false)

	with := swTester()
	if _, _, err := IntersectionJoinOpt(bg, snapA, snapB, with, JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	if with.Stats.SigChecks == 0 {
		t.Fatal("persisted signatures were never consulted in a snapshot join")
	}

	without := swTester()
	if _, _, err := IntersectionJoinOpt(bg, snapA, snapB, without, JoinOptions{NoSignatures: true}); err != nil {
		t.Fatal(err)
	}
	if without.Stats.SigChecks != 0 {
		t.Fatalf("NoSignatures still consulted signatures: %+v", without.Stats)
	}

	// The partition invariant holds with the signature bucket.
	s := with.Stats
	sum := s.MBRRejects + s.IntervalTrueHits + s.IntervalRejects + s.PIPHits + s.SigRejects + s.SWDirect + s.HWRejects + s.HWPassed + s.HWFallbacks + s.BreakerOpenSkips
	if s.Tests != sum {
		t.Fatalf("stats partition broken: Tests=%d sum=%d (%+v)", s.Tests, sum, s)
	}
}

// TestSnapshotLayerProvenance pins the provenance and stats accessors the
// serving layers rely on.
func TestSnapshotLayerProvenance(t *testing.T) {
	snapA := snapshotLayer(t, layerA.Data, false)
	if snapA.Origin != "snapshot:"+layerA.Data.Name {
		t.Fatalf("Origin = %q", snapA.Origin)
	}
	s, ok := snapA.Snapshot()
	if !ok || s == nil {
		t.Fatal("snapshot-backed layer lost its snapshot")
	}
	if st := s.Stats(); st.Bytes <= 0 || st.Sections < 5 {
		t.Fatalf("implausible load stats: %+v", st)
	}
	if layerA.Origin != "memory" {
		t.Fatalf("in-memory layer Origin = %q", layerA.Origin)
	}
	if _, ok := layerA.Snapshot(); ok {
		t.Fatal("in-memory layer claims a snapshot")
	}
}
