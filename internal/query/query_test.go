package query

import (
	"context"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/sweep"
)

// testLayers builds two small overlapping layers once for the package.
var (
	layerA = NewLayer(data.MustLoad("LANDC", 0.004)) // ~58 objects
	layerB = NewLayer(data.MustLoad("LANDO", 0.002)) // ~67 objects
)

// bg is the uncancellable context used by the correctness tests; the
// cancellation paths are exercised in resilient_test.go.
var bg = context.Background()

func sortedIDs(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

func sortedPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// oracleSelect computes selection results with brute-force software tests.
func oracleSelect(layer *Layer, q *geom.Polygon) []int {
	var ids []int
	for i, p := range layer.Data.Objects {
		if sweep.PolygonsIntersect(q, p, sweep.Options{Algorithm: sweep.BruteForce}) {
			ids = append(ids, i)
		}
	}
	return ids
}

func TestIntersectionSelectMatchesOracle(t *testing.T) {
	queries := data.MustLoad("STATES50", 1)
	sw := core.NewTester(core.Config{DisableHardware: true})
	hw := core.NewTester(core.Config{Resolution: 8})
	for qi := 0; qi < 10; qi++ {
		q := queries.Objects[qi]
		want := oracleSelect(layerA, q)
		for _, tester := range []*core.Tester{sw, hw} {
			for _, level := range []int{-1, 0, 2, 4} {
				got, cost, err := IntersectionSelect(bg, layerA, q, tester, SelectionOptions{InteriorLevel: level})
				if err != nil {
					t.Fatal(err)
				}
				g := sortedIDs(got)
				if len(g) != len(want) {
					t.Fatalf("query %d level %d: %d results, oracle %d", qi, level, len(g), len(want))
				}
				for i := range want {
					if g[i] != want[i] {
						t.Fatalf("query %d level %d: result %d = %d, want %d", qi, level, i, g[i], want[i])
					}
				}
				if cost.Results != len(want) {
					t.Errorf("cost.Results = %d, want %d", cost.Results, len(want))
				}
				if level >= 0 && cost.FilterHits+cost.Compared != cost.Candidates {
					t.Errorf("stage counts inconsistent: %+v", cost)
				}
			}
		}
	}
}

func TestIntersectionJoinMatchesOracle(t *testing.T) {
	// Oracle: nested loop with brute-force software test.
	var want []Pair
	for i, p := range layerA.Data.Objects {
		for j, q := range layerB.Data.Objects {
			if p.Bounds().Intersects(q.Bounds()) &&
				sweep.PolygonsIntersect(p, q, sweep.Options{Algorithm: sweep.BruteForce}) {
				want = append(want, Pair{i, j})
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("test layers do not overlap; generator broken")
	}
	sw := core.NewTester(core.Config{DisableHardware: true})
	hw := core.NewTester(core.Config{Resolution: 8})
	hwT := core.NewTester(core.Config{Resolution: 16, SWThreshold: 100})
	for _, tester := range []*core.Tester{sw, hw, hwT} {
		got, cost, err := IntersectionJoin(bg, layerA, layerB, tester)
		if err != nil {
			t.Fatal(err)
		}
		g, w := sortedPairs(got), sortedPairs(want)
		if len(g) != len(w) {
			t.Fatalf("join: %d pairs, oracle %d", len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("join pair %d = %v, want %v", i, g[i], w[i])
			}
		}
		if cost.Candidates < cost.Results {
			t.Errorf("candidates %d < results %d", cost.Candidates, cost.Results)
		}
	}
}

func TestWithinDistanceJoinMatchesOracle(t *testing.T) {
	baseD := data.BaseD(layerA.Data, layerB.Data)
	sw := core.NewTester(core.Config{DisableHardware: true})
	hw := core.NewTester(core.Config{Resolution: 8})
	for _, mult := range []float64{0.1, 1.0} {
		d := baseD * mult
		// Oracle: nested loop brute-force distance.
		var want []Pair
		for i, p := range layerA.Data.Objects {
			for j, q := range layerB.Data.Objects {
				if dist.MinDistBrute(p, q) <= d {
					want = append(want, Pair{i, j})
				}
			}
		}
		opts := []DistanceFilterOptions{
			{},
			{Use0Object: true},
			{Use0Object: true, Use1Object: true},
		}
		for _, tester := range []*core.Tester{sw, hw} {
			for _, opt := range opts {
				got, cost, err := WithinDistanceJoin(bg, layerA, layerB, d, tester, opt)
				if err != nil {
					t.Fatal(err)
				}
				g, w := sortedPairs(got), sortedPairs(want)
				if len(g) != len(w) {
					t.Fatalf("d=%.2f opt=%+v: %d pairs, oracle %d", d, opt, len(g), len(w))
				}
				for i := range w {
					if g[i] != w[i] {
						t.Fatalf("d=%.2f: pair %d = %v, want %v", d, i, g[i], w[i])
					}
				}
				if opt.Use0Object && cost.FilterHits+cost.Compared != cost.Candidates {
					t.Errorf("stage counts inconsistent: %+v", cost)
				}
			}
		}
	}
}

func TestFiltersReduceComparisons(t *testing.T) {
	baseD := data.BaseD(layerA.Data, layerB.Data)
	sw := core.NewTester(core.Config{DisableHardware: true})
	_, noFilter, err := WithinDistanceJoin(bg, layerA, layerB, baseD, sw, DistanceFilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, filtered, err := WithinDistanceJoin(bg, layerA, layerB, baseD, sw,
		DistanceFilterOptions{Use0Object: true, Use1Object: true})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Compared >= noFilter.Compared {
		t.Errorf("filters did not reduce comparisons: %d vs %d", filtered.Compared, noFilter.Compared)
	}
	if filtered.FilterHits == 0 {
		t.Error("0/1-object filters identified no positives at BaseD")
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Cost{MBRFilter: 10, IntermediateFilter: 20, GeometryComparison: 30,
		Candidates: 100, FilterHits: 40, Compared: 60, Results: 50}
	if c.Total() != 60 {
		t.Errorf("Total = %v", c.Total())
	}
	sum := c
	sum.Add(c)
	if sum.Candidates != 200 || sum.Total() != 120 {
		t.Errorf("Add wrong: %+v", sum)
	}
	avg := sum.Scale(2)
	if avg.Candidates != 100 || avg.Total() != 60 {
		t.Errorf("Scale wrong: %+v", avg)
	}
	if z := c.Scale(0); z != c {
		t.Error("Scale(0) should be identity")
	}
}

func TestNewLayer(t *testing.T) {
	if layerA.Index.Len() != len(layerA.Data.Objects) {
		t.Errorf("index size %d != objects %d", layerA.Index.Len(), len(layerA.Data.Objects))
	}
	if err := layerA.Index.Validate(); err != nil {
		t.Error(err)
	}
}
