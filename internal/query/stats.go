package query

import (
	"time"

	"repro/internal/core"
)

// Stats is the uniform per-query statistics record exposed to serving
// layers: one flat, JSON-marshalable struct combining the pipeline's
// stage cost breakdown (Cost) with the refinement tester's resolution
// counters (core.Stats), regardless of which query ran. The shell, the
// network server's access log, its /metrics surface and the HTTP/JSON
// endpoint all consume this one shape, so a serial select, a parallel
// join and a kNN query report through the same fields.
type Stats struct {
	Op      string `json:"op"`
	Results int    `json:"results"`

	// Pipeline stage counters (from Cost; zero for kNN, which has no
	// staged cost breakdown).
	Candidates    int `json:"candidates"`
	FilterHits    int `json:"filter_hits,omitempty"`
	FilterRejects int `json:"filter_rejects,omitempty"`
	Compared      int `json:"compared"`

	// Pipeline stage wall-clock, milliseconds.
	MBRFilterMS    float64 `json:"mbr_filter_ms"`
	IntermediateMS float64 `json:"intermediate_filter_ms"`
	GeometryMS     float64 `json:"geometry_ms"`

	// Refinement resolution counters (from core.Stats; zero when no
	// tester ran).
	Tests       int64 `json:"tests"`
	MBRRejects  int64 `json:"mbr_rejects"`
	PIPHits     int64 `json:"pip_hits"`
	SigChecks   int64 `json:"sig_checks,omitempty"`
	SigRejects  int64 `json:"sig_rejects,omitempty"`

	// Interval-approximation (v2) filter counters; see core.Stats.
	IntervalChecks       int64 `json:"interval_checks,omitempty"`
	IntervalTrueHits     int64 `json:"interval_true_hits,omitempty"`
	IntervalRejects      int64 `json:"interval_rejects,omitempty"`
	IntervalInconclusive int64 `json:"interval_inconclusive,omitempty"`

	SWDirect    int64 `json:"sw_direct"`
	HWRejects   int64 `json:"hw_rejects"`
	HWPassed    int64 `json:"hw_passed"`
	HWFallbacks int64 `json:"hw_fallbacks"`
	Panics      int64 `json:"panics"`
	Quarantined int64 `json:"quarantined"`

	// Sentinel verifier and circuit-breaker counters (see core.Stats).
	SentinelChecks        int64 `json:"sentinel_checks"`
	SentinelDisagreements int64 `json:"sentinel_disagreements"`
	BreakerTrips          int64 `json:"breaker_trips"`
	BreakerRecoveries     int64 `json:"breaker_recoveries"`
	BreakerOpenSkips      int64 `json:"breaker_open_skips"`

	// Edge-index and raster hot-path effectiveness counters.
	EdgeIndexHits         int64 `json:"edge_index_hits"`
	EdgeIndexSkippedEdges int64 `json:"edge_index_skipped_edges"`
	DirtyClearPixelsSaved int64 `json:"dirty_clear_pixels_saved"`

	// Staged-pipeline and streaming-delivery counters (see core.Stats;
	// zero for the ablated per-pair path and non-streaming queries).
	PipelineBatches    int64 `json:"pipeline_batches,omitempty"`
	PipelineFilterNS   int64 `json:"pipeline_filter_ns,omitempty"`
	PipelineRefineNS   int64 `json:"pipeline_refine_ns,omitempty"`
	PipelineQueueDepth int64 `json:"pipeline_queue_depth,omitempty"`
	StreamRowsEmitted  int64 `json:"stream_rows_emitted,omitempty"`

	// Live-view composition (filled by serving layers when the query ran
	// over an uncompacted snapshot ∪ delta view; zero for plain layers).
	LiveDelta      int `json:"live_delta,omitempty"`
	LiveTombstones int `json:"live_tombstones,omitempty"`

	// Snapshot provenance (filled by serving layers when the queried layer
	// was loaded from a store snapshot; zero otherwise).
	SnapshotBytes    int64   `json:"snapshot_bytes,omitempty"`
	SnapshotSections int     `json:"snapshot_sections,omitempty"`
	SnapshotMMap     bool    `json:"snapshot_mmap,omitempty"`
	SnapshotLoadMS   float64 `json:"snapshot_load_ms,omitempty"`
}

// NewStats flattens a query's cost breakdown and tester counters into the
// uniform serving record.
func NewStats(op string, results int, cost Cost, refine core.Stats) Stats {
	return Stats{
		Op:             op,
		Results:        results,
		Candidates:     cost.Candidates,
		FilterHits:     cost.FilterHits,
		FilterRejects:  cost.FilterRejects,
		Compared:       cost.Compared,
		MBRFilterMS:    float64(cost.MBRFilter) / float64(time.Millisecond),
		IntermediateMS: float64(cost.IntermediateFilter) / float64(time.Millisecond),
		GeometryMS:     float64(cost.GeometryComparison) / float64(time.Millisecond),
		Tests:          refine.Tests,
		MBRRejects:     refine.MBRRejects,
		PIPHits:        refine.PIPHits,
		SigChecks:      refine.SigChecks,
		SigRejects:     refine.SigRejects,

		IntervalChecks:       refine.IntervalChecks,
		IntervalTrueHits:     refine.IntervalTrueHits,
		IntervalRejects:      refine.IntervalRejects,
		IntervalInconclusive: refine.IntervalInconclusive,

		SWDirect:       refine.SWDirect,
		HWRejects:      refine.HWRejects,
		HWPassed:       refine.HWPassed,
		HWFallbacks:    refine.HWFallbacks,
		Panics:         refine.Panics,
		Quarantined:    refine.Quarantined,

		SentinelChecks:        refine.SentinelChecks,
		SentinelDisagreements: refine.SentinelDisagreements,
		BreakerTrips:          refine.BreakerTrips,
		BreakerRecoveries:     refine.BreakerRecoveries,
		BreakerOpenSkips:      refine.BreakerOpenSkips,

		EdgeIndexHits:         refine.EdgeIndexHits,
		EdgeIndexSkippedEdges: refine.EdgeIndexSkippedEdges,
		DirtyClearPixelsSaved: refine.DirtyClearPixelsSaved,

		PipelineBatches:    refine.PipelineBatches,
		PipelineFilterNS:   refine.PipelineFilterNS,
		PipelineRefineNS:   refine.PipelineRefineNS,
		PipelineQueueDepth: refine.PipelineQueueDepth,
		StreamRowsEmitted:  refine.StreamRowsEmitted,
	}
}

// Merge combines another query's statistics into s: every counter and
// wall-clock field sums, SnapshotMMap ORs, and Op is kept unless unset.
// Merge is associative and commutative over the numeric fields, so a
// coordinator (or pjoin aggregator) can fold per-shard records in any
// order. Results sums too — callers that deduplicate merged result
// streams (e.g. a sharded select, where border objects report from every
// overlapping tile) must overwrite Results with the deduplicated count
// afterward.
func (s *Stats) Merge(o Stats) {
	if s.Op == "" {
		s.Op = o.Op
	}
	s.Results += o.Results
	s.Candidates += o.Candidates
	s.FilterHits += o.FilterHits
	s.FilterRejects += o.FilterRejects
	s.Compared += o.Compared
	s.MBRFilterMS += o.MBRFilterMS
	s.IntermediateMS += o.IntermediateMS
	s.GeometryMS += o.GeometryMS
	s.Tests += o.Tests
	s.MBRRejects += o.MBRRejects
	s.PIPHits += o.PIPHits
	s.SigChecks += o.SigChecks
	s.SigRejects += o.SigRejects
	s.IntervalChecks += o.IntervalChecks
	s.IntervalTrueHits += o.IntervalTrueHits
	s.IntervalRejects += o.IntervalRejects
	s.IntervalInconclusive += o.IntervalInconclusive
	s.SWDirect += o.SWDirect
	s.HWRejects += o.HWRejects
	s.HWPassed += o.HWPassed
	s.HWFallbacks += o.HWFallbacks
	s.Panics += o.Panics
	s.Quarantined += o.Quarantined
	s.SentinelChecks += o.SentinelChecks
	s.SentinelDisagreements += o.SentinelDisagreements
	s.BreakerTrips += o.BreakerTrips
	s.BreakerRecoveries += o.BreakerRecoveries
	s.BreakerOpenSkips += o.BreakerOpenSkips
	s.EdgeIndexHits += o.EdgeIndexHits
	s.EdgeIndexSkippedEdges += o.EdgeIndexSkippedEdges
	s.DirtyClearPixelsSaved += o.DirtyClearPixelsSaved
	s.PipelineBatches += o.PipelineBatches
	s.PipelineFilterNS += o.PipelineFilterNS
	s.PipelineRefineNS += o.PipelineRefineNS
	// Queue depth is a per-run high-water mark, not a flow counter: the
	// merged record keeps the deepest queue seen anywhere.
	if o.PipelineQueueDepth > s.PipelineQueueDepth {
		s.PipelineQueueDepth = o.PipelineQueueDepth
	}
	s.StreamRowsEmitted += o.StreamRowsEmitted
	s.LiveDelta += o.LiveDelta
	s.LiveTombstones += o.LiveTombstones
	s.SnapshotBytes += o.SnapshotBytes
	s.SnapshotSections += o.SnapshotSections
	s.SnapshotMMap = s.SnapshotMMap || o.SnapshotMMap
	s.SnapshotLoadMS += o.SnapshotLoadMS
}

// SWFallbacks counts pair tests that reached the hardware path but were
// decided in software: inconclusive filter verdicts plus line-width
// fallbacks.
func (s Stats) SWFallbacks() int64 { return s.HWPassed + s.HWFallbacks }

// HWRejectRate is the fraction of started pair tests the hardware filter
// rejected; zero when no tests ran.
func (s Stats) HWRejectRate() float64 {
	if s.Tests == 0 {
		return 0
	}
	return float64(s.HWRejects) / float64(s.Tests)
}
