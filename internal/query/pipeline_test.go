package query

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
)

// samePairsExact requires element-wise equality including order — the
// pipeline's bit-identical contract, not just set equality.
func samePairsExact(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func checkStatsPartition(t *testing.T, name string, s core.Stats) {
	t.Helper()
	accounted := s.MBRRejects + s.IntervalTrueHits + s.IntervalRejects + s.PIPHits + s.SigRejects + s.SWDirect +
		s.HWRejects + s.HWPassed + s.HWFallbacks + s.BreakerOpenSkips
	if accounted != s.Tests {
		t.Errorf("%s: stats do not partition tests: %+v", name, s)
	}
}

// TestPipelineJoinMatchesSerial is the core differential: the staged
// pipeline must return the serial driver's result bit-identically (same
// pairs, same order) across batch sizes and worker counts, and the
// NoPipeline ablation must match both.
func TestPipelineJoinMatchesSerial(t *testing.T) {
	want, _, err := IntersectionJoin(bg, layerA, layerB, swTester())
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(want)
	for _, batch := range []int{1, 7, 64, 4096} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("batch=%d workers=%d", batch, workers)
			opt := PipelineOptions{
				ParallelOptions: ParallelOptions{Workers: workers},
				BatchSize:       batch,
			}
			got, stats, err := PipelineIntersectionJoin(bg, layerA, layerB, opt)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			samePairsExact(t, name, got, want)
			checkStatsPartition(t, name, stats)
			if stats.PipelineBatches == 0 {
				t.Errorf("%s: no pipeline batches recorded", name)
			}

			opt.NoPipeline = true
			ablated, astats, err := PipelineIntersectionJoin(bg, layerA, layerB, opt)
			if err != nil {
				t.Fatalf("%s ablation: %v", name, err)
			}
			samePairsExact(t, name+" ablation", ablated, want)
			checkStatsPartition(t, name+" ablation", astats)
		}
	}
}

// TestPipelineWithinMatchesSerial repeats the differential for the
// within-distance join.
func TestPipelineWithinMatchesSerial(t *testing.T) {
	d := data.BaseD(layerA.Data, layerB.Data)
	want, _, err := WithinDistanceJoin(bg, layerA, layerB, d, swTester(), DistanceFilterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(want)
	for _, batch := range []int{3, 256} {
		name := fmt.Sprintf("batch=%d", batch)
		opt := PipelineOptions{
			ParallelOptions: ParallelOptions{Workers: 4},
			BatchSize:       batch,
		}
		got, stats, err := PipelineWithinDistanceJoin(bg, layerA, layerB, d, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		samePairsExact(t, name, got, want)
		checkStatsPartition(t, name, stats)

		opt.NoPipeline = true
		ablated, _, err := PipelineWithinDistanceJoin(bg, layerA, layerB, d, opt)
		if err != nil {
			t.Fatalf("%s ablation: %v", name, err)
		}
		samePairsExact(t, name+" ablation", ablated, want)
	}
}

// TestPipelineConfigKnobs verifies the tester-config fallbacks: a factory
// whose Config carries BatchSize/NoPipeline drives the run when the
// options leave them zero.
func TestPipelineConfigKnobs(t *testing.T) {
	want, _, err := IntersectionJoin(bg, layerA, layerB, swTester())
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(want)
	opt := PipelineOptions{
		ParallelOptions: ParallelOptions{
			Workers: 2,
			Tester: func() *core.Tester {
				return core.NewTester(core.Config{DisableHardware: true, BatchSize: 5, NoPipeline: false})
			},
		},
	}
	got, stats, err := PipelineIntersectionJoin(bg, layerA, layerB, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePairsExact(t, "config batch", got, want)
	// Batch 5 over hundreds of candidates must cut more than one batch.
	if stats.PipelineBatches < 2 {
		t.Errorf("PipelineBatches = %d, want ≥ 2 with batch size 5", stats.PipelineBatches)
	}

	opt.ParallelOptions.Tester = func() *core.Tester {
		return core.NewTester(core.Config{DisableHardware: true, NoPipeline: true})
	}
	got, stats, err = PipelineIntersectionJoin(bg, layerA, layerB, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePairsExact(t, "config ablation", got, want)
	if stats.PipelineBatches != 0 {
		t.Errorf("ablated run recorded %d pipeline batches", stats.PipelineBatches)
	}
}

// TestPipelineSinkStreamsExactResult pins the streaming contract: the
// concatenation of sink batches equals the returned slice exactly, and
// the emission counters account for every streamed row.
func TestPipelineSinkStreamsExactResult(t *testing.T) {
	for _, noPipe := range []bool{false, true} {
		var streamed []Pair
		calls := 0
		opt := PipelineOptions{
			ParallelOptions: ParallelOptions{Workers: 4},
			BatchSize:       16,
			NoPipeline:      noPipe,
			Sink: func(pairs []Pair) error {
				calls++
				streamed = append(streamed, pairs...) // copy: the slice is reused
				return nil
			},
		}
		got, stats, err := PipelineIntersectionJoin(bg, layerA, layerB, opt)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("noPipeline=%v", noPipe)
		samePairsExact(t, name+" stream", streamed, got)
		if stats.StreamRowsEmitted != int64(len(got)) {
			t.Errorf("%s: StreamRowsEmitted = %d, want %d", name, stats.StreamRowsEmitted, len(got))
		}
		if noPipe {
			if calls != 1 {
				t.Errorf("%s: sink called %d times, want exactly 1 terminal emit", name, calls)
			}
		} else if calls < 2 {
			t.Errorf("%s: sink called %d times; batch 16 should stream incrementally", name, calls)
		}
	}
}

// TestPipelineSinkErrorWindsDown exercises the streaming wind-down: a
// failing sink must stop the join with a typed partial error carrying the
// sink's error, without leaking a single pipeline goroutine.
func TestPipelineSinkErrorWindsDown(t *testing.T) {
	boom := errors.New("client went away")
	before := runtime.NumGoroutine()
	opt := PipelineOptions{
		ParallelOptions: ParallelOptions{Workers: 4},
		BatchSize:       4,
		Sink: func(pairs []Pair) error {
			return boom
		},
	}
	got, _, err := PipelineIntersectionJoin(bg, layerA, layerB, opt)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("partial error does not carry the sink error: %v", err)
	}
	if pe.Total == 0 {
		t.Error("partial error lost the candidate total")
	}
	// The failed batch's pairs never streamed, so the returned slice is
	// whatever drained before wind-down; it must still be a prefix-ordered
	// subset of the full result.
	full, _, ferr := PipelineIntersectionJoin(bg, layerA, layerB, PipelineOptions{
		ParallelOptions: ParallelOptions{Workers: 4},
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	fullSet := pairSet(full)
	for _, pr := range got {
		if !fullSet[pr] {
			t.Fatalf("wind-down emitted %v, not in the full result", pr)
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestPipelineCancellationPartial cancels mid-stream and requires the
// typed partial with the cancellation cause, plus full goroutine
// wind-down.
func TestPipelineCancellationPartial(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(bg)
	opt := PipelineOptions{
		ParallelOptions: ParallelOptions{Workers: 2},
		BatchSize:       2,
		Sink: func(pairs []Pair) error {
			cancel() // first streamed batch pulls the plug
			return nil
		},
	}
	_, _, err := PipelineIntersectionJoin(ctx, layerA, layerB, opt)
	cancel()
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("partial error cause = %v, want context.Canceled", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestPipelineRecoversPanickingTester mirrors the parallel-path panic
// regression: a tester that panics on every intersection test (filter
// stage) must be quarantined onto software retries, with the exact
// software result set and zero quarantined pairs.
func TestPipelineRecoversPanickingTester(t *testing.T) {
	want := pairSet(softwareOracle(t))
	inj := faultinject.New(7).Inject(faultinject.SiteIntersects, faultinject.KindPanic, 1)
	opt := PipelineOptions{
		ParallelOptions: ParallelOptions{
			Workers: 4,
			Tester: func() *core.Tester {
				return core.NewTester(core.Config{DisableHardware: true, Faults: inj})
			},
		},
		BatchSize: 8,
	}
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	var (
		got   []Pair
		stats core.Stats
		err   error
	)
	go func() {
		defer close(done)
		got, stats, err = PipelineIntersectionJoin(bg, layerA, layerB, opt)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("pipeline join deadlocked with a panicking tester")
	}
	if err != nil {
		t.Fatalf("join failed: %v", err)
	}
	checkNoGoroutineLeak(t, before)
	if stats.Panics == 0 {
		t.Error("no panics recorded despite rate-1 injection")
	}
	if stats.Quarantined != 0 {
		t.Errorf("%d pairs quarantined; software retries should all succeed", stats.Quarantined)
	}
	g := pairSet(got)
	if len(g) != len(want) {
		t.Fatalf("degraded join: %d pairs, software oracle %d", len(g), len(want))
	}
	for pr := range want {
		if !g[pr] {
			t.Fatalf("degraded join lost pair %v", pr)
		}
	}
}

// TestPipelineViewComposition runs the composed-view path (live view with
// deletes and inserts) through the pipeline and requires parity with the
// serial composed join, streamed and returned.
func TestPipelineViewComposition(t *testing.T) {
	deletes := map[uint64]bool{3: true, 17: true, 40: true}
	inserts := layerB.Data.Objects[:8]
	lv := NewLive(layerA, nil, 0, 0)
	applyScript(t, lv, deletes, inserts)
	v := lv.View()
	if _, ok := v.Single(); ok {
		t.Fatal("mutated view claims to be single-component")
	}

	want, _, err := IntersectionJoinView(bg, v, layerB.View(), swTester(), JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Pair
	opt := PipelineOptions{
		ParallelOptions: ParallelOptions{Workers: 4},
		BatchSize:       16,
		Sink: func(pairs []Pair) error {
			streamed = append(streamed, pairs...)
			return nil
		},
	}
	got, _, err := PipelineIntersectionJoinView(bg, v, layerB.View(), opt)
	if err != nil {
		t.Fatal(err)
	}
	samePairsExact(t, "composed", got, want)
	// Streamed union is the same set (stream order is per-component, the
	// returned slice is re-sorted).
	sg, sw := sortedPairs(streamed), sortedPairs(want)
	samePairsExact(t, "composed stream", sg, sw)
}
