package query

import (
	"sort"
	"sync"

	"repro/internal/data"
	"repro/internal/geom"
)

// Live is a mutable overlay over an immutable base layer: live inserts
// accumulate in an in-memory delta, deletes tombstone base or delta
// objects by stable id. Every object ever stored keeps a stable uint64
// id; ids are strictly increasing in canonical order (base survivors
// keep the base's increasing ids, inserts always get larger ones), an
// invariant that survives compaction inductively and is what lets Has
// and deletes binary-search the base.
//
// Live applies mutations; durability is the caller's job (the ingest
// table appends to the WAL under the same lock, so recovery replay order
// equals in-memory apply order). All methods are safe for concurrent
// use; View returns an immutable snapshot of the current state, rebuilt
// lazily after mutations and cached between them.
type Live struct {
	mu   sync.Mutex
	base *Layer
	// baseIDs are the base objects' stable ids, strictly increasing.
	baseIDs []uint64
	tomb    []bool
	tombs   int

	deltaObjs []*geom.Polygon
	deltaIDs  []uint64
	deltaDead []bool
	deltaTomb int
	deltaIdx  map[uint64]int // stable id → delta position

	nextID     uint64
	appliedLSN uint64

	view *View // cached; nil after a mutation
}

// NewLive wraps base as a live table. ids are the base objects' stable
// ids (nil = identity); nextID and appliedLSN come from the snapshot's
// lineage (zero for a fresh in-memory table).
func NewLive(base *Layer, ids []uint64, nextID, appliedLSN uint64) *Live {
	n := len(base.Data.Objects)
	if ids == nil {
		ids = make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(i)
		}
	}
	if n > 0 && nextID <= ids[n-1] {
		nextID = ids[n-1] + 1
	}
	return &Live{
		base:       base,
		baseIDs:    ids,
		tomb:       make([]bool, n),
		deltaIdx:   map[uint64]int{},
		nextID:     nextID,
		appliedLSN: appliedLSN,
	}
}

// ReserveID hands out the next stable id (called before the WAL append
// so the id is part of the durable record).
func (lv *Live) ReserveID() uint64 {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	id := lv.nextID
	lv.nextID++
	return id
}

// Has reports whether an alive object with the stable id exists.
func (lv *Live) Has(id uint64) bool {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.findLocked(id) != liveNone
}

type liveWhere int

const (
	liveNone liveWhere = iota
	liveBase
	liveDelta
)

// findLocked locates an alive object by stable id.
func (lv *Live) findLocked(id uint64) liveWhere {
	if i, ok := lv.deltaIdx[id]; ok {
		if !lv.deltaDead[i] {
			return liveDelta
		}
		return liveNone
	}
	i := sort.Search(len(lv.baseIDs), func(i int) bool { return lv.baseIDs[i] >= id })
	if i < len(lv.baseIDs) && lv.baseIDs[i] == id && !lv.tomb[i] {
		return liveBase
	}
	return liveNone
}

// ApplyInsert absorbs an insert that is (or is being made) durable at
// lsn. The id must come from ReserveID or WAL replay; nextID advances
// past it either way, so replay is idempotent with assignment.
func (lv *Live) ApplyInsert(id uint64, p *geom.Polygon, lsn uint64) {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	lv.deltaIdx[id] = len(lv.deltaObjs)
	lv.deltaObjs = append(lv.deltaObjs, p)
	lv.deltaIDs = append(lv.deltaIDs, id)
	lv.deltaDead = append(lv.deltaDead, false)
	if id >= lv.nextID {
		lv.nextID = id + 1
	}
	lv.appliedLSN = lsn
	lv.view = nil
}

// ApplyDelete tombstones the object with the stable id, reporting
// whether an alive object was found.
func (lv *Live) ApplyDelete(id uint64, lsn uint64) bool {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	lv.appliedLSN = lsn
	lv.view = nil
	if i, ok := lv.deltaIdx[id]; ok && !lv.deltaDead[i] {
		lv.deltaDead[i] = true
		lv.deltaTomb++
		return true
	}
	i := sort.Search(len(lv.baseIDs), func(i int) bool { return lv.baseIDs[i] >= id })
	if i < len(lv.baseIDs) && lv.baseIDs[i] == id && !lv.tomb[i] {
		lv.tomb[i] = true
		lv.tombs++
		return true
	}
	return false
}

// View returns the current snapshot ∪ delta − tombstones read view,
// cached until the next mutation. The delta component's R-tree is
// rebuilt on demand — O(delta) work, paid once per mutation batch, which
// is the compaction pressure the background compactor relieves.
func (lv *Live) View() *View {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if lv.view != nil {
		return lv.view
	}
	alive := len(lv.deltaObjs) - lv.deltaTomb
	if lv.tombs == 0 && alive == 0 {
		lv.view = lv.base.View()
		return lv.view
	}
	v := &View{base: lv.base}
	surv := len(lv.baseIDs)
	if lv.tombs > 0 {
		v.baseCanon = make([]int32, len(lv.baseIDs))
		surv = 0
		for i := range lv.baseIDs {
			if lv.tomb[i] {
				v.baseCanon[i] = -1
			} else {
				v.baseCanon[i] = int32(surv)
				surv++
			}
		}
	}
	if alive > 0 {
		objs := make([]*geom.Polygon, 0, alive)
		v.deltaCanon = make([]int32, 0, alive)
		for i, p := range lv.deltaObjs {
			if !lv.deltaDead[i] {
				v.deltaCanon = append(v.deltaCanon, int32(surv+len(objs)))
				objs = append(objs, p)
			}
		}
		v.delta = NewLayer(&data.Dataset{Name: lv.base.Data.Name + "+delta", Objects: objs})
	}
	v.numObjects = surv + alive
	v.origin = lv.base.Origin + "+live"
	lv.view = v
	return lv.view
}

// Frozen is a consistent copy of a live table's canonical state, the
// compactor's input: objects and their stable ids in canonical order,
// plus the lineage values the new snapshot generation must carry.
type Frozen struct {
	Dataset    *data.Dataset
	IDs        []uint64
	NextID     uint64
	AppliedLSN uint64
	Delta      int // alive delta objects folded
	Tombs      int // tombstones folded
}

// Freeze captures the canonical state for compaction. The returned
// slices are fresh; mutations after Freeze do not affect them.
func (lv *Live) Freeze() Frozen {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	alive := len(lv.deltaObjs) - lv.deltaTomb
	n := len(lv.baseIDs) - lv.tombs + alive
	objs := make([]*geom.Polygon, 0, n)
	ids := make([]uint64, 0, n)
	for i, p := range lv.base.Data.Objects {
		if !lv.tomb[i] {
			objs = append(objs, p)
			ids = append(ids, lv.baseIDs[i])
		}
	}
	for i, p := range lv.deltaObjs {
		if !lv.deltaDead[i] {
			objs = append(objs, p)
			ids = append(ids, lv.deltaIDs[i])
		}
	}
	return Frozen{
		Dataset:    &data.Dataset{Name: lv.base.Data.Name, Objects: objs},
		IDs:        ids,
		NextID:     lv.nextID,
		AppliedLSN: lv.appliedLSN,
		Delta:      alive,
		Tombs:      lv.tombs + lv.deltaTomb,
	}
}

// AppliedLSN returns the LSN of the last absorbed mutation.
func (lv *Live) AppliedLSN() uint64 {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.appliedLSN
}

// Pending reports how much uncompacted state the table carries: alive
// delta objects plus tombstones (the compactor's trigger input).
func (lv *Live) Pending() int {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return len(lv.deltaObjs) - lv.deltaTomb + lv.tombs + lv.deltaTomb
}
