package query

import (
	"context"
	"fmt"
	"time"
)

// BudgetError reports a query that failed fast because MBR filtering
// produced more candidates than the configured budget allows — the guard
// against pathological MBR skew (one enormous object overlapping
// everything) turning a join into an OOM. The query performed no
// refinement work; rerun with a larger budget or better-filtered inputs.
type BudgetError struct {
	Op         string // "join", "within-join", "select", ...
	Candidates int    // candidates seen when the budget tripped
	Budget     int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("query: %s aborted: MBR filtering exceeded the %d-candidate budget", e.Op, e.Budget)
}

// PartialError reports a query interrupted by context cancellation or
// deadline expiry. The results returned alongside it are valid but
// incomplete: Done of Total refinement units (candidate objects or pairs)
// were fully processed before the interruption. It unwraps to the
// context's error, so errors.Is(err, context.Canceled) and
// context.DeadlineExceeded work as expected.
type PartialError struct {
	Op   string
	Done int // refinement units completed
	Total int
	Err  error // the context's error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("query: %s interrupted after %d/%d refinements: %v", e.Op, e.Done, e.Total, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// DeadlineError reports a query that exhausted its wall-clock budget. It
// is installed as the cancellation *cause* of deadline-governed contexts
// (context.WithTimeoutCause), so it surfaces inside a PartialError's Err
// chain with the budget that was exceeded, while still unwrapping to
// context.DeadlineExceeded for callers matching on the standard sentinel.
type DeadlineError struct {
	Budget time.Duration // the wall-clock budget that was exhausted
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("query: wall-clock budget %v exhausted", e.Budget)
}

func (e *DeadlineError) Unwrap() error { return context.DeadlineExceeded }

// ctxCause resolves the error a PartialError should carry for an
// interrupted context: the cancellation cause when one was supplied (a
// *DeadlineError from deadline governance, a watchdog's stuck-query
// error), else the plain context error. Falling back matters: Cause
// returns nil for a context that is not yet done, and equals Err() for
// causeless cancellations, so this never loses the sentinel errors.
func ctxCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// cancelStride is how many refinement units are processed between context
// checks on the serial paths — the "chunk granularity" of cancellation.
// One ctx.Err() per stride keeps the hot loop overhead unmeasurable while
// bounding cancellation latency to a stride of pair tests.
const cancelStride = 64
