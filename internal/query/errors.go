package query

import "fmt"

// BudgetError reports a query that failed fast because MBR filtering
// produced more candidates than the configured budget allows — the guard
// against pathological MBR skew (one enormous object overlapping
// everything) turning a join into an OOM. The query performed no
// refinement work; rerun with a larger budget or better-filtered inputs.
type BudgetError struct {
	Op         string // "join", "within-join", "select", ...
	Candidates int    // candidates seen when the budget tripped
	Budget     int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("query: %s aborted: MBR filtering exceeded the %d-candidate budget", e.Op, e.Budget)
}

// PartialError reports a query interrupted by context cancellation or
// deadline expiry. The results returned alongside it are valid but
// incomplete: Done of Total refinement units (candidate objects or pairs)
// were fully processed before the interruption. It unwraps to the
// context's error, so errors.Is(err, context.Canceled) and
// context.DeadlineExceeded work as expected.
type PartialError struct {
	Op   string
	Done int // refinement units completed
	Total int
	Err  error // the context's error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("query: %s interrupted after %d/%d refinements: %v", e.Op, e.Done, e.Total, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// cancelStride is how many refinement units are processed between context
// checks on the serial paths — the "chunk granularity" of cancellation.
// One ctx.Err() per stride keeps the hot loop overhead unmeasurable while
// bounding cancellation latency to a stride of pair tests.
const cancelStride = 64
