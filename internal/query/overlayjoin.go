package query

import (
	"time"

	"repro/internal/core"
	"repro/internal/overlay"
)

// OverlayPair is one map-overlay result: an intersecting pair and the
// exact area of its intersection region.
type OverlayPair struct {
	A, B int
	Area float64
}

// OverlayAreaJoin runs the map-overlay operation the paper's introduction
// motivates: it finds every intersecting pair (via the intersection-join
// pipeline, hardware-assisted when the tester has hardware) and computes
// each pair's exact intersection area with the slab-decomposition overlay.
// The overlay computation is charged to the geometry-comparison stage —
// it is precisely the kind of intermediate result that did not exist
// before the query ran, which is why pre-computed approximations cannot
// help and runtime filtering can.
func OverlayAreaJoin(a, b *Layer, tester *core.Tester) ([]OverlayPair, Cost) {
	pairs, cost := IntersectionJoin(a, b, tester)
	start := time.Now()
	out := make([]OverlayPair, 0, len(pairs))
	for _, pr := range pairs {
		area := overlay.IntersectionArea(a.Data.Objects[pr.A], b.Data.Objects[pr.B])
		out = append(out, OverlayPair{A: pr.A, B: pr.B, Area: area})
	}
	cost.GeometryComparison += time.Since(start)
	return out, cost
}
