package query

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/overlay"
)

// OverlayPair is one map-overlay result: an intersecting pair and the
// exact area of its intersection region.
type OverlayPair struct {
	A, B int
	Area float64
}

// OverlayAreaJoin runs the map-overlay operation the paper's introduction
// motivates: it finds every intersecting pair (via the intersection-join
// pipeline, hardware-assisted when the tester has hardware) and computes
// each pair's exact intersection area with the slab-decomposition overlay.
// The overlay computation is charged to the geometry-comparison stage —
// it is precisely the kind of intermediate result that did not exist
// before the query ran, which is why pre-computed approximations cannot
// help and runtime filtering can.
//
// Cancellation is honored both inside the join and between overlay
// computations: an interrupted call returns the overlays finished so far
// plus a *PartialError.
func OverlayAreaJoin(ctx context.Context, a, b *Layer, tester *core.Tester) ([]OverlayPair, Cost, error) {
	pairs, cost, err := IntersectionJoin(ctx, a, b, tester)
	if err != nil {
		return nil, cost, err
	}
	start := time.Now()
	out := make([]OverlayPair, 0, len(pairs))
	for i, pr := range pairs {
		// Each overlay is a full slab decomposition — expensive enough to
		// justify a context check per pair rather than per stride.
		if ctx.Err() != nil {
			cost.GeometryComparison += time.Since(start)
			return out, cost, &PartialError{Op: "overlay-join", Done: i, Total: len(pairs), Err: ctxCause(ctx)}
		}
		area := overlay.IntersectionArea(a.Data.Objects[pr.A], b.Data.Objects[pr.B])
		out = append(out, OverlayPair{A: pr.A, B: pr.B, Area: area})
	}
	cost.GeometryComparison += time.Since(start)
	return out, cost, nil
}
