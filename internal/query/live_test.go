package query

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/store"
)

// scratchState builds the expected post-mutation state from first
// principles: base objects minus deletes (identity ids), then inserts in
// order — the canonical order a live view must agree with.
func scratchState(base *data.Dataset, deletes map[uint64]bool, inserts []*geom.Polygon) *data.Dataset {
	var objs []*geom.Polygon
	for i, p := range base.Objects {
		if !deletes[uint64(i)] {
			objs = append(objs, p)
		}
	}
	objs = append(objs, inserts...)
	return &data.Dataset{Name: base.Name, Objects: objs}
}

func applyScript(t *testing.T, lv *Live, deletes map[uint64]bool, inserts []*geom.Polygon) {
	t.Helper()
	lsn := uint64(0)
	for id := uint64(0); id < uint64(len(lv.base.Data.Objects)); id++ {
		if deletes[id] {
			lsn++
			if !lv.ApplyDelete(id, lsn) {
				t.Fatalf("delete %d found nothing", id)
			}
		}
	}
	for _, p := range inserts {
		lsn++
		lv.ApplyInsert(lv.ReserveID(), p, lsn)
	}
}

func samePairs(t *testing.T, ctxName string, got, want []Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", ctxName, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", ctxName, i, got[i], want[i])
		}
	}
}

func sameIDs(t *testing.T, ctxName string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d ids, want %d", ctxName, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: id %d = %d, want %d", ctxName, i, got[i], want[i])
		}
	}
}

// TestLiveViewParity pins the composed read path against a from-scratch
// build of the same state: every query through the snapshot ∪ delta −
// tombstones view must return exactly the results of a layer built
// directly from the mutated dataset, in canonical positions.
func TestLiveViewParity(t *testing.T) {
	deletes := map[uint64]bool{3: true, 17: true, 40: true}
	inserts := layerB.Data.Objects[:8]
	lv := NewLive(layerA, nil, 0, 0)
	applyScript(t, lv, deletes, inserts)
	scratch := NewLayer(scratchState(layerA.Data, deletes, inserts))

	v := lv.View()
	if _, ok := v.Single(); ok {
		t.Fatal("mutated view claims to be single-component")
	}
	if v.NumObjects() != len(scratch.Data.Objects) {
		t.Fatalf("view has %d objects, scratch %d", v.NumObjects(), len(scratch.Data.Objects))
	}

	// Selections across a query workload.
	queries := data.MustLoad("STATES50", 1)
	for qi, q := range queries.Objects {
		want, _, err := IntersectionSelect(bg, scratch, q, swTester(), SelectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := IntersectionSelectView(bg, v, q, swTester(), SelectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameIDs(t, fmt.Sprintf("select %d", qi), got, sortedIDs(want))
	}

	// Self-join over the composed view (the crash harness's parity oracle).
	want, _, err := IntersectionJoin(bg, scratch, scratch, swTester())
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(want)
	got, _, err := IntersectionJoinView(bg, v, v, swTester(), JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "self-join", got, want)

	// Cross join live × plain layer.
	wantX, _, err := IntersectionJoin(bg, scratch, layerB, swTester())
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(wantX)
	gotX, _, err := IntersectionJoinView(bg, v, layerB.View(), swTester(), JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "cross-join", gotX, wantX)

	// Within-distance join.
	d := data.BaseD(layerA.Data, layerB.Data)
	wantW, _, err := WithinDistanceJoin(bg, scratch, layerB, d, swTester(), DistanceFilterOptions{Use0Object: true})
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(wantW)
	gotW, _, err := WithinDistanceJoinView(bg, v, layerB.View(), d, swTester(), DistanceFilterOptions{Use0Object: true})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "within-join", gotW, wantW)

	// Parallel join agrees with the serial composed join.
	gotP, _, err := ParallelIntersectionJoinView(bg, v, v, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "parallel-join", gotP, want)

	// Freeze produces the canonical state: same objects, increasing ids.
	fr := lv.Freeze()
	if len(fr.Dataset.Objects) != len(scratch.Data.Objects) {
		t.Fatalf("frozen %d objects, want %d", len(fr.Dataset.Objects), len(scratch.Data.Objects))
	}
	for i, p := range scratch.Data.Objects {
		if fr.Dataset.Objects[i] != p {
			t.Fatalf("frozen object %d is not the canonical object", i)
		}
	}
	for i := 1; i < len(fr.IDs); i++ {
		if fr.IDs[i] <= fr.IDs[i-1] {
			t.Fatalf("frozen ids not increasing at %d", i)
		}
	}
	if fr.Delta != len(inserts) || fr.Tombs != len(deletes) {
		t.Fatalf("frozen delta/tombs = %d/%d, want %d/%d", fr.Delta, fr.Tombs, len(inserts), len(deletes))
	}
}

// TestLiveViewFastPaths pins the undecorated cases: an untouched live
// table serves its base's cached single view, and delete-then-reinsert
// state transitions invalidate the cache.
func TestLiveViewFastPaths(t *testing.T) {
	lv := NewLive(layerA, nil, 0, 0)
	v := lv.View()
	if l, ok := v.Single(); !ok || l != layerA {
		t.Fatal("untouched live table is not the base single view")
	}
	if lv.View() != v {
		t.Fatal("view not cached")
	}
	if !lv.Has(0) || lv.Has(uint64(len(layerA.Data.Objects)+10)) {
		t.Fatal("Has wrong on base ids")
	}
	lsn := uint64(1)
	if !lv.ApplyDelete(5, lsn) {
		t.Fatal("delete id 5")
	}
	if lv.ApplyDelete(5, lsn+1) {
		t.Fatal("double delete found an alive object")
	}
	v2 := lv.View()
	if v2 == v {
		t.Fatal("mutation did not invalidate the cached view")
	}
	if _, ok := v2.Single(); ok {
		t.Fatal("tombstoned view claims single")
	}
	base, delta, tombs := v2.Counts()
	if base != len(layerA.Data.Objects) || delta != 0 || tombs != 1 {
		t.Fatalf("counts = %d/%d/%d", base, delta, tombs)
	}
	if v2.NumObjects() != base-1 {
		t.Fatalf("NumObjects %d, want %d", v2.NumObjects(), base-1)
	}
	// Reinserting under a fresh id revives the object count.
	id := lv.ReserveID()
	lv.ApplyInsert(id, layerA.Data.Objects[5], 3)
	if !lv.Has(id) {
		t.Fatal("inserted id not found")
	}
	if got := lv.View().NumObjects(); got != base {
		t.Fatalf("after reinsert NumObjects %d, want %d", got, base)
	}
}

// TestForceCopyDeltaOverlayParity is the satellite coverage for
// OpenOptions.ForceCopy composed with a live delta: the portable
// (copy-decode) snapshot path and the mmap path must see identical
// snapshot ∪ delta results, exercised concurrently under -race while a
// mutator keeps both tables moving in lockstep.
func TestForceCopyDeltaOverlayParity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.snap")
	if _, err := store.Save(path, layerA.Data, store.SaveOptions{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	lives := make([]*Live, 2)
	for i, forceCopy := range []bool{false, true} {
		s, err := store.Open(path, store.OpenOptions{ForceCopy: forceCopy})
		if err != nil {
			t.Fatalf("Open(forceCopy=%v): %v", forceCopy, err)
		}
		t.Cleanup(func() { s.Close() })
		l, err := NewLayerFromSnapshot(s)
		if err != nil {
			t.Fatal(err)
		}
		lives[i] = NewLive(l, s.IDs(), s.NextID(), s.AppliedLSN())
	}

	inserts := layerB.Data.Objects[:12]
	queries := data.MustLoad("STATES50", 1).Objects[:10]

	// A mutator drives both tables through the same script while readers
	// hammer consistent views; every reader's fetched view is immutable,
	// so per-iteration counts may differ across tables but must never
	// race or return out-of-range positions.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, lv := range lives {
		wg.Add(1)
		go func(lv *Live) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[i%len(queries)]
				v := lv.View()
				ids, _, err := IntersectionSelectView(bg, v, q, swTester(), SelectionOptions{})
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				for _, id := range ids {
					if id < 0 || id >= v.NumObjects() {
						t.Errorf("select returned position %d of %d", id, v.NumObjects())
						return
					}
				}
			}
		}(lv)
	}
	lsn := uint64(0)
	for _, p := range inserts {
		lsn++
		for _, lv := range lives {
			lv.ApplyInsert(lv.ReserveID(), p, lsn)
		}
	}
	for _, id := range []uint64{2, 9, 33} {
		lsn++
		for _, lv := range lives {
			if !lv.ApplyDelete(id, lsn) {
				t.Errorf("delete %d found nothing", id)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Settled: the two read paths must agree query for query, and match
	// the from-scratch oracle.
	deletes := map[uint64]bool{2: true, 9: true, 33: true}
	scratch := NewLayer(scratchState(layerA.Data, deletes, inserts))
	vm, vc := lives[0].View(), lives[1].View()
	for qi, q := range queries {
		want, _, err := IntersectionSelect(bg, scratch, q, swTester(), SelectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotM, _, err := IntersectionSelectView(bg, vm, q, swTester(), SelectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotC, _, err := IntersectionSelectView(bg, vc, q, swTester(), SelectionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameIDs(t, fmt.Sprintf("mmap select %d", qi), gotM, sortedIDs(want))
		sameIDs(t, fmt.Sprintf("copy select %d", qi), gotC, gotM)
	}
	wantJ, _, err := IntersectionJoin(bg, scratch, scratch, swTester())
	if err != nil {
		t.Fatal(err)
	}
	sortPairsByOuter(wantJ)
	for name, v := range map[string]*View{"mmap": vm, "copy": vc} {
		got, _, err := IntersectionJoinView(bg, v, v, swTester(), JoinOptions{})
		if err != nil {
			t.Fatal(err)
		}
		samePairs(t, name+" self-join", got, wantJ)
	}
}
