package query

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

// TestEdgeIndexCached pins the lazy-build contract: repeated calls return
// the same immutable index, and the index really is the object's.
func TestEdgeIndexCached(t *testing.T) {
	layer := NewLayer(data.MustLoad("LANDC", 0.002))
	for id := range layer.Data.Objects {
		ix := layer.EdgeIndex(id)
		if ix.Polygon() != layer.Data.Objects[id] {
			t.Fatalf("object %d: index built for wrong polygon", id)
		}
		if again := layer.EdgeIndex(id); again != ix {
			t.Fatalf("object %d: second EdgeIndex call returned a different index", id)
		}
	}
}

// TestEdgeIndexSharedAcrossWorkers drives 8 workers through one Layer's
// edge indexes simultaneously — racing the lazy CompareAndSwap publication
// and then reading the shared hierarchies — and checks every worker's
// join result against the serial answer. Run under -race this is the
// concurrency proof for the shared read-only index design.
func TestEdgeIndexSharedAcrossWorkers(t *testing.T) {
	a := NewLayer(data.MustLoad("LANDC", 0.002))
	b := NewLayer(data.MustLoad("LANDO", 0.001))

	serialTester := core.NewTester(core.Config{DisableHardware: true})
	want, _, err := IntersectionJoinOpt(bg, a, b, serialTester,
		JoinOptions{NoEdgeIndex: true, NoLocalityOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	wantSorted := sortedPairs(want)

	const workers = 8
	results := make([][]Pair, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tester := core.NewTester(core.Config{DisableHardware: true})
			results[w], _, errs[w] = IntersectionJoinOpt(bg, a, b, tester, JoinOptions{})
		}()
	}
	wg.Wait()
	for w := range workers {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		got := sortedPairs(results[w])
		if len(got) != len(wantSorted) {
			t.Fatalf("worker %d: %d pairs, want %d", w, len(got), len(wantSorted))
		}
		for i := range wantSorted {
			if got[i] != wantSorted[i] {
				t.Fatalf("worker %d: pair %d = %v, want %v", w, i, got[i], wantSorted[i])
			}
		}
	}
}

// TestJoinAblationsAgree checks that the four combinations of the
// refinement ablation knobs compute the same pair set: the edge index and
// the locality ordering are pure performance levers.
func TestJoinAblationsAgree(t *testing.T) {
	d := data.BaseD(layerA.Data, layerB.Data)
	combos := []JoinOptions{
		{},
		{NoEdgeIndex: true},
		{NoLocalityOrder: true},
		{NoEdgeIndex: true, NoLocalityOrder: true},
	}
	var wantJoin, wantWithin []Pair
	for i, opt := range combos {
		tester := core.NewTester(core.Config{Resolution: 8, SWThreshold: core.DefaultSWThreshold})
		got, _, err := IntersectionJoinOpt(bg, layerA, layerB, tester, opt)
		if err != nil {
			t.Fatal(err)
		}
		gotW, _, err := WithinDistanceJoin(bg, layerA, layerB, d, tester, DistanceFilterOptions{
			NoEdgeIndex: opt.NoEdgeIndex, NoLocalityOrder: opt.NoLocalityOrder,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantJoin, wantWithin = sortedPairs(got), sortedPairs(gotW)
			continue
		}
		if g := sortedPairs(got); len(g) != len(wantJoin) {
			t.Fatalf("combo %+v: %d intersection pairs, want %d", opt, len(g), len(wantJoin))
		} else {
			for j := range g {
				if g[j] != wantJoin[j] {
					t.Fatalf("combo %+v: pair %d = %v, want %v", opt, j, g[j], wantJoin[j])
				}
			}
		}
		if g := sortedPairs(gotW); len(g) != len(wantWithin) {
			t.Fatalf("combo %+v: %d within pairs, want %d", opt, len(g), len(wantWithin))
		} else {
			for j := range g {
				if g[j] != wantWithin[j] {
					t.Fatalf("combo %+v: within pair %d = %v, want %v", opt, j, g[j], wantWithin[j])
				}
			}
		}
	}
}

// TestSelectionUsesQueryIndex checks a selection against a complex query
// polygon still matches the oracle when the query-side index is active
// (IntersectionSelect builds it unconditionally) and that index stats
// actually flow: on layers with indexed objects some hits must register.
func TestSelectionUsesQueryIndex(t *testing.T) {
	queries := data.MustLoad("STATES50", 1)
	q := queries.Objects[0]
	tester := core.NewTester(core.Config{DisableHardware: true})
	got, _, err := IntersectionSelect(bg, layerA, q, tester, SelectionOptions{InteriorLevel: -1, NoIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleSelect(layerA, q)
	g, w := sortedIDs(got), sortedIDs(want)
	if len(g) != len(w) {
		t.Fatalf("%d results, want %d", len(g), len(w))
	}
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("result %d = %d, want %d", i, g[i], w[i])
		}
	}
	if tester.Stats.EdgeIndexHits == 0 {
		t.Error("selection refinement recorded no edge-index hits")
	}
	if tester.Stats.EdgeIndexSkippedEdges == 0 {
		t.Error("selection refinement recorded no skipped edges")
	}
}
