package query

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// fillStats sets every numeric field of a Stats to a distinct nonzero
// value derived from base, sets bools true, and tags strings. Using
// reflection here means a future Stats field cannot silently be skipped
// by Merge: the exhaustiveness test below fails until Merge handles it.
func fillStats(base int64) Stats {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		n := base + int64(i) + 1
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(n)
		case reflect.Float64:
			f.SetFloat(float64(n))
		case reflect.Bool:
			f.SetBool(true)
		case reflect.String:
			f.SetString("op")
		default:
			panic("unhandled Stats field kind " + f.Kind().String())
		}
	}
	return s
}

func TestStatsMergeSumsEveryField(t *testing.T) {
	a, b := fillStats(100), fillStats(5000)
	m := a
	m.Merge(b)
	av, bv, mv := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(m)
	typ := av.Type()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		switch av.Field(i).Kind() {
		case reflect.Int, reflect.Int64:
			want := av.Field(i).Int() + bv.Field(i).Int()
			if name == "PipelineQueueDepth" {
				// High-water-mark gauge: merges by max, not sum.
				want = max(av.Field(i).Int(), bv.Field(i).Int())
			}
			if got := mv.Field(i).Int(); got != want {
				t.Errorf("Merge dropped %s: got %d, want %d", name, got, want)
			}
		case reflect.Float64:
			if got, want := mv.Field(i).Float(), av.Field(i).Float()+bv.Field(i).Float(); got != want {
				t.Errorf("Merge dropped %s: got %v, want %v", name, got, want)
			}
		case reflect.Bool:
			if !mv.Field(i).Bool() {
				t.Errorf("Merge cleared bool %s", name)
			}
		}
	}
}

// TestNewStatsCarriesEveryCoreCounter pins the core.Stats → Stats
// flatten: every counter the refinement tester accumulates must have a
// same-named field in the serving record holding the same value, so a
// counter added to core.Stats cannot silently vanish from the shell
// output, access log, /metrics, or the coordinator's merged records.
func TestNewStatsCarriesEveryCoreCounter(t *testing.T) {
	var cs core.Stats
	cv := reflect.ValueOf(&cs).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetInt(int64(i) + 1)
	}
	// The tester's internal wall-clock aggregates are deliberately not in
	// the serving record; stage timing reports through Cost instead.
	exempt := map[string]bool{"HWTime": true, "SWTime": true, "CollectTime": true}
	st := NewStats("op", 0, Cost{}, cs)
	sv := reflect.ValueOf(st)
	for i := 0; i < cv.NumField(); i++ {
		name := cv.Type().Field(i).Name
		if exempt[name] {
			continue
		}
		f := sv.FieldByName(name)
		if !f.IsValid() {
			t.Errorf("core.Stats.%s has no counterpart in query.Stats", name)
			continue
		}
		if got, want := f.Int(), cv.Field(i).Int(); got != want {
			t.Errorf("NewStats dropped core.Stats.%s: got %d, want %d", name, got, want)
		}
	}
}

func TestStatsMergeAssociative(t *testing.T) {
	a, b, c := fillStats(10), fillStats(200), fillStats(3000)
	left := a
	left.Merge(b)
	left.Merge(c)
	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)
	if left != right {
		t.Fatalf("Merge not associative:\n(a·b)·c = %+v\na·(b·c) = %+v", left, right)
	}
}

func TestStatsMergeOpAndBool(t *testing.T) {
	var s Stats
	s.Merge(Stats{Op: "join", Results: 3, SnapshotMMap: true})
	if s.Op != "join" || s.Results != 3 || !s.SnapshotMMap {
		t.Fatalf("merge into zero value: %+v", s)
	}
	s.Merge(Stats{Op: "select", Results: 2})
	if s.Op != "join" {
		t.Fatalf("Merge overwrote Op: %q", s.Op)
	}
	if s.Results != 5 || !s.SnapshotMMap {
		t.Fatalf("second merge: %+v", s)
	}
}
