package query

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/rtree"
)

// ParallelOptions configure multi-worker join execution.
type ParallelOptions struct {
	// Workers is the number of refinement workers; 0 means GOMAXPROCS.
	Workers int
	// Tester builds each worker's refinement tester. Every worker needs
	// its own (a Tester owns a rendering context, like a per-thread GL
	// context); nil means hardware-assisted defaults.
	Tester func() *core.Tester
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) newTester() *core.Tester {
	if o.Tester != nil {
		return o.Tester()
	}
	return core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
}

// ParallelIntersectionJoin computes the same result set as
// IntersectionJoin using a pool of refinement workers. The MBR join runs
// single-threaded (it is ~1% of the cost; see Figure 10), candidate pairs
// are distributed in chunks, and per-worker testers keep the hot path
// contention-free. Pair order in the result is unspecified. The summed
// per-worker stats are returned alongside.
func ParallelIntersectionJoin(a, b *Layer, opt ParallelOptions) ([]Pair, core.Stats) {
	var candidates []Pair
	rtree.Join(a.Index, b.Index, func(ea, eb rtree.Entry) bool {
		candidates = append(candidates, Pair{ea.ID, eb.ID})
		return true
	})
	return parallelRefine(candidates, opt, func(t *core.Tester, pr Pair) bool {
		return t.Intersects(a.Data.Objects[pr.A], b.Data.Objects[pr.B])
	})
}

// ParallelWithinDistanceJoin is the parallel counterpart of
// WithinDistanceJoin (without intermediate filters; compose them by
// pre-filtering candidates if needed).
func ParallelWithinDistanceJoin(a, b *Layer, d float64, opt ParallelOptions) ([]Pair, core.Stats) {
	var candidates []Pair
	rtree.JoinWithin(a.Index, b.Index, d, func(ea, eb rtree.Entry) bool {
		candidates = append(candidates, Pair{ea.ID, eb.ID})
		return true
	})
	return parallelRefine(candidates, opt, func(t *core.Tester, pr Pair) bool {
		return t.WithinDistance(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d)
	})
}

// parallelRefine fans candidate pairs out over workers, each owning one
// tester, and gathers positives and summed stats.
func parallelRefine(candidates []Pair, opt ParallelOptions, test func(*core.Tester, Pair) bool) ([]Pair, core.Stats) {
	workers := min(opt.workers(), max(1, len(candidates)))
	// Chunked work distribution: big enough to amortize channel traffic,
	// small enough to balance skewed pair costs (one monster pair can be
	// a thousand times a typical one).
	const chunk = 64
	type result struct {
		pairs []Pair
		stats core.Stats
	}
	work := make(chan []Pair, workers)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tester := opt.newTester()
			var out []Pair
			for pairs := range work {
				for _, pr := range pairs {
					if test(tester, pr) {
						out = append(out, pr)
					}
				}
			}
			results <- result{pairs: out, stats: tester.Stats}
		}()
	}
	for lo := 0; lo < len(candidates); lo += chunk {
		work <- candidates[lo:min(lo+chunk, len(candidates))]
	}
	close(work)
	wg.Wait()
	close(results)

	var all []Pair
	var stats core.Stats
	for r := range results {
		all = append(all, r.pairs...)
		stats.Add(r.stats)
	}
	return all, stats
}
