package query

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/rtree"
)

// ParallelOptions configure multi-worker join execution.
type ParallelOptions struct {
	// Workers is the number of refinement workers; 0 means GOMAXPROCS.
	Workers int
	// Tester builds each worker's refinement tester. Every worker needs
	// its own (a Tester owns a rendering context, like a per-thread GL
	// context); nil means hardware-assisted defaults.
	Tester func() *core.Tester
	// MaxCandidates, when positive, aborts the join with a *BudgetError
	// if the MBR join yields more candidate pairs than this.
	MaxCandidates int
	// NoEdgeIndex and NoLocalityOrder are the refinement ablation knobs,
	// as in JoinOptions: they disable the shared per-object edge indexes
	// and the outer-object candidate ordering / group-aligned sharding.
	NoEdgeIndex     bool
	NoLocalityOrder bool
	// NoBreaker detaches the layer pair's circuit breaker; see
	// SelectionOptions.NoBreaker.
	NoBreaker bool
	// NoSignatures disables the persisted raster-signature filter; see
	// SelectionOptions.NoSignatures.
	NoSignatures bool
	// NoIntervals disables the v2 interval-approximation filter; see
	// SelectionOptions.NoIntervals.
	NoIntervals bool
	// IntervalOrder forces the shared interval grid's order; see
	// JoinOptions.IntervalOrder.
	IntervalOrder int
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) newTester() *core.Tester {
	if o.Tester != nil {
		return o.Tester()
	}
	return core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
}

// ParallelIntersectionJoin computes the same result set as
// IntersectionJoin using a pool of refinement workers. The MBR join runs
// single-threaded (it is ~1% of the cost; see Figure 10), candidate pairs
// are distributed in chunks, and per-worker testers keep the hot path
// contention-free. Pair order in the result is unspecified. The summed
// per-worker stats are returned alongside.
//
// The join is resilient: a refinement test that panics (a poisoned
// geometry, a faulting hardware path) is retried once on the pure
// software path and, failing that, quarantined — counted in
// Stats.Quarantined and excluded from the result, never killing the join
// or leaking its worker. Cancelling ctx stops all workers within one
// chunk of tests and returns the pairs found so far with a *PartialError.
func ParallelIntersectionJoin(ctx context.Context, a, b *Layer, opt ParallelOptions) ([]Pair, core.Stats, error) {
	col := collector[Pair]{ctx: ctx, op: "parallel-join", budget: opt.MaxCandidates}
	rtree.Join(a.Index, b.Index, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	if col.err != nil {
		return nil, core.Stats{}, col.err
	}
	if !opt.NoLocalityOrder {
		sortPairsByOuter(col.items)
	}
	iva, ivb := intervalColumns(a, b, opt.NoIntervals, opt.IntervalOrder)
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, iva, ivb)
	return parallelRefine(ctx, col.items, opt, "parallel-join", func(t *core.Tester, pr Pair) bool {
		return t.IntersectsCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], pcFor(pr))
	})
}

// ParallelWithinDistanceJoin is the parallel counterpart of
// WithinDistanceJoin (without intermediate filters; compose them by
// pre-filtering candidates if needed). Resilience semantics match
// ParallelIntersectionJoin.
func ParallelWithinDistanceJoin(ctx context.Context, a, b *Layer, d float64, opt ParallelOptions) ([]Pair, core.Stats, error) {
	col := collector[Pair]{ctx: ctx, op: "parallel-within-join", budget: opt.MaxCandidates}
	rtree.JoinWithin(a.Index, b.Index, d, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	if col.err != nil {
		return nil, core.Stats{}, col.err
	}
	if !opt.NoLocalityOrder {
		sortPairsByOuter(col.items)
	}
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, nil, nil)
	return parallelRefine(ctx, col.items, opt, "parallel-within-join", func(t *core.Tester, pr Pair) bool {
		return t.WithinDistanceCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d, pcFor(pr))
	})
}

// safeTest runs one refinement test with panic isolation. It never lets a
// panic escape: the pair's verdict and whether the test panicked are
// reported to the caller instead.
func safeTest(t *core.Tester, pr Pair, test func(*core.Tester, Pair) bool) (keep, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			keep = false
			panicked = true
		}
	}()
	return test(t, pr), false
}

// parallelRefine fans candidate pairs out over workers, each owning one
// tester, and gathers positives and summed stats.
//
// Failure semantics, per worker:
//
//   - A pair whose test panics is recorded in Stats.Panics and retried
//     exactly once on a fresh software-only tester (DisableHardware, no
//     fault injection) built from the worker tester's own configuration —
//     the hw→sw degradation path. If the retry also panics the pair is
//     quarantined (Stats.Quarantined) and dropped from the result.
//   - Workers check ctx between pairs; the feeder selects on ctx.Done
//     while sending. On cancellation everything winds down through the
//     normal close/WaitGroup path — no goroutine outlives the call — and
//     the partial result is returned with a *PartialError counting fully
//     processed pairs.
func parallelRefine(ctx context.Context, candidates []Pair, opt ParallelOptions, op string, test func(*core.Tester, Pair) bool) ([]Pair, core.Stats, error) {
	workers := min(opt.workers(), max(1, len(candidates)))
	// Chunked work distribution: big enough to amortize channel traffic,
	// small enough to balance skewed pair costs (one monster pair can be
	// a thousand times a typical one) and to bound cancellation latency.
	const chunk = 64
	type result struct {
		pairs     []Pair
		stats     core.Stats
		processed int
	}
	work := make(chan []Pair, workers)
	results := make(chan result, workers)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tester := opt.newTester()
			// swRetry is built lazily on the first panic: the same
			// configuration degraded to the pure software path, with fault
			// injection disarmed so an injected fault cannot re-fire.
			var swRetry *core.Tester
			var out []Pair
			processed := 0
			res := func() {
				stats := tester.Stats
				if swRetry != nil {
					stats.Add(swRetry.Stats)
				}
				results <- result{pairs: out, stats: stats, processed: processed}
			}
		drain:
			for pairs := range work {
				for _, pr := range pairs {
					if ctx.Err() != nil {
						break drain
					}
					keep, panicked := safeTest(tester, pr, test)
					if panicked {
						tester.Stats.Panics++
						if swRetry == nil {
							cfg := tester.Config()
							cfg.DisableHardware = true
							cfg.Faults = nil
							swRetry = core.NewTester(cfg)
						}
						keep, panicked = safeTest(swRetry, pr, test)
						if panicked {
							// The geometry itself is poisoned: both the
							// primary and the software path blew up on it.
							tester.Stats.Quarantined++
							processed++
							continue
						}
					}
					if keep {
						out = append(out, pr)
					}
					processed++
				}
			}
			res()
		}()
	}
	// The feeder cuts chunks at outer-group boundaries when the candidates
	// arrive locality-sorted: a chunk is extended past the nominal size
	// until the current outer object's run ends, so one outer polygon's
	// pairs land on one worker and its edge index is built and reused
	// there. The extension is bounded (4× chunk) so a monster outer group
	// cannot serialize the join — an oversized group is split into
	// consecutive runs that each still enjoy full locality.
feed:
	for lo := 0; lo < len(candidates); {
		hi := min(lo+chunk, len(candidates))
		if !opt.NoLocalityOrder {
			limit := min(lo+4*chunk, len(candidates))
			for hi < limit && candidates[hi].A == candidates[hi-1].A {
				hi++
			}
		}
		select {
		case work <- candidates[lo:hi]:
		case <-ctx.Done():
			break feed
		}
		lo = hi
	}
	close(work)
	wg.Wait()
	close(results)

	var all []Pair
	var stats core.Stats
	processed := 0
	for r := range results {
		all = append(all, r.pairs...)
		stats.Add(r.stats)
		processed += r.processed
	}
	if ctx.Err() != nil {
		return all, stats, &PartialError{Op: op, Done: processed, Total: len(candidates), Err: ctxCause(ctx)}
	}
	return all, stats, nil
}
