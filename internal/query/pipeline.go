package query

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rtree"
)

// This file implements the staged batch pipeline for joins: candidate
// generation → filter (MBR / containment / persisted-signature, the
// render-free front of Algorithm 3.1) → refine (hardware filter + exact
// software tests) → emit, with bounded batch queues between the stages
// and a worker pool per stage. Batching keeps each stage's working set
// hot (the filter stage runs dense and branch-light over whole batches,
// modeled on 3DPipe's pipelined join framework), and the emit stage
// delivers refined batches to a streaming sink as they complete — clients
// measure time-to-first-row instead of time-to-last-row.
//
// Determinism: batches are numbered at generation and the emit stage
// restores sequence order, so with the default locality order the
// complete result — returned and streamed — is exactly the serial
// driver's candidate-sorted output, bit for bit. Config.NoPipeline (or
// PipelineOptions.NoPipeline) reconstructs the pre-pipeline per-pair
// worker path, emitting one final batch; differential tests pin the two
// paths identical.

// PipelineOptions configure the staged batch join drivers.
type PipelineOptions struct {
	ParallelOptions

	// BatchSize is the candidate-pair batch size; 0 falls back to the
	// tester configuration's Config.BatchSize, then core.DefaultBatchSize.
	BatchSize int
	// NoPipeline reconstructs the per-pair worker path (one emit at the
	// end); OR-ed with the tester configuration's Config.NoPipeline.
	NoPipeline bool
	// Sink, when non-nil, receives each completed batch's positive pairs
	// in sequence order as refinement finishes, from the calling
	// goroutine. The slice is reused between calls — consume it before
	// returning, don't retain it. A non-nil return stops the join:
	// completed batches still drain into the returned result, and the
	// error surfaces as the *PartialError cause (the streaming wind-down
	// path).
	Sink func(pairs []Pair) error
}

// pipeBatch is one candidate batch traveling through the stage queues.
type pipeBatch struct {
	seq   int
	pairs []Pair
	// keep is the per-pair verdict, filled in by the filter stage for
	// resolved pairs and the refine stage for the rest; emission order is
	// candidate order, so hits are read back out through it.
	keep []bool
	// undecided indexes into pairs the filter stage could not resolve.
	undecided []int32
}

// PipelineIntersectionJoin computes the same result set as
// IntersectionJoinOpt through the staged batch pipeline, streaming
// completed batches to opt.Sink. The result slice (and the concatenated
// sink batches) are in candidate order — with the default locality order,
// sorted by (A, B). Cancellation, budget, and panic-quarantine semantics
// match ParallelIntersectionJoin.
func PipelineIntersectionJoin(ctx context.Context, a, b *Layer, opt PipelineOptions) ([]Pair, core.Stats, error) {
	col := collector[Pair]{ctx: ctx, op: "pipeline-join", budget: opt.MaxCandidates}
	rtree.Join(a.Index, b.Index, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	if col.err != nil {
		return nil, core.Stats{}, col.err
	}
	if !opt.NoLocalityOrder {
		sortPairsByOuter(col.items)
	}
	iva, ivb := intervalColumns(a, b, opt.NoIntervals, opt.IntervalOrder)
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, iva, ivb)
	return pipelineRun(ctx, col.items, opt, "pipeline-join",
		func(t *core.Tester, pr Pair) core.Verdict {
			return t.FilterIntersects(a.Data.Objects[pr.A], b.Data.Objects[pr.B], pcFor(pr))
		},
		func(t *core.Tester, pr Pair) bool {
			return t.RefineIntersects(a.Data.Objects[pr.A], b.Data.Objects[pr.B], pcFor(pr))
		},
		func(t *core.Tester, pr Pair) bool {
			return t.IntersectsCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], pcFor(pr))
		})
}

// PipelineWithinDistanceJoin is PipelineIntersectionJoin for the buffer
// query (no intermediate distance filters, matching
// ParallelWithinDistanceJoin).
func PipelineWithinDistanceJoin(ctx context.Context, a, b *Layer, d float64, opt PipelineOptions) ([]Pair, core.Stats, error) {
	col := collector[Pair]{ctx: ctx, op: "pipeline-within-join", budget: opt.MaxCandidates}
	rtree.JoinWithin(a.Index, b.Index, d, func(ea, eb rtree.Entry) bool {
		return col.add(Pair{ea.ID, eb.ID})
	})
	if col.err != nil {
		return nil, core.Stats{}, col.err
	}
	if !opt.NoLocalityOrder {
		sortPairsByOuter(col.items)
	}
	pcFor := pairContexts(a, b, opt.NoEdgeIndex, opt.NoBreaker, opt.NoSignatures, nil, nil)
	return pipelineRun(ctx, col.items, opt, "pipeline-within-join",
		func(t *core.Tester, pr Pair) core.Verdict {
			return t.FilterWithin(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d, pcFor(pr))
		},
		func(t *core.Tester, pr Pair) bool {
			return t.RefineWithin(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d, pcFor(pr))
		},
		func(t *core.Tester, pr Pair) bool {
			return t.WithinDistanceCtx(a.Data.Objects[pr.A], b.Data.Objects[pr.B], d, pcFor(pr))
		})
}

// PipelineIntersectionJoinView composes PipelineIntersectionJoin across
// the views' components. Single×single views take the exact single-layer
// path; composed views stream each component join through a
// canonical-remapping sink (tombstoned participants dropped) and return
// the union sorted by (A, B).
func PipelineIntersectionJoinView(ctx context.Context, a, b *View, opt PipelineOptions) ([]Pair, core.Stats, error) {
	la, aok := a.Single()
	lb, bok := b.Single()
	if aok && bok {
		return PipelineIntersectionJoin(ctx, la, lb, opt)
	}
	return composePipelineJoin(a, b, opt, func(x, y *Layer, o PipelineOptions) ([]Pair, core.Stats, error) {
		return PipelineIntersectionJoin(ctx, x, y, o)
	})
}

// PipelineWithinDistanceJoinView is PipelineIntersectionJoinView for the
// buffer query.
func PipelineWithinDistanceJoinView(ctx context.Context, a, b *View, d float64, opt PipelineOptions) ([]Pair, core.Stats, error) {
	la, aok := a.Single()
	lb, bok := b.Single()
	if aok && bok {
		return PipelineWithinDistanceJoin(ctx, la, lb, d, opt)
	}
	return composePipelineJoin(a, b, opt, func(x, y *Layer, o PipelineOptions) ([]Pair, core.Stats, error) {
		return PipelineWithinDistanceJoin(ctx, x, y, d, o)
	})
}

// composePipelineJoin runs a pipeline join per component combination,
// remapping streamed batches to canonical positions inside the sink so
// composed views still deliver rows incrementally.
func composePipelineJoin(a, b *View, opt PipelineOptions, join func(x, y *Layer, o PipelineOptions) ([]Pair, core.Stats, error)) ([]Pair, core.Stats, error) {
	var out []Pair
	var stats core.Stats
	for _, ca := range a.components() {
		for _, cb := range b.components() {
			o := opt
			if opt.Sink != nil {
				canonA, canonB := ca.canon, cb.canon
				var remapped []Pair
				o.Sink = func(pairs []Pair) error {
					remapped = remapped[:0]
					for _, pr := range pairs {
						pa, pb := canonA(pr.A), canonB(pr.B)
						if pa >= 0 && pb >= 0 {
							remapped = append(remapped, Pair{int(pa), int(pb)})
						}
					}
					if len(remapped) == 0 {
						return nil
					}
					return opt.Sink(remapped)
				}
			}
			pairs, st, err := join(ca.layer, cb.layer, o)
			stats.Add(st)
			for _, pr := range pairs {
				pa, pb := ca.canon(pr.A), cb.canon(pr.B)
				if pa >= 0 && pb >= 0 {
					out = append(out, Pair{int(pa), int(pb)})
				}
			}
			if err != nil {
				if _, ok := err.(*BudgetError); ok {
					return nil, stats, err
				}
				sortPairsByOuter(out)
				return out, stats, err
			}
		}
	}
	sortPairsByOuter(out)
	return out, stats, nil
}

// resolvePipeline reads the effective batch size and ablation flag from
// the options and the tester factory's configuration. The tester built
// to probe the configuration is returned for reuse as the first
// worker's — a Tester owns a raster rendering context (a
// resolution-squared buffer), too expensive to build and discard once
// per pipeline join (once per component pair for composed views).
func resolvePipeline(opt PipelineOptions) (batch int, noPipe bool, seed *core.Tester) {
	seed = opt.newTester()
	cfg := seed.Config()
	batch = opt.BatchSize
	if batch <= 0 {
		batch = cfg.BatchSize
	}
	if batch <= 0 {
		batch = core.DefaultBatchSize
	}
	return batch, opt.NoPipeline || cfg.NoPipeline, seed
}

// maxInt64 raises the atomic gauge to v if larger (the queue-depth
// high-water mark shared by the stage goroutines).
func maxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// pipelineRun drives candidates through the staged pipeline.
//
// Topology: a generator goroutine cuts the (locality-sorted) candidate
// slice into batches aligned to outer-object group boundaries and feeds a
// bounded filter queue; filter workers resolve the render-free verdicts
// and pass batches to a bounded refine queue; refine workers decide the
// undecided pairs; the emit stage — the calling goroutine — restores
// sequence order and hands each completed batch to the sink. Bounded
// queues give backpressure end to end: a slow sink (a congested client
// connection) stalls emit, which stalls refine, which stalls filter and
// generation, so in-flight memory stays proportional to
// workers × batch size, never to the result set.
//
// Failure semantics match parallelRefine: a panicking filter verdict is
// retried as a whole test on a software-only tester; a panicking refine
// is retried refine-only (its filter half already counted); a second
// panic quarantines the pair. Workers check ctx per pair and the whole
// pipeline winds down through channel closes — no goroutine outlives the
// call. A sink error cancels the pipeline's derived context and surfaces
// as the *PartialError cause.
func pipelineRun(ctx context.Context, candidates []Pair, opt PipelineOptions, op string,
	filter func(*core.Tester, Pair) core.Verdict,
	refine func(*core.Tester, Pair) bool,
	full func(*core.Tester, Pair) bool) ([]Pair, core.Stats, error) {

	batch, noPipe, seed := resolvePipeline(opt)
	// The config-probe tester seeds exactly one worker (whichever asks
	// first); everyone else builds their own as before.
	var seedUsed atomic.Bool
	newTester := func() *core.Tester {
		if seedUsed.CompareAndSwap(false, true) {
			return seed
		}
		return opt.newTester()
	}
	if noPipe {
		// Ablation: the pre-pipeline per-pair worker path. One terminal
		// emit models the buffered delivery the pipeline replaces.
		po := opt.ParallelOptions
		po.Tester = newTester
		pairs, stats, err := parallelRefine(ctx, candidates, po, op, full)
		sortPairsByOuter(pairs)
		if _, budget := err.(*BudgetError); !budget && opt.Sink != nil && len(pairs) > 0 {
			if serr := opt.Sink(pairs); serr != nil {
				if err == nil {
					err = &PartialError{Op: op, Done: len(candidates), Total: len(candidates), Err: serr}
				}
			} else {
				// Count only successfully sunk rows, exactly like the
				// pipelined emit stage — the two modes must not diverge on
				// this counter in the sink-failure case.
				stats.StreamRowsEmitted += int64(len(pairs))
			}
		}
		return pairs, stats, err
	}

	refineWorkers := min(opt.workers(), max(1, (len(candidates)+batch-1)/batch))
	filterWorkers := max(1, (refineWorkers+1)/2)

	pctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	filterCh := make(chan *pipeBatch, filterWorkers)
	refineCh := make(chan *pipeBatch, refineWorkers)
	emitCh := make(chan *pipeBatch, refineWorkers)
	var queueDepth atomic.Int64
	var filterNS, refineNS atomic.Int64
	workerStats := make([]core.Stats, filterWorkers+refineWorkers)

	// Stage 0: generation. Batches extend past the nominal size to the end
	// of the current outer object's run (bounded at 4×) so one outer
	// polygon's pairs — and its lazily built edge index — stay on one
	// filter/refine worker pass.
	go func() {
		defer close(filterCh)
		seq := 0
		for lo := 0; lo < len(candidates); {
			hi := min(lo+batch, len(candidates))
			if !opt.NoLocalityOrder {
				limit := min(lo+4*batch, len(candidates))
				for hi < limit && candidates[hi].A == candidates[hi-1].A {
					hi++
				}
			}
			b := &pipeBatch{seq: seq, pairs: candidates[lo:hi]}
			select {
			case filterCh <- b:
				maxInt64(&queueDepth, int64(len(filterCh)))
			case <-pctx.Done():
				return
			}
			seq++
			lo = hi
		}
	}()

	var filterWG sync.WaitGroup
	for w := range filterWorkers {
		filterWG.Add(1)
		go func() {
			defer filterWG.Done()
			tester := newTester()
			var swRetry *core.Tester
			start := time.Now()
			for b := range filterCh {
				if pctx.Err() != nil {
					continue // drain so the generator never blocks
				}
				b.keep = make([]bool, len(b.pairs))
				for i, pr := range b.pairs {
					if pctx.Err() != nil {
						b.keep = nil // mark unprocessed; emit skips it
						break
					}
					v, panicked := safeFilter(tester, pr, filter)
					if panicked {
						// The whole test retries on the software path: the
						// panicked attempt never counted Tests, so the
						// retry re-counts from the top (see parallelRefine).
						tester.Stats.Panics++
						if swRetry == nil {
							swRetry = softwareRetryTester(tester)
						}
						keep, panicked := safeTest(swRetry, pr, full)
						if panicked {
							tester.Stats.Quarantined++
							keep = false
						}
						b.keep[i] = keep
						continue
					}
					switch v {
					case core.VerdictHit:
						b.keep[i] = true
					case core.VerdictUndecided:
						b.undecided = append(b.undecided, int32(i))
					}
				}
				if b.keep == nil {
					continue
				}
				select {
				case refineCh <- b:
					maxInt64(&queueDepth, int64(len(refineCh)))
				case <-pctx.Done():
				}
			}
			filterNS.Add(int64(time.Since(start)))
			stats := tester.Stats
			if swRetry != nil {
				stats.Add(swRetry.Stats)
			}
			workerStats[w] = stats
		}()
	}
	go func() {
		filterWG.Wait()
		close(refineCh)
	}()

	var refineWG sync.WaitGroup
	for w := range refineWorkers {
		refineWG.Add(1)
		go func() {
			defer refineWG.Done()
			tester := newTester()
			var swRetry *core.Tester
			start := time.Now()
			for b := range refineCh {
				if pctx.Err() != nil {
					continue
				}
				done := true
				for _, i := range b.undecided {
					if pctx.Err() != nil {
						done = false
						break
					}
					pr := b.pairs[i]
					keep, panicked := safeTest(tester, pr, refine)
					if panicked {
						// Refine-only retry: the pair's filter half already
						// counted on the filter worker's tester, so the
						// software retry supplies just the resolution.
						tester.Stats.Panics++
						if swRetry == nil {
							swRetry = softwareRetryTester(tester)
						}
						keep, panicked = safeTest(swRetry, pr, refine)
						if panicked {
							tester.Stats.Quarantined++
							keep = false
						}
					}
					b.keep[i] = keep
				}
				if !done {
					continue
				}
				select {
				case emitCh <- b:
					maxInt64(&queueDepth, int64(len(emitCh)))
				case <-pctx.Done():
				}
			}
			refineNS.Add(int64(time.Since(start)))
			stats := tester.Stats
			if swRetry != nil {
				stats.Add(swRetry.Stats)
			}
			workerStats[filterWorkers+w] = stats
		}()
	}
	go func() {
		refineWG.Wait()
		close(emitCh)
	}()

	// Stage 3: emit, on the calling goroutine. Batches are re-sequenced so
	// the stream (and the returned slice) follow candidate order; on
	// wind-down the completed out-of-order tail still drains, ascending.
	var results []Pair
	var stats core.Stats
	processed := 0
	var sinkErr error
	pending := map[int]*pipeBatch{}
	next := 0
	handle := func(b *pipeBatch) {
		n := len(results)
		for i, keep := range b.keep {
			if keep {
				results = append(results, b.pairs[i])
			}
		}
		processed += len(b.pairs)
		stats.PipelineBatches++
		if opt.Sink != nil && sinkErr == nil && len(results) > n {
			if err := opt.Sink(results[n:]); err != nil {
				sinkErr = err
				cancel(sinkErr)
			} else {
				stats.StreamRowsEmitted += int64(len(results) - n)
			}
		}
	}
	for b := range emitCh {
		pending[b.seq] = b
		for {
			nb, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			handle(nb)
		}
	}
	if len(pending) > 0 {
		seqs := make([]int, 0, len(pending))
		for s := range pending {
			seqs = append(seqs, s)
		}
		sort.Ints(seqs)
		for _, s := range seqs {
			handle(pending[s])
		}
	}

	for _, ws := range workerStats {
		stats.Add(ws)
	}
	stats.PipelineFilterNS += filterNS.Load()
	stats.PipelineRefineNS += refineNS.Load()
	maxInt64(&queueDepth, stats.PipelineQueueDepth)
	stats.PipelineQueueDepth = queueDepth.Load()

	if sinkErr != nil {
		return results, stats, &PartialError{Op: op, Done: processed, Total: len(candidates), Err: sinkErr}
	}
	if ctx.Err() != nil {
		return results, stats, &PartialError{Op: op, Done: processed, Total: len(candidates), Err: ctxCause(ctx)}
	}
	return results, stats, nil
}

// safeFilter runs one filter verdict with panic isolation, mirroring
// safeTest.
func safeFilter(t *core.Tester, pr Pair, filter func(*core.Tester, Pair) core.Verdict) (v core.Verdict, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			v, panicked = core.VerdictMiss, true
		}
	}()
	return filter(t, pr), false
}

// softwareRetryTester degrades a worker's configuration to the pure
// software path with fault injection disarmed, for post-panic retries.
func softwareRetryTester(t *core.Tester) *core.Tester {
	cfg := t.Config()
	cfg.DisableHardware = true
	cfg.Faults = nil
	return core.NewTester(cfg)
}
