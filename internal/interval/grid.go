// Package interval implements the v2 raster approximation: per-object
// sorted cell-ID interval lists over a shared Hilbert-ordered grid, with
// each interval labeled full (the cells provably lie inside the object's
// region) or partial (the boundary may pass through). Two objects on the
// same grid compare by a linear interval-list merge that returns a
// three-valued verdict: a full/full cell overlap is a TRUE HIT (the
// regions demonstrably share that cell — report the pair intersecting
// with no refinement at all), disjoint lists are a REJECT (the lists
// conservatively cover both regions, so the regions are disjoint), and
// anything else is inconclusive and refines exactly as before. This is
// the upgrade "Raster Interval Object Approximations for Spatial
// Intersection Joins" and "Adaptive Geospatial Joins for Modern
// Hardware" (PAPERS.md) make over reject-only raster signatures.
package interval

import (
	"math"

	"repro/internal/geom"
)

const (
	// MinOrder and MaxOrder bound the grid order (the grid is 2^order
	// cells per side). MaxOrder 15 keeps every cell index below 2^30 so
	// the packed span encoding's 31-bit fields never overflow; readers
	// reject anything outside the range.
	MinOrder = 2
	MaxOrder = 15

	// maxAutoOrder caps the order ChooseOrder picks: 4096² cells over the
	// canonical square is already far below the object extents the
	// heuristic targets at evaluation scales.
	maxAutoOrder = 12

	// targetCellsPerExtent is how many cells the characteristic object
	// extent should span: coarse enough that interval lists stay modest,
	// fine enough that two overlapping interiors usually share at least
	// one full/full cell (the true-hit source). Overlaps shallower than
	// about a cell stay inconclusive, so this directly sets the true-hit
	// rate on mostly-intersecting workloads.
	targetCellsPerExtent = 24

	// MaxWindowCells caps one object's rasterization window (in cells).
	// An object spanning more gets no approximation (nil spans — the pair
	// test is then inconclusive and the v1 path decides), bounding both
	// build time and span memory against monster geometries.
	MaxWindowCells = 1 << 16

	// cellEps is the outward slack, in cell units, applied when mapping
	// data-space coordinates onto the grid, mirroring the raster
	// signature walk: it absorbs ulp-level disagreement in the division
	// so boundary cell attribution stays strictly conservative.
	cellEps = 1e-6
)

// Grid is a shared Hilbert rasterization frame: a square of side Size
// anchored at (MinX, MinY), divided into 2^Order × 2^Order cells. Two
// interval lists are comparable iff they were rasterized on the same
// Grid (struct equality), which is why grids are derived canonically
// (FitSquare) rather than per object: layers over the same data domain
// land on the same square and their persisted columns line up.
type Grid struct {
	MinX, MinY float64
	Size       float64
	Order      int
}

// Valid reports whether g describes a usable grid.
func (g Grid) Valid() bool {
	return g.Order >= MinOrder && g.Order <= MaxOrder &&
		g.Size > 0 && !math.IsInf(g.Size, 0) &&
		!math.IsNaN(g.MinX) && !math.IsInf(g.MinX, 0) &&
		!math.IsNaN(g.MinY) && !math.IsInf(g.MinY, 0) &&
		!math.IsNaN(g.Size)
}

// Cells returns the grid's side length in cells.
func (g Grid) Cells() int { return 1 << g.Order }

// CellSize returns one cell's side length in data units.
func (g Grid) CellSize() float64 { return g.Size / float64(int(1)<<g.Order) }

// FitSquare returns the canonical power-of-two square containing r: the
// smallest side 2^k whose half-side-aligned lattice (anchors at
// multiples of 2^(k-1)) has a square covering r. Anchoring on the
// half-side lattice matters: a rect straddling 0 is never covered by
// any origin-aligned square (0 is an anchor at every scale), while with
// side ≥ 2× the rect's extent a half-lattice anchor always covers. The
// construction is what makes grids shareable without coordination — any
// two layers spanning roughly the same extent snap to the identical
// square, so their independently persisted interval columns are
// directly comparable.
func FitSquare(r geom.Rect) (minX, minY, size float64, ok bool) {
	if r.IsEmpty() || !geom.Pt(r.MinX, r.MinY).IsFinite() || !geom.Pt(r.MaxX, r.MaxY).IsFinite() {
		return 0, 0, 0, false
	}
	w := math.Max(r.Width(), r.Height())
	if w <= 0 {
		w = 1
	}
	size = math.Exp2(math.Ceil(math.Log2(w)))
	// At the tight size a rect can straddle an anchor boundary; once
	// size ≥ 2w the half-lattice anchor provably covers, so at most a
	// couple of doublings ever run.
	for range 64 {
		if math.IsInf(size, 0) {
			return 0, 0, 0, false
		}
		half := size / 2
		minX = math.Floor(r.MinX/half) * half
		minY = math.Floor(r.MinY/half) * half
		if r.MaxX <= minX+size && r.MaxY <= minY+size {
			return minX, minY, size, true
		}
		size *= 2
	}
	return 0, 0, 0, false
}

// ChooseOrder picks the grid order for a canonical square of the given
// side so that a characteristic object extent spans about
// targetCellsPerExtent cells, clamped to [MinOrder, maxAutoOrder]. The
// choice is deterministic in (size, extent), so the snapshot writer and
// a query-time lazy build agree without coordination.
func ChooseOrder(size, extent float64) int {
	if size <= 0 || math.IsNaN(size) || math.IsInf(size, 0) {
		return MinOrder
	}
	if extent <= 0 || math.IsNaN(extent) || math.IsInf(extent, 0) {
		extent = size
	}
	cells := size / extent * targetCellsPerExtent
	order := int(math.Ceil(math.Log2(cells)))
	if order < MinOrder {
		return MinOrder
	}
	if order > maxAutoOrder {
		return maxAutoOrder
	}
	return order
}

// ObjectStats summarizes a set of objects for grid derivation: the union
// of their MBRs and the mean of their larger MBR extents (the
// characteristic object size ChooseOrder targets).
func ObjectStats(objs []*geom.Polygon) (bounds geom.Rect, extent float64) {
	var sum float64
	n := 0
	first := true
	for _, p := range objs {
		if p == nil || p.NumVerts() == 0 {
			continue
		}
		b := p.Bounds()
		if first {
			bounds = b
			first = false
		} else {
			bounds = bounds.Union(b)
		}
		sum += math.Max(b.Width(), b.Height())
		n++
	}
	if first {
		return geom.Rect{MinX: 1, MaxX: 0}, 0 // empty
	}
	return bounds, sum / float64(n)
}

// GridFor derives the canonical grid for one object set: FitSquare over
// its bounds at ChooseOrder for its extent (or the forced order when
// order > 0). ok is false for empty or non-finite inputs.
func GridFor(objs []*geom.Polygon, order int) (Grid, bool) {
	bounds, extent := ObjectStats(objs)
	mnx, mny, size, ok := FitSquare(bounds)
	if !ok {
		return Grid{}, false
	}
	if order <= 0 {
		order = ChooseOrder(size, extent)
	}
	if order < MinOrder || order > MaxOrder {
		return Grid{}, false
	}
	return Grid{MinX: mnx, MinY: mny, Size: size, Order: order}, true
}
