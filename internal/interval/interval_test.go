package interval_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/interval"
)

func TestHilbertBijection(t *testing.T) {
	for _, order := range []int{2, 3, 5} {
		n := uint32(1) << order
		seen := make([]bool, n*n)
		for y := uint32(0); y < n; y++ {
			for x := uint32(0); x < n; x++ {
				d := interval.D(order, x, y)
				if d >= n*n {
					t.Fatalf("order %d: D(%d,%d) = %d out of range", order, x, y, d)
				}
				if seen[d] {
					t.Fatalf("order %d: index %d hit twice", order, d)
				}
				seen[d] = true
				if rx, ry := interval.XY(order, d); rx != x || ry != y {
					t.Fatalf("order %d: XY(D(%d,%d)) = (%d,%d)", order, x, y, rx, ry)
				}
			}
		}
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// Consecutive Hilbert indexes are 4-adjacent cells — the property
	// that makes compact objects collapse into few interval runs.
	const order = 4
	n := uint32(1) << order
	for d := uint32(0); d+1 < n*n; d++ {
		x0, y0 := interval.XY(order, d)
		x1, y1 := interval.XY(order, d+1)
		dx := math.Abs(float64(x0) - float64(x1))
		dy := math.Abs(float64(y0) - float64(y1))
		if dx+dy != 1 {
			t.Fatalf("indexes %d and %d map to non-adjacent cells (%d,%d) (%d,%d)", d, d+1, x0, y0, x1, y1)
		}
	}
}

func TestFitSquare(t *testing.T) {
	cases := []geom.Rect{
		geom.R(0, 0, 560, 360),
		geom.R(3.5, 1.25, 470, 358),
		geom.R(140, 0, 280, 180),
		geom.R(280, 180, 420, 360),
		geom.R(-17, -250, 9, 4),
		geom.R(5, 5, 5.25, 5.125),
	}
	for _, r := range cases {
		mnx, mny, size, ok := interval.FitSquare(r)
		if !ok {
			t.Fatalf("FitSquare(%v) failed", r)
		}
		if _, f := math.Frexp(size); f != math.Ilogb(size)+1 || size != math.Exp2(math.Floor(math.Log2(size))) {
			t.Errorf("FitSquare(%v): side %v not a power of two", r, size)
		}
		if math.Mod(mnx, size/2) != 0 || math.Mod(mny, size/2) != 0 {
			t.Errorf("FitSquare(%v): anchor (%v,%v) not on the half-side lattice of %v", r, mnx, mny, size)
		}
		if r.MinX < mnx || r.MinY < mny || r.MaxX > mnx+size || r.MaxY > mny+size {
			t.Errorf("FitSquare(%v): square (%v,%v)+%v does not contain it", r, mnx, mny, size)
		}
	}
	// Two layers over the same domain must land on the same square.
	a, _, sa, _ := interval.FitSquare(geom.R(2, 3, 551, 359))
	b, _, sb, _ := interval.FitSquare(geom.R(0.5, 1, 559, 340))
	if a != b || sa != sb {
		t.Fatalf("same-domain layers got different squares: (%v,%v) vs (%v,%v)", a, sa, b, sb)
	}
	if _, _, _, ok := interval.FitSquare(geom.Rect{MinX: 1, MaxX: 0}); ok {
		t.Fatal("FitSquare accepted an empty rect")
	}
	if _, _, _, ok := interval.FitSquare(geom.R(0, 0, math.Inf(1), 1)); ok {
		t.Fatal("FitSquare accepted a non-finite rect")
	}
}

// loadGrid builds a shared grid over two datasets the way the query
// layer does: canonical square of the union, finest preferred order.
func loadGrid(t *testing.T, da, db *data.Dataset) interval.Grid {
	t.Helper()
	ba, ea := interval.ObjectStats(da.Objects)
	bb, eb := interval.ObjectStats(db.Objects)
	mnx, mny, size, ok := interval.FitSquare(ba.Union(bb))
	if !ok {
		t.Fatal("FitSquare failed on dataset bounds")
	}
	order := max(interval.ChooseOrder(size, ea), interval.ChooseOrder(size, eb))
	return interval.Grid{MinX: mnx, MinY: mny, Size: size, Order: order}
}

func TestRasterizeSoundness(t *testing.T) {
	d := data.MustLoad("LANDC", 0.005)
	g, ok := interval.GridFor(d.Objects, 0)
	if !ok {
		t.Fatal("GridFor failed")
	}
	cs := g.CellSize()
	cellOf := func(pt geom.Point) (uint32, bool) {
		x := int(math.Floor((pt.X - g.MinX) / cs))
		y := int(math.Floor((pt.Y - g.MinY) / cs))
		if x < 0 || y < 0 || x >= g.Cells() || y >= g.Cells() {
			return 0, false
		}
		return interval.D(g.Order, uint32(x), uint32(y)), true
	}
	contains := func(s interval.Spans, id uint32) (bool, bool) {
		for i := range s {
			lo, hi, full := s.At(i)
			if id >= lo && id <= hi {
				return true, full
			}
		}
		return false, false
	}
	fullSeen := 0
	for _, p := range d.Objects {
		s := interval.Rasterize(p, g)
		if s == nil {
			continue
		}
		if err := s.Validate(g.Order); err != nil {
			t.Fatalf("Rasterize produced invalid spans: %v", err)
		}
		// Coverage: every boundary vertex and edge midpoint must land in
		// a covered cell (points on cell borders may legitimately sit in
		// the neighbor; skip those to keep the check exact).
		for i := 0; i < p.NumEdges(); i++ {
			e := p.Edge(i)
			for _, pt := range []geom.Point{e.A, e.Midpoint()} {
				fx := (pt.X - g.MinX) / cs
				fy := (pt.Y - g.MinY) / cs
				if math.Abs(fx-math.Round(fx)) < 1e-9 || math.Abs(fy-math.Round(fy)) < 1e-9 {
					continue
				}
				id, ok := cellOf(pt)
				if !ok {
					t.Fatalf("boundary point %v off grid", pt)
				}
				if in, _ := contains(s, id); !in {
					t.Fatalf("boundary point %v (cell %d) not covered", pt, id)
				}
			}
		}
		// Full labels are exact: sampled points of every full cell lie
		// inside the polygon's closed region.
		for i := range s {
			lo, hi, full := s.At(i)
			if !full {
				continue
			}
			for id := lo; id <= hi; id++ {
				x, y := interval.XY(g.Order, id)
				for _, frac := range [][2]float64{{0.5, 0.5}, {0.05, 0.05}, {0.95, 0.05}, {0.05, 0.95}, {0.95, 0.95}} {
					pt := geom.Pt(g.MinX+(float64(x)+frac[0])*cs, g.MinY+(float64(y)+frac[1])*cs)
					if !p.ContainsPoint(pt) {
						t.Fatalf("full cell %d point %v outside polygon", id, pt)
					}
				}
				fullSeen++
			}
		}
	}
	if fullSeen == 0 {
		t.Fatal("no full cells at all — interior labeling is not firing")
	}
}

func TestCompareAgainstExact(t *testing.T) {
	da := data.MustLoad("LANDC", 0.01)
	db := data.MustLoad("LANDO", 0.01)
	g := loadGrid(t, da, db)
	sa := make([]interval.Spans, len(da.Objects))
	for i, p := range da.Objects {
		sa[i] = interval.Rasterize(p, g)
	}
	sb := make([]interval.Spans, len(db.Objects))
	for i, p := range db.Objects {
		sb[i] = interval.Rasterize(p, g)
	}
	exact := core.NewTester(core.Config{DisableHardware: true})
	var hits, rejects, inconclusive, intersecting int
	for i, pa := range da.Objects {
		for j, pb := range db.Objects {
			if !pa.Bounds().Intersects(pb.Bounds()) {
				continue
			}
			truth := exact.Intersects(pa, pb)
			if truth {
				intersecting++
			}
			switch interval.Compare(sa[i], sb[j]) {
			case interval.TrueHit:
				hits++
				if !truth {
					t.Fatalf("false true-hit: LANDC %d vs LANDO %d do not intersect", i, j)
				}
			case interval.Reject:
				rejects++
				if truth {
					t.Fatalf("false reject: LANDC %d vs LANDO %d intersect", i, j)
				}
			default:
				inconclusive++
			}
		}
	}
	t.Logf("pairs: %d intersecting, %d true hits, %d rejects, %d inconclusive",
		intersecting, hits, rejects, inconclusive)
	if hits == 0 || rejects == 0 {
		t.Fatalf("filter is inert: %d hits, %d rejects", hits, rejects)
	}
	if hits*2 < intersecting {
		t.Errorf("true hits %d below half the %d intersecting pairs on the dominant workload", hits, intersecting)
	}
}

func TestCompareEdgeCases(t *testing.T) {
	mk := func(runs ...[3]uint32) interval.Spans {
		// Build via Rasterize-free path: pack through Validate round trip
		// using the exported test helper shape.
		s := make(interval.Spans, 0, len(runs))
		for _, r := range runs {
			v := uint64(r[0])<<32 | uint64(r[1])<<1
			if r[2] != 0 {
				v |= 1
			}
			s = append(s, v)
		}
		return s
	}
	if v := interval.Compare(nil, mk([3]uint32{0, 5, 1})); v != interval.Inconclusive {
		t.Fatalf("nil side: %v", v)
	}
	if v := interval.Compare(mk([3]uint32{0, 5, 0}), mk([3]uint32{6, 9, 1})); v != interval.Reject {
		t.Fatalf("disjoint: %v", v)
	}
	if v := interval.Compare(mk([3]uint32{0, 5, 0}), mk([3]uint32{5, 9, 0})); v != interval.Inconclusive {
		t.Fatalf("partial overlap: %v", v)
	}
	if v := interval.Compare(mk([3]uint32{0, 5, 1}), mk([3]uint32{5, 9, 1})); v != interval.TrueHit {
		t.Fatalf("full/full overlap: %v", v)
	}
	if v := interval.Compare(mk([3]uint32{0, 5, 1}), mk([3]uint32{5, 9, 0})); v != interval.Inconclusive {
		t.Fatalf("full/partial overlap: %v", v)
	}
	// Mixed: partial overlap first, then a full/full match later.
	a := mk([3]uint32{0, 3, 0}, [3]uint32{10, 12, 1})
	b := mk([3]uint32{2, 4, 0}, [3]uint32{11, 11, 1})
	if v := interval.Compare(a, b); v != interval.TrueHit {
		t.Fatalf("late full/full: %v", v)
	}
}

func TestValidate(t *testing.T) {
	pack := func(lo, hi uint32, full bool) uint64 {
		v := uint64(lo)<<32 | uint64(hi)<<1
		if full {
			v |= 1
		}
		return v
	}
	good := interval.Spans{pack(1, 4, false), pack(6, 6, true), pack(7, 9, false)}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid spans rejected: %v", err)
	}
	bad := []interval.Spans{
		{pack(5, 2, false)},               // inverted
		{pack(0, 256, false)},             // beyond 4^4 cells
		{pack(4, 8, false), pack(2, 3, false)}, // unsorted
		{pack(0, 5, false), pack(5, 9, true)},  // overlapping
	}
	for i, s := range bad {
		if err := s.Validate(4); err == nil {
			t.Fatalf("bad spans %d accepted", i)
		}
	}
}

func TestColumnRoundTrip(t *testing.T) {
	d := data.MustLoad("LANDO", 0.005)
	g, ok := interval.GridFor(d.Objects, 0)
	if !ok {
		t.Fatal("GridFor failed")
	}
	col := interval.Build(d.Objects, g)
	if col.Len() != len(d.Objects) {
		t.Fatalf("column has %d objects, want %d", col.Len(), len(d.Objects))
	}
	rt, err := interval.FromParts(g, col.Counts(), col.Data())
	if err != nil {
		t.Fatalf("FromParts rejected a built column: %v", err)
	}
	for i := range d.Objects {
		a, b := col.Spans(i), rt.Spans(i)
		if len(a) != len(b) {
			t.Fatalf("object %d: %d vs %d spans after round trip", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("object %d span %d differs", i, j)
			}
		}
	}
	// Corrupt counts must fail closed.
	counts := col.Counts()
	if len(counts) > 0 {
		counts[0]++
		if _, err := interval.FromParts(g, counts, col.Data()); err == nil {
			t.Fatal("FromParts accepted inconsistent counts")
		}
	}
}
