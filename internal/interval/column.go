package interval

import "fmt"

import "repro/internal/geom"

// Column is a whole layer's interval approximation on one Grid: each
// object's Spans concatenated into a flat word array with prefix
// offsets, the shape the snapshot format persists and the mmap reader
// aliases zero-copy. Immutable after construction; safe for concurrent
// readers.
type Column struct {
	Grid Grid
	off  []uint32
	data []uint64
}

// Len returns the number of objects in the column.
func (c *Column) Len() int {
	if c == nil {
		return 0
	}
	return len(c.off) - 1
}

// Spans returns object id's span list (a view, possibly empty for
// objects too large to approximate). Nil receiver returns nil.
func (c *Column) Spans(id int) Spans {
	if c == nil {
		return nil
	}
	return Spans(c.data[c.off[id]:c.off[id+1]:c.off[id+1]])
}

// Counts returns the per-object span counts (for the snapshot writer).
func (c *Column) Counts() []uint32 {
	counts := make([]uint32, c.Len())
	for i := range counts {
		counts[i] = c.off[i+1] - c.off[i]
	}
	return counts
}

// Data returns the concatenated packed span words (for the writer). The
// slice must be treated as read-only.
func (c *Column) Data() []uint64 { return c.data }

// Build rasterizes every object onto g. Objects that cannot be
// approximated (see Rasterize) get empty span lists and stay
// inconclusive at pair-test time.
func Build(objs []*geom.Polygon, g Grid) *Column {
	off := make([]uint32, len(objs)+1)
	var data []uint64
	for i, p := range objs {
		data = append(data, Rasterize(p, g)...)
		off[i+1] = uint32(len(data))
	}
	return &Column{Grid: g, off: off, data: data}
}

// FromParts assembles a column from persisted pieces — the grid, one
// span count per object, and the concatenated packed words — validating
// the counts against the data and every span list's invariants. Errors
// are plain (the snapshot reader wraps them into *FormatError); no
// allocation is sized from unvalidated input beyond the counts slice the
// caller already bounded.
func FromParts(g Grid, counts []uint32, data []uint64) (*Column, error) {
	if !g.Valid() {
		return nil, fmt.Errorf("invalid grid (order %d, size %v)", g.Order, g.Size)
	}
	off := make([]uint32, len(counts)+1)
	var total uint64
	for i, n := range counts {
		total += uint64(n)
		if total > uint64(len(data)) {
			return nil, fmt.Errorf("span counts overflow the data at object %d (%d words available)", i, len(data))
		}
		off[i+1] = uint32(total)
	}
	if total != uint64(len(data)) {
		return nil, fmt.Errorf("span counts sum to %d words, data has %d", total, len(data))
	}
	c := &Column{Grid: g, off: off, data: data}
	for i := range counts {
		if err := c.Spans(i).Validate(g.Order); err != nil {
			return nil, fmt.Errorf("object %d: %w", i, err)
		}
	}
	return c, nil
}
