package interval

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/raster"
)

// Verdict is the three-valued outcome of an interval-list pair test.
type Verdict int8

const (
	// Inconclusive makes no claim: the pair refines exactly as without
	// intervals. Also returned whenever either side has no spans.
	Inconclusive Verdict = iota
	// TrueHit proves the regions intersect: some cell is covered in full
	// by both objects, so the pair is reported without any refinement.
	TrueHit
	// Reject proves the regions are disjoint: the span lists — each a
	// conservative cover of its object's whole region, interior included
	// — share no cell.
	Reject
)

func (v Verdict) String() string {
	switch v {
	case TrueHit:
		return "true-hit"
	case Reject:
		return "reject"
	default:
		return "inconclusive"
	}
}

// Spans is one object's approximation: sorted, non-overlapping inclusive
// runs [lo, hi] of Hilbert cell indexes, each labeled full or partial.
// Packed one uint64 per run — lo in bits 32..63, hi in bits 1..31, the
// full flag in bit 0 — so a persisted column is a flat little-endian
// uint64 array the snapshot reader can alias straight out of the mmap.
//
// Invariants (Validate enforces them on untrusted input): lo ≤ hi, hi
// below the grid's cell count, and each run strictly after the previous
// one. A full run means every cell in it lies entirely inside the
// object's closed region (an exact claim — this is what licenses the
// true hit); a partial run means the boundary may pass through. The
// union of all runs covers every grid cell the closed region touches
// (conservative — this is what licenses the reject).
type Spans []uint64

func pack(lo, hi uint32, full bool) uint64 {
	v := uint64(lo)<<32 | uint64(hi)<<1
	if full {
		v |= 1
	}
	return v
}

func unpack(v uint64) (lo, hi uint32, full bool) {
	return uint32(v >> 32), uint32(v>>1) & 0x7fffffff, v&1 != 0
}

// At returns run i's inclusive bounds and label (for tests and tools).
func (s Spans) At(i int) (lo, hi uint32, full bool) { return unpack(s[i]) }

// Cells returns the total number of cells covered (for stats and tests).
func (s Spans) Cells() int {
	n := 0
	for _, v := range s {
		lo, hi, _ := unpack(v)
		n += int(hi-lo) + 1
	}
	return n
}

// Validate checks the Spans invariants against a grid order, returning a
// plain error describing the first violation. The snapshot reader runs
// it on every persisted list so corrupt interval sections fail closed at
// open time, never mid-query.
func (s Spans) Validate(order int) error {
	if order < MinOrder || order > MaxOrder {
		return fmt.Errorf("grid order %d out of [%d, %d]", order, MinOrder, MaxOrder)
	}
	limit := uint32(1) << (2 * uint(order))
	var prev uint32
	for i, v := range s {
		lo, hi, _ := unpack(v)
		if lo > hi {
			return fmt.Errorf("run %d inverted: lo %d > hi %d", i, lo, hi)
		}
		if hi >= limit {
			return fmt.Errorf("run %d cell %d beyond the %d-cell grid", i, hi, limit)
		}
		if i > 0 && lo <= prev {
			return fmt.Errorf("run %d unsorted or overlapping: lo %d after hi %d", i, lo, prev)
		}
		prev = hi
	}
	return nil
}

// Compare merge-scans two span lists from the same grid and returns the
// three-valued verdict. Cost is linear in the shorter list's runs; no
// allocation. Lists from different grids must not be compared — the
// layer plumbing guarantees both sides share one Grid.
func Compare(a, b Spans) Verdict {
	if len(a) == 0 || len(b) == 0 {
		return Inconclusive
	}
	overlap := false
	i, j := 0, 0
	alo, ahi, af := unpack(a[0])
	blo, bhi, bf := unpack(b[0])
	for {
		if ahi < blo {
			i++
			if i == len(a) {
				break
			}
			alo, ahi, af = unpack(a[i])
			continue
		}
		if bhi < alo {
			j++
			if j == len(b) {
				break
			}
			blo, bhi, bf = unpack(b[j])
			continue
		}
		// Runs overlap: at least one cell is covered by both objects.
		if af && bf {
			return TrueHit
		}
		overlap = true
		if ahi < bhi {
			i++
			if i == len(a) {
				break
			}
			alo, ahi, af = unpack(a[i])
		} else {
			j++
			if j == len(b) {
				break
			}
			blo, bhi, bf = unpack(b[j])
		}
	}
	if overlap {
		return Inconclusive
	}
	return Reject
}

// Rasterize computes p's span list on g: the conservative boundary cell
// walk plus exact interior labeling (raster.CellCover), mapped through
// the Hilbert ordering and run-length packed. Returns nil — no claim,
// pair tests fall back to the v1 path — when the grid is unusable, the
// object misses the grid, or the object's cell window exceeds
// MaxWindowCells.
func Rasterize(p *geom.Polygon, g Grid) Spans {
	if !g.Valid() || p == nil || p.NumVerts() < 3 {
		return nil
	}
	cs := g.CellSize()
	b := p.Bounds()
	n := g.Cells()
	clamp := func(v float64) int {
		i := int(math.Floor(v))
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	// Outward-rounded cell window of the MBR, clamped to the grid.
	x0 := clamp((b.MinX-g.MinX)/cs - cellEps)
	x1 := clamp((b.MaxX-g.MinX)/cs + cellEps)
	y0 := clamp((b.MinY-g.MinY)/cs - cellEps)
	y1 := clamp((b.MaxY-g.MinY)/cs + cellEps)
	if b.MaxX < g.MinX || b.MaxY < g.MinY || b.MinX > g.MinX+g.Size || b.MinY > g.MinY+g.Size {
		return nil // off-grid object: no sound claim possible
	}
	if (x1-x0+1)*(y1-y0+1) > MaxWindowCells {
		return nil
	}
	// Collect labeled cells as hilbert<<1|full so one sort orders them.
	cells := make([]uint64, 0, 64)
	raster.CellCover(p, g.MinX, g.MinY, cs, x0, y0, x1, y1, func(x, y int, full bool) {
		v := uint64(D(g.Order, uint32(x), uint32(y))) << 1
		if full {
			v |= 1
		}
		cells = append(cells, v)
	})
	if len(cells) == 0 {
		return nil
	}
	slices.Sort(cells)
	spans := make(Spans, 0, 16)
	lo := uint32(cells[0] >> 1)
	hi := lo
	full := cells[0]&1 != 0
	for _, c := range cells[1:] {
		id := uint32(c >> 1)
		f := c&1 != 0
		if id == hi+1 && f == full {
			hi = id
			continue
		}
		spans = append(spans, pack(lo, hi, full))
		lo, hi, full = id, id, f
	}
	return append(spans, pack(lo, hi, full))
}
