package interval

// Hilbert-curve cell ordering. Cells of the 2^order × 2^order grid are
// numbered along the Hilbert curve so that consecutive indexes are
// spatially adjacent cells: a compact object's rasterization collapses
// into a handful of consecutive index runs, which is what makes the
// interval-list encoding small and the pair test a linear merge
// ("Raster Interval Object Approximations", PAPERS.md).

// D returns the Hilbert-curve index of cell (x, y) on the 2^order grid
// (x, y < 2^order). Indexes fit 2·order bits; with order capped at
// MaxOrder they fit comfortably in 31 bits, which the packed span
// encoding relies on.
func D(order int, x, y uint32) uint32 {
	var d uint32
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s != 0 {
			rx = 1
		}
		if y&s != 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// XY is the inverse of D: the cell coordinates of Hilbert index d on the
// 2^order grid.
func XY(order int, d uint32) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := (t / 2) & 1
		ry := (t ^ rx) & 1
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return
}
