// Differential and fault tests for the scatter-gather coordinator: a
// real 4-shard fleet of spatiald servers over partitioned tile
// snapshots, queried through a real Coordinator over TCP, checked
// set-equal against the single-node answer — including objects spanning
// tile borders — and then degraded with killed shards and injected
// dial/read faults to pin the typed-partial contract: never a hang,
// never a wrong (superset or duplicated) answer.
package coord_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/coord"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
)

const (
	fleetMargin = 2.0
	fleetScale  = 0.01
)

// fleet is a booted shard deployment plus the single-node ground truth.
type fleet struct {
	m      *partition.Manifest
	addrs  []string
	shards []*server.Server
	a, b   *query.Layer // unpartitioned layers: ids == global ids
}

func bootFleet(t *testing.T, tiles int) *fleet {
	t.Helper()
	dir := t.TempDir()
	da := data.MustLoad("LANDC", fleetScale)
	db := data.MustLoad("LANDO", fleetScale)
	if _, err := partition.Write(dir, "a", da, partition.Options{Tiles: tiles, Margin: fleetMargin}); err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Write(dir, "b", db, partition.Options{Tiles: tiles, Margin: fleetMargin}); err != nil {
		t.Fatal(err)
	}
	m, err := partition.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{m: m, a: query.NewLayer(da), b: query.NewLayer(db)}
	for _, tile := range m.Tiles {
		srv := server.New(server.Config{Addr: "127.0.0.1:0", DrainGrace: 50 * time.Millisecond})
		for _, layer := range []string{"a", "b"} {
			s, err := store.Open(filepath.Join(dir, tile.Dir, partition.SnapshotName(layer)), store.OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			l, err := query.NewLayerFromSnapshot(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := srv.Catalog().Set(layer, l); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		f.shards = append(f.shards, srv)
		f.addrs = append(f.addrs, srv.Addr().String())
	}
	t.Cleanup(func() {
		for _, srv := range f.shards {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = srv.Shutdown(ctx)
			cancel()
		}
	})
	return f
}

func (f *fleet) coordinator(t *testing.T, cfg coord.Config) *coord.Coordinator {
	t.Helper()
	cfg.Manifest = f.m
	cfg.Addrs = f.addrs
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// singleJoin computes the single-node ground truth pair set.
func (f *fleet) singleJoin(t *testing.T) map[[2]uint64]bool {
	t.Helper()
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoinView(context.Background(), f.a.View(), f.b.View(), tester, query.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pairSet(pairs)
}

func pairSet(pairs []query.Pair) map[[2]uint64]bool {
	set := map[[2]uint64]bool{}
	for _, p := range pairs {
		set[[2]uint64{uint64(p.A), uint64(p.B)}] = true
	}
	return set
}

// qctx bounds every coordinator call so a regression hangs the test, not
// the suite.
func qctx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestCoordinatorJoinMatchesSingleNode is the acceptance differential: a
// partitioned intersection join over 4 shards must be set-equal to the
// single-node join, border-spanning objects included.
func TestCoordinatorJoinMatchesSingleNode(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	res, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if res.ShardsOK != 4 || res.ShardsAsked != 4 {
		t.Fatalf("shards %d/%d, want 4/4", res.ShardsOK, res.ShardsAsked)
	}
	want := f.singleJoin(t)
	if len(want) == 0 {
		t.Fatal("single-node join found no pairs; differential is vacuous")
	}
	got := map[[2]uint64]bool{}
	for _, p := range res.Pairs {
		if got[p] {
			t.Fatalf("pair %v returned twice: reference-point dedup failed", p)
		}
		got[p] = true
	}
	if len(got) != len(want) {
		t.Fatalf("coordinator join has %d pairs, single-node has %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v missing from coordinator join", p)
		}
	}
	if res.Stats.Results != len(res.Pairs) {
		t.Fatalf("merged stats Results=%d, want %d", res.Stats.Results, len(res.Pairs))
	}
	if res.Stats.Tests == 0 {
		t.Fatal("merged stats lost the shards' refinement counters")
	}
	// Tile snapshots persist the v2 interval column and shard engines run
	// with intervals on by default, so the merged record must carry the
	// interval verdict counters across the wire fold.
	if res.Stats.IntervalChecks == 0 || res.Stats.IntervalTrueHits == 0 {
		t.Fatalf("merged stats lost the shards' interval counters: %+v", res.Stats)
	}
}

// TestCoordinatorSelectRoutesAndMatches pins MBR routing: a small query
// polygon must not be fanned to every tile, and the deduplicated ids
// must equal the single-node selection.
func TestCoordinatorSelectRoutesAndMatches(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	wkt := "POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))"
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Select(qctx(t), "a", wkt, q.Bounds())
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	routed := len(f.m.OverlappingTiles(q.Bounds()))
	if res.ShardsAsked != routed {
		t.Fatalf("select asked %d shards, routing says %d", res.ShardsAsked, routed)
	}
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	ids, _, err := query.IntersectionSelectView(context.Background(), f.a.View(), q, tester,
		query.SelectionOptions{InteriorLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("single-node select found nothing; differential is vacuous")
	}
	want := map[uint64]bool{}
	for _, id := range ids {
		want[uint64(id)] = true
	}
	if len(res.IDs) != len(want) {
		t.Fatalf("coordinator select has %d ids, single-node has %d", len(res.IDs), len(want))
	}
	for _, id := range res.IDs {
		if !want[id] {
			t.Fatalf("id %d not in single-node selection", id)
		}
	}
}

// TestCoordinatorWithinMatchesSingleNode differentials the within-
// distance join at a distance inside the replication margin, and pins
// the typed refusal beyond it.
func TestCoordinatorWithinMatchesSingleNode(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	d := fleetMargin // the largest supported distance
	res, err := c.Within(qctx(t), "a", "b", d, "")
	if err != nil {
		t.Fatalf("within: %v", err)
	}
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.WithinDistanceJoinView(context.Background(), f.a.View(), f.b.View(), d, tester,
		query.DistanceFilterOptions{Use0Object: true, Use1Object: true})
	if err != nil {
		t.Fatal(err)
	}
	want := pairSet(pairs)
	if len(want) == 0 {
		t.Fatal("single-node within found no pairs; differential is vacuous")
	}
	got := map[[2]uint64]bool{}
	for _, p := range res.Pairs {
		if got[p] {
			t.Fatalf("pair %v returned twice", p)
		}
		got[p] = true
	}
	if len(got) != len(want) {
		t.Fatalf("coordinator within has %d pairs, single-node has %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v missing from coordinator within", p)
		}
	}

	var me *coord.MarginError
	if _, err := c.Within(qctx(t), "a", "b", fleetMargin*3, ""); !errors.As(err, &me) {
		t.Fatalf("within beyond the margin returned %v, want *coord.MarginError", err)
	}
}

// TestCoordinatorShardDownYieldsTypedPartial kills one shard process and
// pins the degradation contract: the join completes promptly, returns a
// *query.PartialError with the shard arithmetic, and the pairs are a
// strict subset of the single-node answer — never wrong, never a hang.
func TestCoordinatorShardDownYieldsTypedPartial(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{DialTimeout: time.Second})
	down := 2
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.shards[down].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with a dead shard returned %v, want *query.PartialError", err)
	}
	if pe.Done != 3 || pe.Total != 4 {
		t.Fatalf("partial reports %d/%d shards, want 3/4", pe.Done, pe.Total)
	}
	if res.ShardsOK != 3 {
		t.Fatalf("ShardsOK = %d, want 3", res.ShardsOK)
	}
	want := f.singleJoin(t)
	for _, p := range res.Pairs {
		if !want[p] {
			t.Fatalf("partial answer invented pair %v", p)
		}
	}
	if len(res.Pairs) == 0 || len(res.Pairs) >= len(want) {
		t.Fatalf("partial answer has %d pairs of %d; want a strict non-empty subset", len(res.Pairs), len(want))
	}
}

// TestCoordinatorBreakerSkipsDeadShard pins the breaker: after enough
// consecutive failures the dead shard is skipped without dialing, and
// /metrics-visible health reports it open.
func TestCoordinatorBreakerSkipsDeadShard(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{
		DialTimeout:      200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.shards[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Join(qctx(t), "a", "b", ""); err == nil {
			t.Fatal("join with a dead shard must be partial")
		}
	}
	h := c.Health()[1]
	if !h.Open {
		t.Fatalf("shard 1 breaker not open after %d failures: %+v", h.Fails, h)
	}
	// With the breaker open the query must still answer (fast): the dead
	// shard is skipped, the other three merge.
	start := time.Now()
	res, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with an open breaker returned %v, want *query.PartialError", err)
	}
	var se *coord.ShardError
	if !errors.As(err, &se) || !errors.Is(se.Err, coord.ErrBreakerOpen) {
		t.Fatalf("partial cause is %v, want breaker-open shard error", err)
	}
	if res.ShardsOK != 3 {
		t.Fatalf("ShardsOK = %d, want 3", res.ShardsOK)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("open breaker still cost %v; the skip must not dial", d)
	}
}

// TestCoordinatorReadFaultMidResponse severs one shard connection in the
// middle of a response stream (injected at coord.read) and pins that the
// query degrades to a typed partial — and that the very next query heals
// by redialing.
func TestCoordinatorReadFaultMidResponse(t *testing.T) {
	f := bootFleet(t, 4)
	inj := faultinject.New(7)
	// Sequence numbers at coord.read count every response line read across
	// all shards (greetings and timeout-arming included); any single firing
	// severs exactly one shard's connection mid-exchange.
	inj.InjectAt(faultinject.SiteCoordRead, faultinject.KindDisconnect, 10)
	c := f.coordinator(t, coord.Config{Faults: inj})

	res, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with a severed stream returned %v, want *query.PartialError", err)
	}
	if pe.Done != 3 || pe.Total != 4 {
		t.Fatalf("partial reports %d/%d shards, want 3/4", pe.Done, pe.Total)
	}
	want := f.singleJoin(t)
	for _, p := range res.Pairs {
		if !want[p] {
			t.Fatalf("severed-stream answer invented pair %v", p)
		}
	}

	// The injector fires once; the coordinator redials and the next join
	// must be whole again.
	res, err = c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join after recovery: %v", err)
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("recovered join has %d pairs, want %d", len(res.Pairs), len(want))
	}
}

// TestCoordinatorShardDownInjection drives the dedicated coord.shard_down
// site: the marked shard is treated as unreachable for exactly that
// query, without consuming a dial.
func TestCoordinatorShardDownInjection(t *testing.T) {
	f := bootFleet(t, 4)
	inj := faultinject.New(11)
	inj.InjectAt(faultinject.SiteCoordShardDown, faultinject.KindDisconnect, 1)
	c := f.coordinator(t, coord.Config{Faults: inj})

	_, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with injected shard-down returned %v, want *query.PartialError", err)
	}
	if pe.Done != 3 || pe.Total != 4 {
		t.Fatalf("partial reports %d/%d shards, want 3/4", pe.Done, pe.Total)
	}
	if res, err := c.Join(qctx(t), "a", "b", ""); err != nil {
		t.Fatalf("join after one-shot injection: %v", err)
	} else if res.ShardsOK != 4 {
		t.Fatalf("recovered join answered %d/4 shards", res.ShardsOK)
	}
}

// TestCoordinatorEngineEndToEnd drives the full serving stack: a
// coordinator spatiald server with shellcmd routing, queried over its
// own TCP wire protocol, must frame the merged stream exactly like a
// single node would.
func TestCoordinatorEngineEndToEnd(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	front := server.New(server.Config{Addr: "127.0.0.1:0", Coordinator: c, DrainGrace: 50 * time.Millisecond})
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = front.Shutdown(ctx)
	})

	lines, status := wireExec(t, front.Addr().String(), "join a b")
	if status != "ok" {
		t.Fatalf("front join status %q, want ok", status)
	}
	want := f.singleJoin(t)
	npairs := 0
	for _, l := range lines {
		var a, b uint64
		if n, _ := fmt.Sscanf(l, "pair %d %d", &a, &b); n == 2 {
			npairs++
			if !want[[2]uint64{a, b}] {
				t.Fatalf("front emitted pair %d %d not in single-node join", a, b)
			}
		}
	}
	if npairs != len(want) {
		t.Fatalf("front emitted %d pairs, single-node join has %d", npairs, len(want))
	}

	if _, status := wireExec(t, front.Addr().String(), "gen x LANDC 0.01"); status == "ok" {
		t.Fatal("gen must be refused on a coordinator")
	}
}

// wireExec dials a spatiald and runs one command, returning data lines
// and the status line.
func wireExec(t *testing.T, addr, cmd string) ([]string, string) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil { // greeting
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for {
		raw, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l := strings.TrimRight(raw, "\r\n")
		if l == "ok" || strings.HasPrefix(l, "partial:") || strings.HasPrefix(l, "error:") {
			return lines, l
		}
		lines = append(lines, l)
	}
}
