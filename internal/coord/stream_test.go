// Streaming-merge tests: the incremental fan-out must deliver the same
// deduplicated rows a buffered fan-out returns, hold nothing in
// coordinator memory while a RowSink drains, and treat a failing sink
// (the client hung up) as a partial of the session — never as shard
// failures that trip breakers.
package coord_test

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/coord"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/query"
)

// TestCoordinatorJoinStreamMatchesBuffered pins that JoinStream hands
// out exactly the buffered Join's pair set, one pair at a time, with
// zero rows buffered coordinator-side — and that the buffered path's
// high-water mark is, as expected, the whole result set.
func TestCoordinatorJoinStreamMatchesBuffered(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})

	buffered, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("buffered join: %v", err)
	}
	if len(buffered.Pairs) == 0 {
		t.Fatal("buffered join found no pairs; differential is vacuous")
	}
	if buffered.MaxBuffered != len(buffered.Pairs) {
		t.Fatalf("buffered join MaxBuffered=%d, want the full result set %d",
			buffered.MaxBuffered, len(buffered.Pairs))
	}

	got := map[[2]uint64]bool{}
	res, err := c.JoinStream(qctx(t), "a", "b", "", coord.RowSink{
		Pair: func(p [2]uint64) error {
			if got[p] {
				t.Errorf("pair %v streamed twice", p)
			}
			got[p] = true
			return nil
		},
	})
	if err != nil {
		t.Fatalf("streamed join: %v", err)
	}
	if len(got) != len(buffered.Pairs) {
		t.Fatalf("streamed %d pairs, buffered join has %d", len(got), len(buffered.Pairs))
	}
	for _, p := range buffered.Pairs {
		if !got[p] {
			t.Fatalf("pair %v missing from stream", p)
		}
	}
	if res.Stats.Results != len(got) {
		t.Fatalf("streamed Stats.Results=%d, want %d", res.Stats.Results, len(got))
	}
	if len(res.Pairs) != 0 || len(res.IDs) != 0 {
		t.Fatalf("streamed result still buffered %d pairs / %d ids", len(res.Pairs), len(res.IDs))
	}
	if res.MaxBuffered != 0 {
		t.Fatalf("streamed join buffered %d rows coordinator-side, want 0", res.MaxBuffered)
	}
}

// TestCoordinatorSelectStreamDedupsUnbuffered is the selection merge
// regression: ids from overlapping tiles must arrive deduplicated
// through the incremental merge, with no coordinator-side result
// buffer — previously the whole id set was collected, sorted, and
// re-emitted after the last shard answered.
func TestCoordinatorSelectStreamDedupsUnbuffered(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	// A polygon spanning the tile seams, so border replicas answer from
	// several shards and the dedup actually has work to do.
	wkt := "POLYGON((10 10, 300 10, 300 300, 10 300, 10 10))"
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		t.Fatal(err)
	}

	buffered, err := c.Select(qctx(t), "a", wkt, q.Bounds())
	if err != nil {
		t.Fatalf("buffered select: %v", err)
	}
	if len(buffered.IDs) == 0 {
		t.Fatal("buffered select found no ids; regression test is vacuous")
	}
	if buffered.MaxBuffered != len(buffered.IDs) {
		t.Fatalf("buffered select MaxBuffered=%d, want %d", buffered.MaxBuffered, len(buffered.IDs))
	}

	got := map[uint64]bool{}
	res, err := c.SelectStream(qctx(t), "a", wkt, q.Bounds(), coord.RowSink{
		ID: func(id uint64) error {
			if got[id] {
				t.Errorf("id %d streamed twice: dedup lost in the incremental merge", id)
			}
			got[id] = true
			return nil
		},
	})
	if err != nil {
		t.Fatalf("streamed select: %v", err)
	}
	if len(got) != len(buffered.IDs) {
		t.Fatalf("streamed %d ids, buffered select has %d", len(got), len(buffered.IDs))
	}
	for _, id := range buffered.IDs {
		if !got[id] {
			t.Fatalf("id %d missing from stream", id)
		}
	}
	if res.Stats.Results != len(got) {
		t.Fatalf("streamed Stats.Results=%d, want %d", res.Stats.Results, len(got))
	}
	if res.MaxBuffered != 0 || len(res.IDs) != 0 {
		t.Fatalf("streamed select buffered rows coordinator-side (MaxBuffered=%d, IDs=%d), want none",
			res.MaxBuffered, len(res.IDs))
	}
}

// TestCoordinatorFailedShardContributesNoRows severs one shard's stream
// mid-response and pins the buffered merge's failed-shard isolation:
// rows stage per shard until the status line proves the stream
// complete, so the partial result contains nothing from the cut shard
// and the reported-missing tile can be re-queried and unioned in
// without double-counting a single pair.
func TestCoordinatorFailedShardContributesNoRows(t *testing.T) {
	f := bootFleet(t, 4)
	inj := faultinject.New(7)
	// Read sequence 12 lands inside some shard's data stream (greetings
	// and timeout-arming consume the first 8 reads across the 4 shards).
	inj.InjectAt(faultinject.SiteCoordRead, faultinject.KindDisconnect, 12)
	c := f.coordinator(t, coord.Config{Faults: inj})

	res, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with a severed stream returned %v, want *query.PartialError", err)
	}
	var se *coord.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("partial cause is %v, want *coord.ShardError naming the cut tile", err)
	}

	// The cut tile's full answer, straight from the shard (the injector
	// only arms coord.* sites, so the direct dial is untouched).
	g := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	region := f.m.Region(se.Tile)
	lines, status := wireExec(t, f.addrs[se.Tile],
		fmt.Sprintf("shardjoin a b %s %s %s %s", g(region.MinX), g(region.MinY), g(region.MaxX), g(region.MaxY)))
	if status != "ok" {
		t.Fatalf("direct shard %d join answered %q", se.Tile, status)
	}
	failed := map[[2]uint64]bool{}
	for _, l := range lines {
		var a, b uint64
		if n, _ := fmt.Sscanf(l, "pair %d %d", &a, &b); n == 2 {
			failed[[2]uint64{a, b}] = true
		}
	}

	// Disjointness: nothing from the cut shard leaked into the partial
	// buffered result...
	got := map[[2]uint64]bool{}
	for _, p := range res.Pairs {
		if failed[p] {
			t.Fatalf("partial result contains pair %v from failed shard %d", p, se.Tile)
		}
		got[p] = true
	}
	// ...and re-querying just the missing tile reassembles the
	// single-node answer exactly: no pair lost, none double-counted.
	for p := range failed {
		got[p] = true
	}
	want := f.singleJoin(t)
	if len(got) != len(want) {
		t.Fatalf("partial result + failed tile = %d pairs, single-node join has %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("pair %v missing from the reassembled answer", p)
		}
	}
}

// TestCoordinatorSinkFailureIsNotAShardFailure aborts a streamed join
// from the consuming side (the client hung up after a few rows) and
// pins the wind-down contract: a typed partial carrying the sink's
// error, no breaker trips on the innocent shards, and a fully whole
// answer on the very next query.
func TestCoordinatorSinkFailureIsNotAShardFailure(t *testing.T) {
	f := bootFleet(t, 4)
	c := f.coordinator(t, coord.Config{})
	want := f.singleJoin(t)

	boom := fmt.Errorf("client hung up")
	streamed := 0
	_, err := c.JoinStream(qctx(t), "a", "b", "", coord.RowSink{
		Pair: func(p [2]uint64) error {
			if !want[p] {
				t.Errorf("streamed pair %v not in single-node join", p)
			}
			if streamed >= 3 {
				return boom
			}
			streamed++
			return nil
		},
	})
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("aborted stream returned %v, want *query.PartialError", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("partial cause is %v, want the sink's error", err)
	}
	if streamed != 3 {
		t.Fatalf("sink accepted %d rows before aborting, want 3", streamed)
	}

	for _, h := range c.Health() {
		if h.Fails != 0 || h.Open {
			t.Fatalf("shard %d charged for the client's disappearance: fails=%d open=%v",
				h.Tile, h.Fails, h.Open)
		}
	}

	res, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join after aborted stream: %v", err)
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("join after aborted stream has %d pairs, want %d", len(res.Pairs), len(want))
	}
}
