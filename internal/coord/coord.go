// Package coord is the scatter-gather coordinator of a sharded spatiald
// deployment. It speaks the existing line-oriented wire protocol to one
// spatiald process per spatial tile (see internal/partition): selections
// are routed to the tiles whose ownership regions overlap the query MBR,
// joins fan out to every tile with the tile's ownership region on the
// wire, and the per-shard streams are merged — ids deduplicated for
// selections (border objects respond from every overlapping tile), pairs
// concatenated for joins (the shard-side reference-point rule guarantees
// each pair arrives exactly once), and per-shard query.Stats folded with
// Stats.Merge.
//
// # Failure semantics
//
// A shard that cannot be reached, times out, or answers with an error
// does not fail the query: the coordinator merges what the live shards
// returned and wraps the miss in a *query.PartialError (Done = shards
// that answered, Total = shards asked), which the serving layer already
// renders as a "partial:" status. Only a query with zero answering
// shards is a hard error. Each shard has a consecutive-failure breaker:
// after Config.BreakerThreshold failures the shard is skipped without
// dialing for Config.BreakerCooldown, so one dead shard costs its tiles'
// results but never a dial timeout per query. A shard that answers
// "error: server overloaded ... retry after <d>" contributes a typed
// *ShardBusyError carrying the largest hint, which the coordinator's own
// serving layer propagates to clients.
package coord

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
)

// Config configures a Coordinator.
type Config struct {
	// Manifest is the partitioned deployment being coordinated.
	Manifest *partition.Manifest
	// Addrs are the per-tile shard addresses, in tile-ID order — the
	// single-replica shorthand. Length must equal Manifest.NumTiles().
	// Ignored when ReplicaAddrs is set.
	Addrs []string
	// ReplicaAddrs is the full routing table of a replicated deployment:
	// element [t][r] is the address serving replica r of tile t, primary
	// first (see Manifest.ReplicaAddrs). Every tile needs at least one
	// replica; replicas of one tile must be distinct addresses.
	ReplicaAddrs [][]string
	// DialTimeout bounds each shard dial (default 2s).
	DialTimeout time.Duration
	// ReadTimeout bounds each shard response read when the query context
	// carries no deadline (default 30s) — a dead shard must become a
	// typed partial, never a hang.
	ReadTimeout time.Duration
	// MergeReserve is the fraction of the query's deadline withheld from
	// shards and kept for the merge phase, in [0, 0.5] (default 0.1).
	MergeReserve float64
	// BreakerThreshold is the consecutive-failure count that opens a
	// replica's breaker (default 3); BreakerCooldown is how long it stays
	// open before a passive half-open trial (default 5s). With a prober
	// running (ProbeInterval > 0) the cooldown is ignored: only a probe
	// success half-opens the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryBackoff is the base delay between failover attempts on a
	// tile's replicas, jittered to 50–150% (default 25ms). The backoff
	// never sleeps past the sub-query's deadline.
	RetryBackoff time.Duration
	// HedgeDelay, when > 0, arms hedged sub-queries: if a tile's first
	// replica has not answered within the delay, the sub-query is
	// launched on the next live replica too and the first complete
	// stream wins (the loser is cancelled).
	HedgeDelay time.Duration
	// ProbeInterval, when > 0, runs a background health prober: every
	// interval each replica gets a lightweight probe, failures open its
	// breaker before query traffic has to discover the corpse, and a
	// probe success is what half-opens an open breaker (active recovery
	// instead of the passive cooldown).
	ProbeInterval time.Duration
	// RecoveryWait bounds how long a tile sub-query waits for the prober
	// to readmit a replica before conceding a partial when no replica is
	// routable — a kill's stale failures can trip a just-restarted
	// replica's breaker, so "every breaker open" often means "readmission
	// in flight", not "tile lost". Defaults to two probe cycles; without
	// a prober there is no readmission to wait for and the wait is
	// skipped.
	RecoveryWait time.Duration
	// Faults optionally injects dial/read/shard-down/replica-down/probe
	// faults at the coord.* sites.
	Faults *faultinject.Injector
}

func (c Config) recoveryWait() time.Duration {
	if c.RecoveryWait > 0 {
		return c.RecoveryWait
	}
	if c.ProbeInterval > 0 {
		return 2*c.ProbeInterval + 5*time.Millisecond
	}
	return 0
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 2 * time.Second
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 30 * time.Second
}

func (c Config) mergeReserve() float64 {
	if c.MergeReserve > 0 && c.MergeReserve <= 0.5 {
		return c.MergeReserve
	}
	return 0.1
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	return 3
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 5 * time.Second
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff > 0 {
		return c.RetryBackoff
	}
	return 25 * time.Millisecond
}

// ShardError reports one shard's failure, typed so callers can tell
// which tile's results are missing from a partial answer.
type ShardError struct {
	Tile int
	Addr string
	Err  error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coord: shard %d (%s): %v", e.Tile, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ErrBreakerOpen marks a shard skipped because its breaker is open.
var ErrBreakerOpen = errors.New("breaker open")

// ShardBusyError reports a shard that refused a query under admission
// control. RetryAfter is the largest hint any busy shard returned; the
// error text keeps the "retry after <d>" phrasing clients already parse.
type ShardBusyError struct {
	Tile       int
	RetryAfter time.Duration
}

func (e *ShardBusyError) Error() string {
	return fmt.Sprintf("coord: shard %d overloaded; retry after %v", e.Tile, e.RetryAfter)
}

// MarginError refuses a within-distance join whose distance exceeds the
// deployment's replication margin — beyond it the reference-point rule
// can no longer guarantee the owning tile holds both objects, so the
// sharded answer could silently miss pairs.
type MarginError struct {
	D, Margin float64
}

func (e *MarginError) Error() string {
	return fmt.Sprintf("coord: within-distance %g exceeds the deployment's replication margin %g (repartition with a larger margin)", e.D, e.Margin)
}

// retryAfterRe extracts the Retry-After hint from a shard's overload
// error line (see server.OverloadError: "...; retry after 150ms").
var retryAfterRe = regexp.MustCompile(`retry after ([0-9][^ )]*)`)

// Breaker states reported through Health.State and the
// spatiald_shard_breaker_state metric.
const (
	BreakerClosed   = "closed"    // replica in rotation
	BreakerOpen     = "open"      // replica skipped without dialing
	BreakerHalfOpen = "half-open" // trial traffic allowed; next result decides
)

// Health is one replica's live state for the shards verb and the
// /metrics surface.
type Health struct {
	Tile    int    `json:"tile"`
	Replica int    `json:"replica"`
	Role    string `json:"role"` // "primary" or "replica"
	Addr    string `json:"addr"`
	// State is the replica's breaker state (BreakerClosed/Open/HalfOpen);
	// Open mirrors State == BreakerOpen for older consumers.
	State string `json:"state"`
	Open  bool   `json:"open"`
	// Fails counts lifetime failures; ConsecFails is the current
	// consecutive-failure run the breaker trips on.
	Fails       int64  `json:"fails"`
	ConsecFails int    `json:"consec_fails"`
	Queries     int64  `json:"queries"`
	LastErr     string `json:"last_err,omitempty"`
	IdleConn    int    `json:"idle_conns"`
}

// Totals counts coordinator-level failover events since start, for the
// /metrics surface.
type Totals struct {
	// Retries counts sub-queries re-dispatched to another replica after
	// a replica failed.
	Retries int64 `json:"retries"`
	// Hedges counts hedged sub-queries launched; HedgesWon counts the
	// hedges that finished before the original attempt.
	Hedges    int64 `json:"hedges"`
	HedgesWon int64 `json:"hedges_won"`
	// Probes and ProbeFails count background health probes.
	Probes     int64 `json:"probes"`
	ProbeFails int64 `json:"probe_failures"`
}

// Coordinator fans queries out over the shard fleet. Safe for concurrent
// use by many sessions; per-replica connections are pooled.
type Coordinator struct {
	cfg   Config
	tiles [][]*replica // [tile][replica]

	retries    atomic.Int64
	hedges     atomic.Int64
	hedgesWon  atomic.Int64
	probes     atomic.Int64
	probeFails atomic.Int64

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// New validates the manifest/address pairing and returns a Coordinator.
// Shards are dialed lazily on first use; with ProbeInterval set the
// background health prober starts immediately (stop it with Close).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("coord: nil manifest")
	}
	n := cfg.Manifest.NumTiles()
	table := cfg.ReplicaAddrs
	if table == nil {
		if len(cfg.Addrs) != n {
			return nil, fmt.Errorf("coord: %d shard addresses for %d tiles", len(cfg.Addrs), n)
		}
		table = make([][]string, n)
		for i, addr := range cfg.Addrs {
			table[i] = []string{addr}
		}
	} else if len(table) != n {
		return nil, fmt.Errorf("coord: replica table covers %d tiles, manifest has %d", len(table), n)
	}
	c := &Coordinator{cfg: cfg, stopProbe: make(chan struct{})}
	for t, addrs := range table {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("coord: tile %d has no replicas", t)
		}
		seen := map[string]bool{}
		reps := make([]*replica, len(addrs))
		for r, addr := range addrs {
			if addr == "" {
				return nil, fmt.Errorf("coord: tile %d replica %d has no shard address", t, r)
			}
			if seen[addr] {
				return nil, fmt.Errorf("coord: tile %d lists address %s twice; replicas must be distinct shards", t, addr)
			}
			seen[addr] = true
			reps[r] = &replica{tile: t, idx: r, addr: addr, cfg: &c.cfg}
		}
		c.tiles = append(c.tiles, reps)
	}
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Manifest returns the deployment manifest the coordinator routes with.
func (c *Coordinator) Manifest() *partition.Manifest { return c.cfg.Manifest }

// Health snapshots every replica's breaker state, tile-major with the
// primary first — so in a replica-less deployment Health()[t] is tile
// t, exactly as before.
func (c *Coordinator) Health() []Health {
	var out []Health
	for _, reps := range c.tiles {
		for _, r := range reps {
			out = append(out, r.health())
		}
	}
	return out
}

// Totals snapshots the failover counters.
func (c *Coordinator) Totals() Totals {
	return Totals{
		Retries:    c.retries.Load(),
		Hedges:     c.hedges.Load(),
		HedgesWon:  c.hedgesWon.Load(),
		Probes:     c.probes.Load(),
		ProbeFails: c.probeFails.Load(),
	}
}

// Close stops the health prober and drops all pooled shard connections.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stopProbe) })
	c.probeWG.Wait()
	for _, reps := range c.tiles {
		for _, r := range reps {
			r.closeIdle()
		}
	}
}

// Result is one fanned-out query's merged answer. Buffered results hold
// rows only from shards whose status line arrived ("ok" or "partial"):
// a shard that failed mid-stream contributes nothing, so on a partial
// answer the reported-missing tiles can be re-queried and unioned in
// without double-counting. (Streamed RowSink delivery is weaker; see
// RowSink.)
type Result struct {
	// IDs are the deduplicated stable object ids (selections). Empty when
	// the query streamed through a RowSink.
	IDs []uint64
	// Pairs are the stable-id result pairs (joins), already unique by the
	// reference-point rule. Empty when the query streamed through a
	// RowSink.
	Pairs [][2]uint64
	// Stats is the fold of every answering shard's stats record; Results
	// is overwritten with the merged count.
	Stats query.Stats
	// ShardsAsked and ShardsOK count the fan-out and the answers; a
	// ShardsOK < ShardsAsked result comes with a *query.PartialError.
	ShardsAsked, ShardsOK int
	// ShardMS is each answering shard's wall-clock, keyed by tile, for
	// the merge-overhead accounting in spatialbench.
	ShardMS map[int]float64
	// MaxBuffered is the high-water mark of merged result rows held in
	// coordinator memory during the query: the whole result set when
	// buffering, zero when a RowSink streamed rows through as they
	// arrived.
	MaxBuffered int
}

// RowSink streams merged result rows out of a fan-out as the shard
// streams parse: ids already deduplicated (border objects answer from
// every overlapping tile), pairs already unique by the shard-side
// reference-point rule. Calls are serialized under the coordinator's
// merge lock but interleave across shards in arrival order — callers
// needing a sorted answer must use the buffering API. A non-nil return
// stops the fan-out (remaining rows are dropped, shard breakers are NOT
// tripped) and surfaces as the *query.PartialError cause.
//
// Streaming trades away the buffering API's failed-shard isolation:
// rows flow out before a shard's status line arrives, so a shard that
// dies mid-stream has already delivered its earlier rows. A
// *query.PartialError naming missing shards therefore means those
// shards' streams were cut part-way, not that they contributed nothing
// — re-querying just the missing tiles may repeat pairs; retry the
// whole query when exactly-once delivery matters. The buffering API
// commits a shard's rows only after its "ok"/"partial" status, so a
// buffered Result never contains rows from a failed shard.
type RowSink struct {
	ID   func(uint64) error
	Pair func([2]uint64) error
}

func (s RowSink) active() bool { return s.ID != nil || s.Pair != nil }

// errAbortStream marks a shard read loop aborted because the session's
// RowSink failed — the client went away, not the shard.
var errAbortStream = errors.New("coord: result sink failed")

// merger is the fan-out's shared incremental merge state. In streaming
// (RowSink) mode shard reader goroutines push rows in as their streams
// parse and rows flow straight out through the sink; in buffered mode
// each shard's rows stage in its shardAnswer and commit here only after
// the shard's status line proves the stream complete, so a shard that
// fails mid-stream contributes nothing to the Result.
type merger struct {
	mu    sync.Mutex
	sink  RowSink
	idSet map[uint64]bool
	// pairSet dedups streamed pairs. The reference-point rule makes pairs
	// unique across tiles, but failover and hedging can replay one tile's
	// stream (a retried or hedged attempt re-delivers rows the failed or
	// losing attempt already pushed), so streaming mode keys pairs too.
	// Buffered mode commits exactly one winning attempt per tile and
	// needs no pair dedup.
	pairSet map[[2]uint64]bool
	res     *Result
	rows    int
	sinkErr error
}

func (m *merger) id(v uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sinkErr != nil {
		return errAbortStream
	}
	if m.idSet[v] {
		return nil
	}
	m.idSet[v] = true
	m.rows++
	if m.sink.ID != nil {
		if err := m.sink.ID(v); err != nil {
			m.sinkErr = err
			return errAbortStream
		}
		return nil
	}
	m.res.IDs = append(m.res.IDs, v)
	m.bump()
	return nil
}

func (m *merger) pair(p [2]uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sinkErr != nil {
		return errAbortStream
	}
	if m.streaming() {
		if m.pairSet[p] {
			return nil
		}
		m.pairSet[p] = true
	}
	m.rows++
	if m.sink.Pair != nil {
		if err := m.sink.Pair(p); err != nil {
			m.sinkErr = err
			return errAbortStream
		}
		return nil
	}
	m.res.Pairs = append(m.res.Pairs, p)
	m.bump()
	return nil
}

// streaming reports whether rows flow out through a sink as they parse
// (versus staging per shard and committing on status).
func (m *merger) streaming() bool { return m.sink.active() }

func (m *merger) bump() {
	if n := len(m.res.IDs) + len(m.res.Pairs); n > m.res.MaxBuffered {
		m.res.MaxBuffered = n
	}
}

// Select routes an intersection selection to the tiles overlapping the
// query polygon's MBR and merges their stable-id streams (buffered,
// sorted ascending).
func (c *Coordinator) Select(ctx context.Context, layer, wkt string, bounds geom.Rect) (Result, error) {
	return c.SelectStream(ctx, layer, wkt, bounds, RowSink{})
}

// SelectStream is Select with each deduplicated id handed to sink the
// moment it merges, instead of buffering the result set; pass a zero
// RowSink to buffer (sorted) into the Result.
func (c *Coordinator) SelectStream(ctx context.Context, layer, wkt string, bounds geom.Rect, sink RowSink) (Result, error) {
	tiles := c.cfg.Manifest.OverlappingTiles(bounds)
	cmd := "shardselect " + layer + " " + wkt
	return c.fanout(ctx, "select", tiles, func(int) string { return cmd }, sink)
}

// Join fans an intersection join out to every tile with its ownership
// region and concatenates the deduplicated pair streams (buffered,
// sorted by pair).
func (c *Coordinator) Join(ctx context.Context, a, b, mode string) (Result, error) {
	return c.JoinStream(ctx, a, b, mode, RowSink{})
}

// JoinStream is Join with each pair handed to sink as it arrives from
// the shard streams; pass a zero RowSink to buffer into the Result.
func (c *Coordinator) JoinStream(ctx context.Context, a, b, mode string, sink RowSink) (Result, error) {
	return c.fanout(ctx, "join", c.allTiles(), func(tile int) string {
		cmd := fmt.Sprintf("shardjoin %s %s %s", a, b, shellFormatRect(c.cfg.Manifest.Region(tile)))
		if mode != "" {
			cmd += " " + mode
		}
		return cmd
	}, sink)
}

// Within fans a within-distance join out shard-wise. Distances beyond
// the deployment's replication margin are refused with a *MarginError.
func (c *Coordinator) Within(ctx context.Context, a, b string, d float64, mode string) (Result, error) {
	return c.WithinStream(ctx, a, b, d, mode, RowSink{})
}

// WithinStream is Within with streaming row delivery, as JoinStream.
func (c *Coordinator) WithinStream(ctx context.Context, a, b string, d float64, mode string, sink RowSink) (Result, error) {
	if d > c.cfg.Manifest.Margin {
		return Result{}, &MarginError{D: d, Margin: c.cfg.Manifest.Margin}
	}
	return c.fanout(ctx, "within", c.allTiles(), func(tile int) string {
		cmd := fmt.Sprintf("shardwithin %s %s %s %s", a, b,
			strconv.FormatFloat(d, 'g', -1, 64), shellFormatRect(c.cfg.Manifest.Region(tile)))
		if mode != "" {
			cmd += " " + mode
		}
		return cmd
	}, sink)
}

func (c *Coordinator) allTiles() []int {
	tiles := make([]int, len(c.tiles))
	for i := range tiles {
		tiles[i] = i
	}
	return tiles
}

// shardAnswer is one shard's response bookkeeping. In streaming mode
// result rows do not pass through it — they flow into the fan-out's
// merger as the stream parses. In buffered mode the rows stage in ids/
// pairs and fanout commits them into the merger only once the shard's
// status line arrives, so a shard that fails mid-stream (read error,
// parse error, trailing "error:" status) contributes no rows.
type shardAnswer struct {
	tile    int
	replica int         // replica index that produced the answer
	ids     []uint64    // staged rows (buffered mode only)
	pairs   [][2]uint64 // staged rows (buffered mode only)
	stats   query.Stats
	wallMS  float64
	partial string // non-empty: shard answered "partial: <reason>"
	err     error
}

// fanout runs cmdFor(tile) on every listed shard concurrently. With a
// RowSink each shard reader pushes parsed rows into the shared merger
// the moment they arrive, so the caller sees first rows while slow
// shards are still refining; without one, each shard's rows stage until
// its status line arrives and only complete ("ok"/"partial") streams
// commit into the Result — a shard that dies mid-stream contributes
// zero rows, so a reported-missing tile can be re-queried without
// double-counting. Missing shards degrade to a *query.PartialError;
// zero answering shards is a hard error.
func (c *Coordinator) fanout(ctx context.Context, op string, tiles []int, cmdFor func(int) string, sink RowSink) (Result, error) {
	if len(tiles) == 0 {
		return Result{Stats: query.Stats{Op: "coord." + op}}, nil
	}
	budget := time.Duration(0)
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return Result{}, &query.PartialError{Op: "coord." + op, Done: 0, Total: len(tiles), Err: context.DeadlineExceeded}
		}
	}
	// Deadline budget split: shards get the budget minus the merge
	// reserve, the coordinator keeps the reserve to fold the streams.
	shardBudget := time.Duration(0)
	if budget > 0 {
		shardBudget = budget - time.Duration(float64(budget)*c.cfg.mergeReserve())
	}

	res := Result{ShardsAsked: len(tiles), ShardMS: map[int]float64{}}
	m := &merger{sink: sink, idSet: map[uint64]bool{}, pairSet: map[[2]uint64]bool{}, res: &res}
	answers := make([]shardAnswer, len(tiles))
	var wg sync.WaitGroup
	for i, tile := range tiles {
		wg.Add(1)
		go func(slot, tile int) {
			defer wg.Done()
			answers[slot] = c.queryTile(ctx, tile, cmdFor(tile), shardBudget, m)
		}(i, tile)
	}
	wg.Wait()

	var firstErr error
	var busy *ShardBusyError
	partialReasons := 0
	for _, a := range answers {
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			var sb *ShardBusyError
			if errors.As(a.err, &sb) && (busy == nil || sb.RetryAfter > busy.RetryAfter) {
				busy = sb
			}
			continue
		}
		res.ShardsOK++
		res.ShardMS[a.tile] = a.wallMS
		res.Stats.Merge(a.stats)
		// Commit the shard's staged rows (buffered mode; empty otherwise):
		// its status line arrived, so the stream is complete. The merge
		// cannot fail here — there is no sink to error.
		for _, id := range a.ids {
			_ = m.id(id)
		}
		for _, p := range a.pairs {
			_ = m.pair(p)
		}
		if a.partial != "" {
			partialReasons++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %s", a.tile, a.partial)
			}
		}
	}
	sort.Slice(res.IDs, func(i, j int) bool { return res.IDs[i] < res.IDs[j] })
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i][0] != res.Pairs[j][0] {
			return res.Pairs[i][0] < res.Pairs[j][0]
		}
		return res.Pairs[i][1] < res.Pairs[j][1]
	})
	res.Stats.Op = "coord." + op
	res.Stats.Results = m.rows

	if m.sinkErr != nil {
		// The caller's sink failed mid-stream (client gone); report the
		// rows that made it out as a partial with the sink's error as the
		// cause, no matter how many shards were cut off by the abort.
		return res, &query.PartialError{
			Op:    "coord." + op,
			Done:  res.ShardsOK - partialReasons,
			Total: res.ShardsAsked,
			Err:   m.sinkErr,
		}
	}
	if res.ShardsOK == 0 {
		if busy != nil {
			return Result{}, busy
		}
		return Result{}, firstErr
	}
	if res.ShardsOK < res.ShardsAsked || partialReasons > 0 {
		return res, &query.PartialError{
			Op:    "coord." + op,
			Done:  res.ShardsOK - partialReasons,
			Total: res.ShardsAsked,
			Err:   firstErr,
		}
	}
	return res, nil
}

// queryTile runs one tile's sub-query with failover: route to the
// preferred (lowest-index, breaker-closed) replica, and on dial/read
// failure, shard-side error, shard-side partial (the shard itself was
// interrupted — draining for shutdown, or out of budget), or
// per-attempt deadline expiry retry on the next live replica with a
// jittered backoff, re-splitting whatever budget remains across the
// attempt. Replica selection is live, not a snapshot: each retry
// re-consults the breakers, so a replica that was down (or open) when
// the sub-query began is picked up once the prober readmits it — and a
// replica that already failed this sub-query is retried only after its
// success epoch advances (see replica.epoch), which is what saves a
// long query that outlives a whole kill-restart-kill cycle across the
// tile's replicas. With HedgeDelay armed, a second replica is raced
// once the first goes quiet for the delay; the first complete stream
// wins and the loser is cancelled (its connection closed) without
// charging its breaker. The sub-query fails — becoming the tile's
// share of a *query.PartialError — only when every replica is
// exhausted.
func (c *Coordinator) queryTile(ctx context.Context, tile int, cmd string, budget time.Duration, m *merger) shardAnswer {
	reps := c.tiles[tile]
	if f := c.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordShardDown) {
		// The whole tile is injected down, replicas and all.
		err := errors.New("injected shard down")
		reps[0].recordFailure(err)
		return shardAnswer{tile: tile, err: &ShardError{Tile: tile, Addr: reps[0].addr, Err: err}}
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}

	type outcome struct {
		ans    shardAnswer
		hedged bool
	}
	maxAttempts := 4 * len(reps)
	results := make(chan outcome, maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()
	attempts, inflight := 0, 0
	tried := make(map[int]uint64) // replica idx -> okEpoch when its attempt failed
	running := make(map[int]bool) // replica idx currently in flight
	// pick chooses the next attempt from the replicas routable right now:
	// an untried one in candidate order, else one that failed earlier but
	// has fresh success evidence (probe or concurrent query) proving it
	// came back.
	pick := func() *replica {
		if attempts >= maxAttempts {
			return nil
		}
		routable := candidates(reps)
		for _, r := range routable {
			if _, failed := tried[r.idx]; !failed && !running[r.idx] {
				return r
			}
		}
		for _, r := range routable {
			if at, failed := tried[r.idx]; failed && !running[r.idx] && r.epoch() > at {
				return r
			}
		}
		return nil
	}
	launch := func(rep *replica, hedged bool) {
		attempts++
		running[rep.idx] = true
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		inflight++
		ab := budget
		if !deadline.IsZero() {
			// Budget-aware re-split: each attempt gets what actually remains
			// of the tile's share, not the original full budget.
			ab = time.Until(deadline)
		}
		go func() {
			results <- outcome{ans: rep.query(actx, cmd, ab, m), hedged: hedged}
		}()
	}
	// awaitPick rides out a window where no replica is routable: stale
	// failures from a kill can trip a just-restarted replica's breaker,
	// so the tile often only LOOKS fully down until the prober readmits
	// it. Bounded by RecoveryWait, the deadline, and the context.
	awaitPick := func() *replica {
		rw := c.cfg.recoveryWait()
		if rw <= 0 {
			return nil
		}
		until := time.Now().Add(rw)
		if !deadline.IsZero() && deadline.Before(until) {
			until = deadline
		}
		for time.Now().Before(until) {
			if rep := pick(); rep != nil {
				return rep
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(2 * time.Millisecond):
			}
		}
		return nil
	}
	first := pick()
	if first == nil {
		if first = awaitPick(); first == nil {
			return shardAnswer{tile: tile, err: &ShardError{Tile: tile, Addr: reps[0].addr, Err: ErrBreakerOpen}}
		}
	}
	launch(first, false)

	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 && len(reps) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	var winner, partialAns, errAns shardAnswer
	won, havePartial := false, false
	retryOK := func() bool {
		return !won && ctx.Err() == nil &&
			(deadline.IsZero() || time.Until(deadline) > 0)
	}
	for inflight > 0 {
		select {
		case out := <-results:
			inflight--
			running[out.ans.replica] = false
			switch {
			case errors.Is(out.ans.err, errAttemptCancelled):
				// A cancelled loser; nothing to learn from it.
			case out.ans.err == nil && out.ans.partial != "":
				// The shard answered but could not finish — drained by its own
				// shutdown mid-query, or out of budget. (Exactly how a graceful
				// kill mid-join lands: the dying shard flushes a "partial: ...
				// context canceled" status.) Never crown it: keep it as the
				// fallback, retry if another replica is routable, and otherwise
				// let any attempt still in flight — typically the hedge — race
				// to turn the tile back into a complete answer.
				partialAns, havePartial = out.ans, true
				tried[out.ans.replica] = reps[out.ans.replica].epoch()
				if retryOK() {
					if rep := pick(); rep != nil {
						c.retries.Add(1)
						c.backoff(ctx, deadline)
						launch(rep, false)
					}
				}
			case out.ans.err == nil || errors.Is(out.ans.err, errAbortStream):
				// A complete stream (or the session's own sink failed — no
				// replica will fix that). First one wins; cancel the rest.
				if !won {
					won, winner = true, out.ans
					if out.hedged {
						c.hedgesWon.Add(1)
					}
					for _, cancel := range cancels {
						cancel()
					}
				}
			default:
				errAns = out.ans
				tried[out.ans.replica] = reps[out.ans.replica].epoch()
				if retryOK() {
					if rep := pick(); rep != nil {
						c.retries.Add(1)
						c.backoff(ctx, deadline)
						launch(rep, false)
					}
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if !won {
				if rep := pick(); rep != nil {
					c.hedges.Add(1)
					launch(rep, true)
				}
			}
		}
		if inflight == 0 && !won && retryOK() {
			// Last-chance grace before conceding a partial with budget still
			// on the clock: a killed replica may be restarting right now, and
			// the prober readmits it within a cycle or two.
			if rep := awaitPick(); rep != nil {
				c.retries.Add(1)
				launch(rep, false)
			}
		}
	}
	if won {
		return winner
	}
	if havePartial {
		// Every retry after the interrupted answer failed too; the partial
		// rows beat an error.
		return partialAns
	}
	if errAns.err == nil {
		// Every attempt was cancelled out from under us: the fan-out's
		// context died before any replica finished.
		err := ctx.Err()
		if err == nil {
			err = context.DeadlineExceeded
		}
		errAns = shardAnswer{tile: tile, err: &ShardError{Tile: tile, Addr: reps[0].addr, Err: err}}
	}
	return errAns
}

// candidates orders a tile's replicas for routing: breaker-closed
// replicas first (primary preferred), then half-open ones as trial
// traffic; open breakers are skipped entirely.
func candidates(reps []*replica) []*replica {
	var closed, trial []*replica
	for _, r := range reps {
		switch r.admit() {
		case BreakerClosed:
			closed = append(closed, r)
		case BreakerHalfOpen:
			trial = append(trial, r)
		}
	}
	return append(closed, trial...)
}

// backoff sleeps the jittered retry delay (50–150% of RetryBackoff),
// bounded by the sub-query deadline and the context.
func (c *Coordinator) backoff(ctx context.Context, deadline time.Time) {
	d := c.cfg.retryBackoff()
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if !deadline.IsZero() {
		if left := time.Until(deadline); left < d {
			d = left
		}
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// probeLoop is the background health prober: every ProbeInterval each
// replica gets one lightweight probe. Probe failures open the replica's
// breaker before query traffic has to discover the corpse; a probe
// success against an open breaker half-opens it, putting the replica
// back into (trial) rotation — active recovery instead of the passive
// cooldown.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-t.C:
			for _, reps := range c.tiles {
				for _, r := range reps {
					select {
					case <-c.stopProbe:
						return
					default:
					}
					c.probes.Add(1)
					if err := r.probe(); err != nil {
						c.probeFails.Add(1)
					}
				}
			}
		}
	}
}

// replica is one copy of a tile's client: a pooled set of wire
// connections plus the consecutive-failure breaker.
type replica struct {
	tile int
	idx  int // replica index within the tile; 0 is the primary
	addr string
	cfg  *Config

	mu        sync.Mutex
	idle      []*wireConn
	fails     int   // consecutive failures
	failTotal int64 // lifetime failures (metrics)
	queries   int64
	state     string // breaker state; "" means BreakerClosed
	openUntil time.Time
	lastErr   string
	okEpoch   uint64 // bumped on every success (query or probe); see epoch
}

// wireConn is one established protocol connection with its session
// state (the last timeout sent, so pooled reuse re-arms it only on
// change).
type wireConn struct {
	conn    net.Conn
	r       *bufio.Reader
	timeout time.Duration
}

// role names the replica for operators: the primary serves by default,
// replicas take failover and hedge traffic.
func (r *replica) role() string {
	if r.idx == 0 {
		return "primary"
	}
	return "replica"
}

// breakerState resolves the current state under r.mu: a passively
// cooled-down open breaker (no prober running) reads as half-open once
// the cooldown expires.
func (r *replica) breakerState(now time.Time) string {
	switch r.state {
	case BreakerOpen:
		if r.cfg.ProbeInterval <= 0 && !now.Before(r.openUntil) {
			return BreakerHalfOpen
		}
		return BreakerOpen
	case BreakerHalfOpen:
		return BreakerHalfOpen
	default:
		return BreakerClosed
	}
}

// admit resolves the breaker for routing: the returned state is
// BreakerClosed or BreakerHalfOpen when the replica may be tried, and
// BreakerOpen when it must be skipped. The passive cooldown transition
// (open → half-open) commits here.
func (r *replica) admit() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.breakerState(time.Now())
	r.state = normState(st)
	return st
}

// normState maps the closed state back to the zero value so fresh
// replicas and post-success resets look alike.
func normState(st string) string {
	if st == BreakerClosed {
		return ""
	}
	return st
}

func (r *replica) health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.breakerState(time.Now())
	return Health{
		Tile:        r.tile,
		Replica:     r.idx,
		Role:        r.role(),
		Addr:        r.addr,
		State:       st,
		Open:        st == BreakerOpen,
		Fails:       r.failTotal,
		ConsecFails: r.fails,
		Queries:     r.queries,
		LastErr:     r.lastErr,
		IdleConn:    len(r.idle),
	}
}

func (r *replica) closeIdle() {
	r.mu.Lock()
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, w := range idle {
		w.conn.Close()
	}
}

// acquire returns a pooled connection (pooled true) or dials a fresh
// one. Pooled connections can be stale — the shard may have restarted
// on the same address since they were pooled — so callers retry a
// pooled connection's transport failure once on a fresh dial (after
// scrubbing the pool, whose remaining connections are from the same
// suspect epoch) before charging the replica's breaker.
func (r *replica) acquire() (w *wireConn, pooled bool, err error) {
	r.mu.Lock()
	if n := len(r.idle); n > 0 {
		w := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return w, true, nil
	}
	r.mu.Unlock()

	if f := r.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordDial) {
		return nil, false, errors.New("injected dial fault")
	}
	conn, err := net.DialTimeout("tcp", r.addr, r.cfg.dialTimeout())
	if err != nil {
		return nil, false, err
	}
	w = &wireConn{conn: conn, r: bufio.NewReader(conn)}
	conn.SetReadDeadline(time.Now().Add(r.cfg.dialTimeout()))
	greeting, err := w.readLine(r.cfg.Faults)
	if err != nil {
		conn.Close()
		return nil, false, fmt.Errorf("greeting: %w", err)
	}
	if !strings.Contains(greeting, "ready") {
		conn.Close()
		return nil, false, fmt.Errorf("unexpected greeting %q", greeting)
	}
	return w, false, nil
}

func (r *replica) release(w *wireConn) {
	r.mu.Lock()
	r.idle = append(r.idle, w)
	r.mu.Unlock()
}

// probe is one lightweight health check: acquire a connection (pooled
// or fresh dial + greeting) and exchange a trivial command. Success
// half-opens an open breaker; failure records like a query failure, so
// a dead replica's breaker opens from probes alone.
func (r *replica) probe() error {
	if f := r.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordProbe) {
		err := errors.New("injected probe fault")
		r.recordFailure(fmt.Errorf("probe: %w", err))
		return err
	}
	for attempt := 0; ; attempt++ {
		w, pooled, err := r.acquire()
		if err != nil {
			r.recordFailure(fmt.Errorf("probe: %w", err))
			return err
		}
		w.conn.SetDeadline(time.Now().Add(r.cfg.dialTimeout()))
		_, status, err := w.exchange("layers", r.cfg.Faults)
		if err != nil {
			w.conn.Close()
			if pooled && attempt == 0 {
				// A stale pooled connection (the shard restarted on the same
				// address) must not charge a live replica's breaker: scrub the
				// pool — its siblings are from the same suspect epoch — and
				// re-probe on a fresh dial, which is the real verdict.
				r.closeIdle()
				continue
			}
			r.recordFailure(fmt.Errorf("probe: %w", err))
			return err
		}
		if !strings.HasPrefix(status, "ok") {
			w.conn.Close()
			err := fmt.Errorf("probe: %s", status)
			r.recordFailure(err)
			return err
		}
		r.release(w)
		r.probeSuccess()
		return nil
	}
}

// probeSuccess half-opens an open breaker: the replica is reachable
// again, so trial query traffic may flow; the first real success closes
// the breaker, the first real failure re-opens it.
func (r *replica) probeSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.breakerState(time.Now()) == BreakerOpen {
		r.state = BreakerHalfOpen
	}
	r.okEpoch++
	// The probe broke the consecutive-failure run, so trial traffic gets
	// the full threshold again: one leftover hiccup must not instantly
	// re-open a breaker the prober just recovered, and sporadic probe
	// blips on an idle tile must not accumulate into a spurious trip.
	// (The passive cooldown path has no probes and deliberately keeps the
	// count — there a failing half-open trial proves the replica still
	// dead, and one strike re-opens.)
	r.fails = 0
}

func (w *wireConn) readLine(f *faultinject.Injector) (string, error) {
	if f != nil && f.Disconnect(faultinject.SiteCoordRead) {
		w.conn.Close()
		return "", errors.New("injected read fault")
	}
	line, err := w.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// exchangeStream sends one command and hands each data line to onLine
// the moment it is read, returning the trailing status line. An onLine
// error aborts the read loop and is returned as-is, leaving the
// connection mid-stream — the caller must close it.
func (w *wireConn) exchangeStream(cmd string, f *faultinject.Injector, onLine func(string) error) (status string, err error) {
	if _, err := fmt.Fprintf(w.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	for {
		line, err := w.readLine(f)
		if err != nil {
			return "", err
		}
		if line == "ok" || strings.HasPrefix(line, "partial:") || strings.HasPrefix(line, "error:") {
			return line, nil
		}
		if err := onLine(line); err != nil {
			return "", err
		}
	}
}

// exchange is exchangeStream with the data lines collected — used for
// small fixed exchanges like timeout arming.
func (w *wireConn) exchange(cmd string, f *faultinject.Injector) (data []string, status string, err error) {
	status, err = w.exchangeStream(cmd, f, func(line string) error {
		data = append(data, line)
		return nil
	})
	return data, status, err
}

// errAttemptCancelled marks a replica attempt cut short by its own
// context — a hedge loser or a fan-out winding down — as opposed to a
// replica that actually failed. Cancelled attempts never charge the
// breaker and never become the tile's answer.
var errAttemptCancelled = errors.New("coord: attempt cancelled")

// watchCancel closes the attempt's connection when ctx is cancelled, so
// hedge losers stop streaming promptly instead of running to
// completion. The returned stop function disarms the watcher and must
// be called before the connection is released to the pool (otherwise a
// late cancellation could close a pooled connection under an innocent
// future query).
func watchCancel(ctx context.Context, w *wireConn) (stop func()) {
	stopped := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			w.conn.Close()
		case <-stopped:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopped) })
		<-done
	}
}

// exchangeOnce runs the connection-level portion of one replica
// attempt: acquire, read deadline, timeout arming, and the command
// exchange with rows parsed into the fan-out's merger as they stream.
// A transport failure on a pooled connection is retried once on a
// fresh dial: the shard may have restarted on the same address since
// the connection was pooled, and a stale socket must not fail the
// attempt (or charge the breaker) while the replica itself is healthy.
// The retry scrubs the idle pool — its remaining connections are from
// the same suspect epoch — and drops rows the aborted exchange staged
// (streamed rows dedup in the merger). On success the returned
// connection is live and stop disarms its cancel watcher; on error the
// connection is closed and the watcher already stopped.
func (r *replica) exchangeOnce(ctx context.Context, cmd string, budget time.Duration, m *merger, ans *shardAnswer) (w *wireConn, stop func(), start time.Time, status string, err error) {
	for attempt := 0; ; attempt++ {
		w, pooled, err := r.acquire()
		if err != nil {
			return nil, func() {}, time.Time{}, "", err
		}
		stop := watchCancel(ctx, w)
		staleRetry := func() bool {
			return pooled && attempt == 0 && ctx.Err() == nil
		}

		// The connection read deadline is the hard backstop (shard process
		// hung); the shard-side session timeout is the soft one (shard alive
		// but the query is slow → typed partial from the shard itself).
		readCeil := r.cfg.readTimeout()
		if budget > 0 && budget < readCeil {
			readCeil = budget
		}
		w.conn.SetDeadline(time.Now().Add(readCeil + 500*time.Millisecond))

		if budget > 0 && w.timeout != budget {
			if _, st, err := w.exchange("timeout "+budget.Round(time.Millisecond).String(), r.cfg.Faults); err != nil {
				stop()
				w.conn.Close()
				if staleRetry() {
					r.closeIdle()
					continue
				}
				return nil, func() {}, time.Time{}, "", err
			} else if !strings.HasPrefix(st, "ok") {
				stop()
				w.conn.Close()
				return nil, func() {}, time.Time{}, "", fmt.Errorf("arming timeout: %s", st)
			}
			w.timeout = budget
		}

		begin := time.Now()
		status, err := w.exchangeStream(cmd, r.cfg.Faults, func(line string) error {
			return parseLine(line, m, ans)
		})
		if err != nil {
			stop()
			w.conn.Close()
			if !errors.Is(err, errAbortStream) && staleRetry() {
				ans.ids, ans.pairs = nil, nil
				r.closeIdle()
				continue
			}
			return nil, func() {}, time.Time{}, "", err
		}
		return w, stop, begin, status, nil
	}
}

// query runs one replica attempt end to end: connection acquire,
// shard-side timeout arming, command exchange with rows parsed into the
// fan-out's merger as they stream, breaker accounting. Never blocks
// past the budget (or the configured read ceiling); cancelling ctx
// severs the attempt. Breaker admission is the caller's job (see
// candidates) — by the time query runs, the replica was routable.
func (r *replica) query(ctx context.Context, cmd string, budget time.Duration, m *merger) shardAnswer {
	ans := shardAnswer{tile: r.tile, replica: r.idx}
	cancelled := func() shardAnswer {
		ans.err = fmt.Errorf("%w (%v)", errAttemptCancelled, ctx.Err())
		return ans
	}
	fail := func(err error) shardAnswer {
		if ctx.Err() != nil {
			return cancelled()
		}
		r.recordFailure(err)
		ans.err = &ShardError{Tile: r.tile, Addr: r.addr, Err: err}
		return ans
	}

	r.mu.Lock()
	r.queries++
	r.mu.Unlock()
	if f := r.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordReplicaDown) {
		return fail(errors.New("injected replica down"))
	}
	if ctx.Err() != nil {
		return cancelled()
	}

	w, stopWatch, start, status, err := r.exchangeOnce(ctx, cmd, budget, m, &ans)
	defer stopWatch()
	if err != nil {
		if errors.Is(err, errAbortStream) {
			// The session's result sink failed — the client went away, not
			// the shard. Abandon the stream without touching the breaker.
			ans.err = &ShardError{Tile: r.tile, Addr: r.addr, Err: err}
			return ans
		}
		return fail(err)
	}
	ans.wallMS = float64(time.Since(start).Microseconds()) / 1000

	switch {
	case status == "ok":
	case strings.HasPrefix(status, "partial:"):
		ans.partial = strings.TrimSpace(strings.TrimPrefix(status, "partial:"))
	default: // error: ...
		reason := strings.TrimSpace(strings.TrimPrefix(status, "error:"))
		stopWatch()
		if ctx.Err() != nil {
			// The watcher may have closed the connection as the status
			// arrived; don't pool a maybe-dead conn.
			w.conn.Close()
			return cancelled()
		}
		r.release(w) // protocol intact: the command failed, not the conn
		if m := retryAfterRe.FindStringSubmatch(reason); m != nil {
			if d, perr := time.ParseDuration(m[1]); perr == nil {
				r.recordFailure(errors.New(reason))
				ans.err = &ShardError{Tile: r.tile, Addr: r.addr,
					Err: &ShardBusyError{Tile: r.tile, RetryAfter: d}}
				return ans
			}
		}
		r.recordFailure(errors.New(reason))
		ans.err = &ShardError{Tile: r.tile, Addr: r.addr, Err: errors.New(reason)}
		return ans
	}

	r.recordSuccess()
	stopWatch()
	if ctx.Err() != nil {
		// Completed, but cancelled as the status arrived: the watcher may
		// have closed the connection — don't pool it. The answer is still
		// whole, so return it; a hedged winner race resolves in the
		// tile loop.
		w.conn.Close()
		return ans
	}
	r.release(w)
	return ans
}

func (r *replica) recordFailure(err error) {
	r.mu.Lock()
	r.fails++
	r.failTotal++
	r.lastErr = err.Error()
	var idle []*wireConn
	if r.fails >= r.cfg.breakerThreshold() {
		r.state = BreakerOpen
		r.openUntil = time.Now().Add(r.cfg.breakerCooldown())
		// Drop the pooled connections: a replica that just tripped its
		// breaker is presumed down, and a stale socket surviving into the
		// recovery trial would fail the first query after readmission and
		// re-open the breaker the prober just recovered.
		idle = r.idle
		r.idle = nil
	}
	r.mu.Unlock()
	for _, w := range idle {
		w.conn.Close()
	}
}

func (r *replica) recordSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	r.state = ""
	r.openUntil = time.Time{}
	r.okEpoch++
}

// epoch reads the replica's success counter. A sub-query that saw this
// replica fail may try it again only after the epoch advances — fresh
// evidence (a probe or a concurrent query succeeding) that the replica
// recovered, e.g. a restart mid-query. Without that evidence a replica
// is attempted at most once per sub-query, which keeps the R=1
// contract: a lone replica's failure is a typed partial, not a blind
// same-target retry loop.
func (r *replica) epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.okEpoch
}

// parseLine decodes one shard data line — "id <N>" and "pair <A> <B>"
// rows go straight into the fan-out merger when it streams, and stage in
// the shard's answer otherwise (committed by fanout once the status line
// proves the stream complete); "stats <json>" goes into the shard's
// answer, other lines (notes) are ignored.
func parseLine(line string, m *merger, ans *shardAnswer) error {
	word, rest, _ := strings.Cut(line, " ")
	switch word {
	case "id":
		id, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return fmt.Errorf("bad id line %q: %w", line, err)
		}
		if m.streaming() {
			return m.id(id)
		}
		ans.ids = append(ans.ids, id)
		return nil
	case "pair":
		af, bf, ok := strings.Cut(strings.TrimSpace(rest), " ")
		if !ok {
			return fmt.Errorf("bad pair line %q", line)
		}
		a, err := strconv.ParseUint(af, 10, 64)
		if err != nil {
			return fmt.Errorf("bad pair line %q: %w", line, err)
		}
		b, err := strconv.ParseUint(strings.TrimSpace(bf), 10, 64)
		if err != nil {
			return fmt.Errorf("bad pair line %q: %w", line, err)
		}
		if m.streaming() {
			return m.pair([2]uint64{a, b})
		}
		ans.pairs = append(ans.pairs, [2]uint64{a, b})
		return nil
	case "stats":
		if err := json.Unmarshal([]byte(rest), &ans.stats); err != nil {
			return fmt.Errorf("bad stats line: %w", err)
		}
	default:
		// note: ... and any future informational lines are ignored.
	}
	return nil
}

// shellFormatRect renders an ownership region the way the shard verbs
// parse it (four 'g'-formatted floats; ±Inf round-trips).
func shellFormatRect(r geom.Rect) string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return f(r.MinX) + " " + f(r.MinY) + " " + f(r.MaxX) + " " + f(r.MaxY)
}
