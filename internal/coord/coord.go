// Package coord is the scatter-gather coordinator of a sharded spatiald
// deployment. It speaks the existing line-oriented wire protocol to one
// spatiald process per spatial tile (see internal/partition): selections
// are routed to the tiles whose ownership regions overlap the query MBR,
// joins fan out to every tile with the tile's ownership region on the
// wire, and the per-shard streams are merged — ids deduplicated for
// selections (border objects respond from every overlapping tile), pairs
// concatenated for joins (the shard-side reference-point rule guarantees
// each pair arrives exactly once), and per-shard query.Stats folded with
// Stats.Merge.
//
// # Failure semantics
//
// A shard that cannot be reached, times out, or answers with an error
// does not fail the query: the coordinator merges what the live shards
// returned and wraps the miss in a *query.PartialError (Done = shards
// that answered, Total = shards asked), which the serving layer already
// renders as a "partial:" status. Only a query with zero answering
// shards is a hard error. Each shard has a consecutive-failure breaker:
// after Config.BreakerThreshold failures the shard is skipped without
// dialing for Config.BreakerCooldown, so one dead shard costs its tiles'
// results but never a dial timeout per query. A shard that answers
// "error: server overloaded ... retry after <d>" contributes a typed
// *ShardBusyError carrying the largest hint, which the coordinator's own
// serving layer propagates to clients.
package coord

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
)

// Config configures a Coordinator.
type Config struct {
	// Manifest is the partitioned deployment being coordinated.
	Manifest *partition.Manifest
	// Addrs are the per-tile shard addresses, in tile-ID order. Length
	// must equal Manifest.NumTiles().
	Addrs []string
	// DialTimeout bounds each shard dial (default 2s).
	DialTimeout time.Duration
	// ReadTimeout bounds each shard response read when the query context
	// carries no deadline (default 30s) — a dead shard must become a
	// typed partial, never a hang.
	ReadTimeout time.Duration
	// MergeReserve is the fraction of the query's deadline withheld from
	// shards and kept for the merge phase, in [0, 0.5] (default 0.1).
	MergeReserve float64
	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's breaker (default 3); BreakerCooldown is how long it stays
	// open (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Faults optionally injects dial/read/shard-down faults at the
	// coord.* sites.
	Faults *faultinject.Injector
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 2 * time.Second
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 30 * time.Second
}

func (c Config) mergeReserve() float64 {
	if c.MergeReserve > 0 && c.MergeReserve <= 0.5 {
		return c.MergeReserve
	}
	return 0.1
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	return 3
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 5 * time.Second
}

// ShardError reports one shard's failure, typed so callers can tell
// which tile's results are missing from a partial answer.
type ShardError struct {
	Tile int
	Addr string
	Err  error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coord: shard %d (%s): %v", e.Tile, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// ErrBreakerOpen marks a shard skipped because its breaker is open.
var ErrBreakerOpen = errors.New("breaker open")

// ShardBusyError reports a shard that refused a query under admission
// control. RetryAfter is the largest hint any busy shard returned; the
// error text keeps the "retry after <d>" phrasing clients already parse.
type ShardBusyError struct {
	Tile       int
	RetryAfter time.Duration
}

func (e *ShardBusyError) Error() string {
	return fmt.Sprintf("coord: shard %d overloaded; retry after %v", e.Tile, e.RetryAfter)
}

// MarginError refuses a within-distance join whose distance exceeds the
// deployment's replication margin — beyond it the reference-point rule
// can no longer guarantee the owning tile holds both objects, so the
// sharded answer could silently miss pairs.
type MarginError struct {
	D, Margin float64
}

func (e *MarginError) Error() string {
	return fmt.Sprintf("coord: within-distance %g exceeds the deployment's replication margin %g (repartition with a larger margin)", e.D, e.Margin)
}

// retryAfterRe extracts the Retry-After hint from a shard's overload
// error line (see server.OverloadError: "...; retry after 150ms").
var retryAfterRe = regexp.MustCompile(`retry after ([0-9][^ )]*)`)

// Health is one shard's live state for the /metrics surface.
type Health struct {
	Tile     int    `json:"tile"`
	Addr     string `json:"addr"`
	Open     bool   `json:"open"` // breaker open: shard currently skipped
	Fails    int64  `json:"fails"`
	Queries  int64  `json:"queries"`
	LastErr  string `json:"last_err,omitempty"`
	IdleConn int    `json:"idle_conns"`
}

// Coordinator fans queries out over the shard fleet. Safe for concurrent
// use by many sessions; per-shard connections are pooled.
type Coordinator struct {
	cfg    Config
	shards []*shard
}

// New validates the manifest/address pairing and returns a Coordinator.
// Shards are dialed lazily on first use.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("coord: nil manifest")
	}
	if len(cfg.Addrs) != cfg.Manifest.NumTiles() {
		return nil, fmt.Errorf("coord: %d shard addresses for %d tiles", len(cfg.Addrs), cfg.Manifest.NumTiles())
	}
	c := &Coordinator{cfg: cfg}
	for i, addr := range cfg.Addrs {
		if addr == "" {
			return nil, fmt.Errorf("coord: tile %d has no shard address", i)
		}
		c.shards = append(c.shards, &shard{tile: i, addr: addr, cfg: &c.cfg})
	}
	return c, nil
}

// Manifest returns the deployment manifest the coordinator routes with.
func (c *Coordinator) Manifest() *partition.Manifest { return c.cfg.Manifest }

// Health snapshots every shard's breaker state for metrics.
func (c *Coordinator) Health() []Health {
	out := make([]Health, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.health()
	}
	return out
}

// Close drops all pooled shard connections.
func (c *Coordinator) Close() {
	for _, s := range c.shards {
		s.closeIdle()
	}
}

// Result is one fanned-out query's merged answer. Buffered results hold
// rows only from shards whose status line arrived ("ok" or "partial"):
// a shard that failed mid-stream contributes nothing, so on a partial
// answer the reported-missing tiles can be re-queried and unioned in
// without double-counting. (Streamed RowSink delivery is weaker; see
// RowSink.)
type Result struct {
	// IDs are the deduplicated stable object ids (selections). Empty when
	// the query streamed through a RowSink.
	IDs []uint64
	// Pairs are the stable-id result pairs (joins), already unique by the
	// reference-point rule. Empty when the query streamed through a
	// RowSink.
	Pairs [][2]uint64
	// Stats is the fold of every answering shard's stats record; Results
	// is overwritten with the merged count.
	Stats query.Stats
	// ShardsAsked and ShardsOK count the fan-out and the answers; a
	// ShardsOK < ShardsAsked result comes with a *query.PartialError.
	ShardsAsked, ShardsOK int
	// ShardMS is each answering shard's wall-clock, keyed by tile, for
	// the merge-overhead accounting in spatialbench.
	ShardMS map[int]float64
	// MaxBuffered is the high-water mark of merged result rows held in
	// coordinator memory during the query: the whole result set when
	// buffering, zero when a RowSink streamed rows through as they
	// arrived.
	MaxBuffered int
}

// RowSink streams merged result rows out of a fan-out as the shard
// streams parse: ids already deduplicated (border objects answer from
// every overlapping tile), pairs already unique by the shard-side
// reference-point rule. Calls are serialized under the coordinator's
// merge lock but interleave across shards in arrival order — callers
// needing a sorted answer must use the buffering API. A non-nil return
// stops the fan-out (remaining rows are dropped, shard breakers are NOT
// tripped) and surfaces as the *query.PartialError cause.
//
// Streaming trades away the buffering API's failed-shard isolation:
// rows flow out before a shard's status line arrives, so a shard that
// dies mid-stream has already delivered its earlier rows. A
// *query.PartialError naming missing shards therefore means those
// shards' streams were cut part-way, not that they contributed nothing
// — re-querying just the missing tiles may repeat pairs; retry the
// whole query when exactly-once delivery matters. The buffering API
// commits a shard's rows only after its "ok"/"partial" status, so a
// buffered Result never contains rows from a failed shard.
type RowSink struct {
	ID   func(uint64) error
	Pair func([2]uint64) error
}

func (s RowSink) active() bool { return s.ID != nil || s.Pair != nil }

// errAbortStream marks a shard read loop aborted because the session's
// RowSink failed — the client went away, not the shard.
var errAbortStream = errors.New("coord: result sink failed")

// merger is the fan-out's shared incremental merge state. In streaming
// (RowSink) mode shard reader goroutines push rows in as their streams
// parse and rows flow straight out through the sink; in buffered mode
// each shard's rows stage in its shardAnswer and commit here only after
// the shard's status line proves the stream complete, so a shard that
// fails mid-stream contributes nothing to the Result.
type merger struct {
	mu      sync.Mutex
	sink    RowSink
	idSet   map[uint64]bool
	res     *Result
	rows    int
	sinkErr error
}

func (m *merger) id(v uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sinkErr != nil {
		return errAbortStream
	}
	if m.idSet[v] {
		return nil
	}
	m.idSet[v] = true
	m.rows++
	if m.sink.ID != nil {
		if err := m.sink.ID(v); err != nil {
			m.sinkErr = err
			return errAbortStream
		}
		return nil
	}
	m.res.IDs = append(m.res.IDs, v)
	m.bump()
	return nil
}

func (m *merger) pair(p [2]uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sinkErr != nil {
		return errAbortStream
	}
	m.rows++
	if m.sink.Pair != nil {
		if err := m.sink.Pair(p); err != nil {
			m.sinkErr = err
			return errAbortStream
		}
		return nil
	}
	m.res.Pairs = append(m.res.Pairs, p)
	m.bump()
	return nil
}

// streaming reports whether rows flow out through a sink as they parse
// (versus staging per shard and committing on status).
func (m *merger) streaming() bool { return m.sink.active() }

func (m *merger) bump() {
	if n := len(m.res.IDs) + len(m.res.Pairs); n > m.res.MaxBuffered {
		m.res.MaxBuffered = n
	}
}

// Select routes an intersection selection to the tiles overlapping the
// query polygon's MBR and merges their stable-id streams (buffered,
// sorted ascending).
func (c *Coordinator) Select(ctx context.Context, layer, wkt string, bounds geom.Rect) (Result, error) {
	return c.SelectStream(ctx, layer, wkt, bounds, RowSink{})
}

// SelectStream is Select with each deduplicated id handed to sink the
// moment it merges, instead of buffering the result set; pass a zero
// RowSink to buffer (sorted) into the Result.
func (c *Coordinator) SelectStream(ctx context.Context, layer, wkt string, bounds geom.Rect, sink RowSink) (Result, error) {
	tiles := c.cfg.Manifest.OverlappingTiles(bounds)
	cmd := "shardselect " + layer + " " + wkt
	return c.fanout(ctx, "select", tiles, func(int) string { return cmd }, sink)
}

// Join fans an intersection join out to every tile with its ownership
// region and concatenates the deduplicated pair streams (buffered,
// sorted by pair).
func (c *Coordinator) Join(ctx context.Context, a, b, mode string) (Result, error) {
	return c.JoinStream(ctx, a, b, mode, RowSink{})
}

// JoinStream is Join with each pair handed to sink as it arrives from
// the shard streams; pass a zero RowSink to buffer into the Result.
func (c *Coordinator) JoinStream(ctx context.Context, a, b, mode string, sink RowSink) (Result, error) {
	return c.fanout(ctx, "join", c.allTiles(), func(tile int) string {
		cmd := fmt.Sprintf("shardjoin %s %s %s", a, b, shellFormatRect(c.cfg.Manifest.Region(tile)))
		if mode != "" {
			cmd += " " + mode
		}
		return cmd
	}, sink)
}

// Within fans a within-distance join out shard-wise. Distances beyond
// the deployment's replication margin are refused with a *MarginError.
func (c *Coordinator) Within(ctx context.Context, a, b string, d float64, mode string) (Result, error) {
	return c.WithinStream(ctx, a, b, d, mode, RowSink{})
}

// WithinStream is Within with streaming row delivery, as JoinStream.
func (c *Coordinator) WithinStream(ctx context.Context, a, b string, d float64, mode string, sink RowSink) (Result, error) {
	if d > c.cfg.Manifest.Margin {
		return Result{}, &MarginError{D: d, Margin: c.cfg.Manifest.Margin}
	}
	return c.fanout(ctx, "within", c.allTiles(), func(tile int) string {
		cmd := fmt.Sprintf("shardwithin %s %s %s %s", a, b,
			strconv.FormatFloat(d, 'g', -1, 64), shellFormatRect(c.cfg.Manifest.Region(tile)))
		if mode != "" {
			cmd += " " + mode
		}
		return cmd
	}, sink)
}

func (c *Coordinator) allTiles() []int {
	tiles := make([]int, len(c.shards))
	for i := range tiles {
		tiles[i] = i
	}
	return tiles
}

// shardAnswer is one shard's response bookkeeping. In streaming mode
// result rows do not pass through it — they flow into the fan-out's
// merger as the stream parses. In buffered mode the rows stage in ids/
// pairs and fanout commits them into the merger only once the shard's
// status line arrives, so a shard that fails mid-stream (read error,
// parse error, trailing "error:" status) contributes no rows.
type shardAnswer struct {
	tile    int
	ids     []uint64    // staged rows (buffered mode only)
	pairs   [][2]uint64 // staged rows (buffered mode only)
	stats   query.Stats
	wallMS  float64
	partial string // non-empty: shard answered "partial: <reason>"
	err     error
}

// fanout runs cmdFor(tile) on every listed shard concurrently. With a
// RowSink each shard reader pushes parsed rows into the shared merger
// the moment they arrive, so the caller sees first rows while slow
// shards are still refining; without one, each shard's rows stage until
// its status line arrives and only complete ("ok"/"partial") streams
// commit into the Result — a shard that dies mid-stream contributes
// zero rows, so a reported-missing tile can be re-queried without
// double-counting. Missing shards degrade to a *query.PartialError;
// zero answering shards is a hard error.
func (c *Coordinator) fanout(ctx context.Context, op string, tiles []int, cmdFor func(int) string, sink RowSink) (Result, error) {
	if len(tiles) == 0 {
		return Result{Stats: query.Stats{Op: "coord." + op}}, nil
	}
	budget := time.Duration(0)
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			return Result{}, &query.PartialError{Op: "coord." + op, Done: 0, Total: len(tiles), Err: context.DeadlineExceeded}
		}
	}
	// Deadline budget split: shards get the budget minus the merge
	// reserve, the coordinator keeps the reserve to fold the streams.
	shardBudget := time.Duration(0)
	if budget > 0 {
		shardBudget = budget - time.Duration(float64(budget)*c.cfg.mergeReserve())
	}

	res := Result{ShardsAsked: len(tiles), ShardMS: map[int]float64{}}
	m := &merger{sink: sink, idSet: map[uint64]bool{}, res: &res}
	answers := make([]shardAnswer, len(tiles))
	var wg sync.WaitGroup
	for i, tile := range tiles {
		wg.Add(1)
		go func(slot, tile int) {
			defer wg.Done()
			answers[slot] = c.shards[tile].query(ctx, cmdFor(tile), shardBudget, m)
		}(i, tile)
	}
	wg.Wait()

	var firstErr error
	var busy *ShardBusyError
	partialReasons := 0
	for _, a := range answers {
		if a.err != nil {
			if firstErr == nil {
				firstErr = a.err
			}
			var sb *ShardBusyError
			if errors.As(a.err, &sb) && (busy == nil || sb.RetryAfter > busy.RetryAfter) {
				busy = sb
			}
			continue
		}
		res.ShardsOK++
		res.ShardMS[a.tile] = a.wallMS
		res.Stats.Merge(a.stats)
		// Commit the shard's staged rows (buffered mode; empty otherwise):
		// its status line arrived, so the stream is complete. The merge
		// cannot fail here — there is no sink to error.
		for _, id := range a.ids {
			_ = m.id(id)
		}
		for _, p := range a.pairs {
			_ = m.pair(p)
		}
		if a.partial != "" {
			partialReasons++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %s", a.tile, a.partial)
			}
		}
	}
	sort.Slice(res.IDs, func(i, j int) bool { return res.IDs[i] < res.IDs[j] })
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i][0] != res.Pairs[j][0] {
			return res.Pairs[i][0] < res.Pairs[j][0]
		}
		return res.Pairs[i][1] < res.Pairs[j][1]
	})
	res.Stats.Op = "coord." + op
	res.Stats.Results = m.rows

	if m.sinkErr != nil {
		// The caller's sink failed mid-stream (client gone); report the
		// rows that made it out as a partial with the sink's error as the
		// cause, no matter how many shards were cut off by the abort.
		return res, &query.PartialError{
			Op:    "coord." + op,
			Done:  res.ShardsOK - partialReasons,
			Total: res.ShardsAsked,
			Err:   m.sinkErr,
		}
	}
	if res.ShardsOK == 0 {
		if busy != nil {
			return Result{}, busy
		}
		return Result{}, firstErr
	}
	if res.ShardsOK < res.ShardsAsked || partialReasons > 0 {
		return res, &query.PartialError{
			Op:    "coord." + op,
			Done:  res.ShardsOK - partialReasons,
			Total: res.ShardsAsked,
			Err:   firstErr,
		}
	}
	return res, nil
}

// shard is one tile's client: a pooled set of wire connections plus the
// consecutive-failure breaker.
type shard struct {
	tile int
	addr string
	cfg  *Config

	mu        sync.Mutex
	idle      []*wireConn
	fails     int   // consecutive failures
	failTotal int64 // lifetime failures (metrics)
	queries   int64
	openUntil time.Time
	lastErr   string
}

// wireConn is one established protocol connection with its session
// state (the last timeout sent, so pooled reuse re-arms it only on
// change).
type wireConn struct {
	conn    net.Conn
	r       *bufio.Reader
	timeout time.Duration
}

func (s *shard) health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		Tile:     s.tile,
		Addr:     s.addr,
		Open:     time.Now().Before(s.openUntil),
		Fails:    s.failTotal,
		Queries:  s.queries,
		LastErr:  s.lastErr,
		IdleConn: len(s.idle),
	}
}

func (s *shard) closeIdle() {
	s.mu.Lock()
	idle := s.idle
	s.idle = nil
	s.mu.Unlock()
	for _, w := range idle {
		w.conn.Close()
	}
}

// acquire returns a pooled connection or dials a fresh one.
func (s *shard) acquire() (*wireConn, error) {
	s.mu.Lock()
	if n := len(s.idle); n > 0 {
		w := s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.mu.Unlock()
		return w, nil
	}
	s.mu.Unlock()

	if f := s.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordDial) {
		return nil, errors.New("injected dial fault")
	}
	conn, err := net.DialTimeout("tcp", s.addr, s.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	w := &wireConn{conn: conn, r: bufio.NewReader(conn)}
	conn.SetReadDeadline(time.Now().Add(s.cfg.dialTimeout()))
	greeting, err := w.readLine(s.cfg.Faults)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("greeting: %w", err)
	}
	if !strings.Contains(greeting, "ready") {
		conn.Close()
		return nil, fmt.Errorf("unexpected greeting %q", greeting)
	}
	return w, nil
}

func (s *shard) release(w *wireConn) {
	s.mu.Lock()
	s.idle = append(s.idle, w)
	s.mu.Unlock()
}

func (w *wireConn) readLine(f *faultinject.Injector) (string, error) {
	if f != nil && f.Disconnect(faultinject.SiteCoordRead) {
		w.conn.Close()
		return "", errors.New("injected read fault")
	}
	line, err := w.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// exchangeStream sends one command and hands each data line to onLine
// the moment it is read, returning the trailing status line. An onLine
// error aborts the read loop and is returned as-is, leaving the
// connection mid-stream — the caller must close it.
func (w *wireConn) exchangeStream(cmd string, f *faultinject.Injector, onLine func(string) error) (status string, err error) {
	if _, err := fmt.Fprintf(w.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	for {
		line, err := w.readLine(f)
		if err != nil {
			return "", err
		}
		if line == "ok" || strings.HasPrefix(line, "partial:") || strings.HasPrefix(line, "error:") {
			return line, nil
		}
		if err := onLine(line); err != nil {
			return "", err
		}
	}
}

// exchange is exchangeStream with the data lines collected — used for
// small fixed exchanges like timeout arming.
func (w *wireConn) exchange(cmd string, f *faultinject.Injector) (data []string, status string, err error) {
	status, err = w.exchangeStream(cmd, f, func(line string) error {
		data = append(data, line)
		return nil
	})
	return data, status, err
}

// query runs one shard command end to end: breaker gate, connection
// acquire, shard-side timeout arming, command exchange with rows parsed
// into the fan-out's merger as they stream, breaker accounting. Never
// blocks past the budget (or the configured read ceiling).
func (s *shard) query(ctx context.Context, cmd string, budget time.Duration, m *merger) shardAnswer {
	ans := shardAnswer{tile: s.tile}
	fail := func(err error) shardAnswer {
		s.recordFailure(err)
		ans.err = &ShardError{Tile: s.tile, Addr: s.addr, Err: err}
		return ans
	}

	s.mu.Lock()
	s.queries++
	open := time.Now().Before(s.openUntil)
	s.mu.Unlock()
	if open {
		ans.err = &ShardError{Tile: s.tile, Addr: s.addr, Err: ErrBreakerOpen}
		return ans
	}
	if f := s.cfg.Faults; f != nil && f.Disconnect(faultinject.SiteCoordShardDown) {
		return fail(errors.New("injected shard down"))
	}
	if err := ctx.Err(); err != nil {
		ans.err = &ShardError{Tile: s.tile, Addr: s.addr, Err: err}
		return ans
	}

	w, err := s.acquire()
	if err != nil {
		return fail(err)
	}

	// The connection read deadline is the hard backstop (shard process
	// hung); the shard-side session timeout is the soft one (shard alive
	// but the query is slow → typed partial from the shard itself).
	readCeil := s.cfg.readTimeout()
	if budget > 0 && budget < readCeil {
		readCeil = budget
	}
	w.conn.SetDeadline(time.Now().Add(readCeil + 500*time.Millisecond))

	if budget > 0 && w.timeout != budget {
		if _, status, err := w.exchange("timeout "+budget.Round(time.Millisecond).String(), s.cfg.Faults); err != nil {
			w.conn.Close()
			return fail(err)
		} else if !strings.HasPrefix(status, "ok") {
			w.conn.Close()
			return fail(fmt.Errorf("arming timeout: %s", status))
		}
		w.timeout = budget
	}

	start := time.Now()
	status, err := w.exchangeStream(cmd, s.cfg.Faults, func(line string) error {
		return parseLine(line, m, &ans)
	})
	if err != nil {
		w.conn.Close()
		if errors.Is(err, errAbortStream) {
			// The session's result sink failed — the client went away, not
			// the shard. Abandon the stream without touching the breaker.
			ans.err = &ShardError{Tile: s.tile, Addr: s.addr, Err: err}
			return ans
		}
		return fail(err)
	}
	ans.wallMS = float64(time.Since(start).Microseconds()) / 1000

	switch {
	case status == "ok":
	case strings.HasPrefix(status, "partial:"):
		ans.partial = strings.TrimSpace(strings.TrimPrefix(status, "partial:"))
	default: // error: ...
		reason := strings.TrimSpace(strings.TrimPrefix(status, "error:"))
		s.release(w) // protocol intact: the command failed, not the conn
		if m := retryAfterRe.FindStringSubmatch(reason); m != nil {
			if d, perr := time.ParseDuration(m[1]); perr == nil {
				s.recordFailure(errors.New(reason))
				ans.err = &ShardError{Tile: s.tile, Addr: s.addr,
					Err: &ShardBusyError{Tile: s.tile, RetryAfter: d}}
				return ans
			}
		}
		s.recordFailure(errors.New(reason))
		ans.err = &ShardError{Tile: s.tile, Addr: s.addr, Err: errors.New(reason)}
		return ans
	}

	s.recordSuccess()
	s.release(w)
	return ans
}

func (s *shard) recordFailure(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails++
	s.failTotal++
	s.lastErr = err.Error()
	if s.fails >= s.cfg.breakerThreshold() {
		s.openUntil = time.Now().Add(s.cfg.breakerCooldown())
	}
}

func (s *shard) recordSuccess() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fails = 0
	s.openUntil = time.Time{}
}

// parseLine decodes one shard data line — "id <N>" and "pair <A> <B>"
// rows go straight into the fan-out merger when it streams, and stage in
// the shard's answer otherwise (committed by fanout once the status line
// proves the stream complete); "stats <json>" goes into the shard's
// answer, other lines (notes) are ignored.
func parseLine(line string, m *merger, ans *shardAnswer) error {
	word, rest, _ := strings.Cut(line, " ")
	switch word {
	case "id":
		id, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return fmt.Errorf("bad id line %q: %w", line, err)
		}
		if m.streaming() {
			return m.id(id)
		}
		ans.ids = append(ans.ids, id)
		return nil
	case "pair":
		af, bf, ok := strings.Cut(strings.TrimSpace(rest), " ")
		if !ok {
			return fmt.Errorf("bad pair line %q", line)
		}
		a, err := strconv.ParseUint(af, 10, 64)
		if err != nil {
			return fmt.Errorf("bad pair line %q: %w", line, err)
		}
		b, err := strconv.ParseUint(strings.TrimSpace(bf), 10, 64)
		if err != nil {
			return fmt.Errorf("bad pair line %q: %w", line, err)
		}
		if m.streaming() {
			return m.pair([2]uint64{a, b})
		}
		ans.pairs = append(ans.pairs, [2]uint64{a, b})
		return nil
	case "stats":
		if err := json.Unmarshal([]byte(rest), &ans.stats); err != nil {
			return fmt.Errorf("bad stats line: %w", err)
		}
	default:
		// note: ... and any future informational lines are ignored.
	}
	return nil
}

// shellFormatRect renders an ownership region the way the shard verbs
// parse it (four 'g'-formatted floats; ±Inf round-trips).
func shellFormatRect(r geom.Rect) string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return f(r.MinX) + " " + f(r.MinY) + " " + f(r.MaxX) + " " + f(r.MaxY)
}
