// Failover chaos tests: replicated fleets — R live spatiald processes
// per tile, each serving the bit-identical replica snapshots written by
// partition.Write — degraded by killed processes, injected per-replica
// faults, silent shards, and restarts. The contract under test is the
// replication headline: with R=2, killing any ONE shard of a tile —
// before or in the middle of a query — yields a COMPLETE, bit-identical
// answer, never a partial; the typed-partial degradation is reserved
// for tiles with every replica down. The hedge and prober tests pin the
// two auxiliary loops: a silent replica is raced and loses without
// being charged, and a restarted replica re-enters rotation through the
// background prober alone.
package coord_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/coord"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
)

// repFleet is a booted replicated deployment: servers[t][r] serves
// replica r of tile t, table[t][r] is its (stable) address, and a/b are
// the unpartitioned ground-truth layers.
type repFleet struct {
	t       *testing.T
	dir     string
	m       *partition.Manifest
	table   [][]string
	servers [][]*server.Server
	a, b    *query.Layer
}

func bootReplicatedFleet(t *testing.T, tiles, replicas int) *repFleet {
	t.Helper()
	dir := t.TempDir()
	da := data.MustLoad("LANDC", fleetScale)
	db := data.MustLoad("LANDO", fleetScale)
	opts := partition.Options{Tiles: tiles, Replicas: replicas, Margin: fleetMargin}
	if _, err := partition.Write(dir, "a", da, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Write(dir, "b", db, opts); err != nil {
		t.Fatal(err)
	}
	m, err := partition.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := &repFleet{t: t, dir: dir, m: m, a: query.NewLayer(da), b: query.NewLayer(db)}
	f.servers = make([][]*server.Server, len(m.Tiles))
	f.table = make([][]string, len(m.Tiles))
	for ti, tile := range m.Tiles {
		for _, rep := range tile.Replicas {
			srv := f.boot(rep.Dir, "127.0.0.1:0")
			f.servers[ti] = append(f.servers[ti], srv)
			f.table[ti] = append(f.table[ti], srv.Addr().String())
		}
	}
	t.Cleanup(func() {
		for _, reps := range f.servers {
			for _, srv := range reps {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_ = srv.Shutdown(ctx) // already-killed replicas error; ignore
				cancel()
			}
		}
	})
	return f
}

// boot starts one shard process over a replica directory's snapshots.
// The addr is fixed on restart (the coordinator's routing table never
// changes), so binding retries briefly while the old socket tears down.
func (f *repFleet) boot(repDir, addr string) *server.Server {
	f.t.Helper()
	var err error
	for i := 0; i < 200; i++ {
		srv := server.New(server.Config{Addr: addr, DrainGrace: 20 * time.Millisecond})
		for _, layer := range []string{"a", "b"} {
			s, serr := store.Open(filepath.Join(f.dir, repDir, partition.SnapshotName(layer)), store.OpenOptions{})
			if serr != nil {
				f.t.Fatal(serr)
			}
			l, lerr := query.NewLayerFromSnapshot(s)
			if lerr != nil {
				f.t.Fatal(lerr)
			}
			if cerr := srv.Catalog().Set(layer, l); cerr != nil {
				f.t.Fatal(cerr)
			}
		}
		if err = srv.Start(); err == nil {
			return srv
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.t.Fatalf("boot shard %s on %s: %v", repDir, addr, err)
	return nil
}

// kill shuts one replica process down; its address stays in the routing
// table, modeling a crashed-but-not-deregistered shard.
func (f *repFleet) kill(tile, rep int) {
	f.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.servers[tile][rep].Shutdown(ctx); err != nil {
		f.t.Fatal(err)
	}
}

// restart boots a killed replica again on its original address.
func (f *repFleet) restart(tile, rep int) {
	f.t.Helper()
	f.servers[tile][rep] = f.boot(f.m.Tiles[tile].Replicas[rep].Dir, f.table[tile][rep])
}

func (f *repFleet) coordinator(t *testing.T, cfg coord.Config) *coord.Coordinator {
	t.Helper()
	cfg.Manifest = f.m
	cfg.ReplicaAddrs = f.table
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// singleJoinPairs computes the single-node ground-truth pair set.
func singleJoinPairs(t *testing.T, a, b *query.Layer) map[[2]uint64]bool {
	t.Helper()
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoinView(context.Background(), a.View(), b.View(), tester, query.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pairSet(pairs)
}

// TestFailoverHealthReportsReplicaTable pins the Health surface of a
// replicated deployment: tile-major, primary first, every breaker
// closed at boot — the ordering the shards verb and /metrics labels
// render.
func TestFailoverHealthReportsReplicaTable(t *testing.T) {
	f := bootReplicatedFleet(t, 2, 2)
	c := f.coordinator(t, coord.Config{})
	hs := c.Health()
	if len(hs) != 4 {
		t.Fatalf("Health has %d entries for 2 tiles x 2 replicas", len(hs))
	}
	for i, h := range hs {
		wantTile, wantRep := i/2, i%2
		if h.Tile != wantTile || h.Replica != wantRep {
			t.Fatalf("Health[%d] is tile %d replica %d, want %d/%d", i, h.Tile, h.Replica, wantTile, wantRep)
		}
		wantRole := "primary"
		if wantRep > 0 {
			wantRole = "replica"
		}
		if h.Role != wantRole {
			t.Fatalf("Health[%d] role %q, want %q", i, h.Role, wantRole)
		}
		if h.State != coord.BreakerClosed || h.Open {
			t.Fatalf("Health[%d] boots in state %q (open=%v), want closed", i, h.State, h.Open)
		}
		if h.Addr != f.table[wantTile][wantRep] {
			t.Fatalf("Health[%d] addr %q, want %q", i, h.Addr, f.table[wantTile][wantRep])
		}
	}
}

// TestFailoverKillOneReplicaCompletes is the headline acceptance: with
// R=2, killing a tile's primary must leave join, select, and within
// COMPLETE (err == nil, all shards accounted) and bit-identical to the
// healthy answers, with the failover visible in the retry counter and
// the corpse's failure count.
func TestFailoverKillOneReplicaCompletes(t *testing.T) {
	f := bootReplicatedFleet(t, 4, 2)
	c := f.coordinator(t, coord.Config{DialTimeout: 500 * time.Millisecond, RetryBackoff: 2 * time.Millisecond})

	healthyJoin, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("healthy join: %v", err)
	}
	want := singleJoinPairs(t, f.a, f.b)
	if len(want) == 0 || len(healthyJoin.Pairs) != len(want) {
		t.Fatalf("healthy join has %d pairs, single-node has %d", len(healthyJoin.Pairs), len(want))
	}
	wkt := "POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))"
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		t.Fatal(err)
	}
	healthySel, err := c.Select(qctx(t), "a", wkt, q.Bounds())
	if err != nil {
		t.Fatalf("healthy select: %v", err)
	}
	healthyWithin, err := c.Within(qctx(t), "a", "b", fleetMargin, "")
	if err != nil {
		t.Fatalf("healthy within: %v", err)
	}

	// Kill tile 2's primary: every query touching tile 2 must now fail
	// over to its replica.
	f.kill(2, 0)

	degJoin, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join with a killed primary: %v (want a complete answer)", err)
	}
	if degJoin.ShardsOK != 4 || degJoin.ShardsAsked != 4 {
		t.Fatalf("degraded join answered %d/%d shards, want 4/4", degJoin.ShardsOK, degJoin.ShardsAsked)
	}
	if !reflect.DeepEqual(degJoin.Pairs, healthyJoin.Pairs) {
		t.Fatal("degraded join is not bit-identical to the healthy join")
	}
	degSel, err := c.Select(qctx(t), "a", wkt, q.Bounds())
	if err != nil {
		t.Fatalf("select with a killed primary: %v", err)
	}
	if !reflect.DeepEqual(degSel.IDs, healthySel.IDs) {
		t.Fatal("degraded select is not bit-identical to the healthy select")
	}
	degWithin, err := c.Within(qctx(t), "a", "b", fleetMargin, "")
	if err != nil {
		t.Fatalf("within with a killed primary: %v", err)
	}
	if !reflect.DeepEqual(degWithin.Pairs, healthyWithin.Pairs) {
		t.Fatal("degraded within is not bit-identical to the healthy within")
	}

	if c.Totals().Retries == 0 {
		t.Error("failover served queries without counting a single retry")
	}
	if h := c.Health()[2*2]; h.Fails == 0 {
		t.Errorf("the killed primary was never charged a failure: %+v", h)
	}
}

// TestFailoverAllReplicasDownTypedPartial pins where replication's cover
// ends: with every replica of one tile dead the query degrades to the
// same typed partial an unreplicated deployment reports — a strict,
// never-wrong subset, with the shard arithmetic intact.
func TestFailoverAllReplicasDownTypedPartial(t *testing.T) {
	f := bootReplicatedFleet(t, 4, 2)
	c := f.coordinator(t, coord.Config{DialTimeout: 300 * time.Millisecond, RetryBackoff: 2 * time.Millisecond})
	f.kill(1, 0)
	f.kill(1, 1)

	res, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with every replica of tile 1 dead returned %v, want *query.PartialError", err)
	}
	if pe.Done != 3 || pe.Total != 4 {
		t.Fatalf("partial reports %d/%d shards, want 3/4", pe.Done, pe.Total)
	}
	if res.ShardsOK != 3 {
		t.Fatalf("ShardsOK = %d, want 3", res.ShardsOK)
	}
	want := singleJoinPairs(t, f.a, f.b)
	for _, p := range res.Pairs {
		if !want[p] {
			t.Fatalf("partial answer invented pair %v", p)
		}
	}
	if len(res.Pairs) == 0 || len(res.Pairs) >= len(want) {
		t.Fatalf("partial answer has %d pairs of %d; want a strict non-empty subset", len(res.Pairs), len(want))
	}
}

// TestFailoverReplicaDownInjection drives the coord.replica_down seam
// from both sides: the same injected single-attempt fault that a
// replicated tile absorbs (complete answer, one retry) degrades an
// unreplicated tile to the typed partial.
func TestFailoverReplicaDownInjection(t *testing.T) {
	t.Run("R2Absorbs", func(t *testing.T) {
		f := bootReplicatedFleet(t, 2, 2)
		inj := faultinject.New(5)
		inj.InjectAt(faultinject.SiteCoordReplicaDown, faultinject.KindDisconnect, 0)
		c := f.coordinator(t, coord.Config{Faults: inj, RetryBackoff: 2 * time.Millisecond})
		res, err := c.Join(qctx(t), "a", "b", "")
		if err != nil {
			t.Fatalf("replicated join with one injected replica-down returned %v, want complete", err)
		}
		if res.ShardsOK != 2 {
			t.Fatalf("ShardsOK = %d, want 2", res.ShardsOK)
		}
		want := singleJoinPairs(t, f.a, f.b)
		if len(res.Pairs) != len(want) {
			t.Fatalf("join has %d pairs, single-node has %d", len(res.Pairs), len(want))
		}
		if got := c.Totals().Retries; got != 1 {
			t.Fatalf("Totals().Retries = %d, want exactly 1", got)
		}
	})
	t.Run("R1Degrades", func(t *testing.T) {
		f := bootReplicatedFleet(t, 2, 1)
		inj := faultinject.New(5)
		inj.InjectAt(faultinject.SiteCoordReplicaDown, faultinject.KindDisconnect, 0)
		c := f.coordinator(t, coord.Config{Faults: inj, RetryBackoff: 2 * time.Millisecond})
		_, err := c.Join(qctx(t), "a", "b", "")
		var pe *query.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("unreplicated join with injected replica-down returned %v, want *query.PartialError", err)
		}
		if pe.Done != 1 || pe.Total != 2 {
			t.Fatalf("partial reports %d/%d shards, want 1/2", pe.Done, pe.Total)
		}
	})
}

// TestFailoverMidStreamReadFaultNoDuplicates severs one replica's
// connection in the middle of its response stream and pins the
// streaming-mode replay contract: the retry re-delivers rows the dead
// attempt already pushed, the merger's dedup suppresses them, and the
// client sees a COMPLETE answer with every pair exactly once.
func TestFailoverMidStreamReadFaultNoDuplicates(t *testing.T) {
	f := bootReplicatedFleet(t, 4, 2)
	inj := faultinject.New(7)
	// Sequence numbers at coord.read count every response line read across
	// all replicas (greetings and timeout-arming included); one firing
	// severs a single attempt mid-exchange.
	inj.InjectAt(faultinject.SiteCoordRead, faultinject.KindDisconnect, 12)
	c := f.coordinator(t, coord.Config{Faults: inj, RetryBackoff: 2 * time.Millisecond})

	var pairs [][2]uint64
	sink := coord.RowSink{Pair: func(p [2]uint64) error {
		pairs = append(pairs, p)
		return nil
	}}
	res, err := c.JoinStream(qctx(t), "a", "b", "", sink)
	if err != nil {
		t.Fatalf("streamed join with a severed attempt returned %v, want complete (failover)", err)
	}
	if res.ShardsOK != 4 {
		t.Fatalf("ShardsOK = %d, want 4", res.ShardsOK)
	}
	want := singleJoinPairs(t, f.a, f.b)
	got := map[[2]uint64]bool{}
	for _, p := range pairs {
		if got[p] {
			t.Fatalf("pair %v streamed twice: replay dedup failed", p)
		}
		got[p] = true
		if !want[p] {
			t.Fatalf("streamed pair %v not in the single-node join", p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d distinct pairs, single-node join has %d", len(got), len(want))
	}
	if inj.Fired(faultinject.SiteCoordRead, faultinject.KindDisconnect) == 0 {
		t.Fatal("the read fault never fired; the test proved nothing")
	}
}

// stubSilentShard is a listener that greets like a spatiald and then
// never answers anything — the pathological slow replica the hedge
// exists for.
func stubSilentShard(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				fmt.Fprintf(c, "spatiald ready\n")
				_, _ = io.Copy(io.Discard, c) // swallow commands, answer nothing
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestFailoverHedgeBeatsSilentReplica routes tile 0's primary slot to a
// shard that accepts and then goes silent. With the hedge armed the
// sub-query must complete from the second replica in hedge time — not
// after the read ceiling — and the silent loser is cancelled without
// being charged a breaker failure.
func TestFailoverHedgeBeatsSilentReplica(t *testing.T) {
	f := bootFleet(t, 2)
	stub := stubSilentShard(t)
	table := [][]string{{stub, f.addrs[0]}, {f.addrs[1]}}
	c, err := coord.New(coord.Config{
		Manifest:     f.m,
		ReplicaAddrs: table,
		HedgeDelay:   30 * time.Millisecond,
		DialTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	start := time.Now()
	res, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("hedged join: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("hedged join took %v; the hedge must beat the read ceiling", d)
	}
	if res.ShardsOK != 2 {
		t.Fatalf("ShardsOK = %d, want 2", res.ShardsOK)
	}
	want := f.singleJoin(t)
	if len(res.Pairs) != len(want) {
		t.Fatalf("hedged join has %d pairs, single-node has %d", len(res.Pairs), len(want))
	}
	tot := c.Totals()
	if tot.Hedges == 0 || tot.HedgesWon == 0 {
		t.Fatalf("hedge counters %+v; want at least one hedge launched and won", tot)
	}
	// The silent loser was cancelled, not failed: a hedge must never
	// charge a replica that simply lost the race.
	if h := c.Health()[0]; h.Fails != 0 || h.State != coord.BreakerClosed {
		t.Fatalf("silent replica was charged by the losing hedge: %+v", h)
	}
}

// TestFailoverProberRecovery pins the active-recovery loop end to end
// with the passive cooldown disabled (hour-long): probes alone must
// open a dead replica's breaker, a restart must re-enter rotation via a
// probe success (half-open), and the first real query closes it.
func TestFailoverProberRecovery(t *testing.T) {
	f := bootReplicatedFleet(t, 2, 1)
	c := f.coordinator(t, coord.Config{
		ProbeInterval:    15 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // passive recovery impossible; only the prober readmits
		DialTimeout:      200 * time.Millisecond,
	})

	f.kill(1, 0)
	waitHealth(t, c, 1, func(h coord.Health) bool { return h.State == coord.BreakerOpen },
		"probes never opened the dead replica's breaker")

	// With the breaker open (and no query traffic having touched the
	// corpse) the join degrades to the typed partial without dialing.
	_, err := c.Join(qctx(t), "a", "b", "")
	var pe *query.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("join with a probe-opened breaker returned %v, want *query.PartialError", err)
	}

	f.restart(1, 0)
	waitHealth(t, c, 1, func(h coord.Health) bool { return h.State == coord.BreakerHalfOpen },
		"a probe success never half-opened the restarted replica's breaker")

	res, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join after prober readmission: %v", err)
	}
	if res.ShardsOK != 2 {
		t.Fatalf("ShardsOK = %d, want 2", res.ShardsOK)
	}
	want := singleJoinPairs(t, f.a, f.b)
	if len(res.Pairs) != len(want) {
		t.Fatalf("recovered join has %d pairs, single-node has %d", len(res.Pairs), len(want))
	}
	if h := c.Health()[1]; h.State != coord.BreakerClosed || h.ConsecFails != 0 {
		t.Fatalf("trial success did not close the breaker: %+v", h)
	}
	tot := c.Totals()
	if tot.Probes == 0 || tot.ProbeFails == 0 {
		t.Fatalf("probe counters %+v; want probes and probe failures recorded", tot)
	}
}

// waitHealth polls one replica's Health until cond holds.
func waitHealth(t *testing.T, c *coord.Coordinator, idx int, cond func(coord.Health) bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(c.Health()[idx]) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s: %+v", msg, c.Health()[idx])
}

// TestFailoverChaosKillAnyOneShard is the kill-any-one acceptance loop:
// four rounds each kill a different replica (never two of one tile) in
// the MIDDLE of a running join, at varying points of the stream; every
// join must come back complete and bit-identical to the healthy
// baseline, including the final round where every tile has exactly one
// corpse. Run with -race in CI.
func TestFailoverChaosKillAnyOneShard(t *testing.T) {
	f := bootReplicatedFleet(t, 4, 2)
	c := f.coordinator(t, coord.Config{
		DialTimeout:      500 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		BreakerThreshold: 2,
	})
	baseline, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("healthy baseline join: %v", err)
	}
	want := singleJoinPairs(t, f.a, f.b)
	if len(baseline.Pairs) != len(want) {
		t.Fatalf("baseline join has %d pairs, single-node has %d", len(baseline.Pairs), len(want))
	}

	type out struct {
		res coord.Result
		err error
	}
	for round := 0; round < 4; round++ {
		done := make(chan out, 1)
		go func() {
			res, err := c.Join(qctx(t), "a", "b", "")
			done <- out{res, err}
		}()
		// Vary where in the stream the kill lands round to round.
		time.Sleep(time.Duration(round) * 2 * time.Millisecond)
		f.kill(round, round%2)
		o := <-done
		if o.err != nil {
			t.Fatalf("round %d: join with replica %d/%d killed mid-query returned %v, want complete",
				round, round, round%2, o.err)
		}
		if o.res.ShardsOK != 4 {
			t.Fatalf("round %d: ShardsOK = %d, want 4", round, o.res.ShardsOK)
		}
		if !reflect.DeepEqual(o.res.Pairs, baseline.Pairs) {
			t.Fatalf("round %d: mid-kill join is not bit-identical to the baseline", round)
		}
	}

	// Every tile now has exactly one live replica; the fleet must still
	// answer completely, joins and selections alike.
	res, err := c.Join(qctx(t), "a", "b", "")
	if err != nil {
		t.Fatalf("join with one corpse per tile: %v", err)
	}
	if !reflect.DeepEqual(res.Pairs, baseline.Pairs) {
		t.Fatal("single-survivor join is not bit-identical to the baseline")
	}
	wres, err := c.Within(qctx(t), "a", "b", fleetMargin, "")
	if err != nil {
		t.Fatalf("within with one corpse per tile: %v", err)
	}
	if wres.ShardsOK != 4 {
		t.Fatalf("within answered %d/4 shards", wres.ShardsOK)
	}
}
