package sweep

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestPolygonIsSimpleKnown(t *testing.T) {
	cases := []struct {
		name  string
		verts []geom.Point
		want  bool
	}{
		{"square", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}, true},
		{"L", []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 3}, {X: 0, Y: 3}}, true},
		{"bowtie", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 2, Y: 0}, {X: 0, Y: 2}}, false},
		{"spike", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 2}}, false},
		{"pinch", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 1, Y: 0}, {X: 0, Y: 2}}, false},
		{"zero edge", []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 1}}, false},
		{"triangle", []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 3}}, true},
		{"vertical edges", []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 2}, {X: 0, Y: 2}}, true},
	}
	for _, tc := range cases {
		p := &geom.Polygon{Verts: tc.verts}
		p.Recompute()
		if got := PolygonIsSimple(p); got != tc.want {
			t.Errorf("%s: PolygonIsSimple = %v, want %v", tc.name, got, tc.want)
		}
		if got := p.IsSimple(); got != tc.want {
			t.Errorf("%s: quadratic IsSimple = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPolygonIsSimpleMatchesQuadratic compares the sweep against the
// quadratic oracle on random polygons — both simple (stars) and mostly
// non-simple (random vertex orderings, integer grids for degeneracy).
func TestPolygonIsSimpleMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	simpleCount, nonSimpleCount := 0, 0
	for trial := range 800 {
		var p *geom.Polygon
		switch trial % 3 {
		case 0: // star-shaped: always simple
			n := 3 + rng.Intn(25)
			pts := make([]geom.Point, n)
			step := 2 * math.Pi / float64(n)
			for i := range pts {
				a := float64(i)*step + rng.Float64()*step*0.9
				r := 1 + 4*rng.Float64()
				pts[i] = geom.Pt(10+r*math.Cos(a), 10+r*math.Sin(a))
			}
			p = geom.MustPolygon(pts...)
		case 1: // random float vertices: usually non-simple
			n := 4 + rng.Intn(12)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
			}
			p = geom.MustPolygon(pts...)
		default: // integer grid: degenerate touches and collinearity
			n := 4 + rng.Intn(8)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(float64(rng.Intn(6)), float64(rng.Intn(6)))
			}
			p = &geom.Polygon{Verts: pts}
			p.Recompute()
		}
		want := p.IsSimple()
		if want {
			simpleCount++
		} else {
			nonSimpleCount++
		}
		if got := PolygonIsSimple(p); got != want {
			t.Fatalf("trial %d: sweep = %v, quadratic = %v for %v", trial, got, want, p.Verts)
		}
	}
	if simpleCount == 0 || nonSimpleCount == 0 {
		t.Fatalf("workload unbalanced: %d simple, %d non-simple", simpleCount, nonSimpleCount)
	}
}

func TestPolygonIsSimpleGeneratedData(t *testing.T) {
	// All generator outputs must pass the fast check (they are simple by
	// construction); this also exercises large inputs the quadratic oracle
	// cannot afford.
	rng := rand.New(rand.NewSource(132))
	for range 20 {
		n := 500 + rng.Intn(3000)
		pts := make([]geom.Point, n)
		step := 2 * math.Pi / float64(n)
		for i := range pts {
			a := float64(i)*step + rng.Float64()*step*0.9
			r := 5 + 5*rng.Float64()
			pts[i] = geom.Pt(100+r*math.Cos(a), 100+r*math.Sin(a))
		}
		p := geom.MustPolygon(pts...)
		if !PolygonIsSimple(p) {
			t.Fatal("large star rejected")
		}
	}
}

func BenchmarkPolygonIsSimple(b *testing.B) {
	rng := rand.New(rand.NewSource(133))
	n := 2000
	pts := make([]geom.Point, n)
	step := 2 * math.Pi / float64(n)
	for i := range pts {
		a := float64(i)*step + rng.Float64()*step*0.9
		pts[i] = geom.Pt(100*math.Cos(a), 100*math.Sin(a))
	}
	p := geom.MustPolygon(pts...)
	b.Run("sweep", func(b *testing.B) {
		for range b.N {
			PolygonIsSimple(p)
		}
	})
	b.Run("quadratic", func(b *testing.B) {
		for range b.N {
			p.IsSimple()
		}
	})
}
