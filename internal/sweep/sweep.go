package sweep

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// CrossIntersectsBrute reports whether any red segment intersects any blue
// segment by testing every pair. O(n·m); the correctness oracle for the
// faster algorithms.
func CrossIntersectsBrute(red, blue []geom.Segment) bool {
	for _, r := range red {
		rb := r.Bounds()
		for _, b := range blue {
			if rb.Intersects(b.Bounds()) && r.Intersects(b) {
				return true
			}
		}
	}
	return false
}

// CrossIntersectsForwardScan reports whether any red segment intersects any
// blue segment using a sort + forward-scan sweep: segments are sorted by
// their minimum x, and each segment is compared against the following
// segments until their x-ranges separate, with a y-overlap pre-test. Exact
// for every input; near O((n+m)·log(n+m)) on GIS data whose edges are short
// relative to the extent.
func CrossIntersectsForwardScan(red, blue []geom.Segment) bool {
	type entry struct {
		seg  geom.Segment
		b    geom.Rect
		blue bool
	}
	items := make([]entry, 0, len(red)+len(blue))
	for _, s := range red {
		items = append(items, entry{s, s.Bounds(), false})
	}
	for _, s := range blue {
		items = append(items, entry{s, s.Bounds(), true})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].b.MinX < items[j].b.MinX })
	for i := range items {
		ei := &items[i]
		for j := i + 1; j < len(items); j++ {
			ej := &items[j]
			if ej.b.MinX > ei.b.MaxX {
				break
			}
			if ei.blue == ej.blue {
				continue
			}
			if ei.b.MinY <= ej.b.MaxY && ej.b.MinY <= ei.b.MaxY && ei.seg.Intersects(ej.seg) {
				return true
			}
		}
	}
	return false
}

// eventKind distinguishes segment insertion from removal in the sweep.
type eventKind uint8

const (
	evInsert eventKind = iota // left endpoint reached
	evRemove                  // right endpoint reached
)

// sweepState carries the shared state of one plane-sweep run.
type sweepState struct {
	segs []geom.Segment // normalized left-to-right
	blue []bool         // class of each segment
	x    float64        // current sweep position
}

// yAt returns the y coordinate of segment i at sweep position x. Vertical
// segments report their minimum y.
func (st *sweepState) yAt(i int) float64 {
	s := st.segs[i]
	if s.A.X == s.B.X {
		return s.A.Y
	}
	t := (st.x - s.A.X) / (s.B.X - s.A.X)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return s.A.Y + t*(s.B.Y-s.A.Y)
}

// slope returns dy/dx of segment i, with +Inf for vertical segments so that
// at a shared point verticals order above everything else.
func (st *sweepState) slope(i int) float64 {
	s := st.segs[i]
	if s.A.X == s.B.X {
		return math.Inf(1)
	}
	return (s.B.Y - s.A.Y) / (s.B.X - s.A.X)
}

// compare orders two status items at the current sweep position: by y, then
// by slope (the order just right of a shared point), then by index.
func (st *sweepState) compare(a, b int) int {
	if a == b {
		return 0
	}
	ya, yb := st.yAt(a), st.yAt(b)
	switch {
	case ya < yb:
		return -1
	case ya > yb:
		return 1
	}
	sa, sb := st.slope(a), st.slope(b)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	}
	switch {
	case a < b:
		return -1
	default:
		return 1
	}
}

// CrossIntersects reports whether any red segment intersects any blue
// segment using the plane-sweep algorithm with a red-black status tree, as
// in the paper's software segment intersection test. It assumes the red set
// and the blue set are each internally non-crossing (true for the edge
// chains of simple polygons), which is what makes neighbor checks
// sufficient; intersections *between* the classes are detected exactly.
//
// This convenience wrapper allocates fresh working storage; batch callers
// should hold a Sweeper and call its method of the same name.
func CrossIntersects(red, blue []geom.Segment) bool {
	var sw Sweeper
	return sw.CrossIntersects(red, blue)
}

// normalize orients s left to right, and bottom to top when vertical, so
// that A is the insert endpoint of the sweep.
func normalize(s geom.Segment) geom.Segment {
	if s.A.X > s.B.X || (s.A.X == s.B.X && s.A.Y > s.B.Y) {
		s.A, s.B = s.B, s.A
	}
	return s
}
