package sweep

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randSegs generates n random segments with integer coordinates in
// [0, span), producing frequent collinear and touching configurations.
func randSegs(rng *rand.Rand, n, span int) []geom.Segment {
	out := make([]geom.Segment, n)
	for i := range out {
		out[i] = geom.Seg(
			geom.Pt(float64(rng.Intn(span)), float64(rng.Intn(span))),
			geom.Pt(float64(rng.Intn(span)), float64(rng.Intn(span))),
		)
	}
	return out
}

// randChain generates a non-self-crossing chain of n segments (consecutive
// segments share endpoints), modeling polygon boundaries.
func randChain(rng *rand.Rand, n int, span float64) []geom.Segment {
	// A star-shaped closed chain is guaranteed non-self-crossing.
	cx, cy := rng.Float64()*span, rng.Float64()*span
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	sortFloats(angles)
	pts := make([]geom.Point, n)
	for i, a := range angles {
		r := span * (0.1 + 0.4*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	segs := make([]geom.Segment, 0, n)
	for i := range n {
		s := geom.Seg(pts[i], pts[(i+1)%n])
		if !s.A.Eq(s.B) {
			segs = append(segs, s)
		}
	}
	return segs
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestCrossIntersectsSimpleCases(t *testing.T) {
	cross := []geom.Segment{geom.Seg(geom.Pt(0, 0), geom.Pt(2, 2))}
	hit := []geom.Segment{geom.Seg(geom.Pt(0, 2), geom.Pt(2, 0))}
	miss := []geom.Segment{geom.Seg(geom.Pt(5, 5), geom.Pt(6, 6))}
	touch := []geom.Segment{geom.Seg(geom.Pt(2, 2), geom.Pt(3, 0))}
	vertical := []geom.Segment{geom.Seg(geom.Pt(1, -1), geom.Pt(1, 3))}

	for name, fn := range map[string]func(a, b []geom.Segment) bool{
		"sweep":   CrossIntersects,
		"forward": CrossIntersectsForwardScan,
		"brute":   CrossIntersectsBrute,
	} {
		if !fn(cross, hit) {
			t.Errorf("%s: crossing pair missed", name)
		}
		if fn(cross, miss) {
			t.Errorf("%s: disjoint pair reported", name)
		}
		if !fn(cross, touch) {
			t.Errorf("%s: endpoint touch missed", name)
		}
		if !fn(cross, vertical) {
			t.Errorf("%s: vertical crossing missed", name)
		}
		if fn(nil, hit) || fn(cross, nil) {
			t.Errorf("%s: empty input reported intersection", name)
		}
	}
}

// TestSweepMatchesBruteOnChains compares the plane sweep and forward scan
// against brute force on internally non-crossing chains, the precondition
// the plane sweep assumes (polygon boundaries).
func TestSweepMatchesBruteOnChains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := range 500 {
		red := randChain(rng, 3+rng.Intn(20), 10)
		blue := randChain(rng, 3+rng.Intn(20), 10)
		want := CrossIntersectsBrute(red, blue)
		if got := CrossIntersects(red, blue); got != want {
			t.Fatalf("trial %d: sweep = %v, brute = %v\nred=%v\nblue=%v", trial, got, want, red, blue)
		}
		if got := CrossIntersectsForwardScan(red, blue); got != want {
			t.Fatalf("trial %d: forward = %v, brute = %v", trial, got, want)
		}
	}
}

// TestForwardScanMatchesBruteAdversarial uses random integer segments
// (internally crossing, collinear, degenerate) — the forward scan must be
// exact on arbitrary input even though the plane sweep is not required to
// be.
func TestForwardScanMatchesBruteAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := range 400 {
		red := randSegs(rng, 1+rng.Intn(15), 8)
		blue := randSegs(rng, 1+rng.Intn(15), 8)
		want := CrossIntersectsBrute(red, blue)
		if got := CrossIntersectsForwardScan(red, blue); got != want {
			t.Fatalf("trial %d: forward = %v, brute = %v\nred=%v\nblue=%v", trial, got, want, red, blue)
		}
	}
}

// TestSweepNeverFalsePositive: the plane sweep only reports pairs verified
// by the exact segment test, so on ANY input a positive must be real.
func TestSweepNeverFalsePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for range 300 {
		red := randSegs(rng, 1+rng.Intn(10), 6)
		blue := randSegs(rng, 1+rng.Intn(10), 6)
		if CrossIntersects(red, blue) && !CrossIntersectsBrute(red, blue) {
			t.Fatalf("false positive\nred=%v\nblue=%v", red, blue)
		}
	}
}

func polyFromPts(pts ...geom.Point) *geom.Polygon { return geom.MustPolygon(pts...) }

func TestPolygonsIntersectBasic(t *testing.T) {
	a := polyFromPts(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	overlapping := polyFromPts(geom.Pt(2, 2), geom.Pt(6, 2), geom.Pt(6, 6), geom.Pt(2, 6))
	contained := polyFromPts(geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(2, 2), geom.Pt(1, 2))
	disjoint := polyFromPts(geom.Pt(10, 10), geom.Pt(11, 10), geom.Pt(11, 11), geom.Pt(10, 11))
	touching := polyFromPts(geom.Pt(4, 0), geom.Pt(8, 0), geom.Pt(8, 4), geom.Pt(4, 4))
	// MBRs overlap but the polygons are disjoint (diagonal neighbors around
	// a concave gap).
	lShape := polyFromPts(geom.Pt(0, 0), geom.Pt(6, 0), geom.Pt(6, 1), geom.Pt(1, 1), geom.Pt(1, 6), geom.Pt(0, 6))
	inNotch := polyFromPts(geom.Pt(3, 3), geom.Pt(5, 3), geom.Pt(5, 5), geom.Pt(3, 5))

	for _, alg := range []Algorithm{PlaneSweep, ForwardScan, BruteForce} {
		opt := Options{Algorithm: alg}
		if !PolygonsIntersect(a, overlapping, opt) {
			t.Errorf("alg %d: overlapping missed", alg)
		}
		if !PolygonsIntersect(a, contained, opt) || !PolygonsIntersect(contained, a, opt) {
			t.Errorf("alg %d: containment missed", alg)
		}
		if PolygonsIntersect(a, disjoint, opt) {
			t.Errorf("alg %d: disjoint reported", alg)
		}
		if !PolygonsIntersect(a, touching, opt) {
			t.Errorf("alg %d: edge touch missed", alg)
		}
		if PolygonsIntersect(lShape, inNotch, opt) {
			t.Errorf("alg %d: notch non-intersection reported", alg)
		}
	}
}

// star builds a random star-shaped polygon (always simple).
func star(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.9
	}
	pts := make([]geom.Point, n)
	for i, a := range angles {
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

func TestPolygonsIntersectAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := range 400 {
		p := star(rng, rng.Float64()*10, rng.Float64()*10, 1+rng.Float64()*4, 3+rng.Intn(30))
		q := star(rng, rng.Float64()*10, rng.Float64()*10, 1+rng.Float64()*4, 3+rng.Intn(30))
		want := PolygonsIntersect(p, q, Options{Algorithm: BruteForce})
		if got := PolygonsIntersect(p, q, Options{Algorithm: PlaneSweep}); got != want {
			t.Fatalf("trial %d: sweep = %v, brute = %v", trial, got, want)
		}
		if got := PolygonsIntersect(p, q, Options{Algorithm: ForwardScan}); got != want {
			t.Fatalf("trial %d: forward = %v, brute = %v", trial, got, want)
		}
		// The restricted search space must not change results.
		if got := PolygonsIntersect(p, q, Options{Algorithm: BruteForce, NoRestrictSearch: true}); got != want {
			t.Fatalf("trial %d: unrestricted = %v, restricted = %v", trial, got, want)
		}
	}
}

func TestCandidateEdges(t *testing.T) {
	a := polyFromPts(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	b := polyFromPts(geom.Pt(3, 3), geom.Pt(6, 3), geom.Pt(6, 6), geom.Pt(3, 6))
	red, blue := CandidateEdges(a, b)
	if len(red) == 0 || len(blue) == 0 {
		t.Fatal("expected candidate edges for overlapping polygons")
	}
	// Common region is [3,3 - 4,4]; only a's top and right edges touch it.
	if len(red) != 2 {
		t.Errorf("len(red) = %d, want 2", len(red))
	}
	far := polyFromPts(geom.Pt(100, 100), geom.Pt(101, 100), geom.Pt(101, 101))
	red, blue = CandidateEdges(a, far)
	if red != nil || blue != nil {
		t.Error("expected nil candidates for disjoint MBRs")
	}
}
