package sweep

import (
	"slices"

	"repro/internal/geom"
)

// event is one sweep event: a segment's left or right endpoint.
type event struct {
	x    float64
	kind eventKind
	idx  int32
}

// Sweeper runs plane-sweep intersection detections with all working
// storage (segment tables, event queue, status-tree nodes) reused across
// runs, so a query processor performing millions of pair tests does not
// allocate per pair. A Sweeper is not safe for concurrent use; create one
// per worker, like a Tester.
type Sweeper struct {
	st     sweepState
	events []event
	nodes  []*node
	arena  []node
	// tree is the reusable status structure. Its comparator closure is
	// bound to &st once on first use — binding a method value per call
	// allocates, which the steady-state zero-allocation contract
	// (core's AllocsPerRun tests) forbids.
	tree rbtree

	// Candidate-edge buffers for BoundariesIntersect.
	redBuf, blueBuf []geom.Segment
}

// NewSweeper returns a Sweeper with empty buffers; they grow to the size
// of the largest input seen.
func NewSweeper() *Sweeper { return &Sweeper{} }

// CrossIntersects reports whether any red segment intersects any blue
// segment; see the package-level CrossIntersects for the algorithm and its
// preconditions.
func (sw *Sweeper) CrossIntersects(red, blue []geom.Segment) bool {
	if len(red) == 0 || len(blue) == 0 {
		return false
	}
	n := len(red) + len(blue)
	st := &sw.st
	st.segs = st.segs[:0]
	st.blue = st.blue[:0]
	for _, s := range red {
		st.segs = append(st.segs, normalize(s))
		st.blue = append(st.blue, false)
	}
	for _, s := range blue {
		st.segs = append(st.segs, normalize(s))
		st.blue = append(st.blue, true)
	}

	events := sw.events[:0]
	for i, s := range st.segs {
		events = append(events,
			event{s.A.X, evInsert, int32(i)},
			event{s.B.X, evRemove, int32(i)},
		)
	}
	sw.events = events
	// Inserts before removes at equal x so that segments meeting at a
	// point coexist in the status and get neighbor-checked.
	slices.SortFunc(events, func(a, b event) int {
		switch {
		case a.x < b.x:
			return -1
		case a.x > b.x:
			return 1
		case a.kind != b.kind:
			return int(a.kind) - int(b.kind)
		default:
			return 0
		}
	})

	if cap(sw.nodes) < n {
		sw.nodes = make([]*node, n)
	}
	nodes := sw.nodes[:n]
	if cap(sw.arena) < n {
		sw.arena = make([]node, n)
	}
	arena := sw.arena[:n]
	arenaNext := 0

	if sw.tree.cmp == nil {
		sw.tree.cmp = st.compare
	}
	sw.tree.root = nil
	sw.tree.size = 0
	tree := &sw.tree

	check := func(a, b *node) bool {
		if a == nil || b == nil {
			return false
		}
		if st.blue[a.item] == st.blue[b.item] {
			return false
		}
		return st.segs[a.item].Intersects(st.segs[b.item])
	}

	for _, ev := range events {
		st.x = ev.x
		idx := int(ev.idx)
		if ev.kind == evInsert {
			nd := &arena[arenaNext]
			arenaNext++
			*nd = node{item: idx}
			tree.InsertNode(nd)
			nodes[idx] = nd
			prev, next := tree.Prev(nd), tree.Next(nd)
			if check(nd, prev) || check(nd, next) {
				return true
			}
			// Walk any bundle of status items passing through the same
			// point: ties hide cross-class touches behind same-class
			// neighbors.
			y := st.yAt(idx)
			for p := prev; p != nil && st.yAt(p.item) == y; p = tree.Prev(p) {
				if check(nd, p) {
					return true
				}
			}
			for nx := next; nx != nil && st.yAt(nx.item) == y; nx = tree.Next(nx) {
				if check(nd, nx) {
					return true
				}
			}
		} else {
			nd := nodes[idx]
			prev, next := tree.Prev(nd), tree.Next(nd)
			tree.Delete(nd)
			nodes[idx] = nil
			if check(prev, next) {
				return true
			}
		}
	}
	return false
}

// BoundariesIntersect is the polygon-level software segment test using
// this Sweeper's reusable storage, including reuse of the candidate-edge
// buffers.
func (sw *Sweeper) BoundariesIntersect(p, q *geom.Polygon, opt Options) bool {
	if opt.Algorithm != PlaneSweep {
		return BoundariesIntersect(p, q, opt)
	}
	var red, blue []geom.Segment
	if opt.NoRestrictSearch {
		red = appendEdgesInRect(sw.redBuf[:0], p, p.Bounds())
		blue = appendEdgesInRect(sw.blueBuf[:0], q, q.Bounds())
	} else {
		red, blue = CandidateEdgesInto(p, q, sw.redBuf, sw.blueBuf)
	}
	if red != nil {
		sw.redBuf = red[:0]
	}
	if blue != nil {
		sw.blueBuf = blue[:0]
	}
	return sw.CrossIntersects(red, blue)
}
