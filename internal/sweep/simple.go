package sweep

import (
	"slices"

	"repro/internal/geom"
)

// PolygonIsSimple reports whether p is a simple polygon — no two
// non-adjacent edges share a point, and adjacent edges share only their
// common endpoint — in O(n log n) via a Shamos–Hoey sweep. It is the
// scalable replacement for geom.Polygon.IsSimple, whose quadratic check
// is only practical for small inputs; the two agree on every input.
func PolygonIsSimple(p *geom.Polygon) bool {
	n := p.NumVerts()
	if n < 3 {
		return false
	}
	st := &sweepState{
		segs: make([]geom.Segment, 0, n),
		blue: make([]bool, n), // unused by the simplicity check
	}
	for i := range n {
		e := p.Edge(i)
		if e.A.Eq(e.B) {
			return false // degenerate zero-length edge
		}
		st.segs = append(st.segs, normalize(e))
	}

	events := make([]event, 0, 2*n)
	for i, s := range st.segs {
		events = append(events,
			event{s.A.X, evInsert, int32(i)},
			event{s.B.X, evRemove, int32(i)},
		)
	}
	slices.SortFunc(events, func(a, b event) int {
		switch {
		case a.x < b.x:
			return -1
		case a.x > b.x:
			return 1
		case a.kind != b.kind:
			return int(a.kind) - int(b.kind)
		default:
			return 0
		}
	})

	nodes := make([]*node, n)
	arena := make([]node, n)
	arenaNext := 0
	tree := rbtree{cmp: st.compare}

	// conflict reports whether edges i and j make the polygon non-simple:
	// any contact between non-adjacent edges, or contact beyond the shared
	// endpoint between adjacent ones.
	conflict := func(a, b *node) bool {
		if a == nil || b == nil {
			return false
		}
		i, j := a.item, b.item
		si, sj := p.Edge(i), p.Edge(j) // original orientation for adjacency logic
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		switch {
		case hi == lo+1:
			return adjacentConflict(si, sj, p.Verts[hi])
		case lo == 0 && hi == n-1:
			return adjacentConflict(sj, si, p.Verts[0])
		default:
			return si.Intersects(sj)
		}
	}

	for _, ev := range events {
		st.x = ev.x
		idx := int(ev.idx)
		if ev.kind == evInsert {
			nd := &arena[arenaNext]
			arenaNext++
			*nd = node{item: idx}
			tree.InsertNode(nd)
			nodes[idx] = nd
			prev, next := tree.Prev(nd), tree.Next(nd)
			if conflict(nd, prev) || conflict(nd, next) {
				return false
			}
			y := st.yAt(idx)
			for pn := prev; pn != nil && st.yAt(pn.item) == y; pn = tree.Prev(pn) {
				if conflict(nd, pn) {
					return false
				}
			}
			for nx := next; nx != nil && st.yAt(nx.item) == y; nx = tree.Next(nx) {
				if conflict(nd, nx) {
					return false
				}
			}
		} else {
			nd := nodes[idx]
			prev, next := tree.Prev(nd), tree.Next(nd)
			tree.Delete(nd)
			nodes[idx] = nil
			if conflict(prev, next) {
				return false
			}
		}
	}
	return true
}

// adjacentConflict reports whether consecutive edges a (ending at shared)
// and b (starting at shared) touch anywhere besides their shared endpoint:
// a proper crossing, or a collinear fold-back where one edge's far
// endpoint lies on the other.
func adjacentConflict(a, b geom.Segment, shared geom.Point) bool {
	if a.IntersectsProper(b) {
		return true
	}
	for _, q := range []geom.Point{a.A, a.B} {
		if !q.Eq(shared) && geom.Orient(b.A, b.B, q) == geom.Collinear && b.Bounds().ContainsPoint(q) {
			return true
		}
	}
	for _, q := range []geom.Point{b.A, b.B} {
		if !q.Eq(shared) && geom.Orient(a.A, a.B, q) == geom.Collinear && a.Bounds().ContainsPoint(q) {
			return true
		}
	}
	return false
}
