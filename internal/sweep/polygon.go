package sweep

import "repro/internal/geom"

// Algorithm selects the segment-intersection detection algorithm used by
// PolygonsIntersect.
type Algorithm int

// Available detection algorithms.
const (
	// PlaneSweep is the paper's red-black-tree plane sweep.
	PlaneSweep Algorithm = iota
	// ForwardScan is the sort + forward-scan sweep.
	ForwardScan
	// BruteForce tests all edge pairs; for testing and tiny inputs.
	BruteForce
)

// Options configure the software polygon intersection test.
type Options struct {
	// Algorithm picks the segment detection algorithm. Default PlaneSweep.
	Algorithm Algorithm
	// NoRestrictSearch disables the restricted-search-space optimization
	// (clipping candidate edges to the intersection of the two MBRs, §4.1.1
	// of the paper, worth 30–40% there). On by default; the flag exists for
	// the ablation benchmark.
	NoRestrictSearch bool
}

// PolygonsIntersect is the software intersection test of the paper (§3.1):
// a linear point-in-polygon containment check in both directions, followed
// by a segment intersection test between the boundary chains. Boundary
// touches count as intersection (closed-region semantics).
func PolygonsIntersect(p, q *geom.Polygon, opt Options) bool {
	if !p.Bounds().Intersects(q.Bounds()) {
		return false
	}
	if ContainmentPossible(p, q) {
		return true
	}
	return BoundariesIntersect(p, q, opt)
}

// ContainmentPossible runs step 1 of the software test: it reports true
// when a vertex of one polygon lies inside (or on) the other, which covers
// full containment either way and many overlap cases. A false result rules
// out containment but not boundary intersection.
func ContainmentPossible(p, q *geom.Polygon) bool {
	return q.ContainsPoint(p.Verts[0]) || p.ContainsPoint(q.Verts[0])
}

// BoundariesIntersect runs step 2 of the software test: whether the edge
// chains of p and q share a point.
func BoundariesIntersect(p, q *geom.Polygon, opt Options) bool {
	var red, blue []geom.Segment
	if opt.NoRestrictSearch {
		red = edges(p, nil)
		blue = edges(q, nil)
	} else {
		// Restricted search space: any boundary intersection point lies in
		// both MBRs, so only edges touching the common region can matter.
		common := p.Bounds().Intersection(q.Bounds())
		red = edgesInRect(p, common)
		if len(red) == 0 {
			return false
		}
		blue = edgesInRect(q, common)
		if len(blue) == 0 {
			return false
		}
	}
	switch opt.Algorithm {
	case ForwardScan:
		return CrossIntersectsForwardScan(red, blue)
	case BruteForce:
		return CrossIntersectsBrute(red, blue)
	default:
		return CrossIntersects(red, blue)
	}
}

// edges appends all edges of p to dst and returns it.
func edges(p *geom.Polygon, dst []geom.Segment) []geom.Segment {
	for i := range p.NumEdges() {
		dst = append(dst, p.Edge(i))
	}
	return dst
}

// EdgesInRectInto selects the edges of p and q touching the region r,
// appending into caller-provided buffers (reset to length zero first). The
// hardware within-distance test uses it to submit only the boundary
// reaches near the pair's viewport. Either result is nil when empty, in
// which case the other may be left short.
func EdgesInRectInto(p, q *geom.Polygon, r geom.Rect, redBuf, blueBuf []geom.Segment) (red, blue []geom.Segment) {
	red = appendEdgesInRect(redBuf[:0], p, r)
	if len(red) == 0 {
		return nil, nil
	}
	blue = appendEdgesInRect(blueBuf[:0], q, r)
	if len(blue) == 0 {
		return nil, nil
	}
	return red, blue
}

// edgesInRect returns the edges of p that have at least one point in r.
func edgesInRect(p *geom.Polygon, r geom.Rect) []geom.Segment {
	return appendEdgesInRect(nil, p, r)
}

// appendEdgesInRect appends the edges of p that have at least one point in
// r to dst. The loop tests the edge's bounding box first so edges far from
// the common region cost four comparisons.
func appendEdgesInRect(dst []geom.Segment, p *geom.Polygon, r geom.Rect) []geom.Segment {
	return AppendEdgesInRange(dst, p, r, 0, len(p.Verts))
}

// AppendEdgesInRange appends the edges i in [lo, hi) of p that have at
// least one point in r to dst, in chain order. It is the single edge
// selection predicate shared by the linear scan and the edge index
// (internal/edgeindex), which guarantees the two produce identical edge
// sets: the index only decides which ranges to hand to this function.
func AppendEdgesInRange(dst []geom.Segment, p *geom.Polygon, r geom.Rect, lo, hi int) []geom.Segment {
	verts := p.Verts
	n := len(verts)
	for i := lo; i < hi; i++ {
		a := verts[i]
		b := verts[0]
		if i+1 < n {
			b = verts[i+1]
		}
		// Cheap bbox reject before the exact segment-rectangle test.
		if (a.X < r.MinX && b.X < r.MinX) || (a.X > r.MaxX && b.X > r.MaxX) ||
			(a.Y < r.MinY && b.Y < r.MinY) || (a.Y > r.MaxY && b.Y > r.MaxY) {
			continue
		}
		e := geom.Segment{A: a, B: b}
		if r.IntersectsSegment(e) {
			dst = append(dst, e)
		}
	}
	return dst
}

// CandidateEdges exposes the restricted-search-space edge selection for
// reuse by the hardware-assisted test, which renders exactly the same edge
// subsets that the software test would sweep.
func CandidateEdges(p, q *geom.Polygon) (red, blue []geom.Segment) {
	return CandidateEdgesInto(p, q, nil, nil)
}

// CandidateEdgesInto is CandidateEdges appending into caller-provided
// backing slices (reset to length zero first), so per-pair hot paths can
// run allocation-free.
func CandidateEdgesInto(p, q *geom.Polygon, redBuf, blueBuf []geom.Segment) (red, blue []geom.Segment) {
	common := p.Bounds().Intersection(q.Bounds())
	red = appendEdgesInRect(redBuf[:0], p, common)
	if len(red) == 0 {
		return nil, nil
	}
	blue = appendEdgesInRect(blueBuf[:0], q, common)
	if len(blue) == 0 {
		return nil, nil
	}
	return red, blue
}
