// Package sweep implements segment-intersection detection between two edge
// sets ("red" and "blue"), the core of the software refinement step for
// intersection queries. Three algorithms are provided:
//
//   - CrossIntersects: the plane-sweep (Shamos–Hoey style) detection the
//     paper uses, with a red-black tree as the sweep status structure.
//     O((n+m)log(n+m)) when the inputs are internally non-crossing, which
//     edge chains of simple polygons are.
//   - CrossIntersectsForwardScan: a sort + forward-scan sweep that tests
//     every pair whose x- and y-ranges overlap. Exact by construction and
//     very fast on GIS-like data whose edges are short.
//   - CrossIntersectsBrute: the O(n·m) all-pairs baseline, for testing.
//
// Polygon-level entry points (the paper's two-step software intersection
// test with the restricted-search-space optimization) are in polygon.go.
package sweep

// color of a red-black tree node.
type color bool

const (
	red   color = false
	black color = true
)

// node is a red-black tree node holding one status-structure item.
type node struct {
	item                int
	parent, left, right *node
	color               color
}

// rbtree is an intrusive red-black tree ordered by a caller-supplied
// comparator. It exposes neighbor navigation (Prev/Next) and deletion by
// node pointer, which the sweep needs: status items are deleted when their
// segment leaves the sweep line, without re-running the (time-varying)
// comparator.
type rbtree struct {
	root *node
	cmp  func(a, b int) int
	size int
}

func newRBTree(cmp func(a, b int) int) *rbtree {
	return &rbtree{cmp: cmp}
}

// Len returns the number of items in the tree.
func (t *rbtree) Len() int { return t.size }

// Insert adds item and returns its node.
func (t *rbtree) Insert(item int) *node {
	z := &node{item: item}
	t.InsertNode(z)
	return z
}

// InsertNode inserts a caller-allocated node (its item must be set and
// links zeroed), letting hot paths draw nodes from an arena.
func (t *rbtree) InsertNode(z *node) {
	var parent *node
	link := &t.root
	for *link != nil {
		parent = *link
		if t.cmp(z.item, parent.item) < 0 {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	z.parent = parent
	*link = z
	t.size++
	t.insertFix(z)
}

func (t *rbtree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *rbtree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *rbtree) insertFix(z *node) {
	for z.parent != nil && z.parent.color == red {
		g := z.parent.parent
		if z.parent == g.left {
			u := g.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				g.color = red
				z = g
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			g.color = red
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				g.color = red
				z = g
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			g.color = red
			t.rotateLeft(g)
		}
	}
	t.root.color = black
}

// Min returns the leftmost node, or nil for an empty tree.
func (t *rbtree) Min() *node {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// Next returns the in-order successor of n, or nil.
func (t *rbtree) Next(n *node) *node {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	for n.parent != nil && n == n.parent.right {
		n = n.parent
	}
	return n.parent
}

// Prev returns the in-order predecessor of n, or nil.
func (t *rbtree) Prev(n *node) *node {
	if n.left != nil {
		n = n.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	for n.parent != nil && n == n.parent.left {
		n = n.parent
	}
	return n.parent
}

// transplant replaces subtree u with subtree v.
func (t *rbtree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// Delete removes node z from the tree. z must be a node previously returned
// by Insert on this tree. CLRS deletion with a nil-safe fix-up that tracks
// the fix node's parent explicitly.
func (t *rbtree) Delete(z *node) {
	t.size--
	y := z
	yColor := y.color
	var x *node
	var xParent *node
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.deleteFix(x, xParent)
	}
}

func (t *rbtree) deleteFix(x, parent *node) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) {
				w.left.color = black
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			w.right.color = black
			t.rotateLeft(parent)
			x = t.root
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) {
				w.right.color = black
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			w.left.color = black
			t.rotateRight(parent)
			x = t.root
		}
	}
	if x != nil {
		x.color = black
	}
}

func isBlack(n *node) bool { return n == nil || n.color == black }
