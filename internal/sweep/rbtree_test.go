package sweep

import (
	"math/rand"
	"sort"
	"testing"
)

func intCmp(a, b int) int { return a - b }

// checkRB validates the red-black invariants and returns the black height.
func checkRB(t *testing.T, n *node) int {
	t.Helper()
	if n == nil {
		return 1
	}
	if n.color == red {
		if !isBlack(n.left) || !isBlack(n.right) {
			t.Fatal("red node with red child")
		}
	}
	if n.left != nil && n.left.parent != n {
		t.Fatal("broken parent link (left)")
	}
	if n.right != nil && n.right.parent != n {
		t.Fatal("broken parent link (right)")
	}
	lh := checkRB(t, n.left)
	rh := checkRB(t, n.right)
	if lh != rh {
		t.Fatalf("black height mismatch: %d vs %d", lh, rh)
	}
	if n.color == black {
		return lh + 1
	}
	return lh
}

// inorder collects items via Min/Next.
func inorder(tr *rbtree) []int {
	var out []int
	for n := tr.Min(); n != nil; n = tr.Next(n) {
		out = append(out, n.item)
	}
	return out
}

func TestRBTreeInsertOrder(t *testing.T) {
	tr := newRBTree(intCmp)
	vals := []int{5, 3, 9, 1, 4, 8, 10, 2, 7, 6}
	for _, v := range vals {
		tr.Insert(v)
	}
	if tr.Len() != len(vals) {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := inorder(tr)
	want := append([]int(nil), vals...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inorder = %v", got)
		}
	}
	checkRB(t, tr.root)
	if tr.root.color != black {
		t.Fatal("root not black")
	}
}

func TestRBTreePrevNext(t *testing.T) {
	tr := newRBTree(intCmp)
	nodes := map[int]*node{}
	for v := range 20 {
		nodes[v] = tr.Insert(v)
	}
	for v := range 20 {
		n := nodes[v]
		if v > 0 {
			if p := tr.Prev(n); p == nil || p.item != v-1 {
				t.Fatalf("Prev(%d) wrong", v)
			}
		} else if tr.Prev(n) != nil {
			t.Fatal("Prev(min) != nil")
		}
		if v < 19 {
			if nx := tr.Next(n); nx == nil || nx.item != v+1 {
				t.Fatalf("Next(%d) wrong", v)
			}
		} else if tr.Next(n) != nil {
			t.Fatal("Next(max) != nil")
		}
	}
}

func TestRBTreeRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := range 50 {
		tr := newRBTree(intCmp)
		live := map[int]*node{}
		var keys []int
		for op := range 600 {
			if len(live) == 0 || rng.Intn(3) != 0 {
				// Insert a fresh key.
				k := trial*100000 + op
				live[k] = tr.Insert(k)
				keys = append(keys, k)
			} else {
				// Delete a random live key by node pointer.
				i := rng.Intn(len(keys))
				k := keys[i]
				if nd, ok := live[k]; ok {
					tr.Delete(nd)
					delete(live, k)
				}
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
		}
		got := inorder(tr)
		want := make([]int, 0, len(live))
		for k := range live {
			want = append(want, k)
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("inorder length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("inorder mismatch at %d", i)
			}
		}
		checkRB(t, tr.root)
	}
}

func TestRBTreeDeleteAll(t *testing.T) {
	tr := newRBTree(intCmp)
	var nodes []*node
	for v := range 100 {
		nodes = append(nodes, tr.Insert(v))
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for i, nd := range nodes {
		tr.Delete(nd)
		if tr.Len() != 100-i-1 {
			t.Fatalf("Len after delete = %d", tr.Len())
		}
		checkRB(t, tr.root)
	}
	if tr.root != nil {
		t.Fatal("tree not empty")
	}
}
