package sweep

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// ablation workload: a batch of polygon pairs resembling the refinement
// step's candidates — overlapping MBRs, a mix of intersecting and
// near-miss pairs.
func ablationPairs(n int) [][2]*geom.Polygon {
	rng := rand.New(rand.NewSource(111))
	pairs := make([][2]*geom.Polygon, n)
	for i := range pairs {
		verts := 20 + rng.Intn(400)
		p := ablationStar(rng, 0, 0, 2, verts)
		q := ablationStar(rng, rng.Float64()*3, rng.Float64(), 2, verts)
		pairs[i] = [2]*geom.Polygon{p, q}
	}
	return pairs
}

func ablationStar(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	step := 2 * math.Pi / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		a := float64(i)*step + rng.Float64()*step*0.9
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

// BenchmarkRestrictedSearchAblation measures the restricted-search-space
// optimization the paper credits with 30–40% (§4.1.1).
func BenchmarkRestrictedSearchAblation(b *testing.B) {
	pairs := ablationPairs(64)
	for name, opt := range map[string]Options{
		"restricted":   {},
		"unrestricted": {NoRestrictSearch: true},
	} {
		b.Run(name, func(b *testing.B) {
			sw := NewSweeper()
			for range b.N {
				for _, pr := range pairs {
					sw.BoundariesIntersect(pr[0], pr[1], opt)
				}
			}
		})
	}
}

// BenchmarkSegmentAlgorithms compares the three detection algorithms on
// the same candidate edge sets.
func BenchmarkSegmentAlgorithms(b *testing.B) {
	pairs := ablationPairs(64)
	type sets struct{ red, blue []geom.Segment }
	var inputs []sets
	for _, pr := range pairs {
		red, blue := CandidateEdges(pr[0], pr[1])
		if len(red) > 0 && len(blue) > 0 {
			inputs = append(inputs, sets{red, blue})
		}
	}
	b.Run("planesweep", func(b *testing.B) {
		sw := NewSweeper()
		for range b.N {
			for _, in := range inputs {
				sw.CrossIntersects(in.red, in.blue)
			}
		}
	})
	b.Run("planesweep-fresh-alloc", func(b *testing.B) {
		for range b.N {
			for _, in := range inputs {
				CrossIntersects(in.red, in.blue)
			}
		}
	})
	b.Run("forwardscan", func(b *testing.B) {
		for range b.N {
			for _, in := range inputs {
				CrossIntersectsForwardScan(in.red, in.blue)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for range b.N {
			for _, in := range inputs {
				CrossIntersectsBrute(in.red, in.blue)
			}
		}
	})
}
