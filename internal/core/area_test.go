package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEstimateIntersectionAreaSquares(t *testing.T) {
	a := square(0, 0, 4)
	b := square(2, 2, 4) // true overlap area 4
	got := EstimateIntersectionArea(a, b, 128)
	if math.Abs(got-4) > 0.3 {
		t.Errorf("estimate = %v, want ≈4", got)
	}
	// Disjoint and empty-region cases.
	if got := EstimateIntersectionArea(a, square(10, 10, 2), 64); got != 0 {
		t.Errorf("disjoint estimate = %v", got)
	}
	if got := EstimateIntersectionArea(a, square(4, 0, 2), 64); got > 0.5 {
		t.Errorf("edge-touch estimate = %v, want ≈0", got)
	}
	// Default resolution kicks in for res <= 0.
	if got := EstimateIntersectionArea(a, b, 0); math.Abs(got-4) > 0.6 {
		t.Errorf("default-res estimate = %v", got)
	}
}

// TestEstimateConvergesToExact compares against the exact convex overlay
// area from geom.ClipConvex: estimates must converge as resolution grows.
func TestEstimateConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := range 60 {
		a := randomHull(rng, 5, 5, 4)
		b := randomHull(rng, 6.5, 5.5, 4)
		if a == nil || b == nil {
			continue
		}
		inter := geom.ClipConvex(a, b)
		exact := 0.0
		if inter != nil {
			exact = inter.Area()
		}
		coarse := EstimateIntersectionArea(a, b, 32)
		fine := EstimateIntersectionArea(a, b, 256)
		region := a.Bounds().Intersection(b.Bounds())
		if region.IsEmpty() {
			continue
		}
		tolFine := 0.05*region.Area() + 0.05
		if math.Abs(fine-exact) > tolFine {
			t.Fatalf("trial %d: fine estimate %v vs exact %v (tol %v)", trial, fine, exact, tolFine)
		}
		// The fine estimate should not be (much) worse than the coarse one.
		if math.Abs(fine-exact) > math.Abs(coarse-exact)+tolFine {
			t.Fatalf("trial %d: estimate degraded with resolution: coarse %v fine %v exact %v",
				trial, coarse, fine, exact)
		}
	}
}

func randomHull(rng *rand.Rand, cx, cy, r float64) *geom.Polygon {
	pts := make([]geom.Point, 14)
	for i := range pts {
		pts[i] = geom.Pt(cx+(rng.Float64()*2-1)*r, cy+(rng.Float64()*2-1)*r)
	}
	return geom.ConvexHull(pts)
}
