package core

import (
	"repro/internal/geom"
	"repro/internal/raster"
)

// EstimateIntersectionArea approximates the area of p ∩ q by rendering
// both polygons filled into a res×res window over the intersection of
// their MBRs and counting pixels covered by both, scaled by the pixel's
// data-space area. This is the rasterization-based selectivity estimation
// that grew out of the paper's line of work: unlike the refinement filter
// it is approximate — error shrinks as O(perimeter/res) — but it prices a
// map-overlay result without computing any overlay geometry. Exact convex
// overlays are available in geom.ClipConvex; this handles arbitrary simple
// polygons.
func EstimateIntersectionArea(p, q *geom.Polygon, res int) float64 {
	if res <= 0 {
		res = 64
	}
	region := p.Bounds().Intersection(q.Bounds())
	if region.IsEmpty() || region.Area() == 0 {
		return 0
	}
	ctx := raster.NewContext(res, res)
	ctx.SetViewport(region)

	ctx.SetColorBits(1)
	ctx.FillPolygon(p)
	ctx.SetColorBits(2)
	ctx.FillPolygon(q)
	ctx.SetColorBits(0)

	both := 0
	for _, v := range ctx.Color().Pix {
		if v == 3 {
			both++
		}
	}
	sx, sy := ctx.Scale()
	pixelArea := (1 / sx) * (1 / sy)
	return float64(both) * pixelArea
}
