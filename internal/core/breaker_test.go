package core

import (
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/geom"
)

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}
	if useHW, probe := b.Allow(); !useHW || probe {
		t.Fatalf("closed Allow = (%v,%v), want (true,false)", useHW, probe)
	}

	if !b.Trip() {
		t.Fatal("first Trip should report the transition")
	}
	if b.Trip() {
		t.Fatal("second Trip on an open breaker should be a no-op")
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}
	if got := b.Trips(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// The first cooldown-1 denials stay open; the cooldown-th flips to
	// half-open and the same call claims the probe.
	for i := 0; i < 2; i++ {
		if useHW, _ := b.Allow(); useHW {
			t.Fatalf("Allow %d during cooldown granted hardware", i)
		}
	}
	useHW, probe := b.Allow()
	if !useHW || !probe {
		t.Fatalf("post-cooldown Allow = (%v,%v), want probe grant", useHW, probe)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("probing state reported as %v, want half-open", got)
	}
	// While the probe is outstanding nobody else gets hardware.
	if useHW, probe := b.Allow(); useHW || probe {
		t.Fatalf("concurrent Allow during probe = (%v,%v), want (false,false)", useHW, probe)
	}

	// Abort hands the probe back; the next Allow re-claims it.
	b.ProbeAbort()
	if useHW, probe := b.Allow(); !useHW || !probe {
		t.Fatalf("Allow after abort = (%v,%v), want probe grant", useHW, probe)
	}
	if !b.ProbeSuccess() {
		t.Fatal("ProbeSuccess should close the probing breaker")
	}
	if b.ProbeSuccess() {
		t.Fatal("ProbeSuccess on a closed breaker should be a no-op")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", got)
	}
	if got := b.Recoveries(); got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if useHW, probe := b.Allow(); !useHW || probe {
		t.Fatalf("nil Allow = (%v,%v), want (true,false)", useHW, probe)
	}
	if b.Trip() {
		t.Fatal("nil Trip should report false")
	}
	if b.ProbeSuccess() {
		t.Fatal("nil ProbeSuccess should report false")
	}
	b.ProbeAbort() // must not panic
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil State = %v, want closed", got)
	}
}

func TestBreakerConcurrentProbeClaim(t *testing.T) {
	b := NewBreaker(1)
	b.Trip()
	const workers = 16
	var wg sync.WaitGroup
	probes := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, probe := b.Allow(); probe {
				probes <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(probes)
	var claimed int
	for range probes {
		claimed++
	}
	if claimed != 1 {
		t.Fatalf("probe claimed by %d workers, want exactly 1", claimed)
	}
}

// TestSentinelTripsAndRecovers drives the full degradation loop through
// the Tester itself: a wrong-answer fault at the hardware filter flips
// negatives, the sentinel catches a flipped negative within SentinelEvery
// pairs, the breaker opens and routes pairs to exact software, and after
// the fault is disarmed the half-open probe restores the hardware filter.
func TestSentinelTripsAndRecovers(t *testing.T) {
	// Crossing rectangles: boundaries intersect but neither holds a vertex
	// of the other, so the point-in-polygon step cannot resolve the pair
	// and the verdict rests on the hardware filter. With the wrong-answer
	// fault at rate 1 the filter's true "overlap" verdict is flipped to a
	// false reject, which only the sentinel can catch. An L-shape and a
	// box in its notch provide a MBR-overlapping but truly disjoint pair
	// for the open-breaker phase. SWThreshold 0 sends everything to
	// hardware regardless of vertex count.
	horiz := rect(0, 4, 10, 6)
	vert := rect(4, 0, 6, 10)
	ell := geom.MustPolygon(
		geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0},
		geom.Point{X: 10, Y: 2}, geom.Point{X: 2, Y: 2},
		geom.Point{X: 2, Y: 10}, geom.Point{X: 0, Y: 10},
	)
	notchBox := rect(5, 5, 8, 8)

	inj := faultinject.New(7)
	inj.Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 1)
	tester := NewTester(Config{
		SWThreshold:   0,
		SentinelEvery: 1, // verify every negative: the first flip must be caught
		Faults:        inj,
	})
	br := NewBreaker(4)
	pc := PairContext{Breaker: br}

	if !tester.IntersectsCtx(horiz, vert, pc) {
		t.Fatal("sentinel failed to overturn the lying filter on an intersecting pair")
	}
	if tester.Stats.SentinelDisagreements == 0 {
		t.Fatal("expected a sentinel disagreement")
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open after disagreement", br.State())
	}
	if tester.Stats.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", tester.Stats.BreakerTrips)
	}

	// While open, pairs route through software and stay exact.
	skips0 := tester.Stats.BreakerOpenSkips
	if tester.IntersectsCtx(ell, notchBox, pc) {
		t.Fatal("disjoint pair reported intersecting while breaker open")
	}
	if tester.Stats.BreakerOpenSkips != skips0+1 {
		t.Fatalf("BreakerOpenSkips = %d, want %d", tester.Stats.BreakerOpenSkips, skips0+1)
	}

	// Disarm the fault; after the cooldown a probe runs under forced
	// verification and closes the breaker.
	inj.Disarm(faultinject.SiteHWFilter)
	for i := 0; i < 16 && br.State() != BreakerClosed; i++ {
		tester.IntersectsCtx(horiz, vert, pc)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker did not recover after fault removal: state = %v", br.State())
	}
	if tester.Stats.BreakerRecoveries == 0 {
		t.Fatal("expected a counted breaker recovery")
	}

	// Partition invariant still holds with the new bucket.
	s := tester.Stats
	sum := s.MBRRejects + s.PIPHits + s.SigRejects + s.SWDirect + s.HWRejects + s.HWPassed + s.HWFallbacks + s.BreakerOpenSkips
	if s.Tests != sum {
		t.Fatalf("stats partition broken: Tests=%d sum=%d (%+v)", s.Tests, sum, s)
	}
}

// rect builds an axis-aligned rectangle polygon.
func rect(x0, y0, x1, y1 float64) *geom.Polygon {
	return geom.MustPolygon(
		geom.Point{X: x0, Y: y0},
		geom.Point{X: x1, Y: y0},
		geom.Point{X: x1, Y: y1},
		geom.Point{X: x0, Y: y1},
	)
}
