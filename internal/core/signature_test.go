package core

import (
	"math/rand"
	"testing"

	"repro/internal/raster"
)

// TestSignatureFilterDifferential is the tentpole's differential test:
// refinement with persisted signatures in the PairContext must produce
// bit-identical verdicts to refinement without them, for intersection and
// within-distance alike — the signature filter may only reject pairs the
// exact test would reject too. The run must also demonstrate actual
// filtering power (SigRejects > 0), or the test proves nothing.
func TestSignatureFilterDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	plain := NewTester(Config{SWThreshold: DefaultSWThreshold})
	signed := NewTester(Config{SWThreshold: DefaultSWThreshold})

	for trial := 0; trial < 300; trial++ {
		p := star(rng, 40+rng.Float64()*40, 40+rng.Float64()*40, 4+rng.Float64()*22, 4+rng.Intn(60))
		q := star(rng, 40+rng.Float64()*40, 40+rng.Float64()*40, 4+rng.Float64()*22, 4+rng.Intn(60))
		ps := raster.ComputeSignature(p, raster.DefaultSignatureRes)
		qs := raster.ComputeSignature(q, raster.DefaultSignatureRes)
		pc := PairContext{PSig: &ps, QSig: &qs}

		if got, want := signed.IntersectsCtx(p, q, pc), plain.Intersects(p, q); got != want {
			t.Fatalf("trial %d: Intersects with signatures %v, without %v", trial, got, want)
		}
		for _, d := range []float64{0.5, 2, 8} {
			if got, want := signed.WithinDistanceCtx(p, q, d, pc), plain.WithinDistance(p, q, d); got != want {
				t.Fatalf("trial %d d=%g: WithinDistance with signatures %v, without %v", trial, d, got, want)
			}
		}
	}
	if signed.Stats.SigChecks == 0 {
		t.Fatal("signatures were never consulted")
	}
	if signed.Stats.SigRejects == 0 {
		t.Fatal("signatures never rejected a pair — no filtering power demonstrated")
	}
	if plain.Stats.SigChecks != 0 {
		t.Fatalf("plain tester consulted signatures: %+v", plain.Stats)
	}

	// Partition invariant with the new bucket.
	s := signed.Stats
	sum := s.MBRRejects + s.PIPHits + s.SigRejects + s.SWDirect + s.HWRejects + s.HWPassed + s.HWFallbacks + s.BreakerOpenSkips
	if s.Tests != sum {
		t.Fatalf("stats partition broken: Tests=%d sum=%d (%+v)", s.Tests, sum, s)
	}
	t.Logf("signature stats: %d checks, %d rejects over %d tests", s.SigChecks, s.SigRejects, s.Tests)
}

// TestSignatureMismatchIgnored pins the PairContext safety rule: a
// signature whose bounds do not match the tested polygon is ignored, not
// trusted.
func TestSignatureMismatchIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := star(rng, 30, 30, 10, 40)
	q := star(rng, 70, 70, 10, 40)
	other := star(rng, 200, 200, 5, 40)
	ps := raster.ComputeSignature(p, 16)
	wrong := raster.ComputeSignature(other, 16)
	tester := NewTester(Config{})
	// A far-away object's signature would "prove" disjointness for any
	// pair; with the bounds check it must simply not be consulted.
	tester.IntersectsCtx(p, q, PairContext{PSig: &ps, QSig: &wrong})
	if tester.Stats.SigChecks != 0 {
		t.Fatalf("mismatched signature was consulted: %+v", tester.Stats)
	}
}
