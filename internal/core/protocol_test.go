package core

import (
	"math/rand"
	"testing"
)

// TestAccumProtocolMatches verifies that the accumulation-buffer protocol
// of Algorithm 3.1 and the default occlusion-query protocol make identical
// decisions on both predicates.
func TestAccumProtocolMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	occ := NewTester(Config{Resolution: 8})
	acc := NewTester(Config{Resolution: 8, UseAccum: true})
	sw := NewTester(Config{DisableHardware: true})
	for trial := range 400 {
		p := star(rng, rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64()*4, 3+rng.Intn(25))
		q := star(rng, rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64()*4, 3+rng.Intn(25))
		want := sw.Intersects(p, q)
		if got := occ.Intersects(p, q); got != want {
			t.Fatalf("trial %d: occlusion protocol = %v, sw = %v", trial, got, want)
		}
		if got := acc.Intersects(p, q); got != want {
			t.Fatalf("trial %d: accumulation protocol = %v, sw = %v", trial, got, want)
		}
		d := rng.Float64() * 6
		wantD := sw.WithinDistance(p, q, d)
		if got := occ.WithinDistance(p, q, d); got != wantD {
			t.Fatalf("trial %d: occlusion within(%v) = %v, sw = %v", trial, d, got, wantD)
		}
		if got := acc.WithinDistance(p, q, d); got != wantD {
			t.Fatalf("trial %d: accum within(%v) = %v, sw = %v", trial, d, got, wantD)
		}
	}
}

// TestProtocolFilterPowerComparable: both protocols should reject the same
// pairs (they inspect the same conservative coverage), so their stats
// match exactly on a shared workload.
func TestProtocolFilterPowerComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	occ := NewTester(Config{Resolution: 16})
	acc := NewTester(Config{Resolution: 16, UseAccum: true})
	for range 300 {
		p := star(rng, 0, 0, 1, 30)
		q := star(rng, 1.8, 0, 1, 30)
		occ.Intersects(p, q)
		acc.Intersects(p, q)
	}
	if occ.Stats.HWRejects != acc.Stats.HWRejects {
		t.Errorf("protocols disagree on rejects: occ %d, accum %d",
			occ.Stats.HWRejects, acc.Stats.HWRejects)
	}
	if occ.Stats.HWPassed != acc.Stats.HWPassed {
		t.Errorf("protocols disagree on passes: occ %d, accum %d",
			occ.Stats.HWPassed, acc.Stats.HWPassed)
	}
}

// BenchmarkProtocols is the protocol ablation: per-pair hardware filter
// cost under the occlusion-query and accumulation protocols on a fixed
// near-miss pair (the case both protocols must fully render).
func BenchmarkProtocols(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	p := star(rng, 0, 0, 1, 200)
	q := star(rng, 1.9, 0, 1, 200)
	for name, cfg := range map[string]Config{
		"occlusion":    {Resolution: 16},
		"accumulation": {Resolution: 16, UseAccum: true},
	} {
		b.Run(name, func(b *testing.B) {
			tester := NewTester(cfg)
			for range b.N {
				tester.Intersects(p, q)
			}
		})
	}
}
