package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/sweep"
)

// star builds a random star-shaped polygon (always simple).
func star(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	step := 2 * math.Pi / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		a := float64(i)*step + rng.Float64()*step*0.9
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

func square(x, y, side float64) *geom.Polygon {
	return geom.MustPolygon(
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side),
	)
}

func TestIntersectsBasic(t *testing.T) {
	for _, res := range []int{1, 4, 8, 16, 32} {
		tester := NewTester(Config{Resolution: res})
		a := square(0, 0, 4)
		cases := []struct {
			name string
			q    *geom.Polygon
			want bool
		}{
			{"overlap", square(2, 2, 4), true},
			{"contained", square(1, 1, 1), true},
			{"containing", square(-5, -5, 20), true},
			{"disjoint far", square(10, 10, 1), false},
			{"disjoint near", square(4.5, 0, 1), false},
			{"edge touch", square(4, 0, 2), true},
			{"corner touch", square(4, 4, 2), true},
		}
		for _, tc := range cases {
			if got := tester.Intersects(a, tc.q); got != tc.want {
				t.Errorf("res %d, %s: Intersects = %v, want %v", res, tc.name, got, tc.want)
			}
		}
	}
}

// TestIntersectsMatchesSoftware is the headline exactness guarantee: the
// hardware-assisted test equals the software test on every input, for
// every resolution and threshold.
func TestIntersectsMatchesSoftware(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sw := NewTester(Config{DisableHardware: true})
	testers := []*Tester{
		NewTester(Config{Resolution: 1}),
		NewTester(Config{Resolution: 8}),
		NewTester(Config{Resolution: 8, SWThreshold: 20}),
		NewTester(Config{Resolution: 32}),
	}
	for trial := range 600 {
		p := star(rng, rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64()*4, 3+rng.Intn(30))
		q := star(rng, rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64()*4, 3+rng.Intn(30))
		want := sw.Intersects(p, q)
		for _, hw := range testers {
			if got := hw.Intersects(p, q); got != want {
				t.Fatalf("trial %d res %d: hw = %v, sw = %v", trial, hw.Config().Resolution, got, want)
			}
		}
	}
}

func TestWithinDistanceBasic(t *testing.T) {
	tester := NewTester(Config{Resolution: 8})
	a := square(0, 0, 1)
	b := square(3, 0, 1)
	if tester.WithinDistance(a, b, 1.9) {
		t.Error("d=1.9 reported within")
	}
	if !tester.WithinDistance(a, b, 2.0) {
		t.Error("d=2.0 not within")
	}
	if !tester.WithinDistance(a, b, 3.5) {
		t.Error("d=3.5 not within")
	}
	// Containment: region distance zero despite distant boundaries.
	outer := square(-10, -10, 30)
	if !tester.WithinDistance(a, outer, 0.1) {
		t.Error("contained pair not within small distance")
	}
	// Intersecting pair.
	if !tester.WithinDistance(a, square(0.5, 0.5, 2), 0) {
		t.Error("intersecting pair not within distance 0")
	}
}

func TestWithinDistanceMatchesSoftware(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	sw := NewTester(Config{DisableHardware: true})
	testers := []*Tester{
		NewTester(Config{Resolution: 4}),
		NewTester(Config{Resolution: 8}),
		NewTester(Config{Resolution: 16, SWThreshold: 15}),
	}
	for trial := range 600 {
		p := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		q := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		d := rng.Float64() * 8
		want := sw.WithinDistance(p, q, d)
		if wantOracle := dist.MinDistBrute(p, q) <= d; want != wantOracle {
			t.Fatalf("trial %d: software tester %v disagrees with brute oracle %v", trial, want, wantOracle)
		}
		for _, hw := range testers {
			if got := hw.WithinDistance(p, q, d); got != want {
				t.Fatalf("trial %d res %d d=%v: hw = %v, sw = %v",
					trial, hw.Config().Resolution, d, got, want)
			}
		}
	}
}

func TestWithinDistanceLargeDFallback(t *testing.T) {
	// At high resolution, a distance large relative to the smaller object
	// needs a line width beyond the 10 px hardware cap: the tester must
	// fall back to software and still be correct. (At 8×8 the width
	// d·res/(side+2d) is bounded by res/2 = 4 px and the cap can never
	// trigger — see EXPERIMENTS.md.)
	tester := NewTester(Config{Resolution: 32})
	a := square(0, 0, 1)
	b := square(5, 0, 1)
	if !tester.WithinDistance(a, b, 4.5) {
		t.Error("fallback path returned wrong answer")
	}
	if tester.Stats.HWFallbacks == 0 {
		t.Error("expected a hardware fallback for huge width")
	}
	if tester.WithinDistance(a, b, 3.9) {
		t.Error("fallback path accepted an out-of-range pair")
	}
}

func TestStatsAccounting(t *testing.T) {
	tester := NewTester(Config{Resolution: 8})
	a := square(0, 0, 4)
	tester.Intersects(a, square(10, 10, 1)) // MBR reject
	tester.Intersects(a, square(1, 1, 1))   // PiP hit
	tester.Intersects(a, square(4.5, 0, 1)) // hw reject (MBRs touch? no: gap 0.5 -> MBR reject)
	s := tester.Stats
	if s.Tests != 3 || s.MBRRejects != 2 || s.PIPHits != 1 {
		t.Errorf("stats = %+v", s)
	}
	tester.ResetStats()
	if tester.Stats.Tests != 0 {
		t.Error("ResetStats failed")
	}

	// Threshold routing: a tiny pair whose first vertices are mutually
	// outside (so PiP cannot decide) goes straight to software.
	tr := NewTester(Config{Resolution: 8, SWThreshold: 100})
	tr.Intersects(square(0, 0, 2), square(1.5, -0.5, 2))
	if tr.Stats.SWDirect != 1 {
		t.Errorf("SWDirect = %d, want 1 (stats %+v)", tr.Stats.SWDirect, tr.Stats)
	}

	// Hardware reject for near-miss complex pair.
	rng := rand.New(rand.NewSource(53))
	hw := NewTester(Config{Resolution: 32})
	p := star(rng, 0, 0, 1, 40)
	q := p.Translate(2.05, 0) // MBRs overlap? star radius up to 1 -> bounds ~[-1,1]; translated [1.05,3.05]: disjoint.
	q2 := p.Translate(1.5, 0)
	hw.Intersects(p, q2)
	if hw.Stats.HWRejects+hw.Stats.HWPassed+hw.Stats.PIPHits+hw.Stats.MBRRejects != 1 {
		t.Errorf("stats did not account for the test: %+v", hw.Stats)
	}
	_ = q
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Tests: 1, MBRRejects: 2, PIPHits: 3, SWDirect: 4, HWRejects: 5, HWPassed: 6, HWFallbacks: 7}
	b := a
	b.Add(a)
	if b.Tests != 2 || b.HWFallbacks != 14 || b.HWRejects != 10 {
		t.Errorf("Add wrong: %+v", b)
	}
}

func TestSoftwareAlgorithmsAgreeUnderTester(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	testers := []*Tester{
		NewTester(Config{Resolution: 8, Software: sweep.Options{Algorithm: sweep.PlaneSweep}}),
		NewTester(Config{Resolution: 8, Software: sweep.Options{Algorithm: sweep.ForwardScan}}),
		NewTester(Config{Resolution: 8, Software: sweep.Options{Algorithm: sweep.BruteForce}}),
	}
	for range 200 {
		p := star(rng, rng.Float64()*6, rng.Float64()*6, 1+rng.Float64()*3, 3+rng.Intn(20))
		q := star(rng, rng.Float64()*6, rng.Float64()*6, 1+rng.Float64()*3, 3+rng.Intn(20))
		r0 := testers[0].Intersects(p, q)
		for _, tr := range testers[1:] {
			if tr.Intersects(p, q) != r0 {
				t.Fatal("software algorithms disagree under the tester")
			}
		}
	}
}

func TestHardwareFilterActuallyFilters(t *testing.T) {
	// Complex near-miss pairs should be rejected by the hardware filter at
	// a reasonable resolution, not passed to software.
	rng := rand.New(rand.NewSource(55))
	tester := NewTester(Config{Resolution: 16})
	for range 100 {
		p := star(rng, 0, 0, 1, 50)
		q := star(rng, 1.9, 0, 1, 50) // MBRs overlap in a sliver, geometry rarely does
		if p.Bounds().Intersects(q.Bounds()) {
			tester.Intersects(p, q)
		}
	}
	if tester.Stats.HWRejects == 0 {
		t.Errorf("hardware filter never rejected a near-miss pair (stats %+v)", tester.Stats)
	}
}

func TestNewTesterDefaults(t *testing.T) {
	tr := NewTester(Config{})
	if tr.Config().Resolution != DefaultResolution {
		t.Errorf("default resolution = %d", tr.Config().Resolution)
	}
	if tr.Context() == nil {
		t.Error("hardware context missing")
	}
	swOnly := NewTester(Config{DisableHardware: true})
	if swOnly.Context() != nil {
		t.Error("software-only tester has a context")
	}
	// Absurd line width gets capped, not rejected.
	wide := NewTester(Config{LineWidth: 99})
	if wide.Context().LineWidth() > 10 {
		t.Errorf("line width not capped: %v", wide.Context().LineWidth())
	}
}
