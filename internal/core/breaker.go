package core

import "sync/atomic"

// BreakerState is the observable state of a hardware-filter circuit
// breaker.
type BreakerState int32

const (
	// BreakerClosed: the hardware filter is trusted and in use.
	BreakerClosed BreakerState = iota
	// BreakerOpen: a sentinel disagreement proved the conservative-
	// rasterization invariant broken; every pair is routed through the
	// exact software path until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one pair is allowed
	// to probe the hardware filter under forced sentinel verification.
	BreakerHalfOpen

	// breakerProbing is the internal claimed-probe state: one pair holds
	// the half-open probe and everyone else stays on the software path
	// until it reports. Externally reported as BreakerHalfOpen.
	breakerProbing
)

// String names the state for logs and test output.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// DefaultBreakerCooldown is how many pair tests an open breaker routes to
// software before allowing a half-open probe. Count-based (not
// wall-clock) so fault schedules and tests are deterministic.
const DefaultBreakerCooldown = 512

// Breaker is the per-layer-pair circuit breaker guarding the hardware
// filter's negative verdicts. The sentinel verifier (see Tester) re-checks
// a sample of hardware rejects against the exact software test; a
// disagreement means the conservative-rasterization invariant the whole
// design rests on is broken for this pair population, so the breaker
// opens and the Tester routes every subsequent pair through exact
// software refinement. After Cooldown() software-routed pairs the breaker
// half-opens and admits a single probe pair back to the hardware filter
// under forced verification: agreement closes the breaker, disagreement
// re-opens it for another cooldown.
//
// All state is atomic; one Breaker is shared by every worker refining the
// same layer pair (it travels in PairContext).
type Breaker struct {
	cooldown int64
	state    atomic.Int32
	denied   atomic.Int64 // software-routed pairs since the breaker opened

	trips      atomic.Int64
	recoveries atomic.Int64
}

// NewBreaker builds a closed breaker; cooldownPairs <= 0 means
// DefaultBreakerCooldown.
func NewBreaker(cooldownPairs int) *Breaker {
	if cooldownPairs <= 0 {
		cooldownPairs = DefaultBreakerCooldown
	}
	return &Breaker{cooldown: int64(cooldownPairs)}
}

// State reports the breaker's current state (a claimed probe reports as
// half-open). A nil breaker is permanently closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	s := BreakerState(b.state.Load())
	if s == breakerProbing {
		return BreakerHalfOpen
	}
	return s
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Recoveries returns how many half-open probes have closed the breaker.
func (b *Breaker) Recoveries() int64 { return b.recoveries.Load() }

// Cooldown returns the configured cooldown in pairs.
func (b *Breaker) Cooldown() int64 { return b.cooldown }

// Allow is consulted once per pair test that would use the hardware
// filter. useHW reports whether the filter may run; probe reports that
// this pair holds the half-open probe and must be sentinel-verified
// regardless of sampling. A pair that claims the probe but bails out
// before a hardware verdict must call ProbeAbort. A nil breaker always
// allows, so unguarded PairContexts keep the plain fast path.
func (b *Breaker) Allow() (useHW, probe bool) {
	if b == nil {
		return true, false
	}
	for {
		switch BreakerState(b.state.Load()) {
		case BreakerClosed:
			return true, false
		case BreakerOpen:
			if b.denied.Add(1) >= b.cooldown {
				b.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen))
				continue // re-read: this pair may claim the probe
			}
			return false, false
		case BreakerHalfOpen:
			if b.state.CompareAndSwap(int32(BreakerHalfOpen), int32(breakerProbing)) {
				return true, true
			}
			continue // lost the claim race; re-read the state
		default: // breakerProbing
			return false, false
		}
	}
}

// Trip opens the breaker after a sentinel disagreement, from any state.
// It reports whether this call performed the transition (so exactly one
// caller counts the trip when workers race).
func (b *Breaker) Trip() bool {
	if b == nil {
		return false
	}
	for {
		s := b.state.Load()
		if BreakerState(s) == BreakerOpen {
			return false
		}
		if b.state.CompareAndSwap(s, int32(BreakerOpen)) {
			b.denied.Store(0)
			b.trips.Add(1)
			return true
		}
	}
}

// ProbeSuccess closes the breaker after a verified half-open probe. It
// reports whether this call performed the transition.
func (b *Breaker) ProbeSuccess() bool {
	if b == nil {
		return false
	}
	if b.state.CompareAndSwap(int32(breakerProbing), int32(BreakerClosed)) {
		b.recoveries.Add(1)
		return true
	}
	return false
}

// ProbeAbort releases a claimed probe that resolved without a hardware
// verdict (width fallback, empty candidate sets), returning the breaker
// to half-open so the next pair can probe instead.
func (b *Breaker) ProbeAbort() {
	if b == nil {
		return
	}
	b.state.CompareAndSwap(int32(breakerProbing), int32(BreakerHalfOpen))
}
