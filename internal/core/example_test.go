package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
)

func ExampleTester_Intersects() {
	// One tester per goroutine; it owns a small rendering window.
	tester := core.NewTester(core.Config{Resolution: 8, SWThreshold: 500})

	parcel := geom.MustPolygon(
		geom.Pt(0, 0), geom.Pt(8, 0), geom.Pt(8, 2),
		geom.Pt(2, 2), geom.Pt(2, 8), geom.Pt(0, 8),
	)
	inNotch := geom.MustPolygon(geom.Pt(4, 4), geom.Pt(7, 4), geom.Pt(7, 7), geom.Pt(4, 7))
	touching := geom.MustPolygon(geom.Pt(8, 0), geom.Pt(12, 0), geom.Pt(12, 4), geom.Pt(8, 4))

	fmt.Println(tester.Intersects(parcel, inNotch))
	fmt.Println(tester.Intersects(parcel, touching))
	// Output:
	// false
	// true
}

func ExampleTester_WithinDistance() {
	tester := core.NewTester(core.Config{Resolution: 8})
	a := geom.MustPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	b := geom.MustPolygon(geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(3, 1))
	fmt.Println(tester.WithinDistance(a, b, 1.9))
	fmt.Println(tester.WithinDistance(a, b, 2.0))
	// Output:
	// false
	// true
}

func ExampleEstimateIntersectionArea() {
	a := geom.MustPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	b := geom.MustPolygon(geom.Pt(2, 2), geom.Pt(6, 2), geom.Pt(6, 6), geom.Pt(2, 6))
	est := core.EstimateIntersectionArea(a, b, 256)
	fmt.Printf("≈%.1f (exact 4)\n", est)
	// Output: ≈4.0 (exact 4)
}
