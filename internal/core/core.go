// Package core implements the paper's contribution: hardware-assisted
// refinement tests for spatial predicates. The intersection test is
// Algorithm 3.1 — a software point-in-polygon step, a conservative
// hardware segment-intersection filter rendered on the simulated graphics
// card (internal/raster), and the software plane sweep only for pairs the
// filter cannot reject. The within-distance test renders the boundaries
// widened by the query distance (Figure 6, Equation 1) under a uniform
// projection and falls back to the software minDist algorithm when the
// hardware filter is inconclusive or the required line width exceeds the
// hardware limit.
//
// Both tests are exact: the hardware step only ever rejects pairs whose
// negative answer is guaranteed by the conservative rasterization
// properties of the renderer, so the combined result always equals the
// software-only result. The adaptive SWThreshold (paper §4.3) skips the
// hardware filter for simple polygon pairs where the fixed buffer-search
// overhead would exceed the software test itself.
package core

import (
	"repro/internal/dist"
	"repro/internal/edgeindex"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/interval"
	"repro/internal/raster"
	"repro/internal/sweep"
	"time"
)

// Default configuration values. The paper finds an 8×8 window the best
// overall balance on its platform (§5) and thresholds around 300–900
// depending on resolution (§4.3).
const (
	DefaultResolution  = 8
	DefaultSWThreshold = 500

	// DefaultCrossCutoff routes the software segment test to the all-pairs
	// algorithm when len(red)·len(blue) of the restricted candidate sets is
	// at or below it. The restricted sets are usually tiny, and below this
	// work product the O(n·m) scan with its bbox pre-test beats the plane
	// sweep's sort-and-tree overhead by a wide margin; above it the
	// O((n+m)log(n+m)) sweep takes over. Both algorithms are exact, so the
	// cutoff is purely a performance knob. 16384 (128×128 edges) captures
	// nearly all of the all-pairs win on the evaluation joins while keeping
	// the worst-case cross test subquadratic.
	DefaultCrossCutoff = 16384

	// DefaultSentinelEvery re-checks one in this many hardware-filter
	// negatives against the exact software test. Negatives are the only
	// verdicts the engine takes on trust (every positive is confirmed by
	// the exact test anyway), so sampling them buys a bounded-latency
	// detector for a broken conservative-rasterization invariant at ~1.6%
	// re-check overhead on the rejected population.
	DefaultSentinelEvery = 64

	// DefaultBatchSize is the pipeline's candidate-pair batch size. Large
	// enough that the per-batch queue handoff amortizes to noise, small
	// enough that the first refined batch — the client's time-to-first-row
	// — arrives after a fraction of a percent of the join.
	// spatialbench -exp pipeline sweeps the value.
	DefaultBatchSize = 256
)

// Config controls a Tester.
type Config struct {
	// Resolution is the rendering window's width and height in pixels
	// (the paper sweeps 1–32). Zero means DefaultResolution.
	Resolution int
	// SWThreshold skips the hardware filter when the two polygons have
	// n+m vertices at or below it (paper §4.3). Zero is a valid setting
	// (always use hardware); use DefaultSWThreshold for the tuned value.
	SWThreshold int
	// LineWidth is the anti-aliased line width in pixels for the
	// intersection filter. Zero means the OpenGL default √2; the value is
	// capped by raster.MaxLineWidth.
	LineWidth float64
	// DisableHardware turns the Tester into the software-only baseline.
	DisableHardware bool
	// UseAccum selects the accumulation-buffer overlap protocol of
	// Algorithm 3.1 (two half-intensity renderings added, then a Minmax
	// search for full intensity) instead of the default occlusion-query
	// protocol (render the first layer, test the second layer's fragments
	// against the buffer with early exit). Hoff et al., cited in §3, list
	// buffer-test variants of exactly this kind; results are identical,
	// and the accumulation path remains for the protocol ablation bench.
	UseAccum bool
	// CrossCutoff overrides the adaptive software cross-test dispatch:
	// candidate-set products at or below the cutoff use the all-pairs scan,
	// larger ones the plane sweep. Zero means DefaultCrossCutoff; negative
	// disables the dispatch entirely (every pair goes to the sweep, the
	// pre-edge-index behaviour the locality benchmarks use as baseline).
	// Ignored when Software.Algorithm selects a specific algorithm.
	CrossCutoff int
	// SentinelEvery controls the sentinel verifier: every Nth hardware-
	// filter negative is re-checked against the exact software test, and a
	// disagreement trips the PairContext's circuit breaker. Zero means
	// DefaultSentinelEvery; negative disables verification. The sample is
	// a deterministic per-tester counter, so runs are reproducible.
	SentinelEvery int
	// SentinelRate adds a hash-sampled extra fraction (0–1) of negatives
	// to the sentinel stream on top of the every-Nth picks, for callers
	// that want denser verification without lockstep sampling.
	SentinelRate float64
	// Software selects the software segment-intersection algorithm.
	Software sweep.Options
	// Dist selects the software distance-test options.
	Dist dist.Options
	// Faults, when non-nil, arms deterministic fault injection at the
	// tester's hook sites (test entry, hardware-filter verdict, raster
	// draw path). Production configurations leave it nil; the resilience
	// tests use it to prove degradation semantics. See internal/faultinject.
	Faults *faultinject.Injector

	// BatchSize is the candidate-pair batch size of the staged join
	// pipeline (query.PipelineIntersectionJoin): how many pairs travel
	// together through the filter → refine → emit stages. Zero means
	// DefaultBatchSize. Batches bound the queue memory between stages and
	// set the streaming granularity — a smaller batch delivers the first
	// rows sooner at more per-batch overhead.
	BatchSize int
	// NoPipeline is the ablation knob: it reconstructs the pre-pipeline
	// per-pair call chain (filter and refine interleaved per candidate on
	// one goroutine set, results emitted only at the end). Differential
	// tests pin the two paths bit-identical.
	NoPipeline bool
}

// Stats counts how pair tests were resolved; the evaluation harness reads
// these to report filter effectiveness.
type Stats struct {
	Tests       int64 // pair tests started
	MBRRejects  int64 // rejected by the MBR pre-test
	PIPHits     int64 // resolved positive by point-in-polygon containment
	SWDirect    int64 // sent straight to software (threshold or disabled)
	HWRejects   int64 // rejected by the hardware filter
	HWPassed    int64 // hardware inconclusive, decided by software
	HWFallbacks int64 // distance only: line width over the hardware limit
	// BreakerOpenSkips counts pair tests routed straight to the exact
	// software path because the pair's circuit breaker was open (it joins
	// the resolution partition: Tests == MBRRejects + IntervalTrueHits +
	// IntervalRejects + PIPHits + SigRejects + SWDirect + HWRejects +
	// HWPassed + HWFallbacks + BreakerOpenSkips).
	BreakerOpenSkips int64

	// Persisted-signature filter accounting (see raster.Signature and
	// PairContext.PSig/QSig). A signature check runs after containment is
	// excluded and before any rendering; a reject resolves the pair
	// negative without touching the hardware filter or the software test.
	SigChecks  int64 // pair tests that consulted both objects' signatures
	SigRejects int64 // pairs resolved negative by signature disjointness

	// Interval-approximation filter accounting (see internal/interval and
	// PairContext.PIv/QIv). The three-valued interval verdict runs right
	// after the MBR pre-test: a true hit resolves the pair POSITIVE with
	// no refinement at all (something no v1 filter can do), a reject
	// resolves it negative, and an inconclusive pair proceeds through the
	// v1 path unchanged. TrueHits and Rejects join the resolution
	// partition; Checks and Inconclusive are observability counters.
	IntervalChecks       int64 // pair tests where both sides had spans
	IntervalTrueHits     int64 // pairs resolved positive by full/full overlap
	IntervalRejects      int64 // pairs resolved negative by span disjointness
	IntervalInconclusive int64 // interval checks that decided nothing

	// Resilience accounting, filled by the parallel join's panic
	// isolation (pair tests that fault are not part of the Tests
	// partition above: a panic at the test entry fires before Tests is
	// incremented, and a pair recovered mid-test is re-counted by its
	// software retry).
	Panics      int64 // refinement panics recovered and retried in software
	Quarantined int64 // pairs dropped because the software retry panicked too

	// Sentinel verifier accounting. A disagreement is a hardware negative
	// the exact test overturned: the pair is counted under HWPassed (it
	// was, after all, decided by software) and the verdict corrected, so
	// sampled pairs are always exact even before the breaker reacts.
	SentinelChecks        int64 // hardware negatives re-checked in software
	SentinelDisagreements int64 // negatives the exact test overturned
	BreakerTrips          int64 // breaker transitions to open observed here
	BreakerRecoveries     int64 // half-open probes that closed the breaker

	// Edge-index effectiveness (see internal/edgeindex and PairContext).
	EdgeIndexHits         int64 // pair tests that consulted at least one edge index
	EdgeIndexSkippedEdges int64 // edges the index hierarchies pruned unexamined
	// DirtyClearPixelsSaved counts framebuffer pixels the dirty-region
	// clear did not have to zero between pair tests (internal/raster).
	DirtyClearPixelsSaved int64

	// Wall-clock decomposition of the refinement work.
	HWTime      time.Duration // rendering + buffer search
	SWTime      time.Duration // software segment / distance tests
	CollectTime time.Duration // candidate-edge collection (shared by both)

	// Pipeline accounting, filled by the staged batch drivers
	// (query.PipelineIntersectionJoin and friends) rather than by the
	// tester itself: batches that crossed the stage queues, wall time the
	// filter and refine worker pools spent, the deepest queue backlog
	// observed (a bounded gauge — Add keeps the max, not the sum), and
	// result rows handed to a streaming sink.
	PipelineBatches    int64
	PipelineFilterNS   int64
	PipelineRefineNS   int64
	PipelineQueueDepth int64
	StreamRowsEmitted  int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Tests += other.Tests
	s.MBRRejects += other.MBRRejects
	s.PIPHits += other.PIPHits
	s.SWDirect += other.SWDirect
	s.HWRejects += other.HWRejects
	s.HWPassed += other.HWPassed
	s.HWFallbacks += other.HWFallbacks
	s.BreakerOpenSkips += other.BreakerOpenSkips
	s.SigChecks += other.SigChecks
	s.SigRejects += other.SigRejects
	s.IntervalChecks += other.IntervalChecks
	s.IntervalTrueHits += other.IntervalTrueHits
	s.IntervalRejects += other.IntervalRejects
	s.IntervalInconclusive += other.IntervalInconclusive
	s.Panics += other.Panics
	s.Quarantined += other.Quarantined
	s.SentinelChecks += other.SentinelChecks
	s.SentinelDisagreements += other.SentinelDisagreements
	s.BreakerTrips += other.BreakerTrips
	s.BreakerRecoveries += other.BreakerRecoveries
	s.EdgeIndexHits += other.EdgeIndexHits
	s.EdgeIndexSkippedEdges += other.EdgeIndexSkippedEdges
	s.DirtyClearPixelsSaved += other.DirtyClearPixelsSaved
	s.HWTime += other.HWTime
	s.SWTime += other.SWTime
	s.CollectTime += other.CollectTime
	s.PipelineBatches += other.PipelineBatches
	s.PipelineFilterNS += other.PipelineFilterNS
	s.PipelineRefineNS += other.PipelineRefineNS
	if other.PipelineQueueDepth > s.PipelineQueueDepth {
		s.PipelineQueueDepth = other.PipelineQueueDepth
	}
	s.StreamRowsEmitted += other.StreamRowsEmitted
}

// Tester runs refinement tests for one worker. It owns a rendering context
// (reused across pair tests, as the paper reuses one small window) and is
// therefore not safe for concurrent use; create one Tester per goroutine.
type Tester struct {
	cfg   Config
	ctx   *raster.Context
	Stats Stats

	// Scratch buffers for the per-pair candidate edge sets, reused across
	// tests to keep the hot path allocation-free.
	redBuf, blueBuf []geom.Segment
	// sweeper reuses the plane sweep's working storage across pair tests.
	sweeper sweep.Sweeper
	// distScratch reuses the software distance test's frontier buffers.
	distScratch dist.Scratch
	// sentinelSeq numbers this tester's hardware-filter negatives for the
	// deterministic sentinel sample (see sentinelPick).
	sentinelSeq uint64
}

// PairContext carries optional shared, read-only derived data for a pair
// test: pre-built edge indexes for the first (PIndex) and second (QIndex)
// polygon. Joins and selections that test one object against many mates
// build an object's index once (see query.Layer.EdgeIndex) and pass it
// here, turning each test's O(n+m) candidate-edge scan into an
// output-sensitive index probe. A zero PairContext reproduces the plain
// linear-scan behaviour; an index whose polygon does not match the tested
// polygon is ignored. The indexes are immutable, so one PairContext may
// be shared by concurrent workers.
//
// Breaker, when non-nil, is the layer pair's shared circuit breaker: the
// tester consults it before using the hardware filter and reports
// sentinel disagreements to it. Its state is atomic, so the same Breaker
// travels in the PairContexts of every worker refining the pair.
type PairContext struct {
	PIndex, QIndex *edgeindex.Index
	Breaker        *Breaker

	// PSig and QSig are the objects' precomputed conservative raster
	// signatures (typically loaded from a store snapshot). When both are
	// present and match the tested polygons' MBRs, a disjointness proof
	// between them resolves the pair negative before any rendering; an
	// inconclusive signature test changes nothing. Signatures are
	// immutable and shared like the indexes.
	PSig, QSig *raster.Signature

	// PIv and QIv are the objects' interval approximations on one shared
	// interval.Grid (the caller guarantees both sides use the same grid —
	// see query.Layer's column plumbing). When both are non-empty the
	// three-valued verdict runs before any other geometry work: TrueHit
	// reports the pair intersecting outright, Reject resolves it
	// negative, Inconclusive falls through to the v1 signature path.
	// Immutable and shared like the other fields. Intersection only;
	// distance tests ignore them.
	PIv, QIv interval.Spans
}

// NewTester builds a Tester from cfg, applying defaults for zero fields.
func NewTester(cfg Config) *Tester {
	if cfg.Resolution <= 0 {
		cfg.Resolution = DefaultResolution
	}
	t := &Tester{cfg: cfg}
	if !cfg.DisableHardware {
		t.ctx = raster.NewContext(cfg.Resolution, cfg.Resolution)
		if cfg.Faults != nil {
			t.ctx.Hook = cfg.Faults.Hook()
		}
		if cfg.LineWidth > 0 {
			if err := t.ctx.SetLineWidth(cfg.LineWidth); err != nil {
				// Cap at the hardware limit rather than failing: the caller
				// asked for a wider filter than the hardware supports.
				_ = t.ctx.SetLineWidth(raster.MaxLineWidth)
			}
		}
	}
	return t
}

// Config returns the tester's effective configuration.
func (t *Tester) Config() Config { return t.cfg }

// Context exposes the rendering context (nil when hardware is disabled),
// for instrumentation.
func (t *Tester) Context() *raster.Context { return t.ctx }

// ResetStats zeroes the counters.
func (t *Tester) ResetStats() {
	t.Stats = Stats{}
	if t.ctx != nil {
		t.ctx.ResetCounters()
	}
}

// Intersects is Algorithm 3.1: it reports whether the closed regions of p
// and q share at least one point, exactly.
func (t *Tester) Intersects(p, q *geom.Polygon) bool {
	return t.IntersectsCtx(p, q, PairContext{})
}

// Verdict is a filter stage's outcome for one candidate pair: resolved
// negative (Miss), resolved positive (Hit), or left for the refinement
// stage (Undecided). The pipeline drivers route batches by it; the plain
// per-pair entry points compose Filter and Refine back into one call.
type Verdict int8

const (
	// VerdictMiss resolves the pair negative — no refinement needed.
	VerdictMiss Verdict = iota
	// VerdictHit resolves the pair positive — no refinement needed.
	VerdictHit
	// VerdictUndecided passes the pair to the refinement stage.
	VerdictUndecided
)

// IntersectsCtx is Intersects with shared per-object derived data: edge
// indexes in pc replace the linear candidate-edge scans on both the
// hardware and the direct-software path. The verdict is identical for any
// pc — the indexes return exactly the edge sets the scan would.
func (t *Tester) IntersectsCtx(p, q *geom.Polygon, pc PairContext) bool {
	switch t.FilterIntersects(p, q, pc) {
	case VerdictHit:
		return true
	case VerdictMiss:
		return false
	}
	return t.RefineIntersects(p, q, pc)
}

// FilterIntersects runs the cheap, render-free front of Algorithm 3.1 —
// MBR pre-test, point-in-polygon containment, persisted-signature
// disjointness — and reports whether the pair is resolved or must go to
// RefineIntersects. It is the pipeline's filter stage: dense, branch-light
// work that touches no rendering context, so filter workers stay hot while
// refine workers own the expensive edge tests. Exactly one Refine call per
// Undecided verdict keeps the Stats resolution partition (Tests == sum of
// the resolution counters) intact even when filter and refine run on
// different testers and the stats are summed afterwards.
func (t *Tester) FilterIntersects(p, q *geom.Polygon, pc PairContext) Verdict {
	// The fault hook runs before any counter moves, so an injected panic
	// leaves the Stats partition (Tests == sum of resolution paths) intact.
	if t.cfg.Faults != nil {
		t.cfg.Faults.Apply(faultinject.SiteIntersects)
	}
	t.Stats.Tests++
	if !p.Bounds().Intersects(q.Bounds()) {
		t.Stats.MBRRejects++
		return VerdictMiss
	}

	// Interval-approximation verdict (v2 filter): sound in both
	// directions — a full/full cell overlap proves intersection, span
	// disjointness proves the regions (interiors included) are disjoint —
	// so it runs before the containment test; only inconclusive pairs pay
	// for the rest of the filter chain.
	if len(pc.PIv) > 0 && len(pc.QIv) > 0 {
		t.Stats.IntervalChecks++
		switch interval.Compare(pc.PIv, pc.QIv) {
		case interval.TrueHit:
			t.Stats.IntervalTrueHits++
			return VerdictHit
		case interval.Reject:
			t.Stats.IntervalRejects++
			return VerdictMiss
		}
		t.Stats.IntervalInconclusive++
	}

	// Step 1: software point-in-polygon test, both directions. Linear and
	// cache friendly; also the only step that can see containment, which
	// the edge rendering cannot.
	if sweep.ContainmentPossible(p, q) {
		t.Stats.PIPHits++
		return VerdictHit
	}

	// Persisted-signature filter: with containment excluded, the predicate
	// reduces to a boundary intersection, which disjoint signatures refute
	// outright — no rendering, no software test.
	if t.sigReject(p, q, 0, pc) {
		return VerdictMiss
	}
	return VerdictUndecided
}

// RefineIntersects decides a pair FilterIntersects left Undecided: the
// adaptive software/hardware dispatch, the hardware overlap filter, and
// the exact software cross test. Callers must not invoke it on pairs the
// filter resolved — the stats partition counts each test exactly once.
func (t *Tester) RefineIntersects(p, q *geom.Polygon, pc PairContext) bool {
	// Adaptive threshold (§4.3): for simple pairs the fixed hardware
	// overhead exceeds the software sweep, so skip straight to software.
	// The software test runs on the same restricted (and possibly
	// index-collected) edge sets as the hardware path.
	if t.ctx == nil || p.NumVerts()+q.NumVerts() <= t.cfg.SWThreshold {
		t.Stats.SWDirect++
		return t.softwareIntersects(p, q, pc)
	}

	// Circuit-breaker gate: an open breaker means a sentinel disagreement
	// recently proved the hardware filter untrustworthy for this layer
	// pair, so route the pair through the exact software path.
	useHW, probe := pc.Breaker.Allow()
	if !useHW {
		t.Stats.BreakerOpenSkips++
		return t.softwareIntersects(p, q, pc)
	}

	// The hardware and software steps both operate on the same restricted
	// edge sets: only edges touching the intersection of the MBRs can
	// participate in a boundary intersection.
	red, blue := t.collectPair(p, q, p.Bounds().Intersection(q.Bounds()), pc)
	if len(red) == 0 || len(blue) == 0 {
		if probe {
			pc.Breaker.ProbeAbort()
		}
		t.Stats.HWRejects++
		return false
	}

	// Step 2: hardware segment intersection test (steps 2.1–2.8),
	// projecting the intersection of the two MBRs onto the window (§3.2).
	start := time.Now()
	t.ctx.SetViewport(p.Bounds().Intersection(q.Bounds()))
	overlap := t.hwOverlap(red, blue, 0)
	t.Stats.HWTime += time.Since(start)
	if overlap {
		// Inconclusive: step 3, software segment intersection test. The
		// filter did not assert anything unverifiable, so a probe counts
		// as a successful hardware round trip.
		t.Stats.HWPassed++
		if probe && pc.Breaker.ProbeSuccess() {
			t.Stats.BreakerRecoveries++
		}
		start = time.Now()
		ok := t.crossIntersects(red, blue)
		t.Stats.SWTime += time.Since(start)
		return ok
	}
	// A negative is the one verdict taken on trust. The sentinel verifier
	// re-checks a deterministic sample (and every probe) against the exact
	// test; a disagreement corrects the verdict and trips the breaker.
	if t.sentinelPick(probe) {
		t.Stats.SentinelChecks++
		start = time.Now()
		ok := t.crossIntersects(red, blue)
		t.Stats.SWTime += time.Since(start)
		if ok {
			t.Stats.SentinelDisagreements++
			t.Stats.HWPassed++
			if pc.Breaker.Trip() {
				t.Stats.BreakerTrips++
			}
			return true
		}
	}
	if probe && pc.Breaker.ProbeSuccess() {
		t.Stats.BreakerRecoveries++
	}
	t.Stats.HWRejects++
	return false
}

// softwareIntersects decides an intersection test entirely in software on
// the same (possibly index-collected) restricted edge sets the hardware
// path would use. Shared by the SWThreshold fast path and the breaker's
// degraded mode.
func (t *Tester) softwareIntersects(p, q *geom.Polygon, pc PairContext) bool {
	if t.cfg.Software.NoRestrictSearch {
		// Ablation path: unrestricted candidate sets, no index use.
		start := time.Now()
		ok := t.sweeper.BoundariesIntersect(p, q, t.cfg.Software)
		t.Stats.SWTime += time.Since(start)
		return ok
	}
	red, blue := t.collectPair(p, q, p.Bounds().Intersection(q.Bounds()), pc)
	if len(red) == 0 || len(blue) == 0 {
		return false
	}
	start := time.Now()
	ok := t.crossIntersects(red, blue)
	t.Stats.SWTime += time.Since(start)
	return ok
}

// sentinelPick decides whether a hardware-filter negative joins the
// sentinel sample. Deterministic: a per-tester counter picks every
// SentinelEvery-th negative, plus an optional hash-sampled extra fraction
// (SentinelRate); half-open probes are always verified. The counter
// starts at 1, so with the default cadence the first 63 negatives ride
// unsampled — sampling bounds detection latency, not per-pair cost.
func (t *Tester) sentinelPick(probe bool) bool {
	t.sentinelSeq++
	if probe {
		return true
	}
	every := t.cfg.SentinelEvery
	if every < 0 {
		return false
	}
	if every == 0 {
		every = DefaultSentinelEvery
	}
	if t.sentinelSeq%uint64(every) == 0 {
		return true
	}
	if r := t.cfg.SentinelRate; r > 0 {
		return float64(sentinelMix(t.sentinelSeq)>>11)/(1<<53) < r
	}
	return false
}

// sentinelMix is splitmix64, decorrelating the sequence counter for the
// rate-based sentinel sample.
func sentinelMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sigReject consults the pair's persisted raster signatures and reports
// whether they prove the boundaries cannot come within d of each other
// (d = 0: cannot intersect). Callers must have excluded containment — a
// contained pair has intersecting regions with arbitrarily distant
// boundaries, which signatures cannot see. Signatures whose bounds do not
// match the tested polygons (a mismatched PairContext) are ignored, like
// a mismatched edge index.
func (t *Tester) sigReject(p, q *geom.Polygon, d float64, pc PairContext) bool {
	if !pc.PSig.Valid() || !pc.QSig.Valid() {
		return false
	}
	if pc.PSig.Bounds != p.Bounds() || pc.QSig.Bounds != q.Bounds() {
		return false
	}
	t.Stats.SigChecks++
	if raster.SignaturesMayIntersect(pc.PSig, pc.QSig, d) {
		return false
	}
	t.Stats.SigRejects++
	return true
}

// collectPair gathers the candidate edges of p and q touching r into the
// tester's scratch buffers, going through each side's edge index when the
// PairContext carries one (blue is skipped when red comes back empty,
// matching sweep.CandidateEdgesInto). The edge sets — content and order —
// are identical with and without indexes; only the work to find them
// differs, which the EdgeIndex stats record.
func (t *Tester) collectPair(p, q *geom.Polygon, r geom.Rect, pc PairContext) (red, blue []geom.Segment) {
	start := time.Now()
	red, skipped, indexed := collectSide(t.redBuf, p, pc.PIndex, r)
	t.redBuf = red[:0]
	if len(red) > 0 {
		var skq int
		var ixq bool
		blue, skq, ixq = collectSide(t.blueBuf, q, pc.QIndex, r)
		t.blueBuf = blue[:0]
		skipped += skq
		indexed = indexed || ixq
	}
	t.Stats.CollectTime += time.Since(start)
	if indexed {
		t.Stats.EdgeIndexHits++
	}
	t.Stats.EdgeIndexSkippedEdges += int64(skipped)
	return red, blue
}

// collectSide collects one polygon's candidate edges, via its index when
// one is supplied (and actually indexes this polygon), else linearly.
func collectSide(buf []geom.Segment, p *geom.Polygon, ix *edgeindex.Index, r geom.Rect) (segs []geom.Segment, skipped int, indexed bool) {
	if ix != nil && ix.Indexed() && ix.Polygon() == p {
		segs, examined := ix.AppendEdgesInRect(buf[:0], r)
		return segs, p.NumEdges() - examined, true
	}
	return sweep.AppendEdgesInRange(buf[:0], p, r, 0, p.NumEdges()), 0, false
}

// WithinDistance reports whether the regions of p and q are within
// distance d, exactly, using the hardware widened-edge filter where
// profitable.
func (t *Tester) WithinDistance(p, q *geom.Polygon, d float64) bool {
	return t.WithinDistanceCtx(p, q, d, PairContext{})
}

// WithinDistanceCtx is WithinDistance with shared per-object derived
// data; see IntersectsCtx.
func (t *Tester) WithinDistanceCtx(p, q *geom.Polygon, d float64, pc PairContext) bool {
	switch t.FilterWithin(p, q, d, pc) {
	case VerdictHit:
		return true
	case VerdictMiss:
		return false
	}
	return t.RefineWithin(p, q, d, pc)
}

// FilterWithin is the within-distance filter stage: MBR distance pre-test,
// containment, and d-expanded signature disjointness, none of which touch
// the rendering context. See FilterIntersects for the stats contract.
func (t *Tester) FilterWithin(p, q *geom.Polygon, d float64, pc PairContext) Verdict {
	if t.cfg.Faults != nil {
		t.cfg.Faults.Apply(faultinject.SiteWithinDistance)
	}
	t.Stats.Tests++
	if p.Bounds().Dist(q.Bounds()) > d {
		t.Stats.MBRRejects++
		return VerdictMiss
	}

	// Containment makes the region distance zero but leaves boundaries
	// arbitrarily far apart, so it must be handled before edge rendering,
	// exactly as in Algorithm 3.1.
	if sweep.ContainmentPossible(p, q) {
		t.Stats.PIPHits++
		return VerdictHit
	}

	// Persisted-signature filter: with containment excluded, within-d
	// reduces to the boundaries coming within d, which the signatures
	// refute when their d-expanded cells are disjoint.
	if t.sigReject(p, q, d, pc) {
		return VerdictMiss
	}
	return VerdictUndecided
}

// RefineWithin decides a pair FilterWithin left Undecided: threshold
// dispatch, the widened-edge hardware filter (with its line-width
// fallback), and the exact software distance test.
func (t *Tester) RefineWithin(p, q *geom.Polygon, d float64, pc PairContext) bool {
	if t.ctx == nil || p.NumVerts()+q.NumVerts() <= t.cfg.SWThreshold {
		t.Stats.SWDirect++
		return t.softwareWithin(p, q, d)
	}

	// Circuit-breaker gate; see IntersectsCtx.
	useHW, probe := pc.Breaker.Allow()
	if !useHW {
		t.Stats.BreakerOpenSkips++
		return t.softwareWithin(p, q, d)
	}

	// Viewport: the MBR of the smaller object expanded by d (§3.2 projects
	// "the expanded bounding rectangle of the smaller object"). If the
	// pair is within d, the midpoint of the closest pair lies inside this
	// region and both widened boundaries cover its pixel. The projection
	// must be uniform so that the data-space distance d maps to one line
	// width on both axes; the width is padded by one ulp-scale epsilon so
	// pairs at exactly distance d stay inside the conservative coverage.
	small := p.Bounds()
	if q.Bounds().Area() < small.Area() {
		small = q.Bounds()
	}
	region := small.Expand(d)
	scale := t.ctx.SetViewportUniform(region)
	widthPx := d * scale
	widthPx += 1e-9 * (1 + widthPx)
	if widthPx > raster.MaxLineWidth {
		// Hardware line-width limit (paper §4.4): fall back to software.
		// No hardware verdict was produced, so a claimed probe is handed
		// back for the next pair.
		if probe {
			pc.Breaker.ProbeAbort()
		}
		t.Stats.HWFallbacks++
		return t.softwareWithin(p, q, d)
	}

	// Only edges whose widened capsule can reach the viewport matter:
	// those within d/2 of it, i.e. touching the region expanded by a
	// further d/2. The pre-clip uses the same cheap bounds test as the
	// software path — through the edge indexes when the PairContext
	// carries them — so a monster polygon paired with a small object
	// submits only its nearby reach (§3.2: the projection "avoids
	// rendering unnecessary edges").
	red, blue := t.collectPair(p, q, small.Expand(d), pc)
	if len(red) == 0 || len(blue) == 0 {
		// One boundary has no presence near the smaller object at all:
		// with containment excluded the pair cannot be within d.
		if probe {
			pc.Breaker.ProbeAbort()
		}
		t.Stats.HWRejects++
		return false
	}

	start := time.Now()
	overlap := t.hwOverlap(red, blue, widthPx)
	t.Stats.HWTime += time.Since(start)
	if overlap {
		t.Stats.HWPassed++
		if probe && pc.Breaker.ProbeSuccess() {
			t.Stats.BreakerRecoveries++
		}
		start = time.Now()
		ok := t.softwareWithin(p, q, d)
		t.Stats.SWTime += time.Since(start)
		return ok
	}
	// Sentinel verification of the trusted negative, with the exact
	// distance test as the oracle; see IntersectsCtx.
	if t.sentinelPick(probe) {
		t.Stats.SentinelChecks++
		start = time.Now()
		ok := t.softwareWithin(p, q, d)
		t.Stats.SWTime += time.Since(start)
		if ok {
			t.Stats.SentinelDisagreements++
			t.Stats.HWPassed++
			if pc.Breaker.Trip() {
				t.Stats.BreakerTrips++
			}
			return true
		}
	}
	if probe && pc.Breaker.ProbeSuccess() {
		t.Stats.BreakerRecoveries++
	}
	t.Stats.HWRejects++
	return false
}

// softwareWithin runs the software distance test knowing that containment
// has been excluded. The chain-distance computation runs first: its
// frontier culling assumes disjoint boundaries, but culling can only
// *over*-report the distance, so a ≤ d verdict is always sound and exits
// early — the common case for the mostly-positive pairs the filters leave
// behind. Only a > d report needs the boundary-crossing check to confirm
// that the disjointness assumption held.
func (t *Tester) softwareWithin(p, q *geom.Polygon, d float64) bool {
	if dist.BoundaryWithinScratch(p, q, d, t.cfg.Dist, &t.distScratch) {
		return true
	}
	return p.Bounds().Intersects(q.Bounds()) && t.sweeper.BoundariesIntersect(p, q, t.cfg.Software)
}

// hwOverlap runs the hardware overlap test (Algorithm 3.1 steps 2.1–2.8)
// on the given edge sets under the caller-established viewport and reports
// whether any pixel was colored by both sets. widthPx 0 uses the context's
// anti-aliased default width.
//
// A wrong-answer fault armed at SiteHWFilter flips the verdict here. The
// reject→inconclusive direction is harmless (inconclusive pairs go to the
// exact software test); the overlap→reject direction silently loses
// results, which is precisely the trust the engine places in conservative
// rasterization — the fault-injection tests document that boundary.
func (t *Tester) hwOverlap(red, blue []geom.Segment, widthPx float64) bool {
	saved0 := t.ctx.DirtyClearPixelsSaved
	overlap := t.hwOverlapRaw(red, blue, widthPx)
	t.Stats.DirtyClearPixelsSaved += t.ctx.DirtyClearPixelsSaved - saved0
	if t.cfg.Faults != nil && t.cfg.Faults.Wrong(faultinject.SiteHWFilter) {
		overlap = !overlap
	}
	return overlap
}

func (t *Tester) hwOverlapRaw(red, blue []geom.Segment, widthPx float64) bool {
	ctx := t.ctx
	ctx.Clear()
	if t.cfg.UseAccum {
		// Accumulation protocol: two half-intensity layers sum to full
		// intensity exactly on overlap pixels.
		ctx.SetColor(0.5)
		drawSet(ctx, red, widthPx)
		ctx.AccumLoad(1)
		ctx.Clear()
		drawSet(ctx, blue, widthPx)
		ctx.AccumAdd(1)
		_, maxV := minMaxAccum(ctx)
		return maxV >= 1
	}
	// Occlusion-query protocol: render one layer, then test the other
	// layer's fragments against the buffer, stopping at the first covered
	// fragment. Semantically identical to the accumulation search; the
	// early exit mirrors hardware occlusion tests. Rendering the smaller
	// set and testing the larger one bounds the stored pass by the cheap
	// side and lets overlapping pairs exit during the expensive side.
	if len(red) > len(blue) {
		red, blue = blue, red
	}
	ctx.SetColor(1)
	drawSet(ctx, red, widthPx)
	for _, s := range blue {
		if ctx.SegmentTouches(s, widthPx) {
			return true
		}
	}
	return false
}

// drawSet renders segments at the given width, 0 meaning the context
// default.
func drawSet(ctx *raster.Context, segs []geom.Segment, widthPx float64) {
	if widthPx > 0 {
		for _, s := range segs {
			ctx.DrawSegmentWidth(s, widthPx)
		}
	} else {
		ctx.DrawEdges(segs)
	}
}

// minMaxAccum is the Minmax hardware query over the accumulation buffer:
// cost proportional to the window area, matching the fixed per-test
// overhead the paper attributes to the buffer search.
func minMaxAccum(ctx *raster.Context) (minV, maxV float32) {
	buf := ctx.Accum()
	if len(buf.Pix) == 0 {
		return 0, 0
	}
	minV, maxV = buf.Pix[0], buf.Pix[0]
	for _, v := range buf.Pix[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}

// crossIntersects dispatches the software segment test on pre-restricted
// edge sets. With the default algorithm the dispatch is adaptive: small
// work products go to the all-pairs scan (the common case once the edge
// index has shrunk the sets), large ones to the tester's reusable plane
// sweep. All algorithms are exact, so the choice never changes a verdict.
func (t *Tester) crossIntersects(red, blue []geom.Segment) bool {
	switch t.cfg.Software.Algorithm {
	case sweep.ForwardScan:
		return sweep.CrossIntersectsForwardScan(red, blue)
	case sweep.BruteForce:
		return sweep.CrossIntersectsBrute(red, blue)
	default:
		cutoff := t.cfg.CrossCutoff
		if cutoff == 0 {
			cutoff = DefaultCrossCutoff
		}
		if cutoff > 0 && len(red)*len(blue) <= cutoff {
			return sweep.CrossIntersectsBrute(red, blue)
		}
		return t.sweeper.CrossIntersects(red, blue)
	}
}
