package core

import (
	"math/rand"
	"testing"

	"repro/internal/edgeindex"
	"repro/internal/geom"
)

// steadyStatePairs builds a pool of polygon pairs spanning the refinement
// paths: MBR rejects, containment hits, software-direct pairs, and pairs
// large enough to take the hardware path.
func steadyStatePairs(rng *rand.Rand) [][2]*geom.Polygon {
	var pairs [][2]*geom.Polygon
	for i := range 12 {
		n := 16 + rng.Intn(64)
		if i%3 == 0 {
			n = 300 + rng.Intn(300) // over DefaultSWThreshold combined
		}
		p := star(rng, rng.Float64()*4, rng.Float64()*4, 1+rng.Float64()*3, n)
		q := star(rng, rng.Float64()*4, rng.Float64()*4, 1+rng.Float64()*3, 16+rng.Intn(200))
		pairs = append(pairs, [2]*geom.Polygon{p, q})
	}
	// A guaranteed MBR reject.
	pairs = append(pairs, [2]*geom.Polygon{
		star(rng, 0, 0, 1, 32), star(rng, 100, 100, 1, 32),
	})
	return pairs
}

// TestIntersectsSteadyStateAllocFree pins the hot-path allocation contract:
// after warm-up (scratch buffers grown, sweeper storage sized), repeated
// Intersects calls perform zero allocations — with and without edge
// indexes in the PairContext.
func TestIntersectsSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pairs := steadyStatePairs(rng)
	tester := NewTester(Config{Resolution: 8, SWThreshold: DefaultSWThreshold})
	indexes := make([][2]*edgeindex.Index, len(pairs))
	for i, pr := range pairs {
		indexes[i] = [2]*edgeindex.Index{edgeindex.New(pr[0]), edgeindex.New(pr[1])}
	}

	run := func() {
		for i, pr := range pairs {
			tester.Intersects(pr[0], pr[1])
			tester.IntersectsCtx(pr[0], pr[1], PairContext{PIndex: indexes[i][0], QIndex: indexes[i][1]})
		}
	}
	run() // warm-up: grow every scratch buffer once
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state Intersects allocates %.1f times per round, want 0", allocs)
	}
}

// TestWithinDistanceSteadyStateAllocFree is the same contract for the
// distance test, covering the software minDist path and the widened-edge
// hardware path.
func TestWithinDistanceSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pairs := steadyStatePairs(rng)
	tester := NewTester(Config{Resolution: 8, SWThreshold: DefaultSWThreshold})
	indexes := make([][2]*edgeindex.Index, len(pairs))
	for i, pr := range pairs {
		indexes[i] = [2]*edgeindex.Index{edgeindex.New(pr[0]), edgeindex.New(pr[1])}
	}

	run := func() {
		for i, pr := range pairs {
			tester.WithinDistance(pr[0], pr[1], 0.5)
			tester.WithinDistanceCtx(pr[0], pr[1], 0.5, PairContext{PIndex: indexes[i][0], QIndex: indexes[i][1]})
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("steady-state WithinDistance allocates %.1f times per round, want 0", allocs)
	}
}
