package shellcmd

// Shard-side verbs for the multi-node deployment. A shard is a vanilla
// spatiald process serving the per-tile snapshots written by the
// partition verb; what makes it a shard is only which commands the
// coordinator sends it. The shard verbs differ from their single-node
// counterparts in two ways:
//
//   - They emit machine-readable data lines — "id <N>" for selections,
//     "pair <A> <B>" for joins, and one trailing "stats <json>" record —
//     instead of a human summary, so the coordinator can merge streams
//     without scraping prose. None of these prefixes collides with the
//     wire status words (ok / partial: / error:).
//
//   - The join verbs take the shard's ownership region on the wire and
//     apply the reference-point rule locally: a pair is emitted only if
//     this shard owns the reference point of its MBR intersection, so
//     the coordinator can concatenate shard outputs without
//     deduplication. Ids are the stable global ids persisted in the tile
//     snapshots (SaveOptions.IDs), so merged results are directly
//     comparable with a single-node run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
)

// globalIDs returns the layer's stable-id column when it was loaded from
// a snapshot that persisted one; nil means identity (local index == id).
func globalIDs(v *query.View) []uint64 {
	if l, ok := v.Single(); ok {
		if s, ok := l.Snapshot(); ok {
			return s.IDs()
		}
	}
	return nil
}

func gid(ids []uint64, i int) uint64 {
	if ids == nil {
		return uint64(i)
	}
	return ids[i]
}

// parseRect reads an ownership region from four wire fields. Border
// tiles carry ±Inf edges; strconv round-trips them ("+Inf"/"-Inf").
func parseRect(args []string) (geom.Rect, error) {
	var v [4]float64
	for i, a := range args {
		f, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("bad region coordinate %q: %w", a, err)
		}
		v[i] = f
	}
	return geom.Rect{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}, nil
}

// FormatRect renders a region for the wire in the form parseRect reads.
func FormatRect(r geom.Rect) string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return f(r.MinX) + " " + f(r.MinY) + " " + f(r.MaxX) + " " + f(r.MaxY)
}

// writeStats terminates a shard response's data section with the uniform
// stats record on one line.
func writeStats(out io.Writer, st query.Stats) {
	b, err := json.Marshal(st)
	if err != nil {
		return // stats are advisory; never poison the data stream
	}
	fmt.Fprintf(out, "stats %s\n", b)
}

// partitionCmd splits a layer into a tile grid on disk:
// partition <layer> <tiles> <dir> [margin [replicas]]
func (e *Engine) partitionCmd(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 3 || len(args) > 5 {
		return Result{}, fmt.Errorf("usage: partition <layer> <tiles> <dir> [margin [replicas]]")
	}
	v, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 1 {
		return Result{}, fmt.Errorf("bad tile count %q", args[1])
	}
	margin := 0.0
	if len(args) >= 4 {
		if margin, err = strconv.ParseFloat(args[3], 64); err != nil || margin < 0 {
			return Result{}, fmt.Errorf("bad margin %q", args[3])
		}
	}
	replicas := 0
	if len(args) == 5 {
		if replicas, err = strconv.Atoi(args[4]); err != nil || replicas < 1 {
			return Result{}, fmt.Errorf("bad replica count %q", args[4])
		}
	}
	res, err := partition.Write(args[2], args[0], v.Dataset(),
		partition.Options{Tiles: n, Replicas: replicas, Margin: margin, Tool: "spatialdb"})
	if err != nil {
		return Result{}, err
	}
	m := res.Manifest
	fmt.Fprintf(out, "partitioned %q into %d tiles x %d replicas (%dx%d grid, margin %g) under %s: %d objects, %d replicas (%.2fx), %d bytes in %.1fms (generation %d)\n",
		args[0], m.NumTiles(), m.Replicas(), m.GX, m.GY, m.Margin, args[2],
		res.Objects, res.Replicas, float64(res.Replicas)/float64(max(res.Objects, 1)),
		res.Bytes, res.WallMS, m.Generation)
	return Result{Stats: query.Stats{Op: "partition", Results: res.Objects}, Mutation: true}, nil
}

// shardSelect runs a selection and emits stable ids:
// shardselect <layer> <WKT POLYGON>
func (e *Engine) shardSelect(ctx context.Context, store Store, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "shardselect"))
	name, wkt, ok := strings.Cut(rest, " ")
	if !ok {
		return Result{}, fmt.Errorf("usage: shardselect <layer> <WKT POLYGON>")
	}
	v, err := viewOf(store, name)
	if err != nil {
		return Result{}, err
	}
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		return Result{}, err
	}
	tester, err := e.tester("hw")
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	// Streaming delivery: result ids flush to the client in batches as
	// refinement proceeds instead of buffering the whole selection. Rows
	// returned by the view were already streamed, so nothing is re-printed
	// below — on a partial, the rows out are exactly the rows found.
	stable := globalIDs(v)
	var buf bytes.Buffer
	sink := func(batch []int) error {
		buf.Reset()
		for _, i := range batch {
			fmt.Fprintf(&buf, "id %d\n", gid(stable, i))
		}
		_, werr := out.Write(buf.Bytes())
		return werr
	}
	ids, cost, qerr := query.IntersectionSelectView(qctx, v, q, tester,
		query.SelectionOptions{InteriorLevel: 4, MaxCandidates: e.Settings.Budget,
			BatchSize: e.Settings.BatchSize, Sink: sink})
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	st := query.NewStats("shardselect", len(ids), cost, tester.Stats)
	liveStats(&st, v)
	writeStats(out, st)
	return Result{Stats: st, Partial: note(out, qerr)}, nil
}

// shardJoin runs an intersection join and emits only the pairs whose
// reference point this shard owns:
// shardjoin <a> <b> <minx> <miny> <maxx> <maxy> [sw|hw]
func (e *Engine) shardJoin(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 6 || len(args) > 7 {
		return Result{}, fmt.Errorf("usage: shardjoin <a> <b> <minx> <miny> <maxx> <maxy> [sw|hw]")
	}
	a, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	b, err := viewOf(store, args[1])
	if err != nil {
		return Result{}, err
	}
	region, err := parseRect(args[2:6])
	if err != nil {
		return Result{}, err
	}
	mode := ""
	if len(args) == 7 {
		mode = args[6]
	}
	opt, err := e.pipelineOpts(mode, 0)
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	// The join runs through the staged batch pipeline; each refined batch
	// streams its owned pairs to the client immediately (the emit stage),
	// so the coordinator and wire clients see first rows while refinement
	// is still running. The reference-point ownership filter runs inside
	// the sink.
	da, db := a.Dataset(), b.Dataset()
	idsA, idsB := globalIDs(a), globalIDs(b)
	owned := 0
	var buf bytes.Buffer
	opt.Sink = func(pairs []query.Pair) error {
		buf.Reset()
		for _, p := range pairs {
			ref := partition.RefPoint(da.Objects[p.A].Bounds(), db.Objects[p.B].Bounds())
			if !partition.OwnsRect(region, ref) {
				continue
			}
			owned++
			fmt.Fprintf(&buf, "pair %d %d\n", gid(idsA, p.A), gid(idsB, p.B))
		}
		if buf.Len() == 0 {
			return nil
		}
		_, werr := out.Write(buf.Bytes())
		return werr
	}
	_, stats, qerr := query.PipelineIntersectionJoinView(qctx, a, b, opt)
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	st := query.NewStats("shardjoin", owned, query.Cost{}, stats)
	liveStats(&st, a, b)
	writeStats(out, st)
	return Result{Stats: st, Partial: note(out, qerr)}, nil
}

// shardWithin is the within-distance counterpart of shardJoin; the
// reference point is taken over the d-expanded MBR intersection, which
// is only guaranteed to fall in the owning tile's replicas when the
// partitioning margin is ≥ d (the coordinator enforces that).
// shardwithin <a> <b> <D> <minx> <miny> <maxx> <maxy> [sw|hw]
func (e *Engine) shardWithin(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 7 || len(args) > 8 {
		return Result{}, fmt.Errorf("usage: shardwithin <a> <b> <D> <minx> <miny> <maxx> <maxy> [sw|hw]")
	}
	a, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	b, err := viewOf(store, args[1])
	if err != nil {
		return Result{}, err
	}
	d, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad distance: %w", err)
	}
	region, err := parseRect(args[3:7])
	if err != nil {
		return Result{}, err
	}
	mode := ""
	if len(args) == 8 {
		mode = args[7]
	}
	opt, err := e.pipelineOpts(mode, 0)
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	// Same staged pipeline + streaming emit as shardJoin; the d-expanded
	// reference-point ownership filter runs inside the sink.
	da, db := a.Dataset(), b.Dataset()
	idsA, idsB := globalIDs(a), globalIDs(b)
	owned := 0
	var buf bytes.Buffer
	opt.Sink = func(pairs []query.Pair) error {
		buf.Reset()
		for _, p := range pairs {
			ref := partition.RefPointWithin(da.Objects[p.A].Bounds(), db.Objects[p.B].Bounds(), d)
			if !partition.OwnsRect(region, ref) {
				continue
			}
			owned++
			fmt.Fprintf(&buf, "pair %d %d\n", gid(idsA, p.A), gid(idsB, p.B))
		}
		if buf.Len() == 0 {
			return nil
		}
		_, werr := out.Write(buf.Bytes())
		return werr
	}
	_, stats, qerr := query.PipelineWithinDistanceJoinView(qctx, a, b, d, opt)
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	st := query.NewStats("shardwithin", owned, query.Cost{}, stats)
	liveStats(&st, a, b)
	writeStats(out, st)
	return Result{Stats: st, Partial: note(out, qerr)}, nil
}
