package shellcmd

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/partition"
)

func mustExec(t *testing.T, e *Engine, line string) string {
	t.Helper()
	var out bytes.Buffer
	if _, err := e.Exec(context.Background(), line, &out); err != nil {
		t.Fatalf("%s: %v", line, err)
	}
	return out.String()
}

// dataLines filters a shard response to lines with the given prefix word.
func dataLines(out, word string) []string {
	var got []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, word+" ") {
			got = append(got, l)
		}
	}
	sort.Strings(got)
	return got
}

// TestShardJoinWholePlaneMatchesJoin pins the reference-point rule's base
// case: one shard owning the whole plane emits exactly the single-node
// join's pair set.
func TestShardJoinWholePlaneMatchesJoin(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	mustExec(t, e, "gen a LANDC 0.01")
	mustExec(t, e, "gen b LANDO 0.01")
	whole := FormatRect(geom.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)})
	out := mustExec(t, e, "shardjoin a b "+whole)
	pairs := dataLines(out, "pair")

	var joinOut bytes.Buffer
	res, err := e.Exec(context.Background(), "join a b", &joinOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != res.Stats.Results {
		t.Fatalf("whole-plane shardjoin emitted %d pairs, single-node join found %d", len(pairs), res.Stats.Results)
	}
	if len(dataLines(out, "stats")) != 1 {
		t.Fatalf("shardjoin must emit exactly one stats line:\n%s", out)
	}
}

// TestShardJoinRegionsPartitionPairs pins the dedup invariant the
// coordinator relies on: over any tiling of the plane, every pair is
// emitted by exactly one region.
func TestShardJoinRegionsPartitionPairs(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	mustExec(t, e, "gen a LANDC 0.01")
	mustExec(t, e, "gen b LANDO 0.01")
	m := &partition.Manifest{Bounds: geom.R(0, 0, 60, 60), GX: 2, GY: 2}
	counts := map[string]int{}
	for id := 0; id < m.NumTiles(); id++ {
		out := mustExec(t, e, fmt.Sprintf("shardjoin a b %s", FormatRect(m.Region(id))))
		for _, p := range dataLines(out, "pair") {
			counts[p]++
		}
	}
	var joinOut bytes.Buffer
	res, err := e.Exec(context.Background(), "join a b", &joinOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != res.Stats.Results {
		t.Fatalf("union over regions has %d distinct pairs, join found %d", len(counts), res.Stats.Results)
	}
	for p, n := range counts {
		if n != 1 {
			t.Fatalf("pair %q emitted by %d regions, want exactly 1", p, n)
		}
	}
}

// TestShardSelectStableIDs verifies shardselect reports the global ids
// persisted in a tile snapshot, not tile-local indexes.
func TestShardSelectStableIDs(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	mustExec(t, e, "gen base LANDC 0.01")
	dir := t.TempDir()
	mustExec(t, e, fmt.Sprintf("partition base 4 %s", dir))
	m, err := partition.Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	wkt := "POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))"
	want := dataLines(mustExec(t, e, "shardselect base "+wkt), "id")

	// Union of per-tile selects, deduplicated, must equal the single-node
	// ids (selects need no reference point — the coordinator dedups).
	got := map[string]bool{}
	for _, tile := range m.Tiles {
		name := fmt.Sprintf("t%d", tile.ID)
		mustExec(t, e, fmt.Sprintf("load %s %s", name,
			filepath.Join(dir, tile.Dir, partition.SnapshotName("base"))))
		for _, l := range dataLines(mustExec(t, e, fmt.Sprintf("shardselect %s %s", name, wkt)), "id") {
			got[l] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("tile union has %d ids, single-node select has %d", len(got), len(want))
	}
	for _, l := range want {
		if !got[l] {
			t.Fatalf("single-node id %q missing from tile union", l)
		}
	}
}

func TestShardVerbsAreQueries(t *testing.T) {
	for _, v := range []string{"shardjoin", "shardwithin", "shardselect"} {
		if !IsQuery(v) {
			t.Errorf("IsQuery(%q) = false; shard verbs must pass admission control", v)
		}
	}
	if IsQuery("partition") {
		t.Error("partition is administrative, not a query")
	}
}
