package shellcmd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/query"
)

// liveEngine builds an engine with an ingest manager over a temp dir, the
// shape spatiald uses when durable ingestion is enabled.
func liveEngine(t *testing.T) *Engine {
	t.Helper()
	m := ingest.NewManager(ingest.Options{Dir: t.TempDir(), DisableCompactor: true})
	t.Cleanup(func() { _ = m.Close() })
	return &Engine{Store: MapStore{}, Live: m}
}

func execErr(e *Engine, line string) error {
	var sb strings.Builder
	_, err := e.Exec(context.Background(), line, &sb)
	return err
}

func TestLiveIngestVerbs(t *testing.T) {
	e := liveEngine(t)

	out, res := exec(t, e, "live fleet")
	if !strings.Contains(out, `live table "fleet": 0 objects`) {
		t.Errorf("live output = %q", out)
	}
	if !res.Mutation || res.Stats.Op != "live" {
		t.Errorf("live result = %+v", res)
	}

	// Overlapping unit squares: i and i+1 intersect, i and i+2 do not.
	for i := 0; i < 6; i++ {
		x := float64(i) * 0.6
		out, res = exec(t, e, wktInsert("fleet", x))
		if !strings.Contains(out, "inserted id") {
			t.Errorf("insert %d output = %q", i, out)
		}
		if !res.Mutation {
			t.Errorf("insert %d not a mutation", i)
		}
	}

	out, sel := exec(t, e, "select fleet POLYGON ((0 0, 10 0, 10 1, 0 1))")
	if sel.Stats.Results != 6 {
		t.Errorf("live select = %d results (%q)", sel.Stats.Results, out)
	}
	if sel.Stats.LiveDelta != 6 || sel.Stats.LiveTombstones != 0 {
		t.Errorf("live select provenance = +%d/-%d, want +6/-0",
			sel.Stats.LiveDelta, sel.Stats.LiveTombstones)
	}

	out, del := exec(t, e, "delete fleet 2")
	if !strings.Contains(out, "deleted id 2") {
		t.Errorf("delete output = %q", out)
	}
	if !del.Mutation {
		t.Error("delete not a mutation")
	}
	_, sel = exec(t, e, "select fleet POLYGON ((0 0, 10 0, 10 1, 0 1))")
	if sel.Stats.Results != 5 {
		t.Errorf("select after delete = %d results", sel.Stats.Results)
	}
	// id 2 lived in the delta (the base snapshot is empty), so the delete
	// removes it outright rather than leaving a tombstone.
	if sel.Stats.LiveDelta != 5 || sel.Stats.LiveTombstones != 0 {
		t.Errorf("post-delete provenance = +%d/-%d, want +5/-0",
			sel.Stats.LiveDelta, sel.Stats.LiveTombstones)
	}

	// Deleting a missing id is a typed NotFoundError, not a silent no-op.
	err := execErr(e, "delete fleet 404")
	var nf *ingest.NotFoundError
	if !errors.As(err, &nf) || nf.ID != 404 {
		t.Errorf("delete of missing id: %v", err)
	}

	// Self-join over the live view: squares overlap their neighbours.
	_, join := exec(t, e, "join fleet fleet hw")
	if join.Stats.Results == 0 {
		t.Error("live self-join found no pairs")
	}
	if join.Stats.LiveDelta == 0 {
		t.Error("live join carried no delta provenance")
	}

	// layers shows the uncompacted counts next to the live table.
	out, _ = exec(t, e, "layers")
	if !strings.Contains(out, "+5/-0 uncompacted") {
		t.Errorf("layers output = %q", out)
	}
}

func TestLiveUnsupportedAndCompact(t *testing.T) {
	e := liveEngine(t)
	exec(t, e, "live fleet")
	for i := 0; i < 4; i++ {
		exec(t, e, wktInsert("fleet", float64(i)*0.6))
	}

	// knn and overlay require a compacted single layer: typed refusal.
	err := execErr(e, "knn fleet POLYGON ((0 0, 1 0, 1 1)) 2")
	var lu *query.LiveUnsupportedError
	if !errors.As(err, &lu) {
		t.Errorf("knn over live view: %v", err)
	}

	out, res := exec(t, e, "compact fleet")
	if !strings.Contains(out, `compacted "fleet"`) || !strings.Contains(out, "4 objects") {
		t.Errorf("compact output = %q", out)
	}
	if !res.Mutation || res.Stats.Op != "compact" {
		t.Errorf("compact result = %+v", res)
	}

	// Post-compaction the view is a plain snapshot again: knn works and
	// the provenance counters go quiet.
	_, knn := exec(t, e, "knn fleet POLYGON ((0 0, 1 0, 1 1)) 2")
	if knn.Stats.Results != 2 {
		t.Errorf("knn after compact = %d results", knn.Stats.Results)
	}
	_, sel := exec(t, e, "select fleet POLYGON ((0 0, 10 0, 10 1, 0 1))")
	if sel.Stats.Results != 4 || sel.Stats.LiveDelta != 0 {
		t.Errorf("post-compact select = %d results, +%d delta",
			sel.Stats.Results, sel.Stats.LiveDelta)
	}
}

func TestLiveVerbErrors(t *testing.T) {
	// Without a manager, live is a clear refusal naming the missing
	// subsystem; the other verbs fail at layer lookup like any bad name.
	e := &Engine{Store: MapStore{}}
	if err := execErr(e, "live x"); err == nil || !strings.Contains(err.Error(), "ingest") {
		t.Errorf("live without manager: %v", err)
	}
	for _, line := range []string{"insert x POLYGON ((0 0, 1 0, 1 1))", "delete x 1", "compact x"} {
		if err := execErr(e, line); err == nil {
			t.Errorf("%q without manager succeeded", line)
		}
	}

	el := liveEngine(t)
	// insert/delete/compact against a plain (non-live) layer refuse.
	exec(t, el, "gen water WATER 0.005")
	if err := execErr(el, "insert water POLYGON ((0 0, 1 0, 1 1))"); err == nil || !strings.Contains(err.Error(), "not a live table") {
		t.Errorf("insert into plain layer: %v", err)
	}
	if err := execErr(el, "delete water 0"); err == nil || !strings.Contains(err.Error(), "not a live table") {
		t.Errorf("delete from plain layer: %v", err)
	}
	// Bad WKT and bad ids are argument errors.
	exec(t, el, "live fleet")
	if err := execErr(el, "insert fleet POLYGON ((0 0))"); err == nil {
		t.Error("degenerate polygon accepted")
	}
	if err := execErr(el, "delete fleet notanid"); err == nil {
		t.Error("non-numeric id accepted")
	}
	if err := execErr(el, "live bad/name"); err == nil {
		t.Error("invalid table name accepted")
	}
}

func wktInsert(table string, x float64) string {
	return fmt.Sprintf("insert %s POLYGON ((%.2f 0, %.2f 0, %.2f 1, %.2f 1))",
		table, x, x+1, x+1, x)
}
