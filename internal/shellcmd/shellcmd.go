// Package shellcmd is the one command grammar shared by the interactive
// spatialdb shell and spatiald's network wire protocol: a line-oriented
// language over the query engine (gen, load, layers, stats, join, pjoin,
// overlay, within, select, knn, timeout, budget, help). Extracting it
// keeps the two front ends from drifting — a command behaves identically
// typed at the shell prompt, piped over TCP, or posted to the HTTP
// endpoint, and every query reports through the uniform query.Stats
// record that the serving layer logs and aggregates.
//
// An Engine executes one command at a time against a Store (the layer
// namespace). Single-user callers use a MapStore; concurrent callers
// provide a Store whose View method returns a read-consistent snapshot so
// that a join reads both its layers from the same catalog generation.
package shellcmd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/geom"
	"repro/internal/ingest"
	"repro/internal/query"
	snap "repro/internal/store"
)

// Store is the layer namespace a command executes against. Values are
// query.Source: plain immutable layers and live ingesting tables bind
// under the same names and every query verb works on both.
type Store interface {
	Get(name string) (query.Source, bool)
	// Set binds a name to a source; implementations may refuse (e.g. a
	// bounded server catalog).
	Set(name string, s query.Source) error
	Names() []string
}

// Viewer is optionally implemented by stores that can produce a
// read-consistent view for the duration of one command. The Engine takes
// one view per Exec, so a two-layer query never mixes catalog
// generations.
type Viewer interface {
	View() Store
}

// MapStore is the plain single-session Store used by the interactive
// shell and by stateless one-shot callers.
type MapStore map[string]query.Source

// Get looks the name up.
func (m MapStore) Get(name string) (query.Source, bool) { s, ok := m[name]; return s, ok }

// Set binds the name; a MapStore never refuses.
func (m MapStore) Set(name string, s query.Source) error { m[name] = s; return nil }

// Names lists the bound names, sorted.
func (m MapStore) Names() []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Settings are the per-session query guards, mutated by the timeout and
// budget commands.
type Settings struct {
	// Timeout bounds each query; zero means none.
	Timeout time.Duration
	// MaxTimeout is a server-imposed ceiling on the effective per-query
	// wall-clock budget: sessions may lower their timeout below it but
	// not escape it (zero means no ceiling). The effective budget is
	// min(Timeout, MaxTimeout), with zero Timeout meaning "just the
	// ceiling".
	MaxTimeout time.Duration
	// Budget caps MBR-filter candidates per query; zero means unlimited.
	Budget int
	// BatchSize overrides the staged join pipeline's candidate batch size
	// and the selection sink's flush granularity; zero means
	// core.DefaultBatchSize.
	BatchSize int
	// NoPipeline ablates the staged join pipeline back to the per-pair
	// worker path (one terminal emit). Differential knob for the pipeline
	// verb.
	NoPipeline bool
	// NoIntervals ablates the v2 interval-approximation filter back to
	// the v1 raster-signature path. Differential knob for the intervals
	// verb.
	NoIntervals bool
}

// EffectiveTimeout resolves the session timeout against the server
// ceiling; zero means unbounded.
func (s Settings) EffectiveTimeout() time.Duration {
	d := s.Timeout
	if s.MaxTimeout > 0 && (d == 0 || d > s.MaxTimeout) {
		d = s.MaxTimeout
	}
	return d
}

// Result reports what one executed command did, in the uniform serving
// shape.
type Result struct {
	// Stats is the query's uniform statistics record; for non-query
	// commands only Op is set.
	Stats query.Stats
	// Partial is non-nil when the query was interrupted (timeout or
	// cancellation): the output above it is valid but incomplete.
	Partial *query.PartialError
	// Mutation reports that the command changed the store or settings.
	Mutation bool
}

// Engine executes commands against a store with per-session settings.
// An Engine is not safe for concurrent use; give each session its own.
type Engine struct {
	Store    Store
	Settings Settings
	// NewTester overrides refinement tester construction for the "sw"/
	// "hw" (default) modes; nil uses hardware-assisted defaults.
	NewTester func(mode string) (*core.Tester, error)
	// DataDir, when set, is where save and load resolve bare snapshot
	// names: a path without a directory separator lands under DataDir,
	// and a missing extension gets ".snap".
	DataDir string
	// Live, when set, enables the durable ingestion verbs (live, insert,
	// delete, compact); tables open rooted at the manager's data
	// directory. Nil disables ingestion with a clear error.
	Live *ingest.Manager
	// Coord, when set, switches the engine into coordinator mode: the
	// query verbs fan out over the shard fleet instead of running the
	// local refinement pipeline, and local data verbs are refused with a
	// typed *CoordUnsupportedError (see coordmode.go).
	Coord *coord.Coordinator
}

// snapPath resolves a snapshot argument against the engine's DataDir.
func (e *Engine) snapPath(p string) string {
	if filepath.Ext(p) == "" {
		p += ".snap"
	}
	if e.DataDir != "" && !strings.ContainsAny(p, `/\`) {
		p = filepath.Join(e.DataDir, p)
	}
	return p
}

// IsQuery reports whether the verb runs the refinement pipeline (and so
// should pass a server's admission control), as opposed to an
// administrative command.
func IsQuery(verb string) bool {
	switch verb {
	case "join", "pjoin", "overlay", "within", "select", "knn",
		"shardjoin", "shardwithin", "shardselect", "batch":
		return true
	}
	return false
}

// Verb returns the command word of a line ("" for blank lines).
func Verb(line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// Exec runs one command line, writing its human-readable output to out.
// Hard failures (bad syntax, unknown layers, budget overflows) are
// returned as errors with nothing of substance written; interruptions
// are soft — partial output is written, a note line records the
// interruption, and Result.Partial carries the typed error.
func (e *Engine) Exec(ctx context.Context, line string, out io.Writer) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return Result{}, nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "batch":
		// One round trip, one admission slot, N sub-commands; works in
		// both local and coordinator mode, so it dispatches before the
		// coordinator switch.
		return e.batchCmd(ctx, line, out)
	case "pipeline":
		return e.setPipeline(args, out)
	case "intervals":
		return e.setIntervals(args, out)
	}
	if e.Coord != nil {
		return e.coordExec(ctx, cmd, args, line, out)
	}
	store := e.Store
	if v, ok := store.(Viewer); ok {
		store = v.View()
	}
	switch cmd {
	case "help":
		fmt.Fprint(out, Help)
		return Result{Stats: query.Stats{Op: "help"}}, nil
	case "gen":
		return e.gen(store, args, out)
	case "load":
		return e.load(store, args, out)
	case "save":
		return e.save(store, args, out)
	case "layers":
		e.listLayers(store, out)
		return Result{Stats: query.Stats{Op: "layers"}}, nil
	case "stats":
		return e.layerStats(store, args, out)
	case "timeout":
		return e.setTimeout(args, out)
	case "budget":
		return e.setBudget(args, out)
	case "live":
		return e.live(store, args, out)
	case "insert":
		return e.insert(ctx, store, line, out)
	case "delete":
		return e.deleteCmd(ctx, store, args, out)
	case "compact":
		return e.compact(ctx, store, args, out)
	case "join":
		return e.join(ctx, store, args, out)
	case "pjoin":
		return e.pjoin(ctx, store, args, out)
	case "overlay":
		return e.overlay(ctx, store, args, out)
	case "within":
		return e.within(ctx, store, args, out)
	case "select":
		return e.selectCmd(ctx, store, line, out)
	case "knn":
		return e.knn(ctx, store, line, out)
	case "partition":
		return e.partitionCmd(store, args, out)
	case "shardselect":
		return e.shardSelect(ctx, store, line, out)
	case "shardjoin":
		return e.shardJoin(ctx, store, args, out)
	case "shardwithin":
		return e.shardWithin(ctx, store, args, out)
	default:
		return Result{}, fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

// Help is the grammar reference printed by the help command.
const Help = `commands:
  gen <name> <DATASET> <scale>      generate a synthetic layer (LANDC, LANDO, STATES50, PRISM, WATER)
  load <name> <path>                load a layer from .json, .wkt, or a .snap snapshot
  save <name> <path> [nointervals]  save a layer as a binary snapshot (indexes + signatures + intervals)
  layers                            list loaded layers
  stats <name>                      Table 2 statistics of a layer
  join <a> <b> [sw|hw]              intersection join (default hw)
  pjoin <a> <b> [workers]           parallel intersection join (panic-isolating)
  overlay <a> <b>                   map overlay: per-pair intersection areas
  within <a> <b> <D> [sw|hw]        within-distance join
  select <layer> <WKT POLYGON>      intersection selection with a query polygon
  knn <layer> <WKT POLYGON> <k>     k nearest objects to a query polygon
  timeout <duration|off>            bound each query (e.g. timeout 2s)
  budget <n|off>                    cap MBR candidates per query
  pipeline <on|off> [batch]         staged batch pipeline for pjoin/shard verbs (off = per-pair path)
  intervals <on|off>                v2 interval-approximation filter (off = v1 signature path)
  batch <cmd>; <cmd>; ...           run N commands in one round trip under one admission slot
  partition <layer> <n> <dir> [m [r]]  split a layer into n spatial tiles under dir (replication margin m, r replicas per tile)
  shardselect <layer> <WKT>         shard-side select: emits "id <N>" lines with stable ids
  shardjoin <a> <b> <region> [mode] shard-side join over an ownership region (4 floats): emits "pair <A> <B>"
  shardwithin <a> <b> <D> <region>  shard-side within-distance join with reference-point dedup
  live <name>                       open (or create) a durable live table
  insert <table> <WKT POLYGON>      durably insert; acks after the WAL group commit
  delete <table> <id>               durably tombstone the object with the stable id
  compact <table>                   fold the live delta into a fresh snapshot generation
  quit                              leave

Interrupted queries (timeout or budget) report their partial results and
the typed error instead of failing silently. Queries over a live table
read snapshot ∪ delta − tombstones; knn and overlay need a compacted
table.
`

// viewOf resolves a name to a point-in-time read view; live tables
// compose snapshot ∪ delta − tombstones, plain layers are themselves.
func viewOf(store Store, name string) (*query.View, error) {
	s, ok := store.Get(name)
	if !ok {
		return nil, fmt.Errorf("no layer %q (see layers)", name)
	}
	return s.View(), nil
}

// singleOf resolves a name for verbs that require an undecorated layer
// (kNN's ordered index walk, the overlay join): live views with pending
// mutations are refused with the typed compact-first error.
func singleOf(store Store, name, op string) (*query.Layer, error) {
	v, err := viewOf(store, name)
	if err != nil {
		return nil, err
	}
	if l, ok := v.Single(); ok {
		return l, nil
	}
	return nil, &query.LiveUnsupportedError{Op: op}
}

// tableOf resolves a name to a live ingesting table.
func tableOf(store Store, name string) (*ingest.Table, error) {
	s, ok := store.Get(name)
	if !ok {
		return nil, fmt.Errorf("no layer %q (see layers)", name)
	}
	t, ok := s.(*ingest.Table)
	if !ok {
		return nil, fmt.Errorf("layer %q is not a live table (bind one with live)", name)
	}
	return t, nil
}

// liveStats folds the views' live composition into the stats record so
// access logs show when a query paid the uncompacted-delta price.
func liveStats(st *query.Stats, views ...*query.View) {
	for _, v := range views {
		if _, ok := v.Single(); ok {
			continue
		}
		_, delta, tombs := v.Counts()
		st.LiveDelta += delta
		st.LiveTombstones += tombs
	}
}

func (e *Engine) gen(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 3 {
		return Result{}, fmt.Errorf("usage: gen <name> <DATASET> <scale>")
	}
	scale, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad scale: %w", err)
	}
	d, err := data.Load(strings.ToUpper(args[1]), scale)
	if err != nil {
		return Result{}, err
	}
	if err := store.Set(args[0], query.NewLayer(d)); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(out, "layer %q: %d objects\n", args[0], len(d.Objects))
	return Result{Stats: query.Stats{Op: "gen", Results: len(d.Objects)}, Mutation: true}, nil
}

func (e *Engine) load(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 2 {
		return Result{}, fmt.Errorf("usage: load <name> <path>")
	}
	if strings.HasSuffix(args[1], ".snap") || filepath.Ext(args[1]) == "" {
		return e.loadSnap(store, args[0], e.snapPath(args[1]), out)
	}
	var (
		d   *data.Dataset
		err error
	)
	if strings.HasSuffix(args[1], ".wkt") {
		d, err = data.LoadWKTFile(args[1])
	} else {
		d, err = data.LoadFile(args[1])
	}
	if err != nil {
		return Result{}, err
	}
	if err := store.Set(args[0], query.NewLayer(d)); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(out, "layer %q: %d objects\n", args[0], len(d.Objects))
	return Result{Stats: query.Stats{Op: "load", Results: len(d.Objects)}, Mutation: true}, nil
}

// loadSnap binds a layer loaded from a binary snapshot: the R-tree, edge
// boxes and raster signatures come from the file instead of being
// rebuilt, and the load provenance flows into the stats record.
func (e *Engine) loadSnap(store Store, name, path string, out io.Writer) (Result, error) {
	s, err := snap.Open(path, snap.OpenOptions{})
	if err != nil {
		return Result{}, err
	}
	l, err := query.NewLayerFromSnapshot(s)
	if err != nil {
		s.Close()
		return Result{}, err
	}
	if err := store.Set(name, l); err != nil {
		s.Close()
		return Result{}, err
	}
	st := s.Stats()
	fmt.Fprintf(out, "layer %q: %d objects from snapshot (%d bytes, %d sections, mmap=%v, %.1fms)\n",
		name, s.NumObjects(), st.Bytes, st.Sections, st.MMap, st.LoadMS)
	return Result{
		Stats: query.Stats{
			Op: "load", Results: s.NumObjects(),
			SnapshotBytes: st.Bytes, SnapshotSections: st.Sections,
			SnapshotMMap: st.MMap, SnapshotLoadMS: st.LoadMS,
		},
		Mutation: true,
	}, nil
}

func (e *Engine) save(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 2 || len(args) > 3 {
		return Result{}, fmt.Errorf("usage: save <name> <path> [nointervals]")
	}
	opts := snap.SaveOptions{Tool: "spatialdb"}
	if len(args) == 3 {
		if args[2] != "nointervals" {
			return Result{}, fmt.Errorf("bad save option %q (only nointervals)", args[2])
		}
		opts.IntervalOrder = -1
	}
	v, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	path := e.snapPath(args[1])
	bs, err := snap.Save(path, v.Dataset(), opts)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(out, "saved %q to %s: %d objects, %d sections, %d bytes in %.1fms\n",
		args[0], path, bs.Objects, bs.Sections, bs.Bytes, bs.BuildMS)
	return Result{Stats: query.Stats{Op: "save", Results: bs.Objects}, Mutation: true}, nil
}

func (e *Engine) listLayers(store Store, out io.Writer) {
	names := store.Names()
	if len(names) == 0 {
		fmt.Fprintln(out, "(no layers; use gen or load)")
		return
	}
	for _, n := range names {
		if s, ok := store.Get(n); ok {
			v := s.View()
			origin := v.Origin()
			if _, single := v.Single(); !single {
				_, delta, tombs := v.Counts()
				origin = fmt.Sprintf("%s; +%d/-%d uncompacted", origin, delta, tombs)
			}
			fmt.Fprintf(out, "%-12s %6d objects  bounds %v  [%s]\n", n, v.NumObjects(), v.Dataset().Bounds(), origin)
		}
	}
}

func (e *Engine) layerStats(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: stats <name>")
	}
	v, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	s := v.Dataset().Stats()
	fmt.Fprintf(out, "N=%d vertices min/avg/max = %d/%.0f/%d total=%d avgMBR=%.2fx%.2f\n",
		s.N, s.MinVerts, s.AvgVerts, s.MaxVerts, s.TotalVerts, s.AvgMBRWidth, s.AvgMBRHeight)
	return Result{Stats: query.Stats{Op: "stats"}}, nil
}

func (e *Engine) setTimeout(args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: timeout <duration|off>")
	}
	if args[0] == "off" {
		e.Settings.Timeout = 0
		fmt.Fprintln(out, "timeout off")
		return Result{Stats: query.Stats{Op: "timeout"}, Mutation: true}, nil
	}
	d, err := time.ParseDuration(args[0])
	if err != nil || d < 0 {
		return Result{}, fmt.Errorf("bad duration %q", args[0])
	}
	e.Settings.Timeout = d
	if m := e.Settings.MaxTimeout; m > 0 && (d == 0 || d > m) {
		fmt.Fprintf(out, "timeout %v (capped at server limit %v)\n", d, m)
	} else {
		fmt.Fprintf(out, "timeout %v\n", d)
	}
	return Result{Stats: query.Stats{Op: "timeout"}, Mutation: true}, nil
}

func (e *Engine) setBudget(args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: budget <n|off>")
	}
	if args[0] == "off" {
		e.Settings.Budget = 0
		fmt.Fprintln(out, "budget off")
		return Result{Stats: query.Stats{Op: "budget"}, Mutation: true}, nil
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return Result{}, fmt.Errorf("bad budget %q", args[0])
	}
	e.Settings.Budget = n
	fmt.Fprintf(out, "budget %d candidates\n", n)
	return Result{Stats: query.Stats{Op: "budget"}, Mutation: true}, nil
}

// setPipeline toggles the staged batch pipeline and its batch size:
// pipeline <on|off> [batch]. "off" reconstructs the per-pair execution
// path (the ablation baseline); the batch size also governs the
// selection sink's streaming flush granularity.
func (e *Engine) setPipeline(args []string, out io.Writer) (Result, error) {
	if len(args) < 1 || len(args) > 2 {
		return Result{}, fmt.Errorf("usage: pipeline <on|off> [batch]")
	}
	switch args[0] {
	case "on":
		e.Settings.NoPipeline = false
	case "off":
		e.Settings.NoPipeline = true
	default:
		return Result{}, fmt.Errorf("pipeline must be on or off, got %q", args[0])
	}
	if len(args) == 2 {
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			return Result{}, fmt.Errorf("bad batch size %q", args[1])
		}
		e.Settings.BatchSize = n
	}
	state, batch := "on", e.Settings.BatchSize
	if e.Settings.NoPipeline {
		state = "off"
	}
	if batch == 0 {
		batch = core.DefaultBatchSize
	}
	fmt.Fprintf(out, "pipeline %s (batch %d)\n", state, batch)
	return Result{Stats: query.Stats{Op: "pipeline"}, Mutation: true}, nil
}

// setIntervals toggles the v2 interval-approximation filter:
// intervals <on|off>. "off" falls back to the v1 raster-signature path
// everywhere (the ablation baseline); result sets are identical either
// way, only which filter resolves each pair changes.
func (e *Engine) setIntervals(args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: intervals <on|off>")
	}
	switch args[0] {
	case "on":
		e.Settings.NoIntervals = false
	case "off":
		e.Settings.NoIntervals = true
	default:
		return Result{}, fmt.Errorf("intervals must be on or off, got %q", args[0])
	}
	state := "on"
	if e.Settings.NoIntervals {
		state = "off"
	}
	fmt.Fprintf(out, "intervals %s\n", state)
	return Result{Stats: query.Stats{Op: "intervals"}, Mutation: true}, nil
}

// batchCmd executes N ";"-separated sub-commands in one round trip under
// the single admission slot the batch verb itself was admitted on. Each
// sub-command's output streams in order, delimited by a "sub <n> ok:
// <op>" / "sub <n> partial: <reason>" / "sub <n> error: <reason>"
// trailer line, and the merged stats record reports the whole batch. A
// failing sub-command does not abort the rest; a partial sub-result
// marks the batch partial (the first partial's reason wins — the
// per-sub trailers name every incomplete sub-command).
func (e *Engine) batchCmd(ctx context.Context, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "batch"))
	if rest == "" {
		return Result{}, fmt.Errorf("usage: batch <cmd>; <cmd>; ...")
	}
	agg := Result{Stats: query.Stats{Op: "batch"}}
	n := 0
	for _, sub := range strings.Split(rest, ";") {
		sub = strings.TrimSpace(sub)
		if sub == "" {
			continue
		}
		if Verb(sub) == "batch" {
			return Result{}, fmt.Errorf("batch cannot nest batch")
		}
		n++
		res, err := e.Exec(ctx, sub, out)
		if err != nil {
			fmt.Fprintf(out, "sub %d error: %v\n", n, err)
			continue
		}
		if res.Partial != nil && agg.Partial == nil {
			agg.Partial = res.Partial
		}
		agg.Mutation = agg.Mutation || res.Mutation
		op := res.Stats.Op
		res.Stats.Op = ""
		agg.Stats.Merge(res.Stats)
		agg.Stats.Op = "batch"
		if res.Partial != nil {
			fmt.Fprintf(out, "sub %d partial: %v\n", n, res.Partial)
		} else {
			fmt.Fprintf(out, "sub %d ok: %s\n", n, op)
		}
	}
	if n == 0 {
		return Result{}, fmt.Errorf("usage: batch <cmd>; <cmd>; ...")
	}
	return agg, nil
}

// testerFactory validates the tester mode once and returns the
// per-worker constructor the pipeline drivers need (core.Tester is not
// safe for concurrent use, so each stage worker builds its own).
func (e *Engine) testerFactory(mode string) (func() *core.Tester, error) {
	if _, err := e.tester(mode); err != nil {
		return nil, err
	}
	return func() *core.Tester {
		t, err := e.tester(mode)
		if err != nil { // unreachable: the mode was validated above
			return core.NewTester(core.Config{DisableHardware: true})
		}
		return t
	}, nil
}

// pipelineOpts assembles the staged-pipeline options from the session
// settings for the given tester mode.
func (e *Engine) pipelineOpts(mode string, workers int) (query.PipelineOptions, error) {
	tf, err := e.testerFactory(mode)
	if err != nil {
		return query.PipelineOptions{}, err
	}
	return query.PipelineOptions{
		ParallelOptions: query.ParallelOptions{Workers: workers, Tester: tf,
			MaxCandidates: e.Settings.Budget, NoIntervals: e.Settings.NoIntervals},
		BatchSize:  e.Settings.BatchSize,
		NoPipeline: e.Settings.NoPipeline,
	}, nil
}

// qctx derives the per-query context from the session's timeout setting
// capped by the server ceiling. Deadline expiry is attributed to a typed
// *query.DeadlineError cause, so partial results distinguish "ran out of
// budget" from an operator cancellation.
func (e *Engine) qctx(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := e.Settings.EffectiveTimeout(); d > 0 {
		return context.WithTimeoutCause(ctx, d, &query.DeadlineError{Budget: d})
	}
	return context.WithCancel(ctx)
}

// note writes the interruption note (partial results were already
// reported) and extracts the typed partial error for the Result.
func note(out io.Writer, err error) *query.PartialError {
	if err == nil {
		return nil
	}
	var pe *query.PartialError
	if errors.As(err, &pe) {
		fmt.Fprintf(out, "note: %v (results above are partial)\n", err)
		return pe
	}
	fmt.Fprintln(out, "note:", err)
	return nil
}

func (e *Engine) tester(mode string) (*core.Tester, error) {
	if e.NewTester != nil {
		return e.NewTester(mode)
	}
	switch mode {
	case "", "hw":
		return core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}), nil
	case "sw":
		return core.NewTester(core.Config{DisableHardware: true}), nil
	default:
		return nil, fmt.Errorf("mode must be sw or hw, got %q", mode)
	}
}

func (e *Engine) join(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 2 || len(args) > 3 {
		return Result{}, fmt.Errorf("usage: join <a> <b> [sw|hw]")
	}
	a, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	b, err := viewOf(store, args[1])
	if err != nil {
		return Result{}, err
	}
	mode := ""
	if len(args) == 3 {
		mode = args[2]
	}
	tester, err := e.tester(mode)
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	pairs, cost, qerr := query.IntersectionJoinView(qctx, a, b, tester,
		query.JoinOptions{MaxCandidates: e.Settings.Budget, NoIntervals: e.Settings.NoIntervals})
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	report(out, "join", len(pairs), cost)
	st := query.NewStats("join", len(pairs), cost, tester.Stats)
	reportIntervals(out, st)
	liveStats(&st, a, b)
	return Result{
		Stats:   st,
		Partial: note(out, qerr),
	}, nil
}

func (e *Engine) pjoin(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 2 || len(args) > 3 {
		return Result{}, fmt.Errorf("usage: pjoin <a> <b> [workers]")
	}
	a, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	b, err := viewOf(store, args[1])
	if err != nil {
		return Result{}, err
	}
	workers := 0
	if len(args) == 3 {
		if workers, err = strconv.Atoi(args[2]); err != nil || workers < 0 {
			return Result{}, fmt.Errorf("bad worker count %q", args[2])
		}
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	start := time.Now()
	// pjoin runs the staged batch pipeline (pipeline off reconstructs the
	// per-pair worker path); testers stay the parallel defaults.
	pairs, stats, qerr := query.PipelineIntersectionJoinView(qctx, a, b, query.PipelineOptions{
		ParallelOptions: query.ParallelOptions{Workers: workers, MaxCandidates: e.Settings.Budget,
			NoIntervals: e.Settings.NoIntervals},
		BatchSize:  e.Settings.BatchSize,
		NoPipeline: e.Settings.NoPipeline,
	})
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	fmt.Fprintf(out, "pjoin: %d results in %v (%d tests", len(pairs),
		time.Since(start).Round(time.Microsecond), stats.Tests)
	if stats.Panics > 0 || stats.Quarantined > 0 {
		fmt.Fprintf(out, "; %d panics recovered, %d pairs quarantined", stats.Panics, stats.Quarantined)
	}
	fmt.Fprintln(out, ")")
	st := query.NewStats("pjoin", len(pairs), query.Cost{}, stats)
	reportIntervals(out, st)
	liveStats(&st, a, b)
	return Result{
		Stats:   st,
		Partial: note(out, qerr),
	}, nil
}

func (e *Engine) within(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) < 3 || len(args) > 4 {
		return Result{}, fmt.Errorf("usage: within <a> <b> <D> [sw|hw]")
	}
	a, err := viewOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	b, err := viewOf(store, args[1])
	if err != nil {
		return Result{}, err
	}
	d, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad distance: %w", err)
	}
	mode := ""
	if len(args) == 4 {
		mode = args[3]
	}
	tester, err := e.tester(mode)
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	pairs, cost, qerr := query.WithinDistanceJoinView(qctx, a, b, d, tester,
		query.DistanceFilterOptions{Use0Object: true, Use1Object: true, MaxCandidates: e.Settings.Budget})
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	report(out, "within", len(pairs), cost)
	st := query.NewStats("within", len(pairs), cost, tester.Stats)
	liveStats(&st, a, b)
	return Result{
		Stats:   st,
		Partial: note(out, qerr),
	}, nil
}

func (e *Engine) overlay(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 2 {
		return Result{}, fmt.Errorf("usage: overlay <a> <b>")
	}
	a, err := singleOf(store, args[0], "overlay")
	if err != nil {
		return Result{}, err
	}
	b, err := singleOf(store, args[1], "overlay")
	if err != nil {
		return Result{}, err
	}
	tester, err := e.tester("hw")
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	pairs, cost, qerr := query.OverlayAreaJoin(qctx, a, b, tester)
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	var total float64
	for _, op := range pairs {
		total += op.Area
	}
	fmt.Fprintf(out, "overlay: %d overlapping pairs, %.4f units² shared area (total %v)\n",
		len(pairs), total, cost.Total().Round(time.Millisecond))
	return Result{
		Stats:   query.NewStats("overlay", len(pairs), cost, tester.Stats),
		Partial: note(out, qerr),
	}, nil
}

// selectCmd and knn take the raw line because WKT contains spaces.
func (e *Engine) selectCmd(ctx context.Context, store Store, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "select"))
	name, wkt, ok := strings.Cut(rest, " ")
	if !ok {
		return Result{}, fmt.Errorf("usage: select <layer> <WKT POLYGON>")
	}
	v, err := viewOf(store, name)
	if err != nil {
		return Result{}, err
	}
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		return Result{}, err
	}
	tester, err := e.tester("hw")
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	ids, cost, qerr := query.IntersectionSelectView(qctx, v, q, tester,
		query.SelectionOptions{InteriorLevel: 4, MaxCandidates: e.Settings.Budget,
			NoIntervals: e.Settings.NoIntervals})
	var be *query.BudgetError
	if errors.As(qerr, &be) {
		return Result{}, qerr
	}
	report(out, "select", len(ids), cost)
	st := query.NewStats("select", len(ids), cost, tester.Stats)
	reportIntervals(out, st)
	liveStats(&st, v)
	return Result{
		Stats:   st,
		Partial: note(out, qerr),
	}, nil
}

func (e *Engine) knn(ctx context.Context, store Store, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "knn"))
	name, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return Result{}, fmt.Errorf("usage: knn <layer> <WKT POLYGON> <k>")
	}
	l, err := singleOf(store, name, "knn")
	if err != nil {
		return Result{}, err
	}
	i := strings.LastIndexByte(rest, ' ')
	if i < 0 {
		return Result{}, fmt.Errorf("usage: knn <layer> <WKT POLYGON> <k>")
	}
	k, err := strconv.Atoi(strings.TrimSpace(rest[i+1:]))
	if err != nil {
		return Result{}, fmt.Errorf("bad k: %w", err)
	}
	q, err := geom.ParsePolygonWKT(rest[:i])
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	neighbors, qerr := query.KNearest(qctx, l, q, k, dist.Options{})
	fmt.Fprintf(out, "%d neighbors in %v:\n", len(neighbors), time.Since(start).Round(time.Microsecond))
	for _, nb := range neighbors {
		fmt.Fprintf(out, "  object %-6d distance %.4f\n", nb.ID, nb.Distance)
	}
	return Result{
		Stats:   query.Stats{Op: "knn", Results: len(neighbors)},
		Partial: note(out, qerr),
	}, nil
}

func (e *Engine) live(store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: live <name>")
	}
	if e.Live == nil {
		return Result{}, fmt.Errorf("live ingestion is not enabled on this engine")
	}
	t, err := e.Live.Open(args[0])
	if err != nil {
		return Result{}, err
	}
	if err := store.Set(args[0], t); err != nil {
		return Result{}, err
	}
	st := t.Stats()
	fmt.Fprintf(out, "live table %q: %d objects (%d wal records recovered, applied lsn %d)\n",
		args[0], st.Objects, st.WAL.Recovered, st.AppliedLSN)
	return Result{Stats: query.Stats{Op: "live", Results: st.Objects}, Mutation: true}, nil
}

// insert takes the raw line because WKT contains spaces.
func (e *Engine) insert(ctx context.Context, store Store, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "insert"))
	name, wkt, ok := strings.Cut(rest, " ")
	if !ok {
		return Result{}, fmt.Errorf("usage: insert <table> <WKT POLYGON>")
	}
	t, err := tableOf(store, name)
	if err != nil {
		return Result{}, err
	}
	p, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		return Result{}, err
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	start := time.Now()
	id, err := t.Insert(qctx, p)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(out, "inserted id %d into %q in %v (%d uncompacted)\n",
		id, name, time.Since(start).Round(time.Microsecond), t.Pending())
	return Result{Stats: query.Stats{Op: "insert", Results: 1}, Mutation: true}, nil
}

func (e *Engine) deleteCmd(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 2 {
		return Result{}, fmt.Errorf("usage: delete <table> <id>")
	}
	t, err := tableOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	id, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad id %q", args[1])
	}
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	start := time.Now()
	if err := t.Delete(qctx, id); err != nil {
		return Result{}, err
	}
	fmt.Fprintf(out, "deleted id %d from %q in %v (%d uncompacted)\n",
		id, args[0], time.Since(start).Round(time.Microsecond), t.Pending())
	return Result{Stats: query.Stats{Op: "delete", Results: 1}, Mutation: true}, nil
}

func (e *Engine) compact(ctx context.Context, store Store, args []string, out io.Writer) (Result, error) {
	if len(args) != 1 {
		return Result{}, fmt.Errorf("usage: compact <table>")
	}
	t, err := tableOf(store, args[0])
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	if err := t.Compact(ctx); err != nil {
		return Result{}, err
	}
	st := t.Stats()
	fmt.Fprintf(out, "compacted %q in %v: %d objects, %d folded, wal truncated %d segments\n",
		args[0], time.Since(start).Round(time.Microsecond), st.Objects, st.LastFolded, st.WAL.Truncated)
	return Result{Stats: query.Stats{Op: "compact", Results: st.Objects}, Mutation: true}, nil
}

// reportIntervals writes the v2 interval-filter resolution line when the
// filter participated; scripted smoke checks grep these key=value fields.
func reportIntervals(out io.Writer, st query.Stats) {
	if st.IntervalChecks == 0 {
		return
	}
	fmt.Fprintf(out, "intervals: interval_checks=%d interval_true_hits=%d interval_rejects=%d interval_inconclusive=%d\n",
		st.IntervalChecks, st.IntervalTrueHits, st.IntervalRejects, st.IntervalInconclusive)
}

func report(out io.Writer, op string, results int, cost query.Cost) {
	fmt.Fprintf(out, "%s: %d results (mbr %v, filter %v, geometry %v; %d candidates, %d compared)\n",
		op, results,
		cost.MBRFilter.Round(time.Microsecond),
		cost.IntermediateFilter.Round(time.Microsecond),
		cost.GeometryComparison.Round(time.Microsecond),
		cost.Candidates, cost.Compared)
}
