package shellcmd

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/query"
)

func exec(t *testing.T, e *Engine, line string) (string, Result) {
	t.Helper()
	var sb strings.Builder
	res, err := e.Exec(context.Background(), line, &sb)
	if err != nil {
		t.Fatalf("Exec(%q): %v", line, err)
	}
	return sb.String(), res
}

func TestGrammarEndToEnd(t *testing.T) {
	e := &Engine{Store: MapStore{}}

	out, res := exec(t, e, "gen water WATER 0.01")
	if !strings.Contains(out, `layer "water"`) {
		t.Errorf("gen output = %q", out)
	}
	if !res.Mutation || res.Stats.Op != "gen" {
		t.Errorf("gen result = %+v", res)
	}
	exec(t, e, "gen prism PRISM 0.01")

	out, _ = exec(t, e, "layers")
	if !strings.Contains(out, "water") || !strings.Contains(out, "prism") {
		t.Errorf("layers output = %q", out)
	}

	out, res = exec(t, e, "join water prism hw")
	if !strings.HasPrefix(out, "join: ") {
		t.Errorf("join output = %q", out)
	}
	if res.Stats.Op != "join" || res.Stats.Results == 0 || res.Stats.Candidates == 0 {
		t.Errorf("join stats = %+v", res.Stats)
	}
	if res.Stats.Tests == 0 {
		t.Error("join stats recorded no refinement tests")
	}

	// The hardware and software modes agree (the filter is exact).
	_, sw := exec(t, e, "join water prism sw")
	if sw.Stats.Results != res.Stats.Results {
		t.Errorf("sw join %d results, hw join %d", sw.Stats.Results, res.Stats.Results)
	}

	// pjoin agrees with join.
	_, pj := exec(t, e, "pjoin water prism 2")
	if pj.Stats.Results != res.Stats.Results {
		t.Errorf("pjoin %d results, join %d", pj.Stats.Results, res.Stats.Results)
	}

	out, knn := exec(t, e, "knn water POLYGON ((200 150, 220 150, 220 170, 200 170)) 5")
	if knn.Stats.Op != "knn" || knn.Stats.Results != 5 {
		t.Errorf("knn stats = %+v (output %q)", knn.Stats, out)
	}

	out, sel := exec(t, e, "select water POLYGON ((0 0, 500 0, 500 500, 0 500))")
	if sel.Stats.Op != "select" || !strings.HasPrefix(out, "select: ") {
		t.Errorf("select = %+v, output %q", sel.Stats, out)
	}
}

func TestSettingsCommands(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	exec(t, e, "timeout 250ms")
	if e.Settings.Timeout != 250*time.Millisecond {
		t.Errorf("Timeout = %v", e.Settings.Timeout)
	}
	exec(t, e, "budget 10")
	if e.Settings.Budget != 10 {
		t.Errorf("Budget = %d", e.Settings.Budget)
	}
	exec(t, e, "timeout off")
	exec(t, e, "budget off")
	if e.Settings.Timeout != 0 || e.Settings.Budget != 0 {
		t.Errorf("off did not reset: %+v", e.Settings)
	}
}

func TestBudgetIsHardError(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	exec(t, e, "gen water WATER 0.01")
	exec(t, e, "gen prism PRISM 0.01")
	exec(t, e, "budget 3")
	var sb strings.Builder
	_, err := e.Exec(context.Background(), "join water prism", &sb)
	var be *query.BudgetError
	if err == nil || !errors.As(err, &be) {
		t.Fatalf("err = %v, want *query.BudgetError", err)
	}
}

func TestErrorsAndEmptyLines(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	for _, line := range []string{"bogus", "join", "join nosuch other", "gen x", "stats nosuch"} {
		var sb strings.Builder
		if _, err := e.Exec(context.Background(), line, &sb); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", line)
		}
	}
	var sb strings.Builder
	if _, err := e.Exec(context.Background(), "   ", &sb); err != nil || sb.Len() != 0 {
		t.Errorf("blank line: err=%v out=%q", err, sb.String())
	}
	if _, err := e.Exec(context.Background(), "# comment", &sb); err != nil || sb.Len() != 0 {
		t.Errorf("comment line: err=%v out=%q", err, sb.String())
	}
}

func TestTimeoutYieldsPartial(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	exec(t, e, "gen water WATER 0.02")
	exec(t, e, "gen prism PRISM 0.02")
	exec(t, e, "timeout 1ns")
	// With a 1ns deadline every stride check fires; pjoin checks context
	// per pair, so the interruption is deterministic.
	out, res := exec(t, e, "pjoin water prism 1")
	if res.Partial == nil {
		t.Fatalf("no Partial on 1ns timeout (output %q)", out)
	}
	if !strings.Contains(out, "note:") {
		t.Errorf("no interruption note in %q", out)
	}
}

// TestBatchPartialSubTrailer pins the batch framing for an interrupted
// sub-command: it must answer a "sub <n> partial: <reason>" trailer (not
// claim "ok" for an incomplete answer), later subs still run, and the
// first partial marks the whole batch partial.
func TestBatchPartialSubTrailer(t *testing.T) {
	e := &Engine{Store: MapStore{}}
	exec(t, e, "gen water WATER 0.02")
	exec(t, e, "gen prism PRISM 0.02")
	exec(t, e, "timeout 1ns")
	out, res := exec(t, e, "batch pjoin water prism 1; layers")
	if !strings.Contains(out, "sub 1 partial:") {
		t.Fatalf("interrupted sub got no partial trailer: %q", out)
	}
	if strings.Contains(out, "sub 1 ok:") {
		t.Fatalf("interrupted sub still claimed ok: %q", out)
	}
	if !strings.Contains(out, "sub 2 ok: layers") {
		t.Fatalf("sub after the partial did not run: %q", out)
	}
	if res.Partial == nil {
		t.Fatal("partial sub did not mark the batch result partial")
	}
}

func TestIsQueryAndVerb(t *testing.T) {
	for _, v := range []string{"join", "pjoin", "overlay", "within", "select", "knn"} {
		if !IsQuery(v) {
			t.Errorf("IsQuery(%q) = false", v)
		}
	}
	for _, v := range []string{"gen", "load", "layers", "stats", "timeout", "budget", "help", ""} {
		if IsQuery(v) {
			t.Errorf("IsQuery(%q) = true", v)
		}
	}
	if Verb("  join a b  ") != "join" || Verb("") != "" {
		t.Error("Verb misparsed")
	}
}

// TestParityWithDirectCalls pins the shared grammar to the library: the
// engine's join must return exactly the pairs a direct query call finds.
func TestParityWithDirectCalls(t *testing.T) {
	a := query.NewLayer(data.MustLoad("WATER", 0.01))
	b := query.NewLayer(data.MustLoad("PRISM", 0.01))
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoin(context.Background(), a, b, tester)
	if err != nil {
		t.Fatal(err)
	}

	e := &Engine{Store: MapStore{}}
	exec(t, e, "gen water WATER 0.01")
	exec(t, e, "gen prism PRISM 0.01")
	_, res := exec(t, e, "join water prism")
	if res.Stats.Results != len(pairs) {
		t.Errorf("engine join = %d results, direct join = %d", res.Stats.Results, len(pairs))
	}
}

func TestSaveLoadSnapshot(t *testing.T) {
	e := &Engine{Store: MapStore{}, DataDir: t.TempDir()}
	exec(t, e, "gen land LANDC 0.005")

	out, res := exec(t, e, "save land land")
	if !strings.Contains(out, "saved \"land\"") || res.Stats.Op != "save" {
		t.Fatalf("save = %+v, output %q", res, out)
	}

	// A bare name resolves under DataDir and reloads through the snapshot
	// path, with load provenance in the stats record.
	out, res = exec(t, e, "load warm land")
	if !strings.Contains(out, "from snapshot") {
		t.Fatalf("load output = %q", out)
	}
	if res.Stats.SnapshotBytes <= 0 || res.Stats.SnapshotSections < 5 || res.Stats.SnapshotLoadMS < 0 {
		t.Fatalf("snapshot load stats missing: %+v", res.Stats)
	}

	out, _ = exec(t, e, "layers")
	if !strings.Contains(out, "snapshot:LANDC") || !strings.Contains(out, "memory") {
		t.Fatalf("layers provenance missing: %q", out)
	}

	// The warm layer answers queries identically to the built one.
	_, built := exec(t, e, "join land land sw")
	_, warm := exec(t, e, "join warm warm sw")
	if built.Stats.Results != warm.Stats.Results {
		t.Fatalf("warm join %d results, built %d", warm.Stats.Results, built.Stats.Results)
	}
	if warm.Stats.SigChecks == 0 {
		t.Fatal("warm join never consulted persisted signatures")
	}

	// A corrupted snapshot is refused with a typed store error, not bound.
	if _, err := e.Exec(context.Background(), "load bad missing", new(strings.Builder)); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
}
