// Coordinator mode: an Engine whose Coord field is set routes the query
// verbs over a shard fleet (internal/coord) instead of the local
// refinement pipeline, while keeping the grammar, session settings,
// admission gating, and typed-partial semantics identical — a client
// cannot tell a coordinator from a fat single node except for the
// "shards" verb and the per-shard health in /metrics. Local data verbs
// (gen, load, save, live ingestion, partition, the shard-side verbs) are
// refused with a typed *CoordUnsupportedError: the coordinator owns no
// data, only the manifest.
package shellcmd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/geom"
	"repro/internal/query"
)

// CoordUnsupportedError is the typed refusal for verbs that need local
// data on a coordinator node.
type CoordUnsupportedError struct{ Verb string }

func (e *CoordUnsupportedError) Error() string {
	return fmt.Sprintf("%s is not available on a coordinator (run it on a shard; the coordinator serves join/pjoin/within/select/layers/shards)", e.Verb)
}

// coordHelp replaces the Help text in coordinator mode.
const coordHelp = `coordinator commands:
  join <a> <b> [sw|hw]              scatter-gather intersection join over all shards
  pjoin <a> <b> [workers]           alias of join (parallelism is cross-shard)
  within <a> <b> <D> [sw|hw]        scatter-gather within-distance join (D must be <= the replication margin)
  select <layer> <WKT POLYGON>      selection routed to the tiles overlapping the query MBR
  layers                            the partitioned layers from the deployment manifest
  shards                            per-replica role, address, breaker state (closed/open/half-open), failure counts, and failover totals
  timeout <duration|off>            bound each fanned-out query (shards get the budget minus a merge reserve)
  budget <n|off>                    accepted for session compatibility (enforced shard-side)
  quit                              leave

Responses stream "id <N>" / "pair <A> <B>" data lines with the stable
global ids, one merged "stats <json>" line, and a summary. In a
replicated deployment a failing replica is retried on the tile's next
live replica (and optionally hedged); the answer degrades to "partial:"
only when every replica of a tile is down or out of time — the lines
above are valid but miss that tile.
`

// coordExec dispatches one command in coordinator mode.
func (e *Engine) coordExec(ctx context.Context, cmd string, args []string, line string, out io.Writer) (Result, error) {
	switch cmd {
	case "help":
		fmt.Fprint(out, coordHelp)
		return Result{Stats: query.Stats{Op: "help"}}, nil
	case "timeout":
		return e.setTimeout(args, out)
	case "budget":
		return e.setBudget(args, out)
	case "layers":
		m := e.Coord.Manifest()
		names := make([]string, 0, len(m.Layers))
		for name := range m.Layers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			li := m.Layers[name]
			fmt.Fprintf(out, "%-12s %6d objects (%d replicas over %d tiles)  bounds %v\n",
				name, li.Objects, li.Replicas, m.NumTiles(), m.Bounds)
		}
		fmt.Fprintf(out, "generation %d, %dx%d grid, margin %s\n",
			m.Generation, m.GX, m.GY, strconv.FormatFloat(m.Margin, 'g', -1, 64))
		return Result{Stats: query.Stats{Op: "layers"}}, nil
	case "shards":
		for _, h := range e.Coord.Health() {
			fmt.Fprintf(out, "shard %d/%d %-8s %-22s %-10s queries=%d fails=%d consec=%d",
				h.Tile, h.Replica, h.Role, h.Addr, h.State, h.Queries, h.Fails, h.ConsecFails)
			if h.LastErr != "" {
				fmt.Fprintf(out, " last=%q", h.LastErr)
			}
			fmt.Fprintln(out)
		}
		t := e.Coord.Totals()
		fmt.Fprintf(out, "failover: retries=%d hedges=%d hedges_won=%d probes=%d probe_failures=%d\n",
			t.Retries, t.Hedges, t.HedgesWon, t.Probes, t.ProbeFails)
		return Result{Stats: query.Stats{Op: "shards"}}, nil
	case "select":
		return e.coordSelect(ctx, line, out)
	case "join", "pjoin":
		if len(args) < 2 || len(args) > 3 {
			return Result{}, fmt.Errorf("usage: %s <a> <b> [sw|hw]", cmd)
		}
		mode := ""
		if cmd == "join" && len(args) == 3 {
			mode = args[2]
		}
		return e.coordFan(ctx, "join", out, func(qctx context.Context, sink coord.RowSink) (coord.Result, error) {
			return e.Coord.JoinStream(qctx, args[0], args[1], mode, sink)
		})
	case "within":
		if len(args) < 3 || len(args) > 4 {
			return Result{}, fmt.Errorf("usage: within <a> <b> <D> [sw|hw]")
		}
		d, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad distance: %w", err)
		}
		mode := ""
		if len(args) == 4 {
			mode = args[3]
		}
		return e.coordFan(ctx, "within", out, func(qctx context.Context, sink coord.RowSink) (coord.Result, error) {
			return e.Coord.WithinStream(qctx, args[0], args[1], d, mode, sink)
		})
	default:
		return Result{}, &CoordUnsupportedError{Verb: cmd}
	}
}

func (e *Engine) coordSelect(ctx context.Context, line string, out io.Writer) (Result, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "select"))
	name, wkt, ok := strings.Cut(rest, " ")
	if !ok {
		return Result{}, fmt.Errorf("usage: select <layer> <WKT POLYGON>")
	}
	q, err := geom.ParsePolygonWKT(wkt)
	if err != nil {
		return Result{}, err
	}
	return e.coordFan(ctx, "select", out, func(qctx context.Context, sink coord.RowSink) (coord.Result, error) {
		return e.Coord.SelectStream(qctx, name, wkt, q.Bounds(), sink)
	})
}

// coordFan runs one fanned-out query with the session's deadline,
// streaming each merged id/pair line to the client the moment the
// merger releases it (no coordinator-side buffering), and folds a shard
// miss into the typed partial. Rows arrive in cross-shard merge order,
// not sorted — dedup and the reference-point rule still hold.
func (e *Engine) coordFan(ctx context.Context, op string, out io.Writer, run func(context.Context, coord.RowSink) (coord.Result, error)) (Result, error) {
	qctx, cancel := e.qctx(ctx)
	defer cancel()
	start := time.Now()
	sink := coord.RowSink{
		ID: func(id uint64) error {
			_, err := fmt.Fprintf(out, "id %d\n", id)
			return err
		},
		Pair: func(p [2]uint64) error {
			_, err := fmt.Fprintf(out, "pair %d %d\n", p[0], p[1])
			return err
		},
	}
	res, cerr := run(qctx, sink)
	if cerr != nil {
		var pe *query.PartialError
		if !errors.As(cerr, &pe) {
			return Result{}, cerr
		}
	}
	writeStats(out, res.Stats)
	var slowest float64
	for _, ms := range res.ShardMS {
		if ms > slowest {
			slowest = ms
		}
	}
	total := time.Since(start)
	mergeMS := float64(total.Microseconds())/1000 - slowest
	if mergeMS < 0 {
		mergeMS = 0
	}
	fmt.Fprintf(out, "%s: %d results from %d/%d shards in %v (slowest shard %.1fms, scatter-gather overhead %.1fms)\n",
		op, res.Stats.Results, res.ShardsOK, res.ShardsAsked, total.Round(time.Microsecond), slowest, mergeMS)
	return Result{Stats: res.Stats, Partial: note(out, cerr)}, nil
}
