package rtree

import (
	"container/heap"

	"repro/internal/geom"
)

// NearestBy visits entries in non-decreasing order of their exact distance
// to a query, using the classic best-first (Hjaltason–Samet) traversal:
// tree nodes are expanded in MBR-distance order, and each entry's exact
// distance — supplied by the caller, typically an exact geometry distance
// — is re-enqueued so an entry is only reported once no unexplored subtree
// or pending entry can beat it. exact must be ≥ the entry's MBR distance
// to q (MBR distance lower-bounds object distance, so any true geometry
// distance qualifies). The visitor returns false to stop (e.g. after k
// results); NearestBy reports whether it ran to completion.
func (t *Tree) NearestBy(q geom.Rect, exact func(Entry) float64, visit func(Entry, float64) bool) bool {
	if t.size == 0 {
		return true
	}
	pq := &nnHeap{}
	heap.Push(pq, nnItem{dist: t.root.bounds.Dist(q), node: t.root})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nnItem)
		switch {
		case it.refined:
			if !visit(it.entry, it.dist) {
				return false
			}
		case it.node != nil:
			if it.node.leaf {
				for _, e := range it.node.entries {
					heap.Push(pq, nnItem{dist: e.Bounds.Dist(q), entry: e})
				}
			} else {
				for _, c := range it.node.children {
					heap.Push(pq, nnItem{dist: c.bounds.Dist(q), node: c})
				}
			}
		default:
			// An entry surfacing on its MBR distance: refine and re-enqueue
			// on the exact distance.
			heap.Push(pq, nnItem{dist: exact(it.entry), entry: it.entry, refined: true})
		}
	}
	return true
}

// NearestK collects the k nearest entries by exact distance.
func (t *Tree) NearestK(q geom.Rect, k int, exact func(Entry) float64) []Entry {
	if k <= 0 {
		return nil
	}
	out := make([]Entry, 0, k)
	t.NearestBy(q, exact, func(e Entry, _ float64) bool {
		out = append(out, e)
		return len(out) < k
	})
	return out
}

// nnItem is one priority-queue element: an internal node, an unrefined
// entry (keyed by MBR distance), or a refined entry (keyed by exact
// distance).
type nnItem struct {
	dist    float64
	node    *rnode
	entry   Entry
	refined bool
}

type nnHeap []nnItem

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	// Prefer refined entries on ties so results surface deterministically.
	return h[i].refined && !h[j].refined
}
func (h nnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)   { *h = append(*h, x.(nnItem)) }
func (h *nnHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
