// Package rtree implements the R-tree index used by the MBR filtering step
// of the query pipeline: Guttman insertion with quadratic split, STR bulk
// loading, window search, and the synchronized-traversal spatial joins
// (MBR intersection and MBR within-distance) that feed candidate pairs to
// the intermediate filters and the refinement step.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Default node capacity. 16 entries keeps nodes around a cache line's worth
// of rectangles while staying close to the classic page-sized fanouts.
const (
	DefaultMaxEntries = 16
	DefaultMinEntries = DefaultMaxEntries * 2 / 5
)

// Entry is one indexed object: its MBR and the caller's identifier
// (typically an index into a dataset's object slice).
type Entry struct {
	Bounds geom.Rect
	ID     int
}

// rnode is an R-tree node. Leaves hold entries; internal nodes hold
// children. bounds is the union of whatever the node holds.
type rnode struct {
	bounds   geom.Rect
	entries  []Entry  // leaf level only
	children []*rnode // internal level only
	leaf     bool
}

// Tree is an R-tree over 2D rectangles. The zero value is not usable; build
// trees with New or NewBulk.
type Tree struct {
	root       *rnode
	size       int
	maxEntries int
	minEntries int
}

// New returns an empty R-tree with default node capacity.
func New() *Tree {
	return &Tree{
		root:       &rnode{leaf: true, bounds: geom.EmptyRect()},
		maxEntries: DefaultMaxEntries,
		minEntries: DefaultMinEntries,
	}
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the MBR of everything in the tree.
func (t *Tree) Bounds() geom.Rect { return t.root.bounds }

// Height returns the number of levels, 1 for a tree that is a single leaf.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds an entry using Guttman's algorithm with quadratic split.
func (t *Tree) Insert(e Entry) {
	t.size++
	path := t.choosePath(e.Bounds)
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries, e)
	leaf.bounds = leaf.bounds.Union(e.Bounds)

	// Walk back up: split overflowing nodes, refresh bounds.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		overflow := len(n.entries) > t.maxEntries || len(n.children) > t.maxEntries
		if !overflow {
			if i > 0 {
				p := path[i-1]
				p.bounds = p.bounds.Union(n.bounds)
			}
			continue
		}
		a, b := t.splitNode(n)
		if i == 0 {
			t.root = &rnode{children: []*rnode{a, b}, bounds: a.bounds.Union(b.bounds)}
			return
		}
		p := path[i-1]
		for j, c := range p.children {
			if c == n {
				p.children[j] = a
				break
			}
		}
		p.children = append(p.children, b)
		nb := geom.EmptyRect()
		for _, c := range p.children {
			nb = nb.Union(c.bounds)
		}
		p.bounds = nb
	}
}

// choosePath descends to the leaf whose MBR needs the least enlargement,
// returning the root-to-leaf path.
func (t *Tree) choosePath(r geom.Rect) []*rnode {
	path := []*rnode{t.root}
	n := t.root
	for !n.leaf {
		best := n.children[0]
		bestEnl, bestArea := enlargement(best.bounds, r), best.bounds.Area()
		for _, c := range n.children[1:] {
			enl := enlargement(c.bounds, r)
			area := c.bounds.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		n = best
		path = append(path, n)
	}
	return path
}

func enlargement(b, r geom.Rect) float64 {
	return b.Union(r).Area() - b.Area()
}

// splitNode performs Guttman's quadratic split, returning the two halves.
func (t *Tree) splitNode(n *rnode) (*rnode, *rnode) {
	if n.leaf {
		ga, gb := quadraticSplit(len(n.entries), t.minEntries,
			func(i int) geom.Rect { return n.entries[i].Bounds })
		a := &rnode{leaf: true}
		b := &rnode{leaf: true}
		for _, i := range ga {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range gb {
			b.entries = append(b.entries, n.entries[i])
		}
		a.bounds = unionEntries(a.entries)
		b.bounds = unionEntries(b.entries)
		return a, b
	}
	ga, gb := quadraticSplit(len(n.children), t.minEntries,
		func(i int) geom.Rect { return n.children[i].bounds })
	a := &rnode{}
	b := &rnode{}
	for _, i := range ga {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range gb {
		b.children = append(b.children, n.children[i])
	}
	a.bounds = unionChildren(a.children)
	b.bounds = unionChildren(b.children)
	return a, b
}

func unionEntries(es []Entry) geom.Rect {
	u := geom.EmptyRect()
	for _, e := range es {
		u = u.Union(e.Bounds)
	}
	return u
}

func unionChildren(cs []*rnode) geom.Rect {
	u := geom.EmptyRect()
	for _, c := range cs {
		u = u.Union(c.bounds)
	}
	return u
}

// quadraticSplit partitions indices 0..n-1 into two groups using Guttman's
// quadratic seed-picking and least-enlargement assignment, respecting the
// minimum fill m.
func quadraticSplit(n, m int, rect func(int) geom.Rect) (ga, gb []int) {
	// Pick seeds: the pair wasting the most area if grouped together.
	s1, s2, worst := 0, 1, math.Inf(-1)
	for i := range n {
		for j := i + 1; j < n; j++ {
			waste := rect(i).Union(rect(j)).Area() - rect(i).Area() - rect(j).Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	ga = append(ga, s1)
	gb = append(gb, s2)
	ba, bb := rect(s1), rect(s2)
	remaining := make([]int, 0, n-2)
	for i := range n {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment when one group must take all the rest to reach m.
		if len(ga)+len(remaining) == m {
			for _, i := range remaining {
				ga = append(ga, i)
			}
			break
		}
		if len(gb)+len(remaining) == m {
			for _, i := range remaining {
				gb = append(gb, i)
			}
			break
		}
		// Pick the entry with the strongest preference for one group.
		bestIdx, bestDiff := 0, math.Inf(-1)
		for k, i := range remaining {
			d1 := enlargement(ba, rect(i))
			d2 := enlargement(bb, rect(i))
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestDiff, bestIdx = diff, k
			}
		}
		i := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		d1 := enlargement(ba, rect(i))
		d2 := enlargement(bb, rect(i))
		if d1 < d2 || (d1 == d2 && len(ga) < len(gb)) {
			ga = append(ga, i)
			ba = ba.Union(rect(i))
		} else {
			gb = append(gb, i)
			bb = bb.Union(rect(i))
		}
	}
	return ga, gb
}

// NewBulk builds a tree from entries using Sort-Tile-Recursive packing:
// sort by x, slice into vertical strips, sort each strip by y, pack leaves,
// then repeat upward. Produces well-clustered nodes and is the standard
// way to load static datasets like the evaluation's.
func NewBulk(entries []Entry) *Tree {
	t := New()
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)

	es := make([]Entry, len(entries))
	copy(es, entries)
	leaves := packLeaves(es, t.maxEntries)
	level := leaves
	for len(level) > 1 {
		level = packInternal(level, t.maxEntries)
	}
	t.root = level[0]
	return t
}

// packLeaves arranges entries into leaf nodes with STR.
func packLeaves(es []Entry, cap_ int) []*rnode {
	n := len(es)
	leafCount := (n + cap_ - 1) / cap_
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * cap_

	sort.Slice(es, func(i, j int) bool {
		return es[i].Bounds.Center().X < es[j].Bounds.Center().X
	})
	var leaves []*rnode
	for lo := 0; lo < n; lo += sliceSize {
		hi := min(lo+sliceSize, n)
		strip := es[lo:hi]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Bounds.Center().Y < strip[j].Bounds.Center().Y
		})
		for s := 0; s < len(strip); s += cap_ {
			e := min(s+cap_, len(strip))
			leaf := &rnode{leaf: true, entries: append([]Entry(nil), strip[s:e]...)}
			leaf.bounds = unionEntries(leaf.entries)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packInternal arranges nodes of one level into parents with STR.
func packInternal(nodes []*rnode, cap_ int) []*rnode {
	n := len(nodes)
	parentCount := (n + cap_ - 1) / cap_
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * cap_

	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].bounds.Center().X < nodes[j].bounds.Center().X
	})
	var parents []*rnode
	for lo := 0; lo < n; lo += sliceSize {
		hi := min(lo+sliceSize, n)
		strip := nodes[lo:hi]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].bounds.Center().Y < strip[j].bounds.Center().Y
		})
		for s := 0; s < len(strip); s += cap_ {
			e := min(s+cap_, len(strip))
			p := &rnode{children: append([]*rnode(nil), strip[s:e]...)}
			p.bounds = unionChildren(p.children)
			parents = append(parents, p)
		}
	}
	return parents
}

// Search visits every entry whose MBR intersects r. The visitor returns
// false to stop the search early; Search reports whether it ran to
// completion.
func (t *Tree) Search(r geom.Rect, visit func(Entry) bool) bool {
	return searchNode(t.root, r, visit)
}

func searchNode(n *rnode, r geom.Rect, visit func(Entry) bool) bool {
	if !n.bounds.Intersects(r) {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Bounds.Intersects(r) {
				if !visit(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchNode(c, r, visit) {
			return false
		}
	}
	return true
}

// SearchWithin visits every entry whose MBR is within distance d of r.
func (t *Tree) SearchWithin(r geom.Rect, d float64, visit func(Entry) bool) bool {
	return searchWithinNode(t.root, r, d, visit)
}

func searchWithinNode(n *rnode, r geom.Rect, d float64, visit func(Entry) bool) bool {
	if n.bounds.Dist(r) > d {
		return true
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Bounds.Dist(r) <= d {
				if !visit(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchWithinNode(c, r, d, visit) {
			return false
		}
	}
	return true
}

// Join visits every pair (a, b) with a from t, b from other, whose MBRs
// intersect, using synchronized tree traversal. The visitor returns false
// to stop.
func Join(t, other *Tree, visit func(a, b Entry) bool) bool {
	return JoinWithin(t, other, 0, visit)
}

// JoinWithin visits every pair whose MBR distance is at most d. d = 0
// degenerates to the intersection join (touching MBRs have distance 0).
func JoinWithin(t, other *Tree, d float64, visit func(a, b Entry) bool) bool {
	if t.size == 0 || other.size == 0 {
		return true
	}
	return joinNodes(t.root, other.root, d, visit)
}

func joinNodes(a, b *rnode, d float64, visit func(a, b Entry) bool) bool {
	if a.bounds.Dist(b.bounds) > d {
		return true
	}
	switch {
	case a.leaf && b.leaf:
		for _, ea := range a.entries {
			for _, eb := range b.entries {
				if ea.Bounds.Dist(eb.Bounds) <= d {
					if !visit(ea, eb) {
						return false
					}
				}
			}
		}
	case a.leaf:
		for _, cb := range b.children {
			if !joinNodes(a, cb, d, visit) {
				return false
			}
		}
	case b.leaf:
		for _, ca := range a.children {
			if !joinNodes(ca, b, d, visit) {
				return false
			}
		}
	default:
		for _, ca := range a.children {
			for _, cb := range b.children {
				if !joinNodes(ca, cb, d, visit) {
					return false
				}
			}
		}
	}
	return true
}

// Validate checks structural invariants (bounds containment, fill limits,
// uniform leaf depth) and returns an error describing the first violation.
// Intended for tests.
func (t *Tree) Validate() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	depth := -1
	var walk func(n *rnode, level int) error
	walk = func(n *rnode, level int) error {
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("rtree: leaves at depths %d and %d", depth, level)
			}
			for _, e := range n.entries {
				if !n.bounds.ContainsRect(e.Bounds) {
					return fmt.Errorf("rtree: entry %d outside leaf bounds", e.ID)
				}
			}
			return nil
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: internal node with no children")
		}
		if len(n.children) > t.maxEntries {
			return fmt.Errorf("rtree: node with %d > %d children", len(n.children), t.maxEntries)
		}
		for _, c := range n.children {
			if !n.bounds.ContainsRect(c.bounds) {
				return fmt.Errorf("rtree: child bounds escape parent")
			}
			if err := walk(c, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0)
}
