package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestNearestByOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	es := randEntries(rng, 500, 100, 3)
	tr := NewBulk(es)
	q := geom.R(48, 48, 52, 52)
	// Exact distance: MBR distance plus a deterministic per-entry offset,
	// exercising the refine-and-reorder logic (exact >= MBR distance).
	exact := func(e Entry) float64 {
		return e.Bounds.Dist(q) + float64(e.ID%7)*0.01
	}
	var got []float64
	var ids []int
	tr.NearestBy(q, exact, func(e Entry, d float64) bool {
		if math.Abs(d-exact(e)) > 1e-12 {
			t.Fatalf("reported distance %v != exact %v", d, exact(e))
		}
		got = append(got, d)
		ids = append(ids, e.ID)
		return true
	})
	if len(got) != len(es) {
		t.Fatalf("visited %d entries, want %d", len(got), len(es))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatal("distances not in non-decreasing order")
	}
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("entry %d visited twice", id)
		}
		seen[id] = true
	}
}

func TestNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	es := randEntries(rng, 300, 100, 2)
	tr := NewBulk(es)
	q := geom.R(10, 10, 12, 12)
	exact := func(e Entry) float64 { return e.Bounds.Dist(q) }
	for _, k := range []int{0, 1, 5, 50, 500} {
		got := tr.NearestK(q, k, exact)
		wantLen := min(k, len(es))
		if k <= 0 {
			wantLen = 0
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: %d results", k, len(got))
		}
		if k == 0 {
			continue
		}
		// Compare against brute force.
		type de struct {
			d  float64
			id int
		}
		all := make([]de, len(es))
		for i, e := range es {
			all[i] = de{exact(e), e.ID}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i, e := range got {
			if math.Abs(exact(e)-all[i].d) > 1e-12 {
				t.Fatalf("k=%d: result %d at distance %v, brute %v", k, i, exact(e), all[i].d)
			}
		}
	}
}

func TestNearestEmptyTree(t *testing.T) {
	tr := New()
	if got := tr.NearestK(geom.R(0, 0, 1, 1), 3, func(Entry) float64 { return 0 }); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
}

func BenchmarkNearestK(b *testing.B) {
	rng := rand.New(rand.NewSource(83))
	tr := NewBulk(randEntries(rng, 10000, 1000, 2))
	q := geom.R(500, 500, 501, 501)
	exact := func(e Entry) float64 { return e.Bounds.Dist(q) }
	b.ResetTimer()
	for range b.N {
		tr.NearestK(q, 10, exact)
	}
}
