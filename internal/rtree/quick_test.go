package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSearchMatchesLinear drives the R-tree against a linear scan
// with property-based inputs: any seed and size yield identical result
// sets for both bulk-loaded and incrementally built trees.
func TestQuickSearchMatchesLinear(t *testing.T) {
	prop := func(seed int64, sizeRaw uint8, bulk bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(sizeRaw)%200
		es := randEntries(rng, n, 50, 5)
		var tr *Tree
		if bulk {
			tr = NewBulk(es)
		} else {
			tr = New()
			for _, e := range es {
				tr.Insert(e)
			}
		}
		if tr.Validate() != nil {
			return false
		}
		for range 10 {
			q := randRect(rng, 50, 15)
			if !equalInts(collectSearch(tr, q), linearSearch(es, q)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinSymmetric: the MBR join is symmetric up to pair order.
func TestQuickJoinSymmetric(t *testing.T) {
	prop := func(seed int64, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := float64(dRaw) / 16
		ea := randEntries(rng, 60, 30, 4)
		eb := randEntries(rng, 60, 30, 4)
		ta, tb := NewBulk(ea), NewBulk(eb)
		ab := joinPairs(ta, tb, d)
		ba := joinPairs(tb, ta, d)
		if len(ab) != len(ba) {
			return false
		}
		seen := map[[2]int]bool{}
		for _, pr := range ab {
			seen[[2]int{pr[0], pr[1]}] = true
		}
		for _, pr := range ba {
			if !seen[[2]int{pr[1], pr[0]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
