package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBulkLoadMatchesIncremental pins the STR bulk-load constructor (the
// one the snapshot writer uses) to the incremental Guttman tree: both must
// index the same entry set, validate structurally, and answer identical
// window searches and joins. The packing differs — the answer sets may
// not.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randEntries(rng, 3000, 1000, 5)

	bulk := NewBulk(es)
	inc := New()
	for _, e := range es {
		inc.Insert(e)
	}
	if err := bulk.Validate(); err != nil {
		t.Fatalf("bulk tree invalid: %v", err)
	}
	if err := inc.Validate(); err != nil {
		t.Fatalf("incremental tree invalid: %v", err)
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("sizes differ: bulk %d, incremental %d", bulk.Len(), inc.Len())
	}
	for range 200 {
		q := geom.R(rng.Float64()*1000, rng.Float64()*1000, 0, 0)
		q.MaxX = q.MinX + rng.Float64()*80
		q.MaxY = q.MinY + rng.Float64()*80
		if got, want := collectSearch(bulk, q), collectSearch(inc, q); !sameIDs(got, want) {
			t.Fatalf("search %v: bulk %v, incremental %v", q, got, want)
		}
	}

	other := NewBulk(randEntries(rng, 500, 1000, 8))
	pairsOf := func(tr *Tree) []Pairkey {
		var ps []Pairkey
		Join(tr, other, func(a, b Entry) bool {
			ps = append(ps, Pairkey{a.ID, b.ID})
			return true
		})
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].A != ps[j].A {
				return ps[i].A < ps[j].A
			}
			return ps[i].B < ps[j].B
		})
		return ps
	}
	bp, ip := pairsOf(bulk), pairsOf(inc)
	if len(bp) != len(ip) {
		t.Fatalf("join sizes differ: bulk %d, incremental %d", len(bp), len(ip))
	}
	for i := range bp {
		if bp[i] != ip[i] {
			t.Fatalf("join pair %d differs: bulk %v, incremental %v", i, bp[i], ip[i])
		}
	}
}

// Pairkey is a comparable join result for the parity tests.
type Pairkey struct{ A, B int }

// TestPackedRoundTrip pins Export → FromPacked as an identity for query
// purposes: the rebuilt tree validates and answers every search exactly
// like the original.
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 15, 16, 17, 300, 5000} {
		es := randEntries(rng, n, 800, 4)
		orig := NewBulk(es)
		packed := orig.Export()
		back, err := FromPacked(packed)
		if err != nil {
			t.Fatalf("n=%d: FromPacked: %v", n, err)
		}
		if back.Len() != orig.Len() || back.Height() != orig.Height() {
			t.Fatalf("n=%d: shape changed: len %d→%d height %d→%d",
				n, orig.Len(), back.Len(), orig.Height(), back.Height())
		}
		for range 50 {
			q := geom.R(rng.Float64()*800, rng.Float64()*800, 0, 0)
			q.MaxX = q.MinX + rng.Float64()*100
			q.MaxY = q.MinY + rng.Float64()*100
			if got, want := collectSearch(back, q), collectSearch(orig, q); !sameIDs(got, want) {
				t.Fatalf("n=%d search %v: rebuilt %v, original %v", n, q, got, want)
			}
		}
	}
}

// TestFromPackedRejectsMalformed feeds structurally corrupt packed images
// and requires typed errors, never panics — the property the snapshot
// reader's corruption handling relies on.
func TestFromPackedRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	good := NewBulk(randEntries(rng, 100, 100, 3)).Export()

	mutate := func(name string, f func(p Packed) Packed) {
		t.Run(name, func(t *testing.T) {
			cp := *good
			cp.Nodes = append([]PackedNode(nil), good.Nodes...)
			cp.Entries = append([]Entry(nil), good.Entries...)
			bad := f(cp)
			if _, err := FromPacked(&bad); err == nil {
				t.Fatalf("malformed image accepted")
			}
		})
	}
	mutate("no-nodes", func(p Packed) Packed { p.Nodes = nil; return p })
	mutate("bad-capacity", func(p Packed) Packed { p.MaxEntries = 1; return p })
	mutate("truncated-entries", func(p Packed) Packed { p.Entries = p.Entries[:len(p.Entries)-1]; return p })
	mutate("extra-entries", func(p Packed) Packed { p.Entries = append(p.Entries, Entry{}); return p })
	mutate("oversized-count", func(p Packed) Packed { p.Nodes[0].Count = p.MaxEntries + 1; return p })
	mutate("wrong-size", func(p Packed) Packed { p.Size++; return p })
	mutate("dangling-children", func(p Packed) Packed { p.Nodes = p.Nodes[:1]; return p })
}
