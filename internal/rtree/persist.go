package rtree

import (
	"fmt"

	"repro/internal/geom"
)

// Packed is a flattened, pointer-free image of a Tree, the bridge between
// the in-memory index and the binary snapshot format (internal/store).
// Nodes appear in depth-first preorder; each node records how many
// children (internal) or entries (leaf) it owns, so the tree structure is
// reconstructed unambiguously by consuming the node list front to back.
// Leaf entries are concatenated in the same visit order.
type Packed struct {
	Size       int
	MaxEntries int
	MinEntries int
	Nodes      []PackedNode
	Entries    []Entry
}

// PackedNode is one flattened tree node.
type PackedNode struct {
	Bounds geom.Rect
	Leaf   bool
	Count  int
}

// Export flattens the tree into its Packed image. The export is a pure
// read: the tree remains usable and the Packed shares no structure with
// it beyond the entry values.
func (t *Tree) Export() *Packed {
	p := &Packed{Size: t.size, MaxEntries: t.maxEntries, MinEntries: t.minEntries}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if n.leaf {
			p.Nodes = append(p.Nodes, PackedNode{Bounds: n.bounds, Leaf: true, Count: len(n.entries)})
			p.Entries = append(p.Entries, n.entries...)
			return
		}
		p.Nodes = append(p.Nodes, PackedNode{Bounds: n.bounds, Leaf: false, Count: len(n.children)})
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return p
}

// FromPacked rebuilds a Tree from its Packed image, validating structure
// as it goes: node and entry counts must be consumed exactly, fanouts must
// respect the node capacity, and the finished tree must pass the full
// structural Validate. A malformed image returns an error, never a panic,
// which is what lets the snapshot reader treat a corrupted index section
// as a typed format failure.
func FromPacked(p *Packed) (*Tree, error) {
	if p.MaxEntries < 2 || p.MinEntries < 1 || p.MinEntries > p.MaxEntries {
		return nil, fmt.Errorf("rtree: packed image has bad capacity %d/%d", p.MinEntries, p.MaxEntries)
	}
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("rtree: packed image has no nodes")
	}
	t := &Tree{size: p.Size, maxEntries: p.MaxEntries, minEntries: p.MinEntries}
	ni, ei := 0, 0
	var build func(depth int) (*rnode, error)
	build = func(depth int) (*rnode, error) {
		if depth > 64 {
			return nil, fmt.Errorf("rtree: packed image deeper than 64 levels")
		}
		if ni >= len(p.Nodes) {
			return nil, fmt.Errorf("rtree: packed image truncated at node %d", ni)
		}
		pn := p.Nodes[ni]
		ni++
		if pn.Count < 0 || pn.Count > p.MaxEntries {
			return nil, fmt.Errorf("rtree: packed node %d has count %d (capacity %d)", ni-1, pn.Count, p.MaxEntries)
		}
		n := &rnode{bounds: pn.Bounds, leaf: pn.Leaf}
		if pn.Leaf {
			if ei+pn.Count > len(p.Entries) {
				return nil, fmt.Errorf("rtree: packed image short %d entries at node %d", ei+pn.Count-len(p.Entries), ni-1)
			}
			n.entries = append([]Entry(nil), p.Entries[ei:ei+pn.Count]...)
			ei += pn.Count
			return n, nil
		}
		if pn.Count == 0 {
			return nil, fmt.Errorf("rtree: packed internal node %d has no children", ni-1)
		}
		for range pn.Count {
			c, err := build(depth + 1)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	if ni != len(p.Nodes) {
		return nil, fmt.Errorf("rtree: packed image has %d unconsumed nodes", len(p.Nodes)-ni)
	}
	if ei != len(p.Entries) {
		return nil, fmt.Errorf("rtree: packed image has %d unconsumed entries", len(p.Entries)-ei)
	}
	count := 0
	for _, pn := range p.Nodes {
		if pn.Leaf {
			count += pn.Count
		}
	}
	if count != p.Size {
		return nil, fmt.Errorf("rtree: packed size %d disagrees with %d leaf entries", p.Size, count)
	}
	t.root = root
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
