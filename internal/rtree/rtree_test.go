package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randRect(rng *rand.Rand, span, maxSide float64) geom.Rect {
	x, y := rng.Float64()*span, rng.Float64()*span
	return geom.R(x, y, x+rng.Float64()*maxSide, y+rng.Float64()*maxSide)
}

func randEntries(rng *rand.Rand, n int, span, maxSide float64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Bounds: randRect(rng, span, maxSide), ID: i}
	}
	return es
}

// linearSearch is the oracle for Search.
func linearSearch(es []Entry, r geom.Rect) []int {
	var ids []int
	for _, e := range es {
		if e.Bounds.Intersects(r) {
			ids = append(ids, e.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func collectSearch(t *Tree, r geom.Rect) []int {
	var ids []int
	t.Search(r, func(e Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	sort.Ints(ids)
	return ids
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if !tr.Search(geom.R(0, 0, 1, 1), func(Entry) bool { t.Error("visited"); return true }) {
		t.Error("search aborted")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	other := NewBulk(nil)
	Join(tr, other, func(a, b Entry) bool { t.Error("pair visited"); return true })
}

func TestInsertSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	es := randEntries(rng, 1000, 100, 5)
	tr := New()
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != len(es) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for range 100 {
		q := randRect(rng, 100, 20)
		if got, want := collectSearch(tr, q), linearSearch(es, q); !equalInts(got, want) {
			t.Fatalf("Search(%v): got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestBulkLoadMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{1, 5, 16, 17, 100, 1000} {
		es := randEntries(rng, n, 50, 3)
		tr := NewBulk(es)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for range 50 {
			q := randRect(rng, 50, 10)
			if got, want := collectSearch(tr, q), linearSearch(es, q); !equalInts(got, want) {
				t.Fatalf("n=%d Search(%v) mismatch", n, q)
			}
		}
	}
}

func TestBulkLoadHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := NewBulk(randEntries(rng, 10000, 1000, 1))
	// 10000 entries at fanout 16: leaves=625, level2=40, level3=3, root -> height 4.
	if h := tr.Height(); h > 4 {
		t.Errorf("bulk height = %d, want <= 4", h)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tr := NewBulk(randEntries(rng, 500, 10, 10))
	count := 0
	completed := tr.Search(geom.R(0, 0, 10, 10), func(Entry) bool {
		count++
		return count < 5
	})
	if completed || count != 5 {
		t.Errorf("early stop: completed=%v count=%d", completed, count)
	}
}

func TestSearchWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	es := randEntries(rng, 500, 100, 4)
	tr := NewBulk(es)
	q := geom.R(40, 40, 45, 45)
	for _, d := range []float64{0, 1, 5, 25} {
		var got []int
		tr.SearchWithin(q, d, func(e Entry) bool { got = append(got, e.ID); return true })
		sort.Ints(got)
		var want []int
		for _, e := range es {
			if e.Bounds.Dist(q) <= d {
				want = append(want, e.ID)
			}
		}
		if !equalInts(got, want) {
			t.Fatalf("SearchWithin(d=%v): got %d, want %d", d, len(got), len(want))
		}
	}
}

func joinPairs(a, b *Tree, d float64) [][2]int {
	var pairs [][2]int
	JoinWithin(a, b, d, func(ea, eb Entry) bool {
		pairs = append(pairs, [2]int{ea.ID, eb.ID})
		return true
	})
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ea := randEntries(rng, 300, 50, 4)
	eb := randEntries(rng, 400, 50, 4)
	ta, tb := NewBulk(ea), NewBulk(eb)
	for _, d := range []float64{0, 2, 10} {
		got := joinPairs(ta, tb, d)
		var want [][2]int
		for _, a := range ea {
			for _, b := range eb {
				if a.Bounds.Dist(b.Bounds) <= d {
					want = append(want, [2]int{a.ID, b.ID})
				}
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i][0] != want[j][0] {
				return want[i][0] < want[j][0]
			}
			return want[i][1] < want[j][1]
		})
		if len(got) != len(want) {
			t.Fatalf("d=%v: got %d pairs, want %d", d, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("d=%v: pair %d = %v, want %v", d, i, got[i], want[i])
			}
		}
	}
}

func TestJoinEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ta := NewBulk(randEntries(rng, 100, 10, 5))
	tb := NewBulk(randEntries(rng, 100, 10, 5))
	count := 0
	Join(ta, tb, func(a, b Entry) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop count = %d", count)
	}
}

func TestInsertedTreeJoin(t *testing.T) {
	// Join must work identically on incrementally built trees.
	rng := rand.New(rand.NewSource(38))
	ea := randEntries(rng, 200, 30, 3)
	eb := randEntries(rng, 200, 30, 3)
	ins := New()
	for _, e := range ea {
		ins.Insert(e)
	}
	bulk := NewBulk(ea)
	tb := NewBulk(eb)
	if g, w := joinPairs(ins, tb, 0), joinPairs(bulk, tb, 0); len(g) != len(w) {
		t.Fatalf("insert-built join %d pairs, bulk-built %d", len(g), len(w))
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	es := randEntries(rng, 10000, 1000, 2)
	b.ResetTimer()
	for range b.N {
		NewBulk(es)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := NewBulk(randEntries(rng, 10000, 1000, 2))
	b.ResetTimer()
	for i := range b.N {
		q := geom.R(float64(i%900), float64(i%900), float64(i%900)+20, float64(i%900)+20)
		tr.Search(q, func(Entry) bool { return true })
	}
}

func BenchmarkJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ta := NewBulk(randEntries(rng, 5000, 500, 2))
	tb := NewBulk(randEntries(rng, 5000, 500, 2))
	b.ResetTimer()
	for range b.N {
		Join(ta, tb, func(Entry, Entry) bool { return true })
	}
}
