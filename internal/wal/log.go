package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
)

// Options configures a Log. The zero value is usable: defaults below.
type Options struct {
	// SegmentBytes rotates to a fresh segment once the active one grows
	// past this size (checked at batch boundaries, so a segment can
	// overshoot by one batch). 0 = 4 MiB.
	SegmentBytes int64
	// FlushBytes is the size trigger: once the pending batch reaches this
	// many encoded bytes the committer flushes without waiting out the
	// latency trigger. 0 = 256 KiB.
	FlushBytes int
	// FlushDelay is the latency trigger: how long the committer waits for
	// more appends to join a batch before fsyncing. 0 commits as soon as
	// the committer wakes — concurrent appends still batch naturally
	// behind an in-flight fsync.
	FlushDelay time.Duration
	// Faults arms crash/short-write/io-error injection at the wal.* sites.
	Faults *faultinject.Injector
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FlushBytes <= 0 {
		o.FlushBytes = 256 << 10
	}
	return o
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Appends    int64  // records accepted by Append
	Records    int64  // records durably committed
	Batches    int64  // fsync batches (group commits)
	Bytes      int64  // record bytes written
	Rotations  int64  // segments opened after the first
	Segments   int    // live segment files
	Truncated  int64  // segments removed by TruncateThrough
	TornBytes  int64  // bytes discarded by torn-tail repair at Open
	Recovered  int64  // records recovered at Open
	DurableLSN uint64 // highest fsynced LSN (0 = none)
	NextLSN    uint64 // next LSN Append will assign
}

// MeanBatch returns the average records per group commit (0 when none).
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Batches)
}

// ErrClosed is returned by Append and Sync after Close.
var ErrClosed = errors.New("wal: log closed")

type segInfo struct {
	index int
	base  uint64 // LSN of the segment's first record
	path  string
}

type batch struct {
	done chan struct{}
	err  error // written before done closes; read after
}

// Ack is a durability ticket for one appended record: Wait blocks until
// the record's group commit fsyncs (nil) or fails (the poisoning error).
type Ack struct {
	LSN uint64
	b   *batch
}

// Wait blocks for the record's durability. A ctx expiry abandons the
// wait, not the write: the record may still commit afterwards.
func (a *Ack) Wait(ctx context.Context) error {
	select {
	case <-a.b.done:
		return a.b.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Log is a group-committed write-ahead log over a directory of segment
// files. Safe for concurrent appenders; one internal committer goroutine
// performs all file I/O.
type Log struct {
	dir string
	opt Options

	mu          sync.Mutex
	nextLSN     uint64
	durableLSN  uint64
	pending     []byte // encoded records awaiting commit
	pendingRecs int64
	pendingLSN  uint64 // LSN of pending's first record
	curBatch    *batch
	err         error // poisoned: set on write/fsync failure, never cleared
	closed      bool
	segs        []segInfo
	lastIndex   int

	f       *os.File // active segment (committer-owned after Open)
	segSize int64

	kick chan struct{} // something is pending
	big  chan struct{} // size trigger crossed
	quit chan struct{}
	done chan struct{}

	stats struct {
		appends, records, batches, bytes, rotations, truncated int64
		tornBytes, recovered                                   int64
	}
}

// Open recovers the log in dir (created if missing) and returns every
// durable record in LSN order; the caller replays the suffix its own
// state has not yet applied. A torn tail on the last segment is
// truncated away (those bytes were never acked); a last segment whose
// header never became durable is deleted (rotation fsyncs the header
// before any record is written, so such a file holds nothing acked).
// Damage anywhere else is a *CorruptError.
func Open(dir string, opt Options) (*Log, []Record, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list segments: %w", err)
	}
	sort.Strings(names)

	l := &Log{
		dir:  dir,
		opt:  opt,
		kick: make(chan struct{}, 1),
		big:  make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}

	var recs []Record
	next := uint64(0)
	for i, path := range names {
		last := i == len(names)-1
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
		}
		base, segRecs, good, res := scanSegment(b)
		if res == scanBadHeader {
			if !last {
				return nil, nil, &CorruptError{Path: path, Off: 0, Msg: "bad segment header"}
			}
			// Crash mid-rotation: the header never became durable, so no
			// record in this file was ever acked. Remove and move on.
			if err := os.Remove(path); err != nil {
				return nil, nil, fmt.Errorf("wal: remove torn segment %s: %w", path, err)
			}
			if err := syncDir(dir); err != nil {
				return nil, nil, err
			}
			l.stats.tornBytes += int64(len(b))
			continue
		}
		if next != 0 && base != next {
			return nil, nil, &CorruptError{Path: path, Off: 16,
				Msg: fmt.Sprintf("segment chain broken: base LSN %d, expected %d", base, next)}
		}
		if next == 0 {
			next = base
		}
		for _, r := range segRecs {
			if r.LSN != next {
				return nil, nil, &CorruptError{Path: path, Off: int64(good),
					Msg: fmt.Sprintf("LSN %d out of sequence, expected %d", r.LSN, next)}
			}
			next++
		}
		if res == scanTorn {
			if !last {
				return nil, nil, &CorruptError{Path: path, Off: int64(good), Msg: "invalid record mid-log"}
			}
			if err := truncateFile(path, int64(good)); err != nil {
				return nil, nil, err
			}
			l.stats.tornBytes += int64(len(b) - good)
		}
		recs = append(recs, segRecs...)
		idx := segIndex(path)
		l.segs = append(l.segs, segInfo{index: idx, base: base, path: path})
		if idx > l.lastIndex {
			l.lastIndex = idx
		}
	}
	if next == 0 {
		next = 1 // LSN 0 is reserved for "nothing applied"
	}
	l.nextLSN = next
	if len(recs) > 0 {
		l.durableLSN = recs[len(recs)-1].LSN
	}
	l.stats.recovered = int64(len(recs))

	if len(l.segs) == 0 {
		if err := l.openFreshSegment(next); err != nil {
			return nil, nil, err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open %s: %w", active.path, err)
		}
		size, err := f.Seek(0, 2)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seek %s: %w", active.path, err)
		}
		l.f, l.segSize = f, size
	}

	go l.run()
	return l, recs, nil
}

// Dir returns the log's segment directory.
func (l *Log) Dir() string { return l.dir }

// Append encodes one mutation, assigns it the next LSN, and enqueues it
// for group commit. The returned Ack resolves when the record is durable.
// LSN order equals call order for callers that serialize their Appends
// (the ingest table appends under its mutation lock, which is what makes
// recovery replay order equal in-memory apply order).
func (l *Log) Append(op Op, id uint64, verts []geom.Point) (*Ack, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return nil, err
	}
	lsn := l.nextLSN
	l.nextLSN++
	if len(l.pending) == 0 {
		l.pendingLSN = lsn
	}
	l.pending = appendRecord(l.pending, Record{LSN: lsn, Op: op, ID: id, Verts: verts})
	l.pendingRecs++
	if l.curBatch == nil {
		l.curBatch = &batch{done: make(chan struct{})}
	}
	b := l.curBatch
	l.stats.appends++
	big := len(l.pending) >= l.opt.FlushBytes
	l.mu.Unlock()

	select {
	case l.kick <- struct{}{}:
	default:
	}
	if big {
		select {
		case l.big <- struct{}{}:
		default:
		}
	}
	return &Ack{LSN: lsn, b: b}, nil
}

// Sync forces everything pending to commit and waits for it.
func (l *Log) Sync(ctx context.Context) error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	b := l.curBatch
	l.mu.Unlock()
	if b == nil {
		return nil
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	select {
	case l.big <- struct{}{}:
	default:
	}
	select {
	case <-b.done:
		return b.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TruncateThrough removes whole segments whose records all have
// LSN ≤ lsn; the active segment is never removed. Safe to call while
// appends continue: the compactor calls this only after the records are
// folded into a durable snapshot.
func (l *Log) TruncateThrough(lsn uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 1 && l.segs[1].base <= lsn+1 {
		path := l.segs[0].path
		if err := os.Remove(path); err != nil {
			return removed, fmt.Errorf("wal: truncate %s: %w", path, err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		l.stats.truncated += int64(removed)
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:    l.stats.appends,
		Records:    l.stats.records,
		Batches:    l.stats.batches,
		Bytes:      l.stats.bytes,
		Rotations:  l.stats.rotations,
		Segments:   len(l.segs),
		Truncated:  l.stats.truncated,
		TornBytes:  l.stats.tornBytes,
		Recovered:  l.stats.recovered,
		DurableLSN: l.durableLSN,
		NextLSN:    l.nextLSN,
	}
}

// Close drains pending records through one final commit, stops the
// committer, and closes the active segment. Records appended before
// Close are committed; Append afterwards returns ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// run is the committer loop: wake on a kick, wait out the latency
// trigger (cut short by the size trigger), then commit whatever piled up.
func (l *Log) run() {
	defer close(l.done)
	for {
		select {
		case <-l.quit:
			l.commit()
			return
		case <-l.kick:
		}
		if d := l.opt.FlushDelay; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-l.big:
				t.Stop()
			case <-l.quit:
				t.Stop()
				l.commit()
				return
			}
		}
		l.commit()
		// Drain stale triggers so the next batch gets a fresh delay.
		select {
		case <-l.big:
		default:
		}
	}
}

// commit takes the pending batch and writes+fsyncs it as one unit. The
// batch's waiters are released with the outcome; a failure poisons the
// log permanently (an acked record must never exist only in page cache).
func (l *Log) commit() {
	l.mu.Lock()
	buf, n, first, b := l.pending, l.pendingRecs, l.pendingLSN, l.curBatch
	poisoned := l.err
	l.pending, l.pendingRecs, l.curBatch = nil, 0, nil
	rotate := l.segSize >= l.opt.SegmentBytes
	l.mu.Unlock()
	if b == nil {
		return
	}
	var err error
	if poisoned != nil {
		err = poisoned
	} else {
		err = l.writeBatch(buf, first, rotate)
	}
	l.mu.Lock()
	if err != nil {
		if l.err == nil {
			l.err = err
		}
	} else {
		l.durableLSN = first + uint64(n) - 1
		l.stats.records += n
		l.stats.batches++
		l.stats.bytes += int64(len(buf))
	}
	l.mu.Unlock()
	b.err = err
	close(b.done)
}

// writeBatch appends buf to the active segment (rotating first when due)
// and fsyncs. The wal.* fault sites bracket each durability step.
func (l *Log) writeBatch(buf []byte, firstLSN uint64, rotate bool) error {
	if rotate {
		if err := l.rotate(firstLSN); err != nil {
			return err
		}
	}
	if f := l.fault(faultinject.SiteWALWrite); f.Any() {
		if f.Short {
			// Torn write: persist a prefix, then die or report failure —
			// either way nothing in this batch may be acked.
			l.f.Write(buf[:len(buf)/2])
			l.f.Sync()
			if f.Crash {
				faultinject.Crash()
			}
			return fmt.Errorf("wal: injected short write at %s", faultinject.SiteWALWrite)
		}
		if f.Crash {
			faultinject.Crash()
		}
		if f.Err {
			return fmt.Errorf("wal: injected write error at %s", faultinject.SiteWALWrite)
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: write batch: %w", err)
	}
	if f := l.fault(faultinject.SiteWALFsync); f.Any() {
		if f.Crash {
			faultinject.Crash()
		}
		if f.Err || f.Short {
			return fmt.Errorf("wal: injected fsync error at %s", faultinject.SiteWALFsync)
		}
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync batch: %w", err)
	}
	if f := l.fault(faultinject.SiteWALFsynced); f.Crash {
		faultinject.Crash()
	}
	l.mu.Lock()
	l.segSize += int64(len(buf))
	l.mu.Unlock()
	return nil
}

// rotate fsyncs and closes the active segment and opens the next one,
// with the fresh header made durable (file fsync + dir fsync) before any
// record lands in it — recovery relies on that ordering to classify a
// header-less last segment as holding nothing acked.
func (l *Log) rotate(baseLSN uint64) error {
	if f := l.fault(faultinject.SiteWALRotate); f.Any() {
		if f.Crash {
			faultinject.Crash()
		}
		return fmt.Errorf("wal: injected rotate error at %s", faultinject.SiteWALRotate)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	if err := l.openFreshSegment(baseLSN); err != nil {
		return err
	}
	l.mu.Lock()
	l.stats.rotations++
	l.mu.Unlock()
	return nil
}

// openFreshSegment creates segment lastIndex+1 with a durable header.
func (l *Log) openFreshSegment(baseLSN uint64) error {
	l.mu.Lock()
	l.lastIndex++
	idx := l.lastIndex
	l.mu.Unlock()
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegHeader(baseLSN)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync segment header: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.mu.Lock()
	l.f, l.segSize = f, segHeaderSize
	l.segs = append(l.segs, segInfo{index: idx, base: baseLSN, path: path})
	l.mu.Unlock()
	return nil
}

func (l *Log) fault(site string) faultinject.IOFault {
	if l.opt.Faults == nil {
		return faultinject.IOFault{}
	}
	return l.opt.Faults.WriteFault(site)
}

// segIndex parses the numeric index out of a segment path (0 on mismatch).
func segIndex(path string) int {
	var idx int
	fmt.Sscanf(filepath.Base(path), "seg-%d.wal", &idx)
	return idx
}

// truncateFile truncates path to size and fsyncs the result.
func truncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync truncated %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so entry changes (create, rename, unlink)
// survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
