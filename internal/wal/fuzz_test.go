package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

// FuzzWALOpen drives recovery with hostile segment images. The contract
// mirrors the snapshot reader's: never panic, never allocate more than
// the input justifies (every length is validated before allocation), and
// classify every input as recovered-records, repaired torn tail, or a
// typed error. Inputs that Open accepts must be idempotent: a second
// recovery of the repaired log yields the same records.
func FuzzWALOpen(f *testing.F) {
	// Seed with a well-formed segment: header plus an insert and a delete.
	valid := encodeSegHeader(1)
	valid = appendRecord(valid, Record{LSN: 1, Op: OpInsert, ID: 0,
		Verts: []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)}})
	valid = appendRecord(valid, Record{LSN: 2, Op: OpDelete, ID: 0})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])  // torn tail
	f.Add(valid[:segHeaderSize]) // empty segment
	f.Add([]byte("SPWAL001"))    // truncated header
	f.Add([]byte{})              // empty file
	hostile := append(append([]byte{}, valid[:segHeaderSize]...),
		0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // huge length prefix
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, b []byte) {
		dir := filepath.Join(t.TempDir(), "f.wal")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.wal"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(dir, Options{})
		if err != nil {
			return // rejected cleanly
		}
		for i, r := range recs {
			if r.LSN == 0 {
				t.Fatalf("record %d has LSN 0", i)
			}
			if r.Op == OpInsert && len(r.Verts) < 3 {
				t.Fatalf("record %d: insert with %d vertices", i, len(r.Verts))
			}
		}
		l.Close()
		// Recovery repaired the log in place; a second open must agree.
		l2, recs2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("repaired log failed to reopen: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("reopen recovered %d records, first pass %d", len(recs2), len(recs))
		}
		l2.Close()
	})
}
