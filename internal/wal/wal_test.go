package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
)

func tri(off float64) []geom.Point {
	return []geom.Point{geom.Pt(off, off), geom.Pt(off+1, off), geom.Pt(off, off+1)}
}

func mustAppend(t *testing.T, l *Log, op Op, id uint64, verts []geom.Point) *Ack {
	t.Helper()
	ack, err := l.Append(op, id, verts)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return ack
}

func TestRoundTripRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	acks := []*Ack{
		mustAppend(t, l, OpInsert, 0, tri(0)),
		mustAppend(t, l, OpInsert, 1, tri(10)),
		mustAppend(t, l, OpDelete, 0, nil),
	}
	ctx := context.Background()
	for i, a := range acks {
		if err := a.Wait(ctx); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if a.LSN != uint64(i+1) {
			t.Fatalf("ack %d: LSN %d, want %d", i, a.LSN, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	want := []struct {
		op Op
		id uint64
		nv int
	}{{OpInsert, 0, 3}, {OpInsert, 1, 3}, {OpDelete, 0, 0}}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Op != want[i].op || r.ID != want[i].id || len(r.Verts) != want[i].nv {
			t.Fatalf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if recs[0].Verts[2] != geom.Pt(0, 1) {
		t.Fatalf("vertex mismatch: %v", recs[0].Verts)
	}
	// Appends continue from the recovered LSN.
	a := mustAppend(t, l2, OpInsert, 2, tri(20))
	if a.LSN != 4 {
		t.Fatalf("post-recovery LSN %d, want 4", a.LSN)
	}
	if err := a.Wait(ctx); err != nil {
		t.Fatalf("post-recovery ack: %v", err)
	}
}

// TestGroupCommit drives many concurrent appenders through a latency
// window and asserts the committer amortized fsyncs: far fewer batches
// than records.
func TestGroupCommit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{FlushDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()

	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ack, err := l.Append(OpInsert, uint64(w*each+i), tri(float64(i)))
				if err == nil {
					err = ack.Wait(context.Background())
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}
	st := l.Stats()
	if st.Records != writers*each {
		t.Fatalf("committed %d records, want %d", st.Records, writers*each)
	}
	if st.Batches >= st.Records {
		t.Fatalf("no group commit: %d batches for %d records", st.Batches, st.Records)
	}
	if mean := st.MeanBatch(); mean < 1 {
		t.Fatalf("mean batch %v", mean)
	}
	if st.DurableLSN != uint64(writers*each) {
		t.Fatalf("durable LSN %d, want %d", st.DurableLSN, writers*each)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := mustAppend(t, l, OpInsert, uint64(i), tri(float64(i))).Wait(context.Background()); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: valid records, then a partial record.
	seg := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	st := l2.Stats()
	if st.TornBytes != 6 {
		t.Fatalf("TornBytes %d, want 6", st.TornBytes)
	}
	// The log is usable after repair and recovers cleanly again.
	if err := mustAppend(t, l2, OpDelete, 1, nil).Wait(context.Background()); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l2.Close()
	l3, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if len(recs) != 4 || recs[3].Op != OpDelete {
		t.Fatalf("recovered %d records after repair+append", len(recs))
	}
}

func TestMidLogCorruptionFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	// Tiny segments force rotation so damage lands in a non-last segment.
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := mustAppend(t, l, OpInsert, uint64(i), tri(float64(i))).Wait(context.Background()); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, have %d segments", st.Segments)
	}
	l.Close()

	seg := filepath.Join(dir, "seg-00000001.wal")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a payload byte in an earlier segment
	os.WriteFile(seg, b, 0o644)

	_, _, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
}

func TestRotationAndTruncateThrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	const n = 20
	var lastLSN uint64
	for i := 0; i < n; i++ {
		a := mustAppend(t, l, OpInsert, uint64(i), tri(float64(i)))
		if err := a.Wait(context.Background()); err != nil {
			t.Fatalf("ack: %v", err)
		}
		lastLSN = a.LSN
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 3 {
		t.Fatalf("expected several segments, stats %+v", st)
	}
	removed, err := l.TruncateThrough(lastLSN)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed != st.Segments-1 {
		t.Fatalf("removed %d segments, want %d", removed, st.Segments-1)
	}
	// Everything before the active segment is gone; appends still work
	// and recovery sees only the tail.
	if err := mustAppend(t, l, OpDelete, 0, nil).Wait(context.Background()); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	l.Close()
	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	for _, r := range recs {
		if r.LSN <= lastLSN && r.Op == OpDelete {
			t.Fatalf("truncated record recovered: %+v", r)
		}
	}
	if recs[len(recs)-1].Op != OpDelete {
		t.Fatalf("tail record missing, recovered %d records", len(recs))
	}
}

// TestFsyncErrorPoisons asserts the ack contract's failure half: when
// fsync reports an error, the waiter gets the error (no ack from page
// cache) and the log refuses further appends.
func TestFsyncErrorPoisons(t *testing.T) {
	inj := faultinject.New(1)
	inj.Inject(faultinject.SiteWALFsync, faultinject.KindIOError, 1)
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{Faults: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	ack := mustAppend(t, l, OpInsert, 0, tri(0))
	if err := ack.Wait(context.Background()); err == nil {
		t.Fatal("acked a write whose fsync failed")
	}
	if _, err := l.Append(OpInsert, 1, tri(1)); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
}

// TestShortWriteNeverAcked: a torn write (prefix persisted) must fail the
// waiter, and recovery must discard the torn bytes.
func TestShortWriteNeverAcked(t *testing.T) {
	inj := faultinject.New(1)
	inj.InjectAt(faultinject.SiteWALWrite, faultinject.KindShortWrite, 0)
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{Faults: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ack := mustAppend(t, l, OpInsert, 0, tri(0))
	if err := ack.Wait(context.Background()); err == nil {
		t.Fatal("acked a torn write")
	}
	l.Close()

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after torn write: %v", err)
	}
	defer l2.Close()
	if len(recs) != 0 {
		t.Fatalf("torn write surfaced %d records", len(recs))
	}
	if l2.Stats().TornBytes == 0 {
		t.Fatal("no torn bytes recorded")
	}
}

func TestSpecDrivenCrashSequencing(t *testing.T) {
	inj, err := faultinject.ParseSpec(7, "wal.fsync=io-error:1@2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{Faults: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	// Calls 0 and 1 at the site succeed; call 2 fires.
	for i := 0; i < 2; i++ {
		if err := mustAppend(t, l, OpInsert, uint64(i), tri(float64(i))).Wait(context.Background()); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := mustAppend(t, l, OpInsert, 2, tri(2)).Wait(context.Background()); err == nil {
		t.Fatal("@seq-pinned fault did not fire on its call")
	}
}

func TestSyncAndClosedSemantics(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{FlushDelay: time.Hour}) // only Sync can flush
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ack := mustAppend(t, l, OpInsert, 0, tri(0))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := l.Sync(ctx); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := ack.Wait(ctx); err != nil {
		t.Fatalf("ack after Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.Append(OpInsert, 1, tri(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestBadHeaderLastSegmentDeleted(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := mustAppend(t, l, OpInsert, 0, tri(0)).Wait(context.Background()); err != nil {
		t.Fatalf("ack: %v", err)
	}
	l.Close()
	// A crash mid-rotation leaves a header-less file; rotation makes the
	// header durable before any record, so nothing acked lives in it.
	bad := filepath.Join(dir, "seg-00000002.wal")
	os.WriteFile(bad, []byte("partial"), 0o644)

	l2, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("header-less last segment not deleted")
	}
	// The log reuses the freed index without colliding.
	if err := mustAppend(t, l2, OpInsert, 1, tri(1)).Wait(context.Background()); err != nil {
		t.Fatalf("append after delete: %v", err)
	}
}

func TestSegmentChainBreakFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "t.wal")
	l, _, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := mustAppend(t, l, OpInsert, uint64(i), tri(float64(i))).Wait(context.Background()); err != nil {
			t.Fatalf("ack: %v", err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("want 3 segments, have %d", l.Stats().Segments)
	}
	l.Close()
	// Deleting a middle segment breaks the LSN chain.
	if err := os.Remove(filepath.Join(dir, "seg-00000002.wal")); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError for broken chain, got %v", err)
	}
}

func TestEncodeDecodeHostileLengths(t *testing.T) {
	// decodePayload must reject mismatched vertex counts without panicking
	// or allocating past the input.
	r := Record{LSN: 1, Op: OpInsert, ID: 9, Verts: tri(0)}
	b := appendRecord(nil, r)
	payload := b[recHeaderSize:]
	for cut := 0; cut < len(payload); cut++ {
		decodePayload(payload[:cut]) // must not panic
	}
	if _, ok := decodePayload(payload); !ok {
		t.Fatal("valid payload rejected")
	}
	if _, ok := decodePayload(append([]byte(nil), payload[:insertPayload]...)); ok {
		t.Fatal("payload with missing vertices accepted")
	}
	for i := 0; i < 100; i++ {
		if _, ok := decodePayload([]byte(fmt.Sprintf("%017d", i))); ok {
			t.Fatal("garbage payload accepted")
		}
	}
}
