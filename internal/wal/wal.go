// Package wal is a crash-safe write-ahead log for live mutations: a
// directory of length-prefixed, CRC32-per-record segment files with a
// group-committing writer. Appenders enqueue encoded records and receive
// an Ack; a single committer goroutine batches everything pending into
// one write+fsync, so concurrent writers amortize the fsync (the latency
// trigger waits briefly for company, the size trigger flushes a large
// batch immediately). The ack contract is strict: Ack.Wait returns nil
// only after the record's batch is durably fsynced, and an fsync failure
// poisons the log rather than acking from the page cache.
//
// Recovery mirrors the snapshot reader's discipline: every structural
// violation surfaces as a typed *CorruptError, never a panic, and all
// validation happens before allocation so hostile lengths cannot balloon
// memory. A torn tail — a partial record at the end of the last segment,
// the signature of a crash mid-write — is truncated away silently: those
// bytes were never acked. The same damage anywhere else is real
// corruption and fails Open.
//
// Layout (little-endian):
//
//	segment file  <dir>/seg-<index>.wal
//	offset 0      magic   "SPWAL001"             8 bytes
//	offset 8      version uint32 (currently 1)
//	offset 12     reserved uint32
//	offset 16     baseLSN uint64 (LSN of the segment's first record)
//	offset 24     records, back to back:
//	              payloadLen uint32 · crc uint32 (CRC32-IEEE of payload) ·
//	              payload: lsn uint64 · op uint8 · id uint64 ·
//	                       [insert only: nverts uint32 · nverts × 2 float64]
//
// LSNs are assigned contiguously from 1; segments chain (each header's
// baseLSN equals the previous segment's end), so recovery detects a
// missing or reordered segment as a broken chain.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/geom"
)

// SegMagic identifies WAL segment files.
const SegMagic = "SPWAL001"

// SegVersion is the current segment format version.
const SegVersion = 1

const (
	segHeaderSize = 24
	recHeaderSize = 8 // payloadLen + crc

	// payload layout offsets
	fixedPayload  = 17 // lsn(8) + op(1) + id(8)
	insertPayload = 21 // fixedPayload + nverts(4)

	// maxPayload bounds a single record so a hostile length prefix cannot
	// force a huge allocation; generous for real polygons (4M vertices).
	maxPayload = 1 << 26
)

// Op enumerates mutation kinds carried by a record.
type Op uint8

const (
	// OpInsert adds a polygon under a fresh stable id.
	OpInsert Op = 1
	// OpDelete tombstones the object with the given stable id.
	OpDelete Op = 2
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Record is one durable mutation. Verts is set for OpInsert only and is
// owned by the record (recovery copies out of the scan buffer).
type Record struct {
	LSN   uint64
	Op    Op
	ID    uint64
	Verts []geom.Point
}

// CorruptError reports a structurally invalid WAL segment: which file,
// the byte offset of the damage, and what was wrong. Torn tails on the
// last segment are repaired silently and never surface as this error.
type CorruptError struct {
	Path string
	Off  int64
	Msg  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: offset %d: %s", e.Path, e.Off, e.Msg)
}

// appendRecord encodes r (LSN, op, id, verts) onto b in segment framing.
func appendRecord(b []byte, r Record) []byte {
	plen := fixedPayload
	if r.Op == OpInsert {
		plen = insertPayload + 16*len(r.Verts)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(plen))
	crcAt := len(b)
	b = binary.LittleEndian.AppendUint32(b, 0) // crc backpatched below
	payloadAt := len(b)
	b = binary.LittleEndian.AppendUint64(b, r.LSN)
	b = append(b, byte(r.Op))
	b = binary.LittleEndian.AppendUint64(b, r.ID)
	if r.Op == OpInsert {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Verts)))
		for _, v := range r.Verts {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.X))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Y))
		}
	}
	binary.LittleEndian.PutUint32(b[crcAt:], crc32.ChecksumIEEE(b[payloadAt:]))
	return b
}

// decodePayload parses one CRC-verified record payload. Structural
// violations return ok=false; the caller decides whether that is a torn
// tail or corruption. Verts are copied out of the buffer.
func decodePayload(p []byte) (Record, bool) {
	if len(p) < fixedPayload {
		return Record{}, false
	}
	r := Record{
		LSN: binary.LittleEndian.Uint64(p[0:]),
		Op:  Op(p[8]),
		ID:  binary.LittleEndian.Uint64(p[9:]),
	}
	switch r.Op {
	case OpDelete:
		if len(p) != fixedPayload {
			return Record{}, false
		}
	case OpInsert:
		if len(p) < insertPayload {
			return Record{}, false
		}
		nverts := binary.LittleEndian.Uint32(p[17:])
		// Exact-length check before allocating: nverts must account for
		// every remaining byte, so the allocation below is bounded by the
		// (already CRC-checked, already length-bounded) input.
		if nverts < 3 || int(nverts) != (len(p)-insertPayload)/16 || len(p) != insertPayload+16*int(nverts) {
			return Record{}, false
		}
		r.Verts = make([]geom.Point, nverts)
		for i := range r.Verts {
			off := insertPayload + 16*i
			r.Verts[i] = geom.Pt(
				math.Float64frombits(binary.LittleEndian.Uint64(p[off:])),
				math.Float64frombits(binary.LittleEndian.Uint64(p[off+8:])),
			)
		}
	default:
		return Record{}, false
	}
	if r.LSN == 0 {
		return Record{}, false
	}
	return r, true
}

// scanResult classifies how a segment scan ended.
type scanResult int

const (
	scanClean     scanResult = iota // every byte accounted for
	scanTorn                        // valid prefix, then a partial/invalid record
	scanBadHeader                   // the 24-byte header itself is invalid
)

// scanSegment walks one segment image: header, then records until the
// bytes run out or stop parsing. good is the offset just past the last
// valid record (the truncation point for a torn tail). All validation
// happens before any allocation sized from the input.
func scanSegment(b []byte) (base uint64, recs []Record, good int, res scanResult) {
	if len(b) < segHeaderSize || string(b[:8]) != SegMagic ||
		binary.LittleEndian.Uint32(b[8:]) != SegVersion {
		return 0, nil, 0, scanBadHeader
	}
	base = binary.LittleEndian.Uint64(b[16:])
	off := segHeaderSize
	for off < len(b) {
		if len(b)-off < recHeaderSize {
			return base, recs, off, scanTorn
		}
		plen := int(binary.LittleEndian.Uint32(b[off:]))
		crc := binary.LittleEndian.Uint32(b[off+4:])
		if plen < fixedPayload || plen > maxPayload || off+recHeaderSize+plen > len(b) {
			return base, recs, off, scanTorn
		}
		payload := b[off+recHeaderSize : off+recHeaderSize+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return base, recs, off, scanTorn
		}
		rec, ok := decodePayload(payload)
		if !ok {
			return base, recs, off, scanTorn
		}
		recs = append(recs, rec)
		off += recHeaderSize + plen
	}
	return base, recs, off, scanClean
}

// encodeSegHeader builds a fresh segment header for baseLSN.
func encodeSegHeader(baseLSN uint64) []byte {
	b := make([]byte, segHeaderSize)
	copy(b, SegMagic)
	binary.LittleEndian.PutUint32(b[8:], SegVersion)
	binary.LittleEndian.PutUint64(b[16:], baseLSN)
	return b
}
