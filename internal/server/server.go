package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/shellcmd"
)

// Config controls a Server. The zero value serves the TCP wire protocol
// on an ephemeral port with GOMAXPROCS admission slots and no HTTP
// listener.
type Config struct {
	// Addr is the TCP wire-protocol listen address; "" means ":0"
	// (ephemeral, for tests and embedding).
	Addr string
	// HTTPAddr is the HTTP listen address for /query, /metrics and
	// /healthz; "" disables the HTTP listener.
	HTTPAddr string

	// MaxConcurrent bounds refinement-running queries across all
	// sessions (the admission semaphore); 0 means GOMAXPROCS.
	MaxConcurrent int
	// QueueWait is how long an over-limit query may wait for a slot
	// before the typed overload rejection; 0 rejects immediately.
	QueueWait time.Duration
	// MaxQueue bounds the admission wait queue; arrivals beyond it are
	// shed immediately with a retry-after hint. 0 means 4×MaxConcurrent
	// (ignored when QueueWait is 0: no queue forms).
	MaxQueue int
	// MaxLayers bounds the shared catalog; 0 means 64.
	MaxLayers int

	// DefaultTimeout seeds each session's timeout setting (sessions may
	// change it with the timeout command); 0 means none.
	DefaultTimeout time.Duration
	// QueryTimeout is the server-imposed ceiling on every query's
	// wall-clock budget: sessions may set tighter timeouts but cannot
	// escape it. Expiry yields partial results with a typed
	// *query.DeadlineError. 0 means no ceiling.
	QueryTimeout time.Duration
	// WatchdogTimeout is the stuck-query threshold: a query running
	// longer is cancelled by the session watchdog (cause
	// *StuckQueryError) and its admission slot reclaimed. It should
	// comfortably exceed QueryTimeout; 0 disables the watchdog.
	WatchdogTimeout time.Duration
	// WriteTimeout bounds every client-bound write+flush (wire-protocol
	// lines and HTTP stream chunks). A client that stops reading without
	// disconnecting would otherwise block the session in conn.Write once
	// the socket buffer fills — where context cancellation cannot reach —
	// pinning the query goroutine and its admission slot; with the
	// deadline the write fails, the command context cancels, and the
	// slot frees. 0 means 30s; negative disables the bound.
	WriteTimeout time.Duration
	// SentinelEvery seeds every served tester's sentinel verification
	// cadence (core.Config.SentinelEvery): 0 means the core default,
	// negative disables verification.
	SentinelEvery int
	// DefaultBudget seeds each session's candidate budget; 0 means
	// unlimited.
	DefaultBudget int

	// DataDir is where sessions' save and load commands resolve bare
	// snapshot names (shellcmd.Engine.DataDir); "" leaves paths as given.
	DataDir string

	// DrainGrace is how long graceful shutdown lets in-flight queries
	// finish naturally before cancelling them into partial results;
	// 0 means 250ms. Negative cancels immediately.
	DrainGrace time.Duration

	// AccessLog receives one structured line per executed command; nil
	// discards.
	AccessLog io.Writer

	// Faults arms fault injection for resilience tests: the server
	// protocol sites (accept delay/panic, slow reads, mid-response
	// disconnects) and the refinement testers built for each command
	// (so injected query-path faults exercise the serving layer's
	// containment). Nil in production.
	Faults *faultinject.Injector

	// Ingest, when non-nil, enables the durable ingestion verbs (live,
	// insert, delete, compact) on every session: live tables bind into
	// the shared catalog next to plain layers, and the manager's
	// durability totals are exported as wal_*/compaction_* metrics. The
	// caller owns the manager's lifecycle (Close after Shutdown).
	Ingest *ingest.Manager

	// Coordinator, when non-nil, turns this spatiald into the scatter-
	// gather front of a sharded fleet: every session's query verbs fan
	// out over the shards (internal/coord) under the same admission
	// control, deadline ceiling, and watchdog as local queries, and the
	// per-shard breaker health is exported under spatiald_shard_*. The
	// caller owns the coordinator's lifecycle (Close after Shutdown).
	Coordinator *coord.Coordinator
}

// Server is a spatiald instance: listeners, shared catalog, admission
// control, metrics, and the session set.
type Server struct {
	cfg     Config
	catalog *Catalog
	lim     *limiter
	metrics *Metrics
	dog     *watchdog

	// baseCtx parents every command context; cancelled to force
	// in-flight queries into partial results during shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	ln      net.Listener
	httpSrv *http.Server
	httpLn  net.Listener

	wg    sync.WaitGroup
	logMu sync.Mutex

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	started  bool
	shutdown chan struct{}
}

// New builds an unstarted server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = ":0"
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxLayers == 0 {
		cfg.MaxLayers = 64
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 250 * time.Millisecond
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		catalog:  NewCatalog(cfg.MaxLayers),
		lim:      newLimiter(cfg.MaxConcurrent, cfg.QueueWait, cfg.MaxQueue),
		metrics:  newMetrics(),
		dog:      newWatchdog(cfg.WatchdogTimeout),
		baseCtx:  ctx,
		cancel:   cancel,
		conns:    map[net.Conn]struct{}{},
		shutdown: make(chan struct{}),
	}
}

// Catalog exposes the shared layer catalog, e.g. for preloading layers
// before Start.
func (s *Server) Catalog() *Catalog { return s.catalog }

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Start opens the configured listeners and begins serving. It returns
// once listening (use Addr / HTTPAddr for the bound addresses); serving
// continues until Shutdown.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		hln, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("server: listen http %s: %w", s.cfg.HTTPAddr, err)
		}
		s.httpLn = hln
		s.httpSrv = &http.Server{Handler: s.httpHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// Serve returns ErrServerClosed on Shutdown; other errors
			// mean the listener died, which shutdown will surface by the
			// connection refusals that follow.
			_ = s.httpSrv.Serve(hln)
		}()
	}
	s.started = true
	s.wg.Add(1)
	go s.acceptLoop(ln)
	if s.dog.enabled() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dog.run(s.shutdown)
		}()
	}
	return nil
}

// Addr returns the bound wire-protocol address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// HTTPAddr returns the bound HTTP address (nil when HTTP is disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or a transient accept error;
			// either way, stop on closure and retry otherwise.
			select {
			case <-s.shutdown:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.metrics.ConnsAccepted.Add(1)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// writeTimeout resolves the per-write deadline for client-bound output;
// zero means unbounded (explicitly disabled with a negative config).
func (s *Server) writeTimeout() time.Duration {
	switch {
	case s.cfg.WriteTimeout > 0:
		return s.cfg.WriteTimeout
	case s.cfg.WriteTimeout < 0:
		return 0
	}
	return 30 * time.Second
}

func (s *Server) draining() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

// Shutdown gracefully stops the server: listeners close, idle sessions
// end, in-flight queries get DrainGrace to finish naturally and are then
// cancelled so their partial results flow back to clients (PartialError
// semantics), and all session goroutines are reaped. ctx bounds the
// whole wait; on expiry remaining connections are severed. Shutdown is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("server: not started")
	}
	select {
	case <-s.shutdown:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.shutdown)
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock sessions parked in Read: the past deadline fails pending
	// and future reads, while in-flight command execution and response
	// writes proceed.
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	httpSrv := s.httpSrv
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()

	if s.cfg.DrainGrace > 0 {
		t := time.NewTimer(s.cfg.DrainGrace)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	// Cancel what's still running: queries return their partial results,
	// sessions write them and exit.
	s.cancel()
	if httpSrv != nil {
		_ = httpSrv.Shutdown(ctx)
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// newEngine builds a per-session (or per-HTTP-request) command engine
// over the shared catalog with the server's default settings. With
// faults configured, the engine's testers carry the injector so query-
// path faults strike inside served commands.
func (s *Server) newEngine() *shellcmd.Engine {
	eng := &shellcmd.Engine{
		Store: s.catalog,
		Settings: shellcmd.Settings{
			Timeout:    s.cfg.DefaultTimeout,
			MaxTimeout: s.cfg.QueryTimeout,
			Budget:     s.cfg.DefaultBudget,
		},
		DataDir: s.cfg.DataDir,
		Live:    s.cfg.Ingest,
		Coord:   s.cfg.Coordinator,
	}
	if inj, every := s.cfg.Faults, s.cfg.SentinelEvery; inj != nil || every != 0 {
		eng.NewTester = func(mode string) (*core.Tester, error) {
			switch mode {
			case "", "hw":
				return core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold, SentinelEvery: every, Faults: inj}), nil
			case "sw":
				return core.NewTester(core.Config{DisableHardware: true, Faults: inj}), nil
			default:
				return nil, fmt.Errorf("mode must be sw or hw, got %q", mode)
			}
		}
	}
	return eng
}

// logCommand writes one structured access-log line. The log writer is
// shared by all sessions, so writes are serialized.
func (s *Server) logCommand(remote string, st query.Stats, status Status, dur time.Duration) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.cfg.AccessLog,
		"time=%s remote=%s op=%s status=%s dur=%s results=%d candidates=%d tests=%d hw_rejects=%d sw_fallbacks=%d panics=%d quarantined=%d\n",
		time.Now().UTC().Format(time.RFC3339Nano), remote, st.Op, status,
		dur.Round(time.Microsecond), st.Results, st.Candidates, st.Tests,
		st.HWRejects, st.SWFallbacks(), st.Panics, st.Quarantined)
}
