package server

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/store"
)

// Chaos soak harness: a live spatiald under randomized faults and
// concurrent clients, run as part of the ordinary test suite with a short
// default budget and stretchable for dedicated soaks:
//
//	go test -race ./internal/server/ -run Soak -soakdur 10s
//	go test ./internal/server/ -run Soak -faultseed 12345   # replay a run
//
// The harness asserts the degradation contract end to end:
//   - benign faults (delays, panics, disconnects) never change any
//     completed query's results — every "ok" join/select reports exactly
//     the unfaulted count;
//   - wrong-answer faults at the hardware filter are caught by the
//     sentinel, trip the per-layer-pair breaker, and still never change a
//     completed query's results;
//   - after shutdown no goroutine, admission slot, queue entry, or
//     watchdog registration leaks.
var (
	soakDur  = flag.Duration("soakdur", 2*time.Second, "wall-clock budget per soak phase")
	soakSeed = flag.Int64("faultseed", 0, "soak fault-injection seed (0 = derive from the clock; the chosen seed is logged)")
)

// soakTruth is the unfaulted ground truth the soak checks every completed
// response against.
type soakTruth struct {
	join   int
	sel    int
	selWKT string
}

// soakCmd is one command in a soak client's randomized mix: the count
// format extracts the result count from a completed response ("" skips
// the parity check) and want is the unfaulted ground truth.
type soakCmd struct {
	cmd   string
	count string
	want  int
}

func TestSoak(t *testing.T) {
	seed := *soakSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("soak: -soakdur=%v -faultseed=%d (rerun with these flags to reproduce)", *soakDur, seed)

	t.Run("BenignFaults", func(t *testing.T) {
		// Delays, quarantined panics, and wire disconnects — every fault
		// class the engine claims to absorb without changing answers.
		inj := faultinject.New(seed).
			Inject(faultinject.SiteIntersects, faultinject.KindDelay, 0.02).
			Inject(faultinject.SiteRenderDraw, faultinject.KindPanic, 0.005).
			Inject(faultinject.SiteServerRead, faultinject.KindDelay, 0.05).
			Inject(faultinject.SiteServerWrite, faultinject.KindDisconnect, 0.005).
			SetDelay(200 * time.Microsecond)
		s := runSoakPhase(t, seed, inj)
		if got := s.Metrics().SentinelDisagreements.Load(); got != 0 {
			t.Errorf("benign faults produced %d sentinel disagreements", got)
		}
		if got := s.Metrics().BreakerTrips.Load(); got != 0 {
			t.Errorf("benign faults tripped the breaker %d times", got)
		}
	})

	t.Run("WrongAnswerFaults", func(t *testing.T) {
		// The hardware filter lies on ~5% of verdicts. The sentinel (cadence
		// 1 in this server) must catch every flipped negative, trip the
		// breaker, and keep all completed counts exact.
		inj := faultinject.New(seed).
			Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 0.05).
			Inject(faultinject.SiteServerWrite, faultinject.KindDisconnect, 0.005)
		s := runSoakPhase(t, seed, inj)
		m := s.Metrics()
		// The assertions are statistical: a slow run (short budget, -race)
		// may complete so little hardware-filtered work that no injected
		// flip landed in the result-losing direction. Only insist the
		// sentinel caught something once enough faults demonstrably fired.
		if fired := inj.Fired(faultinject.SiteHWFilter, faultinject.KindWrongAnswer); fired < 10 {
			t.Logf("only %d wrong-answer faults fired; disagreement assertions would be vacuous", fired)
		} else {
			if m.SentinelChecks.Load() == 0 {
				t.Error("sentinel never ran")
			}
			if m.SentinelDisagreements.Load() == 0 {
				t.Errorf("sentinel caught no disagreements despite %d wrong-answer faults", fired)
			}
			if m.BreakerTrips.Load() == 0 {
				t.Error("breaker never tripped despite sentinel disagreements")
			}
		}
	})

	t.Run("CoordinatorFailover", func(t *testing.T) {
		// A replicated coordinator deployment under random replica kills
		// and restarts: with at least one routable replica per tile at all
		// times, every completed query must be exact and NO query may
		// degrade to a partial — and after shutdown nothing leaks.
		runCoordSoakPhase(t, seed)
	})
}

// runCoordSoakPhase runs the coordinator-mode soak: a 2-tile x 2-replica
// in-process fleet behind a coordinator front end, concurrent clients
// checking every completed count against single-node ground truth, and a
// chaos loop killing and restarting one replica at a time — waiting for
// the prober to readmit each restart before the next kill, so every tile
// always has a routable replica and the zero-partials invariant holds.
func runCoordSoakPhase(t *testing.T, seed int64) {
	baseline := runtime.NumGoroutine()
	const (
		tiles    = 2
		replicas = 2
		margin   = 2.0
		scale    = 0.01
		coordWKT = "POLYGON((10 10, 40 10, 40 40, 10 40, 10 10))"
	)
	dir := t.TempDir()
	da := data.MustLoad("LANDC", scale)
	db := data.MustLoad("LANDO", scale)
	opts := partition.Options{Tiles: tiles, Replicas: replicas, Margin: margin}
	if _, err := partition.Write(dir, "a", da, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Write(dir, "b", db, opts); err != nil {
		t.Fatal(err)
	}
	m, err := partition.Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// boot starts one shard over a replica directory, retrying the bind
	// briefly on restarts (the routing table pins each replica's address).
	boot := func(ti, ri int, addr string) (*Server, error) {
		var err error
		for i := 0; i < 200; i++ {
			srv := New(Config{
				Addr:          addr,
				DrainGrace:    20 * time.Millisecond,
				MaxConcurrent: 64,
				QueueWait:     2 * time.Second,
				MaxQueue:      256,
			})
			for _, layer := range []string{"a", "b"} {
				st, serr := store.Open(filepath.Join(dir, m.Tiles[ti].Replicas[ri].Dir, partition.SnapshotName(layer)), store.OpenOptions{})
				if serr != nil {
					return nil, serr
				}
				l, lerr := query.NewLayerFromSnapshot(st)
				if lerr != nil {
					return nil, lerr
				}
				if cerr := srv.Catalog().Set(layer, l); cerr != nil {
					return nil, cerr
				}
			}
			if err = srv.Start(); err == nil {
				return srv, nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil, err
	}
	servers := make([][]*Server, tiles)
	table := make([][]string, tiles)
	for ti := 0; ti < tiles; ti++ {
		for ri := 0; ri < replicas; ri++ {
			srv, err := boot(ti, ri, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			servers[ti] = append(servers[ti], srv)
			table[ti] = append(table[ti], srv.Addr().String())
		}
	}
	c, err := coord.New(coord.Config{
		Manifest:         m,
		ReplicaAddrs:     table,
		DialTimeout:      500 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		BreakerThreshold: 2,
		ProbeInterval:    20 * time.Millisecond,
		HedgeDelay:       25 * time.Millisecond,
		RecoveryWait:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := New(Config{
		Addr:            "127.0.0.1:0",
		MaxConcurrent:   4,
		QueueWait:       500 * time.Millisecond,
		MaxQueue:        8,
		QueryTimeout:    10 * time.Second,
		WatchdogTimeout: 20 * time.Second,
		DrainGrace:      50 * time.Millisecond,
		Coordinator:     c,
	})
	if err := front.Start(); err != nil {
		t.Fatal(err)
	}

	// Single-node ground truth over the unpartitioned layers.
	la, lb := query.NewLayer(da), query.NewLayer(db)
	truthCtx := context.Background()
	joinPairs, _, err := query.IntersectionJoinView(truthCtx, la.View(), lb.View(),
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}), query.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := geom.ParsePolygonWKT(coordWKT)
	if err != nil {
		t.Fatal(err)
	}
	selIDs, _, err := query.IntersectionSelectView(truthCtx, la.View(), q,
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}),
		query.SelectionOptions{InteriorLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	const withinD = 1.5 // inside the replication margin
	withinPairs, _, err := query.WithinDistanceJoinView(truthCtx, la.View(), lb.View(), withinD,
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}),
		query.DistanceFilterOptions{Use0Object: true, Use1Object: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(joinPairs) == 0 || len(selIDs) == 0 || len(withinPairs) == 0 {
		t.Fatalf("vacuous ground truth: join=%d select=%d within=%d", len(joinPairs), len(selIDs), len(withinPairs))
	}
	cmds := []soakCmd{
		{"join a b hw", "join: %d results", len(joinPairs)},
		{"join a b sw", "join: %d results", len(joinPairs)},
		{"pjoin a b", "join: %d results", len(joinPairs)}, // pjoin aliases join on a coordinator
		{fmt.Sprintf("select a %s", coordWKT), "select: %d results", len(selIDs)},
		{fmt.Sprintf("within a b %g", withinD), "within: %d results", len(withinPairs)},
		{"layers", "", 0},
		{"shards", "", 0},
	}

	// Chaos loop: kill one replica, let traffic hit the corpse, restart
	// it on the same address, wait for the prober to readmit it, repeat.
	// One victim at a time keeps >= 1 routable replica per tile — the
	// regime in which partials are forbidden.
	t0 := time.Now()
	t.Logf("chaos t0 = %s", t0.Format("15:04:05.000"))
	stamp := func() float64 { return float64(time.Since(t0).Microseconds()) / 1000 }
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	var kills atomic.Int64
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(seed ^ 0x6b6b))
		for {
			select {
			case <-stopChaos:
				return
			default:
			}
			ti, ri := rng.Intn(tiles), rng.Intn(replicas)
			t.Logf("%8.1fms chaos: killing %d/%d", stamp(), ti, ri)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := servers[ti][ri].Shutdown(ctx)
			cancel()
			if err != nil {
				t.Errorf("chaos kill %d/%d: %v", ti, ri, err)
				return
			}
			kills.Add(1)
			time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			srv, err := boot(ti, ri, table[ti][ri])
			if err != nil {
				t.Errorf("chaos restart %d/%d: %v", ti, ri, err)
				return
			}
			servers[ti][ri] = srv
			t.Logf("%8.1fms chaos: restarted %d/%d", stamp(), ti, ri)
			idx := ti*replicas + ri
			readmit := time.Now().Add(10 * time.Second)
			for time.Now().Before(readmit) {
				if c.Health()[idx].State != coord.BreakerOpen {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Logf("%8.1fms chaos: readmitted %d/%d (%s)", stamp(), ti, ri, c.Health()[idx].State)
		}
	}()
	stopMon := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		last := make([]string, tiles*replicas)
		for i := range last {
			last[i] = coord.BreakerClosed
		}
		for {
			select {
			case <-stopMon:
				return
			case <-time.After(time.Millisecond):
			}
			for i, h := range c.Health() {
				st := h.State
				if st == "" {
					st = coord.BreakerClosed
				}
				if st != last[i] {
					t.Logf("%8.1fms health: %d/%d %s -> %s consec=%d lastErr=%q", stamp(), h.Tile, h.Replica, last[i], st, h.ConsecFails, h.LastErr)
					last[i] = st
				}
			}
		}
	}()

	const clients = 6
	deadline := time.Now().Add(*soakDur)
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	var completed, redials atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			soakClient(front.Addr().String(), rand.New(rand.NewSource(seed+int64(i))), deadline, cmds, true, errs, &completed, &redials)
		}(i)
	}
	wg.Wait()
	close(stopChaos)
	<-chaosDone
	close(stopMon)
	<-monDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := completed.Load(); n == 0 {
		t.Error("coordinator soak completed zero queries")
	} else {
		tot := c.Totals()
		t.Logf("coordinator soak: %d queries completed, %d replica kills, %d redials, failover totals %+v",
			n, kills.Load(), redials.Load(), tot)
	}
	if kills.Load() == 0 {
		t.Error("chaos loop killed nothing; the soak proved nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := front.Shutdown(ctx); err != nil {
		t.Fatalf("front Shutdown: %v", err)
	}
	c.Close()
	for _, reps := range servers {
		for _, srv := range reps {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = srv.Shutdown(sctx)
			scancel()
		}
	}
	if got := front.lim.inFlight(); got != 0 {
		t.Errorf("admission slots leaked: inFlight=%d", got)
	}
	if got := front.lim.queued(); got != 0 {
		t.Errorf("queue entries leaked: queued=%d", got)
	}
	if got := front.dog.active(); got != 0 {
		t.Errorf("watchdog registrations leaked: active=%d", got)
	}
	waitGoroutines(t, baseline)
}

// runSoakPhase runs one soak phase to completion — server up, concurrent
// clients hammering it with a mixed workload until the budget elapses,
// server drained — asserting result parity throughout and zero leaks at
// the end. It returns the (stopped) server so phases can inspect metrics.
func runSoakPhase(t *testing.T, seed int64, inj *faultinject.Injector) *Server {
	baseline := runtime.NumGoroutine()
	s := New(Config{
		Addr:            "127.0.0.1:0",
		MaxConcurrent:   4,
		QueueWait:       500 * time.Millisecond,
		MaxQueue:        8,
		QueryTimeout:    10 * time.Second,
		WatchdogTimeout: 20 * time.Second,
		SentinelEvery:   1,
		Faults:          inj,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	truth := soakTruth{
		join:   directJoinCount(t, water, prism),
		selWKT: e2eQueryWKT,
	}
	truth.sel = directSelectCount(t, water)

	cmds := []soakCmd{
		{"join water prism hw", "join: %d results", truth.join},
		{"join water prism sw", "join: %d results", truth.join},
		{"pjoin water prism 2", "pjoin: %d results", truth.join},
		{fmt.Sprintf("select water %s", truth.selWKT), "select: %d results", truth.sel},
		{"layers", "", 0},
		{"stats water", "", 0},
	}
	const clients = 6
	deadline := time.Now().Add(*soakDur)
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	var completed, redials atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			soakClient(s.Addr().String(), rand.New(rand.NewSource(seed+int64(i))), deadline, cmds, false, errs, &completed, &redials)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := completed.Load(); n == 0 {
		t.Error("soak completed zero queries")
	} else {
		t.Logf("soak phase: %d queries completed, %d redials after injected disconnects", n, redials.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.lim.inFlight(); got != 0 {
		t.Errorf("admission slots leaked: inFlight=%d", got)
	}
	if got := s.lim.queued(); got != 0 {
		t.Errorf("queue entries leaked: queued=%d", got)
	}
	if got := s.dog.active(); got != 0 {
		t.Errorf("watchdog registrations leaked: active=%d", got)
	}
	waitGoroutines(t, baseline)
	return s
}

// directSelectCount computes the unfaulted selection ground truth over
// the soak query window, matching the shell's select options.
func directSelectCount(t *testing.T, l *query.Layer) int {
	t.Helper()
	q, err := geom.ParsePolygonWKT(e2eQueryWKT)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := query.IntersectionSelect(context.Background(), l, q,
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}),
		query.SelectionOptions{InteriorLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return len(ids)
}

// soakClient hammers the server with a randomized command mix until the
// deadline, checking every completed response against the ground truth.
// Injected disconnects are survived by redialing; overloads and shutdown
// errors are accepted outcomes. Partials are accepted too unless
// noPartial is set — the coordinator soak's invariant that a fleet with
// a routable replica per tile never degrades.
func soakClient(addr string, rng *rand.Rand, deadline time.Time, commands []soakCmd, noPartial bool, errs chan<- error, completed, redials *atomic.Int64) {
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf("[%s] "+format, append([]any{time.Now().Format("15:04:05.000")}, args...)...):
		default: // enough failures reported already
		}
	}
	var c *wireClient
	dial := func() bool {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			fail("soak dial: %v", err)
			return false
		}
		nc := &wireClient{conn: conn, r: bufio.NewReader(conn)}
		if _, err := nc.r.ReadString('\n'); err != nil {
			conn.Close()
			return false // server draining or injected accept fault; retry
		}
		c = nc
		return true
	}
	if !dial() {
		return
	}
	defer func() { c.conn.Close() }()

	for time.Now().Before(deadline) {
		pick := commands[rng.Intn(len(commands))]
		if err := c.send(pick.cmd); err != nil {
			c.conn.Close()
			redials.Add(1)
			if !dial() {
				return
			}
			continue
		}
		lines, status, err := c.readResponse()
		if err != nil {
			// Injected mid-response disconnect: reconnect and carry on.
			c.conn.Close()
			redials.Add(1)
			if !dial() {
				return
			}
			continue
		}
		switch {
		case status == "ok":
			if pick.count != "" {
				found := false
				for _, l := range lines {
					var n int
					if _, serr := fmt.Sscanf(l, pick.count, &n); serr == nil {
						found = true
						if n != pick.want {
							fail("soak parity: %q returned %d results, want %d (status %q)", pick.cmd, n, pick.want, status)
						}
						break
					}
				}
				if !found {
					fail("soak: %q ok response missing count line (lines %q)", pick.cmd, lines)
				}
			}
			completed.Add(1)
		case strings.HasPrefix(status, "partial:"):
			// Interrupted queries are a legitimate outcome on a single node;
			// their (partial) counts are not checked. In the coordinator soak
			// a partial means failover failed to cover a tile that had a live
			// replica — the invariant under test.
			if noPartial {
				fail("soak: %q degraded to %q with a routable replica per tile", pick.cmd, status)
			}
		case strings.HasPrefix(status, "error: overloaded"),
			strings.HasPrefix(status, "error: shutting down"):
			// Admission rejection under load, or the phase ending.
		case strings.HasPrefix(status, "error:"):
			fail("soak: %q -> unexpected %q", pick.cmd, status)
		default:
			fail("soak: %q -> unrecognized status %q", pick.cmd, status)
		}
	}
	_ = c.send("quit")
	_, _, _ = c.readResponse()
}
