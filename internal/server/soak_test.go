package server

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/query"
)

// Chaos soak harness: a live spatiald under randomized faults and
// concurrent clients, run as part of the ordinary test suite with a short
// default budget and stretchable for dedicated soaks:
//
//	go test -race ./internal/server/ -run Soak -soakdur 10s
//	go test ./internal/server/ -run Soak -faultseed 12345   # replay a run
//
// The harness asserts the degradation contract end to end:
//   - benign faults (delays, panics, disconnects) never change any
//     completed query's results — every "ok" join/select reports exactly
//     the unfaulted count;
//   - wrong-answer faults at the hardware filter are caught by the
//     sentinel, trip the per-layer-pair breaker, and still never change a
//     completed query's results;
//   - after shutdown no goroutine, admission slot, queue entry, or
//     watchdog registration leaks.
var (
	soakDur  = flag.Duration("soakdur", 2*time.Second, "wall-clock budget per soak phase")
	soakSeed = flag.Int64("faultseed", 0, "soak fault-injection seed (0 = derive from the clock; the chosen seed is logged)")
)

// soakTruth is the unfaulted ground truth the soak checks every completed
// response against.
type soakTruth struct {
	join   int
	sel    int
	selWKT string
}

func TestSoak(t *testing.T) {
	seed := *soakSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("soak: -soakdur=%v -faultseed=%d (rerun with these flags to reproduce)", *soakDur, seed)

	t.Run("BenignFaults", func(t *testing.T) {
		// Delays, quarantined panics, and wire disconnects — every fault
		// class the engine claims to absorb without changing answers.
		inj := faultinject.New(seed).
			Inject(faultinject.SiteIntersects, faultinject.KindDelay, 0.02).
			Inject(faultinject.SiteRenderDraw, faultinject.KindPanic, 0.005).
			Inject(faultinject.SiteServerRead, faultinject.KindDelay, 0.05).
			Inject(faultinject.SiteServerWrite, faultinject.KindDisconnect, 0.005).
			SetDelay(200 * time.Microsecond)
		s := runSoakPhase(t, seed, inj)
		if got := s.Metrics().SentinelDisagreements.Load(); got != 0 {
			t.Errorf("benign faults produced %d sentinel disagreements", got)
		}
		if got := s.Metrics().BreakerTrips.Load(); got != 0 {
			t.Errorf("benign faults tripped the breaker %d times", got)
		}
	})

	t.Run("WrongAnswerFaults", func(t *testing.T) {
		// The hardware filter lies on ~5% of verdicts. The sentinel (cadence
		// 1 in this server) must catch every flipped negative, trip the
		// breaker, and keep all completed counts exact.
		inj := faultinject.New(seed).
			Inject(faultinject.SiteHWFilter, faultinject.KindWrongAnswer, 0.05).
			Inject(faultinject.SiteServerWrite, faultinject.KindDisconnect, 0.005)
		s := runSoakPhase(t, seed, inj)
		m := s.Metrics()
		if m.SentinelChecks.Load() == 0 {
			t.Error("sentinel never ran")
		}
		if m.SentinelDisagreements.Load() == 0 {
			t.Error("sentinel caught no disagreements despite wrong-answer faults")
		}
		if m.BreakerTrips.Load() == 0 {
			t.Error("breaker never tripped despite sentinel disagreements")
		}
	})
}

// runSoakPhase runs one soak phase to completion — server up, concurrent
// clients hammering it with a mixed workload until the budget elapses,
// server drained — asserting result parity throughout and zero leaks at
// the end. It returns the (stopped) server so phases can inspect metrics.
func runSoakPhase(t *testing.T, seed int64, inj *faultinject.Injector) *Server {
	baseline := runtime.NumGoroutine()
	s := New(Config{
		Addr:            "127.0.0.1:0",
		MaxConcurrent:   4,
		QueueWait:       500 * time.Millisecond,
		MaxQueue:        8,
		QueryTimeout:    10 * time.Second,
		WatchdogTimeout: 20 * time.Second,
		SentinelEvery:   1,
		Faults:          inj,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	truth := soakTruth{
		join:   directJoinCount(t, water, prism),
		selWKT: e2eQueryWKT,
	}
	truth.sel = directSelectCount(t, water)

	const clients = 6
	deadline := time.Now().Add(*soakDur)
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	var completed, redials atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			soakClient(s.Addr().String(), rand.New(rand.NewSource(seed+int64(i))), deadline, truth, errs, &completed, &redials)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := completed.Load(); n == 0 {
		t.Error("soak completed zero queries")
	} else {
		t.Logf("soak phase: %d queries completed, %d redials after injected disconnects", n, redials.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.lim.inFlight(); got != 0 {
		t.Errorf("admission slots leaked: inFlight=%d", got)
	}
	if got := s.lim.queued(); got != 0 {
		t.Errorf("queue entries leaked: queued=%d", got)
	}
	if got := s.dog.active(); got != 0 {
		t.Errorf("watchdog registrations leaked: active=%d", got)
	}
	waitGoroutines(t, baseline)
	return s
}

// directSelectCount computes the unfaulted selection ground truth over
// the soak query window, matching the shell's select options.
func directSelectCount(t *testing.T, l *query.Layer) int {
	t.Helper()
	q, err := geom.ParsePolygonWKT(e2eQueryWKT)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := query.IntersectionSelect(context.Background(), l, q,
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}),
		query.SelectionOptions{InteriorLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return len(ids)
}

// soakClient hammers the server with a randomized command mix until the
// deadline, checking every completed response against the ground truth.
// Injected disconnects are survived by redialing; overloads, partials and
// shutdown errors are accepted outcomes.
func soakClient(addr string, rng *rand.Rand, deadline time.Time, truth soakTruth, errs chan<- error, completed, redials *atomic.Int64) {
	fail := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default: // enough failures reported already
		}
	}
	var c *wireClient
	dial := func() bool {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			fail("soak dial: %v", err)
			return false
		}
		nc := &wireClient{conn: conn, r: bufio.NewReader(conn)}
		if _, err := nc.r.ReadString('\n'); err != nil {
			conn.Close()
			return false // server draining or injected accept fault; retry
		}
		c = nc
		return true
	}
	if !dial() {
		return
	}
	defer func() { c.conn.Close() }()

	commands := []struct {
		cmd   string
		count string // Sscanf format extracting the result count; "" skips
		want  int
	}{
		{"join water prism hw", "join: %d results", truth.join},
		{"join water prism sw", "join: %d results", truth.join},
		{"pjoin water prism 2", "pjoin: %d results", truth.join},
		{fmt.Sprintf("select water %s", truth.selWKT), "select: %d results", truth.sel},
		{"layers", "", 0},
		{"stats water", "", 0},
	}
	for time.Now().Before(deadline) {
		pick := commands[rng.Intn(len(commands))]
		if err := c.send(pick.cmd); err != nil {
			c.conn.Close()
			redials.Add(1)
			if !dial() {
				return
			}
			continue
		}
		lines, status, err := c.readResponse()
		if err != nil {
			// Injected mid-response disconnect: reconnect and carry on.
			c.conn.Close()
			redials.Add(1)
			if !dial() {
				return
			}
			continue
		}
		switch {
		case status == "ok":
			if pick.count != "" {
				found := false
				for _, l := range lines {
					var n int
					if _, serr := fmt.Sscanf(l, pick.count, &n); serr == nil {
						found = true
						if n != pick.want {
							fail("soak parity: %q returned %d results, want %d (status %q)", pick.cmd, n, pick.want, status)
						}
						break
					}
				}
				if !found {
					fail("soak: %q ok response missing count line (lines %q)", pick.cmd, lines)
				}
			}
			completed.Add(1)
		case strings.HasPrefix(status, "partial:"):
			// Interrupted queries are a legitimate outcome; their (partial)
			// counts are not checked.
		case strings.HasPrefix(status, "error: overloaded"),
			strings.HasPrefix(status, "error: shutting down"):
			// Admission rejection under load, or the phase ending.
		case strings.HasPrefix(status, "error:"):
			fail("soak: %q -> unexpected %q", pick.cmd, status)
		default:
			fail("soak: %q -> unrecognized status %q", pick.cmd, status)
		}
	}
	_ = c.send("quit")
	_, _, _ = c.readResponse()
}
