package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/query"
)

// Status classifies how a command ended, for metrics and the access log.
type Status string

const (
	// StatusOK is a fully completed command.
	StatusOK Status = "ok"
	// StatusPartial is a query interrupted by timeout or shutdown drain:
	// its results were returned but are incomplete.
	StatusPartial Status = "partial"
	// StatusError is a hard failure (syntax, unknown layer, budget).
	StatusError Status = "error"
	// StatusOverload is a typed admission rejection; no query work ran.
	StatusOverload Status = "overload"
)

// Metrics aggregates the server's counters. All fields are atomics so
// sessions update them without shared locks; WritePrometheus renders the
// exposition-format snapshot served at /metrics.
type Metrics struct {
	start time.Time

	ConnsAccepted  atomic.Int64
	SessionsActive atomic.Int64
	HTTPRequests   atomic.Int64
	Commands       atomic.Int64

	QueriesOK      atomic.Int64
	QueriesPartial atomic.Int64
	QueriesError   atomic.Int64
	Overloads      atomic.Int64
	QueryNanos     atomic.Int64

	// Refinement counters summed from the uniform query.Stats records.
	Candidates  atomic.Int64
	Tests       atomic.Int64
	HWRejects   atomic.Int64
	SWFallbacks atomic.Int64
	Panics      atomic.Int64
	Quarantined atomic.Int64

	// Hot-path effectiveness counters (edge index and dirty-region clear).
	EdgeIndexHits         atomic.Int64
	EdgeIndexSkippedEdges atomic.Int64
	DirtyClearPixelsSaved atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// observe folds one finished command into the counters.
func (m *Metrics) observe(st query.Stats, status Status, dur time.Duration) {
	m.Commands.Add(1)
	switch status {
	case StatusOK:
		m.QueriesOK.Add(1)
	case StatusPartial:
		m.QueriesPartial.Add(1)
	case StatusError:
		m.QueriesError.Add(1)
	case StatusOverload:
		m.Overloads.Add(1)
	}
	m.QueryNanos.Add(int64(dur))
	m.Candidates.Add(int64(st.Candidates))
	m.Tests.Add(st.Tests)
	m.HWRejects.Add(st.HWRejects)
	m.SWFallbacks.Add(st.SWFallbacks())
	m.Panics.Add(st.Panics)
	m.Quarantined.Add(st.Quarantined)
	m.EdgeIndexHits.Add(st.EdgeIndexHits)
	m.EdgeIndexSkippedEdges.Add(st.EdgeIndexSkippedEdges)
	m.DirtyClearPixelsSaved.Add(st.DirtyClearPixelsSaved)
}

// WritePrometheus renders the counters in Prometheus exposition format.
// inFlight and layers are point-in-time gauges supplied by the server.
func (m *Metrics) WritePrometheus(w io.Writer, inFlight, layers int) {
	g := func(name string, v any) { fmt.Fprintf(w, "%s %v\n", name, v) }
	g("spatiald_uptime_seconds", int64(time.Since(m.start).Seconds()))
	g("spatiald_connections_accepted_total", m.ConnsAccepted.Load())
	g("spatiald_sessions_active", m.SessionsActive.Load())
	g("spatiald_http_requests_total", m.HTTPRequests.Load())
	g("spatiald_commands_total", m.Commands.Load())
	g(`spatiald_queries_total{status="ok"}`, m.QueriesOK.Load())
	g(`spatiald_queries_total{status="partial"}`, m.QueriesPartial.Load())
	g(`spatiald_queries_total{status="error"}`, m.QueriesError.Load())
	g(`spatiald_queries_total{status="overload"}`, m.Overloads.Load())
	g("spatiald_query_seconds_total", float64(m.QueryNanos.Load())/float64(time.Second))
	g("spatiald_queries_in_flight", inFlight)
	g("spatiald_catalog_layers", layers)
	g("spatiald_refine_candidates_total", m.Candidates.Load())
	g("spatiald_refine_tests_total", m.Tests.Load())
	g("spatiald_refine_hw_rejects_total", m.HWRejects.Load())
	g("spatiald_refine_sw_fallbacks_total", m.SWFallbacks.Load())
	g("spatiald_refine_panics_total", m.Panics.Load())
	g("spatiald_refine_quarantined_total", m.Quarantined.Load())
	g("spatiald_refine_edge_index_hits_total", m.EdgeIndexHits.Load())
	g("spatiald_refine_edge_index_skipped_edges_total", m.EdgeIndexSkippedEdges.Load())
	g("spatiald_refine_dirty_clear_pixels_saved_total", m.DirtyClearPixelsSaved.Load())
}
