package server

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/ingest"
	"repro/internal/query"
)

// Status classifies how a command ended, for metrics and the access log.
type Status string

const (
	// StatusOK is a fully completed command.
	StatusOK Status = "ok"
	// StatusPartial is a query interrupted by timeout or shutdown drain:
	// its results were returned but are incomplete.
	StatusPartial Status = "partial"
	// StatusError is a hard failure (syntax, unknown layer, budget).
	StatusError Status = "error"
	// StatusOverload is a typed admission rejection; no query work ran.
	StatusOverload Status = "overload"
)

// Metrics aggregates the server's counters. All fields are atomics so
// sessions update them without shared locks; WritePrometheus renders the
// exposition-format snapshot served at /metrics.
type Metrics struct {
	start time.Time

	ConnsAccepted  atomic.Int64
	SessionsActive atomic.Int64
	HTTPRequests   atomic.Int64
	Commands       atomic.Int64

	QueriesOK      atomic.Int64
	QueriesPartial atomic.Int64
	QueriesError   atomic.Int64
	Overloads      atomic.Int64
	QueryNanos     atomic.Int64

	// Refinement counters summed from the uniform query.Stats records.
	Candidates  atomic.Int64
	Tests       atomic.Int64
	HWRejects   atomic.Int64
	SWFallbacks atomic.Int64
	Panics      atomic.Int64
	Quarantined atomic.Int64

	// Hot-path effectiveness counters (edge index, dirty-region clear, and
	// the persisted raster-signature filter).
	EdgeIndexHits         atomic.Int64
	EdgeIndexSkippedEdges atomic.Int64
	DirtyClearPixelsSaved atomic.Int64
	SigChecks             atomic.Int64
	SigRejects            atomic.Int64

	// Interval-approximation (v2) filter counters: pair tests where both
	// sides carried span lists and the three-valued verdict breakdown.
	IntervalChecks       atomic.Int64
	IntervalTrueHits     atomic.Int64
	IntervalRejects      atomic.Int64
	IntervalInconclusive atomic.Int64

	// Snapshot warm-start counters: loads observed, bytes mapped or
	// copied, mmap-path loads, and cumulative load wall-clock.
	SnapshotLoads  atomic.Int64
	SnapshotBytes  atomic.Int64
	SnapshotMMaps  atomic.Int64
	SnapshotLoadNS atomic.Int64

	// Degradation and self-verification counters: sentinel re-checks of
	// hardware-filter negatives, circuit-breaker state changes, pairs
	// routed around an open breaker, and deadline-governed partials.
	SentinelChecks        atomic.Int64
	SentinelDisagreements atomic.Int64
	BreakerTrips          atomic.Int64
	BreakerRecoveries     atomic.Int64
	BreakerOpenSkips      atomic.Int64
	DeadlineExpirations   atomic.Int64

	// Live-view composition counters: uncompacted delta objects and
	// tombstones carried by the views that served queries.
	LiveDelta      atomic.Int64
	LiveTombstones atomic.Int64

	// Staged-pipeline and streaming-delivery counters: batches through
	// the join pipeline, cumulative filter/refine stage time, the largest
	// queue depth any single run observed, and result rows streamed to
	// clients as they were produced.
	PipelineBatches       atomic.Int64
	PipelineFilterNS      atomic.Int64
	PipelineRefineNS      atomic.Int64
	PipelineQueueDepthMax atomic.Int64
	StreamRowsEmitted     atomic.Int64
}

// Gauges carries the point-in-time values the server samples alongside
// the Metrics counters when rendering /metrics: the limiter's admission
// snapshot, catalog size, the watchdog's registry, and — when live
// ingestion is enabled — the ingest manager's durability totals.
type Gauges struct {
	Admission       AdmissionStats
	Layers          int
	WatchdogActive  int
	WatchdogCancels int64
	Ingest          *ingest.Totals
	// Shards is the coordinator's per-replica health snapshot (nil on a
	// plain data node); Failover the coordinator's retry/hedge/probe
	// totals.
	Shards   []coord.Health
	Failover *coord.Totals
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// observe folds one finished command into the counters.
func (m *Metrics) observe(st query.Stats, status Status, dur time.Duration) {
	m.Commands.Add(1)
	switch status {
	case StatusOK:
		m.QueriesOK.Add(1)
	case StatusPartial:
		m.QueriesPartial.Add(1)
	case StatusError:
		m.QueriesError.Add(1)
	case StatusOverload:
		m.Overloads.Add(1)
	}
	m.QueryNanos.Add(int64(dur))
	m.Candidates.Add(int64(st.Candidates))
	m.Tests.Add(st.Tests)
	m.HWRejects.Add(st.HWRejects)
	m.SWFallbacks.Add(st.SWFallbacks())
	m.Panics.Add(st.Panics)
	m.Quarantined.Add(st.Quarantined)
	m.EdgeIndexHits.Add(st.EdgeIndexHits)
	m.EdgeIndexSkippedEdges.Add(st.EdgeIndexSkippedEdges)
	m.DirtyClearPixelsSaved.Add(st.DirtyClearPixelsSaved)
	m.SigChecks.Add(st.SigChecks)
	m.SigRejects.Add(st.SigRejects)
	m.IntervalChecks.Add(st.IntervalChecks)
	m.IntervalTrueHits.Add(st.IntervalTrueHits)
	m.IntervalRejects.Add(st.IntervalRejects)
	m.IntervalInconclusive.Add(st.IntervalInconclusive)
	if st.SnapshotBytes > 0 {
		m.SnapshotLoads.Add(1)
		m.SnapshotBytes.Add(st.SnapshotBytes)
		if st.SnapshotMMap {
			m.SnapshotMMaps.Add(1)
		}
		m.SnapshotLoadNS.Add(int64(st.SnapshotLoadMS * float64(time.Millisecond)))
	}
	m.LiveDelta.Add(int64(st.LiveDelta))
	m.LiveTombstones.Add(int64(st.LiveTombstones))
	m.SentinelChecks.Add(st.SentinelChecks)
	m.SentinelDisagreements.Add(st.SentinelDisagreements)
	m.BreakerTrips.Add(st.BreakerTrips)
	m.BreakerRecoveries.Add(st.BreakerRecoveries)
	m.BreakerOpenSkips.Add(st.BreakerOpenSkips)
	m.PipelineBatches.Add(st.PipelineBatches)
	m.PipelineFilterNS.Add(st.PipelineFilterNS)
	m.PipelineRefineNS.Add(st.PipelineRefineNS)
	m.StreamRowsEmitted.Add(st.StreamRowsEmitted)
	for {
		cur := m.PipelineQueueDepthMax.Load()
		if st.PipelineQueueDepth <= cur || m.PipelineQueueDepthMax.CompareAndSwap(cur, st.PipelineQueueDepth) {
			break
		}
	}
}

// observeFailure classifies an interrupted command's error chain into the
// degradation counters. Watchdog kills are counted at the watchdog itself;
// here only deadline-governance expiries are folded in.
func (m *Metrics) observeFailure(err error) {
	if err == nil {
		return
	}
	var de *query.DeadlineError
	if errors.As(err, &de) {
		m.DeadlineExpirations.Add(1)
	}
}

// WritePrometheus renders the counters in Prometheus exposition format.
// gauges carries the point-in-time values sampled by the server.
func (m *Metrics) WritePrometheus(w io.Writer, gauges Gauges) {
	g := func(name string, v any) { fmt.Fprintf(w, "%s %v\n", name, v) }
	g("spatiald_uptime_seconds", int64(time.Since(m.start).Seconds()))
	g("spatiald_connections_accepted_total", m.ConnsAccepted.Load())
	g("spatiald_sessions_active", m.SessionsActive.Load())
	g("spatiald_http_requests_total", m.HTTPRequests.Load())
	g("spatiald_commands_total", m.Commands.Load())
	g(`spatiald_queries_total{status="ok"}`, m.QueriesOK.Load())
	g(`spatiald_queries_total{status="partial"}`, m.QueriesPartial.Load())
	g(`spatiald_queries_total{status="error"}`, m.QueriesError.Load())
	g(`spatiald_queries_total{status="overload"}`, m.Overloads.Load())
	g("spatiald_query_seconds_total", float64(m.QueryNanos.Load())/float64(time.Second))
	g("spatiald_queries_in_flight", gauges.Admission.InFlight)
	g("spatiald_admission_queued", gauges.Admission.Queued)
	g("spatiald_admission_admitted_total", gauges.Admission.Admitted)
	g("spatiald_admission_shed_total", gauges.Admission.Shed)
	g("spatiald_admission_timeouts_total", gauges.Admission.Timeouts)
	g("spatiald_admission_wait_seconds_total", float64(gauges.Admission.WaitNanos)/float64(time.Second))
	g("spatiald_watchdog_active", gauges.WatchdogActive)
	g("spatiald_watchdog_cancels_total", gauges.WatchdogCancels)
	g("spatiald_deadline_expirations_total", m.DeadlineExpirations.Load())
	g("spatiald_catalog_layers", gauges.Layers)
	g("spatiald_refine_candidates_total", m.Candidates.Load())
	g("spatiald_refine_tests_total", m.Tests.Load())
	g("spatiald_refine_hw_rejects_total", m.HWRejects.Load())
	g("spatiald_refine_sw_fallbacks_total", m.SWFallbacks.Load())
	g("spatiald_refine_panics_total", m.Panics.Load())
	g("spatiald_refine_quarantined_total", m.Quarantined.Load())
	g("spatiald_refine_edge_index_hits_total", m.EdgeIndexHits.Load())
	g("spatiald_refine_edge_index_skipped_edges_total", m.EdgeIndexSkippedEdges.Load())
	g("spatiald_refine_dirty_clear_pixels_saved_total", m.DirtyClearPixelsSaved.Load())
	g("spatiald_refine_sig_checks_total", m.SigChecks.Load())
	g("spatiald_refine_sig_rejects_total", m.SigRejects.Load())
	g("spatiald_refine_interval_checks_total", m.IntervalChecks.Load())
	g("spatiald_refine_interval_true_hits_total", m.IntervalTrueHits.Load())
	g("spatiald_refine_interval_rejects_total", m.IntervalRejects.Load())
	g("spatiald_refine_interval_inconclusive_total", m.IntervalInconclusive.Load())
	g("spatiald_snapshot_loads_total", m.SnapshotLoads.Load())
	g("spatiald_snapshot_bytes_total", m.SnapshotBytes.Load())
	g("spatiald_snapshot_mmap_loads_total", m.SnapshotMMaps.Load())
	g("spatiald_snapshot_load_seconds_total", float64(m.SnapshotLoadNS.Load())/float64(time.Second))
	g("spatiald_sentinel_checks_total", m.SentinelChecks.Load())
	g("spatiald_sentinel_disagreements_total", m.SentinelDisagreements.Load())
	g("spatiald_breaker_trips_total", m.BreakerTrips.Load())
	g("spatiald_breaker_recoveries_total", m.BreakerRecoveries.Load())
	g("spatiald_breaker_open_skips_total", m.BreakerOpenSkips.Load())
	g("spatiald_live_delta_objects_total", m.LiveDelta.Load())
	g("spatiald_live_tombstones_total", m.LiveTombstones.Load())
	g("spatiald_pipeline_batches_total", m.PipelineBatches.Load())
	g("spatiald_pipeline_filter_seconds_total", float64(m.PipelineFilterNS.Load())/float64(time.Second))
	g("spatiald_pipeline_refine_seconds_total", float64(m.PipelineRefineNS.Load())/float64(time.Second))
	g("spatiald_pipeline_queue_depth_max", m.PipelineQueueDepthMax.Load())
	g("spatiald_stream_rows_emitted_total", m.StreamRowsEmitted.Load())
	for _, h := range gauges.Shards {
		up := 1
		if h.Open {
			up = 0
		}
		// Breaker state as a numeric gauge: 0 closed, 1 half-open, 2 open.
		state := 0
		switch h.State {
		case coord.BreakerHalfOpen:
			state = 1
		case coord.BreakerOpen:
			state = 2
		}
		lbl := fmt.Sprintf("tile=\"%d\",replica=\"%d\"", h.Tile, h.Replica)
		fmt.Fprintf(w, "spatiald_shard_up{%s,role=%q,addr=%q} %d\n", lbl, h.Role, h.Addr, up)
		fmt.Fprintf(w, "spatiald_shard_breaker_state{%s} %d\n", lbl, state)
		fmt.Fprintf(w, "spatiald_shard_consecutive_failures{%s} %d\n", lbl, h.ConsecFails)
		fmt.Fprintf(w, "spatiald_shard_queries_total{%s} %d\n", lbl, h.Queries)
		fmt.Fprintf(w, "spatiald_shard_failures_total{%s} %d\n", lbl, h.Fails)
		fmt.Fprintf(w, "spatiald_shard_idle_connections{%s} %d\n", lbl, h.IdleConn)
	}
	if t := gauges.Failover; t != nil {
		g("spatiald_failover_retries_total", t.Retries)
		g("spatiald_failover_hedges_total", t.Hedges)
		g("spatiald_failover_hedges_won_total", t.HedgesWon)
		g("spatiald_probe_checks_total", t.Probes)
		g("spatiald_probe_failures_total", t.ProbeFails)
	}
	if t := gauges.Ingest; t != nil {
		g("spatiald_ingest_tables", t.Tables)
		g("spatiald_ingest_objects", t.Objects)
		g("spatiald_ingest_pending", t.Pending)
		g("spatiald_ingest_inserts_total", t.Inserts)
		g("spatiald_ingest_deletes_total", t.Deletes)
		g("spatiald_ingest_not_found_total", t.NotFound)
		g("spatiald_wal_appends_total", t.WALAppends)
		g("spatiald_wal_batches_total", t.WALBatches)
		g("spatiald_wal_bytes_total", t.WALBytes)
		g("spatiald_wal_rotations_total", t.WALRotations)
		g("spatiald_wal_segments", t.WALSegments)
		g("spatiald_wal_truncated_segments_total", t.WALTruncated)
		g("spatiald_wal_recovered_records_total", t.WALRecovered)
		g("spatiald_wal_torn_bytes_total", t.WALTornBytes)
		g("spatiald_compaction_runs_total", t.Compactions)
		g("spatiald_compaction_seconds_total", t.CompactMS/1e3)
		g("spatiald_compaction_folded_total", t.CompactedFolded)
	}
}
