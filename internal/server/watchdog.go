package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StuckQueryError is the cancellation cause a watchdog installs when it
// kills a query that exceeded the stuck threshold — typically a query
// stalled by injected delays, a pathological geometry, or a session whose
// client vanished without closing. It unwraps to context.Canceled so the
// query winds down through the ordinary partial-result path.
type StuckQueryError struct {
	Op  string        // the command verb that stalled
	Age time.Duration // how long it had been running when killed
}

func (e *StuckQueryError) Error() string {
	return fmt.Sprintf("server: watchdog cancelled stuck %s query after %v", e.Op, e.Age)
}

func (e *StuckQueryError) Unwrap() error { return context.Canceled }

// watchdog tracks in-flight queries and cancels any that run longer than
// the stuck threshold. It is the backstop *behind* deadline governance:
// deadlines bound well-behaved queries cooperatively, while the watchdog
// reaps queries whose deadline was unset or whose wind-down itself
// stalled, and guarantees their admission slots are returned. A killed
// query that still has not wound down a grace period later is severed
// (its registered sever hook — closing the client connection — runs):
// cancellation cannot unblock a query pinned in conn.Write, but closing
// the connection can, so a stalled client cannot hold a slot
// indefinitely even with write deadlines disabled.
type watchdog struct {
	timeout time.Duration

	mu      sync.Mutex
	seq     int64
	running map[int64]*watchedQuery

	cancels atomic.Int64
}

type watchedQuery struct {
	op       string
	started  time.Time
	cancel   context.CancelCauseFunc
	sever    func()    // optional escalation: sever the client connection
	killedAt time.Time // zero until the cancel is delivered; sever is next
}

// newWatchdog builds a watchdog with the given stuck threshold; zero or
// negative disables it (register becomes a cheap no-op pair).
func newWatchdog(timeout time.Duration) *watchdog {
	return &watchdog{timeout: timeout, running: map[int64]*watchedQuery{}}
}

func (w *watchdog) enabled() bool { return w != nil && w.timeout > 0 }

// register tracks one starting query; the returned id must be handed back
// to deregister when the query completes (normally or not). sever, when
// non-nil, is the escalation hook scan runs if the query is still
// registered a grace period after its kill (see scan); nil skips the
// escalation (HTTP handlers, whose writes carry their own deadlines).
func (w *watchdog) register(op string, cancel context.CancelCauseFunc, sever func()) int64 {
	if !w.enabled() {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.running[w.seq] = &watchedQuery{op: op, started: time.Now(), cancel: cancel, sever: sever}
	return w.seq
}

func (w *watchdog) deregister(id int64) {
	if !w.enabled() || id == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.running, id)
}

// scan cancels every tracked query older than the threshold, reporting
// how many it killed. Cancellation is by cause: the query observes a
// *StuckQueryError and returns partial results; its deferred release and
// deregister run as usual, so no slot can leak. A query the cancel did
// not dislodge — still registered a grace period after its kill, meaning
// it is pinned somewhere cancellation cannot reach, like a conn.Write to
// a client that stopped reading — is severed through its escalation
// hook, which fails the blocked write and lets the session unwind. The
// grace is the threshold floored at a second, so an ordinary kill's
// wind-down (cancel → partial results → status line) always has room to
// finish naturally first.
func (w *watchdog) scan(now time.Time) int {
	if !w.enabled() {
		return 0
	}
	grace := max(w.timeout, time.Second)
	w.mu.Lock()
	var overdue, pinned []*watchedQuery
	for id, q := range w.running {
		switch {
		case q.killedAt.IsZero() && now.Sub(q.started) > w.timeout:
			q.killedAt = now // one kill per query
			overdue = append(overdue, q)
		case !q.killedAt.IsZero() && now.Sub(q.killedAt) > grace && q.sever != nil:
			pinned = append(pinned, q)
			delete(w.running, id) // one sever per query; deregister tolerates the double delete
		}
	}
	w.mu.Unlock()
	for _, q := range overdue {
		q.cancel(&StuckQueryError{Op: q.op, Age: now.Sub(q.started)})
		w.cancels.Add(1)
	}
	for _, q := range pinned {
		q.sever()
	}
	return len(overdue)
}

// active reports the tracked in-flight query count.
func (w *watchdog) active() int {
	if !w.enabled() {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.running)
}

// cancelCount reports the total queries the watchdog has killed.
func (w *watchdog) cancelCount() int64 {
	if w == nil {
		return 0
	}
	return w.cancels.Load()
}

// run ticks the watchdog until stop closes. The scan interval is a
// quarter of the threshold (floored at a millisecond), bounding detection
// latency to ~1.25× the threshold.
func (w *watchdog) run(stop <-chan struct{}) {
	interval := w.timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			w.scan(now)
		case <-stop:
			return
		}
	}
}
