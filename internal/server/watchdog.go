package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StuckQueryError is the cancellation cause a watchdog installs when it
// kills a query that exceeded the stuck threshold — typically a query
// stalled by injected delays, a pathological geometry, or a session whose
// client vanished without closing. It unwraps to context.Canceled so the
// query winds down through the ordinary partial-result path.
type StuckQueryError struct {
	Op  string        // the command verb that stalled
	Age time.Duration // how long it had been running when killed
}

func (e *StuckQueryError) Error() string {
	return fmt.Sprintf("server: watchdog cancelled stuck %s query after %v", e.Op, e.Age)
}

func (e *StuckQueryError) Unwrap() error { return context.Canceled }

// watchdog tracks in-flight queries and cancels any that run longer than
// the stuck threshold. It is the backstop *behind* deadline governance:
// deadlines bound well-behaved queries cooperatively, while the watchdog
// reaps queries whose deadline was unset or whose wind-down itself
// stalled, and guarantees their admission slots are returned.
type watchdog struct {
	timeout time.Duration

	mu      sync.Mutex
	seq     int64
	running map[int64]*watchedQuery

	cancels atomic.Int64
}

type watchedQuery struct {
	op      string
	started time.Time
	cancel  context.CancelCauseFunc
}

// newWatchdog builds a watchdog with the given stuck threshold; zero or
// negative disables it (register becomes a cheap no-op pair).
func newWatchdog(timeout time.Duration) *watchdog {
	return &watchdog{timeout: timeout, running: map[int64]*watchedQuery{}}
}

func (w *watchdog) enabled() bool { return w != nil && w.timeout > 0 }

// register tracks one starting query; the returned id must be handed back
// to deregister when the query completes (normally or not).
func (w *watchdog) register(op string, cancel context.CancelCauseFunc) int64 {
	if !w.enabled() {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.running[w.seq] = &watchedQuery{op: op, started: time.Now(), cancel: cancel}
	return w.seq
}

func (w *watchdog) deregister(id int64) {
	if !w.enabled() || id == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.running, id)
}

// scan cancels every tracked query older than the threshold, reporting
// how many it killed. Cancellation is by cause: the query observes a
// *StuckQueryError and returns partial results; its deferred release and
// deregister run as usual, so no slot can leak.
func (w *watchdog) scan(now time.Time) int {
	if !w.enabled() {
		return 0
	}
	w.mu.Lock()
	var overdue []*watchedQuery
	for id, q := range w.running {
		if now.Sub(q.started) > w.timeout {
			overdue = append(overdue, q)
			delete(w.running, id) // one kill per query; deregister tolerates the double delete
		}
	}
	w.mu.Unlock()
	for _, q := range overdue {
		q.cancel(&StuckQueryError{Op: q.op, Age: now.Sub(q.started)})
		w.cancels.Add(1)
	}
	return len(overdue)
}

// active reports the tracked in-flight query count.
func (w *watchdog) active() int {
	if !w.enabled() {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.running)
}

// cancelCount reports the total queries the watchdog has killed.
func (w *watchdog) cancelCount() int64 {
	if w == nil {
		return 0
	}
	return w.cancels.Load()
}

// run ticks the watchdog until stop closes. The scan interval is a
// quarter of the threshold (floored at a millisecond), bounding detection
// latency to ~1.25× the threshold.
func (w *watchdog) run(stop <-chan struct{}) {
	interval := w.timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			w.scan(now)
		case <-stop:
			return
		}
	}
}
