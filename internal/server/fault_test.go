package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/query"
)

// preload binds the standard test layers directly into the catalog so
// fault tests can assert its integrity afterwards.
func preload(t *testing.T, s *Server) (water, prism *query.Layer) {
	t.Helper()
	water = testLayer(t, "WATER", e2eScale)
	prism = testLayer(t, "PRISM", e2eScale)
	if err := s.Catalog().Set("water", water); err != nil {
		t.Fatal(err)
	}
	if err := s.Catalog().Set("prism", prism); err != nil {
		t.Fatal(err)
	}
	return water, prism
}

// checkCatalogIntact verifies the shared catalog still serves exactly the
// layers published before the faults, and that a direct join over them
// still computes the correct result — the "no corruption" bar.
func checkCatalogIntact(t *testing.T, s *Server, water, prism *query.Layer, wantJoin int) {
	t.Helper()
	if got, ok := s.Catalog().Get("water"); !ok || got != water {
		t.Errorf("catalog lost or swapped layer water (ok=%v)", ok)
	}
	if got, ok := s.Catalog().Get("prism"); !ok || got != prism {
		t.Errorf("catalog lost or swapped layer prism (ok=%v)", ok)
	}
	a, _ := s.Catalog().Get("water")
	b, _ := s.Catalog().Get("prism")
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoin(context.Background(), a.(*query.Layer), b.(*query.Layer), tester)
	if err != nil || len(pairs) != wantJoin {
		t.Errorf("join over post-fault catalog = %d results, err %v; want %d",
			len(pairs), err, wantJoin)
	}
}

func directJoinCount(t *testing.T, a, b *query.Layer) int {
	t.Helper()
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoin(context.Background(), a, b, tester)
	if err != nil {
		t.Fatal(err)
	}
	return len(pairs)
}

// TestFaultAcceptPanicContained arms a panic at the accept site: every
// session dies before greeting its client, yet the server keeps
// accepting, the catalog is untouched, and no goroutine leaks.
func TestFaultAcceptPanicContained(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(1).Inject(faultinject.SiteServerAccept, faultinject.KindPanic, 1)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	for i := 0; i < 3; i++ {
		conn, err := net.DialTimeout("tcp", s.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		// The injected panic kills the session before the greeting; the
		// contained failure surfaces to the client as a clean close.
		buf := make([]byte, 64)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if n, err := conn.Read(buf); err == nil {
			t.Errorf("dial %d: read %q, want connection closed", i, buf[:n])
		}
		conn.Close()
	}
	if got := inj.Fired(faultinject.SiteServerAccept, faultinject.KindPanic); got != 3 {
		t.Errorf("accept panics fired = %d, want 3", got)
	}
	waitFor(t, "panicked sessions to unwind", func() bool {
		return s.Metrics().SessionsActive.Load() == 0
	})
	if got := s.Metrics().ConnsAccepted.Load(); got != 3 {
		t.Errorf("ConnsAccepted = %d, want 3 (accept loop must survive session panics)", got)
	}
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestFaultQueryPanicContained arms a panic inside the refinement tester:
// a serial join served to one session blows up mid-query. The session
// dies (panic containment is per-connection), but the server, the other
// sessions' view of the catalog, and non-refinement commands all survive.
func TestFaultQueryPanicContained(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(1).Inject(faultinject.SiteIntersects, faultinject.KindPanic, 1)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	c := dialWire(t, s.Addr().String())
	if err := c.send("join water prism hw"); err != nil {
		t.Fatal(err)
	}
	// The panic escapes Exec and is contained by the session's recover:
	// the connection closes with no status line.
	if lines, status, err := c.readResponse(); err == nil {
		t.Errorf("panicked join returned status %q lines %q, want closed connection", status, lines)
	}
	waitFor(t, "panicked session to unwind", func() bool {
		return s.Metrics().SessionsActive.Load() == 0
	})

	// A fresh session still works for commands off the faulted path, and
	// admission slots were not leaked by the dead session.
	if got := s.lim.inFlight(); got != 0 {
		t.Errorf("in-flight slots after session panic = %d, want 0", got)
	}
	c2 := dialWire(t, s.Addr().String())
	lines := c2.mustOK(t, "layers")
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "water") || !strings.Contains(joined, "prism") {
		t.Errorf("layers after panic = %q", lines)
	}
	c2.mustOK(t, fmt.Sprintf("knn water %s 3", e2eQueryWKT))
	// pjoin survives the same injected faults end to end: its workers
	// quarantine panicking tests and retry on the software path.
	plines := c2.mustOK(t, "pjoin water prism 2")
	if got := countFrom(t, plines, "pjoin: %d results"); got != wantJoin {
		t.Errorf("pjoin under panic faults = %d results, want %d", got, wantJoin)
	}
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestFaultMidResponseDisconnect arms disconnects at the write site: the
// server severs the connection partway through a response. The client
// observes a truncated exchange, never a malformed frame, and the server
// carries on.
func TestFaultMidResponseDisconnect(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(1).Inject(faultinject.SiteServerWrite, faultinject.KindDisconnect, 1)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	// With every write faulted, the session dies on its greeting.
	conn, err := net.DialTimeout("tcp", s.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := conn.Read(buf); err == nil {
		t.Errorf("read %q from write-faulted session, want disconnect", buf[:n])
	}
	conn.Close()
	if inj.Fired(faultinject.SiteServerWrite, faultinject.KindDisconnect) == 0 {
		t.Error("no disconnect fault fired")
	}
	waitFor(t, "disconnected session to unwind", func() bool {
		return s.Metrics().SessionsActive.Load() == 0
	})
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestFaultSlowClient arms delays at the read site (a slow client holding
// its session open). Commands still execute correctly — slowness is not
// an error — and the session's pace cannot starve a concurrent fast
// client, because admission is only held during refinement.
func TestFaultSlowClient(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(1).
		Inject(faultinject.SiteServerRead, faultinject.KindDelay, 1).
		SetDelay(10 * time.Millisecond)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj, MaxConcurrent: 2})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	slow := dialWire(t, s.Addr().String())
	fast := dialWire(t, s.Addr().String())
	lines := slow.mustOK(t, "join water prism hw")
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("slow client join = %d, want %d", got, wantJoin)
	}
	lines = fast.mustOK(t, "join water prism sw")
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("fast client join = %d, want %d", got, wantJoin)
	}
	if inj.Fired(faultinject.SiteServerRead, faultinject.KindDelay) == 0 {
		t.Error("no read delay fired")
	}
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}
