package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/shellcmd"
)

// Wire protocol: on connect the server sends one greeting line
// ("spatiald ready"). The client then sends one command per line in the
// shellcmd grammar; the server answers with zero or more data lines —
// byte-identical to what the spatialdb shell would print — followed by
// exactly one status line:
//
//	ok                   command completed
//	partial: <reason>    query interrupted; data lines above are valid but incomplete
//	error: <reason>      hard failure (syntax, unknown layer, budget, overload); no results
//
// No data line ever begins with "ok", "partial:" or "error:", so clients
// frame responses by scanning for those prefixes. "quit" (or "exit")
// answers "ok" and closes the connection.

// serveConn runs one TCP session. Any panic — an injected accept-site
// fault or a session-handler bug — is contained here: the connection
// closes, shared state (catalog, limiter, metrics) is untouched beyond
// already-completed commands, and no goroutine leaks.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.metrics.SessionsActive.Add(1)
	defer func() {
		_ = recover()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.metrics.SessionsActive.Add(-1)
	}()
	if inj := s.cfg.Faults; inj != nil {
		inj.Apply(faultinject.SiteServerAccept)
	}

	eng := s.newEngine()
	w := bufio.NewWriter(conn)
	if s.send(conn, w, "spatiald ready") != nil {
		return
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	for {
		if s.draining() {
			_ = s.send(conn, w, "error: shutting down")
			return
		}
		if inj := s.cfg.Faults; inj != nil && inj.Disconnect(faultinject.SiteServerRead) {
			return
		}
		if !sc.Scan() {
			return // EOF, read error, or shutdown deadline
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			_ = s.send(conn, w, "ok")
			return
		}
		if !s.runCommand(eng, conn, w, line) {
			return
		}
	}
}

// runCommand executes one wire command end to end: admission control for
// query verbs, execution against the shared catalog, metrics and access
// logging, and the framed response. It reports whether the session can
// continue (false on write failure or injected disconnect).
func (s *Server) runCommand(eng *shellcmd.Engine, conn net.Conn, w *bufio.Writer, line string) bool {
	start := time.Now()
	remote := conn.RemoteAddr().String()
	verb := shellcmd.Verb(line)
	if verb == "" || strings.HasPrefix(verb, "#") {
		return s.send(conn, w, "ok") == nil
	}

	acquired := false
	if shellcmd.IsQuery(verb) {
		if err := s.lim.acquire(s.baseCtx); err != nil {
			st := query.Stats{Op: verb}
			status := StatusError
			msg := "error: shutting down"
			var oe *OverloadError
			if errors.As(err, &oe) {
				status = StatusOverload
				msg = "error: " + oe.Error()
			}
			s.metrics.observe(st, status, time.Since(start))
			s.logCommand(remote, st, status, time.Since(start))
			return s.send(conn, w, msg) == nil
		}
		acquired = true
	}
	// The deferred release keeps a panicking Exec — contained by the
	// session's recover — from leaking its admission slot; the deferred
	// deregister keeps the watchdog's registry consistent on every exit,
	// including a watchdog kill itself (deregister tolerates the double
	// removal).
	var buf bytes.Buffer
	res, err := func() (shellcmd.Result, error) {
		if acquired {
			defer s.lim.release()
		}
		ctx := s.baseCtx
		if acquired && s.dog.enabled() {
			wctx, cancel := context.WithCancelCause(s.baseCtx)
			defer cancel(nil)
			id := s.dog.register(verb, cancel)
			defer s.dog.deregister(id)
			ctx = wctx
		}
		return eng.Exec(ctx, line, &buf)
	}()

	status, statusLine := StatusOK, "ok"
	switch {
	case err != nil:
		status, statusLine = StatusError, "error: "+err.Error()
	case res.Partial != nil:
		status, statusLine = StatusPartial, "partial: "+res.Partial.Error()
		s.metrics.observeFailure(res.Partial)
	}
	st := res.Stats
	if st.Op == "" {
		st.Op = verb
	}
	dur := time.Since(start)
	s.metrics.observe(st, status, dur)
	s.logCommand(remote, st, status, dur)

	if buf.Len() > 0 {
		if s.sendText(conn, w, buf.String()) != nil {
			return false
		}
	}
	return s.send(conn, w, statusLine) == nil
}

// send writes one protocol line and flushes. A disconnect fault armed at
// the write site severs the connection instead — the mid-response
// disconnect clients must survive.
func (s *Server) send(conn net.Conn, w *bufio.Writer, line string) error {
	if inj := s.cfg.Faults; inj != nil && inj.Disconnect(faultinject.SiteServerWrite) {
		conn.Close()
		return net.ErrClosed
	}
	if _, err := w.WriteString(line); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// sendText writes a multi-line body as individual protocol lines, so
// write-site faults can strike between any two of them.
func (s *Server) sendText(conn net.Conn, w *bufio.Writer, text string) error {
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if err := s.send(conn, w, line); err != nil {
			return err
		}
	}
	return nil
}
