package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/shellcmd"
)

// Wire protocol: on connect the server sends one greeting line
// ("spatiald ready"). The client then sends one command per line in the
// shellcmd grammar; the server answers with zero or more data lines —
// byte-identical to what the spatialdb shell would print — followed by
// exactly one status line:
//
//	ok                   command completed
//	partial: <reason>    query interrupted; data lines above are valid but incomplete
//	error: <reason>      hard failure (syntax, unknown layer, budget, overload); no results
//
// No data line ever begins with "ok", "partial:" or "error:", so clients
// frame responses by scanning for those prefixes. "quit" (or "exit")
// answers "ok" and closes the connection.
//
// Data lines stream: each line goes to the client the moment the
// executing command produces it (one flush per emitted batch), so a
// join's first rows arrive while refinement is still running. The
// framing is unchanged — data lines, then exactly one status line. A
// hard error still usually means "no results": the verbs validate
// before emitting, and the rare exception (every shard of a fan-out
// dying mid-stream) leaves valid-but-incomplete rows above an "error:"
// status.

// serveConn runs one TCP session. Any panic — an injected accept-site
// fault or a session-handler bug — is contained here: the connection
// closes, shared state (catalog, limiter, metrics) is untouched beyond
// already-completed commands, and no goroutine leaks.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	s.metrics.SessionsActive.Add(1)
	defer func() {
		_ = recover()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.metrics.SessionsActive.Add(-1)
	}()
	if inj := s.cfg.Faults; inj != nil {
		inj.Apply(faultinject.SiteServerAccept)
	}

	eng := s.newEngine()
	w := bufio.NewWriter(conn)
	if s.send(conn, w, "spatiald ready") != nil {
		return
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	for {
		if s.draining() {
			_ = s.send(conn, w, "error: shutting down")
			return
		}
		if inj := s.cfg.Faults; inj != nil && inj.Disconnect(faultinject.SiteServerRead) {
			return
		}
		if !sc.Scan() {
			return // EOF, read error, or shutdown deadline
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			_ = s.send(conn, w, "ok")
			return
		}
		if !s.runCommand(eng, conn, w, line) {
			return
		}
	}
}

// runCommand executes one wire command end to end: admission control for
// query verbs, execution against the shared catalog, metrics and access
// logging, and the framed response. It reports whether the session can
// continue (false on write failure or injected disconnect).
func (s *Server) runCommand(eng *shellcmd.Engine, conn net.Conn, w *bufio.Writer, line string) bool {
	start := time.Now()
	remote := conn.RemoteAddr().String()
	verb := shellcmd.Verb(line)
	if verb == "" || strings.HasPrefix(verb, "#") {
		return s.send(conn, w, "ok") == nil
	}

	acquired := false
	if shellcmd.IsQuery(verb) {
		if err := s.lim.acquire(s.baseCtx); err != nil {
			st := query.Stats{Op: verb}
			status := StatusError
			msg := "error: shutting down"
			var oe *OverloadError
			if errors.As(err, &oe) {
				status = StatusOverload
				msg = "error: " + oe.Error()
			}
			s.metrics.observe(st, status, time.Since(start))
			s.logCommand(remote, st, status, time.Since(start))
			return s.send(conn, w, msg) == nil
		}
		acquired = true
	}
	// The deferred release keeps a panicking Exec — contained by the
	// session's recover — from leaking its admission slot; the deferred
	// deregister keeps the watchdog's registry consistent on every exit,
	// including a watchdog kill itself (deregister tolerates the double
	// removal). Output streams through lw: complete lines reach the
	// client while the command is still running, and a write failure
	// cancels the command's context so streaming sinks wind down instead
	// of refining for a dead connection.
	lw := &lineWriter{s: s, conn: conn, w: w}
	res, err := func() (shellcmd.Result, error) {
		if acquired {
			defer s.lim.release()
		}
		ctx, cancel := context.WithCancelCause(s.baseCtx)
		defer cancel(nil)
		lw.cancel = cancel
		if acquired && s.dog.enabled() {
			// The sever hook closes the connection if the query is still
			// pinned a grace period after the kill — the cancel cannot
			// unblock a conn.Write, but the close can.
			id := s.dog.register(verb, cancel, func() { conn.Close() })
			defer s.dog.deregister(id)
		}
		return eng.Exec(ctx, line, lw)
	}()

	status, statusLine := StatusOK, "ok"
	switch {
	case err != nil:
		status, statusLine = StatusError, "error: "+err.Error()
	case res.Partial != nil:
		status, statusLine = StatusPartial, "partial: "+res.Partial.Error()
		s.metrics.observeFailure(res.Partial)
	}
	st := res.Stats
	if st.Op == "" {
		st.Op = verb
	}
	dur := time.Since(start)
	s.metrics.observe(st, status, dur)
	s.logCommand(remote, st, status, dur)

	lw.finish()
	if lw.err != nil {
		return false
	}
	return s.send(conn, w, statusLine) == nil
}

// lineWriter is the io.Writer a session hands to Exec: every complete
// line written into it goes to the client immediately through s.send —
// one protocol line per data line, flushed — so streaming sinks deliver
// rows as batches complete. The write-site disconnect fault keeps
// striking per line, exactly as it did when responses were buffered. A
// send failure is sticky: it cancels the command's context (winding
// streaming sinks down) and every later Write fails fast.
type lineWriter struct {
	s      *Server
	conn   net.Conn
	w      *bufio.Writer
	rest   []byte // trailing bytes of an unterminated line
	err    error
	cancel context.CancelCauseFunc
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	if lw.err != nil {
		return 0, lw.err
	}
	n := len(p)
	for {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			lw.rest = append(lw.rest, p...)
			return n, nil
		}
		lw.rest = append(lw.rest, p[:i]...)
		line := string(lw.rest)
		lw.rest = lw.rest[:0]
		p = p[i+1:]
		if err := lw.s.send(lw.conn, lw.w, line); err != nil {
			lw.err = err
			if lw.cancel != nil {
				lw.cancel(err)
			}
			return 0, err
		}
	}
}

// finish sends a trailing unterminated line, if any, so no output is
// lost when a command ends without a final newline.
func (lw *lineWriter) finish() {
	if lw.err == nil && len(lw.rest) > 0 {
		line := string(lw.rest)
		lw.rest = lw.rest[:0]
		if err := lw.s.send(lw.conn, lw.w, line); err != nil {
			lw.err = err
		}
	}
}

// send writes one protocol line and flushes. A disconnect fault armed at
// the write site severs the connection instead — the mid-response
// disconnect clients must survive. Every write is bounded by the
// server's write deadline: a client that stops reading (without
// disconnecting) fails the write once its socket buffer fills, instead
// of pinning the session — and, mid-query, the admission slot — in a
// conn.Write that no context cancellation can unblock.
func (s *Server) send(conn net.Conn, w *bufio.Writer, line string) error {
	if inj := s.cfg.Faults; inj != nil && inj.Disconnect(faultinject.SiteServerWrite) {
		conn.Close()
		return net.ErrClosed
	}
	if d := s.writeTimeout(); d > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(d))
	}
	if _, err := w.WriteString(line); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}
