package server

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Streaming wind-down tests: rows now reach the client while a query is
// still refining, so a client that disappears mid-stream (or a deadline
// that expires under it) must cancel the running pipeline, release the
// admission slot, and leak nothing.

// TestStreamWriteFaultWindsDownJoin severs the connection at the write
// site after a handful of streamed rows: the client sees a truncated
// stream (rows but no status line), the running join's sinks wind down
// via the cancelled command context, and the session releases its
// admission slot without leaking a goroutine.
func TestStreamWriteFaultWindsDownJoin(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Write #1 is the greeting; #5 lands a few rows into the join stream.
	inj := faultinject.New(3).InjectAt(faultinject.SiteServerWrite, faultinject.KindDisconnect, 5)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)
	if wantJoin < 5 {
		t.Fatalf("join has only %d pairs; the stream would end before the injected cut", wantJoin)
	}

	c := dialWire(t, s.Addr().String())
	if err := c.send("shardjoin water prism -Inf -Inf +Inf +Inf"); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rows := 0
	sawStatus := false
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			break
		}
		l := strings.TrimSuffix(line, "\n")
		if l == "ok" || strings.HasPrefix(l, "partial:") || strings.HasPrefix(l, "error:") {
			sawStatus = true
			break
		}
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if sawStatus {
		t.Fatalf("severed session still delivered a status line after %d rows", rows)
	}
	if rows == 0 {
		t.Fatal("no rows streamed before the injected disconnect: output is not streaming")
	}
	if inj.Fired(faultinject.SiteServerWrite, faultinject.KindDisconnect) == 0 {
		t.Fatal("write-site disconnect never fired")
	}

	waitFor(t, "severed session to unwind", func() bool {
		return s.Metrics().SessionsActive.Load() == 0
	})
	waitFor(t, "admission slot release", func() bool {
		return s.lim.inFlight() == 0
	})
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestStreamDeadlineExpiryReleasesSlot expires a session deadline in the
// middle of a streamed join (refinement slowed by injected delays): the
// client gets a partial status after whatever rows made it out, and the
// server is left with no held slot, no watchdog entry, and no leaked
// goroutine.
func TestStreamDeadlineExpiryReleasesSlot(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(5).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 1).
		SetDelay(5 * time.Millisecond)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	c := dialWire(t, s.Addr().String())
	c.mustOK(t, "timeout 25ms")
	lines, status := c.do(t, "shardjoin water prism -Inf -Inf +Inf +Inf")
	if !strings.HasPrefix(status, "partial:") {
		t.Fatalf("deadline-expired join answered %q (%d lines), want partial:", status, len(lines))
	}
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if rows >= wantJoin {
		t.Fatalf("expired join streamed all %d rows; the deadline never bit", rows)
	}

	waitFor(t, "admission slot release", func() bool {
		return s.lim.inFlight() == 0 && s.dog.active() == 0
	})
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestBatchVerbOverWire runs two queries in one round trip under a
// single admission slot and pins the framing: each sub-command's output
// streams in order with its "sub <n> ok: <op>" trailer, and the batch
// answers one status line.
func TestBatchVerbOverWire(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	c := dialWire(t, s.Addr().String())
	lines := c.mustOK(t, "batch join water prism sw; shardjoin water prism -Inf -Inf +Inf +Inf")

	var trailers []string
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "sub ") {
			trailers = append(trailers, l)
		}
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if len(trailers) != 2 || !strings.HasPrefix(trailers[0], "sub 1 ok: join") ||
		!strings.HasPrefix(trailers[1], "sub 2 ok: shardjoin") {
		t.Fatalf("batch trailers = %q, want sub 1 ok: join / sub 2 ok: shardjoin", trailers)
	}
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("batched join reports %d results, want %d", got, wantJoin)
	}
	if rows != wantJoin {
		t.Errorf("batched shardjoin streamed %d pairs, want %d", rows, wantJoin)
	}

	// A failing sub-command is reported in-band and does not abort the
	// batch or the session.
	lines = c.mustOK(t, "batch join nosuch prism; join water prism sw")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "sub 1 error:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing sub not reported in-band: %q", lines)
	}
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("join after failing sub reports %d results, want %d", got, wantJoin)
	}
}

// TestHTTPStreamEndpoint drives /stream: the response body must carry
// the TCP wire framing — data lines, then exactly one status line — and
// the streamed rows must match the direct join. Afterwards the pipeline
// and streaming metric families must be live on /metrics.
func TestHTTPStreamEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	// '+Inf' needs %2B: a literal '+' in a query string decodes to space.
	code, body := httpGet(t, client, base+"/stream?cmd=shardjoin+water+prism+-Inf+-Inf+%2BInf+%2BInf")
	if code != http.StatusOK {
		t.Fatalf("/stream = %d %q", code, body)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if n := len(lines); n == 0 || lines[n-1] != "ok" {
		t.Fatalf("stream body does not end with an ok status line: %q", lines)
	}
	rows := 0
	for _, l := range lines[:len(lines)-1] {
		if strings.HasPrefix(l, "pair ") {
			rows++
		} else if !strings.HasPrefix(l, "stats ") {
			t.Fatalf("unexpected stream line %q", l)
		}
	}
	if rows != wantJoin {
		t.Fatalf("/stream delivered %d pairs, want %d", rows, wantJoin)
	}

	// Hard errors still end with the in-band status line.
	code, body = httpGet(t, client, base+"/stream?cmd=join+nosuch+prism")
	if code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "error:") {
		t.Fatalf("bad /stream = %d %q, want in-band error status", code, body)
	}

	code, body = httpGet(t, client, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, name := range []string{
		"spatiald_pipeline_batches_total",
		"spatiald_pipeline_filter_seconds_total",
		"spatiald_pipeline_refine_seconds_total",
		"spatiald_pipeline_queue_depth_max",
		"spatiald_stream_rows_emitted_total",
	} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("metrics missing %s", name)
		}
	}
	for _, counter := range []string{"spatiald_pipeline_batches_total", "spatiald_stream_rows_emitted_total"} {
		for _, l := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(l, counter+" "); ok && v == "0" {
				t.Errorf("%s still zero after a streamed pipelined join", counter)
			}
		}
	}
}
