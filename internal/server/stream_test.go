package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// Streaming wind-down tests: rows now reach the client while a query is
// still refining, so a client that disappears mid-stream (or a deadline
// that expires under it) must cancel the running pipeline, release the
// admission slot, and leak nothing.

// TestStreamWriteFaultWindsDownJoin severs the connection at the write
// site after a handful of streamed rows: the client sees a truncated
// stream (rows but no status line), the running join's sinks wind down
// via the cancelled command context, and the session releases its
// admission slot without leaking a goroutine.
func TestStreamWriteFaultWindsDownJoin(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Write #1 is the greeting; #5 lands a few rows into the join stream.
	inj := faultinject.New(3).InjectAt(faultinject.SiteServerWrite, faultinject.KindDisconnect, 5)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)
	if wantJoin < 5 {
		t.Fatalf("join has only %d pairs; the stream would end before the injected cut", wantJoin)
	}

	c := dialWire(t, s.Addr().String())
	if err := c.send("shardjoin water prism -Inf -Inf +Inf +Inf"); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rows := 0
	sawStatus := false
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			break
		}
		l := strings.TrimSuffix(line, "\n")
		if l == "ok" || strings.HasPrefix(l, "partial:") || strings.HasPrefix(l, "error:") {
			sawStatus = true
			break
		}
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if sawStatus {
		t.Fatalf("severed session still delivered a status line after %d rows", rows)
	}
	if rows == 0 {
		t.Fatal("no rows streamed before the injected disconnect: output is not streaming")
	}
	if inj.Fired(faultinject.SiteServerWrite, faultinject.KindDisconnect) == 0 {
		t.Fatal("write-site disconnect never fired")
	}

	waitFor(t, "severed session to unwind", func() bool {
		return s.Metrics().SessionsActive.Load() == 0
	})
	waitFor(t, "admission slot release", func() bool {
		return s.lim.inFlight() == 0
	})
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestStreamDeadlineExpiryReleasesSlot expires a session deadline in the
// middle of a streamed join (refinement slowed by injected delays): the
// client gets a partial status after whatever rows made it out, and the
// server is left with no held slot, no watchdog entry, and no leaked
// goroutine.
func TestStreamDeadlineExpiryReleasesSlot(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(5).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 1).
		SetDelay(5 * time.Millisecond)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	c := dialWire(t, s.Addr().String())
	c.mustOK(t, "timeout 25ms")
	lines, status := c.do(t, "shardjoin water prism -Inf -Inf +Inf +Inf")
	if !strings.HasPrefix(status, "partial:") {
		t.Fatalf("deadline-expired join answered %q (%d lines), want partial:", status, len(lines))
	}
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if rows >= wantJoin {
		t.Fatalf("expired join streamed all %d rows; the deadline never bit", rows)
	}

	waitFor(t, "admission slot release", func() bool {
		return s.lim.inFlight() == 0 && s.dog.active() == 0
	})
	checkCatalogIntact(t, s, water, prism, wantJoin)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
}

// TestBatchVerbOverWire runs two queries in one round trip under a
// single admission slot and pins the framing: each sub-command's output
// streams in order with its "sub <n> ok: <op>" trailer, and the batch
// answers one status line.
func TestBatchVerbOverWire(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)

	c := dialWire(t, s.Addr().String())
	lines := c.mustOK(t, "batch join water prism sw; shardjoin water prism -Inf -Inf +Inf +Inf")

	var trailers []string
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "sub ") {
			trailers = append(trailers, l)
		}
		if strings.HasPrefix(l, "pair ") {
			rows++
		}
	}
	if len(trailers) != 2 || !strings.HasPrefix(trailers[0], "sub 1 ok: join") ||
		!strings.HasPrefix(trailers[1], "sub 2 ok: shardjoin") {
		t.Fatalf("batch trailers = %q, want sub 1 ok: join / sub 2 ok: shardjoin", trailers)
	}
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("batched join reports %d results, want %d", got, wantJoin)
	}
	if rows != wantJoin {
		t.Errorf("batched shardjoin streamed %d pairs, want %d", rows, wantJoin)
	}

	// A failing sub-command is reported in-band and does not abort the
	// batch or the session.
	lines = c.mustOK(t, "batch join nosuch prism; join water prism sw")
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "sub 1 error:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing sub not reported in-band: %q", lines)
	}
	if got := countFrom(t, lines, "join: %d results"); got != wantJoin {
		t.Errorf("join after failing sub reports %d results, want %d", got, wantJoin)
	}
}

// TestSendWriteDeadlineUnblocksStalledClient pins the slow-reader
// defense: a client that stops reading (without disconnecting) must fail
// the protocol write within the configured write deadline, instead of
// parking the session — and, mid-query, its admission slot — in a
// conn.Write that context cancellation cannot unblock. net.Pipe is
// unbuffered, so the unread write models a full socket buffer exactly.
func TestSendWriteDeadlineUnblocksStalledClient(t *testing.T) {
	s := New(Config{WriteTimeout: 50 * time.Millisecond})
	srv, client := net.Pipe()
	defer srv.Close()
	defer client.Close() // never read from: the stalled client

	start := time.Now()
	err := s.send(srv, bufio.NewWriter(srv), "row nobody reads")
	if err == nil {
		t.Fatal("send to a client that never reads returned nil, want deadline error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("send error = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("send took %v to fail; the write deadline never armed", d)
	}
}

// TestWatchdogSeversPinnedQuery pins the watchdog escalation: the first
// overdue scan cancels the query (once), and a query still registered a
// grace period after its kill — pinned where cancellation cannot reach —
// has its sever hook run, which closes the client connection. Scan times
// are synthetic, so the sequence is deterministic.
func TestWatchdogSeversPinnedQuery(t *testing.T) {
	dog := newWatchdog(10 * time.Millisecond)
	cancelled := 0
	severed := make(chan struct{})
	id := dog.register("join", func(error) { cancelled++ }, func() { close(severed) })
	base := time.Now()

	if n := dog.scan(base.Add(15 * time.Millisecond)); n != 1 {
		t.Fatalf("overdue scan killed %d, want 1", n)
	}
	if cancelled != 1 {
		t.Fatalf("cancelled %d times, want 1", cancelled)
	}
	select {
	case <-severed:
		t.Fatal("severed on the first kill; escalation must wait out the grace period")
	default:
	}
	// Within the grace (threshold floored at 1s after the kill): no
	// re-kill, no sever.
	if n := dog.scan(base.Add(515 * time.Millisecond)); n != 0 || cancelled != 1 {
		t.Fatalf("in-grace scan re-killed (n=%d cancels=%d), want one kill per query", n, cancelled)
	}
	select {
	case <-severed:
		t.Fatal("severed inside the grace period")
	default:
	}
	dog.scan(base.Add(1200 * time.Millisecond)) // grace expired since the kill at +15ms
	select {
	case <-severed:
	default:
		t.Fatal("query pinned past the kill grace was not severed")
	}
	dog.deregister(id) // double removal after the sever must be harmless
	if dog.active() != 0 || dog.cancelCount() != 1 {
		t.Fatalf("active=%d cancels=%d after sever+deregister", dog.active(), dog.cancelCount())
	}
}

// TestHTTPStreamEndpoint drives /stream: the response body must carry
// the TCP wire framing — data lines, then exactly one status line — and
// the streamed rows must match the direct join. Afterwards the pipeline
// and streaming metric families must be live on /metrics.
func TestHTTPStreamEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	water, prism := preload(t, s)
	wantJoin := directJoinCount(t, water, prism)
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	// '+Inf' needs %2B: a literal '+' in a query string decodes to space.
	code, body := httpGet(t, client, base+"/stream?cmd=shardjoin+water+prism+-Inf+-Inf+%2BInf+%2BInf")
	if code != http.StatusOK {
		t.Fatalf("/stream = %d %q", code, body)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if n := len(lines); n == 0 || lines[n-1] != "ok" {
		t.Fatalf("stream body does not end with an ok status line: %q", lines)
	}
	rows := 0
	for _, l := range lines[:len(lines)-1] {
		if strings.HasPrefix(l, "pair ") {
			rows++
		} else if !strings.HasPrefix(l, "stats ") {
			t.Fatalf("unexpected stream line %q", l)
		}
	}
	if rows != wantJoin {
		t.Fatalf("/stream delivered %d pairs, want %d", rows, wantJoin)
	}

	// Hard errors still end with the in-band status line.
	code, body = httpGet(t, client, base+"/stream?cmd=join+nosuch+prism")
	if code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "error:") {
		t.Fatalf("bad /stream = %d %q, want in-band error status", code, body)
	}

	code, body = httpGet(t, client, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, name := range []string{
		"spatiald_pipeline_batches_total",
		"spatiald_pipeline_filter_seconds_total",
		"spatiald_pipeline_refine_seconds_total",
		"spatiald_pipeline_queue_depth_max",
		"spatiald_stream_rows_emitted_total",
	} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("metrics missing %s", name)
		}
	}
	for _, counter := range []string{"spatiald_pipeline_batches_total", "spatiald_stream_rows_emitted_total"} {
		for _, l := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(l, counter+" "); ok && v == "0" {
				t.Errorf("%s still zero after a streamed pipelined join", counter)
			}
		}
	}
}
