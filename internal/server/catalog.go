// Package server implements spatiald's concurrent network layer over the
// spatial query engine: a line-oriented TCP wire protocol speaking the
// shared shellcmd grammar, an HTTP/JSON endpoint, /metrics and /healthz
// surfaces, a copy-on-write layer catalog shared by all sessions, an
// admission-control semaphore bounding concurrent refinements, structured
// per-query access logging, and graceful shutdown that drains in-flight
// queries into partial results. See DESIGN.md §8.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/shellcmd"
)

// CatalogFullError is the typed refusal returned when a Set would grow
// the catalog past its configured layer limit.
type CatalogFullError struct {
	Limit int
}

func (e *CatalogFullError) Error() string {
	return fmt.Sprintf("catalog full: limit of %d layers reached (reuse an existing name)", e.Limit)
}

// Catalog is the server's shared layer namespace. Reads are lock-free
// loads of an immutable snapshot map; writes copy the current snapshot,
// apply the change, and publish the copy — so a gen or load never blocks
// an in-flight query, and a query's view of the catalog is torn at
// command granularity only (Engine.Exec takes one View per command).
// Layers themselves are immutable once published (lazy hull construction
// is internally synchronized), which is what makes snapshot sharing
// sound.
type Catalog struct {
	maxLayers int

	mu   sync.Mutex // serializes writers only
	snap atomic.Pointer[map[string]query.Source]
}

// NewCatalog builds an empty catalog holding at most maxLayers layers
// (0 means unlimited).
func NewCatalog(maxLayers int) *Catalog {
	c := &Catalog{maxLayers: maxLayers}
	empty := map[string]query.Source{}
	c.snap.Store(&empty)
	return c
}

// Get returns the source (layer or live table) currently bound to name.
func (c *Catalog) Get(name string) (query.Source, bool) {
	l, ok := (*c.snap.Load())[name]
	return l, ok
}

// Set publishes a new snapshot with name bound to l. Binding a new name
// beyond the layer limit returns a *CatalogFullError; rebinding an
// existing name always succeeds (in-flight queries keep the layer they
// already resolved).
func (c *Catalog) Set(name string, l query.Source) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.snap.Load()
	if _, exists := old[name]; !exists && c.maxLayers > 0 && len(old) >= c.maxLayers {
		return &CatalogFullError{Limit: c.maxLayers}
	}
	next := make(map[string]query.Source, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = l
	c.snap.Store(&next)
	return nil
}

// Names lists the bound names, sorted.
func (c *Catalog) Names() []string {
	m := *c.snap.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the current layer count.
func (c *Catalog) Len() int { return len(*c.snap.Load()) }

// View returns a read-consistent view pinned to the current snapshot;
// writes through the view still publish to the live catalog. Engine.Exec
// calls this once per command, so a join resolves both layers from one
// catalog generation.
func (c *Catalog) View() shellcmd.Store {
	return &catalogView{snap: *c.snap.Load(), live: c}
}

type catalogView struct {
	snap map[string]query.Source
	live *Catalog
}

func (v *catalogView) Get(name string) (query.Source, bool) {
	l, ok := v.snap[name]
	return l, ok
}

func (v *catalogView) Set(name string, l query.Source) error {
	return v.live.Set(name, l)
}

func (v *catalogView) Names() []string {
	names := make([]string, 0, len(v.snap))
	for n := range v.snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
