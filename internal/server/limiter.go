package server

import (
	"context"
	"fmt"
	"time"
)

// OverloadError is the typed admission rejection: the server already has
// its configured maximum of refinement-running queries in flight and the
// caller's grace period (QueueWait) elapsed without a slot freeing.
// Clients should back off and retry; the request did no query work.
type OverloadError struct {
	Limit int
	Wait  time.Duration
}

func (e *OverloadError) Error() string {
	if e.Wait > 0 {
		return fmt.Sprintf("overloaded: %d queries in flight, no slot within %v", e.Limit, e.Wait)
	}
	return fmt.Sprintf("overloaded: %d queries in flight", e.Limit)
}

// limiter is the admission-control semaphore bounding concurrent
// refinement work. Rejection is typed and prompt — an over-limit query
// waits at most the configured grace, never queuing unboundedly.
type limiter struct {
	sem  chan struct{}
	wait time.Duration
}

func newLimiter(slots int, wait time.Duration) *limiter {
	return &limiter{sem: make(chan struct{}, slots), wait: wait}
}

// acquire claims a slot, waiting at most the limiter's grace period.
// It returns a *OverloadError on admission failure, or the context's
// error if ctx ends first (server shutdown).
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if l.wait <= 0 {
		return &OverloadError{Limit: cap(l.sem)}
	}
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-t.C:
		return &OverloadError{Limit: cap(l.sem), Wait: l.wait}
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.sem }

// inFlight reports the currently claimed slots (for /metrics).
func (l *limiter) inFlight() int { return len(l.sem) }
