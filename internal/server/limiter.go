package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// OverloadError is the typed admission rejection: the server already has
// its configured maximum of refinement-running queries in flight and the
// caller could not be admitted — the wait queue was full, or the caller's
// grace period (QueueWait) elapsed without a slot freeing. RetryAfter is
// the server's load-shedding hint, estimated from the recent slot-release
// rate and the queue depth ahead of a new arrival; clients should back
// off at least that long before retrying. The request did no query work.
type OverloadError struct {
	Limit      int
	Wait       time.Duration // grace period that elapsed (0: rejected immediately)
	Queued     int           // waiters ahead at rejection time
	RetryAfter time.Duration // suggested backoff before retrying
}

func (e *OverloadError) Error() string {
	msg := fmt.Sprintf("overloaded: %d queries in flight", e.Limit)
	if e.Wait > 0 {
		msg = fmt.Sprintf("overloaded: %d queries in flight, no slot within %v", e.Limit, e.Wait)
	}
	if e.Queued > 0 {
		msg += fmt.Sprintf(", %d queued", e.Queued)
	}
	if e.RetryAfter > 0 {
		// The trailing hint is part of the wire contract: the spatiald
		// client's retry loop parses it from the "error:" status line.
		msg += fmt.Sprintf("; retry after %v", e.RetryAfter)
	}
	return msg
}

// AdmissionStats is the limiter's counter snapshot for /metrics.
type AdmissionStats struct {
	InFlight  int   // slots currently held
	Queued    int   // waiters currently parked in the FIFO queue
	Admitted  int64 // total successful acquisitions
	Shed      int64 // arrivals rejected because the queue was full
	Timeouts  int64 // waiters whose grace period elapsed unserved
	WaitNanos int64 // cumulative queue wait of admitted queries
}

// waiter is one parked acquirer. granted is set under the limiter mutex
// when a released slot is handed directly to the queue head; the waiter
// owns the slot from that moment, so a racing timeout/cancellation must
// check granted and pass the slot onward rather than leak it.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// limiter is the admission gate bounding concurrent refinement work, a
// counted set of slots fronted by a bounded FIFO wait queue. An arrival
// with a free slot is admitted immediately; otherwise it parks in the
// queue (admission order is arrival order — no barging) until a slot is
// handed to it, its grace period elapses, or its context ends. Arrivals
// beyond the queue bound are shed immediately with an OverloadError
// carrying a retry-after hint derived from the observed service rate.
type limiter struct {
	limit    int
	wait     time.Duration // per-waiter grace period (<=0: reject, never queue)
	maxQueue int           // queue bound (<=0 with wait>0: unbounded is not offered; see newLimiter)

	mu          sync.Mutex
	inUse       int
	queue       []*waiter
	lastRelease time.Time
	interEWMA   time.Duration // smoothed inter-release interval (service-rate estimate)

	admitted  atomic.Int64
	shed      atomic.Int64
	timeouts  atomic.Int64
	waitNanos atomic.Int64
}

// newLimiter builds an admission gate with the given slot count, waiter
// grace period, and queue bound. maxQueue <= 0 defaults to 4× the slot
// count when waiting is enabled; with wait <= 0 the queue is disabled and
// over-limit arrivals are rejected immediately (the pre-queue semantics).
func newLimiter(slots int, wait time.Duration, maxQueue int) *limiter {
	if maxQueue <= 0 {
		maxQueue = 4 * slots
	}
	if wait <= 0 {
		maxQueue = 0
	}
	return &limiter{limit: slots, wait: wait, maxQueue: maxQueue}
}

// acquire claims a slot, parking in the FIFO queue for at most the grace
// period when none is free. It returns a *OverloadError on admission
// failure, or the context's (cause) error if ctx ends first (server
// shutdown, watchdog cancellation, client gone).
func (l *limiter) acquire(ctx context.Context) error {
	l.mu.Lock()
	if l.inUse < l.limit && len(l.queue) == 0 {
		l.inUse++
		l.mu.Unlock()
		l.admitted.Add(1)
		return nil
	}
	if l.wait <= 0 || len(l.queue) >= l.maxQueue {
		queued := len(l.queue)
		hint := l.retryHintLocked(queued)
		l.mu.Unlock()
		l.shed.Add(1)
		return &OverloadError{Limit: l.limit, Queued: queued, RetryAfter: hint}
	}
	w := &waiter{ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	start := time.Now()
	t := time.NewTimer(l.wait)
	defer t.Stop()
	select {
	case <-w.ready:
		l.admitted.Add(1)
		l.waitNanos.Add(int64(time.Since(start)))
		return nil
	case <-t.C:
		if abandoned, queued, hint := l.abandonForTimeout(w); abandoned {
			l.timeouts.Add(1)
			return &OverloadError{Limit: l.limit, Wait: l.wait, Queued: queued, RetryAfter: hint}
		}
		// The grant raced the timer and won: the slot is ours after all.
		l.admitted.Add(1)
		l.waitNanos.Add(int64(time.Since(start)))
		return nil
	case <-ctx.Done():
		if l.abandon(w) {
			return context.Cause(ctx)
		}
		// Granted concurrently with cancellation: we cannot use the slot,
		// so pass it to the next waiter (or free it) instead of leaking.
		l.release()
		return context.Cause(ctx)
	}
}

// abandon removes a parked waiter from the queue. It reports false when
// the waiter was already granted a slot (the caller then owns it).
func (l *limiter) abandon(w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abandonLocked(w)
}

// abandonForTimeout is abandon plus a consistent snapshot of the queue
// depth and retry hint for the OverloadError, in one critical section.
func (l *limiter) abandonForTimeout(w *waiter) (abandoned bool, queued int, hint time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.abandonLocked(w) {
		return false, 0, 0
	}
	queued = len(l.queue)
	return true, queued, l.retryHintLocked(queued)
}

func (l *limiter) abandonLocked(w *waiter) bool {
	if w.granted {
		return false
	}
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	return true
}

// release returns a slot, handing it directly to the queue head when one
// is parked (FIFO admission: the slot never becomes visible to barging
// arrivals while someone is queued).
func (l *limiter) release() {
	l.mu.Lock()
	now := time.Now()
	if !l.lastRelease.IsZero() {
		// EWMA with weight 1/4: stable under bursts, adapts within a few
		// releases. This is the service-rate estimate behind RetryAfter.
		iv := now.Sub(l.lastRelease)
		if l.interEWMA == 0 {
			l.interEWMA = iv
		} else {
			l.interEWMA += (iv - l.interEWMA) / 4
		}
	}
	l.lastRelease = now
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		w.granted = true
		close(w.ready)
		l.mu.Unlock()
		return
	}
	l.inUse--
	l.mu.Unlock()
}

// retryHintLocked estimates how long a shed caller should back off: the
// time for the queue ahead of it (plus one slot for itself) to drain at
// the observed service rate, clamped to a sane operational window. Called
// with l.mu held.
func (l *limiter) retryHintLocked(queued int) time.Duration {
	iv := l.interEWMA
	if iv <= 0 {
		iv = 100 * time.Millisecond // no releases observed yet: guess
	}
	hint := iv * time.Duration(queued+1)
	if hint < 100*time.Millisecond {
		hint = 100 * time.Millisecond
	}
	if hint > 30*time.Second {
		hint = 30 * time.Second
	}
	return hint
}

// inFlight reports the currently claimed slots (for /metrics).
func (l *limiter) inFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// queued reports the current wait-queue depth.
func (l *limiter) queued() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// snapshot captures the admission counters for /metrics.
func (l *limiter) snapshot() AdmissionStats {
	l.mu.Lock()
	inUse, queued := l.inUse, len(l.queue)
	l.mu.Unlock()
	return AdmissionStats{
		InFlight:  inUse,
		Queued:    queued,
		Admitted:  l.admitted.Load(),
		Shed:      l.shed.Load(),
		Timeouts:  l.timeouts.Load(),
		WaitNanos: l.waitNanos.Load(),
	}
}
