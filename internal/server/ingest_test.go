package server

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/wal"
)

// TestIngestOverWireAndMetrics drives the durable ingestion verbs over
// the wire protocol end to end — live table creation, group-committed
// inserts, a delete, live-view selects, explicit compaction — and then
// asserts the wal_* / compaction_* counters on /metrics reflect the
// traffic.
func TestIngestOverWireAndMetrics(t *testing.T) {
	// Tiny segments so the insert stream rotates the WAL and compaction
	// has whole segments below the watermark to truncate.
	m := ingest.NewManager(ingest.Options{
		Dir:              t.TempDir(),
		WAL:              wal.Options{SegmentBytes: 256},
		DisableCompactor: true,
	})
	defer m.Close()
	s := startServer(t, Config{Ingest: m})
	c := dialWire(t, s.Addr().String())

	if _, status := c.do(t, "live fleet"); status != "ok" {
		t.Fatalf("live: %s", status)
	}
	// Unit squares marching right; squares 0/1 overlap, 1/2 overlap, etc.
	for i := 0; i < 8; i++ {
		x := float64(i) * 0.6
		cmd := fmt.Sprintf("insert fleet POLYGON((%.1f 0, %.1f 0, %.1f 1, %.1f 1))", x, x+1, x+1, x)
		lines, status := c.do(t, cmd)
		if status != "ok" {
			t.Fatalf("insert %d: %s %v", i, status, lines)
		}
		if len(lines) == 0 || !strings.Contains(lines[0], fmt.Sprintf("inserted id %d", i)) {
			t.Fatalf("insert %d output: %v", i, lines)
		}
	}
	if _, status := c.do(t, "delete fleet 3"); status != "ok" {
		t.Fatalf("delete: %s", status)
	}
	if _, status := c.do(t, "delete fleet 99"); !strings.HasPrefix(status, "error:") {
		t.Fatalf("delete of missing id: %s", status)
	}

	// Queries read the live snapshot ∪ delta view.
	lines, status := c.do(t, "select fleet POLYGON((0 0, 10 0, 10 1, 0 1))")
	if status != "ok" {
		t.Fatalf("select: %s %v", status, lines)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "select: 7 results") {
		t.Fatalf("live select output: %v", lines)
	}
	// knn needs a compacted table: typed refusal, not a wrong answer.
	if _, status := c.do(t, "knn fleet POLYGON((0 0, 1 0, 1 1)) 3"); !strings.Contains(status, "compact") {
		t.Fatalf("knn over live view: %s", status)
	}

	if lines, status := c.do(t, "compact fleet"); status != "ok" {
		t.Fatalf("compact: %s %v", status, lines)
	}
	if _, status := c.do(t, "knn fleet POLYGON((0 0, 1 0, 1 1)) 3"); status != "ok" {
		t.Fatalf("knn after compact: %s", status)
	}

	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()
	code, body := httpGet(t, client, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	wantPositive := []string{
		"spatiald_ingest_tables",
		"spatiald_ingest_inserts_total",
		"spatiald_ingest_deletes_total",
		"spatiald_ingest_not_found_total",
		"spatiald_wal_appends_total",
		"spatiald_wal_batches_total",
		"spatiald_wal_bytes_total",
		"spatiald_wal_segments",
		"spatiald_wal_truncated_segments_total",
		"spatiald_compaction_runs_total",
	}
	for _, name := range wantPositive {
		v, ok := metricValue(body, name)
		if !ok {
			t.Errorf("metrics missing %s:\n%s", name, body)
			continue
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	if v, ok := metricValue(body, "spatiald_ingest_inserts_total"); !ok || v != 8 {
		t.Errorf("spatiald_ingest_inserts_total = %v, want 8", v)
	}
	if v, ok := metricValue(body, "spatiald_live_delta_objects_total"); !ok || v <= 0 {
		t.Errorf("spatiald_live_delta_objects_total = %v, want > 0 (live select ran pre-compaction)", v)
	}
	if v, ok := metricValue(body, "spatiald_compaction_seconds_total"); !ok || v <= 0 {
		t.Errorf("spatiald_compaction_seconds_total = %v, want > 0", v)
	}
}

// TestIngestDisabled pins the refusal when no manager is configured.
func TestIngestDisabled(t *testing.T) {
	s := startServer(t, Config{})
	c := dialWire(t, s.Addr().String())
	if _, status := c.do(t, "live nope"); !strings.HasPrefix(status, "error:") {
		t.Fatalf("live without ingest: %s", status)
	}
}

// TestIngestSurvivesServerRestart: a new server process (fresh manager
// over the same data directory) recovers the table from snapshot + WAL.
func TestIngestSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()

	m1 := ingest.NewManager(ingest.Options{Dir: dir, DisableCompactor: true})
	s1 := startServer(t, Config{Ingest: m1})
	c1 := dialWire(t, s1.Addr().String())
	c1.do(t, "live fleet")
	for i := 0; i < 5; i++ {
		x := float64(i) * 2
		if _, status := c1.do(t, fmt.Sprintf("insert fleet POLYGON((%.0f 0, %.0f 0, %.0f 1, %.0f 1))", x, x+1, x+1, x)); status != "ok" {
			t.Fatalf("insert %d: %s", i, status)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := ingest.NewManager(ingest.Options{Dir: dir, DisableCompactor: true})
	defer m2.Close()
	s2 := startServer(t, Config{Ingest: m2})
	c2 := dialWire(t, s2.Addr().String())
	lines, status := c2.do(t, "live fleet")
	if status != "ok" {
		t.Fatalf("live after restart: %s %v", status, lines)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "5 objects") {
		t.Fatalf("recovered table: %v", lines)
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "5 wal records recovered") {
		t.Fatalf("recovery provenance: %v", lines)
	}
	// The id sequence continues across the restart.
	if lines, status := c2.do(t, "insert fleet POLYGON((20 0, 21 0, 21 1, 20 1))"); status != "ok" || !strings.Contains(lines[0], "inserted id 5") {
		t.Fatalf("post-restart insert: %s %v", status, lines)
	}
}

var metricLineRE = regexp.MustCompile(`(?m)^(\S+) (\S+)$`)

// metricValue extracts a bare (unlabelled) metric's value from an
// exposition-format body.
func metricValue(body, name string) (float64, bool) {
	for _, m := range metricLineRE.FindAllStringSubmatch(body, -1) {
		if m[1] == name {
			v, err := strconv.ParseFloat(m[2], 64)
			return v, err == nil
		}
	}
	return 0, false
}
