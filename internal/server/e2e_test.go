package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/query"
)

// wireClient is a minimal wire-protocol client for tests: it frames
// responses by the ok / partial: / error: status-line contract.
type wireClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialWire(t *testing.T, addr string) *wireClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &wireClient{conn: conn, r: bufio.NewReader(conn)}
	greeting, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("reading greeting: %v", err)
	}
	if strings.TrimSpace(greeting) != "spatiald ready" {
		t.Fatalf("greeting = %q", greeting)
	}
	return c
}

// send writes one command line without waiting for the response.
func (c *wireClient) send(cmd string) error {
	_, err := fmt.Fprintf(c.conn, "%s\n", cmd)
	return err
}

// readResponse collects data lines until the status line.
func (c *wireClient) readResponse() (lines []string, status string, err error) {
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return lines, "", err
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "ok" || strings.HasPrefix(line, "partial:") || strings.HasPrefix(line, "error:") {
			return lines, line, nil
		}
		lines = append(lines, line)
	}
}

// do sends one command and returns its framed response.
func (c *wireClient) do(t *testing.T, cmd string) ([]string, string) {
	t.Helper()
	if err := c.send(cmd); err != nil {
		t.Fatalf("send %q: %v", cmd, err)
	}
	lines, status, err := c.readResponse()
	if err != nil {
		t.Fatalf("response to %q: %v (got %q)", cmd, err, lines)
	}
	return lines, status
}

// mustOK runs a command and fails the test unless it completes.
func (c *wireClient) mustOK(t *testing.T, cmd string) []string {
	t.Helper()
	lines, status := c.do(t, cmd)
	if status != "ok" {
		t.Fatalf("%q -> %q (lines %q)", cmd, status, lines)
	}
	return lines
}

// countFrom extracts N from the first data line matching "<op>: N ...".
func countFrom(t *testing.T, lines []string, format string) int {
	t.Helper()
	for _, l := range lines {
		var n int
		if _, err := fmt.Sscanf(l, format, &n); err == nil {
			return n
		}
	}
	t.Fatalf("no line matching %q in %q", format, lines)
	return 0
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitGoroutines polls until the goroutine count returns to (at most) the
// pre-test baseline, dumping all stacks on failure.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

const (
	e2eQueryWKT = "POLYGON ((200 150, 220 150, 220 170, 200 170))"
	e2eScale    = 0.01
)

// TestE2EConcurrentClients is the end-to-end gate: spatiald on an
// ephemeral port, 8 concurrent wire clients running a mixed
// gen/load/join/pjoin/select/knn workload against the shared catalog,
// every result checked against direct query-library calls, and zero
// goroutines leaked once the server shuts down.
func TestE2EConcurrentClients(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Ground truth from direct library calls on the same datasets.
	waterData := data.MustLoad("WATER", e2eScale)
	water := query.NewLayer(waterData)
	prism := query.NewLayer(data.MustLoad("PRISM", e2eScale))
	tester := core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold})
	pairs, _, err := query.IntersectionJoin(context.Background(), water, prism, tester)
	if err != nil {
		t.Fatal(err)
	}
	wantJoin := len(pairs)
	qpoly, err := geom.ParsePolygonWKT(e2eQueryWKT)
	if err != nil {
		t.Fatal(err)
	}
	ids, _, err := query.IntersectionSelect(context.Background(), water, qpoly,
		core.NewTester(core.Config{SWThreshold: core.DefaultSWThreshold}),
		query.SelectionOptions{InteriorLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantSelect := len(ids)
	neighbors, err := query.KNearest(context.Background(), water, qpoly, 5, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKNN := fmt.Sprintf("%d neighbors", len(neighbors))

	// A dataset file for the load path.
	waterFile := filepath.Join(t.TempDir(), "water.json")
	if err := waterData.SaveFile(waterFile); err != nil {
		t.Fatal(err)
	}

	s := startServer(t, Config{MaxConcurrent: 16, QueueWait: 5 * time.Second})
	addr := s.Addr().String()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("client %d: "+format, append([]any{i}, args...)...)
			}
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				fail("dial: %v", err)
				return
			}
			defer conn.Close()
			c := &wireClient{conn: conn, r: bufio.NewReader(conn)}
			if _, err := c.r.ReadString('\n'); err != nil {
				fail("greeting: %v", err)
				return
			}
			run := func(cmd string) ([]string, bool) {
				if err := c.send(cmd); err != nil {
					fail("send %q: %v", cmd, err)
					return nil, false
				}
				lines, status, err := c.readResponse()
				if err != nil || status != "ok" {
					fail("%q -> status %q err %v (lines %q)", cmd, status, err, lines)
					return nil, false
				}
				return lines, true
			}
			count := func(lines []string, format string) int {
				for _, l := range lines {
					var n int
					if _, err := fmt.Sscanf(l, format, &n); err == nil {
						return n
					}
				}
				fail("no %q line in %q", format, lines)
				return -1
			}

			// Every client generates the shared layers (idempotent
			// rebinds), loads its own copy from disk, and runs the full
			// query mix, checking each answer against the ground truth.
			mine := fmt.Sprintf("w%d", i)
			steps := []struct {
				cmd    string
				format string // "" = no count check
				want   int
			}{
				{fmt.Sprintf("gen water WATER %g", e2eScale), "", 0},
				{fmt.Sprintf("gen prism PRISM %g", e2eScale), "", 0},
				{fmt.Sprintf("load %s %s", mine, waterFile), "", 0},
				{"join water prism hw", "join: %d results", wantJoin},
				{"join water prism sw", "join: %d results", wantJoin},
				{fmt.Sprintf("join %s prism hw", mine), "join: %d results", wantJoin},
				{"pjoin water prism 2", "pjoin: %d results", wantJoin},
				{fmt.Sprintf("select water %s", e2eQueryWKT), "select: %d results", wantSelect},
				{"layers", "", 0},
			}
			for _, st := range steps {
				lines, ok := run(st.cmd)
				if !ok {
					return
				}
				if st.format != "" {
					if got := count(lines, st.format); got != st.want {
						fail("%q = %d results, want %d", st.cmd, got, st.want)
						return
					}
				}
			}
			lines, ok := run(fmt.Sprintf("knn water %s 5", e2eQueryWKT))
			if !ok {
				return
			}
			if len(lines) == 0 || !strings.HasPrefix(lines[0], wantKNN) {
				fail("knn header = %q, want prefix %q", lines, wantKNN)
				return
			}
			for _, nb := range neighbors {
				found := false
				for _, l := range lines[1:] {
					if strings.Contains(l, fmt.Sprintf("object %-6d", nb.ID)) {
						found = true
						break
					}
				}
				if !found {
					fail("knn response missing neighbor %d: %q", nb.ID, lines)
					return
				}
			}
			if err := c.send("quit"); err == nil {
				_, _, _ = c.readResponse()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The catalog holds the 2 shared + 8 per-client layers.
	if got := s.Catalog().Len(); got != 2+clients {
		t.Errorf("catalog has %d layers, want %d", got, 2+clients)
	}
	m := s.Metrics()
	if got := m.ConnsAccepted.Load(); got != clients {
		t.Errorf("ConnsAccepted = %d, want %d", got, clients)
	}
	if m.QueriesOK.Load() == 0 || m.Candidates.Load() == 0 {
		t.Errorf("metrics did not aggregate: ok=%d candidates=%d",
			m.QueriesOK.Load(), m.Candidates.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitFor(t, "sessions to exit", func() bool { return m.SessionsActive.Load() == 0 })
	waitGoroutines(t, baseline)
}

// TestShutdownDrainsPartialResults proves the drain contract on the wire:
// a query in flight when Shutdown begins is cancelled (DrainGrace < 0)
// and its session still delivers the partial results with a partial:
// status line before the connection closes.
func TestShutdownDrainsPartialResults(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Every refinement test stalls 2ms, so the 800+-candidate join runs
	// long enough to be shut down mid-flight, and the serial join's
	// cancellation stride (64 tests) fires well before completion.
	inj := faultinject.New(7).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 1).
		SetDelay(2 * time.Millisecond)
	s := New(Config{Addr: "127.0.0.1:0", Faults: inj, DrainGrace: -1})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c := dialWire(t, s.Addr().String())
	c.mustOK(t, fmt.Sprintf("gen water WATER %g", e2eScale))
	c.mustOK(t, fmt.Sprintf("gen prism PRISM %g", e2eScale))

	if err := c.send("join water prism hw"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join to enter refinement", func() bool {
		return s.lim.inFlight() > 0 && inj.Fired(faultinject.SiteIntersects, faultinject.KindDelay) > 0
	})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	lines, status, err := c.readResponse()
	if err != nil {
		t.Fatalf("reading drained response: %v (lines %q)", err, lines)
	}
	if !strings.HasPrefix(status, "partial:") {
		t.Fatalf("status = %q, want partial:..., lines %q", status, lines)
	}
	results := countFrom(t, lines, "join: %d results")
	t.Logf("drained join returned %d partial results, status %q", results, status)
	noted := false
	for _, l := range lines {
		if strings.HasPrefix(l, "note:") && strings.Contains(l, "partial") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("no interruption note in drained output %q", lines)
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.Metrics().QueriesPartial.Load(); got != 1 {
		t.Errorf("QueriesPartial = %d, want 1", got)
	}
	waitGoroutines(t, baseline)
}
