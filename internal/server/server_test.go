package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/query"
)

func testLayer(t *testing.T, name string, scale float64) *query.Layer {
	t.Helper()
	d, err := data.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return query.NewLayer(d)
}

func TestCatalogCopyOnWrite(t *testing.T) {
	c := NewCatalog(0)
	water := testLayer(t, "WATER", 0.01)
	if err := c.Set("water", water); err != nil {
		t.Fatal(err)
	}

	// A view pinned before a later write keeps the old generation.
	view := c.View()
	prism := testLayer(t, "PRISM", 0.01)
	if err := c.Set("prism", prism); err != nil {
		t.Fatal(err)
	}
	if _, ok := view.Get("prism"); ok {
		t.Error("pinned view sees a layer published after it was taken")
	}
	if l, ok := view.Get("water"); !ok || l != water {
		t.Error("pinned view lost the layer it was taken with")
	}
	if _, ok := c.Get("prism"); !ok {
		t.Error("live catalog missing newly published layer")
	}
	// Writes through the view reach the live catalog.
	if err := view.Set("water2", water); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("water2"); !ok {
		t.Error("view.Set did not publish to live catalog")
	}
	if got := c.Names(); strings.Join(got, ",") != "prism,water,water2" {
		t.Errorf("Names() = %v", got)
	}
}

func TestCatalogFull(t *testing.T) {
	c := NewCatalog(1)
	water := testLayer(t, "WATER", 0.01)
	if err := c.Set("a", water); err != nil {
		t.Fatal(err)
	}
	err := c.Set("b", water)
	var cf *CatalogFullError
	if !errors.As(err, &cf) || cf.Limit != 1 {
		t.Fatalf("second Set: err = %v, want *CatalogFullError{Limit: 1}", err)
	}
	// Rebinding an existing name is always allowed.
	if err := c.Set("a", water); err != nil {
		t.Errorf("rebind existing name: %v", err)
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d", c.Len())
	}
}

func TestCatalogConcurrentReadersAndWriters(t *testing.T) {
	c := NewCatalog(0)
	water := testLayer(t, "WATER", 0.01)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := c.Set(fmt.Sprintf("l%d-%d", i, j), water); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				v := c.View()
				for _, n := range v.Names() {
					if _, ok := v.Get(n); !ok {
						t.Error("name listed but not gettable in same view")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 200 {
		t.Errorf("Len() = %d, want 200", c.Len())
	}
}

func TestLimiterOverload(t *testing.T) {
	l := newLimiter(2, 0, 0)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	err := l.acquire(ctx)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Limit != 2 {
		t.Fatalf("third acquire: err = %v, want *OverloadError{Limit: 2}", err)
	}
	if l.inFlight() != 2 {
		t.Errorf("inFlight = %d", l.inFlight())
	}
	l.release()
	if err := l.acquire(ctx); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
}

func TestLimiterBoundedWait(t *testing.T) {
	l := newLimiter(1, 50*time.Millisecond, 0)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A slot freeing within the grace period admits the waiter.
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.release()
	}()
	if err := l.acquire(context.Background()); err != nil {
		t.Errorf("acquire within grace: %v", err)
	}
	// Grace elapsing without a free slot rejects with the wait recorded.
	start := time.Now()
	err := l.acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Wait != 50*time.Millisecond {
		t.Fatalf("err = %v, want OverloadError with Wait=50ms", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("rejected before the grace period elapsed")
	}
	// Context cancellation beats the grace timer.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled acquire: err = %v", err)
	}
}

func TestMetricsPrometheus(t *testing.T) {
	m := newMetrics()
	m.ConnsAccepted.Add(3)
	m.observe(query.Stats{Op: "join", Candidates: 100, Tests: 80, HWRejects: 60}, StatusOK, time.Second)
	m.observe(query.Stats{Op: "join"}, StatusPartial, time.Millisecond)
	m.observe(query.Stats{Op: "select"}, StatusError, 0)
	m.observe(query.Stats{Op: "pjoin"}, StatusOverload, 0)

	m.observe(query.Stats{Op: "join", SentinelChecks: 7, SentinelDisagreements: 2,
		BreakerTrips: 1, BreakerRecoveries: 1, BreakerOpenSkips: 40}, StatusOK, 0)
	m.observe(query.Stats{Op: "load", SigChecks: 30, SigRejects: 12,
		SnapshotBytes: 4096, SnapshotSections: 7, SnapshotMMap: true, SnapshotLoadMS: 1.5}, StatusOK, 0)
	m.observeFailure(&query.PartialError{Op: "join", Err: &query.DeadlineError{Budget: time.Second}})

	var sb strings.Builder
	m.WritePrometheus(&sb, Gauges{
		Admission: AdmissionStats{InFlight: 2, Queued: 3, Admitted: 9, Shed: 4,
			Timeouts: 1, WaitNanos: int64(time.Second / 2)},
		Layers:          5,
		WatchdogActive:  1,
		WatchdogCancels: 6,
	})
	out := sb.String()
	for _, want := range []string{
		"spatiald_connections_accepted_total 3",
		`spatiald_queries_total{status="ok"} 3`,
		`spatiald_queries_total{status="partial"} 1`,
		`spatiald_queries_total{status="error"} 1`,
		`spatiald_queries_total{status="overload"} 1`,
		"spatiald_commands_total 6",
		"spatiald_queries_in_flight 2",
		"spatiald_admission_queued 3",
		"spatiald_admission_admitted_total 9",
		"spatiald_admission_shed_total 4",
		"spatiald_admission_timeouts_total 1",
		"spatiald_admission_wait_seconds_total 0.5",
		"spatiald_watchdog_active 1",
		"spatiald_watchdog_cancels_total 6",
		"spatiald_deadline_expirations_total 1",
		"spatiald_catalog_layers 5",
		"spatiald_refine_candidates_total 100",
		"spatiald_refine_tests_total 80",
		"spatiald_refine_hw_rejects_total 60",
		"spatiald_sentinel_checks_total 7",
		"spatiald_sentinel_disagreements_total 2",
		"spatiald_breaker_trips_total 1",
		"spatiald_breaker_recoveries_total 1",
		"spatiald_breaker_open_skips_total 40",
		"spatiald_refine_sig_checks_total 30",
		"spatiald_refine_sig_rejects_total 12",
		"spatiald_snapshot_loads_total 1",
		"spatiald_snapshot_bytes_total 4096",
		"spatiald_snapshot_mmap_loads_total 1",
		"spatiald_snapshot_load_seconds_total 0.0015",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing metric line %q in:\n%s", want, out)
		}
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.HTTPAddr == "" {
		cfg.HTTPAddr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func httpGet(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestHTTPEndpoints(t *testing.T) {
	s := startServer(t, Config{})
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	code, body := httpGet(t, client, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// POST a gen, then GET a join: both paths hit the shared catalog.
	resp, err := client.Post(base+"/query", "application/json",
		strings.NewReader(`{"cmd": "gen water WATER 0.01"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Status != "ok" {
		t.Fatalf("POST gen = %d %+v", resp.StatusCode, qr)
	}
	if qr.Stats == nil || qr.Stats.Op != "gen" || qr.Stats.Results == 0 {
		t.Errorf("gen stats = %+v", qr.Stats)
	}

	resp, err = client.Post(base+"/query", "application/json",
		strings.NewReader(`{"cmd": "gen prism PRISM 0.01"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	code, body = httpGet(t, client, base+"/query?cmd=join+water+prism")
	if code != http.StatusOK {
		t.Fatalf("GET join = %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Status != "ok" || qr.Stats == nil || qr.Stats.Op != "join" || qr.Stats.Results == 0 {
		t.Errorf("join response = %+v", qr)
	}
	if !strings.Contains(qr.Output, "join: ") {
		t.Errorf("join output = %q", qr.Output)
	}

	// Hard errors are 400 with no stats.
	code, body = httpGet(t, client, base+"/query?cmd=join+nosuch+prism")
	if code != http.StatusBadRequest {
		t.Errorf("bad join = %d %s", code, body)
	}
	qr = QueryResponse{}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Status != "error" || qr.Error == "" || qr.Stats != nil {
		t.Errorf("error response = %+v", qr)
	}

	code, _ = httpGet(t, client, base+"/query?cmd=")
	if code != http.StatusBadRequest {
		t.Errorf("empty cmd = %d", code)
	}

	code, body = httpGet(t, client, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "spatiald_commands_total") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "spatiald_catalog_layers 2") {
		t.Errorf("metrics missing catalog gauge:\n%s", body)
	}
	// The degradation/governance metric families must always be exposed,
	// even when zero, so dashboards and alerts can rely on their presence.
	for _, name := range []string{
		"spatiald_sentinel_checks_total",
		"spatiald_sentinel_disagreements_total",
		"spatiald_breaker_trips_total",
		"spatiald_breaker_recoveries_total",
		"spatiald_breaker_open_skips_total",
		"spatiald_admission_queued",
		"spatiald_admission_shed_total",
		"spatiald_watchdog_active",
		"spatiald_watchdog_cancels_total",
		"spatiald_deadline_expirations_total",
	} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("metrics missing %s:\n%s", name, body)
		}
	}
}

// TestHTTPOverload occupies every admission slot and checks the typed
// 503 rejection, then frees them and checks recovery.
func TestHTTPOverload(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 2})
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	httpGet(t, client, base+"/query?cmd=gen+water+WATER+0.01")
	httpGet(t, client, base+"/query?cmd=gen+prism+PRISM+0.01")

	for i := 0; i < 2; i++ {
		if err := s.lim.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	code, body := httpGet(t, client, base+"/query?cmd=join+water+prism")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded join = %d %s", code, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Status != "overload" || !strings.Contains(qr.Error, "overloaded") {
		t.Errorf("overload response = %+v", qr)
	}
	// Admin commands bypass admission control even under full load.
	code, _ = httpGet(t, client, base+"/query?cmd=layers")
	if code != http.StatusOK {
		t.Errorf("layers under load = %d", code)
	}

	s.lim.release()
	s.lim.release()
	code, _ = httpGet(t, client, base+"/query?cmd=join+water+prism")
	if code != http.StatusOK {
		t.Errorf("join after slots freed = %d", code)
	}
	if got := s.Metrics().Overloads.Load(); got != 1 {
		t.Errorf("Overloads = %d, want 1", got)
	}
}

func TestHealthzDraining(t *testing.T) {
	s := startServer(t, Config{})
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The HTTP listener is closed by Shutdown, so /healthz may refuse the
	// connection entirely — both refusal and a 503 count as "not ready".
	resp, err := client.Get(base + "/healthz")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz after shutdown = %d", resp.StatusCode)
		}
	}
}

func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	s := startServer(t, Config{AccessLog: logw})
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	httpGet(t, client, base+"/query?cmd=gen+water+WATER+0.01")
	httpGet(t, client, base+"/query?cmd=select+water+POLYGON+((0+0,+500+0,+500+500,+0+500))")

	mu.Lock()
	out := sb.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"op=select", "status=ok", "candidates=", "hw_rejects=", "sw_fallbacks=", "panics=", "quarantined=", "remote="} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("log line missing %q: %s", want, lines[1])
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDoubleStartAndShutdownIdempotent(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start succeeded")
	}
	ctx := context.Background()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}
