package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/query"
	"repro/internal/shellcmd"
)

// QueryResponse is the JSON shape of POST/GET /query: the command's
// shell-identical text output, its terminal status, and the uniform
// per-query statistics record.
type QueryResponse struct {
	Status string       `json:"status"` // "ok", "partial", "error", "overload"
	Output string       `json:"output,omitempty"`
	Error  string       `json:"error,omitempty"`
	Stats  *query.Stats `json:"stats,omitempty"`
}

func (s *Server) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stream", s.handleStream)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := Gauges{
		Admission:       s.lim.snapshot(),
		Layers:          s.catalog.Len(),
		WatchdogActive:  s.dog.active(),
		WatchdogCancels: s.dog.cancelCount(),
	}
	if s.cfg.Ingest != nil {
		t := s.cfg.Ingest.Totals()
		g.Ingest = &t
	}
	if s.cfg.Coordinator != nil {
		g.Shards = s.cfg.Coordinator.Health()
		t := s.cfg.Coordinator.Totals()
		g.Failover = &t
	}
	s.metrics.WritePrometheus(w, g)
}

// handleQuery runs one command per request: the cmd string comes from a
// JSON body {"cmd": "..."} on POST or the ?cmd= parameter on GET. Each
// request gets a fresh single-command engine over the shared catalog
// with the server's default settings, so HTTP callers are stateless
// peers of TCP sessions — same grammar, same admission control, same
// stats.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.HTTPRequests.Add(1)
	var cmd string
	switch r.Method {
	case http.MethodPost:
		var body struct {
			Cmd string `json:"cmd"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<24)).Decode(&body); err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{Status: "error", Error: "bad request body: " + err.Error()})
			return
		}
		cmd = body.Cmd
	case http.MethodGet:
		cmd = r.URL.Query().Get("cmd")
	default:
		writeJSON(w, http.StatusMethodNotAllowed, QueryResponse{Status: "error", Error: "use GET ?cmd= or POST {\"cmd\": ...}"})
		return
	}
	verb := shellcmd.Verb(cmd)
	if verb == "" {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Status: "error", Error: "empty command"})
		return
	}

	start := time.Now()
	if shellcmd.IsQuery(verb) {
		if err := s.lim.acquire(s.baseCtx); err != nil {
			st := query.Stats{Op: verb}
			status := StatusError
			var oe *OverloadError
			if errors.As(err, &oe) {
				status = StatusOverload
				if oe.RetryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
				}
			}
			s.metrics.observe(st, status, time.Since(start))
			s.logCommand(r.RemoteAddr, st, status, time.Since(start))
			writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Status: string(status), Error: err.Error()})
			return
		}
		defer s.lim.release()
	}

	// The command context follows server shutdown (baseCtx), the client
	// going away (request context), and — for query verbs — the session
	// watchdog, whose stuck-query cause flows into the partial result.
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	defer cancel(nil)
	stop := context.AfterFunc(r.Context(), func() { cancel(nil) })
	defer stop()
	if shellcmd.IsQuery(verb) && s.dog.enabled() {
		id := s.dog.register(verb, cancel, nil)
		defer s.dog.deregister(id)
	}

	eng := s.newEngine()
	var buf bytes.Buffer
	res, err := eng.Exec(ctx, cmd, &buf)

	st := res.Stats
	if st.Op == "" {
		st.Op = verb
	}
	dur := time.Since(start)
	resp := QueryResponse{Status: string(StatusOK), Output: buf.String(), Stats: &st}
	code := http.StatusOK
	status := StatusOK
	switch {
	case err != nil:
		status = StatusError
		resp.Status = string(StatusError)
		resp.Error = err.Error()
		resp.Stats = nil
		code = http.StatusBadRequest
	case res.Partial != nil:
		status = StatusPartial
		resp.Status = string(StatusPartial)
		resp.Error = res.Partial.Error()
		s.metrics.observeFailure(res.Partial)
	}
	s.metrics.observe(st, status, dur)
	s.logCommand(r.RemoteAddr, st, status, dur)
	// The response write is deadline-bounded like every other client-bound
	// write: a client that stopped reading must not pin the handler (and,
	// for query verbs, the admission slot held until this handler returns).
	if d := s.writeTimeout(); d > 0 {
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(d))
	}
	writeJSON(w, code, resp)
}

// handleStream is /query's streaming sibling: it runs one command and
// delivers the output as a chunked plain-text stream in the TCP wire
// framing — data lines flushed to the client as the command produces
// them, then exactly one status line ("ok" / "partial: <reason>" /
// "error: <reason>"). Admission control, watchdog coverage, and metrics
// match /query; a client that goes away mid-stream cancels the command
// so its sinks wind down. Pre-execution failures (bad request,
// overload) still get proper HTTP status codes — once streaming starts
// the response is committed as 200 and the trailing status line is
// authoritative.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.HTTPRequests.Add(1)
	var cmd string
	switch r.Method {
	case http.MethodPost:
		var body struct {
			Cmd string `json:"cmd"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<24)).Decode(&body); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		cmd = body.Cmd
	case http.MethodGet:
		cmd = r.URL.Query().Get("cmd")
	default:
		http.Error(w, "use GET ?cmd= or POST {\"cmd\": ...}", http.StatusMethodNotAllowed)
		return
	}
	verb := shellcmd.Verb(cmd)
	if verb == "" {
		http.Error(w, "empty command", http.StatusBadRequest)
		return
	}

	start := time.Now()
	if shellcmd.IsQuery(verb) {
		if err := s.lim.acquire(s.baseCtx); err != nil {
			st := query.Stats{Op: verb}
			status := StatusError
			var oe *OverloadError
			if errors.As(err, &oe) {
				status = StatusOverload
				if oe.RetryAfter > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
				}
			}
			s.metrics.observe(st, status, time.Since(start))
			s.logCommand(r.RemoteAddr, st, status, time.Since(start))
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer s.lim.release()
	}

	ctx, cancel := context.WithCancelCause(s.baseCtx)
	defer cancel(nil)
	stop := context.AfterFunc(r.Context(), func() { cancel(nil) })
	defer stop()
	if shellcmd.IsQuery(verb) && s.dog.enabled() {
		id := s.dog.register(verb, cancel, nil)
		defer s.dog.deregister(id)
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	fw := &flushWriter{w: w, rc: http.NewResponseController(w), d: s.writeTimeout(), cancel: cancel}
	eng := s.newEngine()
	res, err := eng.Exec(ctx, cmd, fw)

	st := res.Stats
	if st.Op == "" {
		st.Op = verb
	}
	status, statusLine := StatusOK, "ok"
	switch {
	case err != nil:
		status, statusLine = StatusError, "error: "+err.Error()
	case res.Partial != nil:
		status, statusLine = StatusPartial, "partial: "+res.Partial.Error()
		s.metrics.observeFailure(res.Partial)
	}
	dur := time.Since(start)
	s.metrics.observe(st, status, dur)
	s.logCommand(r.RemoteAddr, st, status, dur)
	if fw.err == nil {
		_, _ = fw.Write([]byte(statusLine + "\n"))
	}
}

// flushWriter streams Exec output over an HTTP response: each Write is
// pushed to the client immediately via the chunked encoder, and a
// failed write — the client hung up — is sticky and cancels the running
// command. Each write+flush carries its own deadline (http.Server has
// no per-flush WriteTimeout), so a client that merely stops reading
// fails the stream instead of pinning the handler and its admission
// slot in a write the context cancel cannot unblock.
type flushWriter struct {
	w      io.Writer
	rc     *http.ResponseController
	d      time.Duration // per-write deadline; 0 means unbounded
	cancel context.CancelCauseFunc
	err    error
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	if fw.d > 0 {
		// ErrNotSupported (a recording ResponseWriter in tests) just means
		// no deadline; real server connections support it.
		_ = fw.rc.SetWriteDeadline(time.Now().Add(fw.d))
	}
	n, err := fw.w.Write(p)
	if err != nil {
		fw.err = err
		if fw.cancel != nil {
			fw.cancel(err)
		}
		return n, err
	}
	if ferr := fw.rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
		fw.err = ferr
		if fw.cancel != nil {
			fw.cancel(ferr)
		}
		return n, ferr
	}
	return n, nil
}

// retryAfterSeconds converts an OverloadError's backoff hint to the
// whole-second Retry-After header value, rounding up so the header never
// understates the hint (minimum 1s: a zero header means "retry now").
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
