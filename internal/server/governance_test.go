package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/shellcmd"
)

// TestLimiterFIFOQueue checks that parked waiters are admitted in arrival
// order as slots free, with no barging by fresh arrivals.
func TestLimiterFIFOQueue(t *testing.T) {
	l := newLimiter(1, time.Second, 8)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const waiters = 4
	order := make(chan int, waiters)
	var done sync.WaitGroup
	for i := 0; i < waiters; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			if err := l.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			order <- i
			l.release()
		}(i)
		// Wait until this waiter is parked before launching the next, so
		// queue order (and thus expected admission order) is deterministic.
		waitForQueued(t, l, i+1)
	}

	l.release() // hand the slot down the queue
	done.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got waiter %d, want %d", got, want)
		}
		want++
	}
	if l.inFlight() != 0 || l.queued() != 0 {
		t.Errorf("after drain: inFlight=%d queued=%d", l.inFlight(), l.queued())
	}
	st := l.snapshot()
	if st.Admitted != int64(waiters+1) || st.Shed != 0 || st.Timeouts != 0 {
		t.Errorf("snapshot = %+v", st)
	}
	if st.WaitNanos <= 0 {
		t.Errorf("WaitNanos = %d, want > 0", st.WaitNanos)
	}
}

func waitForQueued(t *testing.T, l *limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for l.queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, l.queued())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestLimiterQueueBoundShedsWithHint fills the queue and checks that the
// next arrival is shed immediately with a parseable retry-after hint.
func TestLimiterQueueBoundShedsWithHint(t *testing.T) {
	l := newLimiter(1, time.Second, 2)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go func() {
			_ = l.acquire(ctx) // parks until cancel
		}()
	}
	waitForQueued(t, l, 2)

	err := l.acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.Queued != 2 {
		t.Errorf("Queued = %d, want 2", oe.Queued)
	}
	if oe.RetryAfter < 100*time.Millisecond || oe.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter = %v outside clamp window", oe.RetryAfter)
	}
	// The wire contract: the hint is the text after the last "retry after ".
	msg := oe.Error()
	i := strings.LastIndex(msg, "retry after ")
	if i < 0 {
		t.Fatalf("message %q missing retry-after hint", msg)
	}
	d, perr := time.ParseDuration(msg[i+len("retry after "):])
	if perr != nil || d != oe.RetryAfter {
		t.Errorf("parsed hint %v (err %v), want %v", d, perr, oe.RetryAfter)
	}
	if got := l.snapshot().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}
	cancel()
}

// TestLimiterCancelledWaiterHandsSlotOn covers the grant-vs-cancel race:
// a waiter cancelled after being granted must pass the slot on, not leak it.
func TestLimiterCancelledWaiterHandsSlotOn(t *testing.T) {
	l := newLimiter(1, time.Second, 4)
	for i := 0; i < 200; i++ {
		if err := l.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() { errc <- l.acquire(ctx) }()
		waitForQueued(t, l, 1)
		// Race the grant against the cancellation.
		go l.release()
		go cancel()
		if err := <-errc; err == nil {
			l.release() // waiter won the race and owns the slot
		}
		// Whatever the interleaving, exactly zero slots must remain held.
		deadline := time.Now().Add(time.Second)
		for l.inFlight() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("iteration %d: inFlight=%d, slot leaked", i, l.inFlight())
			}
			time.Sleep(50 * time.Microsecond)
		}
		cancel()
	}
}

// TestWatchdogCancelsStuckQuery registers a long query directly with the
// watchdog and checks scan kills it with a typed cause.
func TestWatchdogCancelsStuckQuery(t *testing.T) {
	dog := newWatchdog(10 * time.Millisecond)
	ctx, cancel := context.WithCancelCause(context.Background())
	id := dog.register("join", cancel, nil)
	if id == 0 {
		t.Fatal("register returned 0 for enabled watchdog")
	}
	if n := dog.scan(time.Now()); n != 0 {
		t.Fatalf("premature scan killed %d", n)
	}
	if n := dog.scan(time.Now().Add(20 * time.Millisecond)); n != 1 {
		t.Fatalf("overdue scan killed %d, want 1", n)
	}
	<-ctx.Done()
	var se *StuckQueryError
	if cause := context.Cause(ctx); !errors.As(cause, &se) || se.Op != "join" {
		t.Fatalf("cause = %v, want *StuckQueryError{Op: join}", cause)
	}
	if !errors.Is(context.Cause(ctx), context.Canceled) {
		t.Error("StuckQueryError does not unwrap to context.Canceled")
	}
	dog.deregister(id) // double removal after a kill must be harmless
	if dog.active() != 0 || dog.cancelCount() != 1 {
		t.Errorf("active=%d cancels=%d", dog.active(), dog.cancelCount())
	}
}

// TestWatchdogKillReleasesAdmissionSlot runs a real server whose watchdog
// reaps a deliberately stalled query (every refinement test delayed 2ms,
// so the 800+-candidate join runs for seconds against a 30ms threshold),
// and checks the admission slot comes back, the registry empties, and the
// wire response is a partial carrying the stuck-query cause. Run under
// -race this also proves register/scan/deregister are data-race free
// against a live query.
func TestWatchdogKillReleasesAdmissionSlot(t *testing.T) {
	inj := faultinject.New(13).
		Inject(faultinject.SiteIntersects, faultinject.KindDelay, 1).
		SetDelay(2 * time.Millisecond)
	s := startServer(t, Config{
		MaxConcurrent:   1,
		WatchdogTimeout: 30 * time.Millisecond,
		Faults:          inj,
	})
	c := dialWire(t, s.Addr().String())
	c.mustOK(t, fmt.Sprintf("gen water WATER %g", e2eScale))
	c.mustOK(t, fmt.Sprintf("gen prism PRISM %g", e2eScale))

	lines, status := c.do(t, "join water prism hw")
	if !strings.HasPrefix(status, "partial: ") {
		t.Fatalf("status = %q (lines %q), want watchdog partial", status, lines)
	}
	if !strings.Contains(status, "watchdog cancelled stuck join query") {
		t.Errorf("partial without watchdog cause: %q", status)
	}
	if s.dog.cancelCount() == 0 {
		t.Error("watchdog cancel not counted")
	}

	// The slot and the registry must be clean, and the session must still
	// be usable for the next command.
	waitForIdle(t, s)
	if err := s.lim.acquire(context.Background()); err != nil {
		t.Fatalf("slot not reclaimed after watchdog kill: %v", err)
	}
	s.lim.release()
	c.mustOK(t, "layers")
}

func waitForIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.lim.inFlight() != 0 || s.dog.active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("not idle: inFlight=%d watchdogActive=%d", s.lim.inFlight(), s.dog.active())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueryTimeoutCeiling checks the server-imposed deadline end to end:
// a session cannot escape QueryTimeout by setting timeout 0, expiry
// surfaces as a partial whose message names the exhausted budget, and the
// deadline counter reaches /metrics.
func TestQueryTimeoutCeiling(t *testing.T) {
	s := startServer(t, Config{QueryTimeout: time.Nanosecond})
	c := dialWire(t, s.Addr().String())
	c.mustOK(t, fmt.Sprintf("gen water WATER %g", e2eScale))
	c.mustOK(t, fmt.Sprintf("gen prism PRISM %g", e2eScale))

	// timeout 0 would mean "no deadline" but the server ceiling still binds.
	c.mustOK(t, "timeout 0")
	_, status := c.do(t, "join water prism hw")
	if !strings.HasPrefix(status, "partial: ") || !strings.Contains(status, "wall-clock budget 1ns exhausted") {
		t.Errorf("status = %q, want deadline partial naming the budget", status)
	}
	if got := s.Metrics().DeadlineExpirations.Load(); got == 0 {
		t.Error("DeadlineExpirations not incremented")
	}
}

// TestEffectiveTimeoutCap checks the Settings-level min semantics directly.
func TestEffectiveTimeoutCap(t *testing.T) {
	cases := []struct {
		timeout, max, want time.Duration
	}{
		{0, 0, 0},
		{time.Second, 0, time.Second},
		{0, time.Minute, time.Minute},
		{time.Second, time.Minute, time.Second},
		{time.Hour, time.Minute, time.Minute},
	}
	for _, c := range cases {
		st := shellcmd.Settings{Timeout: c.timeout, MaxTimeout: c.max}
		if got := st.EffectiveTimeout(); got != c.want {
			t.Errorf("EffectiveTimeout(%v, %v) = %v, want %v", c.timeout, c.max, got, c.want)
		}
	}
}

// TestHTTPOverloadRetryAfter saturates admission and checks the 503
// carries both the Retry-After header and the parseable message hint.
func TestHTTPOverloadRetryAfter(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1})
	base := "http://" + s.HTTPAddr().String()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	httpGet(t, client, base+"/query?cmd=gen+water+WATER+0.01")
	httpGet(t, client, base+"/query?cmd=gen+prism+PRISM+0.01")

	if err := s.lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.lim.release()

	resp, err := client.Get(base + "/query?cmd=join+water+prism")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 missing Retry-After header")
	}
	secs, perr := strconv.Atoi(ra)
	if perr != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}
}
