package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func square(x, y, side float64) *geom.Polygon {
	return geom.MustPolygon(
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side),
	)
}

// star builds a random star-shaped polygon (always simple).
func star(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	step := 2 * math.Pi / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		a := float64(i)*step + rng.Float64()*step*0.9
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

func TestMinDistKnown(t *testing.T) {
	a := square(0, 0, 1)
	b := square(3, 0, 1) // gap of 2 along x
	for _, opt := range []Options{{}, {NoFrontier: true}, {NoClip: true}, {NoFrontier: true, NoClip: true}} {
		if got := MinDist(a, b, opt); math.Abs(got-2) > 1e-12 {
			t.Errorf("opt %+v: MinDist = %v, want 2", opt, got)
		}
	}
	diag := square(3, 3, 1) // corner gap sqrt(8)
	if got := MinDist(a, diag, Options{}); math.Abs(got-2*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal MinDist = %v", got)
	}
}

func TestMinDistIntersecting(t *testing.T) {
	a := square(0, 0, 2)
	overlapping := square(1, 1, 2)
	contained := square(0.5, 0.5, 0.5)
	touching := square(2, 0, 1)
	for _, q := range []*geom.Polygon{overlapping, contained, touching} {
		if got := MinDist(a, q, Options{}); got != 0 {
			t.Errorf("MinDist = %v, want 0 for intersecting polygons", got)
		}
		if got := MinDistBrute(a, q); got != 0 {
			t.Errorf("MinDistBrute = %v, want 0", got)
		}
	}
}

func TestWithinDistanceKnown(t *testing.T) {
	a := square(0, 0, 1)
	b := square(3, 0, 1)
	tests := []struct {
		d    float64
		want bool
	}{
		{1.9, false},
		{2.0, true},
		{2.5, true},
		{0, false},
	}
	for _, tc := range tests {
		if got := WithinDistance(a, b, tc.d, Options{}); got != tc.want {
			t.Errorf("WithinDistance(d=%v) = %v, want %v", tc.d, got, tc.want)
		}
	}
	if !WithinDistance(a, square(0.5, 0.5, 2), 0, Options{}) {
		t.Error("intersecting polygons should be within distance 0")
	}
}

func TestMinDistMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := range 500 {
		p := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		q := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		want := MinDistBrute(p, q)
		for _, opt := range []Options{{}, {NoFrontier: true}, {NoClip: true}} {
			if got := MinDist(p, q, opt); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d opt %+v: MinDist = %v, brute = %v", trial, opt, got, want)
			}
		}
	}
}

func TestWithinDistanceMatchesBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := range 500 {
		p := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		q := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(25))
		d := rng.Float64() * 10
		want := MinDistBrute(p, q) <= d
		for _, opt := range []Options{{}, {NoFrontier: true}, {NoClip: true}} {
			if got := WithinDistance(p, q, d, opt); got != want {
				t.Fatalf("trial %d opt %+v d=%v: got %v, want %v (brute dist %v)",
					trial, opt, d, got, want, MinDistBrute(p, q))
			}
		}
	}
}

func TestFrontierEdgesCulls(t *testing.T) {
	// Two squares side by side: the frontier of the left square w.r.t. the
	// right square must drop the left (back-facing) edge.
	a := square(0, 0, 1)
	b := square(5, 0, 1)
	edges := FrontierEdges(a, b, math.Inf(1), Options{})
	if len(edges) >= a.NumEdges() {
		t.Errorf("frontier did not cull any edge: %d of %d kept", len(edges), a.NumEdges())
	}
	// The right edge (x=1) must be kept.
	found := false
	for _, e := range edges {
		if e.A.X == 1 && e.B.X == 1 {
			found = true
		}
	}
	if !found {
		t.Error("frontier culled the facing edge")
	}
	// Clipping with a small radius removes everything (distance 4 > 1).
	if got := FrontierEdges(a, b, 1, Options{}); got != nil {
		t.Errorf("expected nil frontier under tight clip, got %d edges", len(got))
	}
}

func TestFrontierNeverCullsMinimizer(t *testing.T) {
	// Property: chain distance over frontier edges equals brute distance.
	rng := rand.New(rand.NewSource(23))
	for range 300 {
		p := star(rng, 0, 0, 2, 4+rng.Intn(20))
		q := star(rng, 6+rng.Float64()*4, rng.Float64()*6-3, 2, 4+rng.Intn(20))
		want := MinDistBrute(p, q)
		got := MinDist(p, q, Options{})
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("frontier culled the minimizer: %v vs %v", got, want)
		}
	}
}

func BenchmarkMinDist(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := star(rng, 0, 0, 5, 200)
	q := star(rng, 20, 0, 5, 200)
	b.Run("optimized", func(b *testing.B) {
		for range b.N {
			MinDist(p, q, Options{})
		}
	})
	b.Run("noFrontier", func(b *testing.B) {
		for range b.N {
			MinDist(p, q, Options{NoFrontier: true})
		}
	})
	b.Run("brute", func(b *testing.B) {
		for range b.N {
			MinDistBrute(p, q)
		}
	})
}
