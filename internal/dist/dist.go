// Package dist implements the software distance refinement step for
// within-distance joins (buffer queries): a version of Chan's minDist
// algorithm augmented with the two optimizations described in §4.1.1 of the
// paper:
//
//  1. early exit as soon as the running minimum drops to the query
//     distance D, and
//  2. restriction of each polygon's frontier chain to the parts that
//     intersect the other object's MBR extended by D.
//
// The frontier chain of P with respect to Q is the subset of P's edges that
// face Q: an edge whose outward normal points away from every point of
// MBR(Q) cannot contain the closest point of P to Q (the minimizer's
// separation direction lies in the boundary's outward normal cone), so
// back-facing edges are culled before any edge-pair distances are computed.
//
// Distances are region distances: two polygons that intersect (including
// one containing the other) are at distance zero.
package dist

import (
	"math"

	"repro/internal/geom"
	"repro/internal/sweep"
)

// Options toggle the minDist optimizations, mainly for the ablation
// benchmarks; the zero value enables everything.
type Options struct {
	// NoFrontier disables back-face culling of edges.
	NoFrontier bool
	// NoClip disables restricting edges to the other MBR extended by D.
	NoClip bool
}

// WithinDistance reports whether the regions of p and q are within
// distance d of each other. It is the software distance test of the
// evaluation: polygon intersection handling, frontier-chain extraction,
// MBR-extension clipping, and early exit at d.
func WithinDistance(p, q *geom.Polygon, d float64, opt Options) bool {
	if p.Bounds().Dist(q.Bounds()) > d {
		return false // MBR distance lower-bounds object distance
	}
	if p.Bounds().Intersects(q.Bounds()) && sweep.PolygonsIntersect(p, q, sweep.Options{}) {
		return true // intersecting regions are at distance zero
	}
	return chainDist(p, q, d, opt) <= d
}

// MinDist returns the region distance between p and q: zero when they
// intersect, otherwise the minimum boundary-to-boundary distance.
func MinDist(p, q *geom.Polygon, opt Options) float64 {
	if p.Bounds().Intersects(q.Bounds()) && sweep.PolygonsIntersect(p, q, sweep.Options{}) {
		return 0
	}
	return chainDist(p, q, math.Inf(1), opt)
}

// BoundaryWithin reports whether the boundary chains of p and q come
// within distance d of each other. The caller must have already excluded
// the containment case (boundaries far apart but region distance zero);
// given that, boundary distance equals region distance. This is the entry
// point the hardware-assisted tester uses after its own point-in-polygon
// and boundary-crossing checks.
func BoundaryWithin(p, q *geom.Polygon, d float64, opt Options) bool {
	return chainDist(p, q, d, opt) <= d
}

// Scratch holds the frontier-edge buffers of a chain-distance
// computation, reused across calls so a refinement worker performing
// millions of distance tests does not allocate per pair. The zero value
// is ready to use; a Scratch is not safe for concurrent use.
type Scratch struct {
	pe, qe []geom.Segment
}

// BoundaryWithinScratch is BoundaryWithin appending frontier edges into
// s's reusable buffers instead of fresh slices.
func BoundaryWithinScratch(p, q *geom.Polygon, d float64, opt Options, s *Scratch) bool {
	s.pe = FrontierEdgesInto(s.pe[:0], p, q, d, opt)
	if len(s.pe) == 0 {
		return false // every candidate edge pruned: distance exceeds d
	}
	s.qe = FrontierEdgesInto(s.qe[:0], q, p, d, opt)
	if len(s.qe) == 0 {
		return false
	}
	return pairDist(s.pe, s.qe, d) <= d
}

// MinDistBrute returns the region distance computed over all edge pairs
// with no pruning. The testing oracle.
func MinDistBrute(p, q *geom.Polygon) float64 {
	if p.Bounds().Intersects(q.Bounds()) && sweep.PolygonsIntersect(p, q, sweep.Options{}) {
		return 0
	}
	best := math.Inf(1)
	for i := range p.NumEdges() {
		ei := p.Edge(i)
		for j := range q.NumEdges() {
			if d := ei.DistSq(q.Edge(j)); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// chainDist computes the minimum boundary distance between p and q,
// stopping early once the running minimum is ≤ earlyExit. When clipping or
// frontier culling removes every candidate edge the distance is known to
// exceed earlyExit and +Inf is returned.
func chainDist(p, q *geom.Polygon, earlyExit float64, opt Options) float64 {
	pe := FrontierEdges(p, q, earlyExit, opt)
	if len(pe) == 0 {
		return math.Inf(1)
	}
	qe := FrontierEdges(q, p, earlyExit, opt)
	if len(qe) == 0 {
		return math.Inf(1)
	}
	return pairDist(pe, qe, earlyExit)
}

// pairDist returns the minimum distance over all edge pairs, with the
// MBR-distance skip and the early exit at earlyExit.
func pairDist(pe, qe []geom.Segment, earlyExit float64) float64 {
	bestSq := math.Inf(1)
	exitSq := math.Inf(-1) // never exit early unless a finite bound is given
	if !math.IsInf(earlyExit, 1) {
		exitSq = earlyExit * earlyExit
	}
	for _, ep := range pe {
		bp := ep.Bounds()
		for _, eq := range qe {
			// Skip pairs whose segment MBRs are already farther than the
			// current best; cheap and preserves exactness.
			if dd := bp.Dist(eq.Bounds()); dd*dd >= bestSq {
				continue
			}
			if d := ep.DistSq(eq); d < bestSq {
				bestSq = d
				if bestSq <= exitSq {
					return math.Sqrt(bestSq)
				}
			}
		}
	}
	return math.Sqrt(bestSq)
}

// FrontierEdges returns the edges of p that can contain the closest point
// of p to q under a within-distance search radius d (use +Inf for an
// unbounded minDist computation): edges clipped to MBR(q) extended by d,
// with strictly back-facing edges culled. Options can disable either
// reduction.
func FrontierEdges(p, q *geom.Polygon, d float64, opt Options) []geom.Segment {
	return FrontierEdgesInto(nil, p, q, d, opt)
}

// FrontierEdgesInto is FrontierEdges appending into a caller-provided
// buffer (reset to length zero first), for allocation-free hot paths.
func FrontierEdgesInto(out []geom.Segment, p, q *geom.Polygon, d float64, opt Options) []geom.Segment {
	clip := geom.EmptyRect()
	useClip := !opt.NoClip && !math.IsInf(d, 1)
	if useClip {
		clip = q.Bounds().Expand(d)
		if !clip.Intersects(p.Bounds()) {
			return nil
		}
	}
	ccw := p.SignedArea() > 0
	target := q.Bounds()
	corners := target.Corners()
	for i := range p.NumEdges() {
		e := p.Edge(i)
		if useClip && !clip.IntersectsSegment(e) {
			continue
		}
		if !opt.NoFrontier && backFacing(e, ccw, corners) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// backFacing reports whether edge e faces away from every corner of the
// target MBR: dot(n, c-x) ≤ 0 for the outward normal n, both endpoints x,
// and all corners c. Dot products are linear, so checking the extreme
// points covers every point of the edge and of the MBR.
func backFacing(e geom.Segment, ccw bool, corners [4]geom.Point) bool {
	dir := e.B.Sub(e.A)
	// For a CCW polygon the interior is to the left of each directed edge,
	// so the outward normal is the right normal (dy, -dx).
	n := geom.Pt(dir.Y, -dir.X)
	if !ccw {
		n = geom.Pt(-dir.Y, dir.X)
	}
	for _, c := range corners {
		if n.Dot(c.Sub(e.A)) > 0 || n.Dot(c.Sub(e.B)) > 0 {
			return false
		}
	}
	return true
}
