package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickWithinDistanceIsThreshold: property over seeds — the optimized
// within-distance test is exactly the brute-force distance thresholded at
// d, for any option combination.
func TestQuickWithinDistanceIsThreshold(t *testing.T) {
	prop := func(seed int64, dRaw uint16, noFrontier, noClip bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(20))
		q := star(rng, rng.Float64()*20, rng.Float64()*20, 0.5+rng.Float64()*3, 3+rng.Intn(20))
		d := float64(dRaw) / 4096 * 15
		opt := Options{NoFrontier: noFrontier, NoClip: noClip}
		return WithinDistance(p, q, d, opt) == (MinDistBrute(p, q) <= d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinDistSymmetry: region distance is symmetric and agrees with
// brute force.
func TestQuickMinDistSymmetry(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := star(rng, 0, 0, 1+rng.Float64()*3, 3+rng.Intn(15))
		q := star(rng, rng.Float64()*10, rng.Float64()*10, 1+rng.Float64()*3, 3+rng.Intn(15))
		pq := MinDist(p, q, Options{})
		qp := MinDist(q, p, Options{})
		diff := pq - qp
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
