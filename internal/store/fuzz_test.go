package store

import (
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// FuzzSnapshotOpen drives the reader with arbitrary bytes: every input
// must either open into a fully usable snapshot or fail with an error —
// never panic, never hang, never allocate unboundedly. Seeds include a
// valid snapshot (so the fuzzer mutates real structure, reaching the
// deep section parsers) and a handful of near-valid corruptions.
func FuzzSnapshotOpen(f *testing.F) {
	// A tiny handcrafted dataset keeps the valid seed around 2 KB: large
	// seeds throttle the mutation engine to a crawl, and the deep section
	// parsers are reachable through a small snapshot just as well.
	rng := rand.New(rand.NewSource(41))
	objs := make([]*geom.Polygon, 6)
	for i := range objs {
		n := 5 + rng.Intn(30)
		pts := make([]geom.Point, n)
		for j := range pts {
			a := 2 * math.Pi * float64(j) / float64(n)
			r := 5 + 5*rng.Float64()
			pts[j] = geom.Pt(20+float64(i)*15+r*math.Cos(a), 20+r*math.Sin(a))
		}
		objs[i] = geom.MustPolygon(pts...)
	}
	d := &data.Dataset{Name: "fuzzseed", Objects: objs}
	path := filepath.Join(f.TempDir(), "seed.snap")
	if _, err := Save(path, d, SaveOptions{SigRes: 8}); err != nil {
		f.Fatalf("save seed: %v", err)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		f.Fatalf("open seed: %v", err)
	}
	raw := append([]byte(nil), s.raw...)
	s.Close()

	f.Add(raw)
	f.Add([]byte(Magic))
	f.Add(raw[:headerSize])
	trunc := append([]byte(nil), raw[:len(raw)/2]...)
	f.Add(trunc)
	skew := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(skew[8:], 99)
	f.Add(skew)
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xFF
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := OpenBytes(b)
		if err != nil {
			if s != nil {
				t.Fatalf("snapshot returned alongside error %v", err)
			}
			return
		}
		// An accepted snapshot must be fully traversable: every accessor
		// the query layer uses has to hold up.
		ds := s.Dataset()
		for i, p := range ds.Objects {
			if p.NumVerts() < 3 {
				t.Fatalf("object %d has %d vertices after successful open", i, p.NumVerts())
			}
			_ = p.Bounds()
		}
		tree, err := s.Tree()
		if err != nil {
			t.Fatalf("accepted snapshot has unusable tree: %v", err)
		}
		tree.Search(geom.R(-1e12, -1e12, 1e12, 1e12), func(e rtree.Entry) bool { return true })
		for i := range ds.Objects {
			_ = s.EdgeBoxes(i)
			sig := s.Signature(i)
			if s.HasSignatures() && !sig.Valid() {
				t.Fatalf("stored signature %d invalid", i)
			}
		}
	})
}
