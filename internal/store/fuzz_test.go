package store

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// FuzzSnapshotOpen drives the reader with arbitrary bytes: every input
// must either open into a fully usable snapshot or fail with an error —
// never panic, never hang, never allocate unboundedly. Seeds include a
// valid snapshot (so the fuzzer mutates real structure, reaching the
// deep section parsers) and a handful of near-valid corruptions.
func FuzzSnapshotOpen(f *testing.F) {
	// A tiny handcrafted dataset keeps the valid seed around 2 KB: large
	// seeds throttle the mutation engine to a crawl, and the deep section
	// parsers are reachable through a small snapshot just as well.
	rng := rand.New(rand.NewSource(41))
	objs := make([]*geom.Polygon, 6)
	for i := range objs {
		n := 5 + rng.Intn(30)
		pts := make([]geom.Point, n)
		for j := range pts {
			a := 2 * math.Pi * float64(j) / float64(n)
			r := 5 + 5*rng.Float64()
			pts[j] = geom.Pt(20+float64(i)*15+r*math.Cos(a), 20+r*math.Sin(a))
		}
		objs[i] = geom.MustPolygon(pts...)
	}
	d := &data.Dataset{Name: "fuzzseed", Objects: objs}
	path := filepath.Join(f.TempDir(), "seed.snap")
	if _, err := Save(path, d, SaveOptions{SigRes: 8}); err != nil {
		f.Fatalf("save seed: %v", err)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		f.Fatalf("open seed: %v", err)
	}
	raw := append([]byte(nil), s.raw...)
	s.Close()

	f.Add(raw)
	f.Add([]byte(Magic))
	f.Add(raw[:headerSize])
	trunc := append([]byte(nil), raw[:len(raw)/2]...)
	f.Add(trunc)
	skew := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(skew[8:], 99)
	f.Add(skew)
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xFF
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := OpenBytes(b)
		if err != nil {
			if s != nil {
				t.Fatalf("snapshot returned alongside error %v", err)
			}
			return
		}
		// An accepted snapshot must be fully traversable: every accessor
		// the query layer uses has to hold up.
		ds := s.Dataset()
		for i, p := range ds.Objects {
			if p.NumVerts() < 3 {
				t.Fatalf("object %d has %d vertices after successful open", i, p.NumVerts())
			}
			_ = p.Bounds()
		}
		tree, err := s.Tree()
		if err != nil {
			t.Fatalf("accepted snapshot has unusable tree: %v", err)
		}
		tree.Search(geom.R(-1e12, -1e12, 1e12, 1e12), func(e rtree.Entry) bool { return true })
		for i := range ds.Objects {
			_ = s.EdgeBoxes(i)
			sig := s.Signature(i)
			if s.HasSignatures() && !sig.Valid() {
				t.Fatalf("stored signature %d invalid", i)
			}
		}
		if s.HasIntervals() {
			col := s.Intervals()
			if col.Len() != len(ds.Objects) {
				t.Fatalf("accepted interval column covers %d of %d objects", col.Len(), len(ds.Objects))
			}
			for i := range ds.Objects {
				if err := col.Spans(i).Validate(col.Grid.Order); err != nil {
					t.Fatalf("accepted interval list %d invalid: %v", i, err)
				}
			}
		}
	})
}

// FuzzIntervalSection drives the interval-section parser past the CRC
// shield: the fuzzer mutates only the section payload and the harness
// splices it into an otherwise-valid snapshot, recomputing the section
// and table CRCs, so every mutation reaches the structural validators.
// Any input must either be rejected with a typed *FormatError before
// large allocations, or open into a column whose every span list
// validates against its grid — never a panic, never a half-loaded column.
func FuzzIntervalSection(f *testing.F) {
	d := fuzzDataset()
	path := filepath.Join(f.TempDir(), "seed.snap")
	if _, err := Save(path, d, SaveOptions{SigRes: 8}); err != nil {
		f.Fatalf("save seed: %v", err)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		f.Fatalf("open seed: %v", err)
	}
	raw := append([]byte(nil), s.raw...)
	s.Close()

	// Pull the seed apart into its table so the harness can reassemble it
	// with a substituted interval payload.
	nsec := int(binary.LittleEndian.Uint32(raw[12:]))
	secs := make([]section, 0, nsec)
	var valid []byte
	for i := range nsec {
		ent := raw[headerSize+i*tableEntrySize:]
		id := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		ln := binary.LittleEndian.Uint64(ent[16:])
		payload := append([]byte(nil), raw[off:off+ln]...)
		if id == secIntervals {
			valid = payload
		}
		secs = append(secs, section{id: id, payload: payload})
	}
	if valid == nil {
		f.Fatal("seed snapshot carries no interval section")
	}
	splice := func(payload []byte) []byte {
		out := make([]section, len(secs))
		copy(out, secs)
		for i := range out {
			if out[i].id == secIntervals {
				out[i] = section{id: secIntervals, payload: payload}
			}
		}
		return assemble(out)
	}

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	f.Add(valid)
	f.Add([]byte{})                // missing header
	f.Add(valid[:16])              // truncated header
	f.Add(valid[:len(valid)-3])    // truncated span words / misaligned payload
	f.Add(corrupt(func(b []byte) { // impossible grid order
		binary.LittleEndian.PutUint32(b[0:], 99)
	}))
	f.Add(corrupt(func(b []byte) { // order disagrees with the meta record
		binary.LittleEndian.PutUint32(b[0:], binary.LittleEndian.Uint32(b[0:])+1)
	}))
	f.Add(corrupt(func(b []byte) { // non-finite grid origin
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(math.NaN()))
	}))
	f.Add(corrupt(func(b []byte) { // over-allocation attempt: absurd count
		binary.LittleEndian.PutUint32(b[32:], 0xFFFFFFFF)
	}))
	f.Add(corrupt(func(b []byte) { // unsorted / overlapping span runs
		binary.LittleEndian.PutUint64(b[len(b)-8:], binary.LittleEndian.Uint64(b[len(b)-16:]))
	}))

	f.Fuzz(func(t *testing.T, payload []byte) {
		s, err := OpenBytes(splice(payload))
		if err != nil {
			if s != nil {
				t.Fatalf("snapshot returned alongside error %v", err)
			}
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("rejection is not a typed *FormatError: %v", err)
			}
			return
		}
		if !s.HasIntervals() {
			return // fuzzer found an empty-but-ignorable shape; fine
		}
		col := s.Intervals()
		if col.Len() != s.NumObjects() {
			t.Fatalf("accepted column covers %d of %d objects", col.Len(), s.NumObjects())
		}
		if !col.Grid.Valid() {
			t.Fatalf("accepted column carries invalid grid %+v", col.Grid)
		}
		for i := 0; i < col.Len(); i++ {
			if err := col.Spans(i).Validate(col.Grid.Order); err != nil {
				t.Fatalf("accepted span list %d invalid: %v", i, err)
			}
		}
	})
}

// fuzzDataset is the tiny shared seed dataset: large seeds throttle the
// mutation engine, and the deep parsers are reachable through a small
// snapshot just as well.
func fuzzDataset() *data.Dataset {
	rng := rand.New(rand.NewSource(43))
	objs := make([]*geom.Polygon, 6)
	for i := range objs {
		n := 5 + rng.Intn(30)
		pts := make([]geom.Point, n)
		for j := range pts {
			a := 2 * math.Pi * float64(j) / float64(n)
			r := 5 + 5*rng.Float64()
			pts[j] = geom.Pt(20+float64(i)*15+r*math.Cos(a), 20+r*math.Sin(a))
		}
		objs[i] = geom.MustPolygon(pts...)
	}
	return &data.Dataset{Name: "fuzzseed", Objects: objs}
}
