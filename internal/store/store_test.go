package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/edgeindex"
	"repro/internal/geom"
	"repro/internal/interval"
	"repro/internal/raster"
	"repro/internal/rtree"
)

func testDataset(t *testing.T) *data.Dataset {
	t.Helper()
	d, err := data.Load("LANDC", 0.01)
	if err != nil {
		t.Fatalf("load dataset: %v", err)
	}
	return d
}

func saveTemp(t *testing.T, d *data.Dataset, opts SaveOptions) (string, BuildStats) {
	t.Helper()
	path := filepath.Join(t.TempDir(), d.Name+".snap")
	st, err := Save(path, d, opts)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	return path, st
}

// verifySnapshot checks every stored artifact of s against d rebuilt live.
func verifySnapshot(t *testing.T, s *Snapshot, d *data.Dataset, wantSigRes int) {
	t.Helper()
	if s.NumObjects() != len(d.Objects) {
		t.Fatalf("object count %d, want %d", s.NumObjects(), len(d.Objects))
	}
	got := s.Dataset()
	if got.Name != d.Name {
		t.Fatalf("name %q, want %q", got.Name, d.Name)
	}
	for i, p := range d.Objects {
		q := got.Objects[i]
		if q.NumVerts() != p.NumVerts() || q.Bounds() != p.Bounds() {
			t.Fatalf("object %d: shape changed (%d/%d verts, %v/%v bounds)",
				i, q.NumVerts(), p.NumVerts(), q.Bounds(), p.Bounds())
		}
		for j, v := range p.Verts {
			if q.Verts[j] != v {
				t.Fatalf("object %d vertex %d: %v, want %v", i, j, q.Verts[j], v)
			}
		}
	}

	tree, err := s.Tree()
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	entries := make([]rtree.Entry, len(d.Objects))
	for i, p := range d.Objects {
		entries[i] = rtree.Entry{Bounds: p.Bounds(), ID: i}
	}
	live := rtree.NewBulk(entries)
	if tree.Len() != live.Len() {
		t.Fatalf("tree size %d, want %d", tree.Len(), live.Len())
	}
	ids := func(tr *rtree.Tree, r geom.Rect) []int {
		var out []int
		tr.Search(r, func(e rtree.Entry) bool { out = append(out, e.ID); return true })
		sort.Ints(out)
		return out
	}
	for _, r := range []geom.Rect{data.Domain, geom.R(100, 100, 200, 180), geom.R(0, 0, 50, 50), geom.R(400, 300, 560, 360)} {
		a, b := ids(tree, r), ids(live, r)
		if len(a) != len(b) {
			t.Fatalf("search %v: %d ids, want %d", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("search %v: id %d differs", r, i)
			}
		}
	}

	if !s.HasEdgeBoxes() {
		t.Fatalf("edge boxes missing")
	}
	for i, p := range d.Objects {
		want := edgeindex.New(p).FlatBoxes()
		gotBoxes := s.EdgeBoxes(i)
		if len(gotBoxes) != len(want) {
			t.Fatalf("object %d: %d edge boxes, want %d", i, len(gotBoxes), len(want))
		}
		for j := range want {
			if gotBoxes[j] != want[j] {
				t.Fatalf("object %d edge box %d differs", i, j)
			}
		}
	}

	if wantSigRes == 0 {
		if s.HasSignatures() {
			t.Fatalf("unexpected signatures")
		}
		return
	}
	if !s.HasSignatures() || s.SigRes() != wantSigRes {
		t.Fatalf("signatures res %d, want %d", s.SigRes(), wantSigRes)
	}
	for i, p := range d.Objects {
		want := raster.ComputeSignature(p, wantSigRes)
		sig := s.Signature(i)
		if sig.Bounds != want.Bounds || sig.Res != want.Res || len(sig.Words) != len(want.Words) {
			t.Fatalf("object %d: signature shape differs", i)
		}
		for j := range want.Words {
			if sig.Words[j] != want.Words[j] {
				t.Fatalf("object %d: signature word %d differs", i, j)
			}
		}
	}
}

// TestSnapshotRoundTrip pins save → open as an identity for every stored
// artifact, on both the mmap and the forced-copy path.
func TestSnapshotRoundTrip(t *testing.T) {
	d := testDataset(t)
	path, st := saveTemp(t, d, SaveOptions{})
	if st.Objects != len(d.Objects) || st.Sections != 8 || st.SigRes != raster.DefaultSignatureRes || st.IntervalOrder == 0 {
		t.Fatalf("build stats %+v", st)
	}
	for _, forceCopy := range []bool{false, true} {
		s, err := Open(path, OpenOptions{ForceCopy: forceCopy})
		if err != nil {
			t.Fatalf("open (copy=%v): %v", forceCopy, err)
		}
		if forceCopy && s.Stats().MMap {
			t.Fatalf("ForceCopy still mapped")
		}
		if s.Stats().Bytes != st.Bytes || s.Stats().Sections != st.Sections {
			t.Fatalf("load stats %+v, build stats %+v", s.Stats(), st)
		}
		verifySnapshot(t, s, d, raster.DefaultSignatureRes)
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestSnapshotOptionalSections pins the no-signature and no-edge-box
// encodings.
func TestSnapshotOptionalSections(t *testing.T) {
	d := testDataset(t)
	path, st := saveTemp(t, d, SaveOptions{SigRes: -1})
	if st.SigRes != 0 || st.Sections != 7 {
		t.Fatalf("build stats %+v", st)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	verifySnapshot(t, s, d, 0)
	s.Close()

	path2, _ := saveTemp(t, d, SaveOptions{NoEdgeBoxes: true})
	s2, err := Open(path2, OpenOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s2.HasEdgeBoxes() || s2.EdgeBoxes(0) != nil {
		t.Fatalf("edge boxes present despite NoEdgeBoxes")
	}
	s2.Close()
}

// TestSnapshotAtomicWrite pins the temp-and-rename publish: overwriting an
// existing snapshot leaves no temp litter and the new content wins.
func TestSnapshotAtomicWrite(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "layer.snap")
	if _, err := Save(path, d, SaveOptions{SigRes: -1}); err != nil {
		t.Fatalf("save 1: %v", err)
	}
	if _, err := Save(path, d, SaveOptions{}); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(ents) != 1 || ents[0].Name() != "layer.snap" {
		t.Fatalf("directory not clean after overwrite: %v", ents)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !s.HasSignatures() {
		t.Fatalf("second save's content did not win")
	}
	s.Close()
}

// protectedOffsets returns a sample of byte offsets that the format's
// integrity checks must cover: the magic, version, section count, table
// CRC, the table itself, and every section payload. Reserved header bytes
// and inter-section alignment padding are deliberately excluded — they
// carry no data.
func protectedOffsets(raw []byte) []int {
	offs := []int{0, 3, 8, 12, 16}
	nsec := int(binary.LittleEndian.Uint32(raw[12:]))
	for i := 0; i < nsec; i++ {
		base := headerSize + i*tableEntrySize
		offs = append(offs, base, base+8, base+16, base+24)
		off := int(binary.LittleEndian.Uint64(raw[base+8:]))
		length := int(binary.LittleEndian.Uint64(raw[base+16:]))
		// Several probes inside the payload, including both ends.
		for _, frac := range []int{0, length / 3, length / 2, 2 * length / 3, length - 1} {
			if frac >= 0 && frac < length {
				offs = append(offs, off+frac)
			}
		}
	}
	return offs
}

// TestSnapshotCorruption is the corruption-handling satellite: truncated
// files, bad magic, version skew, and bit flips anywhere in protected
// bytes must all yield a typed *FormatError — never a panic, never a
// silently wrong snapshot.
func TestSnapshotCorruption(t *testing.T) {
	d := testDataset(t)
	path, _ := saveTemp(t, d, SaveOptions{})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}

	expectFormatError := func(t *testing.T, b []byte, what string) {
		t.Helper()
		s, err := OpenBytes(b)
		if err == nil {
			t.Fatalf("%s: accepted", what)
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %v is not a *FormatError", what, err)
		}
		if s != nil {
			t.Fatalf("%s: snapshot returned alongside error", what)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for _, k := range []int{0, 1, headerSize - 1, headerSize, headerSize + 5, len(raw) / 2, len(raw) - 1} {
			expectFormatError(t, raw[:k], "truncation")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		b[0] = 'X'
		expectFormatError(t, b, "magic")
	})
	t.Run("version-skew", func(t *testing.T) {
		b := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(b[8:], Version+1)
		expectFormatError(t, b, "version")
	})
	t.Run("bit-flips", func(t *testing.T) {
		for _, off := range protectedOffsets(raw) {
			b := append([]byte(nil), raw...)
			b[off] ^= 0x41
			if same := b[off] == raw[off]; same {
				continue
			}
			expectFormatError(t, b, "flip at offset "+string(rune('0'+off%10)))
		}
	})
	t.Run("missing-section", func(t *testing.T) {
		// Reassemble with the coords section dropped; CRCs are valid, the
		// required-section check must fire.
		secs, _, err := buildSections(d, SaveOptions{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		var kept []section
		for _, s := range secs {
			if s.id != secCoords {
				kept = append(kept, s)
			}
		}
		expectFormatError(t, assemble(kept), "missing coords")
	})
	t.Run("duplicate-section", func(t *testing.T) {
		secs, _, err := buildSections(d, SaveOptions{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		expectFormatError(t, assemble(append(secs, secs[1])), "duplicate")
	})
	t.Run("open-file-error", func(t *testing.T) {
		if _, err := Open(filepath.Join(t.TempDir(), "absent.snap"), OpenOptions{}); err == nil {
			t.Fatalf("absent file accepted")
		}
	})
}

// TestSnapshotIDLineage pins the live-ingestion lineage round trip: the
// ids section, NextID, and AppliedLSN survive save → open on both read
// paths, and structurally invalid ids are rejected at save and at open.
func TestSnapshotIDLineage(t *testing.T) {
	d := testDataset(t)
	n := len(d.Objects)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i*3 + 7) // sparse, strictly increasing
	}
	opts := SaveOptions{IDs: ids, NextID: ids[n-1] + 5, AppliedLSN: 42}
	path, _ := saveTemp(t, d, opts)

	for _, forceCopy := range []bool{false, true} {
		s, err := Open(path, OpenOptions{ForceCopy: forceCopy})
		if err != nil {
			t.Fatalf("open (forceCopy=%v): %v", forceCopy, err)
		}
		got := s.IDs()
		if len(got) != n {
			t.Fatalf("IDs len %d, want %d", len(got), n)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("id %d = %d, want %d", i, got[i], ids[i])
			}
		}
		if s.NextID() != opts.NextID {
			t.Fatalf("NextID %d, want %d", s.NextID(), opts.NextID)
		}
		if s.AppliedLSN() != 42 {
			t.Fatalf("AppliedLSN %d, want 42", s.AppliedLSN())
		}
		s.Close()
	}

	// Load-only snapshots fall back to identity lineage.
	plain, _ := saveTemp(t, d, SaveOptions{})
	s, err := Open(plain, OpenOptions{})
	if err != nil {
		t.Fatalf("open plain: %v", err)
	}
	defer s.Close()
	if s.IDs() != nil || s.NextID() != uint64(n) || s.AppliedLSN() != 0 {
		t.Fatalf("plain lineage: ids=%v next=%d lsn=%d", s.IDs(), s.NextID(), s.AppliedLSN())
	}

	// The writer refuses non-increasing ids and a NextID at or below the
	// largest stored id.
	bad := append([]uint64(nil), ids...)
	bad[1] = bad[0]
	if _, err := Save(filepath.Join(t.TempDir(), "bad.snap"), d, SaveOptions{IDs: bad}); err == nil {
		t.Fatal("save accepted non-increasing ids")
	}
	if _, err := Save(filepath.Join(t.TempDir(), "bad2.snap"), d, SaveOptions{IDs: ids, NextID: ids[n-1]}); err == nil {
		t.Fatal("save accepted NextID <= max id")
	}
}

// TestSnapshotIntervals pins the v2 interval column round trip: the
// persisted column must equal a live Build on the same grid, omission
// via IntervalOrder < 0 must produce a v1-shaped snapshot, and a
// corrupted span word must fail closed as a *FormatError.
func TestSnapshotIntervals(t *testing.T) {
	d := testDataset(t)
	path, st := saveTemp(t, d, SaveOptions{})
	if st.IntervalOrder == 0 {
		t.Fatalf("intervals omitted by default: %+v", st)
	}
	for _, forceCopy := range []bool{false, true} {
		s, err := Open(path, OpenOptions{ForceCopy: forceCopy})
		if err != nil {
			t.Fatalf("open (copy=%v): %v", forceCopy, err)
		}
		if !s.HasIntervals() {
			t.Fatal("interval column missing")
		}
		col := s.Intervals()
		if col.Grid.Order != st.IntervalOrder || col.Len() != len(d.Objects) {
			t.Fatalf("column grid %+v len %d, want order %d len %d",
				col.Grid, col.Len(), st.IntervalOrder, len(d.Objects))
		}
		g, ok := interval.GridFor(d.Objects, 0)
		if !ok || g != col.Grid {
			t.Fatalf("persisted grid %+v, live derivation %+v", col.Grid, g)
		}
		live := interval.Build(d.Objects, g)
		for i := range d.Objects {
			a, b := col.Spans(i), live.Spans(i)
			if len(a) != len(b) {
				t.Fatalf("object %d: %d spans stored, %d live", i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("object %d span %d differs", i, j)
				}
			}
		}
		s.Close()
	}

	// Explicit omission keeps the snapshot v1-shaped.
	path2, st2 := saveTemp(t, d, SaveOptions{IntervalOrder: -1})
	if st2.IntervalOrder != 0 {
		t.Fatalf("IntervalOrder -1 still built a column: %+v", st2)
	}
	s2, err := Open(path2, OpenOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s2.HasIntervals() || s2.Intervals() != nil || s2.Meta().IntervalOrder != 0 {
		t.Fatal("intervals present despite IntervalOrder -1")
	}
	s2.Close()

	// A flipped bit inside the span payload must be caught — by the CRC
	// here; FuzzIntervalSection additionally rewrites the CRC to reach the
	// structural validators.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	blob[len(blob)-5] ^= 0x40
	var ferr *FormatError
	if _, err := OpenBytes(blob); !errors.As(err, &ferr) {
		t.Fatalf("corrupt span payload: got %v, want *FormatError", err)
	}
}
