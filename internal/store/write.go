package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/data"
	"repro/internal/edgeindex"
	"repro/internal/interval"
	"repro/internal/raster"
	"repro/internal/rtree"
)

// SaveOptions configures the snapshot writer.
type SaveOptions struct {
	// SigRes is the raster-signature resolution: 0 uses
	// raster.DefaultSignatureRes, a negative value omits the signature
	// section entirely (signatures are an optional accelerator).
	SigRes int
	// IntervalOrder is the Hilbert grid order for the v2 interval column:
	// 0 derives the order from the objects (interval.ChooseOrder over the
	// canonical square), a negative value omits the interval section.
	// Like signatures, intervals are an optional accelerator — v1 readers
	// skip the unknown section, and loaded layers without one fall back
	// to signatures.
	IntervalOrder int
	// NoEdgeBoxes omits the persisted edge-index hierarchies; loaded
	// layers then rebuild them lazily like in-memory layers do.
	NoEdgeBoxes bool
	// Tool is recorded in the meta section as provenance.
	Tool string

	// IDs persists per-object stable ids (the ids section); must be nil
	// or exactly one strictly-increasing id per object. Load-only
	// snapshots omit it and readers assume identity ids.
	IDs []uint64
	// NextID and AppliedLSN record live-ingestion lineage in the meta
	// section; zero values are omitted (load-only snapshots).
	NextID     uint64
	AppliedLSN uint64
}

// BuildStats reports what Save produced.
type BuildStats struct {
	Objects    int
	TotalVerts int
	Sections      int
	Bytes         int64
	SigRes        int // 0 when signatures were omitted
	IntervalOrder int // 0 when the interval column was omitted
	BuildMS       float64
}

type section struct {
	id      uint32
	payload []byte
}

// Save builds a snapshot of d and writes it to path atomically: the bytes
// are assembled in a temp file in path's directory, synced, and renamed
// over path, so a crash mid-write leaves either the old snapshot or none.
// The dataset must contain valid polygons (finite vertices, ≥ 3 each);
// Save validates and refuses rather than persisting geometry the loader
// would reject.
func Save(path string, d *data.Dataset, opts SaveOptions) (BuildStats, error) {
	start := time.Now()
	secs, stats, err := buildSections(d, opts)
	if err != nil {
		return BuildStats{}, err
	}
	blob := assemble(secs)
	if err := writeAtomic(path, blob); err != nil {
		return BuildStats{}, err
	}
	stats.Sections = len(secs)
	stats.Bytes = int64(len(blob))
	stats.BuildMS = float64(time.Since(start).Microseconds()) / 1000
	return stats, nil
}

func buildSections(d *data.Dataset, opts SaveOptions) ([]section, BuildStats, error) {
	n := len(d.Objects)
	totalVerts := 0
	for i, p := range d.Objects {
		if p.NumVerts() < 3 {
			return nil, BuildStats{}, fmt.Errorf("store: object %d has %d vertices", i, p.NumVerts())
		}
		for _, v := range p.Verts {
			if !v.IsFinite() {
				return nil, BuildStats{}, fmt.Errorf("store: object %d has a non-finite vertex", i)
			}
		}
		totalVerts += p.NumVerts()
	}

	sigRes := 0
	if opts.SigRes >= 0 {
		sigRes = opts.SigRes
		if sigRes == 0 {
			sigRes = raster.DefaultSignatureRes
		}
	}
	tool := opts.Tool
	if tool == "" {
		tool = "repro/store"
	}
	if opts.IDs != nil {
		if len(opts.IDs) != n {
			return nil, BuildStats{}, fmt.Errorf("store: %d ids for %d objects", len(opts.IDs), n)
		}
		for i := 1; i < n; i++ {
			if opts.IDs[i] <= opts.IDs[i-1] {
				return nil, BuildStats{}, fmt.Errorf("store: ids not strictly increasing at %d", i)
			}
		}
		if n > 0 && opts.NextID > 0 && opts.IDs[n-1] >= opts.NextID {
			return nil, BuildStats{}, fmt.Errorf("store: id %d not below next id %d", opts.IDs[n-1], opts.NextID)
		}
	}
	var ivalGrid interval.Grid
	if opts.IntervalOrder >= 0 {
		if g, ok := interval.GridFor(d.Objects, opts.IntervalOrder); ok {
			ivalGrid = g
		}
	}
	meta, err := json.Marshal(Meta{
		Name:          d.Name,
		Objects:       n,
		TotalVerts:    totalVerts,
		SigRes:        sigRes,
		IntervalOrder: ivalGrid.Order,
		Tool:          tool,
		Created:       time.Now().UTC().Format(time.RFC3339),
		NextID:        opts.NextID,
		AppliedLSN:    opts.AppliedLSN,
	})
	if err != nil {
		return nil, BuildStats{}, fmt.Errorf("store: encode meta: %w", err)
	}

	counts := make([]byte, 0, n*4)
	coords := make([]byte, 0, totalVerts*16)
	mbrs := make([]byte, 0, n*32)
	for _, p := range d.Objects {
		counts = binary.LittleEndian.AppendUint32(counts, uint32(p.NumVerts()))
		for _, v := range p.Verts {
			coords = appendFloat64(coords, v.X)
			coords = appendFloat64(coords, v.Y)
		}
		b := p.Bounds()
		mbrs = appendFloat64(mbrs, b.MinX)
		mbrs = appendFloat64(mbrs, b.MinY)
		mbrs = appendFloat64(mbrs, b.MaxX)
		mbrs = appendFloat64(mbrs, b.MaxY)
	}

	entries := make([]rtree.Entry, n)
	for i, p := range d.Objects {
		entries[i] = rtree.Entry{Bounds: p.Bounds(), ID: i}
	}
	treeSec := encodeTree(rtree.NewBulk(entries).Export())

	secs := []section{
		{secMeta, meta},
		{secVertCounts, counts},
		{secCoords, coords},
		{secMBRs, mbrs},
		{secRTree, treeSec},
	}
	if !opts.NoEdgeBoxes {
		secs = append(secs, section{secEdgeBoxes, encodeEdgeBoxes(d)})
	}
	if sigRes > 0 {
		secs = append(secs, section{secSigs, encodeSignatures(d, sigRes)})
	}
	if ivalGrid.Valid() {
		secs = append(secs, section{secIntervals, encodeIntervals(d, ivalGrid)})
	}
	if opts.IDs != nil {
		ids := make([]byte, 0, n*8)
		for _, id := range opts.IDs {
			ids = binary.LittleEndian.AppendUint64(ids, id)
		}
		secs = append(secs, section{secIDs, ids})
	}
	return secs, BuildStats{Objects: n, TotalVerts: totalVerts, SigRes: sigRes, IntervalOrder: ivalGrid.Order}, nil
}

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// encodeTree serializes a packed R-tree: a 5-word header (size,
// maxEntries, minEntries, nodeCount, entryCount), then per node the
// bounds (4 float64) plus leaf flag and count (2 uint32), then the leaf
// entry object ids (uint32 each). Entry bounds are not stored — the
// loader reconstructs them from the MBR section by id, exactly as the
// in-memory layer builds its entries from p.Bounds().
func encodeTree(p *rtree.Packed) []byte {
	b := make([]byte, 0, 40+len(p.Nodes)*40+len(p.Entries)*4)
	for _, v := range []int{p.Size, p.MaxEntries, p.MinEntries, len(p.Nodes), len(p.Entries)} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	for _, n := range p.Nodes {
		b = appendFloat64(b, n.Bounds.MinX)
		b = appendFloat64(b, n.Bounds.MinY)
		b = appendFloat64(b, n.Bounds.MaxX)
		b = appendFloat64(b, n.Bounds.MaxY)
		leaf := uint32(0)
		if n.Leaf {
			leaf = 1
		}
		b = binary.LittleEndian.AppendUint32(b, leaf)
		b = binary.LittleEndian.AppendUint32(b, uint32(n.Count))
	}
	for _, e := range p.Entries {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.ID))
	}
	return b
}

// encodeEdgeBoxes serializes every object's edge-index hierarchy: n box
// counts (uint32), then the concatenated flat boxes (4 float64 each).
// Counts are redundant with the vertex counts (the hierarchy shape is a
// pure function of the edge count) and double as a cross-check at load.
func encodeEdgeBoxes(d *data.Dataset) []byte {
	counts := make([]byte, 0, len(d.Objects)*4)
	var boxes []byte
	for _, p := range d.Objects {
		flat := edgeindex.New(p).FlatBoxes()
		counts = binary.LittleEndian.AppendUint32(counts, uint32(len(flat)))
		for _, r := range flat {
			boxes = appendFloat64(boxes, r.MinX)
			boxes = appendFloat64(boxes, r.MinY)
			boxes = appendFloat64(boxes, r.MaxX)
			boxes = appendFloat64(boxes, r.MaxY)
		}
	}
	return append(counts, boxes...)
}

// encodeIntervals serializes the v2 interval column: a 32-byte header
// (order uint32, reserved uint32, grid minX/minY/size float64), one span
// count per object (uint32), zero-padding to 8-byte alignment, then the
// concatenated packed span words (uint64 each). The grid travels with
// the column so a reader can tell whether a persisted column matches the
// grid a join wants without re-deriving anything.
func encodeIntervals(d *data.Dataset, g interval.Grid) []byte {
	col := interval.Build(d.Objects, g)
	n := col.Len()
	b := make([]byte, 0, 32+align8(uint64(n)*4)+uint64(len(col.Data()))*8)
	b = binary.LittleEndian.AppendUint32(b, uint32(g.Order))
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = appendFloat64(b, g.MinX)
	b = appendFloat64(b, g.MinY)
	b = appendFloat64(b, g.Size)
	for _, c := range col.Counts() {
		b = binary.LittleEndian.AppendUint32(b, c)
	}
	for len(b)%8 != 0 {
		b = append(b, 0)
	}
	for _, w := range col.Data() {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// encodeSignatures serializes the raster signature column: resolution and
// words-per-object (uint32 each), then n fixed-size bitmaps. Bounds are
// not stored — a signature's grid tiles its object's MBR.
func encodeSignatures(d *data.Dataset, res int) []byte {
	words := raster.SignatureWords(res)
	b := make([]byte, 0, 8+len(d.Objects)*words*8)
	b = binary.LittleEndian.AppendUint32(b, uint32(res))
	b = binary.LittleEndian.AppendUint32(b, uint32(words))
	for _, p := range d.Objects {
		sig := raster.ComputeSignature(p, res)
		for _, w := range sig.Words {
			b = binary.LittleEndian.AppendUint64(b, w)
		}
	}
	return b
}

// assemble lays the sections out after the header and table, 8-byte
// aligned and zero-padded, and stamps per-section CRC32s plus the table
// CRC into the header.
func assemble(secs []section) []byte {
	tableOff := uint64(headerSize)
	dataOff := align8(tableOff + uint64(len(secs))*tableEntrySize)

	total := dataOff
	offsets := make([]uint64, len(secs))
	for i, s := range secs {
		offsets[i] = total
		total = align8(total + uint64(len(s.payload)))
	}

	blob := make([]byte, total)
	copy(blob, Magic)
	binary.LittleEndian.PutUint32(blob[8:], Version)
	binary.LittleEndian.PutUint32(blob[12:], uint32(len(secs)))

	for i, s := range secs {
		copy(blob[offsets[i]:], s.payload)
		ent := blob[tableOff+uint64(i)*tableEntrySize:]
		binary.LittleEndian.PutUint32(ent[0:], s.id)
		binary.LittleEndian.PutUint64(ent[8:], offsets[i])
		binary.LittleEndian.PutUint64(ent[16:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(ent[24:], crc32.ChecksumIEEE(s.payload))
	}
	table := blob[tableOff : tableOff+uint64(len(secs))*tableEntrySize]
	binary.LittleEndian.PutUint32(blob[16:], crc32.ChecksumIEEE(table))
	return blob
}

// writeAtomic writes blob to path via a temp file in the same directory,
// fsynced before the rename so the publish is crash-safe.
func writeAtomic(path string, blob []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	tmp := f.Name()
	cleanup := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if _, err := f.Write(blob); err != nil {
		return cleanup(fmt.Errorf("store: write %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("store: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("store: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename into %s: %w", path, err)
	}
	// The file's bytes are durable, but the rename lives in the directory:
	// without fsyncing the directory a power loss can resurrect the old
	// entry (or none), un-publishing an acked snapshot.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
