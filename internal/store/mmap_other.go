//go:build !unix

package store

// mmapPath reports mapping unavailable on this platform; Open falls back
// to reading the file into a slice.
func mmapPath(path string) ([]byte, func() error, bool) {
	return nil, nil, false
}
