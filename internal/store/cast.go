package store

import (
	"encoding/binary"
	"math"
	"unsafe"

	"repro/internal/geom"
)

// hostLittleEndian reports whether the running machine stores multi-byte
// values little-endian — the file's byte order. On such hosts aligned
// sections alias the mapped bytes directly (zero-copy); otherwise every
// column is decoded into fresh slices.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// canAlias reports whether b may be reinterpreted in place as a slice of
// 8-byte-aligned elements: little-endian host and aligned backing array.
// mmap regions are page-aligned and sections are 8-aligned within the
// file, so the mmap path always aliases on little-endian machines; the
// read-into-slice path depends on the allocator and is checked per call.
func canAlias(b []byte) bool {
	if !hostLittleEndian || len(b) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

// asUint32s reinterprets or decodes b (length must be a multiple of 4).
func asUint32s(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// asUint64s reinterprets or decodes b (length must be a multiple of 8).
func asUint64s(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if canAlias(b) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// asPoints reinterprets or decodes b as packed (X, Y) float64 pairs.
func asPoints(b []byte) []geom.Point {
	n := len(b) / 16
	if n == 0 {
		return nil
	}
	if canAlias(b) {
		return unsafe.Slice((*geom.Point)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]geom.Point, n)
	for i := range out {
		out[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
		out[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
	}
	return out
}

// asRects reinterprets or decodes b as packed (MinX, MinY, MaxX, MaxY)
// float64 quadruples.
func asRects(b []byte) []geom.Rect {
	n := len(b) / 32
	if n == 0 {
		return nil
	}
	if canAlias(b) {
		return unsafe.Slice((*geom.Rect)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]geom.Rect, n)
	for i := range out {
		out[i].MinX = math.Float64frombits(binary.LittleEndian.Uint64(b[i*32:]))
		out[i].MinY = math.Float64frombits(binary.LittleEndian.Uint64(b[i*32+8:]))
		out[i].MaxX = math.Float64frombits(binary.LittleEndian.Uint64(b[i*32+16:]))
		out[i].MaxY = math.Float64frombits(binary.LittleEndian.Uint64(b[i*32+24:]))
	}
	return out
}
