package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/edgeindex"
	"repro/internal/geom"
	"repro/internal/interval"
	"repro/internal/raster"
	"repro/internal/rtree"
)

// OpenOptions configures the snapshot reader.
type OpenOptions struct {
	// ForceCopy disables mmap and zero-copy aliasing: the file is read
	// into a heap slice and every column is decoded. The portable
	// fallback path; tests exercise both.
	ForceCopy bool
}

// LoadStats reports how a snapshot was loaded.
type LoadStats struct {
	Bytes    int64
	Sections int
	MMap     bool // file was memory-mapped (vs read into a slice)
	LoadMS   float64
}

// Snapshot is an opened, fully validated snapshot. Accessors return views
// into the (possibly memory-mapped, read-only) file; none of the returned
// slices or polygons may be mutated. A Snapshot is immutable and safe for
// concurrent readers; Close unmaps the file, after which no view derived
// from the snapshot may be touched.
type Snapshot struct {
	path  string
	raw   []byte
	unmap func() error
	stats LoadStats

	meta       Meta
	vertCounts []uint32
	coords     []geom.Point
	mbrs       []geom.Rect
	vertOff    []int // prefix sums over vertCounts, len n+1

	packed *rtree.Packed

	// Edge-index boxes: per-object count prefix sums into boxes. Empty
	// when the section was omitted.
	boxOff []int
	boxes  []geom.Rect

	// Raster signatures: fixed-stride bitmap words. Empty when omitted.
	sigRes   int
	sigWords int
	sigBits  []uint64

	// Stable per-object ids (live-ingestion lineage). Nil when the
	// section was omitted; readers then assume identity ids.
	ids []uint64

	// Interval column (v2 approximation). Nil when omitted; loaded
	// layers then fall back to the v1 signature path or a lazy rebuild.
	ivals *interval.Column
}

// Open validates and loads the snapshot at path. The file is memory-
// mapped when the platform supports it and opts.ForceCopy is false;
// either way the snapshot is fully CRC-checked and structurally validated
// before Open returns, so corruption surfaces here as a *FormatError and
// never later inside a query.
func Open(path string, opts OpenOptions) (*Snapshot, error) {
	start := time.Now()
	var raw []byte
	var unmap func() error
	mapped := false
	if !opts.ForceCopy {
		if b, un, ok := mmapPath(path); ok {
			raw, unmap, mapped = b, un, true
		}
	}
	if raw == nil {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: read %s: %w", path, err)
		}
		raw = b
	}
	s, err := openBytes(path, raw, opts.ForceCopy)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	s.unmap = unmap
	s.stats.MMap = mapped
	s.stats.LoadMS = float64(time.Since(start).Microseconds()) / 1000
	return s, nil
}

// OpenBytes opens a snapshot held in memory (no mmap, aliasing allowed
// when alignment permits). The fuzz harness drives the reader through
// this entry point.
func OpenBytes(b []byte) (*Snapshot, error) {
	return openBytes("", b, false)
}

func openBytes(path string, raw []byte, forceCopy bool) (*Snapshot, error) {
	if len(raw) < headerSize {
		return nil, errf(path, "", "truncated: %d bytes, need %d for the header", len(raw), headerSize)
	}
	if string(raw[:8]) != Magic {
		return nil, errf(path, "", "bad magic %q", raw[:8])
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != Version {
		return nil, errf(path, "", "version %d, this reader understands %d", v, Version)
	}
	nsec := binary.LittleEndian.Uint32(raw[12:])
	if nsec == 0 || nsec > maxSections {
		return nil, errf(path, "", "implausible section count %d", nsec)
	}
	tableEnd := uint64(headerSize) + uint64(nsec)*tableEntrySize
	if tableEnd > uint64(len(raw)) {
		return nil, errf(path, "", "truncated: table needs %d bytes, file has %d", tableEnd, len(raw))
	}
	table := raw[headerSize:tableEnd]
	if got, want := crc32.ChecksumIEEE(table), binary.LittleEndian.Uint32(raw[16:]); got != want {
		return nil, errf(path, "", "table CRC mismatch (got %08x, stored %08x)", got, want)
	}

	sections := map[uint32][]byte{}
	for i := uint32(0); i < nsec; i++ {
		ent := table[i*tableEntrySize:]
		id := binary.LittleEndian.Uint32(ent[0:])
		off := binary.LittleEndian.Uint64(ent[8:])
		length := binary.LittleEndian.Uint64(ent[16:])
		crc := binary.LittleEndian.Uint32(ent[24:])
		name := sectionName(id)
		if _, dup := sections[id]; dup {
			return nil, errf(path, name, "duplicate section")
		}
		if off < tableEnd || off%8 != 0 {
			return nil, errf(path, name, "bad offset %d", off)
		}
		if off+length < off || off+length > uint64(len(raw)) {
			return nil, errf(path, name, "extends past end of file (offset %d, length %d, file %d)", off, length, len(raw))
		}
		payload := raw[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, errf(path, name, "CRC mismatch (got %08x, stored %08x)", got, crc)
		}
		sections[id] = payload
	}
	for _, id := range []uint32{secMeta, secVertCounts, secCoords, secMBRs, secRTree} {
		if _, ok := sections[id]; !ok {
			return nil, errf(path, sectionName(id), "required section missing")
		}
	}

	s := &Snapshot{path: path, raw: raw, stats: LoadStats{Bytes: int64(len(raw)), Sections: int(nsec)}}
	if err := json.Unmarshal(sections[secMeta], &s.meta); err != nil {
		return nil, errf(path, "meta", "bad JSON: %v", err)
	}
	n := s.meta.Objects
	if n < 0 || n > len(raw) {
		return nil, errf(path, "meta", "implausible object count %d", n)
	}
	if s.meta.TotalVerts < 0 || s.meta.TotalVerts > len(raw) {
		return nil, errf(path, "meta", "implausible vertex count %d", s.meta.TotalVerts)
	}

	if err := s.loadColumns(path, sections, forceCopy); err != nil {
		return nil, err
	}
	if err := s.loadTree(path, sections[secRTree], forceCopy); err != nil {
		return nil, err
	}
	if b, ok := sections[secEdgeBoxes]; ok {
		if err := s.loadEdgeBoxes(path, b, forceCopy); err != nil {
			return nil, err
		}
	}
	if b, ok := sections[secSigs]; ok {
		if err := s.loadSignatures(path, b, forceCopy); err != nil {
			return nil, err
		}
	}
	if b, ok := sections[secIDs]; ok {
		if err := s.loadIDs(path, b, forceCopy); err != nil {
			return nil, err
		}
	}
	if b, ok := sections[secIntervals]; ok {
		if err := s.loadIntervals(path, b, forceCopy); err != nil {
			return nil, err
		}
	}
	if s.meta.NextID > 0 && s.nextIDFloor() > s.meta.NextID {
		return nil, errf(path, "meta", "next id %d below the %d stored objects", s.meta.NextID, n)
	}
	return s, nil
}

// view returns b either aliased (zero-copy) or, under forceCopy, a fresh
// copy so the decode helpers cannot alias mapped memory.
func view(b []byte, forceCopy bool) []byte {
	if !forceCopy {
		return b
	}
	return append([]byte(nil), b...)
}

func (s *Snapshot) loadColumns(path string, sections map[uint32][]byte, forceCopy bool) error {
	n := s.meta.Objects
	cb := sections[secVertCounts]
	if len(cb) != n*4 {
		return errf(path, "vertcounts", "length %d, want %d for %d objects", len(cb), n*4, n)
	}
	s.vertCounts = asUint32s(view(cb, forceCopy))
	s.vertOff = make([]int, n+1)
	for i, c := range s.vertCounts {
		if c < 3 {
			return errf(path, "vertcounts", "object %d has %d vertices", i, c)
		}
		s.vertOff[i+1] = s.vertOff[i] + int(c)
	}
	if s.vertOff[n] != s.meta.TotalVerts {
		return errf(path, "vertcounts", "vertex counts sum to %d, meta says %d", s.vertOff[n], s.meta.TotalVerts)
	}

	xb := sections[secCoords]
	if len(xb) != s.meta.TotalVerts*16 {
		return errf(path, "coords", "length %d, want %d for %d vertices", len(xb), s.meta.TotalVerts*16, s.meta.TotalVerts)
	}
	s.coords = asPoints(view(xb, forceCopy))
	for i, p := range s.coords {
		if !p.IsFinite() {
			return errf(path, "coords", "vertex %d is non-finite (%v, %v)", i, p.X, p.Y)
		}
	}

	mb := sections[secMBRs]
	if len(mb) != n*32 {
		return errf(path, "mbrs", "length %d, want %d for %d objects", len(mb), n*32, n)
	}
	s.mbrs = asRects(view(mb, forceCopy))
	for i, r := range s.mbrs {
		if !geom.Pt(r.MinX, r.MinY).IsFinite() || !geom.Pt(r.MaxX, r.MaxY).IsFinite() || r.IsEmpty() {
			return errf(path, "mbrs", "object %d has a degenerate MBR %v", i, r)
		}
	}
	return nil
}

func (s *Snapshot) loadTree(path string, b []byte, forceCopy bool) error {
	if len(b) < 40 {
		return errf(path, "rtree", "truncated header (%d bytes)", len(b))
	}
	hdr := make([]int, 5)
	for i := range hdr {
		v := binary.LittleEndian.Uint64(b[i*8:])
		if v > uint64(len(s.raw)) {
			return errf(path, "rtree", "implausible header value %d", v)
		}
		hdr[i] = int(v)
	}
	size, maxE, minE, nodeCount, entryCount := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]
	want := 40 + nodeCount*40 + entryCount*4
	if len(b) != want {
		return errf(path, "rtree", "length %d, want %d for %d nodes and %d entries", len(b), want, nodeCount, entryCount)
	}
	if entryCount != s.meta.Objects {
		return errf(path, "rtree", "%d entries for %d objects", entryCount, s.meta.Objects)
	}
	p := &rtree.Packed{Size: size, MaxEntries: maxE, MinEntries: minE}
	p.Nodes = make([]rtree.PackedNode, nodeCount)
	for i := range p.Nodes {
		nb := b[40+i*40:]
		r := asRects(view(nb[:32], true)) // tiny, always copy-decode
		p.Nodes[i].Bounds = r[0]
		p.Nodes[i].Leaf = binary.LittleEndian.Uint32(nb[32:]) != 0
		p.Nodes[i].Count = int(binary.LittleEndian.Uint32(nb[36:]))
	}
	ids := asUint32s(view(b[40+nodeCount*40:], forceCopy))
	p.Entries = make([]rtree.Entry, entryCount)
	for i, id := range ids {
		if int(id) >= s.meta.Objects {
			return errf(path, "rtree", "entry %d references object %d of %d", i, id, s.meta.Objects)
		}
		p.Entries[i] = rtree.Entry{Bounds: s.mbrs[id], ID: int(id)}
	}
	// Structural validation happens in rtree.FromPacked when the tree is
	// materialized; run it once here so Open rejects a corrupt-but-CRC-
	// valid image the moment it is read, not mid-query.
	if _, err := rtree.FromPacked(p); err != nil {
		return errf(path, "rtree", "%v", err)
	}
	s.packed = p
	return nil
}

func (s *Snapshot) loadEdgeBoxes(path string, b []byte, forceCopy bool) error {
	n := s.meta.Objects
	if len(b) < n*4 {
		return errf(path, "edgeboxes", "length %d too short for %d counts", len(b), n)
	}
	counts := asUint32s(view(b[:n*4], forceCopy))
	s.boxOff = make([]int, n+1)
	for i, c := range counts {
		if want := edgeindex.FlatBoxCount(int(s.vertCounts[i])); int(c) != want {
			return errf(path, "edgeboxes", "object %d has %d boxes, its %d edges need %d", i, c, s.vertCounts[i], want)
		}
		s.boxOff[i+1] = s.boxOff[i] + int(c)
	}
	total := s.boxOff[n]
	if len(b) != n*4+total*32 {
		return errf(path, "edgeboxes", "length %d, want %d for %d boxes", len(b), n*4+total*32, total)
	}
	s.boxes = asRects(view(b[n*4:], forceCopy))
	return nil
}

func (s *Snapshot) loadSignatures(path string, b []byte, forceCopy bool) error {
	if len(b) < 8 {
		return errf(path, "signatures", "truncated header (%d bytes)", len(b))
	}
	res := int(binary.LittleEndian.Uint32(b[0:]))
	words := int(binary.LittleEndian.Uint32(b[4:]))
	if res < 1 || res > 1024 {
		return errf(path, "signatures", "implausible resolution %d", res)
	}
	if words != raster.SignatureWords(res) {
		return errf(path, "signatures", "%d words per signature, resolution %d needs %d", words, res, raster.SignatureWords(res))
	}
	if res != s.meta.SigRes {
		return errf(path, "signatures", "resolution %d disagrees with meta %d", res, s.meta.SigRes)
	}
	if want := 8 + s.meta.Objects*words*8; len(b) != want {
		return errf(path, "signatures", "length %d, want %d for %d objects", len(b), want, s.meta.Objects)
	}
	s.sigRes, s.sigWords = res, words
	s.sigBits = asUint64s(view(b[8:], forceCopy))
	return nil
}

func (s *Snapshot) loadIDs(path string, b []byte, forceCopy bool) error {
	n := s.meta.Objects
	if len(b) != n*8 {
		return errf(path, "ids", "length %d, want %d for %d objects", len(b), n*8, n)
	}
	ids := asUint64s(view(b, forceCopy))
	for i := 1; i < n; i++ {
		if ids[i] <= ids[i-1] {
			return errf(path, "ids", "ids not strictly increasing at %d (%d after %d)", i, ids[i], ids[i-1])
		}
	}
	if n > 0 && s.meta.NextID > 0 && ids[n-1] >= s.meta.NextID {
		return errf(path, "ids", "id %d not below meta next id %d", ids[n-1], s.meta.NextID)
	}
	s.ids = ids
	return nil
}

func (s *Snapshot) loadIntervals(path string, b []byte, forceCopy bool) error {
	n := s.meta.Objects
	if len(b) < 32 {
		return errf(path, "intervals", "truncated header (%d bytes)", len(b))
	}
	g := interval.Grid{
		Order: int(binary.LittleEndian.Uint32(b[0:])),
		MinX:  mathFloat64(b[8:]),
		MinY:  mathFloat64(b[16:]),
		Size:  mathFloat64(b[24:]),
	}
	if !g.Valid() {
		return errf(path, "intervals", "invalid grid (order %d, size %v)", g.Order, g.Size)
	}
	if g.Order != s.meta.IntervalOrder {
		return errf(path, "intervals", "order %d disagrees with meta %d", g.Order, s.meta.IntervalOrder)
	}
	countsEnd := 32 + n*4
	dataStart := int(align8(uint64(countsEnd)))
	if len(b) < dataStart {
		return errf(path, "intervals", "length %d too short for %d counts", len(b), n)
	}
	if (len(b)-dataStart)%8 != 0 {
		return errf(path, "intervals", "span payload %d bytes is not word-aligned", len(b)-dataStart)
	}
	counts := asUint32s(view(b[32:countsEnd], forceCopy))
	words := asUint64s(view(b[dataStart:], forceCopy))
	// FromParts validates the counts against the data (overflow-checked
	// prefix sums, exact total) and every span list's invariants before
	// anything is aliased into query state, so corrupt or hostile interval
	// sections fail closed here rather than mid-join.
	col, err := interval.FromParts(g, counts, words)
	if err != nil {
		return errf(path, "intervals", "%v", err)
	}
	s.ivals = col
	return nil
}

func mathFloat64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// nextIDFloor is the smallest NextID consistent with the stored objects.
func (s *Snapshot) nextIDFloor() uint64 {
	if n := s.meta.Objects; s.ids == nil && n > 0 {
		return uint64(n)
	} else if n > 0 {
		return s.ids[n-1] + 1
	}
	return 0
}

// Close releases the snapshot's mapping, if any. Views handed out by the
// accessors (datasets, signatures, edge boxes) must not be used after
// Close; callers that keep a layer alive simply never close its snapshot.
func (s *Snapshot) Close() error {
	if s.unmap != nil {
		un := s.unmap
		s.unmap = nil
		return un()
	}
	return nil
}

// Meta returns the snapshot's self-description.
func (s *Snapshot) Meta() Meta { return s.meta }

// Stats returns how the snapshot was loaded.
func (s *Snapshot) Stats() LoadStats { return s.stats }

// NumObjects returns the number of stored objects.
func (s *Snapshot) NumObjects() int { return s.meta.Objects }

// Dataset materializes the stored layer as a data.Dataset whose polygon
// vertex slices are views into the snapshot (zero-copy on the mmap path).
// The polygons must be treated as read-only.
func (s *Snapshot) Dataset() *data.Dataset {
	objs := make([]*geom.Polygon, s.meta.Objects)
	for i := range objs {
		objs[i] = geom.RestoredPolygon(s.coords[s.vertOff[i]:s.vertOff[i+1]:s.vertOff[i+1]], s.mbrs[i])
	}
	return &data.Dataset{Name: s.meta.Name, Objects: objs}
}

// Tree materializes the persisted R-tree. Each call builds a fresh tree
// from the packed image; callers share the result (query.Layer holds it).
func (s *Snapshot) Tree() (*rtree.Tree, error) {
	t, err := rtree.FromPacked(s.packed)
	if err != nil {
		// Validated at Open; only reachable if the caller mutated views.
		return nil, errf(s.path, "rtree", "%v", err)
	}
	return t, nil
}

// HasEdgeBoxes reports whether the snapshot persisted edge-index boxes.
func (s *Snapshot) HasEdgeBoxes() bool { return s.boxOff != nil }

// EdgeBoxes returns object id's flattened edge-index hierarchy (possibly
// empty for small polygons), or nil when the section was omitted.
func (s *Snapshot) EdgeBoxes(id int) []geom.Rect {
	if s.boxOff == nil {
		return nil
	}
	return s.boxes[s.boxOff[id]:s.boxOff[id+1]:s.boxOff[id+1]]
}

// HasSignatures reports whether the snapshot persisted raster signatures.
func (s *Snapshot) HasSignatures() bool { return s.sigRes > 0 }

// SigRes returns the stored signature resolution (0 when omitted).
func (s *Snapshot) SigRes() int { return s.sigRes }

// IDs returns the stored stable object ids (a view into the snapshot,
// strictly increasing), or nil when the section was omitted — identity
// ids then apply. The slice must not be mutated.
func (s *Snapshot) IDs() []uint64 { return s.ids }

// NextID returns the next stable id the live table should assign: the
// persisted lineage value when present, otherwise the smallest id above
// every stored object.
func (s *Snapshot) NextID() uint64 {
	if s.meta.NextID > 0 {
		return s.meta.NextID
	}
	return s.nextIDFloor()
}

// AppliedLSN returns the highest WAL LSN folded into this snapshot
// generation (0 for load-only snapshots).
func (s *Snapshot) AppliedLSN() uint64 { return s.meta.AppliedLSN }

// HasIntervals reports whether the snapshot persisted the v2 interval
// column.
func (s *Snapshot) HasIntervals() bool { return s.ivals != nil }

// Intervals returns the persisted interval column (a validated view into
// the snapshot), or nil when the section was omitted. The column is
// immutable and safe for concurrent readers.
func (s *Snapshot) Intervals() *interval.Column { return s.ivals }

// Signature returns object id's persisted raster signature (a view into
// the snapshot), or an invalid zero signature when none are stored.
func (s *Snapshot) Signature(id int) raster.Signature {
	if s.sigRes == 0 {
		return raster.Signature{}
	}
	return raster.Signature{
		Bounds: s.mbrs[id],
		Res:    s.sigRes,
		Words:  s.sigBits[id*s.sigWords : (id+1)*s.sigWords : (id+1)*s.sigWords],
	}
}
