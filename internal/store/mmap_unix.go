//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapPath maps path read-only. ok is false when mapping is unavailable
// (open/stat/mmap failure, empty file); callers fall back to ReadFile.
// The returned cleanup unmaps the region; the file descriptor is closed
// immediately (the mapping keeps the pages alive).
func mmapPath(path string) (b []byte, unmap func() error, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, false
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil || fi.Size() <= 0 || fi.Size() != int64(int(fi.Size())) {
		return nil, nil, false
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return m, func() error { return syscall.Munmap(m) }, true
}
