// Package store persists query-ready layers as versioned binary
// snapshots: the geometry columns, precomputed MBRs, the STR-bulk-loaded
// R-tree, the edge-index box hierarchies, and optional per-object
// conservative raster signatures, each in its own CRC32-guarded section
// of a single file. The prepare-once/query-many argument is the one
// Raster Interval Object Approximations and Adaptive Geospatial Joins
// make: the artifacts the refinement step needs are cheap to store next
// to the geometry and expensive to rebuild on every process start.
//
// Layout (all little-endian, sections 8-byte aligned):
//
//	offset 0   magic    "SPSNAP01"                      8 bytes
//	offset 8   version  uint32 (currently 1)
//	offset 12  sections uint32 (count, ≤ 64)
//	offset 16  tableCRC uint32 (CRC32-IEEE of the table bytes)
//	offset 20  reserved uint32
//	offset 24  table    sections × 32-byte entries:
//	           id uint32 · reserved uint32 · offset uint64 ·
//	           length uint64 · crc uint32 · reserved uint32
//	...        section payloads, zero-padded to 8-byte alignment
//
// Writes are atomic: the snapshot is assembled in a temp file in the
// destination directory, synced, and renamed into place, so readers only
// ever observe complete snapshots. Reads memory-map the file when the
// platform allows (zero-copy column access) and fall back to
// read-into-slice otherwise; every structural violation — truncation, bad
// magic, version skew, CRC mismatch, impossible counts — surfaces as a
// typed *FormatError, never a panic.
package store

import "fmt"

// Magic identifies snapshot files; the trailing digits version the layout
// family (structural changes that renumber sections bump Version instead).
const Magic = "SPSNAP01"

// Version is the current format version. Readers reject other versions
// with a typed error so version skew across deployments degrades to a
// rebuild, not a misparse.
const Version = 1

const (
	headerSize     = 24
	tableEntrySize = 32

	// maxSections caps the table a reader will allocate for; the format
	// defines nine sections, so the cap only bounds hostile input.
	maxSections = 64
)

// Section identifiers. Unknown ids are ignored by readers (forward
// compatibility for additive sections); the required set must be present.
const (
	secMeta       = 1 // JSON Meta record
	secVertCounts = 2 // per-object vertex counts, n × uint32
	secCoords     = 3 // vertex coordinates, totalVerts × 2 float64
	secMBRs       = 4 // per-object MBRs, n × 4 float64
	secRTree      = 5 // packed STR R-tree (header + nodes + entry ids)
	secEdgeBoxes  = 6 // per-object edge-index boxes (counts + flat rects)
	secSigs       = 7 // per-object raster signatures (header + bitmaps)
	secIDs        = 8 // per-object stable ids, n × uint64, strictly increasing
	secIntervals  = 9 // per-object Hilbert interval lists (header + counts + spans)
)

func sectionName(id uint32) string {
	switch id {
	case secMeta:
		return "meta"
	case secVertCounts:
		return "vertcounts"
	case secCoords:
		return "coords"
	case secMBRs:
		return "mbrs"
	case secRTree:
		return "rtree"
	case secEdgeBoxes:
		return "edgeboxes"
	case secSigs:
		return "signatures"
	case secIDs:
		return "ids"
	case secIntervals:
		return "intervals"
	default:
		return fmt.Sprintf("section-%d", id)
	}
}

// FormatError describes why a snapshot could not be opened: which file,
// which section (empty for file-level violations like a bad magic), and
// what was wrong. All corruption — truncated files, CRC mismatches,
// version skew, impossible counts — is reported through this type;
// readers never panic on hostile bytes.
type FormatError struct {
	Path    string // file path, empty when reading from memory
	Section string // section name, empty for file-level errors
	Msg     string
}

func (e *FormatError) Error() string {
	where := "snapshot"
	if e.Path != "" {
		where = e.Path
	}
	if e.Section != "" {
		return fmt.Sprintf("store: %s: section %s: %s", where, e.Section, e.Msg)
	}
	return fmt.Sprintf("store: %s: %s", where, e.Msg)
}

func errf(path, section, format string, args ...any) *FormatError {
	return &FormatError{Path: path, Section: section, Msg: fmt.Sprintf(format, args...)}
}

// Meta is the snapshot's JSON self-description (section 1): identity and
// provenance, plus the counts the other sections must agree with.
type Meta struct {
	Name       string `json:"name"`
	Objects    int    `json:"objects"`
	TotalVerts int    `json:"total_verts"`
	SigRes     int    `json:"sig_res,omitempty"`        // 0 = no signatures stored
	IntervalOrder int `json:"interval_order,omitempty"` // 0 = no interval column stored
	Tool       string `json:"tool,omitempty"`
	Created    string `json:"created,omitempty"` // RFC 3339

	// Live-ingestion lineage (zero for load-only snapshots). NextID is
	// the next stable object id the table will assign; AppliedLSN is the
	// highest WAL LSN folded into this generation, so recovery replays
	// only records beyond it.
	NextID     uint64 `json:"next_id,omitempty"`
	AppliedLSN uint64 `json:"applied_lsn,omitempty"`
}

// align8 rounds n up to the next multiple of 8.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }
