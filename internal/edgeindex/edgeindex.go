// Package edgeindex provides a per-polygon edge index: an immutable,
// chain-ordered, packed bounding-box hierarchy that answers "which edges
// touch rectangle R" in O(k + log n) instead of the O(n) linear scan of
// the whole edge chain. It is the paper's §4.1 "avoid rendering
// unnecessary edges" restriction made output-sensitive, in the spirit of
// the TR*-tree refinement of Brinkhoff et al. (filter.EdgeTree) but
// designed for the refinement hot path: queries are allocation-free,
// append into caller-provided scratch buffers, and return edges in chain
// order so the result is bit-identical to the linear scan that
// sweep.CandidateEdgesInto performs.
//
// The structure exploits that a polygon boundary is a spatially coherent
// chain: consecutive edges are neighbors in space, so grouping the chain
// into runs of Fanout consecutive edges yields tight leaf boxes without
// any sort or space partitioning (the same insight as STR bulk packing,
// with the chain order standing in for the space-filling order). Levels of
// Fanout-ary grouping over the run boxes form the hierarchy; each edge
// belongs to exactly one leaf run, so queries need no deduplication.
//
// An Index is immutable after New and safe for concurrent readers; one
// index is built lazily per object and shared by every worker of a
// parallel join (see query.Layer.EdgeIndex).
package edgeindex

import (
	"repro/internal/geom"
	"repro/internal/sweep"
)

const (
	// Fanout is the number of edges per leaf run and children per
	// internal node. 8 keeps a run box within one cache line's worth of
	// segment data and the hierarchy at most 4 levels deep for the
	// largest evaluation polygons (~40k edges).
	Fanout = 8

	// MinIndexEdges is the edge count below which New does not build a
	// hierarchy: for small chains the linear scan's single pass is
	// already cheaper than any descent, so the index degrades to exactly
	// that scan (Indexed reports false).
	MinIndexEdges = 3 * Fanout
)

// Index is the packed edge index of one polygon. The zero value is not
// usable; build indexes with New.
type Index struct {
	poly *geom.Polygon
	// levels[0] holds one bounding box per run of Fanout consecutive
	// edges; levels[l] boxes group Fanout nodes of levels[l-1]. The top
	// level always has a single root box. nil for small polygons.
	levels [][]geom.Rect
}

// New builds the edge index of p. Building is one O(n) pass over the edge
// chain plus O(n/Fanout) box merges; the result is immutable. For
// polygons with fewer than MinIndexEdges edges no hierarchy is stored and
// queries fall back to the plain linear scan.
func New(p *geom.Polygon) *Index {
	ix := &Index{poly: p}
	n := p.NumEdges()
	if n < MinIndexEdges {
		return ix
	}
	verts := p.Verts
	leaves := make([]geom.Rect, (n+Fanout-1)/Fanout)
	for run := range leaves {
		lo := run * Fanout
		hi := min(lo+Fanout, n)
		// An edge run's box is the box of vertices lo..hi inclusive (the
		// run's edges end at vertex hi, wrapping to 0 for the last edge).
		r := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			r = r.ExtendPoint(verts[i])
		}
		if hi < n {
			r = r.ExtendPoint(verts[hi])
		} else {
			r = r.ExtendPoint(verts[0])
		}
		leaves[run] = r
	}
	ix.levels = append(ix.levels, leaves)
	for level := leaves; len(level) > 1; {
		up := make([]geom.Rect, (len(level)+Fanout-1)/Fanout)
		for i := range up {
			lo := i * Fanout
			hi := min(lo+Fanout, len(level))
			r := level[lo]
			for j := lo + 1; j < hi; j++ {
				r = r.Union(level[j])
			}
			up[i] = r
		}
		ix.levels = append(ix.levels, up)
		level = up
	}
	return ix
}

// Polygon returns the indexed polygon.
func (ix *Index) Polygon() *geom.Polygon { return ix.poly }

// Indexed reports whether a hierarchy was built (false for small
// polygons, whose queries run the plain linear scan).
func (ix *Index) Indexed() bool { return ix.levels != nil }

// AppendEdgesInRect appends the edges of the indexed polygon that have at
// least one point in r to dst, in chain order — the exact edge set and
// order that sweep.AppendEdgesInRange(dst, p, r, 0, n) produces. The
// second result is the number of edges actually examined by the shared
// selection predicate; n minus it is the work the hierarchy pruned. The
// method performs no allocations beyond growing dst and is safe for
// concurrent callers.
func (ix *Index) AppendEdgesInRect(dst []geom.Segment, r geom.Rect) ([]geom.Segment, int) {
	if ix.levels == nil {
		n := ix.poly.NumEdges()
		return sweep.AppendEdgesInRange(dst, ix.poly, r, 0, n), n
	}
	examined := 0
	dst = ix.walk(len(ix.levels)-1, 0, r, dst, &examined)
	return dst, examined
}

// walk descends the hierarchy in node order (which is chain order),
// pruning subtrees whose box misses r and handing qualifying leaf runs to
// the shared selection predicate. Depth is at most log_Fanout(n), so the
// recursion stays within a handful of frames.
func (ix *Index) walk(level, node int, r geom.Rect, dst []geom.Segment, examined *int) []geom.Segment {
	if !ix.levels[level][node].Intersects(r) {
		return dst
	}
	lo := node * Fanout
	if level == 0 {
		hi := min(lo+Fanout, ix.poly.NumEdges())
		*examined += hi - lo
		return sweep.AppendEdgesInRange(dst, ix.poly, r, lo, hi)
	}
	hi := min(lo+Fanout, len(ix.levels[level-1]))
	for c := lo; c < hi; c++ {
		dst = ix.walk(level-1, c, r, dst, examined)
	}
	return dst
}

// NumEdges returns the number of indexed edges.
func (ix *Index) NumEdges() int { return ix.poly.NumEdges() }

// levelSizes returns the per-level box counts New would produce for a
// polygon with n edges (leaves first), or nil when n < MinIndexEdges. The
// shape is fully determined by n, which is what lets the snapshot format
// persist only the flattened boxes.
func levelSizes(n int) []int {
	if n < MinIndexEdges {
		return nil
	}
	var sizes []int
	for sz := (n + Fanout - 1) / Fanout; ; sz = (sz + Fanout - 1) / Fanout {
		sizes = append(sizes, sz)
		if sz == 1 {
			return sizes
		}
	}
}

// FlatBoxCount returns the number of boxes FlatBoxes yields for a polygon
// with n edges: 0 below MinIndexEdges, the total hierarchy size otherwise.
// Snapshot readers use it to validate a persisted box column before
// handing it to FromFlatBoxes.
func FlatBoxCount(n int) int {
	total := 0
	for _, sz := range levelSizes(n) {
		total += sz
	}
	return total
}

// FlatBoxes returns every hierarchy box concatenated leaves-first (the
// order levelSizes describes), or nil for a non-indexed polygon. The
// returned slice may alias the index's storage and must not be mutated.
func (ix *Index) FlatBoxes() []geom.Rect {
	if ix.levels == nil {
		return nil
	}
	total := 0
	for _, lvl := range ix.levels {
		total += len(lvl)
	}
	flat := make([]geom.Rect, 0, total)
	for _, lvl := range ix.levels {
		flat = append(flat, lvl...)
	}
	return flat
}

// FromFlatBoxes rebuilds the index of p from boxes previously produced by
// FlatBoxes. The level structure is derived from p's edge count; a length
// mismatch (corrupt or mismatched snapshot data) returns ok=false and the
// caller should fall back to New. Empty boxes with a small polygon is the
// valid "not indexed" encoding. The boxes are trusted — callers establish
// their integrity (e.g. by snapshot CRC) or accept pruning errors; the
// shared selection predicate still bounds what edges can be returned, so
// wrong boxes can only drop or keep edges, never fabricate them.
func FromFlatBoxes(p *geom.Polygon, boxes []geom.Rect) (*Index, bool) {
	sizes := levelSizes(p.NumEdges())
	if sizes == nil {
		if len(boxes) != 0 {
			return nil, false
		}
		return &Index{poly: p}, true
	}
	total := 0
	for _, sz := range sizes {
		total += sz
	}
	if len(boxes) != total {
		return nil, false
	}
	ix := &Index{poly: p, levels: make([][]geom.Rect, len(sizes))}
	off := 0
	for l, sz := range sizes {
		ix.levels[l] = boxes[off : off+sz : off+sz]
		off += sz
	}
	return ix, true
}
