package edgeindex

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestFlatBoxesRoundTrip pins FlatBoxes → FromFlatBoxes as an identity:
// the rebuilt index answers every rectangle query with the exact edge set
// and examined count of the original, across the indexed and non-indexed
// size regimes.
func TestFlatBoxesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{3, MinIndexEdges - 1, MinIndexEdges, 100, 1000, 5000} {
		p := star(rng, 50, 50, 40, n)
		orig := New(p)
		flat := orig.FlatBoxes()
		back, ok := FromFlatBoxes(p, flat)
		if !ok {
			t.Fatalf("n=%d: FromFlatBoxes rejected its own FlatBoxes", n)
		}
		if back.Indexed() != orig.Indexed() {
			t.Fatalf("n=%d: indexedness changed: %v → %v", n, orig.Indexed(), back.Indexed())
		}
		for trial := 0; trial < 100; trial++ {
			r := randRect(rng, p)
			a, ea := orig.AppendEdgesInRect(nil, r)
			b, eb := back.AppendEdgesInRect(nil, r)
			if ea != eb || len(a) != len(b) {
				t.Fatalf("n=%d rect %v: examined %d/%d edges %d/%d", n, r, ea, eb, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("n=%d rect %v: edge %d differs: %v vs %v", n, r, i, a[i], b[i])
				}
			}
		}
	}
}

// TestFromFlatBoxesRejectsMismatch pins the length validation: boxes that
// cannot belong to the polygon's hierarchy shape are refused rather than
// silently misassembled.
func TestFromFlatBoxesRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	big := star(rng, 50, 50, 40, 500)
	small := star(rng, 50, 50, 40, 5)
	flat := New(big).FlatBoxes()
	if _, ok := FromFlatBoxes(big, flat[:len(flat)-1]); ok {
		t.Fatalf("truncated boxes accepted")
	}
	if _, ok := FromFlatBoxes(big, append(append([]geom.Rect(nil), flat...), geom.Rect{})); ok {
		t.Fatalf("oversized boxes accepted")
	}
	if _, ok := FromFlatBoxes(big, nil); ok {
		t.Fatalf("indexed polygon with no boxes accepted")
	}
	if _, ok := FromFlatBoxes(small, flat); ok {
		t.Fatalf("small polygon with boxes accepted")
	}
	if ix, ok := FromFlatBoxes(small, nil); !ok || ix.Indexed() {
		t.Fatalf("small polygon with empty boxes must yield the linear-scan index")
	}
}
