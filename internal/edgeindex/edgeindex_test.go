package edgeindex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/sweep"
)

// star builds a random star-shaped polygon (always simple).
func star(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	angles := make([]float64, n)
	step := 2 * math.Pi / float64(n)
	for i := range angles {
		angles[i] = float64(i)*step + rng.Float64()*step*0.9
	}
	pts := make([]geom.Point, n)
	for i, a := range angles {
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

// TestDifferentialAgainstLinearScan is the index's correctness anchor:
// for random polygons and random query rectangles the indexed collection
// must produce exactly the slice — same edges, same chain order — that
// the full linear scan produces, because both route every examined edge
// through the shared predicate sweep.AppendEdgesInRange.
func TestDifferentialAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var got, want []geom.Segment
	for trial := range 2000 {
		// Sizes straddle MinIndexEdges so both the hierarchy and the
		// small-polygon fallback paths are exercised.
		n := 3 + rng.Intn(120)
		if trial%5 == 0 {
			n = MinIndexEdges + rng.Intn(3000) // deep hierarchies too
		}
		p := star(rng, rng.Float64()*10, rng.Float64()*10, 0.5+rng.Float64()*5, n)
		ix := New(p)
		if ix.Polygon() != p {
			t.Fatalf("trial %d: Polygon() mismatch", trial)
		}
		for range 8 {
			r := randRect(rng, p)
			want = sweep.AppendEdgesInRange(want[:0], p, r, 0, p.NumEdges())
			var examined int
			got, examined = ix.AppendEdgesInRect(got[:0], r)
			if examined < len(got) || examined > p.NumEdges() {
				t.Fatalf("trial %d: examined %d outside [%d, %d]", trial, examined, len(got), p.NumEdges())
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: indexed %d edges, linear %d (rect %v, n=%d)",
					trial, len(got), len(want), r, n)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: edge %d differs: indexed %v, linear %v",
						trial, i, got[i], want[i])
				}
			}
		}
	}
}

// randRect samples query rectangles spanning the interesting regimes:
// tiny rects deep inside the polygon, rects around its boundary, rects
// covering everything, and rects clear off to the side.
func randRect(rng *rand.Rand, p *geom.Polygon) geom.Rect {
	b := p.Bounds()
	switch rng.Intn(4) {
	case 0: // tiny, near the polygon
		cx := b.MinX + rng.Float64()*b.Width()
		cy := b.MinY + rng.Float64()*b.Height()
		w := b.Width() * 0.05 * rng.Float64()
		h := b.Height() * 0.05 * rng.Float64()
		return geom.R(cx-w, cy-h, cx+w, cy+h)
	case 1: // moderate overlap
		x0 := b.MinX + (rng.Float64()*1.4-0.2)*b.Width()
		y0 := b.MinY + (rng.Float64()*1.4-0.2)*b.Height()
		return geom.R(x0, y0, x0+rng.Float64()*b.Width(), y0+rng.Float64()*b.Height())
	case 2: // covers the whole polygon
		return b.Expand(1)
	default: // disjoint
		return geom.R(b.MaxX+1, b.MaxY+1, b.MaxX+2, b.MaxY+2)
	}
}

// TestSmallPolygonFallback pins the degraded mode: below MinIndexEdges no
// hierarchy exists and every edge is examined.
func TestSmallPolygonFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := star(rng, 0, 0, 2, MinIndexEdges-1)
	ix := New(p)
	if ix.Indexed() {
		t.Fatalf("polygon with %d edges should not build a hierarchy", p.NumEdges())
	}
	got, examined := ix.AppendEdgesInRect(nil, p.Bounds())
	if examined != p.NumEdges() {
		t.Fatalf("fallback examined %d, want all %d", examined, p.NumEdges())
	}
	if len(got) != p.NumEdges() {
		t.Fatalf("fallback over full bounds returned %d edges, want %d", len(got), p.NumEdges())
	}
}

// TestPruningHappens makes sure the hierarchy actually skips work on
// selective rectangles — the index's reason to exist.
func TestPruningHappens(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := star(rng, 0, 0, 10, 4096)
	ix := New(p)
	if !ix.Indexed() {
		t.Fatal("large polygon should build a hierarchy")
	}
	if ix.NumEdges() != 4096 {
		t.Fatalf("NumEdges = %d", ix.NumEdges())
	}
	// A tiny rect at the boundary touches few runs.
	r := geom.R(9.0, -0.05, 10.1, 0.05)
	_, examined := ix.AppendEdgesInRect(nil, r)
	if examined >= p.NumEdges()/4 {
		t.Fatalf("selective rect examined %d of %d edges — no pruning", examined, p.NumEdges())
	}
}

func BenchmarkAppendEdgesInRect(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := star(rng, 0, 0, 10, 2048)
	ix := New(p)
	r := geom.R(8, -1, 11, 1)
	buf := make([]geom.Segment, 0, 256)
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for range b.N {
			buf, _ = ix.AppendEdgesInRect(buf[:0], r)
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for range b.N {
			buf = sweep.AppendEdgesInRange(buf[:0], p, r, 0, p.NumEdges())
		}
	})
}
