package raster

import (
	"math"

	"repro/internal/geom"
)

// DrawSegment rasterizes the data-space segment s as an anti-aliased line
// of the current width with blending disabled: every pixel whose cell
// overlaps the width-w capsule around the segment is written with the
// current color. This is the conservative coverage guarantee of paper
// §2.2.2: with anti-aliasing on, a pixel touched by the segment is always
// colored, so two intersecting segments always share a colored pixel.
func (c *Context) DrawSegment(s geom.Segment) {
	c.drawCapsule(c.Project(s.A), c.Project(s.B), c.lineWidth/2)
}

// DrawSegmentWidth is DrawSegment with an explicit width in pixels,
// bypassing the context line width. Used by tests and by callers that vary
// width per primitive.
func (c *Context) DrawSegmentWidth(s geom.Segment, widthPx float64) {
	c.drawCapsule(c.Project(s.A), c.Project(s.B), widthPx/2)
}

// DrawPoint rasterizes the data-space point p as a round anti-aliased
// point of diameter sizePx pixels, the widened end caps of the paper's
// distance test (Figure 6).
func (c *Context) DrawPoint(p geom.Point, sizePx float64) {
	w := c.Project(p)
	c.drawCapsule(w, w, sizePx/2)
}

// DrawEdges rasterizes a batch of data-space segments.
func (c *Context) DrawEdges(segs []geom.Segment) {
	for _, s := range segs {
		c.DrawSegment(s)
	}
}

// DrawPolygonEdges rasterizes the boundary chain of p, the per-polygon
// render call of Algorithm 3.1 steps 2.3 and 2.5.
func (c *Context) DrawPolygonEdges(p *geom.Polygon) {
	for i := range p.NumEdges() {
		c.DrawSegment(p.Edge(i))
	}
}

// drawCapsule colors a conservative superset of the cells whose closed
// unit square intersects the capsule of half-width hw around the
// window-space segment a-b, by walking columns along the segment's major
// axis and coloring the segment's per-column y-extent widened by the
// slope-corrected margin hw·√(1+m²) (the band's vertical half-extent).
// With the major-axis transpose the margin is at most √2·hw, so the
// over-coverage relative to the exact capsule stays well under one cell —
// the same order as real hardware's anti-aliased coverage — while the
// inner loop is a handful of flops per column. This is the simulated card's fill path; the exact-coverage
// reference implementation drawCapsuleExact backs the tests.
func (c *Context) drawCapsule(a, b geom.Point, hw float64) {
	if c.Hook != nil {
		c.Hook("raster.draw")
	}
	c.SegmentsDrawn++
	w, h := c.color.W, c.color.H
	fw, fh := float64(w), float64(h)

	// Trivial reject against the window.
	if math.Max(a.X, b.X)+hw < 0 || math.Max(a.Y, b.Y)+hw < 0 ||
		math.Min(a.X, b.X)-hw > fw || math.Min(a.Y, b.Y)-hw > fh {
		return
	}

	dx, dy := b.X-a.X, b.Y-a.Y
	transposed := math.Abs(dy) > math.Abs(dx)
	if transposed {
		a.X, a.Y = a.Y, a.X
		b.X, b.Y = b.Y, b.X
		dx, dy = dy, dx
		w, h = h, w
	}
	if a.X > b.X {
		a, b = b, a
		dx, dy = -dx, -dy
	}
	var m float64 // |slope| ≤ 1 along the major axis
	if dx != 0 {
		m = dy / dx
	}
	// Vertical half-extent of the width-2·hw band around the line within
	// any column: the perpendicular half-width projected onto y. With the
	// major-axis transpose |m| ≤ 1, so the band over-covers the exact
	// capsule by at most √2·hw − hw ≈ 0.41·hw.
	margin := hw * math.Sqrt(1+m*m)

	// All clamped indices are non-negative, so int() truncation is floor.
	x0, x1 := 0, w-1
	if v := a.X - hw; v > 0 {
		if v >= float64(w) {
			return
		}
		x0 = int(v)
	}
	if v := b.X + hw; v < float64(w-1) {
		if v < 0 {
			return
		}
		x1 = int(v)
	}
	pix, stride, color, written := c.color.Pix, c.color.W, c.drawColor, int64(0)
	orMode := c.orBits != 0
	bits := int32(c.orBits)
	fh = float64(h) // h may have been swapped by the transpose
	// Written bounds in loop coordinates, for the dirty-region tracking.
	wc0, wc1, wr0, wr1 := x1+1, x0-1, h, -1
	for cx := x0; cx <= x1; cx++ {
		// Segment y-extent over the column's x-interval clamped to the
		// segment's x-range; cap columns clamp to the nearest endpoint.
		lo, hi := float64(cx), float64(cx)+1
		if lo < a.X {
			lo = a.X
		}
		if hi > b.X {
			hi = b.X
		}
		if lo > hi {
			// Column beyond an endpoint: the cap. Clamp to that endpoint.
			if float64(cx) < a.X {
				lo, hi = a.X, a.X
			} else {
				lo, hi = b.X, b.X
			}
		}
		yl := a.Y + m*(lo-a.X)
		yh := a.Y + m*(hi-a.X)
		if yl > yh {
			yl, yh = yh, yl
		}
		yl -= margin
		yh += margin
		if yh < 0 || yl >= fh {
			continue // column's covered band lies outside the window
		}
		cy0, cy1 := 0, h-1
		if yl > 0 {
			cy0 = int(yl)
		}
		if yh < float64(h-1) {
			cy1 = int(yh)
		}
		if cx < wc0 {
			wc0 = cx
		}
		if cx > wc1 {
			wc1 = cx
		}
		if cy0 < wr0 {
			wr0 = cy0
		}
		if cy1 > wr1 {
			wr1 = cy1
		}
		switch {
		case orMode:
			// Logical-operation path: OR the bit pattern into each pixel.
			if transposed {
				base := cx * stride
				for cy := cy0; cy <= cy1; cy++ {
					pix[base+cy] = float32(int32(pix[base+cy]) | bits)
				}
			} else {
				for i := cy0*stride + cx; i <= cy1*stride+cx; i += stride {
					pix[i] = float32(int32(pix[i]) | bits)
				}
			}
		case transposed:
			// Walking the original y axis: original pixel is (cy, cx).
			base := cx * stride
			for cy := cy0; cy <= cy1; cy++ {
				pix[base+cy] = color
			}
		default:
			for i := cy0*stride + cx; i <= cy1*stride+cx; i += stride {
				pix[i] = color
			}
		}
		written += int64(cy1 - cy0 + 1)
	}
	if written > 0 {
		if transposed {
			// Loop columns walked the original y axis: pixel was (cy, cx).
			c.color.MarkDirty(wr0, wc0, wr1, wc1)
		} else {
			c.color.MarkDirty(wc0, wr0, wc1, wr1)
		}
	}
	c.PixelsWritten += written
}

// DrawSegmentExact is DrawSegment using the exact-coverage reference
// rasterizer; tests use it to pin down the fast path's conservative
// contract, and callers that need the tightest possible filter may trade
// speed for it.
func (c *Context) DrawSegmentExact(s geom.Segment, widthPx float64) {
	c.drawCapsuleExact(c.Project(s.A), c.Project(s.B), widthPx/2)
}

// SegmentTouches reports whether any cell the data-space segment s covers
// (at the given width, 0 meaning the context line width) is already
// colored non-zero in the color buffer. It is the occlusion-query flavor
// of the overlap search: after the first polygon's edges are rendered, the
// second polygon's edges are tested fragment-by-fragment without being
// stored, and the query can stop at the first covered fragment. The cell
// walk is identical to DrawSegment's, so the conservativeness guarantee is
// unchanged.
func (c *Context) SegmentTouches(s geom.Segment, widthPx float64) bool {
	hw := c.lineWidth / 2
	if widthPx > 0 {
		hw = widthPx / 2
	}
	a, b := c.Project(s.A), c.Project(s.B)
	c.SegmentsDrawn++
	w, h := c.color.W, c.color.H
	fw, fh := float64(w), float64(h)
	if math.Max(a.X, b.X)+hw < 0 || math.Max(a.Y, b.Y)+hw < 0 ||
		math.Min(a.X, b.X)-hw > fw || math.Min(a.Y, b.Y)-hw > fh {
		return false
	}
	dx, dy := b.X-a.X, b.Y-a.Y
	transposed := math.Abs(dy) > math.Abs(dx)
	if transposed {
		a.X, a.Y = a.Y, a.X
		b.X, b.Y = b.Y, b.X
		dx, dy = dy, dx
		w, h = h, w
	}
	if a.X > b.X {
		a, b = b, a
		dx, dy = -dx, -dy
	}
	var m float64
	if dx != 0 {
		m = dy / dx
	}
	margin := hw * math.Sqrt(1+m*m)

	x0, x1 := 0, w-1
	if v := a.X - hw; v > 0 {
		if v >= float64(w) {
			return false
		}
		x0 = int(v)
	}
	if v := b.X + hw; v < float64(w-1) {
		if v < 0 {
			return false
		}
		x1 = int(v)
	}
	pix, stride := c.color.Pix, c.color.W
	fh = float64(h)
	for cx := x0; cx <= x1; cx++ {
		lo, hi := float64(cx), float64(cx)+1
		if lo < a.X {
			lo = a.X
		}
		if hi > b.X {
			hi = b.X
		}
		if lo > hi {
			if float64(cx) < a.X {
				lo, hi = a.X, a.X
			} else {
				lo, hi = b.X, b.X
			}
		}
		yl := a.Y + m*(lo-a.X)
		yh := a.Y + m*(hi-a.X)
		if yl > yh {
			yl, yh = yh, yl
		}
		yl -= margin
		yh += margin
		if yh < 0 || yl >= fh {
			continue
		}
		cy0, cy1 := 0, h-1
		if yl > 0 {
			cy0 = int(yl)
		}
		if yh < float64(h-1) {
			cy1 = int(yh)
		}
		if transposed {
			base := cx * stride
			for cy := cy0; cy <= cy1; cy++ {
				if pix[base+cy] != 0 {
					return true
				}
			}
		} else {
			for i := cy0*stride + cx; i <= cy1*stride+cx; i += stride {
				if pix[i] != 0 {
					return true
				}
			}
		}
	}
	return false
}

// drawCapsuleExact colors exactly the cells whose closed unit square
// intersects the capsule of half-width hw around the window-space segment
// a-b. It is the reference implementation that defines the coverage
// contract; the fast path drawCapsule must color a superset of these
// cells.
func (c *Context) drawCapsuleExact(a, b geom.Point, hw float64) {
	c.SegmentsDrawn++
	w, h := c.color.W, c.color.H
	seg := geom.Segment{A: a, B: b}

	minX := math.Min(a.X, b.X) - hw
	maxX := math.Max(a.X, b.X) + hw
	minY := math.Min(a.Y, b.Y) - hw
	maxY := math.Max(a.Y, b.Y) + hw
	if maxX < 0 || maxY < 0 || minX > float64(w) || minY > float64(h) {
		return
	}
	x0 := clampInt(int(math.Floor(minX))-1, 0, w-1)
	x1 := clampInt(int(math.Floor(maxX))+1, 0, w-1)
	y0 := clampInt(int(math.Floor(minY))-1, 0, h-1)
	y1 := clampInt(int(math.Floor(maxY))+1, 0, h-1)
	// Conservative dirty bound: every write below falls in this box.
	c.color.MarkDirty(x0, y0, x1, y1)

	accept := hw + 0.5          // cell inradius
	reject := hw + math.Sqrt2/2 // cell circumradius
	acceptSq := accept * accept
	rejectSq := reject * reject
	hwSq := hw * hw

	for cy := y0; cy <= y1; cy++ {
		row := cy * w
		fy := float64(cy)
		for cx := x0; cx <= x1; cx++ {
			center := geom.Pt(float64(cx)+0.5, fy+0.5)
			d2 := seg.DistSqToPoint(center)
			switch {
			case d2 <= acceptSq:
				// The inscribed disk reaches the capsule: overlap certain.
			case d2 > rejectSq:
				continue // whole cell is outside the capsule
			default:
				// Ambiguous ring: exact box-to-segment distance.
				if boxSegDistSq(float64(cx), fy, seg) > hwSq {
					continue
				}
			}
			if c.orBits != 0 {
				c.color.Pix[row+cx] = float32(int32(c.color.Pix[row+cx]) | int32(c.orBits))
			} else {
				c.color.Pix[row+cx] = c.drawColor
			}
			c.PixelsWritten++
		}
	}
}

// boxSegDistSq returns the squared distance between the closed unit square
// with lower-left corner (bx, by) and segment s; zero when they intersect.
func boxSegDistSq(bx, by float64, s geom.Segment) float64 {
	// Segment endpoint inside the box covers the fully-contained case.
	if bx <= s.A.X && s.A.X <= bx+1 && by <= s.A.Y && s.A.Y <= by+1 {
		return 0
	}
	corners := [4]geom.Point{
		{X: bx, Y: by}, {X: bx + 1, Y: by}, {X: bx + 1, Y: by + 1}, {X: bx, Y: by + 1},
	}
	best := math.Inf(1)
	for i := range 4 {
		edge := geom.Segment{A: corners[i], B: corners[(i+1)%4]}
		if d := s.DistSq(edge); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DrawSegmentBasic rasterizes s with the *basic* (non-anti-aliased)
// OpenGL rule: a pixel is colored iff the segment exits its diamond region
// R_f = {|x-x_f| + |y-y_f| < 1/2} (the diamond-exit rule, paper §2.2.2).
// Segments can disappear entirely under this rule, which is exactly why
// the paper's algorithms require anti-aliased lines; the method exists to
// demonstrate and test that behaviour.
func (c *Context) DrawSegmentBasic(s geom.Segment) {
	a, b := c.Project(s.A), c.Project(s.B)
	w, h := c.color.W, c.color.H
	x0 := clampInt(int(math.Floor(math.Min(a.X, b.X)))-1, 0, w-1)
	x1 := clampInt(int(math.Floor(math.Max(a.X, b.X)))+1, 0, w-1)
	y0 := clampInt(int(math.Floor(math.Min(a.Y, b.Y)))-1, 0, h-1)
	y1 := clampInt(int(math.Floor(math.Max(a.Y, b.Y)))+1, 0, h-1)
	c.color.MarkDirty(x0, y0, x1, y1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			center := geom.Pt(float64(cx)+0.5, float64(cy)+0.5)
			enters, exits := diamondCrossing(a, b, center)
			if enters && exits {
				c.color.Pix[cy*w+cx] = c.drawColor
				c.PixelsWritten++
			}
		}
	}
}

// diamondCrossing reports whether the segment a-b intersects the open
// diamond of L1-radius 1/2 around ct (enters), and whether it also leaves
// it, i.e. the segment's endpoint b does not lie inside (exits).
func diamondCrossing(a, b, ct geom.Point) (enters, exits bool) {
	// Work in diamond-centered coordinates.
	ax, ay := a.X-ct.X, a.Y-ct.Y
	bx, by := b.X-ct.X, b.Y-ct.Y
	// Clip the parametric segment a + t(b-a), t in [0,1], against the four
	// half-planes ±x ± y < 1/2 (Liang–Barsky).
	t0, t1 := 0.0, 1.0
	dx, dy := bx-ax, by-ay
	for _, hp := range [4][3]float64{
		{+1, +1, 0.5}, {+1, -1, 0.5}, {-1, +1, 0.5}, {-1, -1, 0.5},
	} {
		p := hp[0]*dx + hp[1]*dy
		q := hp[2] - (hp[0]*ax + hp[1]*ay)
		if p == 0 {
			if q <= 0 {
				return false, false // parallel and outside
			}
			continue
		}
		t := q / p
		if p > 0 {
			if t < t1 {
				t1 = t
			}
		} else {
			if t > t0 {
				t0 = t
			}
		}
	}
	if t0 >= t1 {
		return false, false
	}
	enters = true
	// b inside the open diamond means the segment never exits.
	exits = math.Abs(bx)+math.Abs(by) >= 0.5
	return enters, exits
}
