package raster

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestASCII(t *testing.T) {
	c := NewContext(3, 2)
	c.Color().Set(0, 1, 1) // top-left in window coords
	c.Color().Set(2, 0, 3)
	got := c.Color().ASCII(nil)
	want := "/..\n..#\n"
	if got != want {
		t.Errorf("ASCII =\n%q, want\n%q", got, want)
	}
	// Custom palette.
	got = c.Color().ASCII(func(v float32) byte {
		if v != 0 {
			return 'X'
		}
		return ' '
	})
	if got != "X  \n  X\n" {
		t.Errorf("custom palette = %q", got)
	}
	if DefaultPalette(0.5) != '*' {
		t.Error("unexpected value not mapped to '*'")
	}
}

func TestWritePGM(t *testing.T) {
	c := NewContext(4, 4)
	c.SetColor(1)
	c.DrawSegment(geom.Seg(geom.Pt(0, 0), geom.Pt(4, 4)))
	var buf bytes.Buffer
	if err := c.Color().WritePGM(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P5\n4 4\n255\n") {
		t.Fatalf("bad header: %q", out[:12])
	}
	if len(out) != len("P5\n4 4\n255\n")+16 {
		t.Fatalf("payload size %d", len(out))
	}
	// Some pixels fully on, some off.
	payload := out[len(out)-16:]
	has0, has255 := false, false
	for _, b := range payload {
		if b == 0 {
			has0 = true
		}
		if b == 255 {
			has255 = true
		}
	}
	if !has0 || !has255 {
		t.Errorf("expected both 0 and 255 pixels, got %v", payload)
	}
	// maxVal <= 0 falls back to 1 rather than dividing by zero.
	if err := c.Color().WritePGM(&buf, 0); err != nil {
		t.Fatal(err)
	}
}
