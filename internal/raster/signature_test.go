package raster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// boundaryDist is the brute-force minimum distance between the two
// polygons' boundaries — the ground truth the signature test is judged
// against.
func boundaryDist(p, q *geom.Polygon) float64 {
	d := math.Inf(1)
	for i := 0; i < p.NumEdges(); i++ {
		for j := 0; j < q.NumEdges(); j++ {
			if v := p.Edge(i).Dist(q.Edge(j)); v < d {
				d = v
			}
		}
	}
	return d
}

// TestSignatureCoversBoundary pins the conservativeness of one signature
// in isolation: every boundary point (sampled densely along each edge)
// falls in a set cell.
func TestSignatureCoversBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := starPoly(rng, 50, 50, 5+rng.Float64()*40, 3+rng.Intn(20))
		sig := ComputeSignature(p, 0)
		if !sig.Valid() {
			t.Fatalf("trial %d: signature invalid", trial)
		}
		w := sig.Bounds.Width() / float64(sig.Res)
		h := sig.Bounds.Height() / float64(sig.Res)
		for i := 0; i < p.NumEdges(); i++ {
			e := p.Edge(i)
			for s := 0.0; s <= 1.0; s += 1.0 / 64 {
				pt := geom.Pt(e.A.X+(e.B.X-e.A.X)*s, e.A.Y+(e.B.Y-e.A.Y)*s)
				// A point exactly on a shared cell border may be attributed
				// to either adjacent cell by the renderer's arithmetic, so
				// accept any cell whose closed rect (with border slack)
				// contains the point.
				fx := (pt.X - sig.Bounds.MinX) / w
				fy := (pt.Y - sig.Bounds.MinY) / h
				covered := false
				for y := int(math.Floor(fy - 1e-6)); y <= int(math.Floor(fy+1e-6)) && !covered; y++ {
					for x := int(math.Floor(fx - 1e-6)); x <= int(math.Floor(fx+1e-6)) && !covered; x++ {
						cx := min(max(x, 0), sig.Res-1)
						cy := min(max(y, 0), sig.Res-1)
						covered = sig.Bit(cx, cy)
					}
				}
				if !covered {
					t.Fatalf("trial %d: boundary point %v in clear cell (%g,%g)", trial, pt, fx, fy)
				}
			}
		}
	}
}

// TestSignatureCoversMBREdges pins the regression where segments lying
// exactly on the polygon's own MBR max edges (every axis-aligned
// rectangle's top and right edge) were dropped by the half-open window
// mapping, leaving clear cells under real boundary and turning the
// disjointness "proof" into a wrong answer.
func TestSignatureCoversMBREdges(t *testing.T) {
	rect, err := geom.NewPolygon([]geom.Point{
		geom.Pt(10, 10), geom.Pt(40, 10), geom.Pt(40, 40), geom.Pt(10, 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	sig := ComputeSignature(rect, 16)
	for i := 0; i < 16; i++ {
		for _, c := range [][2]int{{i, 0}, {i, 15}, {0, i}, {15, i}} {
			if !sig.Bit(c[0], c[1]) {
				t.Fatalf("perimeter cell (%d,%d) clear; the rectangle's boundary runs through it", c[0], c[1])
			}
		}
	}
	// A thin polygon hugging the rectangle's top edge must not be
	// signature-rejected against it.
	top, err := geom.NewPolygon([]geom.Point{
		geom.Pt(15, 39.5), geom.Pt(35, 39.5), geom.Pt(35, 40.5), geom.Pt(15, 40.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	other := ComputeSignature(top, 16)
	if !SignaturesMayIntersect(&sig, &other, 0) {
		t.Fatalf("signatures rejected a pair whose boundaries cross the MBR top edge")
	}
}

// TestSignaturesMayIntersectSound is the core safety property: whenever
// the signature test says "cannot intersect / cannot be within d", the
// brute-force boundary distance must agree. False negatives would change
// query results; false positives only cost time.
func TestSignaturesMayIntersectSound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rejects := 0
	for trial := 0; trial < 400; trial++ {
		// Mix of far, near-miss, and overlapping placements.
		cx := 30 + rng.Float64()*40
		cy := 30 + rng.Float64()*40
		p := starPoly(rng, 50, 50, 5+rng.Float64()*25, 3+rng.Intn(16))
		q := starPoly(rng, cx, cy, 5+rng.Float64()*25, 3+rng.Intn(16))
		sp := ComputeSignature(p, DefaultSignatureRes)
		sq := ComputeSignature(q, DefaultSignatureRes)
		truth := boundaryDist(p, q)
		for _, d := range []float64{0, 0.5, 3, 10} {
			if !SignaturesMayIntersect(&sp, &sq, d) {
				rejects++
				if truth <= d {
					t.Fatalf("trial %d d=%g: signatures rejected but boundary distance is %g", trial, d, truth)
				}
			}
			// Symmetry: the verdict must not depend on argument order.
			if SignaturesMayIntersect(&sp, &sq, d) != SignaturesMayIntersect(&sq, &sp, d) {
				t.Fatalf("trial %d d=%g: asymmetric verdict", trial, d)
			}
		}
	}
	if rejects == 0 {
		t.Fatalf("signature test never rejected a pair — no filtering power")
	}
	t.Logf("rejected %d pair-distance combinations", rejects)
}

// TestSignatureDegenerateInputs pins the "no signature, no claim"
// contract for nil, zero-value, and mismatched-length signatures.
func TestSignatureDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := starPoly(rng, 50, 50, 20, 8)
	sig := ComputeSignature(p, 8)
	if !SignaturesMayIntersect(nil, &sig, 0) {
		t.Fatalf("nil signature must be inconclusive")
	}
	if !SignaturesMayIntersect(&sig, &Signature{}, 0) {
		t.Fatalf("zero-value signature must be inconclusive")
	}
	bad := sig
	bad.Words = bad.Words[:len(bad.Words)-1]
	if !SignaturesMayIntersect(&bad, &sig, 0) {
		t.Fatalf("truncated signature must be inconclusive")
	}
	if !SignaturesMayIntersect(&sig, &sig, 0) {
		t.Fatalf("a signature must always may-intersect itself")
	}
	if sig.PopCount() == 0 {
		t.Fatalf("boundary rendered no cells")
	}
}
