package raster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// TestQuickIntersectionNeverMissed is the conservativeness guarantee as a
// quick property: for any seed, resolution in 1..32, and forced-to-cross
// segment pair, the two-layer rendering shares a pixel.
func TestQuickIntersectionNeverMissed(t *testing.T) {
	prop := func(seed int64, resRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		res := 1 + int(resRaw)%32
		c := NewContext(res, res)
		s1 := geom.Seg(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
		)
		mid := s1.Midpoint()
		dx, dy := rng.Float64()*40-20, rng.Float64()*40-20
		s2 := geom.Seg(geom.Pt(mid.X-dx, mid.Y-dy), geom.Pt(mid.X+dx, mid.Y+dy))
		c.SetViewport(s1.Bounds().Union(s2.Bounds()))
		c.Clear()
		c.SetColor(1)
		c.DrawSegment(s1)
		return c.SegmentTouches(s2, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickAccumLinear: the accumulation buffer is linear — Load(a) then
// Add(b) equals Load(a+b) when the color buffer is unchanged.
func TestQuickAccumLinear(t *testing.T) {
	prop := func(seed int64, aRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := float32(aRaw) / 32
		b := float32(bRaw) / 32
		c1 := NewContext(8, 8)
		c2 := NewContext(8, 8)
		for i := range c1.Color().Pix {
			v := rng.Float32()
			c1.Color().Pix[i] = v
			c2.Color().Pix[i] = v
		}
		c1.AccumLoad(a)
		c1.AccumAdd(b)
		c2.AccumLoad(a + b)
		for i := range c1.Accum().Pix {
			d := c1.Accum().Pix[i] - c2.Accum().Pix[i]
			if d < -1e-5 || d > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
