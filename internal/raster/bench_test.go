package raster

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchSegs(n int, span float64) []geom.Segment {
	rng := rand.New(rand.NewSource(1))
	segs := make([]geom.Segment, n)
	for i := range segs {
		a := geom.Pt(rng.Float64()*span, rng.Float64()*span)
		segs[i] = geom.Seg(a, geom.Pt(a.X+rng.Float64()*span/20, a.Y+rng.Float64()*span/20))
	}
	return segs
}

func BenchmarkDrawSegment8(b *testing.B) {
	c := NewContext(8, 8)
	c.SetViewport(geom.R(0, 0, 100, 100))
	segs := benchSegs(512, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DrawSegment(segs[i&511])
	}
}

func BenchmarkDrawSegment32(b *testing.B) {
	c := NewContext(32, 32)
	c.SetViewport(geom.R(0, 0, 100, 100))
	segs := benchSegs(512, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DrawSegment(segs[i&511])
	}
}

func BenchmarkHWTestCycle8(b *testing.B) {
	// Full per-pair hardware test cycle at 8×8: viewport, clear, render
	// 200 edges, accumulate, render 200, accumulate, minmax.
	c := NewContext(8, 8)
	segs := benchSegs(400, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SetViewport(geom.R(0, 0, 100, 100))
		c.Clear()
		c.SetColor(0.5)
		for _, s := range segs[:200] {
			c.DrawSegment(s)
		}
		c.AccumLoad(1)
		c.Clear()
		for _, s := range segs[200:] {
			c.DrawSegment(s)
		}
		c.AccumAdd(1)
		c.MinMax()
	}
}
