package raster

import (
	"math"

	"repro/internal/geom"
)

// CellCover rasterizes p's closed region onto a uniform square grid with
// interior/boundary labeling: cell (x, y) spans
// [ox+x·cs, ox+(x+1)·cs] × [oy+y·cs, oy+(y+1)·cs], and fn is called once
// per reported cell, restricted to the inclusive window [x0,x1]×[y0,y1]
// (which must cover p's MBR for the guarantees below to hold).
//
// The report is two-sided sound, which is what the interval filter's
// three-valued verdict rests on:
//
//   - Coverage (licenses rejects): every window cell whose closed
//     rectangle touches p's closed region is reported. Boundary cells
//     come from the same conservative closed-cell walk as
//     ComputeSignature (outward cellEps slack, clamped attribution);
//     interior cells from the fill below.
//
//   - Full labels are exact (licenses true hits): fn(x, y, true) is only
//     called when cell (x, y) provably lies entirely inside p's closed
//     region. An unmarked cell after the boundary walk contains no
//     boundary point at all (the walk over-marks, never under-marks), so
//     a maximal horizontal run of unmarked cells is connected and
//     boundary-free — it lies entirely inside or entirely outside p, and
//     one exact point-in-polygon test of any run point decides the whole
//     run.
//
// Boundary cells are reported with full=false even when the boundary
// only grazes them; that costs true-hit power, never soundness.
func CellCover(p *geom.Polygon, ox, oy, cs float64, x0, y0, x1, y1 int, fn func(x, y int, full bool)) {
	if p == nil || p.NumVerts() < 3 || cs <= 0 || x1 < x0 || y1 < y0 {
		return
	}
	w := x1 - x0 + 1
	h := y1 - y0 + 1
	marks := make([]uint64, (w*h+63)/64)
	bit := func(lx, ly int) int { return ly*w + lx }
	clampX := func(v float64) int {
		i := int(math.Floor(v)) - x0
		if i < 0 {
			return 0
		}
		if i >= w {
			return w - 1
		}
		return i
	}
	clampY := func(v float64) int {
		i := int(math.Floor(v)) - y0
		if i < 0 {
			return 0
		}
		if i >= h {
			return h - 1
		}
		return i
	}

	// Boundary walk: identical column sweep to ComputeSignature, in the
	// caller's global cell coordinates.
	for i := 0; i < p.NumEdges(); i++ {
		e := p.Edge(i)
		ax, ay := (e.A.X-ox)/cs, (e.A.Y-oy)/cs
		bx, by := (e.B.X-ox)/cs, (e.B.Y-oy)/cs
		if ax > bx {
			ax, ay, bx, by = bx, by, ax, ay
		}
		cx0, cx1 := clampX(ax-cellEps), clampX(bx+cellEps)
		for cx := cx0; cx <= cx1; cx++ {
			var yl, yh float64
			if bx-ax <= cellEps {
				yl, yh = math.Min(ay, by), math.Max(ay, by)
			} else {
				m := (by - ay) / (bx - ax)
				lo := math.Max(float64(cx+x0), ax)
				hi := math.Min(float64(cx+x0+1), bx)
				yl = ay + m*(lo-ax)
				yh = ay + m*(hi-ax)
				if yl > yh {
					yl, yh = yh, yl
				}
			}
			for cy, cy1 := clampY(yl-cellEps), clampY(yh+cellEps); cy <= cy1; cy++ {
				marks[bit(cx, cy)>>6] |= 1 << uint(bit(cx, cy)&63)
			}
		}
	}

	// Row scan: emit boundary cells as partial; classify each maximal run
	// of unmarked cells with one exact test at the first cell's center
	// (unmarked ⇒ no boundary in the closed cell ⇒ the center is strictly
	// off-boundary and speaks for the whole connected run).
	for ly := 0; ly < h; ly++ {
		runStart := -1
		flushRun := func(end int) {
			if runStart < 0 {
				return
			}
			center := geom.Pt(ox+(float64(runStart+x0)+0.5)*cs, oy+(float64(ly+y0)+0.5)*cs)
			if p.ContainsPoint(center) {
				for lx := runStart; lx < end; lx++ {
					fn(lx+x0, ly+y0, true)
				}
			}
			runStart = -1
		}
		for lx := 0; lx < w; lx++ {
			if marks[bit(lx, ly)>>6]&(1<<uint(bit(lx, ly)&63)) != 0 {
				flushRun(lx)
				fn(lx+x0, ly+y0, false)
				continue
			}
			if runStart < 0 {
				runStart = lx
			}
		}
		flushRun(w)
	}
}
