package raster

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ASCII renders the buffer as one text row per pixel row, top row first
// (window y grows upward, so row H-1 prints first). The default palette
// maps 0 to '.', the layer bits 1/2/3 to '/', '\\', '#', and anything else
// to '*'; pass a custom palette to override.
func (b *Buffer) ASCII(palette func(float32) byte) string {
	if palette == nil {
		palette = DefaultPalette
	}
	var sb strings.Builder
	sb.Grow((b.W + 1) * b.H)
	for y := b.H - 1; y >= 0; y-- {
		for x := range b.W {
			sb.WriteByte(palette(b.At(x, y)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DefaultPalette is the ASCII mapping used by the examples: background,
// layer 1, layer 2, overlap, other.
func DefaultPalette(v float32) byte {
	switch v {
	case 0:
		return '.'
	case 1:
		return '/'
	case 2:
		return '\\'
	case 3:
		return '#'
	default:
		return '*'
	}
}

// WritePGM writes the buffer as a binary PGM image (P5), mapping values
// linearly from [0, maxVal] to [0, 255]; values outside clamp. PGM loads
// everywhere and keeps the debugging loop dependency-free.
func (b *Buffer) WritePGM(w io.Writer, maxVal float32) error {
	if maxVal <= 0 {
		maxVal = 1
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", b.W, b.H); err != nil {
		return err
	}
	for y := b.H - 1; y >= 0; y-- {
		for x := range b.W {
			v := b.At(x, y) / maxVal * 255
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			if err := bw.WriteByte(byte(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
