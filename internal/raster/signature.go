// Raster signatures: per-object conservative boundary approximations in
// the spirit of Raster Interval Object Approximations — a small fixed-
// resolution bitmap over the object's MBR whose set cells cover every
// point of the polygon's boundary. Signatures are computed with a
// closed-cell conservative cell walk (a cell is set iff some boundary
// segment may pass through its closed rectangle, boundary points on the
// MBR's max edges included), so two objects whose signature cells are
// pairwise disjoint provably have disjoint boundaries — the pair can skip
// the rendering protocol entirely. They are cheap enough to persist
// (res 16 = 32 bytes per object) and are what the snapshot format stores
// next to the geometry.
package raster

import (
	"math"

	"repro/internal/geom"
)

// DefaultSignatureRes is the signature grid side used by the snapshot
// writer: 16×16 cells, 32 bytes of bitmap per object. At typical GIS MBR
// aspect ratios this resolves boundary gaps around 1/16th of the object's
// extent, which is the population of deeply interleaved near-miss pairs
// the pair-rendering filter otherwise spends its time on.
const DefaultSignatureRes = 16

// Signature is one polygon's conservative boundary bitmap: Res×Res cells
// tiling Bounds, bit (y*Res + x) set when the boundary may pass through
// cell (x, y). The set cells' union covers the boundary (conservative);
// clear cells provably contain no boundary point. A Signature is immutable
// after construction and safe for concurrent readers. The zero value (Res
// 0) means "no signature" and never short-circuits anything.
type Signature struct {
	Bounds geom.Rect
	Res    int
	Words  []uint64 // ceil(Res*Res / 64) little-endian bitmap words
}

// SignatureWords returns the bitmap length in uint64 words for one
// signature at resolution res.
func SignatureWords(res int) int { return (res*res + 63) / 64 }

// Valid reports whether s carries a usable bitmap (matching resolution and
// word count, finite non-empty bounds).
func (s *Signature) Valid() bool {
	return s != nil && s.Res > 0 && len(s.Words) == SignatureWords(s.Res) && !s.Bounds.IsEmpty()
}

// Bit reports cell (x, y).
func (s *Signature) Bit(x, y int) bool {
	i := y*s.Res + x
	return s.Words[i>>6]&(1<<uint(i&63)) != 0
}

func (s *Signature) setBit(x, y int) {
	i := y*s.Res + x
	s.Words[i>>6] |= 1 << uint(i&63)
}

// PopCount returns the number of set cells (for stats and tests).
func (s *Signature) PopCount() int {
	n := 0
	for _, w := range s.Words {
		n += popcount(w)
	}
	return n
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// ComputeSignature rasterizes p's boundary onto a res×res grid over its
// MBR and returns the bitmap. The cell walk attributes each boundary
// point to the closed cell containing it, with indexes clamped into the
// grid, so — unlike the display renderer's half-open window mapping —
// segments lying exactly on the MBR's max edges still set the last
// row/column. That closed-cell attribution is what makes the signature a
// sound reject filter: every boundary point lies in a set cell, always.
// (The viewport renderer drops fragments at exactly the window max edge,
// which is fine for a sentinel-checked filter but not for a proof; a
// rectangular query polygon, whose top and right edges lie exactly on
// its own MBR, would otherwise lose half its boundary.)
func ComputeSignature(p *geom.Polygon, res int) Signature {
	if res <= 0 {
		res = DefaultSignatureRes
	}
	b := p.Bounds()
	sig := Signature{Bounds: b, Res: res, Words: make([]uint64, SignatureWords(res))}
	w := b.Width() / float64(res)
	h := b.Height() / float64(res)
	if w <= 0 {
		w = math.SmallestNonzeroFloat64
	}
	if h <= 0 {
		h = math.SmallestNonzeroFloat64
	}
	clamp := func(v float64) int {
		i := int(math.Floor(v))
		if i < 0 {
			return 0
		}
		if i >= res {
			return res - 1
		}
		return i
	}
	for i := 0; i < p.NumEdges(); i++ {
		e := p.Edge(i)
		// Cell-space endpoints, sorted by x.
		ax, ay := (e.A.X-b.MinX)/w, (e.A.Y-b.MinY)/h
		bx, by := (e.B.X-b.MinX)/w, (e.B.Y-b.MinY)/h
		if ax > bx {
			ax, ay, bx, by = bx, by, ax, ay
		}
		x0, x1 := clamp(ax-cellEps), clamp(bx+cellEps)
		for cx := x0; cx <= x1; cx++ {
			var yl, yh float64
			if bx-ax <= cellEps {
				// (Near-)vertical in cell space: the whole y extent lands
				// in this column.
				yl, yh = math.Min(ay, by), math.Max(ay, by)
			} else {
				// y range of the segment across this column's x span.
				m := (by - ay) / (bx - ax)
				lo := math.Max(float64(cx), ax)
				hi := math.Min(float64(cx+1), bx)
				yl = ay + m*(lo-ax)
				yh = ay + m*(hi-ax)
				if yl > yh {
					yl, yh = yh, yl
				}
			}
			for cy, y1 := clamp(yl-cellEps), clamp(yh+cellEps); cy <= y1; cy++ {
				sig.setBit(cx, cy)
			}
		}
	}
	return sig
}

// cellRect returns the data-space rectangle of cell (x, y): the grid tiles
// Bounds uniformly, cell (0,0) at (MinX, MinY).
func (s *Signature) cellRect(x, y int) geom.Rect {
	w := s.Bounds.Width() / float64(s.Res)
	h := s.Bounds.Height() / float64(s.Res)
	return geom.R(
		s.Bounds.MinX+float64(x)*w,
		s.Bounds.MinY+float64(y)*h,
		s.Bounds.MinX+float64(x+1)*w,
		s.Bounds.MinY+float64(y+1)*h,
	)
}

// cellEps is the outward slack, in cell units, applied when mapping a
// rectangle onto a signature grid. The renderer attributes a boundary
// point lying exactly on a shared cell border to one of the two cells by
// its own projection arithmetic, which can disagree with the reverse
// mapping here by a few ulps; widening the range by a millionth of a cell
// absorbs that and keeps the disjointness test strictly conservative.
const cellEps = 1e-6

// cellRange maps data-space rectangle r onto s's grid, returning the
// inclusive cell index range it touches, clamped to the grid; ok is false
// when r misses the grid entirely. The mapping rounds outward (plus
// cellEps slack), so the range is a superset of every cell r overlaps —
// required to keep the disjointness test conservative under
// floating-point division.
func (s *Signature) cellRange(r geom.Rect) (x0, y0, x1, y1 int, ok bool) {
	w := s.Bounds.Width() / float64(s.Res)
	h := s.Bounds.Height() / float64(s.Res)
	if w <= 0 {
		w = math.SmallestNonzeroFloat64
	}
	if h <= 0 {
		h = math.SmallestNonzeroFloat64
	}
	x0 = int(math.Floor((r.MinX-s.Bounds.MinX)/w - cellEps))
	x1 = int(math.Ceil((r.MaxX-s.Bounds.MinX)/w+cellEps)) - 1
	y0 = int(math.Floor((r.MinY-s.Bounds.MinY)/h - cellEps))
	y1 = int(math.Ceil((r.MaxY-s.Bounds.MinY)/h+cellEps)) - 1
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	if x1 < 0 || y1 < 0 || x0 >= s.Res || y0 >= s.Res {
		return 0, 0, 0, 0, false
	}
	x0, y0 = max(x0, 0), max(y0, 0)
	x1, y1 = min(x1, s.Res-1), min(y1, s.Res-1)
	return x0, y0, x1, y1, true
}

// anyBitInRows reports whether any cell in rows y0..y1, columns x0..x1 is
// set, scanning word-aligned row spans.
func (s *Signature) anyBitInRows(x0, y0, x1, y1 int) bool {
	for y := y0; y <= y1; y++ {
		row := y * s.Res
		for x := x0; x <= x1; x++ {
			i := row + x
			if s.Words[i>>6]&(1<<uint(i&63)) != 0 {
				return true
			}
		}
	}
	return false
}

// SignaturesMayIntersect reports whether the boundaries of the two
// signed objects may come within distance d of each other (d = 0 is the
// plain boundary-intersection question). A false answer is a proof: every
// set cell of a, expanded by d, misses every set cell of b, and since set
// cells cover the boundaries conservatively the true boundary distance
// exceeds d. A true answer is inconclusive — the caller proceeds to the
// rendering protocol or the exact test exactly as before, which is what
// keeps signature use result-invariant.
func SignaturesMayIntersect(a, b *Signature, d float64) bool {
	if !a.Valid() || !b.Valid() {
		return true // no signature, no claim
	}
	// Iterate the side with the coarser restriction region; each of a's
	// set cells near b is mapped onto b's grid and tested for set cells.
	region := a.Bounds.Intersection(b.Bounds.Expand(d))
	if region.IsEmpty() {
		// MBRs (expanded by d) don't even touch; boundaries can't either.
		return false
	}
	ax0, ay0, ax1, ay1, ok := a.cellRange(region)
	if !ok {
		return false
	}
	for ay := ay0; ay <= ay1; ay++ {
		for ax := ax0; ax <= ax1; ax++ {
			if !a.Bit(ax, ay) {
				continue
			}
			bx0, by0, bx1, by1, ok := b.cellRange(a.cellRect(ax, ay).Expand(d))
			if !ok {
				continue
			}
			if b.anyBitInRows(bx0, by0, bx1, by1) {
				return true
			}
		}
	}
	return false
}
