package raster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestBufferBasics(t *testing.T) {
	b := NewBuffer(4, 3)
	if len(b.Pix) != 12 {
		t.Fatalf("len(Pix) = %d", len(b.Pix))
	}
	b.Set(2, 1, 0.5)
	if b.At(2, 1) != 0.5 || b.At(0, 0) != 0 {
		t.Error("Set/At wrong")
	}
	b.Clear()
	if b.At(2, 1) != 0 {
		t.Error("Clear failed")
	}
}

func TestProjectViewport(t *testing.T) {
	c := NewContext(10, 10)
	c.SetViewport(geom.R(100, 200, 120, 240))
	got := c.Project(geom.Pt(100, 200))
	if got != geom.Pt(0, 0) {
		t.Errorf("Project(min) = %v", got)
	}
	got = c.Project(geom.Pt(120, 240))
	if got != geom.Pt(10, 10) {
		t.Errorf("Project(max) = %v", got)
	}
	got = c.Project(geom.Pt(110, 220))
	if got != geom.Pt(5, 5) {
		t.Errorf("Project(center) = %v", got)
	}
}

func TestViewportUniform(t *testing.T) {
	c := NewContext(10, 10)
	s := c.SetViewportUniform(geom.R(0, 0, 20, 10))
	if s != 0.5 {
		t.Errorf("uniform scale = %v, want 0.5", s)
	}
	sx, sy := c.Scale()
	if sx != sy {
		t.Errorf("non-uniform scale %v, %v", sx, sy)
	}
	// Degenerate viewport must not produce Inf/NaN.
	c.SetViewportUniform(geom.R(5, 5, 5, 5))
	p := c.Project(geom.Pt(5, 5))
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) {
		t.Errorf("degenerate projection = %v", p)
	}
}

func TestSetLineWidthLimits(t *testing.T) {
	c := NewContext(8, 8)
	if err := c.SetLineWidth(5); err != nil {
		t.Errorf("width 5 rejected: %v", err)
	}
	if err := c.SetLineWidth(MaxLineWidth + 0.1); err == nil {
		t.Error("width above hardware limit accepted")
	}
	if err := c.SetLineWidth(-1); err == nil {
		t.Error("negative width accepted")
	}
}

// coveredCells returns the set of colored pixel indices.
func coveredCells(b *Buffer) map[int]bool {
	m := map[int]bool{}
	for i, p := range b.Pix {
		if p != 0 {
			m[i] = true
		}
	}
	return m
}

// TestSegmentCoverageConservative: every closed cell the segment passes
// through must be colored, for any line width.
func TestSegmentCoverageConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := NewContext(16, 16)
	for _, width := range []float64{0, math.Sqrt2, 4} {
		for range 300 {
			c.Clear()
			if err := c.SetLineWidth(width); err != nil {
				t.Fatal(err)
			}
			s := geom.Seg(
				geom.Pt(rng.Float64()*16, rng.Float64()*16),
				geom.Pt(rng.Float64()*16, rng.Float64()*16),
			)
			c.DrawSegment(s) // identity viewport
			for cy := range 16 {
				for cx := range 16 {
					touches := boxSegDistSq(float64(cx), float64(cy), s) == 0
					colored := c.Color().At(cx, cy) != 0
					if touches && !colored {
						t.Fatalf("width %v: cell (%d,%d) touched by %v but not colored", width, cx, cy, s)
					}
				}
			}
		}
	}
}

// TestSegmentCoverageTight: the fast rasterizer over-covers the exact
// capsule by at most its slope-corrected margin, so no colored cell's
// center may be farther than width + circumradius from the segment.
func TestSegmentCoverageTight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := NewContext(16, 16)
	for range 300 {
		c.Clear()
		width := rng.Float64() * 6
		if err := c.SetLineWidth(width); err != nil {
			t.Fatal(err)
		}
		s := geom.Seg(
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
		)
		c.DrawSegment(s)
		limit := width + math.Sqrt2 // 2·hw margin + cell diagonal
		for cy := range 16 {
			for cx := range 16 {
				if c.Color().At(cx, cy) == 0 {
					continue
				}
				center := geom.Pt(float64(cx)+0.5, float64(cy)+0.5)
				if d := s.DistToPoint(center); d > limit+1e-9 {
					t.Fatalf("cell (%d,%d) colored at distance %v > %v", cx, cy, d, limit)
				}
			}
		}
	}
}

// TestFastCoverageSupersetOfExact pins the contract between the fast
// column-walking rasterizer and the exact capsule reference: the fast path
// must color every cell the exact path colors.
func TestFastCoverageSupersetOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	fast := NewContext(16, 16)
	exact := NewContext(16, 16)
	for trial := range 500 {
		width := rng.Float64() * 8
		s := geom.Seg(
			geom.Pt(rng.Float64()*20-2, rng.Float64()*20-2),
			geom.Pt(rng.Float64()*20-2, rng.Float64()*20-2),
		)
		fast.Clear()
		fast.DrawSegmentWidth(s, width)
		exact.Clear()
		exact.DrawSegmentExact(s, width)
		for i, v := range exact.Color().Pix {
			if v != 0 && fast.Color().Pix[i] == 0 {
				t.Fatalf("trial %d width %v: fast path missed cell %d of exact coverage for %v",
					trial, width, i, s)
			}
		}
	}
}

// TestIntersectionAlwaysDetected is the paper's correctness guarantee:
// render two intersecting segments at half intensity, accumulate, and some
// pixel must reach full intensity — at any resolution, any viewport.
func TestIntersectionAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, res := range []int{1, 2, 8, 32} {
		c := NewContext(res, res)
		for range 400 {
			s1 := geom.Seg(
				geom.Pt(rng.Float64()*100, rng.Float64()*100),
				geom.Pt(rng.Float64()*100, rng.Float64()*100),
			)
			// Force an intersection: s2 crosses s1's midpoint.
			mid := s1.Midpoint()
			dx, dy := rng.Float64()*50-25, rng.Float64()*50-25
			s2 := geom.Seg(
				geom.Pt(mid.X-dx, mid.Y-dy),
				geom.Pt(mid.X+dx, mid.Y+dy),
			)
			region := s1.Bounds().Union(s2.Bounds())
			c.SetViewport(region)
			c.Clear()
			c.SetColor(0.5)
			c.DrawSegment(s1)
			c.AccumLoad(1)
			c.Clear()
			c.DrawSegment(s2)
			c.AccumAdd(1)
			if !c.AccumMaxAtLeast(1) {
				t.Fatalf("res %d: intersection missed for %v, %v", res, s1, s2)
			}
		}
	}
}

// TestWithinDistanceAlwaysDetected: two segments within data distance D,
// rendered with line width D·scale under a uniform viewport, must overlap.
func TestWithinDistanceAlwaysDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	c := NewContext(8, 8)
	for range 400 {
		s1 := geom.Seg(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
		)
		s2 := geom.Seg(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
		)
		trueDist := s1.Dist(s2)
		if trueDist == 0 {
			continue
		}
		d := trueDist * (1 + rng.Float64()) // any D >= the true distance
		region := s1.Bounds().Union(s2.Bounds()).Expand(d)
		scale := c.SetViewportUniform(region)
		widthPx := d * scale
		if widthPx > MaxLineWidth {
			continue // hardware limit: the algorithm falls back to software
		}
		c.Clear()
		c.SetColor(0.5)
		c.DrawSegmentWidth(s1, widthPx)
		c.AccumLoad(1)
		c.Clear()
		c.DrawSegmentWidth(s2, widthPx)
		c.AccumAdd(1)
		if !c.AccumMaxAtLeast(1) {
			t.Fatalf("within-distance pair missed: dist %v, D %v, width %v px", trueDist, d, widthPx)
		}
	}
}

func TestAccumOps(t *testing.T) {
	c := NewContext(2, 2)
	c.SetColor(0.5)
	c.Color().Set(0, 0, 0.5)
	c.Color().Set(1, 1, 0.25)
	c.AccumLoad(2)
	if c.Accum().At(0, 0) != 1 || c.Accum().At(1, 1) != 0.5 || c.Accum().At(1, 0) != 0 {
		t.Error("AccumLoad wrong")
	}
	c.AccumAdd(1)
	if c.Accum().At(0, 0) != 1.5 {
		t.Error("AccumAdd wrong")
	}
	c.AccumReturn(2)
	if c.Color().At(0, 0) != 3 {
		t.Error("AccumReturn wrong")
	}
	c.ClearAccum()
	if c.Accum().At(0, 0) != 0 {
		t.Error("ClearAccum failed")
	}
}

func TestMinMax(t *testing.T) {
	c := NewContext(3, 3)
	minV, maxV := c.MinMax()
	if minV != 0 || maxV != 0 {
		t.Errorf("empty MinMax = %v, %v", minV, maxV)
	}
	c.Color().Set(1, 1, 0.75)
	c.Color().Set(2, 0, -0.5)
	minV, maxV = c.MinMax()
	if minV != -0.5 || maxV != 0.75 {
		t.Errorf("MinMax = %v, %v", minV, maxV)
	}
	if !c.MaxAtLeast(0.75) || c.MaxAtLeast(0.76) {
		t.Error("MaxAtLeast wrong")
	}
}

func TestResizeReuses(t *testing.T) {
	c := NewContext(32, 32)
	c.Color().Set(5, 5, 1)
	c.Resize(8, 8)
	if c.Width() != 8 || c.Height() != 8 {
		t.Fatalf("Resize dims %dx%d", c.Width(), c.Height())
	}
	for _, p := range c.Color().Pix {
		if p != 0 {
			t.Fatal("Resize left stale pixels")
		}
	}
	c.Resize(64, 64)
	if len(c.Color().Pix) != 64*64 {
		t.Fatal("grow failed")
	}
}

func TestDrawPoint(t *testing.T) {
	c := NewContext(8, 8)
	c.SetColor(1)
	c.DrawPoint(geom.Pt(4.2, 4.7), 1)
	if c.Color().At(4, 4) == 0 {
		t.Error("point's own cell not colored")
	}
	// A 1px point must not reach cells more than a cell away.
	if c.Color().At(0, 0) != 0 || c.Color().At(7, 7) != 0 {
		t.Error("1px point colored distant cells")
	}
	c.Clear()
	c.DrawPoint(geom.Pt(4, 4), 6)
	count := 0
	for _, p := range c.Color().Pix {
		if p != 0 {
			count++
		}
	}
	if count < 9 {
		t.Errorf("6px point colored only %d cells", count)
	}
}

// TestDiamondExitDisappearingSegment reproduces paper Figure 3(d): short
// segments that never exit a pixel's diamond are not rasterized under the
// basic rule but are under the anti-aliased rule.
func TestDiamondExitDisappearingSegment(t *testing.T) {
	c := NewContext(3, 3)
	// Segment fully inside the center pixel's diamond.
	s := geom.Seg(geom.Pt(1.4, 1.5), geom.Pt(1.6, 1.5))
	c.DrawSegmentBasic(s)
	for i, p := range c.Color().Pix {
		if p != 0 {
			t.Errorf("basic rule colored pixel %d for a non-exiting segment", i)
		}
	}
	c.Clear()
	c.DrawSegment(s) // anti-aliased: must color the cell
	if c.Color().At(1, 1) == 0 {
		t.Error("anti-aliased rule missed the segment")
	}
}

func TestDiamondExitLongSegment(t *testing.T) {
	c := NewContext(5, 1)
	// Horizontal segment through all diamonds, ending inside the last one.
	s := geom.Seg(geom.Pt(0, 0.5), geom.Pt(4.5, 0.5))
	c.DrawSegmentBasic(s)
	for cx := range 4 {
		if c.Color().At(cx, 0) == 0 {
			t.Errorf("pixel %d not colored", cx)
		}
	}
	if c.Color().At(4, 0) != 0 {
		t.Error("diamond-exit rule: final pixel should not be colored")
	}
}

func TestFillPolygonCenterRule(t *testing.T) {
	c := NewContext(16, 16)
	rng := rand.New(rand.NewSource(45))
	for range 50 {
		// Random triangle in window space (identity viewport).
		p := geom.MustPolygon(
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
		)
		if p.Area() < 1 {
			continue
		}
		c.Clear()
		c.SetColor(1)
		c.FillPolygon(p)
		for cy := range 16 {
			for cx := range 16 {
				center := geom.Pt(float64(cx)+0.5, float64(cy)+0.5)
				inside := p.ContainsPoint(center)
				colored := c.Color().At(cx, cy) != 0
				// Centers exactly on the boundary may go either way.
				onBoundary := false
				for i := range p.NumEdges() {
					if p.Edge(i).DistToPoint(center) < 1e-9 {
						onBoundary = true
					}
				}
				if onBoundary {
					continue
				}
				if inside != colored {
					t.Fatalf("cell (%d,%d): inside=%v colored=%v for %v", cx, cy, inside, colored, p.Verts)
				}
			}
		}
	}
}

// TestFillSharedEdgeExactlyOnce verifies paper §2.2.3: pixels whose center
// lies on an edge shared by two polygons are colored exactly once.
func TestFillSharedEdgeExactlyOnce(t *testing.T) {
	c := NewContext(8, 8)
	// Vertical shared edge at x = 4.5 passes exactly through the centers
	// of column 4; horizontal shared edge at y = 3.5 through row 3.
	left := geom.MustPolygon(geom.Pt(0.5, 0.5), geom.Pt(4.5, 0.5), geom.Pt(4.5, 7.5), geom.Pt(0.5, 7.5))
	right := geom.MustPolygon(geom.Pt(4.5, 0.5), geom.Pt(7.5, 0.5), geom.Pt(7.5, 7.5), geom.Pt(4.5, 7.5))
	c.SetColor(1)
	c.FillPolygon(left)
	c.AccumLoad(1)
	c.Clear()
	c.FillPolygon(right)
	c.AccumAdd(1)
	for cy := range 7 {
		v := c.Accum().At(4, cy)
		if v != 1 {
			t.Errorf("shared-edge pixel (4,%d) colored %v times, want exactly 1", cy, v)
		}
	}
	// And no interior gaps: centers strictly inside the union are colored.
	for cy := 1; cy < 7; cy++ {
		for cx := 1; cx < 7; cx++ {
			if c.Accum().At(cx, cy) == 0 {
				t.Errorf("gap at (%d,%d)", cx, cy)
			}
		}
	}
}

func TestCountersAndReset(t *testing.T) {
	c := NewContext(8, 8)
	c.DrawSegment(geom.Seg(geom.Pt(0, 0), geom.Pt(8, 8)))
	if c.SegmentsDrawn != 1 || c.PixelsWritten == 0 {
		t.Errorf("counters: segs=%d pix=%d", c.SegmentsDrawn, c.PixelsWritten)
	}
	c.ResetCounters()
	if c.SegmentsDrawn != 0 || c.PixelsWritten != 0 {
		t.Error("ResetCounters failed")
	}
}
