package raster

import (
	"sort"

	"repro/internal/geom"
)

// FillPolygon rasterizes the interior of the data-space polygon p with the
// current color using the OpenGL polygon rules (paper §2.2.3): a pixel is
// colored iff its center lies inside the polygon, and a pixel whose center
// lies exactly on an edge shared by two polygons is colored exactly once.
// The exactly-once property comes from the half-open crossing rule used on
// both the scanline crossings (an edge covers scanlines min ≤ y < max) and
// the span fill (a span covers centers x1 ≤ x < x2).
func (c *Context) FillPolygon(p *geom.Polygon) {
	n := p.NumVerts()
	if n < 3 {
		return
	}
	// Project once.
	verts := make([]geom.Point, n)
	for i, v := range p.Verts {
		verts[i] = c.Project(v)
	}
	w, h := c.color.W, c.color.H

	minY, maxY := verts[0].Y, verts[0].Y
	for _, v := range verts[1:] {
		if v.Y < minY {
			minY = v.Y
		}
		if v.Y > maxY {
			maxY = v.Y
		}
	}
	y0 := clampInt(int(minY)-1, 0, h-1)
	y1 := clampInt(int(maxY)+1, 0, h-1)

	var xs []float64
	// Written bounds for the dirty-region tracking.
	wx0, wx1, wy0, wy1 := w, -1, h, -1
	for cy := y0; cy <= y1; cy++ {
		yc := float64(cy) + 0.5
		xs = xs[:0]
		for i := range n {
			a, b := verts[i], verts[(i+1)%n]
			if a.Y == b.Y {
				continue // horizontal edges never cross a center line
			}
			// Half-open rule: the edge covers min(a.Y,b.Y) <= yc < max.
			lo, hi := a, b
			if lo.Y > hi.Y {
				lo, hi = hi, lo
			}
			if lo.Y <= yc && yc < hi.Y {
				t := (yc - lo.Y) / (hi.Y - lo.Y)
				xs = append(xs, lo.X+t*(hi.X-lo.X))
			}
		}
		if len(xs) < 2 {
			continue
		}
		sort.Float64s(xs)
		row := cy * w
		for i := 0; i+1 < len(xs); i += 2 {
			xStart, xEnd := xs[i], xs[i+1]
			// Color centers with xStart <= cx+0.5 < xEnd: start from safe
			// under/over-estimates and tighten to the exact half-open span.
			cx0 := int(xStart) - 2
			for float64(cx0)+0.5 < xStart {
				cx0++
			}
			cx1 := int(xEnd) + 2
			for float64(cx1)+0.5 >= xEnd {
				cx1--
			}
			cx0 = max(cx0, 0)
			cx1 = min(cx1, w-1)
			if cx1 < cx0 {
				continue
			}
			wx0 = min(wx0, cx0)
			wx1 = max(wx1, cx1)
			wy0 = min(wy0, cy)
			wy1 = max(wy1, cy)
			if c.orBits != 0 {
				bits := int32(c.orBits)
				for cx := cx0; cx <= cx1; cx++ {
					c.color.Pix[row+cx] = float32(int32(c.color.Pix[row+cx]) | bits)
				}
			} else {
				for cx := cx0; cx <= cx1; cx++ {
					c.color.Pix[row+cx] = c.drawColor
				}
			}
			c.PixelsWritten += int64(cx1 - cx0 + 1)
		}
	}
	if wx1 >= wx0 {
		c.color.MarkDirty(wx0, wy0, wx1, wy1)
	}
}
