package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// starPoly builds a random star-shaped polygon (always simple).
func starPoly(rng *rand.Rand, cx, cy, rMax float64, n int) *geom.Polygon {
	step := 2 * math.Pi / float64(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		a := float64(i)*step + rng.Float64()*step*0.9
		r := rMax * (0.2 + 0.8*rng.Float64())
		pts[i] = geom.Pt(cx+r*math.Cos(a), cy+r*math.Sin(a))
	}
	return geom.MustPolygon(pts...)
}

// TestQuickDirtyClearInvariant pins the dirty-region contract: after any
// sequence of draw operations, every nonzero pixel lies inside the dirty
// rectangle, so Clear (which only zeroes that rectangle) must leave the
// buffer identical to a freshly allocated one. A draw loop that writes
// Pix without covering the write via MarkDirty shows up here as a pixel
// surviving Clear.
func TestQuickDirtyClearInvariant(t *testing.T) {
	prop := func(seed int64, resRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		res := 2 + int(resRaw)%31
		c := NewContext(res, res)
		// Viewport smaller than the drawn geometry's extent, so draws
		// regularly clip against every buffer edge.
		c.SetViewport(geom.R(20, 20, 80, 80))
		for round := 0; round < 3; round++ {
			c.SetColor(1)
			for op := 0; op < 6; op++ {
				p1 := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				p2 := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				switch rng.Intn(6) {
				case 0:
					c.DrawSegment(geom.Seg(p1, p2))
				case 1:
					c.DrawSegmentWidth(geom.Seg(p1, p2), 1+rng.Float64()*(MaxLineWidth-1))
				case 2:
					c.DrawSegmentBasic(geom.Seg(p1, p2))
				case 3:
					c.DrawSegmentExact(geom.Seg(p1, p2), 1+rng.Float64()*(MaxLineWidth-1))
				case 4:
					c.DrawPoint(p1, 1+rng.Float64()*4)
				case 5:
					c.FillPolygon(starPoly(rng, p1.X, p1.Y, 5+rng.Float64()*30, 3+rng.Intn(8)))
				}
			}
			c.Clear()
			for i, v := range c.color.Pix {
				if v != 0 {
					t.Logf("seed=%d res=%d round=%d: pixel %d = %v after Clear",
						seed, res, round, i, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDirtyClearSavings: the savings counter reflects exactly the pixels
// a full clear would have rewritten but the dirty-region clear skipped.
func TestDirtyClearSavings(t *testing.T) {
	c := NewContext(32, 32)
	c.SetViewport(geom.R(0, 0, 32, 32))
	c.SetColor(1)

	// Nothing drawn: the whole window is saved.
	c.Clear()
	if got := c.DirtyClearPixelsSaved; got != 32*32 {
		t.Fatalf("empty clear saved %d pixels, want %d", got, 32*32)
	}

	// A single pixel dirtied: everything but that pixel's row span is
	// saved — the exact count depends on the dirty rect, so just pin the
	// bounds: strictly positive, strictly below the window area.
	c.color.Set(5, 5, 1)
	before := c.DirtyClearPixelsSaved
	c.Clear()
	saved := c.DirtyClearPixelsSaved - before
	if saved <= 0 || saved >= 32*32 {
		t.Fatalf("single-pixel clear saved %d pixels, want in (0, %d)", saved, 32*32)
	}
	if c.color.At(5, 5) != 0 {
		t.Fatal("dirty pixel survived Clear")
	}

	// MarkAllDirty: a full clear, zero savings.
	c.color.MarkAllDirty()
	before = c.DirtyClearPixelsSaved
	c.Clear()
	if saved := c.DirtyClearPixelsSaved - before; saved != 0 {
		t.Fatalf("full clear saved %d pixels, want 0", saved)
	}
}
