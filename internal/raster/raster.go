// Package raster is the simulated graphics hardware: a deterministic
// software implementation of the OpenGL 1.x rendering behaviour that the
// paper's hardware-assisted algorithms rely on. It provides a framebuffer
// with a color buffer and an accumulation buffer, a data-space-to-window
// viewport transform, conservative anti-aliased line rasterization,
// widened lines with round end caps for distance tests, center-sample
// polygon fill, and the MinMax buffer query.
//
// # Substitution note
//
// The paper ran on an NVIDIA GeForce4 with OpenGL. What its algorithms
// actually require from that hardware is a small set of spec-guaranteed
// rasterization properties (paper §2.2):
//
//   - anti-aliased line segments color every pixel whose area overlaps the
//     segment's width-w bounding region (with blending disabled the full
//     line color is written, so coverage is what matters, not intensity);
//   - widened lines and points implement boundary expansion for distance
//     tests;
//   - the accumulation buffer adds images so that two half-intensity
//     renderings reach full intensity exactly on overlapping pixels;
//   - the Minmax query inspects the buffer without an expensive readback.
//
// This package implements those properties exactly, with one documented
// deviation: wide lines are rendered as capsules (round caps) rather than
// flat-capped rectangles plus separate widened endpoints. The capsule is
// the union of the paper's rectangle and its endpoint squares' inscribed
// disks, is still a superset of the segment, and directly realizes the
// "boundary expanded by D/2" geometry the distance test needs, so every
// conservativeness guarantee carries over.
//
// Colors are grayscale float32 intensities; the paper's algorithms only
// ever use gray levels (0.5 per layer, 1.0 = overlap), so the R=G=B
// channels of the real hardware collapse to one channel here.
package raster

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// MaxLineWidth is the widest anti-aliased line the simulated hardware
// rasterizes, in pixels. The paper's GeForce4 capped anti-aliased line
// width at 10 px, which is what forces the software fallback for large
// query distances (paper §4.4); we reproduce the same limit.
const MaxLineWidth = 10.0

// Buffer is a W×H grayscale pixel buffer. Pixel (x, y) is Pix[y*W+x];
// following the OpenGL convention, a pixel at integer coordinates (x, y)
// owns the unit square [x, x+1]×[y, y+1] and its center is at
// (x+0.5, y+0.5).
//
// A Buffer tracks the dirty region — the bounding rectangle of pixels
// written since the last Clear — so that Clear only has to zero what was
// actually touched. The paper's protocol clears the window before every
// pair test, but a test's edges typically cover a fraction of it; the
// dirty-region clear turns the per-test clear cost from O(window area)
// into O(pixels drawn). Writers that bypass Set (the package's own draw
// loops) maintain the region via MarkDirty; the invariant is that every
// nonzero pixel lies inside the dirty rectangle.
type Buffer struct {
	W, H int
	Pix  []float32

	// Dirty region, inclusive pixel bounds; empty when dx1 < dx0.
	dx0, dy0, dx1, dy1 int
}

// NewBuffer allocates a zeroed W×H buffer.
func NewBuffer(w, h int) *Buffer {
	b := &Buffer{W: w, H: h, Pix: make([]float32, w*h)}
	b.resetDirty()
	return b
}

func (b *Buffer) resetDirty() {
	b.dx0, b.dy0, b.dx1, b.dy1 = b.W, b.H, -1, -1
}

// MarkDirty grows the dirty region to include the inclusive pixel
// rectangle [x0, x1]×[y0, y1], clamped to the buffer. Callers that write
// Pix directly must cover their writes with a MarkDirty call or the next
// Clear may miss them.
func (b *Buffer) MarkDirty(x0, y0, x1, y1 int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= b.W {
		x1 = b.W - 1
	}
	if y1 >= b.H {
		y1 = b.H - 1
	}
	if x1 < x0 || y1 < y0 {
		return
	}
	if x0 < b.dx0 {
		b.dx0 = x0
	}
	if y0 < b.dy0 {
		b.dy0 = y0
	}
	if x1 > b.dx1 {
		b.dx1 = x1
	}
	if y1 > b.dy1 {
		b.dy1 = y1
	}
}

// MarkAllDirty marks the whole buffer dirty.
func (b *Buffer) MarkAllDirty() { b.MarkDirty(0, 0, b.W-1, b.H-1) }

// Clear sets every pixel to zero. Only the dirty region is actually
// written; pixels outside it are already zero by the dirty-region
// invariant.
func (b *Buffer) Clear() { b.clearDirty() }

// clearDirty zeroes the dirty region, resets it, and returns the number
// of pixels zeroed (the savings relative to a full clear are
// len(Pix) - zeroed).
func (b *Buffer) clearDirty() (zeroed int64) {
	if b.dx1 < b.dx0 {
		return 0
	}
	if b.dx0 == 0 && b.dx1 == b.W-1 {
		// Full-width rows: one contiguous span.
		clear(b.Pix[b.dy0*b.W : (b.dy1+1)*b.W])
	} else {
		for y := b.dy0; y <= b.dy1; y++ {
			row := y * b.W
			clear(b.Pix[row+b.dx0 : row+b.dx1+1])
		}
	}
	zeroed = int64(b.dx1-b.dx0+1) * int64(b.dy1-b.dy0+1)
	b.resetDirty()
	return zeroed
}

// At returns the value of pixel (x, y).
func (b *Buffer) At(x, y int) float32 { return b.Pix[y*b.W+x] }

// Set writes pixel (x, y).
func (b *Buffer) Set(x, y int, v float32) {
	b.Pix[y*b.W+x] = v
	b.MarkDirty(x, y, x, y)
}

// Context is a rendering context: the simulated graphics card's state
// (current color, line width, viewport projection) plus its color and
// accumulation buffers. A Context is reusable across many renders; Clear
// and SetViewport reset it between tests without reallocating, which
// mirrors how the paper's implementation reuses one small rendering
// window for millions of pair tests.
//
// Context is not safe for concurrent use; give each worker its own, as one
// would with a GL context.
type Context struct {
	color *Buffer
	accum *Buffer

	// Viewport transform: window = (data - offset) * scale, per axis.
	sx, sy, ox, oy float64

	drawColor float32
	orBits    float32 // nonzero: OR this bit pattern instead of replacing
	lineWidth float64 // total width in pixels; 0 means exact segment coverage

	// Counters for the evaluation harness.
	PixelsWritten int64 // cells colored by draw calls
	SegmentsDrawn int64
	// DirtyClearPixelsSaved counts pixels the dirty-region Clear did not
	// have to zero (window area minus the dirty region, summed over
	// clears) — the work the tracking saved versus full clears.
	DirtyClearPixelsSaved int64

	// Hook, when non-nil, is called with a site name ("raster.draw") once
	// per rasterized primitive, before any buffer is touched. It exists
	// for fault injection (internal/faultinject installs it via
	// core.Config.Faults) and may panic or stall; the render path makes no
	// attempt to recover — isolation is the caller's job.
	Hook func(site string)
}

// NewContext creates a context with a w×h window, a unit viewport, color
// 1.0 and the default anti-aliased line width √2 (the pixel diagonal, as
// in paper §2.2.2).
func NewContext(w, h int) *Context {
	c := &Context{
		color:     NewBuffer(w, h),
		accum:     NewBuffer(w, h),
		drawColor: 1,
		lineWidth: math.Sqrt2,
	}
	c.SetViewport(geom.R(0, 0, float64(w), float64(h)))
	return c
}

// Width returns the window width in pixels.
func (c *Context) Width() int { return c.color.W }

// Height returns the window height in pixels.
func (c *Context) Height() int { return c.color.H }

// Color exposes the color buffer for inspection (tests, demos).
func (c *Context) Color() *Buffer { return c.color }

// Accum exposes the accumulation buffer for inspection.
func (c *Context) Accum() *Buffer { return c.accum }

// Resize changes the window resolution, reallocating only when growing.
func (c *Context) Resize(w, h int) {
	if n := w * h; n <= cap(c.color.Pix) {
		c.color.W, c.color.H, c.color.Pix = w, h, c.color.Pix[:n]
		c.accum.W, c.accum.H, c.accum.Pix = w, h, c.accum.Pix[:n]
		// The dirty coordinates were tracked under the old geometry
		// (row stride changed), so a full clear is the only safe reset.
		c.color.MarkAllDirty()
		c.accum.MarkAllDirty()
		c.color.Clear()
		c.accum.Clear()
	} else {
		c.color = NewBuffer(w, h)
		c.accum = NewBuffer(w, h)
	}
}

// SetViewport maps the data-space rectangle r onto the full window,
// scaling each axis independently to maximize resolution utilization
// (paper §3.2). Degenerate extents are widened to keep the transform
// finite.
func (c *Context) SetViewport(r geom.Rect) {
	w, h := r.Width(), r.Height()
	if w <= 0 {
		w = math.SmallestNonzeroFloat32
	}
	if h <= 0 {
		h = math.SmallestNonzeroFloat32
	}
	c.sx = float64(c.color.W) / w
	c.sy = float64(c.color.H) / h
	c.ox, c.oy = r.MinX, r.MinY
}

// SetViewportUniform maps r onto the window with a single scale factor on
// both axes (fitting the larger extent), as the distance test requires:
// widened lines realize a data-space disk of radius D/2, which must stay a
// disk after projection.
func (c *Context) SetViewportUniform(r geom.Rect) float64 {
	w, h := r.Width(), r.Height()
	ext := math.Max(w, h)
	if ext <= 0 {
		ext = math.SmallestNonzeroFloat32
	}
	s := float64(min(c.color.W, c.color.H)) / ext
	c.sx, c.sy = s, s
	c.ox, c.oy = r.MinX, r.MinY
	return s
}

// Scale returns the current per-axis viewport scale factors.
func (c *Context) Scale() (sx, sy float64) { return c.sx, c.sy }

// Project transforms a data-space point to window coordinates.
func (c *Context) Project(p geom.Point) geom.Point {
	return geom.Pt((p.X-c.ox)*c.sx, (p.Y-c.oy)*c.sy)
}

// SetColor sets the intensity written by subsequent draw calls.
func (c *Context) SetColor(v float32) { c.drawColor = v }

// SetLineWidth sets the anti-aliased line width in pixels. Width 0 gives
// exact segment coverage (only cells the segment passes through); the
// OpenGL default for the paper's algorithms is √2. Widths above
// MaxLineWidth return an error, matching the hardware limit that triggers
// the paper's software fallback.
func (c *Context) SetLineWidth(px float64) error {
	if px < 0 {
		return fmt.Errorf("raster: negative line width %g", px)
	}
	if px > MaxLineWidth {
		return fmt.Errorf("raster: line width %g exceeds hardware limit %g", px, MaxLineWidth)
	}
	c.lineWidth = px
	return nil
}

// LineWidth returns the current line width in pixels.
func (c *Context) LineWidth() float64 { return c.lineWidth }

// Clear zeroes the color buffer. Only the region written since the last
// clear is zeroed (see Buffer); the pixels skipped are added to the
// DirtyClearPixelsSaved counter.
func (c *Context) Clear() {
	zeroed := c.color.clearDirty()
	c.DirtyClearPixelsSaved += int64(len(c.color.Pix)) - zeroed
}

// ClearAccum zeroes the accumulation buffer.
func (c *Context) ClearAccum() { c.accum.Clear() }

// AccumLoad replaces the accumulation buffer with the color buffer scaled
// by v (glAccum(GL_LOAD, v)).
func (c *Context) AccumLoad(v float32) {
	for i, p := range c.color.Pix {
		c.accum.Pix[i] = p * v
	}
	c.accum.MarkAllDirty()
}

// AccumAdd adds the color buffer scaled by v into the accumulation buffer
// (glAccum(GL_ACCUM, v)).
func (c *Context) AccumAdd(v float32) {
	for i, p := range c.color.Pix {
		c.accum.Pix[i] += p * v
	}
	c.accum.MarkAllDirty()
}

// AccumReturn copies the accumulation buffer scaled by v back into the
// color buffer (glAccum(GL_RETURN, v)).
func (c *Context) AccumReturn(v float32) {
	for i, p := range c.accum.Pix {
		c.color.Pix[i] = p * v
	}
	c.color.MarkAllDirty()
}

// MinMax returns the minimum and maximum values in the color buffer,
// simulating the hardware Minmax function the paper uses to avoid reading
// pixels back over the AGP bus (§3.2). Cost is proportional to the window
// area, which is exactly the per-test overhead term that makes the
// resolution trade-off curves U-shaped.
func (c *Context) MinMax() (minV, maxV float32) {
	if len(c.color.Pix) == 0 {
		return 0, 0
	}
	minV, maxV = c.color.Pix[0], c.color.Pix[0]
	for _, p := range c.color.Pix[1:] {
		if p < minV {
			minV = p
		}
		if p > maxV {
			maxV = p
		}
	}
	return minV, maxV
}

// MaxAtLeast reports whether any color-buffer pixel reaches threshold,
// scanning with early exit. This is the ablation variant of MinMax: real
// hardware returns min and max in bounded time; a CPU can stop at the
// first hit.
func (c *Context) MaxAtLeast(threshold float32) bool {
	for _, p := range c.color.Pix {
		if p >= threshold {
			return true
		}
	}
	return false
}

// AccumMaxAtLeast is MaxAtLeast over the accumulation buffer, allowing
// callers to skip the AccumReturn step when they only need the test.
func (c *Context) AccumMaxAtLeast(threshold float32) bool {
	for _, p := range c.accum.Pix {
		if p >= threshold {
			return true
		}
	}
	return false
}

// ResetCounters zeroes the instrumentation counters.
func (c *Context) ResetCounters() {
	c.PixelsWritten = 0
	c.SegmentsDrawn = 0
	c.DirtyClearPixelsSaved = 0
}

// SetColorBits switches subsequent draw calls to OR the given bit pattern
// into the color buffer instead of replacing it, the hardware "logical
// operation" path (glLogicOp(GL_OR)) that Hoff et al. and the paper's §3
// list as an implementation alternative to the accumulation buffer. With
// layer A drawn as bit 1 and layer B as bit 2, a MinMax maximum of 3
// witnesses an overlapping pixel after a single clear and no accumulation
// copies. Pass 0 to return to replace mode.
func (c *Context) SetColorBits(bits uint8) {
	c.orBits = float32(bits)
}
