package raster

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestSegmentTouchesMatchesDraw: the occlusion test must answer exactly
// what "draw the segment into a scratch buffer and intersect the coverage"
// would answer, since both walk the same cells.
func TestSegmentTouchesMatchesDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	base := NewContext(16, 16)
	scratch := NewContext(16, 16)
	for trial := range 600 {
		width := rng.Float64() * 6
		base.Clear()
		scratch.Clear()
		// Random pre-rendered content.
		s1 := geom.Seg(
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
		)
		base.SetColor(1)
		base.DrawSegmentWidth(s1, width)

		s2 := geom.Seg(
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
			geom.Pt(rng.Float64()*16, rng.Float64()*16),
		)
		got := base.SegmentTouches(s2, width)

		// Oracle: render s2 elsewhere and compare the coverage sets.
		scratch.SetColor(1)
		scratch.DrawSegmentWidth(s2, width)
		want := false
		for i, v := range scratch.Color().Pix {
			if v != 0 && base.Color().Pix[i] != 0 {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: SegmentTouches = %v, coverage overlap = %v (s1=%v s2=%v w=%v)",
				trial, got, want, s1, s2, width)
		}
	}
}

func TestSegmentTouchesUsesContextWidth(t *testing.T) {
	c := NewContext(8, 8)
	c.SetColor(1)
	c.DrawSegment(geom.Seg(geom.Pt(0, 4), geom.Pt(8, 4)))
	if err := c.SetLineWidth(4); err != nil {
		t.Fatal(err)
	}
	// widthPx 0 must fall back to the context's width-4 line: a segment two
	// cells away now touches.
	if !c.SegmentTouches(geom.Seg(geom.Pt(0, 6.4), geom.Pt(8, 6.4)), 0) {
		t.Error("context width not honored")
	}
}

func TestSegmentTouchesOffscreen(t *testing.T) {
	c := NewContext(8, 8)
	c.SetColor(1)
	c.DrawSegment(geom.Seg(geom.Pt(0, 0), geom.Pt(8, 8)))
	if c.SegmentTouches(geom.Seg(geom.Pt(100, 100), geom.Pt(200, 200)), 1) {
		t.Error("offscreen segment reported touching")
	}
}

func TestSetColorBitsOR(t *testing.T) {
	c := NewContext(8, 8)
	c.SetColorBits(1)
	c.DrawSegment(geom.Seg(geom.Pt(0, 4), geom.Pt(8, 4)))
	c.SetColorBits(2)
	c.DrawSegment(geom.Seg(geom.Pt(4, 0), geom.Pt(4, 8)))
	c.SetColorBits(0)
	_, maxV := c.MinMax()
	if maxV != 3 {
		t.Errorf("crossing OR-rendered segments: max = %v, want 3", maxV)
	}
	// Disjoint bits stay separate.
	counts := map[float32]int{}
	for _, v := range c.Color().Pix {
		counts[v]++
	}
	if counts[1] == 0 || counts[2] == 0 || counts[3] == 0 {
		t.Errorf("expected all three bit values present: %v", counts)
	}
	// Back to replace mode.
	c.SetColor(0.25)
	c.DrawSegment(geom.Seg(geom.Pt(0, 4), geom.Pt(8, 4)))
	found := false
	for _, v := range c.Color().Pix {
		if v == 0.25 {
			found = true
		}
	}
	if !found {
		t.Error("SetColorBits(0) did not restore replace mode")
	}
}

func TestDrawEdgesAndPolygonEdges(t *testing.T) {
	c := NewContext(8, 8)
	c.SetColor(1)
	square := geom.MustPolygon(geom.Pt(1, 1), geom.Pt(7, 1), geom.Pt(7, 7), geom.Pt(1, 7))
	c.DrawPolygonEdges(square)
	if c.SegmentsDrawn != 4 {
		t.Errorf("SegmentsDrawn = %d, want 4", c.SegmentsDrawn)
	}
	boundary := coveredCells(c.Color())
	if len(boundary) == 0 {
		t.Fatal("no coverage")
	}
	// Interior cell untouched by edges.
	if c.Color().At(4, 4) != 0 {
		t.Error("edge rendering filled the interior")
	}

	c.Clear()
	c.ResetCounters()
	segs := []geom.Segment{
		geom.Seg(geom.Pt(0, 0), geom.Pt(8, 8)),
		geom.Seg(geom.Pt(0, 8), geom.Pt(8, 0)),
	}
	c.DrawEdges(segs)
	if c.SegmentsDrawn != 2 {
		t.Errorf("SegmentsDrawn = %d, want 2", c.SegmentsDrawn)
	}
}

func TestLineWidthAccessor(t *testing.T) {
	c := NewContext(4, 4)
	if err := c.SetLineWidth(3); err != nil {
		t.Fatal(err)
	}
	if c.LineWidth() != 3 {
		t.Errorf("LineWidth = %v", c.LineWidth())
	}
}
