// Package faultinject provides deterministic fault injection for the
// refinement pipeline. Tests install an Injector into core.Config to make
// refinement tests panic, stall, or — at the hardware-filter site — return
// the wrong verdict, with every decision a pure function of the injector's
// seed and the per-site call sequence. That determinism is what lets the
// resilience tests assert exact degradation semantics: the same seed
// replays the same fault schedule.
//
// # Trust boundary
//
// The engine compensates for injected panics and delays: a panicking
// refinement test is quarantined and retried on the software path, so with
// faults limited to KindPanic and KindDelay the result set is exactly the
// software-only result set. A KindWrongAnswer fault at SiteHWFilter is
// different: the design trusts the conservative rasterization guarantee,
// so a filter verdict flipped from "overlap" to "no overlap" silently
// drops results — there is no oracle cheaper than the software test that
// could catch it. The flip in the other direction (reject → inconclusive)
// is absorbed, because inconclusive pairs always go to the exact software
// test. Tests use both directions to document this boundary; see
// DESIGN.md §7.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the fault classes an Injector can produce.
type Kind int

const (
	// KindPanic makes the instrumented call panic with a Panic value.
	KindPanic Kind = iota
	// KindDelay makes the instrumented call sleep for the injector's
	// configured delay before proceeding.
	KindDelay
	// KindWrongAnswer flips the hardware filter's verdict. Only the
	// SiteHWFilter hook consults it.
	KindWrongAnswer
	// KindDisconnect makes the network server drop the connection at the
	// instrumented protocol site (mid-response, mid-read). Only the
	// server's Disconnect checks consult it.
	KindDisconnect
	// KindCrash kills the whole process with CrashExitCode at the
	// instrumented durability site. Only the WriteFault checks in the WAL
	// and compactor consult it; the crash-recovery harness re-execs the
	// process and verifies the ack contract afterwards.
	KindCrash
	// KindShortWrite makes the instrumented write persist only a prefix of
	// its buffer (a torn write). Only WriteFault checks consult it.
	KindShortWrite
	// KindIOError makes the instrumented I/O call report failure (modeling
	// an fsync or write error from the kernel). Only WriteFault checks
	// consult it.
	KindIOError

	numKinds
)

// String names the kind for error messages and test output.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindWrongAnswer:
		return "wrong-answer"
	case KindDisconnect:
		return "disconnect"
	case KindCrash:
		return "crash"
	case KindShortWrite:
		return "short-write"
	case KindIOError:
		return "io-error"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Hook sites instrumented by the engine. Sites are plain strings so that
// packages below core (internal/raster) can fire hooks without importing
// this package.
const (
	// SiteIntersects fires at the top of Tester.Intersects, before any
	// counter is touched, so a panicking test is never half-counted.
	SiteIntersects = "tester.intersects"
	// SiteWithinDistance fires at the top of Tester.WithinDistance.
	SiteWithinDistance = "tester.withindistance"
	// SiteHWFilter decides whether the hardware overlap verdict is flipped.
	SiteHWFilter = "tester.hwfilter"
	// SiteRenderDraw fires inside the raster draw calls (mid-test), the
	// hook point for faults that strike after counters moved.
	SiteRenderDraw = "raster.draw"

	// Server protocol sites, instrumented by internal/server's TCP
	// sessions. Delay faults model slow networks and slow clients; panic
	// faults model session-handler bugs (the server must contain them);
	// disconnect faults model clients vanishing mid-exchange.
	//
	// SiteServerAccept fires once per accepted connection, before the
	// session greets the client.
	SiteServerAccept = "server.accept"
	// SiteServerRead fires before each command read (a delay here is a
	// slow client holding a session open).
	SiteServerRead = "server.read"
	// SiteServerWrite fires per response line as it is written; a
	// disconnect here severs the connection mid-response.
	SiteServerWrite = "server.write"

	// Durability sites, instrumented by internal/wal and the ingest
	// compactor. Crash faults here model power loss at the exact
	// instruction; short writes model torn appends; io-errors model the
	// kernel failing an fsync. The crash-recovery harness arms each in
	// turn and verifies the ack contract across a process kill.
	//
	// SiteWALWrite fires before a group-commit batch is written to the
	// active segment (crash = batch lost before it hit the file).
	SiteWALWrite = "wal.write"
	// SiteWALFsync fires after the batch write, before fsync (crash =
	// batch in the page cache only, legitimately lost: nothing acked).
	SiteWALFsync = "wal.fsync"
	// SiteWALFsynced fires after fsync succeeds, before the waiters are
	// acked (crash = durable but unacked; recovery may surface it).
	SiteWALFsynced = "wal.fsynced"
	// SiteWALRotate fires when the log opens a fresh segment file.
	SiteWALRotate = "wal.rotate"
	// SiteCompactSave fires before the compactor writes the new snapshot
	// generation.
	SiteCompactSave = "compact.save"
	// SiteCompactPublish fires after the snapshot rename, before the live
	// table swaps to the new generation.
	SiteCompactPublish = "compact.publish"
	// SiteCompactTruncate fires after the swap, before WAL truncation
	// (crash = stale-but-idempotent WAL records survive).
	SiteCompactTruncate = "compact.truncate"

	// Coordinator sites, instrumented by internal/coord's shard clients.
	// Delay faults model slow shards, panic faults model client bugs, and
	// disconnect faults model shard connections dying — each must degrade
	// to a typed partial result, never a hang or a wrong answer.
	//
	// SiteCoordDial fires before each shard dial attempt (disconnect =
	// dial refused).
	SiteCoordDial = "coord.dial"
	// SiteCoordRead fires before each response line read from a shard
	// (disconnect = connection severed mid-response).
	SiteCoordRead = "coord.read"
	// SiteCoordShardDown fires once per tile sub-query; a disconnect
	// marks the whole tile — every replica — unreachable for that query,
	// modeling a correlated outage. Failover cannot route around it.
	SiteCoordShardDown = "coord.shard_down"
	// SiteCoordReplicaDown fires once per replica attempt; a disconnect
	// fails just that attempt, so a replicated tile fails over to its
	// next replica while an unreplicated one degrades to a typed
	// partial — the seam the failover chaos tests drive.
	SiteCoordReplicaDown = "coord.replica_down"
	// SiteCoordProbe fires before each background health probe; a
	// disconnect fails the probe, opening the replica's breaker as if
	// the process were unreachable.
	SiteCoordProbe = "coord.probe"
)

// CrashExitCode is the status a KindCrash fault exits the process with,
// so harnesses can tell an injected crash from a genuine failure.
const CrashExitCode = 86

// Crash kills the process the way an injected KindCrash fault does.
// Exposed so callers that must die after partial work (e.g. a torn write)
// share the exit code with WriteFault-driven crashes.
func Crash() {
	os.Exit(CrashExitCode)
}

// Panic is the value thrown by an injected KindPanic fault. Recovery code
// can use IsInjected to distinguish scheduled faults from genuine bugs.
type Panic struct {
	Site string
	Seq  uint64 // the site-local call number that fired
}

// Error makes Panic usable as an error when callers convert the recovered
// value.
func (p Panic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s (call %d)", p.Site, p.Seq)
}

// IsInjected reports whether a recovered panic value came from an
// Injector.
func IsInjected(r any) bool {
	_, ok := r.(Panic)
	return ok
}

type rule struct {
	kind Kind
	rate float64
	// seq, when ≥ 0, pins the rule to exactly one site-local call number
	// (the crash harness uses this to kill the process at the n-th fsync,
	// not a random one). Negative means probabilistic by rate.
	seq int64
}

// Injector decides, deterministically by seed and per-site call count,
// which instrumented calls fault. The zero value is unusable; build with
// New. An Injector is safe for concurrent use by many testers; decisions
// stay deterministic in aggregate (the n-th call at a site always gets the
// same verdict), though which goroutine makes the n-th call depends on
// scheduling.
type Injector struct {
	seed  int64
	delay time.Duration

	mu    sync.Mutex
	rules map[string][]rule
	seq   map[string]uint64
	fired map[string]map[Kind]int64
}

// New builds an empty injector: no sites fault until Inject is called.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		delay: time.Millisecond,
		rules: map[string][]rule{},
		seq:   map[string]uint64{},
		fired: map[string]map[Kind]int64{},
	}
}

// Seed returns the seed every decision derives from. Harnesses log it at
// startup so any observed run can be replayed exactly.
func (in *Injector) Seed() int64 { return in.seed }

// Inject arms a fault kind at a site with the given firing probability in
// [0, 1]. Rate 1 fires on every call. Returns the injector for chaining.
func (in *Injector) Inject(site string, kind Kind, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = append(in.rules[site], rule{kind: kind, rate: rate, seq: -1})
	return in
}

// InjectAt arms a fault kind that fires on exactly the seq-th call at the
// site (0-based) and never otherwise. The crash harness iterates seq to
// kill the process at every instrumented point in turn.
func (in *Injector) InjectAt(site string, kind Kind, seq uint64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = append(in.rules[site], rule{kind: kind, rate: 1, seq: int64(seq)})
	return in
}

// Disarm removes every rule at the site, leaving its call counter intact
// so later re-arming continues the same deterministic schedule. Recovery
// tests use it to model a fault condition clearing.
func (in *Injector) Disarm(site string) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, site)
	return in
}

// SetDelay sets the stall duration of KindDelay faults (default 1ms).
func (in *Injector) SetDelay(d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay = d
	return in
}

// Fired returns how many faults of the kind have fired at the site.
func (in *Injector) Fired(site string, kind Kind) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site][kind]
}

// FiredTotal returns the total number of faults fired across all sites.
func (in *Injector) FiredTotal() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, kinds := range in.fired {
		for _, c := range kinds {
			n += c
		}
	}
	return n
}

// decide advances the site's call counter and returns which kinds fire on
// this call, plus the call number and the configured delay.
func (in *Injector) decide(site string) (kinds []Kind, seq uint64, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	seq = in.seq[site]
	in.seq[site] = seq + 1
	for _, r := range in.rules[site] {
		hit := false
		if r.seq >= 0 {
			hit = uint64(r.seq) == seq
		} else {
			hit = fires(in.seed, site, r.kind, seq, r.rate)
		}
		if hit {
			kinds = append(kinds, r.kind)
			m := in.fired[site]
			if m == nil {
				m = map[Kind]int64{}
				in.fired[site] = m
			}
			m[r.kind]++
		}
	}
	return kinds, seq, in.delay
}

// Apply evaluates the site's panic and delay rules for this call: it
// sleeps first if a delay fires (outside the injector lock, so stalls
// overlap across workers), then panics with a Panic value if a panic
// fires. Wrong-answer rules are not evaluated here; see Wrong.
func (in *Injector) Apply(site string) {
	kinds, seq, delay := in.decide(site)
	doPanic := false
	for _, k := range kinds {
		switch k {
		case KindDelay:
			time.Sleep(delay)
		case KindPanic:
			doPanic = true
		}
	}
	if doPanic {
		panic(Panic{Site: site, Seq: seq})
	}
}

// Wrong reports whether a wrong-answer fault fires at the site on this
// call. Panic and delay rules armed at the same site also take effect, in
// Apply order (delay, then panic).
func (in *Injector) Wrong(site string) bool {
	return in.check(site, KindWrongAnswer)
}

// Disconnect reports whether a disconnect fault fires at the site on this
// call, with the same delay/panic side effects as Wrong. The server's
// session loop consults it at the protocol sites and severs the
// connection on true.
func (in *Injector) Disconnect(site string) bool {
	return in.check(site, KindDisconnect)
}

// IOFault reports which durability faults fired at a site on one call.
// Callers act on the fields in torn-write order: a short write persists a
// prefix, a crash kills the process, an error is reported to the writer.
type IOFault struct {
	Crash bool // KindCrash fired: kill the process (faultinject.Crash)
	Short bool // KindShortWrite fired: persist only a prefix
	Err   bool // KindIOError fired: report the operation as failed
}

// Any reports whether any durability fault fired.
func (f IOFault) Any() bool { return f.Crash || f.Short || f.Err }

// WriteFault evaluates the site's rules for one durability operation and
// reports which crash/short-write/io-error kinds fired; delay and panic
// rules armed at the same site take their usual side effects first. One
// call advances the site's sequence once, so a crash pinned to call n via
// InjectAt lines up with the n-th instrumented operation.
func (in *Injector) WriteFault(site string) IOFault {
	kinds, seq, delay := in.decide(site)
	var f IOFault
	doPanic := false
	for _, k := range kinds {
		switch k {
		case KindDelay:
			time.Sleep(delay)
		case KindPanic:
			doPanic = true
		case KindCrash:
			f.Crash = true
		case KindShortWrite:
			f.Short = true
		case KindIOError:
			f.Err = true
		}
	}
	if doPanic {
		panic(Panic{Site: site, Seq: seq})
	}
	return f
}

// check evaluates the site's rules for this call, applying delay and
// panic side effects, and reports whether the wanted kind fired.
func (in *Injector) check(site string, want Kind) bool {
	kinds, seq, delay := in.decide(site)
	hit, doPanic := false, false
	for _, k := range kinds {
		switch {
		case k == KindDelay:
			time.Sleep(delay)
		case k == KindPanic:
			doPanic = true
		case k == want:
			hit = true
		}
	}
	if doPanic {
		panic(Panic{Site: site, Seq: seq})
	}
	return hit
}

// ParseSpec builds an injector from a single seed and a textual fault
// specification of the form
//
//	site=kind:rate[@seq][,site=kind:rate...]
//
// e.g. "tester.hwfilter=wrong-answer:1,server.read=delay:0.05", or with
// the @seq suffix "wal.fsync=crash:1@3" to fire on exactly the fourth
// call at the site (the crash harness's per-point targeting; the rate is
// then ignored). Kind names match Kind.String(). The whole schedule
// derives from the one seed, which callers should log so runs are
// reproducible. An empty spec yields an armed-nothing injector.
func ParseSpec(seed int64, spec string) (*Injector, error) {
	in := New(seed)
	if spec == "" {
		return in, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec entry %q: want site=kind:rate", part)
		}
		kindName, rateStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad spec entry %q: want site=kind:rate", part)
		}
		kind, err := parseKind(strings.TrimSpace(kindName))
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad spec entry %q: %w", part, err)
		}
		rateStr = strings.TrimSpace(rateStr)
		seqStr := ""
		if r, s, ok := strings.Cut(rateStr, "@"); ok {
			rateStr, seqStr = strings.TrimSpace(r), strings.TrimSpace(s)
		}
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: bad rate in spec entry %q: want a number in [0,1]", part)
		}
		if seqStr != "" {
			seq, err := strconv.ParseUint(seqStr, 10, 63)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad @seq in spec entry %q: want a non-negative integer", part)
			}
			in.InjectAt(strings.TrimSpace(site), kind, seq)
		} else {
			in.Inject(strings.TrimSpace(site), kind, rate)
		}
	}
	return in, nil
}

// parseKind inverts Kind.String.
func parseKind(name string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q (want panic, delay, wrong-answer, disconnect, crash, short-write or io-error)", name)
}

// Hook adapts the injector to the raster package's hook field
// (func(site string)), so render-path faults can be armed without raster
// importing this package.
func (in *Injector) Hook() func(site string) {
	return in.Apply
}

// fires is the deterministic decision function: a splitmix64-style hash of
// (seed, site, kind, call number) mapped to [0, 1) and compared to rate.
func fires(seed int64, site string, kind Kind, seq uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := uint64(seed) ^ hashString(site) ^ (seq*uint64(numKinds) + uint64(kind))
	h = splitmix64(h)
	u := float64(h>>11) / float64(1<<53)
	return u < rate
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer used as a stateless PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
