package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestDeterministicBySeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed).Inject(SiteIntersects, KindPanic, 0.3)
		out := make([]bool, 200)
		for i := range out {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if !IsInjected(r) {
							panic(r)
						}
						out[i] = true
					}
				}()
				in.Apply(SiteIntersects)
			}()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 200-call patterns")
	}
}

func TestRateZeroAndOne(t *testing.T) {
	in := New(1).
		Inject(SiteIntersects, KindPanic, 0).
		Inject(SiteWithinDistance, KindPanic, 1)
	for range 50 {
		in.Apply(SiteIntersects) // must never panic
	}
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = IsInjected(r)
			}
		}()
		in.Apply(SiteWithinDistance)
	}()
	if !panicked {
		t.Error("rate-1 panic rule did not fire")
	}
	if got := in.Fired(SiteWithinDistance, KindPanic); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
	if got := in.Fired(SiteIntersects, KindPanic); got != 0 {
		t.Errorf("rate-0 site fired %d times", got)
	}
}

func TestApproximateRate(t *testing.T) {
	in := New(7).Inject(SiteHWFilter, KindWrongAnswer, 0.25)
	fired := 0
	const n = 4000
	for range n {
		if in.Wrong(SiteHWFilter) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("wrong-answer rate %.3f, want ≈0.25", frac)
	}
	if in.FiredTotal() != int64(fired) {
		t.Errorf("FiredTotal = %d, want %d", in.FiredTotal(), fired)
	}
}

func TestDelayFires(t *testing.T) {
	in := New(9).Inject(SiteRenderDraw, KindDelay, 1).SetDelay(5 * time.Millisecond)
	start := time.Now()
	in.Apply(SiteRenderDraw)
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("delay fault slept %v, want ≥ 5ms", elapsed)
	}
}

func TestConcurrentUseCountsEveryCall(t *testing.T) {
	in := New(3).Inject(SiteIntersects, KindDelay, 1).SetDelay(0)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range per {
				in.Apply(SiteIntersects)
			}
		}()
	}
	wg.Wait()
	if got := in.Fired(SiteIntersects, KindDelay); got != workers*per {
		t.Errorf("fired %d delays, want %d", got, workers*per)
	}
}

func TestIsInjectedRejectsForeignPanics(t *testing.T) {
	if IsInjected("boom") || IsInjected(nil) {
		t.Error("IsInjected accepted a non-injected value")
	}
	if !IsInjected(Panic{Site: SiteIntersects}) {
		t.Error("IsInjected rejected an injected value")
	}
}
