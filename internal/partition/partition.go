// Package partition splits a layer into spatial tiles for multi-node
// serving: a gx×gy grid over the layer's bounds, each tile persisted as
// its own SPSNAP01 snapshot holding every object whose (margin-expanded)
// MBR overlaps the tile, plus a small JSON manifest recording the grid,
// the tile MBRs, shard addresses, and the generation. One spatiald per
// tile then serves its snapshot unchanged, and internal/coord routes and
// fans queries out across the fleet.
//
// # Ownership and the reference-point rule
//
// Objects near tile borders are replicated into every tile they overlap,
// so a shard-wise join would report a border-crossing pair once per tile
// holding both objects. The dedup contract is the reference-point rule:
// a pair is emitted only by the tile that *owns* the reference point of
// the pair's MBR interaction (the min corner of the MBR intersection for
// intersection joins; see shellcmd's shardjoin). Ownership regions are
// the grid cells with half-open [min, max) semantics, border cells
// extended to ±infinity — they tile the whole plane, so every reference
// point has exactly one owner and no pair is lost or double-counted.
package partition

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/store"
)

// SnapshotName is the per-tile snapshot file name for a partitioned
// layer, under the tile's shard directory.
func SnapshotName(layer string) string { return layer + ".snap" }

// ManifestName is the manifest file written next to the shard
// directories.
const ManifestName = "manifest.json"

// CurrentVersion is the manifest format version the partitioner writes.
// Version 0/1 manifests (no per-tile replica lists) load unchanged and
// normalize to single-replica tiles; versions above CurrentVersion fail
// closed with a typed *ManifestError.
const CurrentVersion = 2

// MaxReplicas bounds the per-tile replication factor a manifest may
// claim; anything larger is treated as corruption.
const MaxReplicas = 16

// Replica is one copy of a tile: a shard directory holding the tile's
// snapshots and the address of the spatiald serving it.
type Replica struct {
	// Dir is the replica's shard directory, relative to the manifest.
	Dir string `json:"dir"`
	// Addr is the serving shard's wire-protocol address. The partitioner
	// leaves it empty; operators record it here or override it with the
	// coordinator's -shards flag.
	Addr string `json:"addr,omitempty"`
}

// Tile is one spatial shard of a partitioned deployment.
type Tile struct {
	// ID is the tile's index: iy*GX + ix, row-major from the grid's min
	// corner.
	ID int `json:"id"`
	// Bounds is the tile's finite cell rectangle (the stored tile MBR).
	// The *ownership region* extends border cells to infinity; see
	// Manifest.Region.
	Bounds geom.Rect `json:"bounds"`
	// Dir is the primary replica's shard directory, relative to the
	// manifest. Kept alongside Replicas so v1 readers and tools that only
	// care about the primary keep working; after Load it always mirrors
	// Replicas[0].Dir.
	Dir string `json:"dir"`
	// Addr is the primary shard's wire-protocol address; mirrors
	// Replicas[0].Addr after Load. See Replica.Addr.
	Addr string `json:"addr,omitempty"`
	// Replicas lists every copy of this tile, primary first. Version ≥ 2
	// manifests must list at least one; v1 manifests omit the field and
	// Load normalizes it to the single {Dir, Addr} replica.
	Replicas []Replica `json:"replicas,omitempty"`
	// Objects counts replicated objects per layer in this tile.
	Objects map[string]int `json:"objects"`
}

// LayerInfo records one partitioned layer in the manifest.
type LayerInfo struct {
	// Objects is the source layer's object count (before replication).
	Objects int `json:"objects"`
	// Replicas is the total number of per-tile copies written; the
	// replication factor is Replicas/Objects.
	Replicas int `json:"replicas"`
}

// Manifest describes one partitioned deployment: the shared grid, the
// tiles, and every layer partitioned into it. All layers of a manifest
// share the same grid — that alignment is what makes shard-wise joins
// well defined.
type Manifest struct {
	// Version is the manifest format version (see CurrentVersion).
	// Omitted by v1 writers, so zero means "legacy, replica-less".
	Version int `json:"version,omitempty"`
	// Generation increments every time a layer is (re)partitioned into
	// the directory, so coordinators can detect a stale fleet.
	Generation uint64 `json:"generation"`
	// Bounds is the finite grid extent, fixed by the first partitioned
	// layer. Objects outside it land in the nearest border tile via the
	// extended ownership regions.
	Bounds geom.Rect `json:"bounds"`
	// GX and GY are the grid dimensions; GX*GY tiles.
	GX int `json:"gx"`
	GY int `json:"gy"`
	// Margin is the replication margin: objects are replicated into
	// every tile within Margin of their MBR, which is what makes
	// within-distance joins with d ≤ Margin shard-decomposable. Zero
	// supports intersection joins and selections only.
	Margin float64 `json:"margin"`
	// Layers maps layer name → partition accounting.
	Layers map[string]LayerInfo `json:"layers"`
	// Tiles lists the GX*GY tiles in ID order.
	Tiles []Tile `json:"tiles"`
	// Tool and Created are provenance.
	Tool    string `json:"tool,omitempty"`
	Created string `json:"created,omitempty"`
}

// ManifestError is the typed refusal for an unreadable or inconsistent
// manifest.
type ManifestError struct {
	Path   string
	Reason string
}

func (e *ManifestError) Error() string {
	return fmt.Sprintf("partition: manifest %s: %s", e.Path, e.Reason)
}

// PlanGrid picks grid dimensions for n tiles: the most-square gx×gy
// factorization with gx*gy == n (gx ≥ gy), so 1→1×1, 2→2×1, 4→2×2,
// 8→4×2, and a prime n degrades to n×1 columns.
func PlanGrid(n int) (gx, gy int) {
	gy = 1
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			gy = f
		}
	}
	return n / gy, gy
}

// NumTiles returns the tile count.
func (m *Manifest) NumTiles() int { return m.GX * m.GY }

// xEdge returns the i-th vertical grid line (0 ≤ i ≤ GX). Both the
// partitioner and the coordinator derive cell edges from this one
// expression, so half-open ownership regions tile exactly: cell i's max
// edge is bit-identical to cell i+1's min edge.
func (m *Manifest) xEdge(i int) float64 {
	return m.Bounds.MinX + float64(i)*(m.Bounds.MaxX-m.Bounds.MinX)/float64(m.GX)
}

func (m *Manifest) yEdge(i int) float64 {
	return m.Bounds.MinY + float64(i)*(m.Bounds.MaxY-m.Bounds.MinY)/float64(m.GY)
}

// CellBounds returns tile id's finite cell rectangle.
func (m *Manifest) CellBounds(id int) geom.Rect {
	ix, iy := id%m.GX, id/m.GX
	return geom.R(m.xEdge(ix), m.yEdge(iy), m.xEdge(ix+1), m.yEdge(iy+1))
}

// Region returns tile id's ownership region: its cell rectangle with
// border cells extended to infinity. Regions tile the whole plane under
// half-open [min, max) containment — every point has exactly one owner —
// which is the geometric fact the reference-point dedup rule rests on.
func (m *Manifest) Region(id int) geom.Rect {
	r := m.CellBounds(id)
	ix, iy := id%m.GX, id/m.GX
	if ix == 0 {
		r.MinX = math.Inf(-1)
	}
	if ix == m.GX-1 {
		r.MaxX = math.Inf(1)
	}
	if iy == 0 {
		r.MinY = math.Inf(-1)
	}
	if iy == m.GY-1 {
		r.MaxY = math.Inf(1)
	}
	return r
}

// Owns reports whether tile id's ownership region contains the point
// under the half-open rule: MinX ≤ x < MaxX and MinY ≤ y < MaxY.
func (m *Manifest) Owns(id int, p geom.Point) bool {
	return OwnsRect(m.Region(id), p)
}

// OwnsRect is the half-open containment test shards apply to reference
// points against the ownership region the coordinator hands them.
// Exported so the shard side and the coordinator share one definition.
func OwnsRect(region geom.Rect, p geom.Point) bool {
	return p.X >= region.MinX && p.X < region.MaxX &&
		p.Y >= region.MinY && p.Y < region.MaxY
}

// RefPoint is the reference point of an intersecting candidate pair: the
// min corner of the two MBRs' intersection. It lies inside both MBRs, so
// the tile owning it holds both objects — the pair is emitted there and
// nowhere else.
func RefPoint(a, b geom.Rect) geom.Point {
	i := a.Intersection(b)
	return geom.Point{X: i.MinX, Y: i.MinY}
}

// RefPointWithin is the reference point of a within-distance candidate
// pair: the min corner of Intersection(a.Expand(d), b). The MBRs of a
// within-d pair are within d per axis, so the intersection is non-empty;
// the point lies inside b's MBR and within d of a's, so a deployment
// whose replication margin is ≥ d guarantees the owning tile holds both
// objects. That is why coordinators refuse within-joins with d > Margin.
func RefPointWithin(a, b geom.Rect, d float64) geom.Point {
	i := a.Expand(d).Intersection(b)
	return geom.Point{X: i.MinX, Y: i.MinY}
}

// OverlappingTiles returns the IDs of every tile whose margin-expanded
// ownership region intersects r — the tiles an object with MBR r is
// replicated into, and the tiles a selection with query MBR r must be
// routed to.
func (m *Manifest) OverlappingTiles(r geom.Rect) []int {
	var out []int
	q := r.Expand(m.Margin)
	for id := 0; id < m.NumTiles(); id++ {
		if m.Region(id).Intersects(q) {
			out = append(out, id)
		}
	}
	return out
}

// Addrs returns the per-tile *primary* shard addresses in tile order,
// or an error naming the first tile without one.
func (m *Manifest) Addrs() ([]string, error) {
	addrs := make([]string, len(m.Tiles))
	for i, t := range m.Tiles {
		if t.Addr == "" {
			return nil, fmt.Errorf("partition: tile %d has no shard address (record it in the manifest or pass -shards)", i)
		}
		addrs[i] = t.Addr
	}
	return addrs, nil
}

// ReplicaAddrs returns every tile's replica addresses (primary first) in
// tile order, or an error naming the first replica without one. This is
// the coordinator's routing table: element [t][r] serves replica r of
// tile t.
func (m *Manifest) ReplicaAddrs() ([][]string, error) {
	out := make([][]string, len(m.Tiles))
	for i, t := range m.Tiles {
		out[i] = make([]string, len(t.Replicas))
		for r, rep := range t.Replicas {
			if rep.Addr == "" {
				return nil, fmt.Errorf("partition: tile %d replica %d has no shard address (record it in the manifest or pass -shards)", i, r)
			}
			out[i][r] = rep.Addr
		}
	}
	return out, nil
}

// Replicas returns the deployment's replication factor — the number of
// copies of each tile. Uniform across tiles by construction; 1 for v1
// manifests.
func (m *Manifest) Replicas() int {
	if len(m.Tiles) == 0 {
		return 1
	}
	if n := len(m.Tiles[0].Replicas); n > 1 {
		return n
	}
	return 1
}

// Options configures Write.
type Options struct {
	// Tiles is the shard count; required ≥ 1. When the directory already
	// holds a manifest, Tiles must match its grid.
	Tiles int
	// Replicas is the number of copies of each tile (0 and 1 both mean
	// unreplicated). When the directory already holds a manifest, a
	// non-zero Replicas must match its deployed factor.
	Replicas int
	// Margin is the replication margin recorded in a fresh manifest (see
	// Manifest.Margin). Ignored when adding a layer to an existing
	// manifest — the deployed margin wins.
	Margin float64
	// Tool is recorded as provenance.
	Tool string
	// Save passes through to the per-tile snapshot writer.
	Save store.SaveOptions
}

// Result reports what Write produced.
type Result struct {
	Manifest *Manifest
	// Layer accounting for the layer just written.
	Objects  int
	Replicas int
	// Bytes is the total snapshot bytes written.
	Bytes int64
	// WallMS is the end-to-end partition+persist time.
	WallMS float64
}

// Write partitions dataset d under name into dir: per-tile SPSNAP01
// snapshots at dir/shard-<i>/<name>.snap (objects carry their global
// dataset index as stable id, so shard results merge without remapping)
// and an updated dir/manifest.json. A manifest already in dir pins the
// grid — subsequent layers co-partition onto it, which is what makes
// cross-layer shard joins sound; Options.Tiles must then match. The
// manifest write is atomic (temp + rename) and bumps the generation.
func Write(dir, name string, d *data.Dataset, opts Options) (Result, error) {
	start := time.Now()
	if opts.Tiles < 1 {
		return Result{}, fmt.Errorf("partition: need at least 1 tile, got %d", opts.Tiles)
	}
	if opts.Replicas > MaxReplicas {
		return Result{}, fmt.Errorf("partition: implausible replica count %d (max %d)", opts.Replicas, MaxReplicas)
	}
	if name == "" {
		return Result{}, fmt.Errorf("partition: empty layer name")
	}
	man, err := Load(dir)
	switch {
	case err == nil:
		if man.NumTiles() != opts.Tiles {
			return Result{}, fmt.Errorf("partition: directory %s is already partitioned into %d tiles, not %d (use a fresh directory to change the grid)",
				dir, man.NumTiles(), opts.Tiles)
		}
		if opts.Replicas > 0 && man.Replicas() != opts.Replicas {
			return Result{}, fmt.Errorf("partition: directory %s is already deployed with %d replicas per tile, not %d (use a fresh directory to change the factor)",
				dir, man.Replicas(), opts.Replicas)
		}
	case os.IsNotExist(err):
		man = newManifest(d, opts)
	default:
		return Result{}, err
	}

	// Assign every object to each tile its margin-expanded MBR overlaps.
	// Iterating objects in dataset order keeps each tile's id column
	// strictly increasing, as the snapshot ids section requires.
	tiles := man.NumTiles()
	members := make([][]int, tiles)
	replicas := 0
	for i, p := range d.Objects {
		for _, id := range man.OverlappingTiles(p.Bounds()) {
			members[id] = append(members[id], i)
			replicas++
		}
	}

	res := Result{Objects: len(d.Objects), Replicas: replicas}
	for id := 0; id < tiles; id++ {
		objs := make([]*geom.Polygon, len(members[id]))
		ids := make([]uint64, len(members[id]))
		for j, gi := range members[id] {
			objs[j] = d.Objects[gi]
			ids[j] = uint64(gi)
		}
		save := opts.Save
		save.IDs = ids
		if save.Tool == "" {
			save.Tool = opts.Tool
		}
		tileSet := &data.Dataset{Name: d.Name, Objects: objs}
		// Every replica gets a full copy of the tile snapshot in its own
		// directory, so any replica can serve the tile alone.
		for r, rep := range man.Tiles[id].Replicas {
			repDir := filepath.Join(dir, rep.Dir)
			if err := os.MkdirAll(repDir, 0o755); err != nil {
				return Result{}, fmt.Errorf("partition: %w", err)
			}
			bs, err := store.Save(filepath.Join(repDir, SnapshotName(name)), tileSet, save)
			if err != nil {
				return Result{}, fmt.Errorf("partition: tile %d replica %d: %w", id, r, err)
			}
			res.Bytes += bs.Bytes
		}
		man.Tiles[id].Objects[name] = len(objs)
	}

	man.Version = CurrentVersion
	man.Generation++
	man.Layers[name] = LayerInfo{Objects: len(d.Objects), Replicas: replicas}
	if opts.Tool != "" {
		man.Tool = opts.Tool
	}
	man.Created = time.Now().UTC().Format(time.RFC3339)
	if err := writeManifest(dir, man); err != nil {
		return Result{}, err
	}
	res.Manifest = man
	res.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// newManifest lays out a fresh grid over the dataset's bounds.
func newManifest(d *data.Dataset, opts Options) *Manifest {
	gx, gy := PlanGrid(opts.Tiles)
	m := &Manifest{
		Version: CurrentVersion,
		Bounds:  d.Bounds(),
		GX:      gx,
		GY:      gy,
		Margin:  opts.Margin,
		Layers:  map[string]LayerInfo{},
	}
	reps := opts.Replicas
	if reps < 1 {
		reps = 1
	}
	m.Tiles = make([]Tile, m.NumTiles())
	for id := range m.Tiles {
		t := Tile{
			ID:      id,
			Bounds:  m.CellBounds(id),
			Dir:     fmt.Sprintf("shard-%d", id),
			Objects: map[string]int{},
		}
		t.Replicas = make([]Replica, reps)
		t.Replicas[0] = Replica{Dir: t.Dir}
		for r := 1; r < reps; r++ {
			t.Replicas[r] = Replica{Dir: fmt.Sprintf("shard-%d-r%d", id, r)}
		}
		m.Tiles[id] = t
	}
	return m
}

// Load reads and validates dir's manifest. A missing manifest returns an
// error satisfying os.IsNotExist; anything malformed returns a typed
// *ManifestError.
func Load(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(b, path)
}

// Decode parses and validates a manifest from its JSON encoding. Every
// failure is a typed *ManifestError — corrupt bytes fail closed, they
// never panic and never yield a half-usable manifest. This is the fuzz
// target behind FuzzManifest.
func Decode(b []byte) (*Manifest, error) { return decode(b, ManifestName) }

func decode(b []byte, path string) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, &ManifestError{Path: path, Reason: err.Error()}
	}
	if err := m.validate(); err != nil {
		return nil, &ManifestError{Path: path, Reason: err.Error()}
	}
	m.normalize()
	return &m, nil
}

// validate checks the structural invariants every consumer assumes.
func (m *Manifest) validate() error {
	if m.Version < 0 || m.Version > CurrentVersion {
		return fmt.Errorf("unknown manifest version %d (this build reads up to %d)", m.Version, CurrentVersion)
	}
	if m.GX < 1 || m.GY < 1 {
		return fmt.Errorf("bad grid %dx%d", m.GX, m.GY)
	}
	if m.NumTiles() > 1<<16 {
		return fmt.Errorf("implausible tile count %d", m.NumTiles())
	}
	if len(m.Tiles) != m.NumTiles() {
		return fmt.Errorf("%d tiles listed, grid %dx%d needs %d", len(m.Tiles), m.GX, m.GY, m.NumTiles())
	}
	if m.Bounds.IsEmpty() || hasNonFinite(m.Bounds) {
		return fmt.Errorf("bad grid bounds %v", m.Bounds)
	}
	if math.IsNaN(m.Margin) || math.IsInf(m.Margin, 0) || m.Margin < 0 {
		return fmt.Errorf("bad margin %v", m.Margin)
	}
	// claimed maps each claimed shard directory to the claiming tile, so
	// two tiles (or two replicas) claiming one directory — overlapping
	// on-disk ownership — fail closed instead of silently double-serving.
	claimed := map[string]int{}
	claim := func(tile int, dir string) error {
		if prev, dup := claimed[dir]; dup {
			return fmt.Errorf("tiles %d and %d both claim directory %q", prev, tile, dir)
		}
		claimed[dir] = tile
		return nil
	}
	for i := range m.Tiles {
		t := &m.Tiles[i]
		if t.ID != i {
			return fmt.Errorf("tile %d carries id %d", i, t.ID)
		}
		// A tile claiming bounds other than its grid cell would overlap a
		// sibling's ownership region and break the reference-point rule.
		if t.Bounds != m.CellBounds(i) {
			return fmt.Errorf("tile %d claims bounds %v, its grid cell is %v", i, t.Bounds, m.CellBounds(i))
		}
		if len(t.Replicas) == 0 {
			if m.Version >= CurrentVersion {
				return fmt.Errorf("tile %d has an empty replica list", i)
			}
			if t.Dir == "" {
				return fmt.Errorf("tile %d has no directory", i)
			}
			if err := claim(i, t.Dir); err != nil {
				return err
			}
			continue
		}
		if len(t.Replicas) > MaxReplicas {
			return fmt.Errorf("tile %d claims implausible replica count %d (max %d)", i, len(t.Replicas), MaxReplicas)
		}
		if t.Dir != "" && t.Dir != t.Replicas[0].Dir {
			return fmt.Errorf("tile %d dir %q disagrees with its primary replica %q", i, t.Dir, t.Replicas[0].Dir)
		}
		addrs := map[string]bool{}
		for r, rep := range t.Replicas {
			if rep.Dir == "" {
				return fmt.Errorf("tile %d replica %d has no directory", i, r)
			}
			if err := claim(i, rep.Dir); err != nil {
				return err
			}
			if rep.Addr != "" {
				if addrs[rep.Addr] {
					return fmt.Errorf("tile %d lists address %q for two replicas; replicas must be distinct shards", i, rep.Addr)
				}
				addrs[rep.Addr] = true
			}
		}
	}
	return nil
}

// normalize establishes the in-memory invariants consumers rely on
// after a successful validate: every tile has a non-empty replica list
// (v1 tiles become their own single replica) and the legacy Dir/Addr
// fields mirror the primary replica.
func (m *Manifest) normalize() {
	for i := range m.Tiles {
		t := &m.Tiles[i]
		if len(t.Replicas) == 0 {
			t.Replicas = []Replica{{Dir: t.Dir, Addr: t.Addr}}
			continue
		}
		t.Dir = t.Replicas[0].Dir
		t.Addr = t.Replicas[0].Addr
	}
}

func hasNonFinite(r geom.Rect) bool {
	for _, v := range []float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// writeManifest persists the manifest atomically: temp file in dir,
// fsync, rename — a crash leaves the old manifest or none, never a torn
// one.
func writeManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	f, err := os.CreateTemp(dir, ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("partition: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("partition: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	return nil
}
