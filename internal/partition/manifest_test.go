// Manifest v2 coverage: per-tile replica lists, v1 compatibility, and
// the fail-closed decoding contract (corrupt or hostile manifests must
// yield a typed *ManifestError, never a panic or a half-usable
// manifest). FuzzManifest drives Decode with arbitrary bytes.
package partition

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/store"
)

// TestWriteReplicasCopiesEveryTile pins the replicated layout: with
// -replicas 2 every tile gets two directories holding bit-equivalent
// snapshots (same object ids), the manifest records version 2, and the
// replication factor survives a round trip and a second co-partitioned
// layer.
func TestWriteReplicasCopiesEveryTile(t *testing.T) {
	d := data.MustLoad("LANDC", 0.01)
	dir := t.TempDir()
	if _, err := Write(dir, "land", d, Options{Tiles: 4, Replicas: 2, Margin: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != CurrentVersion {
		t.Fatalf("manifest version %d, want %d", m.Version, CurrentVersion)
	}
	if m.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", m.Replicas())
	}
	for _, tile := range m.Tiles {
		if len(tile.Replicas) != 2 {
			t.Fatalf("tile %d has %d replicas, want 2", tile.ID, len(tile.Replicas))
		}
		if tile.Dir != tile.Replicas[0].Dir {
			t.Fatalf("tile %d legacy dir %q does not mirror primary %q", tile.ID, tile.Dir, tile.Replicas[0].Dir)
		}
		var ids [][]uint64
		for _, rep := range tile.Replicas {
			s, err := store.Open(filepath.Join(dir, rep.Dir, SnapshotName("land")), store.OpenOptions{})
			if err != nil {
				t.Fatalf("tile %d replica %s: %v", tile.ID, rep.Dir, err)
			}
			ids = append(ids, append([]uint64(nil), s.IDs()...))
			s.Close()
		}
		if len(ids[0]) != len(ids[1]) {
			t.Fatalf("tile %d replicas disagree on object count: %d vs %d", tile.ID, len(ids[0]), len(ids[1]))
		}
		for j := range ids[0] {
			if ids[0][j] != ids[1][j] {
				t.Fatalf("tile %d replicas disagree on id %d: %d vs %d", tile.ID, j, ids[0][j], ids[1][j])
			}
		}
	}

	// A second layer inherits the deployed factor; asking for a different
	// one refuses.
	b := data.MustLoad("LANDO", 0.01)
	if _, err := Write(dir, "b", b, Options{Tiles: 4}); err != nil {
		t.Fatalf("co-partition with inherited replicas: %v", err)
	}
	if _, err := Write(dir, "c", b, Options{Tiles: 4, Replicas: 3}); err == nil {
		t.Fatal("changing the replica factor of a deployed directory did not refuse")
	}

	// ReplicaAddrs surfaces the missing-address tile+replica; once every
	// replica has one, it returns the full routing table.
	if _, err := m.ReplicaAddrs(); err == nil {
		t.Fatal("ReplicaAddrs with no recorded addresses did not error")
	}
	for i := range m.Tiles {
		for r := range m.Tiles[i].Replicas {
			m.Tiles[i].Replicas[r].Addr = filepath.Join("host", m.Tiles[i].Replicas[r].Dir)
		}
	}
	ra, err := m.ReplicaAddrs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != 4 || len(ra[0]) != 2 {
		t.Fatalf("ReplicaAddrs shape %dx%d, want 4x2", len(ra), len(ra[0]))
	}
}

// TestManifestV1Compat pins backward compatibility: a replica-less v1
// manifest (no version field, tiles with only dir/addr) loads exactly as
// before and normalizes to single-replica tiles.
func TestManifestV1Compat(t *testing.T) {
	v1 := `{
		"generation": 3,
		"bounds": {"MinX": 0, "MinY": 0, "MaxX": 2, "MaxY": 1},
		"gx": 2, "gy": 1, "margin": 0.5,
		"layers": {"land": {"objects": 10, "replicas": 12}},
		"tiles": [
			{"id": 0, "bounds": {"MinX": 0, "MinY": 0, "MaxX": 1, "MaxY": 1}, "dir": "shard-0", "addr": "h:1", "objects": {"land": 6}},
			{"id": 1, "bounds": {"MinX": 1, "MinY": 0, "MaxX": 2, "MaxY": 1}, "dir": "shard-1", "addr": "h:2", "objects": {"land": 6}}
		]
	}`
	m, err := Decode([]byte(v1))
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	if m.Version != 0 || m.Replicas() != 1 {
		t.Fatalf("v1 manifest: version=%d replicas=%d, want 0 and 1", m.Version, m.Replicas())
	}
	for i, tile := range m.Tiles {
		if len(tile.Replicas) != 1 || tile.Replicas[0].Dir != tile.Dir || tile.Replicas[0].Addr != tile.Addr {
			t.Fatalf("tile %d did not normalize to its own single replica: %+v", i, tile)
		}
	}
	addrs, err := m.Addrs()
	if err != nil || len(addrs) != 2 || addrs[0] != "h:1" {
		t.Fatalf("v1 Addrs() = %v, %v", addrs, err)
	}
	ra, err := m.ReplicaAddrs()
	if err != nil || len(ra) != 2 || len(ra[0]) != 1 || ra[0][0] != "h:1" {
		t.Fatalf("v1 ReplicaAddrs() = %v, %v", ra, err)
	}
}

// TestDecodeFailsClosed enumerates the corruption classes the validator
// must refuse with a typed error: unknown versions, empty replica
// lists, duplicate directory claims, overlapping tile bounds, and
// duplicate replica addresses within a tile.
func TestDecodeFailsClosed(t *testing.T) {
	tile := func(id int, bounds, rest string) string {
		return `{"id": ` + itoa(id) + `, "bounds": ` + bounds + rest + `}`
	}
	b0 := `{"MinX": 0, "MinY": 0, "MaxX": 1, "MaxY": 1}`
	b1 := `{"MinX": 1, "MinY": 0, "MaxX": 2, "MaxY": 1}`
	head := `{"version": %s, "bounds": {"MinX": 0, "MinY": 0, "MaxX": 2, "MaxY": 1}, "gx": 2, "gy": 1, "tiles": [%s]}`
	cases := []struct {
		name, doc, want string
	}{
		{"unknown version", `{"version": 99, "bounds": {"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}, "gx": 1, "gy": 1, "tiles": [` +
			tile(0, `{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}`, `, "dir": "shard-0"`) + `]}`, "unknown manifest version"},
		{"empty replica list", sprintf(head, "2", tile(0, b0, `, "replicas": []`)+","+tile(1, b1, `, "dir": "shard-1", "replicas": [{"dir": "shard-1"}]`)), "empty replica list"},
		{"duplicate dir across tiles", sprintf(head, "2",
			tile(0, b0, `, "replicas": [{"dir": "shard-x"}]`)+","+tile(1, b1, `, "replicas": [{"dir": "shard-x"}]`)), "both claim directory"},
		{"duplicate dir across replicas", sprintf(head, "2",
			tile(0, b0, `, "replicas": [{"dir": "shard-0"}, {"dir": "shard-0"}]`)+","+tile(1, b1, `, "replicas": [{"dir": "shard-1"}]`)), "both claim directory"},
		{"overlapping tile bounds", sprintf(head, "2",
			tile(0, b0, `, "replicas": [{"dir": "shard-0"}]`)+","+tile(1, b0, `, "replicas": [{"dir": "shard-1"}]`)), "grid cell"},
		{"duplicate replica addr", sprintf(head, "2",
			tile(0, b0, `, "replicas": [{"dir": "shard-0", "addr": "h:1"}, {"dir": "shard-0-r1", "addr": "h:1"}]`)+","+tile(1, b1, `, "replicas": [{"dir": "shard-1"}]`)), "distinct shards"},
		{"dir disagrees with primary", sprintf(head, "2",
			tile(0, b0, `, "dir": "elsewhere", "replicas": [{"dir": "shard-0"}]`)+","+tile(1, b1, `, "replicas": [{"dir": "shard-1"}]`)), "disagrees with its primary"},
		{"implausible replica count", sprintf(head, "2",
			tile(0, b0, `, "replicas": [`+strings.Repeat(`{"dir": "a"},`, MaxReplicas)+`{"dir": "b"}]`)+","+tile(1, b1, `, "replicas": [{"dir": "shard-1"}]`)), "implausible replica count"},
	}
	for _, c := range cases {
		_, err := Decode([]byte(c.doc))
		var me *ManifestError
		if !errors.As(err, &me) {
			t.Errorf("%s: got %v, want *ManifestError", c.name, err)
			continue
		}
		if !strings.Contains(me.Reason, c.want) {
			t.Errorf("%s: reason %q does not mention %q", c.name, me.Reason, c.want)
		}
	}
}

func itoa(i int) string            { return string(rune('0' + i)) }
func sprintf(f string, a ...any) string {
	out := f
	for _, v := range a {
		out = strings.Replace(out, "%s", v.(string), 1)
	}
	return out
}

// FuzzManifest throws arbitrary bytes at the manifest decoder. The
// contract under fuzzing: never panic, refuse with a typed
// *ManifestError, and — when a document is accepted — uphold the
// normalized invariants and survive a marshal/decode round trip.
func FuzzManifest(f *testing.F) {
	dir := f.TempDir()
	d := data.MustLoad("LANDC", 0.002)
	if _, err := Write(dir, "land", d, Options{Tiles: 4, Replicas: 2, Margin: 1}); err != nil {
		f.Fatal(err)
	}
	real, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add([]byte(`{"gx": 1, "gy": 1, "bounds": {"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}, "tiles": [{"id":0,"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"dir":"shard-0"}]}`))
	f.Add([]byte(`{"version": 3}`))
	f.Add([]byte(`{"version": 2, "gx": 2, "gy": 1, "tiles": [{"id":0,"replicas":[]}]}`))
	f.Add([]byte(`{"gx": 1000000, "gy": 1000000}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			var me *ManifestError
			if !errors.As(err, &me) {
				t.Fatalf("Decode error %T is not a *ManifestError: %v", err, err)
			}
			return
		}
		if len(m.Tiles) != m.NumTiles() {
			t.Fatalf("accepted manifest has %d tiles for a %dx%d grid", len(m.Tiles), m.GX, m.GY)
		}
		for i, tile := range m.Tiles {
			if len(tile.Replicas) == 0 {
				t.Fatalf("accepted manifest tile %d has no replicas after normalize", i)
			}
			if tile.Dir != tile.Replicas[0].Dir {
				t.Fatalf("accepted manifest tile %d dir %q does not mirror primary %q", i, tile.Dir, tile.Replicas[0].Dir)
			}
		}
		// Round trip: what we accept, we must re-emit and re-accept.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal of accepted manifest: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("round trip of accepted manifest rejected: %v", err)
		}
	})
}
