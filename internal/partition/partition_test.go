package partition

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/interval"
	"repro/internal/query"
	"repro/internal/store"
)

func TestPlanGrid(t *testing.T) {
	cases := []struct{ n, gx, gy int }{
		{1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 2, 2}, {6, 3, 2}, {8, 4, 2},
		{9, 3, 3}, {12, 4, 3}, {16, 4, 4}, {7, 7, 1},
	}
	for _, c := range cases {
		gx, gy := PlanGrid(c.n)
		if gx != c.gx || gy != c.gy {
			t.Errorf("PlanGrid(%d) = %dx%d, want %dx%d", c.n, gx, gy, c.gx, c.gy)
		}
		if gx*gy != c.n {
			t.Errorf("PlanGrid(%d) does not cover n", c.n)
		}
	}
}

// TestRegionsTileThePlane proves the ownership invariant the
// reference-point rule rests on: every point has exactly one owning tile
// under the half-open region test, including points exactly on grid
// lines and far outside the grid bounds.
func TestRegionsTileThePlane(t *testing.T) {
	m := &Manifest{Bounds: geom.R(0, 0, 100, 60), GX: 4, GY: 3}
	pts := []geom.Point{
		{X: 10, Y: 10}, {X: 25, Y: 20}, {X: 50, Y: 40}, {X: 75, Y: 59.999},
		{X: 0, Y: 0}, {X: 100, Y: 60}, // corners (max corner owned by the last tile)
		{X: 25, Y: 30},                     // on both an x and a y grid line
		{X: -1e9, Y: 1e9}, {X: 1e9, Y: -5}, // far outside the bounds
		{X: 33.333333333333336, Y: 20.000000000000004}, // awkward floats
	}
	for _, p := range pts {
		owners := 0
		for id := 0; id < m.NumTiles(); id++ {
			if m.Owns(id, p) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("point %v has %d owners, want exactly 1", p, owners)
		}
	}
}

// TestRegionEdgesShared verifies adjacent cells share bit-identical edge
// values, so the half-open regions neither overlap nor leave gaps.
func TestRegionEdgesShared(t *testing.T) {
	m := &Manifest{Bounds: geom.R(-17.3, 2.1, 93.7, 55.9), GX: 5, GY: 4}
	for ix := 0; ix < m.GX-1; ix++ {
		a := m.CellBounds(ix)     // row 0
		b := m.CellBounds(ix + 1) // right neighbor
		if a.MaxX != b.MinX {
			t.Fatalf("cells %d,%d disagree on shared x edge: %v vs %v", ix, ix+1, a.MaxX, b.MinX)
		}
	}
	for iy := 0; iy < m.GY-1; iy++ {
		a := m.CellBounds(iy * m.GX)
		b := m.CellBounds((iy + 1) * m.GX)
		if a.MaxY != b.MinY {
			t.Fatalf("rows %d,%d disagree on shared y edge: %v vs %v", iy, iy+1, a.MaxY, b.MinY)
		}
	}
}

func TestWriteAndLoadRoundTrip(t *testing.T) {
	d := data.MustLoad("LANDC", 0.01)
	dir := t.TempDir()
	res, err := Write(dir, "land", d, Options{Tiles: 4, Margin: 2.5, Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objects != len(d.Objects) {
		t.Fatalf("objects %d, want %d", res.Objects, len(d.Objects))
	}
	if res.Replicas < res.Objects {
		t.Fatalf("replicas %d < objects %d: some object landed in no tile", res.Replicas, res.Objects)
	}

	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.GX*m.GY != 4 || m.Generation != 1 || m.Margin != 2.5 {
		t.Fatalf("manifest round-trip mismatch: %+v", m)
	}
	if got := m.Layers["land"].Objects; got != len(d.Objects) {
		t.Fatalf("layer accounting %d, want %d", got, len(d.Objects))
	}

	// Every object must appear, with its global id, in every tile its
	// margin-expanded MBR overlaps — and in at least one tile.
	seen := make(map[uint64]int)
	for _, tile := range m.Tiles {
		s, err := store.Open(filepath.Join(dir, tile.Dir, SnapshotName("land")), store.OpenOptions{})
		if err != nil {
			t.Fatalf("tile %d: %v", tile.ID, err)
		}
		ids := s.IDs()
		if len(ids) != s.NumObjects() {
			t.Fatalf("tile %d: %d ids for %d objects", tile.ID, len(ids), s.NumObjects())
		}
		if tile.Objects["land"] != s.NumObjects() {
			t.Fatalf("tile %d: manifest says %d objects, snapshot has %d", tile.ID, tile.Objects["land"], s.NumObjects())
		}
		ds := s.Dataset()
		for i, id := range ids {
			if id >= uint64(len(d.Objects)) {
				t.Fatalf("tile %d: id %d out of range", tile.ID, id)
			}
			if ds.Objects[i].Bounds() != d.Objects[id].Bounds() {
				t.Fatalf("tile %d: object %d geometry does not match global object %d", tile.ID, i, id)
			}
			seen[id]++
		}
		s.Close()
	}
	for gi, p := range d.Objects {
		want := len(m.OverlappingTiles(p.Bounds()))
		if seen[uint64(gi)] != want {
			t.Fatalf("object %d replicated %d times, want %d", gi, seen[uint64(gi)], want)
		}
		if want < 1 {
			t.Fatalf("object %d overlaps no tile", gi)
		}
	}
}

// TestTileSnapshotsInheritIntervals pins that per-tile snapshots carry
// the v2 interval section by default (the tile writer embeds
// store.SaveOptions, so the column rides along with signatures), each on
// the grid derived from that tile's own object subset.
func TestTileSnapshotsInheritIntervals(t *testing.T) {
	d := data.MustLoad("LANDO", 0.01)
	dir := t.TempDir()
	if _, err := Write(dir, "land", d, Options{Tiles: 4, Tool: "test"}); err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range m.Tiles {
		s, err := store.Open(filepath.Join(dir, tile.Dir, SnapshotName("land")), store.OpenOptions{})
		if err != nil {
			t.Fatalf("tile %d: %v", tile.ID, err)
		}
		if s.NumObjects() == 0 {
			s.Close()
			continue
		}
		if !s.HasIntervals() {
			t.Fatalf("tile %d snapshot lost the interval section", tile.ID)
		}
		col := s.Intervals()
		if col.Len() != s.NumObjects() {
			t.Fatalf("tile %d: interval column covers %d of %d objects", tile.ID, col.Len(), s.NumObjects())
		}
		g, ok := interval.GridFor(s.Dataset().Objects, 0)
		if !ok || col.Grid != g {
			t.Fatalf("tile %d: persisted grid %+v, want tile-local derivation %+v (ok=%v)", tile.ID, col.Grid, g, ok)
		}
		s.Close()
	}
}

// TestWriteCoPartitionsSecondLayer pins the shared-grid contract: a
// second layer reuses the existing grid (even with different bounds) and
// bumps the generation.
func TestWriteCoPartitionsSecondLayer(t *testing.T) {
	dir := t.TempDir()
	a := data.MustLoad("LANDC", 0.01)
	if _, err := Write(dir, "a", a, Options{Tiles: 4}); err != nil {
		t.Fatal(err)
	}
	b := data.MustLoad("LANDO", 0.01)
	res, err := Write(dir, "b", b, Options{Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Generation != 2 {
		t.Fatalf("generation %d, want 2", res.Manifest.Generation)
	}
	if len(res.Manifest.Layers) != 2 {
		t.Fatalf("layers %v, want a and b", res.Manifest.Layers)
	}
	// A mismatched tile count must refuse rather than silently regrid.
	if _, err := Write(dir, "c", b, Options{Tiles: 8}); err == nil {
		t.Fatal("regridding an existing manifest did not refuse")
	}
	// Both layers load per tile under the same shard directory.
	for _, tile := range res.Manifest.Tiles {
		for _, layer := range []string{"a", "b"} {
			s, err := store.Open(filepath.Join(dir, tile.Dir, SnapshotName(layer)), store.OpenOptions{})
			if err != nil {
				t.Fatalf("tile %d layer %s: %v", tile.ID, layer, err)
			}
			if _, err := query.NewLayerFromSnapshot(s); err != nil {
				t.Fatalf("tile %d layer %s: %v", tile.ID, layer, err)
			}
			s.Close()
		}
	}
}

func TestLoadRejectsMalformedManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir); !os.IsNotExist(err) {
		t.Fatalf("missing manifest: got %v, want IsNotExist", err)
	}
	write := func(s string) {
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bad := []string{
		`{`,
		`{"gx":0,"gy":1,"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"tiles":[]}`,
		`{"gx":2,"gy":1,"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"tiles":[]}`,
		`{"gx":1,"gy":1,"margin":-1,"bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1},"tiles":[{"id":0,"dir":"shard-0","bounds":{"MinX":0,"MinY":0,"MaxX":1,"MaxY":1}}]}`,
	}
	for i, s := range bad {
		write(s)
		if _, err := Load(dir); err == nil {
			t.Errorf("malformed manifest %d accepted", i)
		} else if _, ok := err.(*ManifestError); !ok {
			t.Errorf("malformed manifest %d: error %T, want *ManifestError", i, err)
		}
	}
}

func TestRefPoints(t *testing.T) {
	a, b := geom.R(0, 0, 10, 10), geom.R(5, 5, 20, 20)
	if p := RefPoint(a, b); p.X != 5 || p.Y != 5 {
		t.Fatalf("RefPoint = %v, want (5,5)", p)
	}
	if p, q := RefPoint(a, b), RefPoint(b, a); p != q {
		t.Fatalf("RefPoint not symmetric: %v vs %v", p, q)
	}
	// Disjoint-but-near rects: the within reference point lies in b's MBR
	// and within d (Chebyshev) of a's.
	a, b = geom.R(0, 0, 10, 10), geom.R(12, 3, 20, 8)
	p := RefPointWithin(a, b, 3)
	if !(p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY) {
		t.Fatalf("RefPointWithin %v outside b %v", p, b)
	}
	if dx := math.Max(0, math.Max(a.MinX-p.X, p.X-a.MaxX)); dx > 3 {
		t.Fatalf("RefPointWithin %v farther than d from a", p)
	}
}
